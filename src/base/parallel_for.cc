#include "src/base/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/logging.h"
#include "src/obs/metrics.h"

namespace msmoe {
namespace {

constexpr int kMaxWorkers = 64;

int DefaultWorkerCount() {
  if (const char* env = std::getenv("MSMOE_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) {
      return std::min(parsed, kMaxWorkers);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) {
    return 1;
  }
  // Without an explicit knob stay modest: oversubscribing every rank thread
  // by the full machine width multiplies thread counts (ranks x workers).
  return static_cast<int>(std::min(hc, 16u));
}

// 0 = "not overridden yet": fall back to DefaultWorkerCount().
std::atomic<int> g_worker_cap{0};

thread_local bool tls_in_parallel_shard = false;

// Persistent pool. Threads are spawned on first demand and live until the
// process exits (the function-local static's destructor joins them).
class WorkerPool {
 public:
  static WorkerPool& Get() {
    static WorkerPool pool;
    return pool;
  }

  void EnsureWorkers(int count) {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(threads_.size()) < count) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& thread : threads_) {
      thread.join();
    }
  }

 private:
  void WorkerLoop() {
    tls_in_parallel_shard = true;  // nested ParallelFor on a worker inlines
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) {
          return;  // shutdown with a drained queue
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

// Completion state of one ParallelFor call, shared by its shards.
struct ForkState {
  std::mutex mu;
  std::condition_variable cv;
  int remaining = 0;
  std::exception_ptr error;

  void Record(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (!error) {
      error = std::move(e);
    }
  }
  void Finish() {
    std::lock_guard<std::mutex> lock(mu);
    --remaining;
    if (remaining == 0) {
      cv.notify_all();
    }
  }
};

}  // namespace

int ParallelWorkerCount() {
  const int cap = g_worker_cap.load(std::memory_order_relaxed);
  if (cap > 0) {
    return cap;
  }
  static const int default_count = DefaultWorkerCount();
  return default_count;
}

void SetParallelWorkerCount(int count) {
  g_worker_cap.store(std::clamp(count, 1, kMaxWorkers), std::memory_order_relaxed);
}

bool InParallelWorker() { return tls_in_parallel_shard; }

void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  grain = std::max<int64_t>(grain, 1);
  const int64_t max_shards = (n + grain - 1) / grain;
  const int shards = static_cast<int>(
      std::min<int64_t>(ParallelWorkerCount(), max_shards));
  if (shards <= 1 || tls_in_parallel_shard) {
    fn(0, n);
    return;
  }

  // Registry feed for non-inline dispatches only: the inline fast path above
  // must stay a branch, and per-region (not per-shard-iteration) granularity
  // keeps the cost off the GEMM inner loops.
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) {
    static const MetricId regions_id =
        registry.Counter("par.regions", "ParallelFor regions fanned out");
    static const MetricId shards_id =
        registry.Counter("par.shards", "ParallelFor shards dispatched");
    registry.Add(regions_id, 1.0);
    registry.Add(shards_id, static_cast<double>(shards));
  }

  WorkerPool& pool = WorkerPool::Get();
  pool.EnsureWorkers(shards - 1);
  ForkState state;
  state.remaining = shards - 1;
  // Contiguous balanced shards; shard s covers [s*n/shards, (s+1)*n/shards).
  for (int s = 1; s < shards; ++s) {
    const int64_t begin = n * s / shards;
    const int64_t end = n * (s + 1) / shards;
    pool.Submit([&state, &fn, begin, end] {
      // CHECK failures on pool workers must not abort the process before the
      // caller gets to observe them.
      ScopedThrowOnFatal throw_on_fatal;
      try {
        fn(begin, end);
      } catch (...) {
        state.Record(std::current_exception());
      }
      state.Finish();
    });
  }
  // The caller runs shard 0 itself; mark it as a shard so nesting inlines.
  tls_in_parallel_shard = true;
  try {
    fn(0, n / shards);
  } catch (...) {
    state.Record(std::current_exception());
  }
  tls_in_parallel_shard = false;
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.cv.wait(lock, [&state] { return state.remaining == 0; });
  }
  if (state.error) {
    std::rethrow_exception(state.error);
  }
}

}  // namespace msmoe
