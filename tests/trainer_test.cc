#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/base/arena.h"
#include "src/base/parallel_for.h"
#include "src/base/rng.h"
#include "src/core/trainer.h"
#include "src/model/checkpoint.h"
#include "src/model/flat_adam.h"

namespace msmoe {
namespace {

NumericTrainConfig SmallConfig() {
  NumericTrainConfig config;
  config.model = TinyMoeConfig(4, 2);
  config.model.num_layers = 1;
  config.model.vocab = 32;
  config.model.seq_len = 8;
  config.router.num_experts = 4;
  config.router.top_k = 2;
  config.dp_size = 2;
  config.batch_per_rank = 1;
  config.steps = 10;
  config.adam.lr = 3e-3;
  config.precision = TrainPrecision::kFp32;
  return config;
}

TEST(FlatAdamTest, MatchesTensorAdamOnSameProblem) {
  // FlatAdam over a flat buffer must produce the same trajectory as the
  // tensor Adam on identical gradients.
  AdamConfig adam_config;
  adam_config.lr = 0.05;
  Tensor x = Tensor::Full({6}, 2.0f);
  AdamOptimizer tensor_adam(adam_config);
  tensor_adam.Register(&x);
  FlatAdam flat_adam(adam_config, 6);
  std::vector<float> flat(6, 2.0f);
  Rng rng(9);
  for (int step = 0; step < 25; ++step) {
    Tensor grad({6});
    for (int64_t i = 0; i < 6; ++i) {
      grad[i] = static_cast<float>(rng.NextGaussian());
    }
    tensor_adam.Step({&grad});
    flat_adam.Step(grad.data(), flat.data());
    for (int64_t i = 0; i < 6; ++i) {
      EXPECT_FLOAT_EQ(flat[static_cast<size_t>(i)], x[i]) << step << " " << i;
    }
  }
}

TEST(FlatAdamTest, SaveLoadRoundTrip) {
  AdamConfig config;
  FlatAdam adam(config, 4);
  std::vector<float> master(4, 1.0f);
  std::vector<float> grad = {0.1f, -0.2f, 0.3f, 0.4f};
  adam.Step(grad.data(), master.data());
  const std::vector<float> state = adam.SaveState();

  FlatAdam fresh(config, 4);
  fresh.LoadState(state);
  EXPECT_EQ(fresh.step_count(), 1);
  std::vector<float> master_a = master;
  std::vector<float> master_b = master;
  adam.Step(grad.data(), master_a.data());
  fresh.Step(grad.data(), master_b.data());
  EXPECT_EQ(master_a, master_b);
}

TEST(ZeroShardingTest, MatchesReplicatedOptimizer) {
  // ZeRO-1 sharded masters + FP32 param gather must follow the replicated
  // trajectory exactly (same FP32 math, just distributed).
  NumericTrainConfig replicated = SmallConfig();
  NumericTrainConfig zero = SmallConfig();
  zero.zero_shard_optimizer = true;
  const TrainCurve a = TrainLm(replicated);
  const TrainCurve b = TrainLm(zero);
  for (size_t i = 0; i < a.loss.size(); ++i) {
    EXPECT_NEAR(a.loss[i], b.loss[i], 1e-6) << i;
  }
}

TEST(ZeroShardingTest, Bf16ParamGatherStillConverges) {
  NumericTrainConfig config = SmallConfig();
  config.zero_shard_optimizer = true;
  config.param_gather_precision = TrainPrecision::kBf16;
  config.steps = 25;
  const TrainCurve curve = TrainLm(config);
  EXPECT_LT(curve.loss.back(), curve.loss.front());
}

TEST(ZeroShardingTest, Fp8ParamGatherTracksFp32) {
  // §7: storing FP8 parameters halves the all-gather; the loss must stay
  // close to the FP32-gather run.
  NumericTrainConfig fp32 = SmallConfig();
  fp32.zero_shard_optimizer = true;
  fp32.steps = 20;
  NumericTrainConfig fp8 = fp32;
  fp8.param_gather_precision = TrainPrecision::kFp8;
  const TrainCurve a = TrainLm(fp32);
  const TrainCurve b = TrainLm(fp8);
  EXPECT_LT(b.loss.back(), b.loss.front());
  for (size_t i = 0; i < a.loss.size(); ++i) {
    EXPECT_NEAR(a.loss[i], b.loss[i], std::max(0.35, a.loss[i] * 0.12)) << i;
  }
}

TEST(ZeroShardingTest, RestartsStillSeamless) {
  NumericTrainConfig smooth = SmallConfig();
  smooth.zero_shard_optimizer = true;
  smooth.steps = 12;
  NumericTrainConfig restarted = smooth;
  restarted.restart_every = 4;
  const TrainCurve a = TrainLm(smooth);
  const TrainCurve b = TrainLm(restarted);
  ASSERT_FALSE(b.restart_steps.empty());
  for (size_t i = 0; i < a.loss.size(); ++i) {
    EXPECT_NEAR(a.loss[i], b.loss[i], 1e-9) << i;
  }
}

TEST(CommBackendTest, HierarchicalBackendMatchesFlatTrajectory) {
  // Swapping the collective backend is pure wiring: the 2-level communicator
  // must reproduce the flat trajectory exactly (same deterministic
  // rank-order reductions underneath).
  NumericTrainConfig flat = SmallConfig();
  flat.dp_size = 4;
  NumericTrainConfig hier = flat;
  hier.comm_backend = CommBackend::kHierarchical;
  hier.gpus_per_node = 2;
  const TrainCurve a = TrainLm(flat);
  const TrainCurve b = TrainLm(hier);
  ASSERT_EQ(a.loss.size(), b.loss.size());
  for (size_t i = 0; i < a.loss.size(); ++i) {
    EXPECT_NEAR(a.loss[i], b.loss[i], 1e-7) << i;
  }
}

TEST(GradSyncOverlapTest, OverlappedTrajectoryBitIdenticalToSynchronous) {
  // §5 inter-op overlap: moving each layer's gradient reduce-scatter onto
  // the comm-proxy thread (mid-backward) must not change a single bit of
  // the loss curve — per-element ring reductions are segmentation- and
  // timing-independent.
  NumericTrainConfig synchronous = SmallConfig();
  NumericTrainConfig overlapped = synchronous;
  overlapped.overlap_grad_sync = true;
  const TrainCurve a = TrainLm(synchronous);
  const TrainCurve b = TrainLm(overlapped);
  ASSERT_EQ(a.loss.size(), b.loss.size());
  for (size_t i = 0; i < a.loss.size(); ++i) {
    EXPECT_EQ(a.loss[i], b.loss[i]) << i;
  }
}

TEST(GradSyncOverlapTest, OverlapPlusZeroShardIsAConfigError) {
  // Requesting overlap together with ZeRO-1 used to silently train WITHOUT
  // overlap; it is now rejected up front so the caller learns the requested
  // behavior cannot be honored.
  NumericTrainConfig config = SmallConfig();
  config.overlap_grad_sync = true;
  config.zero_shard_optimizer = true;
  const Status status = ValidateNumericTrainConfig(config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("overlap_grad_sync"), std::string::npos);

  // Either flag alone stays valid.
  config.zero_shard_optimizer = false;
  EXPECT_TRUE(ValidateNumericTrainConfig(config).ok());
  config.overlap_grad_sync = false;
  config.zero_shard_optimizer = true;
  EXPECT_TRUE(ValidateNumericTrainConfig(config).ok());
}

TEST(GradSyncOverlapTest, ChunkCountDoesNotChangeTheTrajectory) {
  NumericTrainConfig two = SmallConfig();
  two.overlap_grad_sync = true;
  NumericTrainConfig four = two;
  four.overlap_grad_chunks = 4;
  const TrainCurve a = TrainLm(two);
  const TrainCurve b = TrainLm(four);
  ASSERT_EQ(a.loss.size(), b.loss.size());
  for (size_t i = 0; i < a.loss.size(); ++i) {
    EXPECT_EQ(a.loss[i], b.loss[i]) << i;
  }
}

TEST(GradAccumulationTest, LossRecordedAndConverges) {
  NumericTrainConfig config = SmallConfig();
  config.grad_accum_steps = 3;
  config.steps = 15;
  const TrainCurve curve = TrainLm(config);
  EXPECT_LT(curve.loss.back(), curve.loss.front());
}

TEST(GradAccumulationTest, AccumulationAveragesMicroBatches) {
  // With a deterministic task, accumulating A micro-batches must equal the
  // mean of their individual losses on the same parameters at step 0.
  NumericTrainConfig accum = SmallConfig();
  accum.grad_accum_steps = 2;
  accum.steps = 1;
  const TrainCurve curve = TrainLm(accum);

  // Recompute the two micro losses by hand with the same seeds.
  Rng rng(accum.seed);
  LmParams params = LmParams::Init(accum.model, rng);
  double expected = 0.0;
  for (int64_t micro = 0; micro < 2; ++micro) {
    std::vector<int64_t> inputs, targets;
    MakeTrainingBatch(accum.model, accum.seed, micro, /*rank=*/0, accum.batch_per_rank,
                      &inputs, &targets);
    LmParams grads = LmParams::ZerosLike(accum.model);
    expected += LmForwardBackward(params, accum.model, accum.router, inputs, targets,
                                  accum.batch_per_rank, &grads)
                    .ce_loss /
                2.0;
  }
  EXPECT_NEAR(curve.loss[0], expected, 1e-6);
}

TEST(MemorySteadyStateTest, SecondRunOfTrainerDoesZeroHeapAllocs) {
  // The zero-alloc gate (ISSUE 8): after a warm-up run has populated the
  // arena pool and the per-thread workspaces, a repeat of the identical
  // training loop must be served ENTIRELY from recycled blocks — not one
  // pool miss. dp=1 with a single ParallelFor worker keeps the allocation
  // sequence deterministic (multi-worker shard assignment is racy, so a
  // worker could see a shape it has not warmed up on; bench_memory reports
  // that case informationally instead of gating on it).
  NumericTrainConfig config = SmallConfig();
  config.model.num_layers = 2;
  config.dp_size = 1;
  config.steps = 4;
  const int prev_workers = ParallelWorkerCount();
  SetParallelWorkerCount(1);
  SetArenaPoolingEnabled(true);

  const TrainCurve warm = TrainLm(config);
  ResetMemStats();
  const TrainCurve repeat = TrainLm(config);
  const MemStatsSnapshot stats = GetMemStats();
  SetParallelWorkerCount(prev_workers);

  EXPECT_EQ(stats.heap_allocs, 0u)
      << "steady-state training step hit the system allocator; acquires="
      << stats.acquires << " pool_hits=" << stats.pool_hits;
  EXPECT_GT(stats.acquires, 0u);  // the gate measured real traffic
  EXPECT_EQ(stats.hit_rate(), 1.0);

  // Recycled (uninitialized) blocks must not leak into the numerics: the
  // repeat run's loss curve is bitwise identical to the warm-up's.
  ASSERT_EQ(warm.loss.size(), repeat.loss.size());
  for (size_t i = 0; i < warm.loss.size(); ++i) {
    EXPECT_EQ(warm.loss[i], repeat.loss[i]) << i;
  }
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string(::testing::TempDir()) + "/msmoe_ckpt_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CheckpointTest, RoundTrip) {
  ModelConfig config = TinyMoeConfig(2, 1);
  config.num_layers = 1;
  Rng rng(1);
  LmParams params = LmParams::Init(config, rng);
  std::vector<float> opt_state = {1.0f, 2.0f, 3.0f};
  ASSERT_TRUE(SaveCheckpoint(path_, params, opt_state).ok());

  Result<Checkpoint> loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().optimizer_state, opt_state);
  EXPECT_EQ(loaded.value().params, FlattenParams(params));

  LmParams restored = LmParams::ZerosLike(config);
  ASSERT_TRUE(RestoreParams(restored, loaded.value().params).ok());
  std::vector<const Tensor*> a = params.TensorListConst();
  std::vector<const Tensor*> b = restored.TensorListConst();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->RelativeL2Diff(*b[i]), 0.0);
  }
}

TEST_F(CheckpointTest, MissingFileFails) {
  Result<Checkpoint> result = LoadCheckpoint(path_ + ".does-not-exist");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointTest, BadMagicRejected) {
  std::FILE* file = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("garbage-not-a-checkpoint", file);
  std::fclose(file);
  Result<Checkpoint> result = LoadCheckpoint(path_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, TruncatedFileRejected) {
  ModelConfig config = TinyMoeConfig(2, 1);
  config.num_layers = 1;
  Rng rng(2);
  LmParams params = LmParams::Init(config, rng);
  ASSERT_TRUE(SaveCheckpoint(path_, params, {}).ok());
  // Truncate to half.
  std::FILE* file = std::fopen(path_.c_str(), "rb");
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fclose(file);
  ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);
  Result<Checkpoint> result = LoadCheckpoint(path_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, WrongModelRejected) {
  ModelConfig small = TinyMoeConfig(2, 1);
  small.num_layers = 1;
  Rng rng(3);
  LmParams params = LmParams::Init(small, rng);
  ASSERT_TRUE(SaveCheckpoint(path_, params, {}).ok());
  Result<Checkpoint> loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok());

  ModelConfig bigger = TinyMoeConfig(4, 2);
  bigger.num_layers = 2;
  LmParams other = LmParams::ZerosLike(bigger);
  Status status = RestoreParams(other, loaded.value().params);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace msmoe
