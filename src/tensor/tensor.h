// Dense row-major float32 tensor.
//
// This is the numeric substrate under the real (non-simulated) training
// path: the MoE transformer modules, the parallel strategies, and the
// convergence experiments all move data through Tensor. Storage is always
// contiguous row-major float32; lower-precision formats (BF16/FP8) exist
// only as conversion steps (src/numerics), mirroring how mixed-precision
// training keeps FP32 master values.
//
// Storage is pool-backed (src/base/arena.h): construction acquires a
// size-classed block from the global arena and destruction returns it, so
// a steady-state training step whose tensor shapes repeat the previous
// step's is served entirely from recycled blocks — zero heap allocations.
// Value semantics are unchanged: copies deep-copy, moves steal the block.
//
// Two construction modes:
//   Tensor(shape) / Zeros(shape)  — zero-initialized (exactly one clear).
//   Tensor::Uninit(shape)         — UNINITIALIZED (possibly recycled
//     contents). Only for buffers every element of which is written before
//     being read (GEMM outputs with beta == 0, gather/slice destinations,
//     elementwise-map outputs). Misuse shows up as nondeterminism; keep
//     zero-init anywhere accumulation (+=) or partial writes happen.
#ifndef MSMOE_SRC_TENSOR_TENSOR_H_
#define MSMOE_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/base/arena.h"
#include "src/base/logging.h"
#include "src/base/rng.h"

namespace msmoe {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);
  ~Tensor();

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;

  // Factories.
  static Tensor Zeros(std::vector<int64_t> shape);
  // Pool-backed storage with UNSPECIFIED contents — see the header comment
  // for the safety rule.
  static Tensor Uninit(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  // I.i.d. N(mean, stddev) entries, deterministic in rng.
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  // Uniform in [lo, hi).
  static Tensor Uniform(std::vector<int64_t> shape, Rng& rng, float lo, float hi);
  static Tensor FromVector(std::vector<int64_t> shape, std::vector<float> values);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const;
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return data_; }
  const float* data() const { return data_; }

  // Element access. Bounds checks are MSMOE_DCHECK: on in Debug/sanitizer
  // builds, compiled out in optimized builds — these run on every element
  // of every hot loop. AtChecked (below) always checks.
  float& operator[](int64_t i) {
    MSMOE_DCHECK_GE(i, 0);
    MSMOE_DCHECK_LT(i, numel_);
    return data_[i];
  }
  float operator[](int64_t i) const {
    MSMOE_DCHECK_GE(i, 0);
    MSMOE_DCHECK_LT(i, numel_);
    return data_[i];
  }

  // 2-D / 3-D element access (bounds-checked under MSMOE_DCHECK).
  float& At(int64_t i, int64_t j) {
    MSMOE_DCHECK_EQ(ndim(), 2);
    MSMOE_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1])
        << "(" << i << ", " << j << ") out of " << ShapeString();
    return data_[i * shape_[1] + j];
  }
  float At(int64_t i, int64_t j) const { return const_cast<Tensor*>(this)->At(i, j); }
  float& At(int64_t i, int64_t j, int64_t k) {
    MSMOE_DCHECK_EQ(ndim(), 3);
    MSMOE_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 && k < shape_[2])
        << "(" << i << ", " << j << ", " << k << ") out of " << ShapeString();
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float At(int64_t i, int64_t j, int64_t k) const {
    return const_cast<Tensor*>(this)->At(i, j, k);
  }

  // Always-bounds-checked access (MSMOE_CHECK in every build). For tests
  // and cold paths that want hard failure on a bad index.
  float& AtChecked(int64_t i);
  float AtChecked(int64_t i) const;
  float& AtChecked(int64_t i, int64_t j);
  float AtChecked(int64_t i, int64_t j) const;
  float& AtChecked(int64_t i, int64_t j, int64_t k);
  float AtChecked(int64_t i, int64_t j, int64_t k) const;

  // Reinterprets the shape; the element count must match.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  void Fill(float value);
  void AddInPlace(const Tensor& other);       // this += other (same shape)
  void ScaleInPlace(float factor);            // this *= factor
  void AxpyInPlace(float alpha, const Tensor& other);  // this += alpha * other

  // Returns rows [row_begin, row_end) of a 2-D tensor as a new tensor.
  Tensor SliceRows(int64_t row_begin, int64_t row_end) const;

  double SumAbs() const;
  double MaxAbs() const;
  // Frobenius-norm relative difference vs other (same shape).
  double RelativeL2Diff(const Tensor& other) const;

  std::string ShapeString() const;

 private:
  std::vector<int64_t> shape_;
  float* data_ = nullptr;
  int64_t numel_ = 0;
};

// True when shapes match exactly.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace msmoe

#endif  // MSMOE_SRC_TENSOR_TENSOR_H_
