// Shared helpers for the reproduction benches (one binary per paper
// table/figure; each prints the same rows/series the paper reports).
#ifndef MSMOE_BENCH_BENCH_UTIL_H_
#define MSMOE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace msmoe {

inline void PrintHeader(const std::string& experiment, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n\n");
}

inline void PrintPaperNote(const std::string& note) {
  std::printf("paper reference: %s\n\n", note.c_str());
}

// Distribution summary of one timed region: median plus the p10/p90 spread
// and the repetition count, so every BENCH_*.json block records how noisy
// the measurement was instead of a bare point estimate.
struct TimingStats {
  double median_s = 0.0;
  double p10_s = 0.0;
  double p90_s = 0.0;
  int reps = 0;
};

// Wall-clock timing with warmup + N timed repetitions, so BENCH JSON
// numbers are stable run-to-run (a single cold measurement can be 2x off:
// first-touch page faults, frequency ramp, pool-thread spawn). Runs fn()
// `warmup` times untimed, then `reps` timed times, and summarizes the timed
// repetitions. Percentiles use the nearest-rank method on the sorted
// samples (exact sample values, no interpolation).
template <typename Fn>
TimingStats TimedStatsOfN(int warmup, int reps, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
  }
  std::sort(seconds.begin(), seconds.end());
  const auto rank = [&](double pct) {
    const auto n = static_cast<double>(seconds.size());
    auto index = static_cast<size_t>(pct * (n - 1.0) + 0.5);
    return seconds[std::min(index, seconds.size() - 1)];
  };
  TimingStats stats;
  stats.median_s = seconds[seconds.size() / 2];
  stats.p10_s = rank(0.10);
  stats.p90_s = rank(0.90);
  stats.reps = static_cast<int>(seconds.size());
  return stats;
}

// Median-only convenience over TimedStatsOfN (legacy callers).
template <typename Fn>
double MedianSecondsOfN(int warmup, int reps, Fn&& fn) {
  return TimedStatsOfN(warmup, reps, static_cast<Fn&&>(fn)).median_s;
}

// Appends the distribution fields every BENCH_*.json block carries next to
// its headline number: "p10_<label>_ms":..,"p90_<label>_ms":..,
// "reps_<label>":N. The rep count is label-scoped so a block that reports
// several timed regions (e.g. fused AND unfused) stays free of duplicate
// keys.
inline void AppendTimingSpreadJson(std::string* out, const std::string& label,
                                   const TimingStats& stats) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "\"p10_%s_ms\": %.4f, \"p90_%s_ms\": %.4f, \"reps_%s\": %d",
                label.c_str(), stats.p10_s * 1e3, label.c_str(),
                stats.p90_s * 1e3, label.c_str(), stats.reps);
  *out += buffer;
}

}  // namespace msmoe

#endif  // MSMOE_BENCH_BENCH_UTIL_H_
