// Tile-level intra-operator overlap simulation (§4.2, Fig 9).
//
// A fused comm+compute kernel splits the workload into tiles. Communication
// delivers tile i at roughly i * (comm / tiles); computation of tile i
// starts at max(arrival_i, end of tile i-1) and takes comp_eff / tiles,
// where comp_eff accounts for SMs ceded to communication (all-to-all runs on
// SMs; all-gather/reduce-scatter use the copy engines and cede none).
// Perfectly pipelined, the fused kernel finishes in about
//   max(comm, comp_eff) + first-tile latency
// instead of comm + comp — the Fig 15 gains.
//
// Swizzling (§4.2) reorders tile communication to match compute order; the
// `swizzled` flag models a mismatched order as a larger effective first-tile
// latency (dependent tiles arrive late).
#ifndef MSMOE_SRC_SIM_OVERLAP_SIM_H_
#define MSMOE_SRC_SIM_OVERLAP_SIM_H_

#include <cstdint>

namespace msmoe {

struct TilePipelineConfig {
  double comm_us = 0.0;       // standalone communication time
  double comp_us = 0.0;       // standalone computation time (full SMs)
  int num_tiles = 16;
  // Fraction of SMs given to communication (0 for AG/RS via copy engines,
  // small >0 for all-to-all).
  double comm_sm_fraction = 0.0;
  // Tile arrival order matches compute order (true after swizzling). When
  // false, each compute tile waits on average half the remaining stream.
  bool swizzled = true;
  // Whether communication precedes compute (A2A+GEMM) or follows it
  // (GEMM+A2A); the pipeline is symmetric, timing is identical.
  bool comm_first = true;
  // Fused kernels pay for tile-granularity barriers, signal polling, and
  // partially-filled boundary tiles; fraction added to the pipeline time.
  double barrier_overhead = 0.02;
};

struct TilePipelineResult {
  double fused_us = 0.0;        // fused kernel completion time
  double unfused_us = 0.0;      // comm + comp executed back-to-back
  double speedup = 0.0;         // unfused / fused
};

TilePipelineResult SimulateTilePipeline(const TilePipelineConfig& config);

}  // namespace msmoe

#endif  // MSMOE_SRC_SIM_OVERLAP_SIM_H_
