// Adam over a flat float shard — the per-rank piece of a ZeRO-1 sharded
// optimizer (§2.2, §4.1): each DP rank owns 1/dp of the flattened parameter
// space, keeps FP32 master values and Adam moments for that shard only, and
// re-gathers parameters after each update.
#ifndef MSMOE_SRC_MODEL_FLAT_ADAM_H_
#define MSMOE_SRC_MODEL_FLAT_ADAM_H_

#include <cstdint>
#include <vector>

#include "src/model/optimizer.h"

namespace msmoe {

class FlatAdam {
 public:
  FlatAdam(AdamConfig config, int64_t shard_elems);

  // One update of the local shard: master[i] -= lr * adam(grad[i]).
  // `grad` and `master` hold shard_elems floats. Gradient clipping uses the
  // local shard norm (callers needing the global norm pre-scale the grads).
  void Step(const float* grad, float* master);

  int64_t step_count() const { return step_; }
  int64_t shard_elems() const { return shard_elems_; }

  std::vector<float> SaveState() const;
  void LoadState(const std::vector<float>& blob);

 private:
  AdamConfig config_;
  int64_t shard_elems_;
  std::vector<float> m_;
  std::vector<float> v_;
  int64_t step_ = 0;
};

}  // namespace msmoe

#endif  // MSMOE_SRC_MODEL_FLAT_ADAM_H_
