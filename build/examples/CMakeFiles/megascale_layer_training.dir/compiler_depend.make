# Empty compiler generated dependencies file for megascale_layer_training.
# This may be replaced when dependencies are built.
