#include "src/model/attention.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/base/arena.h"
#include "src/base/logging.h"
#include "src/base/parallel_for.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

void CheckShapes(const Tensor& q, const Tensor& k, const Tensor& v, int64_t gqa_ratio) {
  MSMOE_CHECK_EQ(q.ndim(), 3);
  MSMOE_CHECK_EQ(k.ndim(), 3);
  MSMOE_CHECK_EQ(v.ndim(), 3);
  MSMOE_CHECK_EQ(q.dim(0), k.dim(0));
  MSMOE_CHECK_EQ(k.dim(0), v.dim(0));
  MSMOE_CHECK_EQ(q.dim(1), k.dim(1) * gqa_ratio);
  MSMOE_CHECK_EQ(k.dim(1), v.dim(1));
  MSMOE_CHECK_EQ(q.dim(2), k.dim(2));
  MSMOE_CHECK_EQ(k.dim(2), v.dim(2));
}

// Copies head `head` of a [s, heads, d] tensor into a contiguous [s, d]
// buffer (and back), so the per-head score/value products can run through
// the blocked GEMM kernel.
void GatherHead(const float* x, int64_t s, int64_t heads, int64_t head, int64_t d,
                float* out) {
  for (int64_t t = 0; t < s; ++t) {
    const float* src = x + (t * heads + head) * d;
    std::copy(src, src + d, out + t * d);
  }
}

void ScatterHead(const float* in, int64_t s, int64_t heads, int64_t head, int64_t d,
                 float* x) {
  for (int64_t t = 0; t < s; ++t) {
    std::copy(in + t * d, in + (t + 1) * d, x + (t * heads + head) * d);
  }
}

}  // namespace

Tensor AttentionCore(const Tensor& q, const Tensor& k, const Tensor& v, int64_t gqa_ratio,
                     AttentionCoreCache* cache) {
  CheckShapes(q, k, v, gqa_ratio);
  const int64_t s = q.dim(0);
  const int64_t hq = q.dim(1);
  const int64_t hkv = k.dim(1);
  const int64_t d = q.dim(2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  // Fully written below: every head writes its probs slab (zeros included,
  // for the causal mask) and its out slices.
  Tensor out = Tensor::Uninit({s, hq, d});
  Tensor probs = Tensor::Uninit({hq, s, s});
  // Heads split across the intra-rank worker pool: each head owns its probs
  // slab and its (strided) slices of `out`, so shards write disjoint memory
  // and results are independent of the head-to-worker assignment.
  ParallelFor(hq, /*grain=*/1, [&](int64_t h0, int64_t h1) {
    // Per-worker scratch from the thread workspace: the worker pool threads
    // persist, so steady-state steps reuse these without allocating.
    Workspace& ws = ThreadWorkspace();
    float* qh = ws.Floats("attn.qh", s * d);
    float* kvh = ws.Floats("attn.kvh", s * d);
    float* oh = ws.Floats("attn.oh", s * d);
    for (int64_t head = h0; head < h1; ++head) {
      const int64_t kv_head = head / gqa_ratio;
      float* scores = probs.data() + head * s * s;
      // scores = scale * Q_h @ K_h^T over the full [s, s] square (the
      // nested GEMM runs inline on this shard)...
      GatherHead(q.data(), s, hq, head, d, qh);
      GatherHead(k.data(), s, hkv, kv_head, d, kvh);
      Gemm(false, true, s, s, d, scale, qh, kvh, 0.0f, scores);
      // ...then causal softmax per row: only keys 0..t survive.
      for (int64_t t = 0; t < s; ++t) {
        float* prob_row = scores + t * s;
        float max_score = prob_row[0];
        for (int64_t u = 1; u <= t; ++u) {
          max_score = std::max(max_score, prob_row[u]);
        }
        double total = 0.0;
        for (int64_t u = 0; u <= t; ++u) {
          prob_row[u] = std::exp(prob_row[u] - max_score);
          total += prob_row[u];
        }
        const float inv_total = static_cast<float>(1.0 / total);
        for (int64_t u = 0; u <= t; ++u) {
          prob_row[u] *= inv_total;
        }
        for (int64_t u = t + 1; u < s; ++u) {
          prob_row[u] = 0.0f;
        }
      }
      // out_h = probs @ V_h; masked entries are exact zeros, so the full
      // GEMM equals the causal sum.
      GatherHead(v.data(), s, hkv, kv_head, d, kvh);
      Gemm(false, false, s, d, s, 1.0f, scores, kvh, 0.0f, oh);
      ScatterHead(oh, s, hq, head, d, out.data());
    }
  });
  if (cache != nullptr) {
    cache->probs = std::move(probs);
  }
  return out;
}

AttentionCoreGrads AttentionCoreBackward(const Tensor& dout, const Tensor& q, const Tensor& k,
                                         const Tensor& v, int64_t gqa_ratio,
                                         const AttentionCoreCache& cache) {
  CheckShapes(q, k, v, gqa_ratio);
  const int64_t s = q.dim(0);
  const int64_t hq = q.dim(1);
  const int64_t hkv = k.dim(1);
  const int64_t d = q.dim(2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  AttentionCoreGrads grads;
  grads.dq = Tensor({s, hq, d});
  grads.dk = Tensor({s, hkv, d});
  grads.dv = Tensor({s, hkv, d});

  // dk/dv accumulate across the gqa_ratio query heads sharing a KV head, so
  // the parallel unit is the KV head group: within a shard the query heads
  // run in ascending order, keeping the accumulation order identical to the
  // serial loop for any worker count.
  ParallelFor(hkv, /*grain=*/1, [&](int64_t kv0, int64_t kv1) {
    float* dp = ThreadWorkspace().Floats("attn.dp", s);
    for (int64_t kv_head = kv0; kv_head < kv1; ++kv_head) {
      for (int64_t sub = 0; sub < gqa_ratio; ++sub) {
        const int64_t head = kv_head * gqa_ratio + sub;
        for (int64_t t = 0; t < s; ++t) {
          const float* prob_row = cache.probs.data() + (head * s + t) * s;
          const float* dout_vec = dout.data() + (t * hq + head) * d;
          const float* q_vec = q.data() + (t * hq + head) * d;
          float* dq_vec = grads.dq.data() + (t * hq + head) * d;

          // dV[u] += p[u] * dout; dp[u] = dout . v[u].
          // Softmax backward: dscore[u] = p[u] * (dp[u] - sum_w p[w] dp[w]).
          double dot_p_dp = 0.0;
          // First pass computes dp[0..t] and the weighted sum.
          for (int64_t u = 0; u <= t; ++u) {
            const float* v_vec = v.data() + (u * hkv + kv_head) * d;
            float acc = 0.0f;
            for (int64_t e = 0; e < d; ++e) {
              acc += dout_vec[e] * v_vec[e];
            }
            dp[u] = acc;
            dot_p_dp += static_cast<double>(prob_row[u]) * acc;
          }
          for (int64_t u = 0; u <= t; ++u) {
            const float p_u = prob_row[u];
            const float dscore =
                p_u * (dp[u] - static_cast<float>(dot_p_dp));
            const float* k_vec = k.data() + (u * hkv + kv_head) * d;
            float* dk_vec = grads.dk.data() + (u * hkv + kv_head) * d;
            float* dv_vec = grads.dv.data() + (u * hkv + kv_head) * d;
            for (int64_t e = 0; e < d; ++e) {
              dq_vec[e] += dscore * scale * k_vec[e];
              dk_vec[e] += dscore * scale * q_vec[e];
              dv_vec[e] += p_u * dout_vec[e];
            }
          }
        }
      }
    }
  });
  return grads;
}

}  // namespace msmoe
