file(REMOVE_RECURSE
  "CMakeFiles/msmoe_comm.dir/collective_group.cc.o"
  "CMakeFiles/msmoe_comm.dir/collective_group.cc.o.d"
  "CMakeFiles/msmoe_comm.dir/hierarchical.cc.o"
  "CMakeFiles/msmoe_comm.dir/hierarchical.cc.o.d"
  "CMakeFiles/msmoe_comm.dir/ring_algorithms.cc.o"
  "CMakeFiles/msmoe_comm.dir/ring_algorithms.cc.o.d"
  "libmsmoe_comm.a"
  "libmsmoe_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msmoe_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
