#include "src/model/router.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"
#include "src/base/math_util.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {

RoutingResult RouteTokens(const Tensor& logits, const RouterConfig& config) {
  MSMOE_CHECK_EQ(logits.ndim(), 2);
  const int64_t tokens = logits.dim(0);
  const int64_t experts = logits.dim(1);
  MSMOE_CHECK_EQ(experts, config.num_experts);
  MSMOE_CHECK_GE(config.top_k, 1);
  MSMOE_CHECK_LE(config.top_k, experts);
  const int64_t k = config.top_k;

  RoutingResult result;
  result.tokens = tokens;
  result.top_k = k;
  result.probs = Softmax(logits);
  result.expert_index.assign(static_cast<size_t>(tokens * k), 0);
  result.combine_weight = Tensor::Uninit({tokens, k});  // every slot written below
  result.dropped.assign(static_cast<size_t>(tokens * k), 0);
  result.expert_counts.assign(static_cast<size_t>(experts), 0);

  // Top-k selection per token (descending prob, ties by lower expert index),
  // then renormalize the selected probabilities to combine weights. A
  // streaming small-k insertion replaces the per-token partial_sort: experts
  // scan in ascending index keeping a k-deep sorted buffer, and the strict
  // `>` comparisons reproduce the partial_sort tie-breaking exactly — an
  // equal-probability later index never displaces an earlier one. The hot
  // path per expert is one compare against the current floor; the shift
  // loop only runs on the O(k log e) actual insertions.
  std::vector<int64_t> order(static_cast<size_t>(k));
  for (int64_t t = 0; t < tokens; ++t) {
    const float* p = result.probs.data() + t * experts;
    int64_t filled = 0;
    for (int64_t e = 0; e < experts; ++e) {
      const float v = p[e];
      if (filled == k && !(v > p[order[static_cast<size_t>(k - 1)]])) {
        continue;  // below (or tied with) the floor: partial_sort keeps the
                   // earlier index, so e loses
      }
      int64_t pos = std::min(filled, k - 1);
      while (pos > 0 && v > p[order[static_cast<size_t>(pos - 1)]]) {
        order[static_cast<size_t>(pos)] = order[static_cast<size_t>(pos - 1)];
        --pos;
      }
      order[static_cast<size_t>(pos)] = e;
      filled = std::min(filled + 1, k);
    }
    double selected_sum = 0.0;
    for (int64_t slot = 0; slot < k; ++slot) {
      selected_sum += p[order[static_cast<size_t>(slot)]];
    }
    for (int64_t slot = 0; slot < k; ++slot) {
      const int64_t e = order[static_cast<size_t>(slot)];
      result.expert_index[static_cast<size_t>(t * k + slot)] = e;
      result.combine_weight.At(t, slot) = static_cast<float>(p[e] / selected_sum);
    }
  }

  // Capacity-based dropping, in token order per expert.
  int64_t capacity = 0;
  if (config.capacity_factor > 0.0) {
    capacity = static_cast<int64_t>(
        std::ceil(config.capacity_factor * static_cast<double>(tokens * k) /
                  static_cast<double>(experts)));
  }
  for (int64_t t = 0; t < tokens; ++t) {
    for (int64_t slot = 0; slot < k; ++slot) {
      const int64_t e = result.expert_index[static_cast<size_t>(t * k + slot)];
      auto& count = result.expert_counts[static_cast<size_t>(e)];
      if (capacity > 0 && count >= capacity) {
        result.dropped[static_cast<size_t>(t * k + slot)] = 1;
        result.combine_weight.At(t, slot) = 0.0f;
      } else {
        ++count;
      }
    }
  }

  // Group-wise auxiliary balance loss:
  //   L = coeff * G * sum_g f_g * P_g,
  // f_g = fraction of routed copies to group g (pre-drop, constant w.r.t.
  // gradients), P_g = mean over tokens of total group probability.
  if (config.aux_loss_coeff > 0.0) {
    const int64_t group_size = std::max<int64_t>(1, config.experts_per_group);
    const int64_t groups = CeilDiv(experts, group_size);
    std::vector<double> routed_fraction(static_cast<size_t>(groups), 0.0);
    std::vector<double> mean_prob(static_cast<size_t>(groups), 0.0);
    for (int64_t t = 0; t < tokens; ++t) {
      for (int64_t slot = 0; slot < k; ++slot) {
        const int64_t e = result.expert_index[static_cast<size_t>(t * k + slot)];
        routed_fraction[static_cast<size_t>(e / group_size)] += 1.0;
      }
      for (int64_t e = 0; e < experts; ++e) {
        mean_prob[static_cast<size_t>(e / group_size)] += result.probs.At(t, e);
      }
    }
    double loss = 0.0;
    for (int64_t g = 0; g < groups; ++g) {
      routed_fraction[static_cast<size_t>(g)] /= static_cast<double>(tokens * k);
      mean_prob[static_cast<size_t>(g)] /= static_cast<double>(tokens);
      loss += routed_fraction[static_cast<size_t>(g)] * mean_prob[static_cast<size_t>(g)];
    }
    result.aux_loss = config.aux_loss_coeff * static_cast<double>(groups) * loss;
  }
  return result;
}

Tensor RouterBackward(const RoutingResult& routing, const Tensor& dcombine_weight,
                      const RouterConfig& config) {
  const int64_t tokens = routing.tokens;
  const int64_t experts = config.num_experts;
  const int64_t k = routing.top_k;
  MSMOE_CHECK_EQ(dcombine_weight.dim(0), tokens);
  MSMOE_CHECK_EQ(dcombine_weight.dim(1), k);

  // d(loss)/d(probs): from combine weights w_i = p_i / S with S the selected
  // sum: dw_i/dp_j = (delta_ij - w_i) / S for selected j, plus the aux-loss
  // term coeff * G * f_g / tokens on every prob.
  Tensor dprobs({tokens, experts});
  for (int64_t t = 0; t < tokens; ++t) {
    double selected_sum = 0.0;
    for (int64_t slot = 0; slot < k; ++slot) {
      const int64_t e = routing.expert_index[static_cast<size_t>(t * k + slot)];
      selected_sum += routing.probs.At(t, e);
    }
    // sum_i dL/dw_i * w_i (over kept slots).
    double dot = 0.0;
    for (int64_t slot = 0; slot < k; ++slot) {
      if (routing.dropped[static_cast<size_t>(t * k + slot)] != 0) {
        continue;
      }
      dot += static_cast<double>(dcombine_weight.At(t, slot)) *
             routing.combine_weight.At(t, slot);
    }
    for (int64_t slot = 0; slot < k; ++slot) {
      const int64_t e = routing.expert_index[static_cast<size_t>(t * k + slot)];
      double grad = -dot;
      if (routing.dropped[static_cast<size_t>(t * k + slot)] == 0) {
        grad += dcombine_weight.At(t, slot);
      }
      dprobs.At(t, e) += static_cast<float>(grad / selected_sum);
    }
  }
  if (config.aux_loss_coeff > 0.0) {
    const int64_t group_size = std::max<int64_t>(1, config.experts_per_group);
    const int64_t groups = CeilDiv(experts, group_size);
    std::vector<double> routed_fraction(static_cast<size_t>(groups), 0.0);
    for (int64_t t = 0; t < tokens; ++t) {
      for (int64_t slot = 0; slot < k; ++slot) {
        const int64_t e = routing.expert_index[static_cast<size_t>(t * k + slot)];
        routed_fraction[static_cast<size_t>(e / group_size)] += 1.0;
      }
    }
    for (int64_t g = 0; g < groups; ++g) {
      routed_fraction[static_cast<size_t>(g)] /= static_cast<double>(tokens * k);
    }
    const double factor = config.aux_loss_coeff * static_cast<double>(groups) /
                          static_cast<double>(tokens);
    for (int64_t t = 0; t < tokens; ++t) {
      for (int64_t e = 0; e < experts; ++e) {
        dprobs.At(t, e) +=
            static_cast<float>(factor * routed_fraction[static_cast<size_t>(e / group_size)]);
      }
    }
  }
  return SoftmaxBackward(dprobs, routing.probs);
}

DispatchPlan BuildDispatchPlan(const RoutingResult& routing, int64_t num_experts) {
  const int64_t tokens = routing.tokens;
  const int64_t k = routing.top_k;
  DispatchPlan plan;
  plan.slot_to_row.assign(static_cast<size_t>(tokens * k), -1);
  plan.expert_offsets.assign(static_cast<size_t>(num_experts + 1), 0);

  for (int64_t e = 0; e < num_experts; ++e) {
    plan.expert_offsets[static_cast<size_t>(e + 1)] =
        plan.expert_offsets[static_cast<size_t>(e)] +
        routing.expert_counts[static_cast<size_t>(e)];
  }
  const int64_t total = plan.expert_offsets[static_cast<size_t>(num_experts)];
  plan.row_map.assign(static_cast<size_t>(total), 0);

  std::vector<int64_t> cursor(plan.expert_offsets.begin(), plan.expert_offsets.end() - 1);
  for (int64_t t = 0; t < tokens; ++t) {
    for (int64_t slot = 0; slot < k; ++slot) {
      if (routing.dropped[static_cast<size_t>(t * k + slot)] != 0) {
        continue;
      }
      const int64_t e = routing.expert_index[static_cast<size_t>(t * k + slot)];
      const int64_t row = cursor[static_cast<size_t>(e)]++;
      plan.row_map[static_cast<size_t>(row)] = t;
      plan.slot_to_row[static_cast<size_t>(t * k + slot)] = row;
    }
  }
  return plan;
}

}  // namespace msmoe
