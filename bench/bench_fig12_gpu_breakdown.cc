// Figure 12: performance breakdown of training Mixtral-8x7B on different
// GPUs (H800, H20, A100; 32 GPUs, DP=4, TP=8 for Megatron vs SP=EP=8 for
// MegaScale-MoE): (a) iteration-time breakdown into exposed communication /
// FlashAttention / GEMM / other; (b) MFU comparison. Also prints the
// Table 4 GPU specifications and the Figure 1 evolution data the analysis
// rests on.
#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/core/sim_trainer.h"
#include "src/hw/gpu_spec.h"
#include "src/model/config.h"

namespace msmoe {
namespace {

void PrintTable4AndFig1() {
  TablePrinter specs({"GPU", "Compute (TFLOPS)", "Memory Cap. (GB)", "Memory Bw. (TB/s)",
                      "NVLink Bw. (GB/s)", "NIC (GB/s)", "Year",
                      "NVLink bytes/kFLOP"});
  for (const GpuSpec& gpu : AllGpuSpecs()) {
    specs.AddRow({gpu.name, TablePrinter::Fmt(gpu.peak_tflops, 0),
                  TablePrinter::Fmt(gpu.memory_gb, 0),
                  TablePrinter::Fmt(gpu.memory_bw_tbps, 2),
                  TablePrinter::Fmt(gpu.nvlink_gbps, 0),
                  TablePrinter::Fmt(gpu.nic_gbps, 1),
                  TablePrinter::Fmt(static_cast<int64_t>(gpu.year)),
                  TablePrinter::Fmt(gpu.NvlinkBytesPerKiloFlop(), 3)});
  }
  specs.Print("Table 4 specifications + Figure 1 evolution (declining "
              "bytes/FLOP is the communication-wall trend):");
}

void Run() {
  PrintHeader("Figure 12 — Mixtral-8x7B breakdown across GPUs",
              "32 GPUs, DP=4, TP=8 (Megatron) vs SP=EP=8 (MegaScale-MoE)");
  PrintPaperNote(
      "MegaScale-MoE outperforms Megatron-LM by up to 1.58x in MFU; MFU "
      "decreases as GPU compute capability increases (H20 > A100 > H800)");

  PrintTable4AndFig1();

  const ModelConfig model = ModelConfigByName("Mixtral-8x7B").value();
  TablePrinter table({"GPU", "System", "Iteration (s)", "Exposed comm (s)", "FlashAttn (s)",
                      "GEMM (s)", "Other (s)", "MFU (%)"});
  TablePrinter mfu_table({"GPU", "Megatron MFU (%)", "MegaScale MFU (%)", "Ratio"});
  for (const char* gpu : {"H800", "H20", "A100"}) {
    const ClusterSpec cluster = MakeCluster(gpu, 32).value();
    const IterationReport megatron =
        SimulateTraining(TrainJobConfig::Megatron(model, cluster, 1, 32)).value();
    const IterationReport megascale =
        SimulateTraining(TrainJobConfig::MegaScaleMoe(model, cluster, 1, 32)).value();
    for (const auto& [name, report] :
         {std::pair<const char*, const IterationReport*>{"Megatron-LM", &megatron},
          {"MegaScale-MoE", &megascale}}) {
      table.AddRow({gpu, name, TablePrinter::Fmt(report->iteration_s, 2),
                    TablePrinter::Fmt(report->exposed_comm_s, 2),
                    TablePrinter::Fmt(report->flash_s, 2),
                    TablePrinter::Fmt(report->gemm_s, 2),
                    TablePrinter::Fmt(report->other_s, 2),
                    TablePrinter::Fmt(report->mfu * 100.0, 1)});
    }
    mfu_table.AddRow({gpu, TablePrinter::Fmt(megatron.mfu * 100.0, 1),
                      TablePrinter::Fmt(megascale.mfu * 100.0, 1),
                      TablePrinter::Fmt(megascale.mfu / megatron.mfu, 2) + "x"});
  }
  table.Print("Fig 12a — iteration-time breakdown:");
  mfu_table.Print("Fig 12b — MFU comparison:");
}

}  // namespace
}  // namespace msmoe

int main() {
  msmoe::Run();
  return 0;
}
