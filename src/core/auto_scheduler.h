// Automatic operator scheduling (§7 "Holistic vs. automatic").
//
// The paper's inter-operator overlap is hand-scheduled: engineers chose the
// operator execution order, the stream assignments, and the concurrency of
// communication with computation. §7 proposes automating that search; this
// module implements it — a random-restart local search over (a) topological
// reorderings of the operator list (which fixes each stream's FIFO order)
// and (b) the stream assignment of communication operators — evaluated
// against the discrete-event graph executor.
//
// The bench (`bench_ablation_scheduler`) compares three schedules of the
// same MoE-layer backward graph: naive (single-stream, declaration order),
// the hand-tuned holistic schedule, and the automatic search.
#ifndef MSMOE_SRC_CORE_AUTO_SCHEDULER_H_
#define MSMOE_SRC_CORE_AUTO_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/sim/graph.h"

namespace msmoe {

struct ScheduleSearchOptions {
  int iterations = 2000;      // local-search moves
  int restarts = 4;           // random restarts
  uint64_t seed = 1;
  int num_streams = 2;
};

struct ScheduleSearchResult {
  double declared_makespan_us = 0.0;  // the input ordering, as-is
  double best_makespan_us = 0.0;
  int moves_tried = 0;
  int moves_accepted = 0;
  // The winning schedule, with deps renumbered, runnable via ExecuteGraph.
  std::vector<SimOp> best_ops;
  // The same winning schedule in the INPUT index space: best_order is a
  // permutation of [0, ops.size()) and best_streams[i] is the stream of
  // input op i — the form ExecGraph::ExecuteSchedule takes, so a searched
  // schedule can drive real execution (bench_ablation_scheduler's measured
  // mode).
  std::vector<int> best_order;
  std::vector<int> best_streams;
};

// Searches for a schedule of `ops` minimizing the simulated makespan. Op
// dependencies are preserved (only dependency-respecting reorderings and
// stream flips are explored); compute ops stay on stream 0, communication
// ops may move between streams.
ScheduleSearchResult SearchSchedule(const std::vector<SimOp>& ops,
                                    const ScheduleSearchOptions& options);

}  // namespace msmoe

#endif  // MSMOE_SRC_CORE_AUTO_SCHEDULER_H_
