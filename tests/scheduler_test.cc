#include <gtest/gtest.h>

#include "src/core/auto_scheduler.h"
#include "src/core/layer_program.h"
#include "src/model/config.h"
#include "src/sim/pipeline_event_sim.h"
#include "src/sim/pipeline_sim.h"

namespace msmoe {
namespace {

// --- Auto scheduler (§7 holistic vs automatic) ---

TEST(AutoSchedulerTest, EmptyGraph) {
  ScheduleSearchResult result = SearchSchedule({}, ScheduleSearchOptions{});
  EXPECT_EQ(result.best_makespan_us, 0.0);
}

TEST(AutoSchedulerTest, FindsObviousOverlap) {
  // comm (20) then independent compute (30) declared on one stream: the
  // search must discover moving comm to stream 1 -> makespan 30.
  std::vector<SimOp> ops = {
      {"comm", 20.0, true, 0, {}, "comm"},
      {"compute", 30.0, false, 0, {}, "gemm"},
  };
  ScheduleSearchOptions options;
  options.iterations = 200;
  ScheduleSearchResult result = SearchSchedule(ops, options);
  EXPECT_DOUBLE_EQ(result.declared_makespan_us, 50.0);
  EXPECT_DOUBLE_EQ(result.best_makespan_us, 30.0);
}

TEST(AutoSchedulerTest, RespectsDependencies) {
  // compute depends on comm: no schedule can beat 20 + 30.
  std::vector<SimOp> ops = {
      {"comm", 20.0, true, 0, {}, "comm"},
      {"compute", 30.0, false, 0, {0}, "gemm"},
  };
  ScheduleSearchOptions options;
  options.iterations = 300;
  ScheduleSearchResult result = SearchSchedule(ops, options);
  EXPECT_DOUBLE_EQ(result.best_makespan_us, 50.0);
  // And the winning schedule re-executes to the same makespan.
  EXPECT_DOUBLE_EQ(ExecuteGraph(result.best_ops, options.num_streams).makespan, 50.0);
}

TEST(AutoSchedulerTest, ReordersFifoPriority) {
  // Stream 0 declared order: long_blockeR first. comm is on stream 1 but
  // the dependent compute "after_comm" is declared behind "long"; swapping
  // lets after_comm start when comm finishes -> makespan 60 instead of 70.
  std::vector<SimOp> ops = {
      {"comm", 20.0, true, 1, {}, "comm"},
      {"long", 50.0, false, 0, {}, "gemm"},
      {"after_comm", 10.0, false, 0, {0}, "gemm"},
  };
  // Declared: long [0,50], after_comm [50,60] -> 60. Already optimal? The
  // alternative order runs after_comm [20,30], long [30,80] -> 80. So the
  // search must KEEP the declared order.
  ScheduleSearchOptions options;
  options.iterations = 400;
  ScheduleSearchResult result = SearchSchedule(ops, options);
  EXPECT_DOUBLE_EQ(result.best_makespan_us, 60.0);
}

TEST(AutoSchedulerTest, NeverWorseThanDeclared) {
  const CostModel cost(MakeCluster("H800", 8).value());
  for (const ModelConfig& model : EvaluationModels()) {
    ExecutionOptions options = ExecutionOptions::MegaScale(model, 8);
    const LayerGraphs graphs = BuildLayerGraphs(cost, model, options, 1, model.seq_len, 8);
    ScheduleSearchOptions search;
    search.iterations = 150;
    search.restarts = 2;
    const ScheduleSearchResult result = SearchSchedule(graphs.backward, search);
    EXPECT_LE(result.best_makespan_us, result.declared_makespan_us + 1e-9) << model.name;
    EXPECT_GT(result.moves_tried, 0);
  }
}

TEST(AutoSchedulerTest, BestOrderAndStreamsReproduceBestOps) {
  // The input-index-space schedule (best_order / best_streams) must be the
  // SAME schedule as the materialized best_ops: replaying it through the
  // simulator yields the reported best makespan, and it is a valid
  // permutation (every op exactly once, deps before dependents) — the form
  // ExecGraph::ExecuteSchedule consumes for measured runs.
  const CostModel cost(MakeCluster("H800", 8).value());
  const ModelConfig model = ModelConfigByName("Mixtral-8x7B").value();
  ExecutionOptions options = ExecutionOptions::MegaScale(model, 8);
  const LayerGraphs graphs = BuildLayerGraphs(cost, model, options, 1, model.seq_len, 8);
  ScheduleSearchOptions search;
  search.iterations = 200;
  search.restarts = 2;
  const ScheduleSearchResult result = SearchSchedule(graphs.backward, search);

  const size_t count = graphs.backward.size();
  ASSERT_EQ(result.best_order.size(), count);
  ASSERT_EQ(result.best_streams.size(), count);
  std::vector<bool> seen(count, false);
  std::vector<int> position(count, -1);
  for (size_t i = 0; i < count; ++i) {
    const int op = result.best_order[i];
    ASSERT_GE(op, 0);
    ASSERT_LT(static_cast<size_t>(op), count);
    EXPECT_FALSE(seen[static_cast<size_t>(op)]) << "op " << op << " scheduled twice";
    seen[static_cast<size_t>(op)] = true;
    position[static_cast<size_t>(op)] = static_cast<int>(i);
  }
  for (size_t i = 0; i < count; ++i) {
    for (const int dep : graphs.backward[i].deps) {
      EXPECT_LT(position[static_cast<size_t>(dep)], position[i])
          << "dep " << dep << " scheduled after op " << i;
    }
  }

  // Rebuild the materialized op list from (order, streams) and cross-check
  // the simulated makespan against both reports.
  std::vector<SimOp> replay;
  for (const int original : result.best_order) {
    SimOp op = graphs.backward[static_cast<size_t>(original)];
    op.stream = result.best_streams[static_cast<size_t>(original)];
    for (int& dep : op.deps) {
      dep = position[static_cast<size_t>(dep)];
    }
    replay.push_back(op);
  }
  const double replayed = ExecuteGraph(replay, search.num_streams).makespan;
  EXPECT_DOUBLE_EQ(replayed, result.best_makespan_us);
  EXPECT_DOUBLE_EQ(ExecuteGraph(result.best_ops, search.num_streams).makespan,
                   result.best_makespan_us);
}

TEST(AutoSchedulerTest, HolisticScheduleNearOptimal) {
  // The paper's point: the hand schedule leaves little on the table. The
  // search should improve the holistic backward graph by at most ~12%.
  const CostModel cost(MakeCluster("H800", 8).value());
  const ModelConfig model = ModelConfigByName("Mixtral-8x7B").value();
  ExecutionOptions options = ExecutionOptions::MegaScale(model, 8);
  options.intra_op_overlap = false;
  const LayerGraphs graphs = BuildLayerGraphs(cost, model, options, 1, model.seq_len, 8);
  ScheduleSearchOptions search;
  search.iterations = 800;
  search.restarts = 2;
  const ScheduleSearchResult result = SearchSchedule(graphs.backward, search);
  EXPECT_GT(result.best_makespan_us, result.declared_makespan_us * 0.88);
}

// --- Event-driven pipeline (validates the closed-form model) ---

TEST(PipelineEventTest, SingleStageNoBubble) {
  PipelineEventConfig config;
  config.pp_stages = 1;
  config.num_microbatches = 4;
  config.fwd_chunk_us = 10.0;
  config.bwd_chunk_us = 20.0;
  const PipelineEventResult result = SimulatePipelineEvents(config);
  EXPECT_DOUBLE_EQ(result.makespan_us, 120.0);
  EXPECT_NEAR(result.bubble_fraction, 0.0, 1e-9);
}

TEST(PipelineEventTest, MatchesAnalyticVOne) {
  // Plain 1F1B: the event schedule should land within ~10% of the
  // (p-1)(f+b) closed form.
  PipelineEventConfig config;
  config.pp_stages = 4;
  config.virtual_stages = 1;
  config.num_microbatches = 32;
  config.fwd_chunk_us = 100.0;
  config.bwd_chunk_us = 200.0;
  const PipelineEventResult event = SimulatePipelineEvents(config);

  PipelineConfig analytic;
  analytic.pp_stages = 4;
  analytic.num_microbatches = 32;
  analytic.fwd_us = 100.0;
  analytic.bwd_us = 200.0;
  const PipelineResult closed = SimulatePipeline(analytic);
  EXPECT_GE(event.makespan_us, closed.iteration_us * 0.999);
  EXPECT_LE(event.makespan_us, closed.iteration_us * 1.10);
}

TEST(PipelineEventTest, InFlightBoundedByLimit) {
  PipelineEventConfig config;
  config.pp_stages = 4;
  config.virtual_stages = 1;
  config.num_microbatches = 64;
  config.fwd_chunk_us = 10.0;
  config.bwd_chunk_us = 20.0;
  const PipelineEventResult result = SimulatePipelineEvents(config);
  EXPECT_LE(result.peak_in_flight, 4);  // p micro-batches for plain 1F1B
}

TEST(PipelineEventTest, InterleavingShrinksBubble) {
  PipelineEventConfig config;
  config.pp_stages = 8;
  config.num_microbatches = 32;
  config.virtual_stages = 1;
  config.fwd_chunk_us = 100.0;
  config.bwd_chunk_us = 200.0;
  const double bubble_v1 = SimulatePipelineEvents(config).bubble_fraction;
  config.virtual_stages = 4;
  config.fwd_chunk_us = 25.0;
  config.bwd_chunk_us = 50.0;
  const double bubble_v4 = SimulatePipelineEvents(config).bubble_fraction;
  EXPECT_LT(bubble_v4, bubble_v1);
}

TEST(PipelineEventTest, MoreMicrobatchesAmortizeBubble) {
  PipelineEventConfig config;
  config.pp_stages = 4;
  config.fwd_chunk_us = 10.0;
  config.bwd_chunk_us = 20.0;
  config.num_microbatches = 4;
  const double small = SimulatePipelineEvents(config).bubble_fraction;
  config.num_microbatches = 32;
  const double large = SimulatePipelineEvents(config).bubble_fraction;
  EXPECT_LT(large, small);
}

TEST(PipelineEventTest, P2PDelaysFill) {
  PipelineEventConfig config;
  config.pp_stages = 4;
  config.num_microbatches = 8;
  config.fwd_chunk_us = 10.0;
  config.bwd_chunk_us = 20.0;
  config.p2p_us = 0.0;
  const double without = SimulatePipelineEvents(config).makespan_us;
  config.p2p_us = 5.0;
  const double with = SimulatePipelineEvents(config).makespan_us;
  EXPECT_GT(with, without);
}

TEST(PipelineEventTest, AllDevicesDoEqualWork) {
  PipelineEventConfig config;
  config.pp_stages = 4;
  config.num_microbatches = 16;
  config.fwd_chunk_us = 10.0;
  config.bwd_chunk_us = 20.0;
  const PipelineEventResult result = SimulatePipelineEvents(config);
  for (double busy : result.device_busy_us) {
    EXPECT_DOUBLE_EQ(busy, 16.0 * 30.0);
  }
}

}  // namespace
}  // namespace msmoe
