// Fault classification and retry policy for the elastic trainer.
//
// Production MoE training distinguishes faults a retry can clear (a slow
// link, a transient NIC stall, a preempted host that comes back) from
// faults that keep recurring on the same rank (a dying GPU, flapping HBM).
// The first kind is handled by rollback + replay; the second must remove
// the rank from the job before it burns the whole replay budget.
//
// RecoveryPolicy is a PURE, deterministic classifier: every rank runs an
// identical replica over the identical fault sequence (the sticky group
// error is the same object on all ranks, and the suspect attribution comes
// from the shared communicator state), so every replica reaches the same
// verdict without any extra coordination — the same trick the trainer's
// rollback protocol already plays.
//
// Verdict table (see DESIGN.md "Elastic recovery"):
//   kTransient  retryable code, retry budget left, suspect under the
//               strike limit        -> rollback + exponential backoff + replay
//   kPermanent  suspect accumulated `rank_strike_limit` strikes, or the
//               retry budget ran out with a known suspect
//                                   -> shrink to survivors (src/comm/elastic.h)
//   kFatal      non-retryable, non-rollback-repairable code (config/logic
//               errors), or budget exhausted with NO suspect to evict
//                                   -> surface loudly; do not retry
//
// kDataLoss (checksum divergence) is special-cased: it is NOT retryable as
// an op (re-running the op reproduces the corrupt payload) but IS
// rollback-repairable, so it classifies like a retryable fault here — the
// recovery action is a rollback, which discards the corruption.
#ifndef MSMOE_SRC_CORE_RECOVERY_POLICY_H_
#define MSMOE_SRC_CORE_RECOVERY_POLICY_H_

#include <string>
#include <vector>

#include "src/base/status.h"

namespace msmoe {

enum class FaultVerdict {
  kTransient = 0,  // rollback + backoff + replay on the same membership
  kPermanent,      // evict the culprit: shrink to survivors
  kFatal,          // unrecoverable; surface the error
};

const char* FaultVerdictName(FaultVerdict verdict);

struct RecoveryPolicyConfig {
  // Consecutive failed recovery attempts (without an intervening successful
  // step) before a fault stops being "transient".
  int max_retries = 3;
  // Exponential backoff before each retry: min(base * multiplier^(attempt-1),
  // max). Models the production drain/requeue delay, scaled down.
  double backoff_base_ms = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 1000.0;
  // Strikes (failures attributed to the same rank) before that rank is
  // declared permanently failed even if the retry budget remains.
  int rank_strike_limit = 2;
};

Status ValidateRecoveryPolicyConfig(const RecoveryPolicyConfig& config);

struct RecoveryDecision {
  FaultVerdict verdict = FaultVerdict::kFatal;
  // Sleep before retrying (kTransient only; 0 otherwise).
  double backoff_ms = 0.0;
  // 1-based consecutive-failure attempt this decision responds to.
  int attempt = 0;
  // The rank this failure is attributed to (-1 unknown). For kPermanent
  // this is the rank to evict.
  int culprit_rank = -1;
  // Human-readable classification rationale (logged into RecoveryEvents).
  std::string reason;
};

class RecoveryPolicy {
 public:
  explicit RecoveryPolicy(const RecoveryPolicyConfig& config);

  // Classifies the first observed error of a failed step. `suspect_rank` is
  // the best attribution available (Communicator::SuspectRank, straggler
  // report, ...); -1 if unknown. Deterministic: identical call sequences
  // yield identical decisions on every replica.
  RecoveryDecision OnFailure(const Status& status, int suspect_rank);

  // A step completed cleanly: the consecutive-failure counter resets.
  // Strikes do NOT reset — a rank that keeps failing every few steps is
  // exactly the recurring-fault signature the strike limit exists for.
  void OnStepSuccess();

  int attempt() const { return attempt_; }
  int strikes(int rank) const;

 private:
  RecoveryPolicyConfig config_;
  int attempt_ = 0;                // consecutive failures, reset on success
  std::vector<int> strikes_;       // indexed by rank, grown on demand
};

}  // namespace msmoe

#endif  // MSMOE_SRC_CORE_RECOVERY_POLICY_H_
