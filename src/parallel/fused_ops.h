// Functional (CPU) versions of the §4.2 fused communication-computation
// kernels, expressed as recorded task graphs on the runtime executor.
//
// On GPUs these fuse tile-level communication signals into GEMM kernels; on
// the thread-rank substrate the same dataflow is expressed as an ExecGraph
// (src/core/exec_graph.h): the chunked collective is STARTED at record time
// on the rank's comm-proxy thread, per-chunk wait/signal ops live on a
// communication stream, and per-tile GEMM closures live on the compute
// stream with explicit deps. Executing the graph with its declared schedule
// reproduces the hand-written double-buffered pipeline; because the
// schedule is data, any dependency-respecting reordering (including
// auto_scheduler output) produces bitwise the same result — processing
// tiles in arrival order, with any tile split, matches the unfused
// collective-then-GEMM sequence exactly. The timing benefit is modeled
// separately by src/sim/overlap_sim.
#ifndef MSMOE_SRC_PARALLEL_FUSED_OPS_H_
#define MSMOE_SRC_PARALLEL_FUSED_OPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/arena.h"
#include "src/core/exec_graph.h"
#include "src/parallel/sp_attention.h"
#include "src/tensor/tensor.h"

namespace msmoe {

// One recorded fused pipeline: the graph plus every buffer its closures
// touch. Execute the graph (declared schedule or any valid reordering),
// then take `y`. Field order is load-bearing for abort semantics: `handle`
// is declared after the buffers so on destruction it cancels/retires the
// in-flight collective BEFORE the staging buffer and output die, and the
// graph (whose closures reference everything) dies first.
//
// The recorded closures also reference the caller's input tensors (x_local,
// weights), which must outlive execution — the usual eager call pattern.
struct FusedPipeline {
  // Pool-backed and UNINITIALIZED on record: the all-gather overwrites every
  // gathered row, and the reduce-scatter send slices are all written by
  // beta == 0 tile GEMMs before their signal releases them.
  PooledBuffer staging;            // gathered input (AG) or send buffer (RS)
  Tensor y;                        // pipeline output
  std::vector<int64_t> row_token;  // grouped-GEMM only: token of each row
  std::unique_ptr<CommHandle> handle;
  ExecGraph graph;
};

// all-gather + GEMM (the TP-attention entry kernel, Fig 9 pattern):
//   Y = AllGather(x_local) @ w
// x_local is [rows_local, k]; w is [k, cols]; Y is [n * rows_local, cols].
// The GEMM over source-rank chunk r starts as soon as chunk r "arrives";
// row_tile controls the tile granularity within each chunk.
//
// Record* starts the collective and returns the recorded graph without
// executing it; the plain entry point records and executes the declared
// two-stream schedule. Graph shape: chunk waits chained on stream 1 (chunks
// complete in index order on the wire), chunk GEMMs on stream 0, each
// depending on its wait.
std::unique_ptr<FusedPipeline> RecordFusedAllGatherGemm(const ShardContext& ctx,
                                                        const Tensor& x_local,
                                                        const Tensor& w, int64_t row_tile);
Tensor FusedAllGatherGemm(const ShardContext& ctx, const Tensor& x_local, const Tensor& w,
                          int64_t row_tile);

// GEMM + reduce-scatter (the TP-attention exit kernel):
//   Y_local = ReduceScatter(x_local @ w_shard)
// Row-parallel linear: x_local is [rows, k_shard] (this rank's slice of the
// contraction dim), w_shard is [k_shard, cols]; every rank's partial output
// is summed and row-chunk r lands on rank r: Y_local is [rows / n, cols].
// Graph shape: independent per-tile partial GEMMs on stream 0, a signal op
// per tile on stream 1 (releasing the producer-gated chunk), and a final
// wait-all depending on every signal.
std::unique_ptr<FusedPipeline> RecordFusedGemmReduceScatter(const ShardContext& ctx,
                                                            const Tensor& x_local,
                                                            const Tensor& w_shard,
                                                            int64_t row_tile);
Tensor FusedGemmReduceScatter(const ShardContext& ctx, const Tensor& x_local,
                              const Tensor& w_shard, int64_t row_tile);

// all-gather + local scatter + grouped GEMM (the EP dispatch kernel):
// gathers every rank's tokens chunk by chunk, selects the rows routed to
// this rank's experts as each chunk arrives (tokens sorted by expert, then
// source rank — the §4.2 ordering), and runs the expert GEMM per expert as
// soon as the expert's rows are complete. Graph shape: chained chunk waits
// on stream 1; one grouped-GEMM compute op per chunk that completes at
// least one expert, firing those experts across the intra-rank worker pool.
//
// token_expert[t] is the expert of local token t (single-expert routing for
// this kernel's contract; the full top-k path lives in EpFfnForward).
// Returns the grouped rows' GEMM output [R_local, cols] and fills
// *row_token with the global token index of each grouped row.
std::unique_ptr<FusedPipeline> RecordFusedAllGatherScatterGroupedGemm(
    const ShardContext& ctx, const Tensor& x_local,
    const std::vector<int64_t>& token_expert, const std::vector<Tensor>& expert_weights,
    int64_t experts_per_rank);
Tensor FusedAllGatherScatterGroupedGemm(const ShardContext& ctx, const Tensor& x_local,
                                        const std::vector<int64_t>& token_expert,
                                        const std::vector<Tensor>& expert_weights,
                                        int64_t experts_per_rank,
                                        std::vector<int64_t>* row_token);

}  // namespace msmoe

#endif  // MSMOE_SRC_PARALLEL_FUSED_OPS_H_
