#include "src/core/auto_scheduler.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/base/logging.h"
#include "src/base/rng.h"

namespace msmoe {
namespace {

// Rebuilds an op list following `order` (a permutation of original indices),
// remapping dependency indices. `streams[i]` overrides the stream of
// original op i.
std::vector<SimOp> Materialize(const std::vector<SimOp>& ops, const std::vector<int>& order,
                               const std::vector<int>& streams) {
  std::vector<int> position(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    position[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  std::vector<SimOp> out;
  out.reserve(ops.size());
  for (int original : order) {
    SimOp op = ops[static_cast<size_t>(original)];
    op.stream = streams[static_cast<size_t>(original)];
    for (int& dep : op.deps) {
      dep = position[static_cast<size_t>(dep)];
    }
    out.push_back(std::move(op));
  }
  return out;
}

double Evaluate(const std::vector<SimOp>& ops, const std::vector<int>& order,
                const std::vector<int>& streams, int num_streams) {
  return ExecuteGraph(Materialize(ops, order, streams), num_streams).makespan;
}

// Direct-dependency test for adjacent-swap validity.
bool DependsDirectly(const SimOp& later, int earlier_index) {
  return std::find(later.deps.begin(), later.deps.end(), earlier_index) != later.deps.end();
}

}  // namespace

ScheduleSearchResult SearchSchedule(const std::vector<SimOp>& ops,
                                    const ScheduleSearchOptions& options) {
  const int count = static_cast<int>(ops.size());
  ScheduleSearchResult result;
  result.declared_makespan_us = ExecuteGraph(ops, options.num_streams).makespan;
  if (count == 0) {
    return result;
  }

  std::vector<int> identity(static_cast<size_t>(count));
  std::iota(identity.begin(), identity.end(), 0);
  std::vector<int> declared_streams(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    declared_streams[static_cast<size_t>(i)] = ops[static_cast<size_t>(i)].stream;
  }

  double best = result.declared_makespan_us;
  std::vector<int> best_order = identity;
  std::vector<int> best_streams = declared_streams;

  Rng rng(options.seed);
  for (int restart = 0; restart < options.restarts; ++restart) {
    // Start each restart from the declared schedule; the first restart also
    // explores from a randomly stream-flipped variant.
    std::vector<int> order = identity;
    std::vector<int> streams = declared_streams;
    if (restart > 0) {
      for (int i = 0; i < count; ++i) {
        if (ops[static_cast<size_t>(i)].is_comm && rng.NextUniform() < 0.5) {
          streams[static_cast<size_t>(i)] =
              static_cast<int>(rng.NextIndex(static_cast<uint64_t>(options.num_streams)));
        }
      }
    }
    double current = Evaluate(ops, order, streams, options.num_streams);

    for (int iter = 0; iter < options.iterations; ++iter) {
      ++result.moves_tried;
      const bool flip_stream = rng.NextUniform() < 0.35;
      if (flip_stream) {
        // Move a communication op to another stream.
        const int index = static_cast<int>(rng.NextIndex(static_cast<uint64_t>(count)));
        if (!ops[static_cast<size_t>(index)].is_comm) {
          continue;
        }
        const int old_stream = streams[static_cast<size_t>(index)];
        streams[static_cast<size_t>(index)] =
            static_cast<int>(rng.NextIndex(static_cast<uint64_t>(options.num_streams)));
        const double candidate = Evaluate(ops, order, streams, options.num_streams);
        if (candidate <= current) {
          current = candidate;
          ++result.moves_accepted;
        } else {
          streams[static_cast<size_t>(index)] = old_stream;
        }
      } else {
        // Swap two adjacent, dependency-free ops (changes FIFO priority).
        const int position =
            static_cast<int>(rng.NextIndex(static_cast<uint64_t>(count - 1)));
        const int a = order[static_cast<size_t>(position)];
        const int b = order[static_cast<size_t>(position + 1)];
        if (DependsDirectly(ops[static_cast<size_t>(b)], a)) {
          continue;  // would break the topological order
        }
        std::swap(order[static_cast<size_t>(position)],
                  order[static_cast<size_t>(position + 1)]);
        const double candidate = Evaluate(ops, order, streams, options.num_streams);
        if (candidate <= current) {
          current = candidate;
          ++result.moves_accepted;
        } else {
          std::swap(order[static_cast<size_t>(position)],
                    order[static_cast<size_t>(position + 1)]);
        }
      }
    }
    if (current < best) {
      best = current;
      best_order = order;
      best_streams = streams;
    }
  }

  result.best_makespan_us = best;
  result.best_ops = Materialize(ops, best_order, best_streams);
  result.best_order = std::move(best_order);
  result.best_streams = std::move(best_streams);
  return result;
}

}  // namespace msmoe
