// Tests for the blocked GEMM compute backend (src/tensor/gemm_kernel.h) and
// the intra-rank worker pool (src/base/parallel_for.h):
//   - exhaustive oracle: every transpose combo x odd/edge sizes x alpha/beta,
//     checked against a double-precision reference and the retained naive
//     kernel
//   - NaN/Inf propagation (the old kernel's `a == 0` skip dropped 0 * Inf)
//   - bitwise determinism across worker counts (the contract fused_ops and
//     fault replay rely on)
//   - ParallelFor edge cases: empty ranges, nesting, exception propagation,
//     concurrent callers
//   - KernelStats counters
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/base/parallel_for.h"
#include "src/base/rng.h"
#include "src/model/grouped_gemm.h"
#include "src/tensor/gemm_kernel.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

// Double-precision reference: op(A) [m x k] times op(B) [k x n] with
// alpha/beta, matching BLAS semantics (alpha == 0 skips A/B, beta == 0
// overwrites C).
void GemmReference(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                   float alpha, const std::vector<float>& a, const std::vector<float>& b,
                   float beta, std::vector<float>* c) {
  const int64_t a_rs = trans_a ? 1 : k;
  const int64_t a_cs = trans_a ? m : 1;
  const int64_t b_rs = trans_b ? 1 : n;
  const int64_t b_cs = trans_b ? k : 1;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double sum = 0.0;
      if (alpha != 0.0f) {
        for (int64_t p = 0; p < k; ++p) {
          sum += static_cast<double>(a[static_cast<size_t>(i * a_rs + p * a_cs)]) *
                 static_cast<double>(b[static_cast<size_t>(p * b_rs + j * b_cs)]);
        }
      }
      float& target = (*c)[static_cast<size_t>(i * n + j)];
      const double prior = beta == 0.0f ? 0.0 : static_cast<double>(beta) * target;
      target = static_cast<float>(prior + static_cast<double>(alpha) * sum);
    }
  }
}

std::vector<float> RandomVector(int64_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(static_cast<size_t>(size));
  for (auto& value : values) {
    value = static_cast<float>(rng.NextGaussian());
  }
  return values;
}

TEST(GemmKernelTest, ExhaustiveOracleAllTransposeCombos) {
  const std::vector<int64_t> sizes = {1, 3, 7, 17, 64, 65};
  const std::vector<float> scalars = {0.0f, 1.0f, 0.5f};
  for (bool trans_a : {false, true}) {
    for (bool trans_b : {false, true}) {
      for (int64_t m : sizes) {
        for (int64_t n : sizes) {
          for (int64_t k : sizes) {
            for (float alpha : scalars) {
              for (float beta : scalars) {
                const std::vector<float> a = RandomVector(m * k, 1);
                const std::vector<float> b = RandomVector(k * n, 2);
                const std::vector<float> c0 = RandomVector(m * n, 3);

                std::vector<float> expected = c0;
                GemmReference(trans_a, trans_b, m, n, k, alpha, a, b, beta, &expected);
                std::vector<float> blocked = c0;
                GemmBlocked(trans_a, trans_b, m, n, k, alpha, a.data(), b.data(), beta,
                            blocked.data());
                std::vector<float> naive = c0;
                GemmNaive(trans_a, trans_b, m, n, k, alpha, a.data(), b.data(), beta,
                          naive.data());

                const double tol =
                    1e-4 * std::max<double>(1.0, std::sqrt(static_cast<double>(k)));
                for (size_t i = 0; i < expected.size(); ++i) {
                  ASSERT_NEAR(blocked[i], expected[i],
                              tol * std::max<double>(1.0, std::fabs(expected[i])))
                      << "blocked ta=" << trans_a << " tb=" << trans_b << " m=" << m
                      << " n=" << n << " k=" << k << " alpha=" << alpha
                      << " beta=" << beta << " i=" << i;
                  ASSERT_NEAR(naive[i], expected[i],
                              tol * std::max<double>(1.0, std::fabs(expected[i])))
                      << "naive ta=" << trans_a << " tb=" << trans_b << " m=" << m
                      << " n=" << n << " k=" << k << " alpha=" << alpha
                      << " beta=" << beta << " i=" << i;
                }
              }
            }
          }
        }
      }
    }
  }
}

// 0 * Inf must produce NaN in the output: a zero in A may not short-circuit
// the k loop. The seed kernel skipped `a_ip == 0.0f` rows, silently dropping
// non-finite values in B.
TEST(GemmKernelTest, ZeroTimesInfPropagatesNan) {
  const int64_t m = 3, n = 4, k = 5;
  std::vector<float> a(static_cast<size_t>(m * k), 0.0f);  // all-zero A
  std::vector<float> b(static_cast<size_t>(k * n), 1.0f);
  b[7] = std::numeric_limits<float>::infinity();
  const int64_t inf_col = 7 % n;

  for (auto* gemm : {&GemmBlocked, &GemmNaive}) {
    std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
    (*gemm)(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        const float value = c[static_cast<size_t>(i * n + j)];
        if (j == inf_col) {
          EXPECT_TRUE(std::isnan(value)) << "i=" << i << " j=" << j;
        } else {
          EXPECT_EQ(value, 0.0f) << "i=" << i << " j=" << j;
        }
      }
    }
  }
}

// BLAS corner cases: alpha == 0 must not read A/B (checked by handing
// NaN-poisoned inputs), beta == 0 must overwrite a NaN-poisoned C.
TEST(GemmKernelTest, AlphaZeroSkipsInputsBetaZeroOverwrites) {
  const int64_t m = 4, n = 4, k = 4;
  std::vector<float> poisoned(static_cast<size_t>(m * k),
                              std::numeric_limits<float>::quiet_NaN());
  for (auto* gemm : {&GemmBlocked, &GemmNaive}) {
    std::vector<float> c(static_cast<size_t>(m * n),
                         std::numeric_limits<float>::quiet_NaN());
    (*gemm)(false, false, m, n, k, 0.0f, poisoned.data(), poisoned.data(), 0.0f,
            c.data());
    for (float value : c) {
      EXPECT_EQ(value, 0.0f);
    }
  }
}

// The determinism contract: results are bitwise identical regardless of the
// worker count. fused_ops_test asserts row-tiled == monolithic GEMM results
// bitwise, and fault replay requires bit-identical recovered losses.
TEST(GemmKernelTest, BitwiseDeterministicAcrossWorkerCounts) {
  const int restore = ParallelWorkerCount();
  const int64_t m = 130, n = 96, k = 70;
  const std::vector<float> a = RandomVector(m * k, 11);
  const std::vector<float> b = RandomVector(k * n, 12);

  SetParallelWorkerCount(1);
  std::vector<float> c1(static_cast<size_t>(m * n), 0.0f);
  GemmBlocked(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c1.data());

  SetParallelWorkerCount(4);
  std::vector<float> c4(static_cast<size_t>(m * n), 0.0f);
  GemmBlocked(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c4.data());
  SetParallelWorkerCount(restore);

  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)), 0);
}

TEST(GemmKernelTest, GroupedGemmDeterministicAcrossWorkerCounts) {
  const int restore = ParallelWorkerCount();
  const int64_t experts = 5, rows = 64, h = 24, f = 40;
  Rng rng(21);
  Tensor x = Tensor::Randn({rows, h}, rng);
  std::vector<Tensor> weights;
  std::vector<int64_t> offsets = {0};
  for (int64_t e = 0; e < experts; ++e) {
    weights.push_back(Tensor::Randn({h, f}, rng));
    offsets.push_back(rows * (e + 1) / experts);
  }

  SetParallelWorkerCount(1);
  Tensor y1 = GroupedGemm(x, offsets, weights);
  SetParallelWorkerCount(4);
  Tensor y4 = GroupedGemm(x, offsets, weights);
  SetParallelWorkerCount(restore);

  ASSERT_EQ(y1.numel(), y4.numel());
  EXPECT_EQ(std::memcmp(y1.data(), y4.data(),
                        static_cast<size_t>(y1.numel()) * sizeof(float)),
            0);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  const int restore = ParallelWorkerCount();
  SetParallelWorkerCount(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& hit : hits) {
    hit.store(0);
  }
  ParallelFor(257, /*grain=*/8, [&](int64_t begin, int64_t end) {
    ASSERT_LE(begin, end);
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  SetParallelWorkerCount(restore);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroAndNegativeLengthAreNoops) {
  int calls = 0;
  ParallelFor(0, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(-5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// Nested ParallelFor must degrade to inline execution in the worker (no
// deadlock, full coverage).
TEST(ParallelForTest, NestedCallsRunInline) {
  const int restore = ParallelWorkerCount();
  SetParallelWorkerCount(4);
  std::atomic<int64_t> total{0};
  ParallelFor(8, 1, [&](int64_t begin, int64_t end) {
    EXPECT_TRUE(InParallelWorker());
    for (int64_t i = begin; i < end; ++i) {
      ParallelFor(16, 1, [&](int64_t inner_begin, int64_t inner_end) {
        total.fetch_add(inner_end - inner_begin);
      });
    }
  });
  EXPECT_FALSE(InParallelWorker());
  SetParallelWorkerCount(restore);
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelForTest, PropagatesWorkerException) {
  const int restore = ParallelWorkerCount();
  SetParallelWorkerCount(4);
  EXPECT_THROW(
      ParallelFor(64, 1,
                  [&](int64_t begin, int64_t) {
                    if (begin >= 32) {
                      throw std::runtime_error("worker boom");
                    }
                  }),
      std::runtime_error);
  // The pool must still be usable after an exception.
  std::atomic<int64_t> total{0};
  ParallelFor(64, 1, [&](int64_t begin, int64_t end) { total.fetch_add(end - begin); });
  SetParallelWorkerCount(restore);
  EXPECT_EQ(total.load(), 64);
}

// Multiple external threads may call ParallelFor at once (rank threads do
// exactly this); each call must see its own complete range.
TEST(ParallelForTest, ConcurrentCallersEachCoverTheirRange) {
  const int restore = ParallelWorkerCount();
  SetParallelWorkerCount(4);
  constexpr int kCallers = 4;
  std::vector<std::thread> threads;
  std::vector<int64_t> totals(kCallers, 0);
  for (int t = 0; t < kCallers; ++t) {
    threads.emplace_back([&, t] {
      std::atomic<int64_t> local{0};
      for (int iter = 0; iter < 20; ++iter) {
        ParallelFor(100, 4, [&](int64_t begin, int64_t end) {
          local.fetch_add(end - begin);
        });
      }
      totals[static_cast<size_t>(t)] = local.load();
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  SetParallelWorkerCount(restore);
  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(totals[static_cast<size_t>(t)], 20 * 100) << "caller " << t;
  }
}

TEST(KernelStatsTest, CountsGemmAndGroupedGemm) {
  ResetKernelStats();
  const int64_t m = 32, n = 16, k = 8;
  const std::vector<float> a = RandomVector(m * k, 31);
  const std::vector<float> b = RandomVector(k * n, 32);
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());

  KernelStatsSnapshot after_gemm = GetKernelStats();
  EXPECT_EQ(after_gemm.gemm_calls, 1u);
  EXPECT_DOUBLE_EQ(after_gemm.gemm_flops, 2.0 * m * n * k);
  EXPECT_GE(after_gemm.gemm_micros, 0.0);
  EXPECT_EQ(after_gemm.grouped_gemm_calls, 0u);

  Rng rng(33);
  Tensor x = Tensor::Randn({10, 6}, rng);
  std::vector<Tensor> weights = {Tensor::Randn({6, 4}, rng), Tensor::Randn({6, 4}, rng)};
  std::vector<int64_t> offsets = {0, 5, 10};
  Tensor y = GroupedGemm(x, offsets, weights);

  KernelStatsSnapshot after_grouped = GetKernelStats();
  EXPECT_EQ(after_grouped.gemm_calls, 1u);  // grouped path bypasses the Gemm counter
  EXPECT_EQ(after_grouped.grouped_gemm_calls, 1u);
  EXPECT_DOUBLE_EQ(after_grouped.grouped_gemm_flops, 2.0 * 10 * 4 * 6);

  ResetKernelStats();
  KernelStatsSnapshot reset = GetKernelStats();
  EXPECT_EQ(reset.gemm_calls, 0u);
  EXPECT_EQ(reset.grouped_gemm_calls, 0u);
  EXPECT_EQ(reset.gemm_flops, 0.0);
}

}  // namespace
}  // namespace msmoe
