#include "src/core/parallelism_planner.h"

#include <sstream>

#include "src/base/logging.h"
#include "src/sim/cost_model.h"

namespace msmoe {
namespace {

constexpr double kElemBytes = 2.0;   // BF16 activations/params
constexpr double kFp32Bytes = 4.0;

}  // namespace

const char* AttnStrategyName(AttnStrategy strategy) {
  return strategy == AttnStrategy::kTensorParallel ? "TP" : "SP";
}

const char* FfnStrategyName(FfnStrategy strategy) {
  return strategy == FfnStrategy::kTensorParallel ? "TP" : "EP";
}

double TpAttentionCommBytes(int64_t b, int64_t s, int64_t h, int n) {
  // Eq 1: 2bsh(n-1)/n (all-gather in, reduce-scatter out).
  return kElemBytes * 2.0 * static_cast<double>(b) * s * h * (n - 1) / n;
}

double SpAttentionCommBytes(int64_t b, int64_t s, int64_t h, int n, int64_t m) {
  // Eq 2: TP volume scaled by (2 + 2/m) / n — two all-to-alls whose payload
  // per token is h(1+2/m)/n in and h/n out.
  return TpAttentionCommBytes(b, s, h, n) * (2.0 + 2.0 / static_cast<double>(m)) /
         static_cast<double>(n) / 2.0;
}

double TpFfnCommBytes(int64_t b, int64_t s, int64_t h, int n) {
  // Eq 4: same all-gather + reduce-scatter as TP attention.
  return kElemBytes * 2.0 * static_cast<double>(b) * s * h * (n - 1) / n;
}

double EpFfnCommBytes(int64_t b, int64_t s, int64_t h, int n, int64_t k,
                      EpDispatchMode mode) {
  if (mode == EpDispatchMode::kAllToAll) {
    // Eq 3: dispatch + combine all-to-alls of the k routed copies.
    return kElemBytes * 2.0 * static_cast<double>(k) / n * static_cast<double>(b) * s * h *
           (n - 1) / n;
  }
  // All-gather + reduce-scatter of the full hidden tensor (== TP volume).
  return TpFfnCommBytes(b, s, h, n);
}

EpDispatchMode ChooseEpDispatch(int64_t top_k, int n) {
  // A2A moves k/n of the AG/RS payload but at kA2AEfficiency of the bus:
  // switch when k/n >= efficiency, i.e. k >= n * 0.75 (k > 6 for n = 8,
  // matching Fig 7).
  if (static_cast<double>(top_k) >= CostModel::kA2AEfficiency * n) {
    return EpDispatchMode::kAllGatherScatter;
  }
  return EpDispatchMode::kAllToAll;
}

MemoryFootprint EstimateMemory(const ModelConfig& config, AttnStrategy attn,
                               FfnStrategy ffn, const MemoryOptions& options) {
  const int n = options.mp_size;
  const double layers_per_stage =
      static_cast<double>(config.num_layers) / options.pp_stages;

  // Attention params (incl. router, norms) per GPU.
  double attn_params = static_cast<double>(config.AttentionParams() + config.RouterParams());
  if (attn == AttnStrategy::kTensorParallel) {
    attn_params /= n;  // sharded
  }
  // Expert params per GPU: both EP and TP split them n ways.
  const double ffn_params = static_cast<double>(config.ExpertParams()) / n;
  (void)ffn;

  const double params_per_gpu = (attn_params + ffn_params) * layers_per_stage;

  MemoryFootprint footprint;
  footprint.param_bytes = params_per_gpu * kElemBytes;
  // Main gradients are FP32. Under SP the hierarchical synchronization's
  // first step is an intra-node reduce-scatter (Appendix A.1), so gradients
  // of the replicated attention parameters are stored sharded — only the
  // BF16 weights themselves are replicated.
  double grad_elems = params_per_gpu;
  if (attn == AttnStrategy::kSequenceParallel) {
    const double replicated = attn_params * layers_per_stage;
    grad_elems = replicated / n + (params_per_gpu - replicated);
  }
  footprint.grad_bytes = grad_elems * kFp32Bytes;
  // ZeRO-1: FP32 master + Adam m/v sharded over the DP group. SP's
  // replicated attention parameters shard across n*dp ranks, so the
  // optimizer overhead of replication divides away (§3.1).
  double optimizer_elems = params_per_gpu;
  if (attn == AttnStrategy::kSequenceParallel) {
    const double replicated = attn_params * layers_per_stage;
    optimizer_elems = replicated / n + (params_per_gpu - replicated);
  }
  footprint.optimizer_bytes = optimizer_elems / options.dp_size * 3.0 * kFp32Bytes;

  footprint.activation_bytes =
      (options.sar ? config.ActivationBytesWithSar(options.batch_tokens, n)
                   : config.ActivationBytesFull(options.batch_tokens, n)) *
      layers_per_stage;
  return footprint;
}

std::string ParallelismPlan::ToString() const {
  std::ostringstream out;
  out << AttnStrategyName(attn) << "+" << FfnStrategyName(ffn) << " (dispatch "
      << EpDispatchModeName(ep_dispatch) << "), attn comm "
      << attn_comm_bytes / (1024.0 * 1024.0) << " MiB vs TP "
      << baseline_attn_comm_bytes / (1024.0 * 1024.0) << " MiB, ffn comm "
      << ffn_comm_bytes / (1024.0 * 1024.0) << " MiB vs TP "
      << baseline_ffn_comm_bytes / (1024.0 * 1024.0) << " MiB";
  return out.str();
}

ParallelismPlan PlanParallelism(const ModelConfig& config, const ClusterSpec& cluster,
                                int64_t micro_batch, int64_t seq_len) {
  const int n = cluster.gpus_per_node;
  ParallelismPlan plan;
  plan.attn = AttnStrategy::kSequenceParallel;
  plan.ffn = FfnStrategy::kExpertParallel;
  plan.ep_dispatch = ChooseEpDispatch(config.top_k, n);
  plan.attn_comm_bytes =
      SpAttentionCommBytes(micro_batch, seq_len, config.hidden, n, config.gqa_ratio);
  plan.ffn_comm_bytes = EpFfnCommBytes(micro_batch, seq_len, config.hidden, n,
                                       config.top_k, plan.ep_dispatch);
  plan.baseline_attn_comm_bytes =
      TpAttentionCommBytes(micro_batch, seq_len, config.hidden, n);
  plan.baseline_ffn_comm_bytes = TpFfnCommBytes(micro_batch, seq_len, config.hidden, n);
  // The chosen strategies never communicate more than the TP baseline.
  MSMOE_CHECK_LE(plan.attn_comm_bytes, plan.baseline_attn_comm_bytes * 1.0001);
  MSMOE_CHECK_LE(plan.ffn_comm_bytes, plan.baseline_ffn_comm_bytes * 1.0001);
  return plan;
}

}  // namespace msmoe
