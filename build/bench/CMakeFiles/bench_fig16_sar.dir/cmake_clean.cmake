file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_sar.dir/bench_fig16_sar.cc.o"
  "CMakeFiles/bench_fig16_sar.dir/bench_fig16_sar.cc.o.d"
  "bench_fig16_sar"
  "bench_fig16_sar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_sar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
