// Data-parallel gradient synchronization paths (§5, Fig 10).
//
// Three strategies over a DP group of n ranks, all returning this rank's
// reduced gradient shard (ZeRO-style — the owner then updates its optimizer
// shard and parameters are re-gathered):
//
//   kFp32ReduceScatter:  the safe baseline — FP32 on the wire.
//   kBf16AllToAll:       the paper's compression — one-time FP32->BF16 cast,
//                        all-to-all of BF16 shards, LOCAL accumulation in
//                        FP32. Halves wire volume; avoids repeated BF16
//                        accumulation entirely.
//   kBf16RingReduce:     the risky design the paper rejects — emulates a
//                        ring reduce-scatter whose partial sums are kept in
//                        BF16 at every hop, compounding rounding error
//                        (included to demonstrate why §5 uses all-to-all).
//
// Includes the memory-efficient in-place packing trick: BF16 codes are
// packed into the first half of the FP32 input buffer and the second half
// serves as the receive buffer, so peak memory never exceeds the original
// FP32 allocation.
#ifndef MSMOE_SRC_PARALLEL_DP_GRAD_SYNC_H_
#define MSMOE_SRC_PARALLEL_DP_GRAD_SYNC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/comm/communicator.h"

namespace msmoe {

enum class GradSyncMode {
  kFp32ReduceScatter,
  kBf16AllToAll,
  kBf16RingReduce,
};

const char* GradSyncModeName(GradSyncMode mode);

// Canonical padded gradient/optimizer-state length for n-way ZeRO-1
// sharding: ceil(total / n) * n, so every rank owns an equal
// PaddedGradCount / n slice and the tail rank's slice is zero-padded. The
// trainer's initial geometry, the elastic post-shrink re-plan, and the
// checkpoint reshard helpers (src/model/checkpoint.h) all route through
// this one definition so their layouts can never drift apart.
inline int64_t PaddedGradCount(int64_t total_elems, int n) {
  return (total_elems + n - 1) / n * n;
}

// Reduces `grads` (count floats, identical layout on every rank) across the
// group; returns this rank's shard (count / n floats, count must divide).
// The reduction is a plain sum (callers average by pre-scaling).
std::vector<float> SyncGradShard(Communicator& comm, int rank, const float* grads,
                                 int64_t count, GradSyncMode mode);

// Allocation-free variant for the hot step loop: writes the shard into
// `shard_out` (count / n floats, caller-owned) and stages the BF16 wire
// copies in the calling thread's workspace, so a steady-state step acquires
// no fresh memory.
void SyncGradShardInto(Communicator& comm, int rank, const float* grads, int64_t count,
                       GradSyncMode mode, float* shard_out);

// Nonblocking FP32 reduce-scatter of a gradient segment (the §5 inter-op
// overlap primitive): the transfer runs chunk by chunk on the rank's
// comm-proxy thread while the caller keeps computing (e.g. the remaining
// layers' backward). WaitAll() on the returned handle blocks until
// shard_out (count / n floats) holds this rank's summed shard; failures
// surface there as the communicator's sticky status. Every rank must issue
// the same Start sequence. The per-element reduction is identical to the
// synchronous kFp32ReduceScatter path, so results are bitwise equal however
// the gradient buffer is segmented.
//
// With signal_now = true the segment must already be final: every producer
// chunk is released up front and the transfer streams immediately. With
// signal_now = false the collective is only REGISTERED (producer-gated);
// the caller fills `grads` later and releases it with
// SignalGradSegmentReady — the graph-recorded trainer starts every
// segment's sync before backward runs and signals per layer as gradients
// become final.
std::unique_ptr<CommHandle> StartGradShardSync(Communicator& comm, int rank,
                                               const float* grads, int64_t count,
                                               float* shard_out, int num_chunks,
                                               bool signal_now = true);

// Marks every chunk of a deferred (signal_now = false) segment sync as
// final, releasing the comm-proxy thread to read the send buffer.
void SignalGradSegmentReady(CommHandle& handle);

// Convenience: full all-reduced gradients via shard sync + all-gather, so
// trainers that keep replicated optimizer state can use any mode.
void AllReduceGrads(Communicator& comm, int rank, float* grads, int64_t count,
                    GradSyncMode mode);

// Wire bytes each mode moves for `count` FP32 gradients on n ranks (per
// rank-pair volume, for the Fig 10 "50% reduction" claim).
int64_t GradSyncWireBytes(GradSyncMode mode, int64_t count, int n);

// In-place packing used by kBf16AllToAll: stores the BF16 codes of
// buffer[0..count) in the first count/2 float slots (two codes per float).
// UnpackBf16InPlace expands them back to floats. Round-trips exactly to
// BF16 precision while never growing the allocation.
void PackBf16InPlace(float* buffer, int64_t count);
void UnpackBf16InPlace(float* buffer, int64_t count);

}  // namespace msmoe

#endif  // MSMOE_SRC_PARALLEL_DP_GRAD_SYNC_H_
