// Tensor-parallel (Megatron-style) attention with sequence-parallel
// LayerNorm boundaries — the baseline strategy the paper replaces (§3.1).
//
// Weights are head-sharded: rank r computes query heads [r*Hq/n, (r+1)*Hq/n)
// and the matching kv heads. Activations enter and leave sequence-sharded;
// the module all-gathers the full token set on entry and reduce-scatters the
// partial output projections on exit — the 2bsh(n-1)/n critical-path volume
// of Eq 1 that SP attention avoids.
//
// The module accepts the FULL weights and internally uses rank r's shard, so
// equivalence tests can share one parameter set across strategies.
#ifndef MSMOE_SRC_PARALLEL_TP_ATTENTION_H_
#define MSMOE_SRC_PARALLEL_TP_ATTENTION_H_

#include <cstdint>
#include <vector>

#include "src/model/attention.h"
#include "src/model/config.h"
#include "src/parallel/sp_attention.h"
#include "src/tensor/tensor.h"

namespace msmoe {

struct TpAttentionCache {
  Tensor x_full;       // all-gathered input [b*s, h]
  Tensor q, k, v;      // local heads, post-RoPE, full sequence
  std::vector<AttentionCoreCache> attn;
  Tensor attn_out;     // local-head attention output [b*s, Hq/n*d]
};

// x_local: [batch * s_local, h], same layout contract as SpAttentionForward.
Tensor TpAttentionForward(const ShardContext& ctx, const ModelConfig& config,
                          const Tensor& w_qkv, const Tensor& w_out, const Tensor& x_local,
                          int64_t batch, int64_t seq_len, TpAttentionCache* cache);

struct TpAttentionGrads {
  Tensor dx_local;
  // Shard gradients (full sums — TP needs no extra intra-group sync):
  Tensor dw_qkv_shard;  // [h, (Hq/n + 2*Hkv/n) * d]
  Tensor dw_out_shard;  // [Hq/n*d, h]
};

TpAttentionGrads TpAttentionBackward(const ShardContext& ctx, const ModelConfig& config,
                                     const Tensor& w_qkv, const Tensor& w_out,
                                     const Tensor& dy_local, int64_t batch, int64_t seq_len,
                                     const TpAttentionCache& cache);

// The column slice of w_qkv used by rank `rank` (for checking shard grads).
Tensor TpQkvShard(const ModelConfig& config, const Tensor& w_qkv, int rank, int size);
// The row slice of w_out used by rank `rank`.
Tensor TpOutShard(const ModelConfig& config, const Tensor& w_out, int rank, int size);

}  // namespace msmoe

#endif  // MSMOE_SRC_PARALLEL_TP_ATTENTION_H_
