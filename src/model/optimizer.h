// Adam(W) optimizer with FP32 master state.
//
// Mirrors the paper's mixed-precision setup: parameters handed to the
// optimizer are the FP32 master copies; lower-precision compute copies are
// produced by the trainer's precision policy (src/core/trainer) before each
// forward pass, and gradients are accumulated/applied in FP32 (§5).
#ifndef MSMOE_SRC_MODEL_OPTIMIZER_H_
#define MSMOE_SRC_MODEL_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace msmoe {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.95;
  double eps = 1e-8;
  double weight_decay = 0.0;
  // Clip gradients to this global L2 norm; 0 disables clipping.
  double grad_clip_norm = 0.0;
};

class AdamOptimizer {
 public:
  explicit AdamOptimizer(AdamConfig config) : config_(config) {}

  // Registers a parameter; state (m, v) is allocated lazily on first Step.
  // Parameters must be registered in a stable order and outlive the optimizer.
  void Register(Tensor* param);

  // Applies one update. grads must align one-to-one with registered params.
  void Step(const std::vector<const Tensor*>& grads);

  int64_t step_count() const { return step_; }
  const AdamConfig& config() const { return config_; }
  void set_lr(double lr) { config_.lr = lr; }

  // Serializes (m, v, step) so training can restart from a checkpoint
  // (exercised by the Fig 19 production-run reproduction).
  std::vector<float> SaveState() const;
  void LoadState(const std::vector<float>& blob);

 private:
  AdamConfig config_;
  std::vector<Tensor*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t step_ = 0;
};

}  // namespace msmoe

#endif  // MSMOE_SRC_MODEL_OPTIMIZER_H_
