#include "src/parallel/sp_attention.h"

#include <vector>

#include "src/base/logging.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

// All-to-all re-partition seq->head: input [batch*s_local, H*d] (local token
// chunk, all H heads) -> output [batch*s, H_loc*d] (full sequence, local
// head block). The inverse (head->seq) is the same exchange transposed.
Tensor SeqToHeadA2A(const ShardContext& ctx, const Tensor& x_local, int64_t batch,
                    int64_t s_local, int64_t heads, int64_t d) {
  const int n = ctx.size();
  const int64_t h_loc = heads / n;
  const int64_t block = batch * s_local * h_loc * d;  // elements per rank pair
  std::vector<float> send(static_cast<size_t>(block) * n);
  for (int dst = 0; dst < n; ++dst) {
    float* out = send.data() + static_cast<int64_t>(dst) * block;
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t t = 0; t < s_local; ++t) {
        const float* row = x_local.data() + (b * s_local + t) * heads * d;
        for (int64_t hh = 0; hh < h_loc; ++hh) {
          const float* src = row + (dst * h_loc + hh) * d;
          std::copy(src, src + d, out);
          out += d;
        }
      }
    }
  }
  std::vector<float> recv(send.size());
  ctx.comm->AllToAll(ctx.rank, send.data(), recv.data(), block);

  Tensor x_heads({batch * s_local * n, h_loc * d});
  for (int src = 0; src < n; ++src) {
    const float* in = recv.data() + static_cast<int64_t>(src) * block;
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t t = 0; t < s_local; ++t) {
        float* row = x_heads.data() + (b * s_local * n + src * s_local + t) * h_loc * d;
        std::copy(in, in + h_loc * d, row);
        in += h_loc * d;
      }
    }
  }
  return x_heads;
}

// Inverse of SeqToHeadA2A.
Tensor HeadToSeqA2A(const ShardContext& ctx, const Tensor& x_heads, int64_t batch,
                    int64_t s_local, int64_t heads, int64_t d) {
  const int n = ctx.size();
  const int64_t h_loc = heads / n;
  const int64_t block = batch * s_local * h_loc * d;
  std::vector<float> send(static_cast<size_t>(block) * n);
  for (int dst = 0; dst < n; ++dst) {
    float* out = send.data() + static_cast<int64_t>(dst) * block;
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t t = 0; t < s_local; ++t) {
        const float* row =
            x_heads.data() + (b * s_local * n + dst * s_local + t) * h_loc * d;
        std::copy(row, row + h_loc * d, out);
        out += h_loc * d;
      }
    }
  }
  std::vector<float> recv(send.size());
  ctx.comm->AllToAll(ctx.rank, send.data(), recv.data(), block);

  Tensor x_local({batch * s_local, heads * d});
  for (int src = 0; src < n; ++src) {
    const float* in = recv.data() + static_cast<int64_t>(src) * block;
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t t = 0; t < s_local; ++t) {
        float* row = x_local.data() + (b * s_local + t) * heads * d;
        for (int64_t hh = 0; hh < h_loc; ++hh) {
          std::copy(in, in + d, row + (src * h_loc + hh) * d);
          in += d;
        }
      }
    }
  }
  return x_local;
}

std::vector<int64_t> GlobalPositions(int64_t s_local, int rank) {
  std::vector<int64_t> positions(static_cast<size_t>(s_local));
  for (int64_t i = 0; i < s_local; ++i) {
    positions[static_cast<size_t>(i)] = static_cast<int64_t>(rank) * s_local + i;
  }
  return positions;
}

}  // namespace

Tensor SpAttentionForward(const ShardContext& ctx, const ModelConfig& config,
                          const Tensor& w_qkv, const Tensor& w_out, const Tensor& x_local,
                          int64_t batch, int64_t seq_len, SpAttentionCache* cache) {
  const int n = ctx.size();
  const int64_t s_local = seq_len / n;
  const int64_t hq = config.num_heads;
  const int64_t hkv = config.kv_heads();
  const int64_t d = config.head_dim();
  MSMOE_CHECK_EQ(seq_len % n, 0);
  MSMOE_CHECK_EQ(hq % n, 0);
  MSMOE_CHECK_EQ(hkv % n, 0);
  MSMOE_CHECK_EQ(x_local.dim(0), batch * s_local);

  cache->ln_in_local = x_local;
  Tensor qkv = MatMul(x_local, w_qkv);

  // Split into q/k/v and apply RoPE with this rank's global positions.
  Tensor q({batch * s_local, hq * d});
  Tensor k({batch * s_local, hkv * d});
  Tensor v({batch * s_local, hkv * d});
  for (int64_t t = 0; t < batch * s_local; ++t) {
    const float* row = qkv.data() + t * config.qkv_out_dim();
    std::copy(row, row + hq * d, q.data() + t * hq * d);
    std::copy(row + hq * d, row + (hq + hkv) * d, k.data() + t * hkv * d);
    std::copy(row + (hq + hkv) * d, row + (hq + 2 * hkv) * d, v.data() + t * hkv * d);
  }
  const std::vector<int64_t> positions = GlobalPositions(s_local, ctx.rank);
  for (int64_t b = 0; b < batch; ++b) {
    Tensor q_seq = q.SliceRows(b * s_local, (b + 1) * s_local).Reshaped({s_local, hq, d});
    Tensor k_seq = k.SliceRows(b * s_local, (b + 1) * s_local).Reshaped({s_local, hkv, d});
    RopeInPlace(q_seq, positions, hq, d);
    RopeInPlace(k_seq, positions, hkv, d);
    std::copy(q_seq.data(), q_seq.data() + q_seq.numel(), q.data() + b * s_local * hq * d);
    std::copy(k_seq.data(), k_seq.data() + k_seq.numel(), k.data() + b * s_local * hkv * d);
  }

  // A2A(q_rope, k_rope, v): sequence-sharded -> head-sharded.
  cache->q_heads = SeqToHeadA2A(ctx, q, batch, s_local, hq, d);
  cache->k_heads = SeqToHeadA2A(ctx, k, batch, s_local, hkv, d);
  cache->v_heads = SeqToHeadA2A(ctx, v, batch, s_local, hkv, d);

  // Full-sequence attention over the local head block.
  const int64_t hq_loc = hq / n;
  const int64_t hkv_loc = hkv / n;
  cache->attn.assign(static_cast<size_t>(batch), AttentionCoreCache{});
  cache->attn_heads = Tensor({batch * seq_len, hq_loc * d});
  for (int64_t b = 0; b < batch; ++b) {
    Tensor q_seq = cache->q_heads.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hq_loc, d});
    Tensor k_seq = cache->k_heads.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hkv_loc, d});
    Tensor v_seq = cache->v_heads.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hkv_loc, d});
    Tensor attn = AttentionCore(q_seq, k_seq, v_seq, config.gqa_ratio,
                                &cache->attn[static_cast<size_t>(b)]);
    std::copy(attn.data(), attn.data() + attn.numel(),
              cache->attn_heads.data() + b * seq_len * hq_loc * d);
  }

  // A2A(attn): head-sharded -> sequence-sharded, then output projection.
  cache->attn_local = HeadToSeqA2A(ctx, cache->attn_heads, batch, s_local, hq, d);
  return MatMul(cache->attn_local, w_out);
}

SpAttentionGrads SpAttentionBackward(const ShardContext& ctx, const ModelConfig& config,
                                     const Tensor& w_qkv, const Tensor& w_out,
                                     const Tensor& dy_local, int64_t batch, int64_t seq_len,
                                     const SpAttentionCache& cache) {
  const int n = ctx.size();
  const int64_t s_local = seq_len / n;
  const int64_t hq = config.num_heads;
  const int64_t hkv = config.kv_heads();
  const int64_t d = config.head_dim();
  const int64_t hq_loc = hq / n;
  const int64_t hkv_loc = hkv / n;

  SpAttentionGrads grads;

  // Output projection backward.
  MatMulGrads out_grads = MatMulBackward(dy_local, cache.attn_local, w_out);
  grads.dw_out = std::move(out_grads.db);

  // A2A backward: sequence-sharded grad -> head-sharded grad.
  Tensor dattn_heads = SeqToHeadA2A(ctx, out_grads.da, batch, s_local, hq, d);

  // Attention core backward per sequence, then RoPE inverse.
  Tensor dq_heads({batch * seq_len, hq_loc * d});
  Tensor dk_heads({batch * seq_len, hkv_loc * d});
  Tensor dv_heads({batch * seq_len, hkv_loc * d});
  for (int64_t b = 0; b < batch; ++b) {
    Tensor dout_seq = dattn_heads.SliceRows(b * seq_len, (b + 1) * seq_len)
                          .Reshaped({seq_len, hq_loc, d});
    Tensor q_seq = cache.q_heads.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hq_loc, d});
    Tensor k_seq = cache.k_heads.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hkv_loc, d});
    Tensor v_seq = cache.v_heads.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hkv_loc, d});
    AttentionCoreGrads attn_grads = AttentionCoreBackward(
        dout_seq, q_seq, k_seq, v_seq, config.gqa_ratio, cache.attn[static_cast<size_t>(b)]);
    std::copy(attn_grads.dq.data(), attn_grads.dq.data() + attn_grads.dq.numel(),
              dq_heads.data() + b * seq_len * hq_loc * d);
    std::copy(attn_grads.dk.data(), attn_grads.dk.data() + attn_grads.dk.numel(),
              dk_heads.data() + b * seq_len * hkv_loc * d);
    std::copy(attn_grads.dv.data(), attn_grads.dv.data() + attn_grads.dv.numel(),
              dv_heads.data() + b * seq_len * hkv_loc * d);
  }

  // A2A backward to sequence-sharded dq/dk/dv.
  Tensor dq = HeadToSeqA2A(ctx, dq_heads, batch, s_local, hq, d);
  Tensor dk = HeadToSeqA2A(ctx, dk_heads, batch, s_local, hkv, d);
  Tensor dv = HeadToSeqA2A(ctx, dv_heads, batch, s_local, hkv, d);

  // RoPE backward (inverse rotation) with global positions.
  const std::vector<int64_t> positions = GlobalPositions(s_local, ctx.rank);
  for (int64_t b = 0; b < batch; ++b) {
    Tensor dq_seq = dq.SliceRows(b * s_local, (b + 1) * s_local).Reshaped({s_local, hq, d});
    Tensor dk_seq = dk.SliceRows(b * s_local, (b + 1) * s_local).Reshaped({s_local, hkv, d});
    RopeBackwardInPlace(dq_seq, positions, hq, d);
    RopeBackwardInPlace(dk_seq, positions, hkv, d);
    std::copy(dq_seq.data(), dq_seq.data() + dq_seq.numel(),
              dq.data() + b * s_local * hq * d);
    std::copy(dk_seq.data(), dk_seq.data() + dk_seq.numel(),
              dk.data() + b * s_local * hkv * d);
  }

  // Reassemble dqkv and QKV projection backward.
  Tensor dqkv({batch * s_local, config.qkv_out_dim()});
  for (int64_t t = 0; t < batch * s_local; ++t) {
    float* row = dqkv.data() + t * config.qkv_out_dim();
    std::copy(dq.data() + t * hq * d, dq.data() + (t + 1) * hq * d, row);
    std::copy(dk.data() + t * hkv * d, dk.data() + (t + 1) * hkv * d, row + hq * d);
    std::copy(dv.data() + t * hkv * d, dv.data() + (t + 1) * hkv * d, row + (hq + hkv) * d);
  }
  MatMulGrads qkv_grads = MatMulBackward(dqkv, cache.ln_in_local, w_qkv);
  grads.dw_qkv = std::move(qkv_grads.db);
  grads.dx_local = std::move(qkv_grads.da);
  return grads;
}

}  // namespace msmoe
