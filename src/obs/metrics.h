// MetricsRegistry: the one registration API behind every runtime counter.
//
// The repo grew several ad-hoc stat blocks — KernelStats (gemm_kernel.h),
// MemStats (arena.h), CommTelemetry wire-byte totals, expert-load imbalance
// counters — each with its own snapshot/reset pair. The registry absorbs
// them behind one typed facade: subsystems register named counters, gauges,
// and histograms once (function-local static MetricId), record with a
// couple of relaxed atomic ops, and every consumer aggregates through one
// Snapshot() / PrometheusText() call. The legacy stat blocks stay as the
// cheap primary storage where they are on a per-allocation hot path; the
// registry carries the event-grained runtime series (collectives, exec-graph
// ops, parallel regions, per-step profiler rollups) and the scrape surface.
//
// Design:
//   * Per-thread sharded recording. Each recording thread owns a shard of
//     cells (one per metric). Counter adds and histogram observations touch
//     only the owner's shard — relaxed atomic load+store, no contention.
//     Aggregation walks all shards (plus the folded values of retired
//     threads) on demand under the registry mutex. Gauges are last-write-
//     wins global atomics (gauge writes are rare).
//   * Zero steady-state heap allocations. A shard allocates when its thread
//     first records (and when a metric registered later than the shard
//     forces a grow); after that warm-up every record is allocation-free,
//     preserving the zero-alloc training step of the memory PR. Disabling
//     the registry (set_enabled(false)) short-circuits every record to a
//     single relaxed load + branch.
//   * This header deliberately depends on nothing in the repo (std only):
//     it is linked UNDER msmoe_base so arena / parallel_for / telemetry /
//     exec_graph can all record without a dependency cycle. The profiler
//     and anomaly layers live above, in src/obs/step_profiler.h.
#ifndef MSMOE_SRC_OBS_METRICS_H_
#define MSMOE_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace msmoe {

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

// Opaque handle returned by registration; cheap to copy, valid for the
// process lifetime. Default-constructed ids are invalid and record nowhere.
struct MetricId {
  int index = -1;
  bool valid() const { return index >= 0; }
};

struct HistogramSnapshot {
  // Upper bucket bounds (inclusive); an implicit +inf bucket follows.
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 entries
  uint64_t count = 0;
  double sum = 0.0;
};

struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  double value = 0.0;  // counter total / gauge value
  HistogramSnapshot histogram;
};

struct MetricsSnapshot {
  std::vector<MetricSnapshot> metrics;
  const MetricSnapshot* Find(const std::string& name) const;
};

class MetricsRegistry {
 public:
  // The process-wide registry (intentionally leaked: persistent pool
  // threads may record until process exit).
  static MetricsRegistry& Global();

  // Registration is idempotent by name: re-registering returns the existing
  // id. Re-registering with a different type aborts — a name is a type.
  MetricId Counter(const std::string& name, const std::string& help);
  MetricId Gauge(const std::string& name, const std::string& help);
  MetricId Histogram(const std::string& name, const std::string& help,
                     std::vector<double> bucket_bounds);

  // Counter add / histogram observation (per-thread shard, wait-free) and
  // gauge set (global last-write-wins). No-ops when disabled or the id is
  // invalid.
  void Add(MetricId id, double value);
  void Set(MetricId id, double value);

  // Disabled => every record path is a relaxed load + branch, nothing else.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // On-demand aggregation over live shards + retired-thread residue, in
  // registration order.
  MetricsSnapshot Snapshot() const;

  // Prometheus text exposition of Snapshot(): `# HELP` / `# TYPE` preamble,
  // counters/gauges as plain samples, histograms as cumulative _bucket /
  // _sum / _count families. Metric names are sanitized ('.' -> '_').
  std::string PrometheusText() const;

  // Zeroes every recorded value (live shards, retired residue, gauges).
  // Registrations survive. Call while recording threads are quiescent if an
  // exact zero matters.
  void ResetValues();

  size_t metric_count() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl* impl();  // lazily built, leaked
  std::atomic<bool> enabled_{true};
  std::atomic<Impl*> impl_{nullptr};

  MetricId Register(const std::string& name, const std::string& help, MetricType type,
                    std::vector<double> bounds);
};

// ---------------------------------------------------------------------------
// Per-step executor feed (consumed by obs/step_profiler.h).
// ---------------------------------------------------------------------------
//
// While a ScopedStep is active on a rank thread, the runtime task-graph
// executor (core/exec_graph) reports each executed graph here, so the
// profiler can attribute per-step pipeline bubble (stream-0 idle inside the
// graph span) without the trainer threading timing structs through every
// call. Plain accumulation — only the owning thread touches its sink.
struct ExecStepStats {
  int graphs = 0;
  double makespan_us = 0.0;       // summed over graphs executed this step
  double compute_busy_us = 0.0;   // stream-0 op time
  double comm_busy_us = 0.0;      // comm-stream op time
  double bubble_us = 0.0;         // makespan - stream-0 busy, per graph
};

// The calling thread's active sink, or nullptr when no step is being
// profiled. Installation nests: the installer restores the previous value.
ExecStepStats* CurrentThreadExecStats();
ExecStepStats* SetCurrentThreadExecStats(ExecStepStats* stats);  // returns previous

}  // namespace msmoe

#endif  // MSMOE_SRC_OBS_METRICS_H_
