file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cp_attention.dir/bench_ablation_cp_attention.cc.o"
  "CMakeFiles/bench_ablation_cp_attention.dir/bench_ablation_cp_attention.cc.o.d"
  "bench_ablation_cp_attention"
  "bench_ablation_cp_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cp_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
