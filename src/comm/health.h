// Straggler detection over recorded collective telemetry.
//
// In a synchronous training job one slow rank stalls every collective: its
// peers enter the barrier on time and then sit in the barrier wait until the
// straggler arrives. That signature is visible in CommTelemetry — for each
// collective, the straggler's entry (event start) is LATE relative to the
// earliest member entry, while healthy peers show inflated durations.
// DetectStragglers matches up the per-rank event streams collective by
// collective, measures each rank's entry lag against the earliest member,
// and flags ranks whose mean lag exceeds a threshold — the per-rank health
// verdict production systems page on.
//
// Flags export into the same Chrome trace as the raw events
// (src/sim/trace_export takes an optional StragglerReport), so a flagged
// rank is visible right on the timeline it slowed down.
#ifndef MSMOE_SRC_COMM_HEALTH_H_
#define MSMOE_SRC_COMM_HEALTH_H_

#include <cstdint>
#include <vector>

#include "src/comm/telemetry.h"

namespace msmoe {

struct StragglerConfig {
  // A rank whose MEAN entry lag exceeds this is flagged.
  double threshold_us = 1000.0;
  // Don't flag on fewer matched collectives than this (startup noise).
  int64_t min_collectives = 4;
};

struct RankHealth {
  int rank = 0;
  int64_t collectives = 0;        // collectives this rank participated in
  double mean_entry_lag_us = 0.0;  // mean (entry - earliest present entry)
  double max_entry_lag_us = 0.0;
  bool straggler = false;
};

struct StragglerReport {
  std::vector<RankHealth> ranks;   // indexed by rank
  // Longest per-rank stream = number of collective instances analyzed.
  int64_t collectives_matched = 0;
  double threshold_us = 0.0;

  int straggler_count() const {
    int count = 0;
    for (const RankHealth& health : ranks) {
      count += health.straggler ? 1 : 0;
    }
    return count;
  }
};

// Analyzes events recorded by one Communicator run. Events are grouped by
// rank and ordered by start time; the i-th event of each rank is matched as
// one collective instance (ranks issue collectives in the same global
// order). Ranks are inferred from the events. Uneven per-rank counts (a
// crashed rank's truncated stream) do NOT truncate the analysis: instance i
// is matched over the ranks whose streams reach it, so the healthy
// survivors' late collectives — the fault signature — are still scored;
// per-rank `collectives` then differ and the mean is over each rank's own
// participation.
StragglerReport DetectStragglers(const std::vector<CommEvent>& events,
                                 const StragglerConfig& config = {});

// The flagged rank with the worst mean entry lag in `report`, or -1 when no
// rank was flagged. The single-suspect projection both the trainer's elastic
// fault attribution and the obs layer's health summaries use.
int WorstStragglerRank(const StragglerReport& report);

}  // namespace msmoe

#endif  // MSMOE_SRC_COMM_HEALTH_H_
