// Expert-parallel feed-forward network (§3.2) with the two dispatch modes
// the paper's adaptive communication strategy chooses between:
//
//   kAllToAll:         classic EP — all-to-all token dispatch to expert
//                      owners, grouped GEMM, all-to-all combine. Volume
//                      2k/n * bsh(n-1)/n (Eq 3).
//   kAllGatherScatter: for large top-k — all-gather every rank's tokens,
//                      fuse a local scatter that keeps only rows routed to
//                      local experts, grouped GEMM, weighted assembly into a
//                      full tensor, reduce-scatter combine. Volume
//                      2bsh(n-1)/n, identical to TP (Eq 4) but ring-friendly
//                      (Fig 6/7).
//
// Rank r owns experts [r*E/n, (r+1)*E/n). Both modes produce bitwise-equal
// results to the single-rank reference (same routing in, same combine out);
// expert-weight gradients are complete on the owner rank (no extra sync).
#ifndef MSMOE_SRC_PARALLEL_EP_FFN_H_
#define MSMOE_SRC_PARALLEL_EP_FFN_H_

#include <cstdint>
#include <vector>

#include "src/model/config.h"
#include "src/model/router.h"
#include "src/parallel/sp_attention.h"
#include "src/tensor/tensor.h"

namespace msmoe {

enum class EpDispatchMode {
  kAllToAll,
  kAllGatherScatter,
};

const char* EpDispatchModeName(EpDispatchMode mode);

struct EpFfnCache {
  // Expert computation inputs/outputs, rows grouped by local expert.
  Tensor ffn_in;    // [R, h]
  Tensor fc1_out;   // [R, f]
  Tensor fc3_out;   // [R, f]
  Tensor fc2_in;    // [R, f]
  Tensor fc2_out;   // [R, h]
  std::vector<int64_t> local_offsets;  // [E_local + 1] row ranges

  // kAllToAll bookkeeping.
  std::vector<int64_t> send_counts;   // rows sent to each rank
  std::vector<int64_t> recv_counts;   // rows received from each rank
  std::vector<int64_t> send_token;    // per sent row: local token index
  std::vector<int64_t> send_slot;     // per sent row: top-k slot
  std::vector<int64_t> recv_to_sorted;  // received row -> grouped row
  Tensor returned_rows;               // expert outputs back at the source

  // kAllGatherScatter bookkeeping.
  Tensor x_all;                         // [t_total, h] gathered tokens
  std::vector<int64_t> copy_token;      // per grouped row: global token index
  std::vector<int64_t> copy_slot;       // per grouped row: slot of that token
  std::vector<float> copy_weight;       // per grouped row: combine weight
};

// x_local: [t_local, h]; routing_local: routing of exactly those tokens.
// weights w1/w3/w2 hold ALL experts; the module touches only rank r's range.
// Returns the weighted expert output [t_local, h] (no residual).
Tensor EpFfnForward(const ShardContext& ctx, const ModelConfig& config, EpDispatchMode mode,
                    const std::vector<Tensor>& w1, const std::vector<Tensor>& w3,
                    const std::vector<Tensor>& w2, const Tensor& x_local,
                    const RoutingResult& routing_local, EpFfnCache* cache);

struct EpFfnGrads {
  Tensor dx_local;       // [t_local, h]
  Tensor dcombine_local; // [t_local, k] gradient w.r.t. combine weights
  // Gradients for this rank's experts only, indexed 0..E_local-1.
  std::vector<Tensor> dw1, dw3, dw2;
};

EpFfnGrads EpFfnBackward(const ShardContext& ctx, const ModelConfig& config,
                         EpDispatchMode mode, const std::vector<Tensor>& w1,
                         const std::vector<Tensor>& w3, const std::vector<Tensor>& w2,
                         const Tensor& dy_local, const RoutingResult& routing_local,
                         const EpFfnCache& cache);

// Selective-activation-rematerialization support (§4.1): rebuilds cache
// fields the forward pass dropped — `ffn_in` (and `x_all` in AG mode) by
// RE-RUNNING the dispatch communication from the recomputed layer input
// (the paper's "re-performing RMSNorm and all-gather"), and `fc2_in` by
// re-applying SwiGLU to the retained fc1/fc3 outputs. Collective: all ranks
// of the group must call it together. Fields already present are left
// untouched.
void EpFfnRematerialize(const ShardContext& ctx, const ModelConfig& config,
                        EpDispatchMode mode, const Tensor& x_local, EpFfnCache* cache);

}  // namespace msmoe

#endif  // MSMOE_SRC_PARALLEL_EP_FFN_H_
