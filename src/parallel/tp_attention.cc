#include "src/parallel/tp_attention.h"

#include "src/base/logging.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

// Columns [begin, end) of a [rows, cols] matrix.
Tensor SliceCols(const Tensor& x, int64_t begin, int64_t end) {
  const int64_t rows = x.dim(0);
  const int64_t cols = x.dim(1);
  MSMOE_CHECK_LE(end, cols);
  Tensor out({rows, end - begin});
  for (int64_t r = 0; r < rows; ++r) {
    std::copy(x.data() + r * cols + begin, x.data() + r * cols + end,
              out.data() + r * (end - begin));
  }
  return out;
}

// All-gather sequence-sharded activations and reorder chunk-major layout
// ([src][b][t]) into sequence-major ([b][src*s_local + t]).
Tensor AllGatherTokens(const ShardContext& ctx, const Tensor& x_local, int64_t batch,
                       int64_t s_local, int64_t width) {
  const int n = ctx.size();
  std::vector<float> gathered(static_cast<size_t>(n) * x_local.numel());
  ctx.comm->AllGather(ctx.rank, x_local.data(), gathered.data(), x_local.numel());
  Tensor x_full({batch * s_local * n, width});
  for (int src = 0; src < n; ++src) {
    const float* chunk = gathered.data() + static_cast<int64_t>(src) * x_local.numel();
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t t = 0; t < s_local; ++t) {
        const float* row = chunk + (b * s_local + t) * width;
        std::copy(row, row + width,
                  x_full.data() + (b * s_local * n + src * s_local + t) * width);
      }
    }
  }
  return x_full;
}

// Inverse of AllGatherTokens' data flow: reorder sequence-major partials into
// chunk-major send layout and reduce-scatter, leaving this rank's token
// chunk summed over ranks.
Tensor ReduceScatterTokens(const ShardContext& ctx, const Tensor& x_full, int64_t batch,
                           int64_t s_local, int64_t width) {
  const int n = ctx.size();
  const int64_t chunk_elems = batch * s_local * width;
  std::vector<float> send(static_cast<size_t>(n) * chunk_elems);
  for (int dst = 0; dst < n; ++dst) {
    float* chunk = send.data() + static_cast<int64_t>(dst) * chunk_elems;
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t t = 0; t < s_local; ++t) {
        const float* row = x_full.data() + (b * s_local * n + dst * s_local + t) * width;
        std::copy(row, row + width, chunk + (b * s_local + t) * width);
      }
    }
  }
  Tensor x_local({batch * s_local, width});
  ctx.comm->ReduceScatter(ctx.rank, send.data(), x_local.data(), chunk_elems);
  return x_local;
}

std::vector<int64_t> FullPositions(int64_t seq_len) {
  std::vector<int64_t> positions(static_cast<size_t>(seq_len));
  for (int64_t i = 0; i < seq_len; ++i) {
    positions[static_cast<size_t>(i)] = i;
  }
  return positions;
}

}  // namespace

Tensor TpQkvShard(const ModelConfig& config, const Tensor& w_qkv, int rank, int size) {
  const int64_t hq = config.num_heads;
  const int64_t hkv = config.kv_heads();
  const int64_t d = config.head_dim();
  const int64_t hq_loc = hq / size;
  const int64_t hkv_loc = hkv / size;
  Tensor q_cols = SliceCols(w_qkv, rank * hq_loc * d, (rank + 1) * hq_loc * d);
  Tensor k_cols = SliceCols(w_qkv, hq * d + rank * hkv_loc * d,
                            hq * d + (rank + 1) * hkv_loc * d);
  Tensor v_cols = SliceCols(w_qkv, (hq + hkv) * d + rank * hkv_loc * d,
                            (hq + hkv) * d + (rank + 1) * hkv_loc * d);
  Tensor shard({config.hidden, (hq_loc + 2 * hkv_loc) * d});
  const int64_t shard_cols = shard.dim(1);
  for (int64_t r = 0; r < config.hidden; ++r) {
    float* row = shard.data() + r * shard_cols;
    std::copy(q_cols.data() + r * hq_loc * d, q_cols.data() + (r + 1) * hq_loc * d, row);
    std::copy(k_cols.data() + r * hkv_loc * d, k_cols.data() + (r + 1) * hkv_loc * d,
              row + hq_loc * d);
    std::copy(v_cols.data() + r * hkv_loc * d, v_cols.data() + (r + 1) * hkv_loc * d,
              row + (hq_loc + hkv_loc) * d);
  }
  return shard;
}

Tensor TpOutShard(const ModelConfig& config, const Tensor& w_out, int rank, int size) {
  const int64_t rows_per_rank = config.hidden / size;  // Hq/n * d
  return w_out.SliceRows(rank * rows_per_rank, (rank + 1) * rows_per_rank);
}

Tensor TpAttentionForward(const ShardContext& ctx, const ModelConfig& config,
                          const Tensor& w_qkv, const Tensor& w_out, const Tensor& x_local,
                          int64_t batch, int64_t seq_len, TpAttentionCache* cache) {
  const int n = ctx.size();
  const int64_t s_local = seq_len / n;
  const int64_t hq_loc = config.num_heads / n;
  const int64_t hkv_loc = config.kv_heads() / n;
  const int64_t d = config.head_dim();
  MSMOE_CHECK_EQ(x_local.dim(0), batch * s_local);

  // All-gather the full token set (the Eq 1 entry communication).
  cache->x_full = AllGatherTokens(ctx, x_local, batch, s_local, config.hidden);

  const Tensor qkv_shard = TpQkvShard(config, w_qkv, ctx.rank, n);
  Tensor qkv = MatMul(cache->x_full, qkv_shard);

  const int64_t tokens = batch * seq_len;
  cache->q = Tensor({tokens, hq_loc * d});
  cache->k = Tensor({tokens, hkv_loc * d});
  cache->v = Tensor({tokens, hkv_loc * d});
  const int64_t shard_cols = (hq_loc + 2 * hkv_loc) * d;
  for (int64_t t = 0; t < tokens; ++t) {
    const float* row = qkv.data() + t * shard_cols;
    std::copy(row, row + hq_loc * d, cache->q.data() + t * hq_loc * d);
    std::copy(row + hq_loc * d, row + (hq_loc + hkv_loc) * d,
              cache->k.data() + t * hkv_loc * d);
    std::copy(row + (hq_loc + hkv_loc) * d, row + shard_cols,
              cache->v.data() + t * hkv_loc * d);
  }

  const std::vector<int64_t> positions = FullPositions(seq_len);
  cache->attn.assign(static_cast<size_t>(batch), AttentionCoreCache{});
  cache->attn_out = Tensor({tokens, hq_loc * d});
  for (int64_t b = 0; b < batch; ++b) {
    Tensor q_seq = cache->q.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hq_loc, d});
    Tensor k_seq = cache->k.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hkv_loc, d});
    Tensor v_seq = cache->v.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hkv_loc, d});
    RopeInPlace(q_seq, positions, hq_loc, d);
    RopeInPlace(k_seq, positions, hkv_loc, d);
    std::copy(q_seq.data(), q_seq.data() + q_seq.numel(),
              cache->q.data() + b * seq_len * hq_loc * d);
    std::copy(k_seq.data(), k_seq.data() + k_seq.numel(),
              cache->k.data() + b * seq_len * hkv_loc * d);
    Tensor attn = AttentionCore(q_seq, k_seq, v_seq, config.gqa_ratio,
                                &cache->attn[static_cast<size_t>(b)]);
    std::copy(attn.data(), attn.data() + attn.numel(),
              cache->attn_out.data() + b * seq_len * hq_loc * d);
  }

  // Partial output projection + reduce-scatter (the Eq 1 exit communication).
  const Tensor out_shard = TpOutShard(config, w_out, ctx.rank, n);
  Tensor partial = MatMul(cache->attn_out, out_shard);
  return ReduceScatterTokens(ctx, partial, batch, s_local, config.hidden);
}

TpAttentionGrads TpAttentionBackward(const ShardContext& ctx, const ModelConfig& config,
                                     const Tensor& w_qkv, const Tensor& w_out,
                                     const Tensor& dy_local, int64_t batch, int64_t seq_len,
                                     const TpAttentionCache& cache) {
  const int n = ctx.size();
  const int64_t s_local = seq_len / n;
  const int64_t hq_loc = config.num_heads / n;
  const int64_t hkv_loc = config.kv_heads() / n;
  const int64_t d = config.head_dim();
  const int64_t tokens = batch * seq_len;

  TpAttentionGrads grads;

  // Backward of reduce-scatter is all-gather.
  Tensor dy_full = AllGatherTokens(ctx, dy_local, batch, s_local, config.hidden);

  const Tensor out_shard = TpOutShard(config, w_out, ctx.rank, n);
  MatMulGrads out_grads = MatMulBackward(dy_full, cache.attn_out, out_shard);
  grads.dw_out_shard = std::move(out_grads.db);

  // Attention + RoPE backward on local heads.
  Tensor dq({tokens, hq_loc * d});
  Tensor dk({tokens, hkv_loc * d});
  Tensor dv({tokens, hkv_loc * d});
  const std::vector<int64_t> positions = FullPositions(seq_len);
  for (int64_t b = 0; b < batch; ++b) {
    Tensor dout_seq = out_grads.da.SliceRows(b * seq_len, (b + 1) * seq_len)
                          .Reshaped({seq_len, hq_loc, d});
    Tensor q_seq = cache.q.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hq_loc, d});
    Tensor k_seq = cache.k.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hkv_loc, d});
    Tensor v_seq = cache.v.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hkv_loc, d});
    AttentionCoreGrads attn_grads = AttentionCoreBackward(
        dout_seq, q_seq, k_seq, v_seq, config.gqa_ratio, cache.attn[static_cast<size_t>(b)]);
    RopeBackwardInPlace(attn_grads.dq, positions, hq_loc, d);
    RopeBackwardInPlace(attn_grads.dk, positions, hkv_loc, d);
    std::copy(attn_grads.dq.data(), attn_grads.dq.data() + attn_grads.dq.numel(),
              dq.data() + b * seq_len * hq_loc * d);
    std::copy(attn_grads.dk.data(), attn_grads.dk.data() + attn_grads.dk.numel(),
              dk.data() + b * seq_len * hkv_loc * d);
    std::copy(attn_grads.dv.data(), attn_grads.dv.data() + attn_grads.dv.numel(),
              dv.data() + b * seq_len * hkv_loc * d);
  }

  const int64_t shard_cols = (hq_loc + 2 * hkv_loc) * d;
  Tensor dqkv({tokens, shard_cols});
  for (int64_t t = 0; t < tokens; ++t) {
    float* row = dqkv.data() + t * shard_cols;
    std::copy(dq.data() + t * hq_loc * d, dq.data() + (t + 1) * hq_loc * d, row);
    std::copy(dk.data() + t * hkv_loc * d, dk.data() + (t + 1) * hkv_loc * d,
              row + hq_loc * d);
    std::copy(dv.data() + t * hkv_loc * d, dv.data() + (t + 1) * hkv_loc * d,
              row + (hq_loc + hkv_loc) * d);
  }

  const Tensor qkv_shard = TpQkvShard(config, w_qkv, ctx.rank, n);
  MatMulGrads qkv_grads = MatMulBackward(dqkv, cache.x_full, qkv_shard);
  grads.dw_qkv_shard = std::move(qkv_grads.db);

  // Backward of all-gather is reduce-scatter over the partial dx.
  grads.dx_local = ReduceScatterTokens(ctx, qkv_grads.da, batch, s_local, config.hidden);
  return grads;
}

}  // namespace msmoe
