#include "src/sim/overlap_sim.h"

#include <algorithm>

#include "src/base/logging.h"

namespace msmoe {

TilePipelineResult SimulateTilePipeline(const TilePipelineConfig& config) {
  MSMOE_CHECK_GT(config.num_tiles, 0);
  MSMOE_CHECK_GE(config.comm_sm_fraction, 0.0);
  MSMOE_CHECK_LT(config.comm_sm_fraction, 1.0);

  const int tiles = config.num_tiles;
  // Compute slows down while communication occupies SMs.
  const double comp_eff = config.comp_us / (1.0 - config.comm_sm_fraction);
  const double comm_tile = config.comm_us / tiles;
  const double comp_tile = comp_eff / tiles;

  // Tile i's data is ready at (i+1) * comm_tile when swizzled. Without
  // swizzling, a compute tile's dependency lands at a random point in the
  // stream; model the expected wait as if every tile needed half the
  // remaining communication: arrival_i = comm/2 + (i+1) * comm_tile / 2.
  double compute_free = 0.0;
  double finish = 0.0;
  for (int i = 0; i < tiles; ++i) {
    double arrival;
    if (config.swizzled) {
      arrival = static_cast<double>(i + 1) * comm_tile;
    } else {
      arrival = config.comm_us / 2.0 + static_cast<double>(i + 1) * comm_tile / 2.0;
    }
    const double start = std::max(arrival, compute_free);
    compute_free = start + comp_tile;
    finish = compute_free;
  }

  TilePipelineResult result;
  // For GEMM+A2A (comm last), the pipeline mirrors: compute produces tiles
  // and communication drains them; the completion time is symmetric, with
  // the roles of comm and comp exchanged. Both reduce to the same recurrence
  // because max-pipelines are symmetric under reversal.
  result.fused_us = finish * (1.0 + config.barrier_overhead);
  result.unfused_us = config.comm_us + config.comp_us;
  result.speedup = result.unfused_us / result.fused_us;
  return result;
}

}  // namespace msmoe
