// Software-emulated 8-bit floating point in the two formats used by Hopper
// tensor cores: E4M3 (4-bit exponent, 3-bit mantissa, no infinities, max
// finite 448) and E5M2 (5-bit exponent, 2-bit mantissa, max finite 57344).
//
// Conversions follow the NVIDIA saturating cast: values beyond the maximum
// finite magnitude clamp to it rather than overflowing, and rounding is
// round-to-nearest-even. The paper uses E4M3 for all compressed tensors (§5).
#ifndef MSMOE_SRC_NUMERICS_FP8_H_
#define MSMOE_SRC_NUMERICS_FP8_H_

#include <cstdint>

namespace msmoe {

enum class Fp8Format {
  kE4M3,
  kE5M2,
};

// Largest representable finite magnitude of the format (448 or 57344).
float Fp8MaxFinite(Fp8Format format);

// Encodes a float into the 8-bit code (sign | exponent | mantissa), with
// saturation and round-to-nearest-even. NaN input yields the format's NaN.
uint8_t Fp8Encode(float value, Fp8Format format);

// Decodes an 8-bit code back to float (exact).
float Fp8Decode(uint8_t code, Fp8Format format);

// Round-trips through the format: the quantization applied by an FP8 cast.
inline float Fp8Round(float value, Fp8Format format) {
  return Fp8Decode(Fp8Encode(value, format), format);
}

// Fixed-format convenience wrappers.
inline float Fp8RoundE4M3(float value) { return Fp8Round(value, Fp8Format::kE4M3); }
inline float Fp8RoundE5M2(float value) { return Fp8Round(value, Fp8Format::kE5M2); }

}  // namespace msmoe

#endif  // MSMOE_SRC_NUMERICS_FP8_H_
