#include "src/tensor/gemm_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "src/base/math_util.h"
#include "src/base/parallel_for.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MSMOE_GEMM_X86 1
#include <immintrin.h>
#else
#define MSMOE_GEMM_X86 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define MSMOE_RESTRICT __restrict__
#else
#define MSMOE_RESTRICT
#endif

namespace msmoe {
namespace {

// Cache blocking: one packed MC x KC block of A (~72 KiB) stays L2-resident
// while KC x NC panels of B stream through it.
constexpr int64_t kMC = 72;
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 256;

// out := sum_p ap[p*MR + mi] * bp[p*NR + ni] over the full MR x NR tile.
// Edge tiles are zero-padded by the packing step; the driver stores only the
// valid region back into C. The p loop is strictly ascending, so each
// element's accumulation order is independent of panel and thread splits.
using MicroFn = void (*)(int64_t kc, const float* ap, const float* bp, float* out);

constexpr int kMrPortable = 4;
constexpr int kNrPortable = 8;

void MicroKernelPortable(int64_t kc, const float* MSMOE_RESTRICT ap,
                         const float* MSMOE_RESTRICT bp, float* MSMOE_RESTRICT out) {
  float acc[kMrPortable][kNrPortable] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* MSMOE_RESTRICT a = ap + p * kMrPortable;
    const float* MSMOE_RESTRICT b = bp + p * kNrPortable;
    for (int mi = 0; mi < kMrPortable; ++mi) {
      const float am = a[mi];
      for (int ni = 0; ni < kNrPortable; ++ni) {
        acc[mi][ni] += am * b[ni];
      }
    }
  }
  std::memcpy(out, acc, sizeof(acc));
}

#if MSMOE_GEMM_X86

constexpr int kMrAvx2 = 6;
constexpr int kNrAvx2 = 16;

// 6x16 FMA microkernel: 12 accumulator registers + 2 B vectors + 1
// broadcast fit the 16 ymm registers.
__attribute__((target("avx2,fma"))) void MicroKernelAvx2(
    int64_t kc, const float* MSMOE_RESTRICT ap, const float* MSMOE_RESTRICT bp,
    float* MSMOE_RESTRICT out) {
  __m256 acc0[kMrAvx2];
  __m256 acc1[kMrAvx2];
  for (int mi = 0; mi < kMrAvx2; ++mi) {
    acc0[mi] = _mm256_setzero_ps();
    acc1[mi] = _mm256_setzero_ps();
  }
  // 4x-unrolled k loop: the in-order FMA chain per accumulator is the
  // bottleneck; unrolling hides broadcast latency and loop overhead.
  int64_t p = 0;
  for (; p + 4 <= kc; p += 4) {
    for (int64_t u = 0; u < 4; ++u) {
      const __m256 b0 = _mm256_loadu_ps(bp + (p + u) * kNrAvx2);
      const __m256 b1 = _mm256_loadu_ps(bp + (p + u) * kNrAvx2 + 8);
      const float* MSMOE_RESTRICT a = ap + (p + u) * kMrAvx2;
      for (int mi = 0; mi < kMrAvx2; ++mi) {
        const __m256 am = _mm256_broadcast_ss(a + mi);
        acc0[mi] = _mm256_fmadd_ps(am, b0, acc0[mi]);
        acc1[mi] = _mm256_fmadd_ps(am, b1, acc1[mi]);
      }
    }
  }
  for (; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNrAvx2);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNrAvx2 + 8);
    const float* MSMOE_RESTRICT a = ap + p * kMrAvx2;
    for (int mi = 0; mi < kMrAvx2; ++mi) {
      const __m256 am = _mm256_broadcast_ss(a + mi);
      acc0[mi] = _mm256_fmadd_ps(am, b0, acc0[mi]);
      acc1[mi] = _mm256_fmadd_ps(am, b1, acc1[mi]);
    }
  }
  for (int mi = 0; mi < kMrAvx2; ++mi) {
    _mm256_storeu_ps(out + mi * kNrAvx2, acc0[mi]);
    _mm256_storeu_ps(out + mi * kNrAvx2 + 8, acc1[mi]);
  }
}

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // MSMOE_GEMM_X86

struct KernelChoice {
  MicroFn micro;
  bool avx2;
};

const KernelChoice& Choice() {
  static const KernelChoice choice = [] {
#if MSMOE_GEMM_X86
    if (CpuHasAvx2Fma()) {
      return KernelChoice{&MicroKernelAvx2, true};
    }
#endif
    return KernelChoice{&MicroKernelPortable, false};
  }();
  return choice;
}

// Applies C[rows i0..i1) = beta * C (BLAS semantics: beta == 0 overwrites,
// clearing any pre-existing NaN).
void ScaleRows(int64_t i0, int64_t i1, int64_t n, float beta, float* c) {
  if (beta == 0.0f) {
    std::fill(c + i0 * n, c + i1 * n, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = i0 * n; i < i1 * n; ++i) {
      c[i] *= beta;
    }
  }
}

// Blocked GEMM over the row range [i0, i1) of C. Each ParallelFor shard
// calls this with disjoint row ranges; the K/N blocking below is identical
// for every shard, so per-element results do not depend on the row split.
template <int MR, int NR>
void RunRowRange(bool trans_a, bool trans_b, int64_t i0, int64_t i1, int64_t m,
                 int64_t n, int64_t k, float alpha, const float* MSMOE_RESTRICT a,
                 const float* MSMOE_RESTRICT b, float beta, float* MSMOE_RESTRICT c,
                 MicroFn micro) {
  ScaleRows(i0, i1, n, beta, c);
  if (alpha == 0.0f || k <= 0) {
    return;  // BLAS: A and B are not referenced
  }
  // Strides of op(A)[i, p] and op(B)[p, j] over the row-major arrays
  // (A is [m x k] or [k x m]; B is [k x n] or [n x k]).
  const int64_t a_rs = trans_a ? 1 : k;
  const int64_t a_cs = trans_a ? m : 1;
  const int64_t b_rs = trans_b ? 1 : n;
  const int64_t b_cs = trans_b ? k : 1;

  // Persistent per-thread pack buffers (both pools keep threads alive, so
  // these amortize across calls).
  thread_local std::vector<float> apack;
  thread_local std::vector<float> bpack;
  float tile[MR * NR];

  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    const int64_t nc_padded = AlignUp(nc, NR);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      // Pack op(B)[pc..pc+kc, jc..jc+nc] into NR-wide column panels,
      // zero-padding the last panel.
      bpack.resize(static_cast<size_t>(nc_padded * kc));
      for (int64_t jr = 0; jr < nc; jr += NR) {
        float* MSMOE_RESTRICT panel = bpack.data() + (jr / NR) * (NR * kc);
        const int64_t nr = std::min<int64_t>(NR, nc - jr);
        const float* bsrc = b + pc * b_rs + (jc + jr) * b_cs;
        for (int64_t p = 0; p < kc; ++p) {
          float* MSMOE_RESTRICT dst = panel + p * NR;
          const float* MSMOE_RESTRICT src = bsrc + p * b_rs;
          if (b_cs == 1) {
            for (int64_t ni = 0; ni < nr; ++ni) {
              dst[ni] = src[ni];
            }
          } else {
            for (int64_t ni = 0; ni < nr; ++ni) {
              dst[ni] = src[ni * b_cs];
            }
          }
          for (int64_t ni = nr; ni < NR; ++ni) {
            dst[ni] = 0.0f;
          }
        }
      }
      for (int64_t ic = i0; ic < i1; ic += kMC) {
        const int64_t mc = std::min(kMC, i1 - ic);
        const int64_t mc_padded = AlignUp(mc, MR);
        // Pack alpha * op(A)[ic..ic+mc, pc..pc+kc] into MR-tall row panels.
        apack.resize(static_cast<size_t>(mc_padded * kc));
        for (int64_t ir = 0; ir < mc; ir += MR) {
          float* MSMOE_RESTRICT panel = apack.data() + (ir / MR) * (MR * kc);
          const int64_t mr = std::min<int64_t>(MR, mc - ir);
          const float* asrc = a + (ic + ir) * a_rs + pc * a_cs;
          if (a_cs == 1) {
            // Rows of op(A) are contiguous: walk each source row once.
            for (int64_t mi = 0; mi < MR; ++mi) {
              if (mi < mr) {
                const float* MSMOE_RESTRICT src = asrc + mi * a_rs;
                for (int64_t p = 0; p < kc; ++p) {
                  panel[p * MR + mi] = alpha * src[p];
                }
              } else {
                for (int64_t p = 0; p < kc; ++p) {
                  panel[p * MR + mi] = 0.0f;
                }
              }
            }
          } else {
            // Columns of op(A) are contiguous (a_rs == 1).
            for (int64_t p = 0; p < kc; ++p) {
              float* MSMOE_RESTRICT dst = panel + p * MR;
              const float* MSMOE_RESTRICT src = asrc + p * a_cs;
              for (int64_t mi = 0; mi < mr; ++mi) {
                dst[mi] = alpha * src[mi];
              }
              for (int64_t mi = mr; mi < MR; ++mi) {
                dst[mi] = 0.0f;
              }
            }
          }
        }
        // Macro kernel: every MR x NR tile of this (mc x nc) block.
        for (int64_t jr = 0; jr < nc; jr += NR) {
          const int64_t nr = std::min<int64_t>(NR, nc - jr);
          const float* bpanel = bpack.data() + (jr / NR) * (NR * kc);
          for (int64_t ir = 0; ir < mc; ir += MR) {
            const int64_t mr = std::min<int64_t>(MR, mc - ir);
            micro(kc, apack.data() + (ir / MR) * (MR * kc), bpanel, tile);
            float* MSMOE_RESTRICT crow = c + (ic + ir) * n + jc + jr;
            if (mr == MR && nr == NR) {
              for (int64_t mi = 0; mi < MR; ++mi) {
                float* MSMOE_RESTRICT cdst = crow + mi * n;
                const float* MSMOE_RESTRICT t = tile + mi * NR;
                for (int64_t ni = 0; ni < NR; ++ni) {
                  cdst[ni] += t[ni];
                }
              }
            } else {
              for (int64_t mi = 0; mi < mr; ++mi) {
                float* MSMOE_RESTRICT cdst = crow + mi * n;
                const float* MSMOE_RESTRICT t = tile + mi * NR;
                for (int64_t ni = 0; ni < nr; ++ni) {
                  cdst[ni] += t[ni];
                }
              }
            }
          }
        }
      }
    }
  }
}

void RunRowRangeDispatch(bool trans_a, bool trans_b, int64_t i0, int64_t i1,
                         int64_t m, int64_t n, int64_t k, float alpha,
                         const float* a, const float* b, float beta, float* c) {
  const KernelChoice& choice = Choice();
#if MSMOE_GEMM_X86
  if (choice.avx2) {
    RunRowRange<kMrAvx2, kNrAvx2>(trans_a, trans_b, i0, i1, m, n, k, alpha, a, b,
                                  beta, c, choice.micro);
    return;
  }
#endif
  RunRowRange<kMrPortable, kNrPortable>(trans_a, trans_b, i0, i1, m, n, k, alpha,
                                        a, b, beta, c, choice.micro);
}

// Below this many FLOPs the pool hand-off costs more than it saves.
constexpr double kParallelFlopCutoff = 256.0 * 1024;

// Lock-free add for pre-C++20-atomic-float toolchains.
void AtomicAdd(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + value,
                                       std::memory_order_relaxed)) {
  }
}

struct KernelCounters {
  std::atomic<uint64_t> gemm_calls{0};
  std::atomic<double> gemm_flops{0.0};
  std::atomic<double> gemm_micros{0.0};
  std::atomic<uint64_t> grouped_calls{0};
  std::atomic<double> grouped_flops{0.0};
  std::atomic<double> grouped_micros{0.0};
};

KernelCounters& Counters() {
  static KernelCounters counters;
  return counters;
}

}  // namespace

void GemmBlocked(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                 float alpha, const float* a, const float* b, float beta, float* c) {
  if (m <= 0 || n <= 0) {
    return;
  }
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  if (alpha == 0.0f || k <= 0 || flops < kParallelFlopCutoff) {
    RunRowRangeDispatch(trans_a, trans_b, 0, m, m, n, k, alpha, a, b, beta, c);
    return;
  }
  ParallelFor(m, /*grain=*/16, [&](int64_t i0, int64_t i1) {
    RunRowRangeDispatch(trans_a, trans_b, i0, i1, m, n, k, alpha, a, b, beta, c);
  });
}

void GemmNaive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               float alpha, const float* a, const float* b, float beta, float* c) {
  ScaleRows(0, m, n, beta, c);
  if (alpha == 0.0f) {
    return;  // BLAS: A and B are not referenced
  }
  const int64_t a_row = trans_a ? 1 : k;
  const int64_t a_col = trans_a ? m : 1;
  const int64_t b_row = trans_b ? 1 : n;
  const int64_t b_col = trans_b ? k : 1;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      // No zero-skip here: 0 * Inf must contribute NaN, so non-finite values
      // in B propagate (regression: the old kernel silently dropped them).
      const float a_ip = alpha * a[i * a_row + p * a_col];
      const float* b_row_ptr = b + p * b_row;
      float* c_row_ptr = c + i * n;
      if (b_col == 1) {
        for (int64_t j = 0; j < n; ++j) {
          c_row_ptr[j] += a_ip * b_row_ptr[j];
        }
      } else {
        for (int64_t j = 0; j < n; ++j) {
          c_row_ptr[j] += a_ip * b_row_ptr[j * b_col];
        }
      }
    }
  }
}

bool GemmKernelUsesAvx2() { return Choice().avx2; }

KernelStatsSnapshot GetKernelStats() {
  KernelCounters& counters = Counters();
  KernelStatsSnapshot snapshot;
  snapshot.gemm_calls = counters.gemm_calls.load(std::memory_order_relaxed);
  snapshot.gemm_flops = counters.gemm_flops.load(std::memory_order_relaxed);
  snapshot.gemm_micros = counters.gemm_micros.load(std::memory_order_relaxed);
  snapshot.grouped_gemm_calls = counters.grouped_calls.load(std::memory_order_relaxed);
  snapshot.grouped_gemm_flops = counters.grouped_flops.load(std::memory_order_relaxed);
  snapshot.grouped_gemm_micros = counters.grouped_micros.load(std::memory_order_relaxed);
  return snapshot;
}

void ResetKernelStats() {
  KernelCounters& counters = Counters();
  counters.gemm_calls.store(0, std::memory_order_relaxed);
  counters.gemm_flops.store(0.0, std::memory_order_relaxed);
  counters.gemm_micros.store(0.0, std::memory_order_relaxed);
  counters.grouped_calls.store(0, std::memory_order_relaxed);
  counters.grouped_flops.store(0.0, std::memory_order_relaxed);
  counters.grouped_micros.store(0.0, std::memory_order_relaxed);
}

namespace internal {

void RecordGemmCall(double flops, double micros) {
  KernelCounters& counters = Counters();
  counters.gemm_calls.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(counters.gemm_flops, flops);
  AtomicAdd(counters.gemm_micros, micros);
}

void RecordGroupedGemmCall(double flops, double micros) {
  KernelCounters& counters = Counters();
  counters.grouped_calls.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(counters.grouped_flops, flops);
  AtomicAdd(counters.grouped_micros, micros);
}

}  // namespace internal

}  // namespace msmoe
