// Property-based sweeps: invariants that must hold across parameter ranges,
// exercised with parameterized gtest over shapes, group sizes, and formats.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "src/base/parallel_for.h"
#include "src/base/rng.h"
#include "src/comm/communicator.h"
#include "src/comm/hierarchical.h"
#include "src/core/exec_graph.h"
#include "src/model/attention.h"
#include "src/model/config.h"
#include "src/model/router.h"
#include "src/numerics/bf16.h"
#include "src/numerics/quantize.h"
#include "src/parallel/fused_ops.h"
#include "src/parallel/sp_attention.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

// --- Collectives: linearity, consistency, and cross-op identities over a
// sweep of group sizes and payload sizes. ---

class CollectiveSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(CollectiveSweepTest, AllReduceEqualsGatherThenSum) {
  const auto [n, count] = GetParam();
  FlatCommunicator ar_group(n);
  FlatCommunicator ag_group(n);
  std::vector<bool> ok(static_cast<size_t>(n), false);
  RunOnRanks(n, [&, n = n, count = count](int rank) {
    Rng rng(static_cast<uint64_t>(rank * 7919 + count));
    std::vector<float> send(static_cast<size_t>(count));
    for (auto& v : send) {
      v = static_cast<float>(rng.NextGaussian());
    }
    std::vector<float> reduced(static_cast<size_t>(count));
    ar_group.AllReduce(rank, send.data(), reduced.data(), count);

    std::vector<float> gathered(static_cast<size_t>(n * count));
    ag_group.AllGather(rank, send.data(), gathered.data(), count);
    bool match = true;
    for (int64_t i = 0; i < count; ++i) {
      double sum = 0.0;
      for (int src = 0; src < n; ++src) {
        sum += static_cast<double>(gathered[static_cast<size_t>(src * count + i)]);
      }
      if (std::fabs(static_cast<float>(sum) - reduced[static_cast<size_t>(i)]) > 1e-5) {
        match = false;
      }
    }
    ok[static_cast<size_t>(rank)] = match;
  });
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_TRUE(ok[static_cast<size_t>(rank)]) << rank;
  }
}

TEST_P(CollectiveSweepTest, AllToAllIsSelfInverse) {
  // A2A twice with symmetric block layout returns the original buffer.
  const auto [n, count] = GetParam();
  FlatCommunicator group(n);
  std::vector<bool> ok(static_cast<size_t>(n), false);
  RunOnRanks(n, [&, n = n, count = count](int rank) {
    Rng rng(static_cast<uint64_t>(rank + 31));
    std::vector<float> original(static_cast<size_t>(n * count));
    for (auto& v : original) {
      v = static_cast<float>(rng.NextGaussian());
    }
    std::vector<float> once(original.size());
    std::vector<float> twice(original.size());
    group.AllToAll(rank, original.data(), once.data(), count);
    group.AllToAll(rank, once.data(), twice.data(), count);
    ok[static_cast<size_t>(rank)] = twice == original;
  });
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_TRUE(ok[static_cast<size_t>(rank)]) << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, CollectiveSweepTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                                            ::testing::Values<int64_t>(1, 7, 64)));

class HierarchicalSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HierarchicalSweepTest, MatchesFlatForAnyTopology) {
  const auto [nodes, per_node] = GetParam();
  const int world = nodes * per_node;
  const int64_t count = 53;  // not divisible by per_node: exercises padding
  HierarchicalComm hier(nodes, per_node);
  FlatCommunicator flat(world);
  std::vector<double> max_err(static_cast<size_t>(world), 0.0);
  RunOnRanks(world, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank + 1));
    std::vector<float> data(static_cast<size_t>(count));
    for (auto& v : data) {
      v = static_cast<float>(rng.NextGaussian());
    }
    std::vector<float> expected(static_cast<size_t>(count));
    flat.AllReduce(rank, data.data(), expected.data(), count);
    hier.AllReduce(rank, data.data(), count);
    double err = 0.0;
    for (int64_t i = 0; i < count; ++i) {
      err = std::max(err, static_cast<double>(std::fabs(
                              data[static_cast<size_t>(i)] -
                              expected[static_cast<size_t>(i)])));
    }
    max_err[static_cast<size_t>(rank)] = err;
  });
  for (int rank = 0; rank < world; ++rank) {
    EXPECT_LT(max_err[static_cast<size_t>(rank)], 1e-4) << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, HierarchicalSweepTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3)));

// --- GEMM vs a naive triple loop over a shape sweep. ---

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(GemmShapeTest, MatchesNaiveReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + n * 101 + k));
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor c = MatMul(a, b);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double expected = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        expected += static_cast<double>(a.At(i, p)) * b.At(p, j);
      }
      EXPECT_NEAR(c.At(i, j), expected, 1e-4 * std::max(1.0, std::fabs(expected)))
          << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapeTest,
                         ::testing::Values(std::make_tuple<int64_t, int64_t, int64_t>(1, 1, 1),
                                           std::make_tuple<int64_t, int64_t, int64_t>(1, 5, 3),
                                           std::make_tuple<int64_t, int64_t, int64_t>(7, 1, 4),
                                           std::make_tuple<int64_t, int64_t, int64_t>(8, 8, 8),
                                           std::make_tuple<int64_t, int64_t, int64_t>(13, 7,
                                                                                      11)));

// --- RoPE: rotation-group property and norm preservation across shapes. ---

class RopeSweepTest : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(RopeSweepTest, RotationsCompose) {
  // rotate(x, p) then rotate(., q) == rotate(x, p + q) elementwise.
  const auto [heads, head_dim] = GetParam();
  Rng rng(17);
  const int64_t tokens = 3;
  Tensor x = Tensor::Randn({tokens, heads, head_dim}, rng);
  Tensor sequential = x;
  RopeInPlace(sequential, {2, 5, 9}, heads, head_dim);
  // Second rotation by +3 for every token.
  RopeInPlace(sequential, {3, 3, 3}, heads, head_dim);
  Tensor direct = x;
  RopeInPlace(direct, {5, 8, 12}, heads, head_dim);
  EXPECT_LT(sequential.RelativeL2Diff(direct), 1e-5);
}

TEST_P(RopeSweepTest, PreservesPairNorms) {
  const auto [heads, head_dim] = GetParam();
  Rng rng(19);
  Tensor x = Tensor::Randn({4, heads, head_dim}, rng);
  Tensor rotated = x;
  RopeInPlace(rotated, {1, 100, 10000, 123456}, heads, head_dim);
  double before = 0.0;
  double after = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    before += static_cast<double>(x[i]) * x[i];
    after += static_cast<double>(rotated[i]) * rotated[i];
  }
  EXPECT_NEAR(after, before, 1e-3 * before);
}

INSTANTIATE_TEST_SUITE_P(HeadShapes, RopeSweepTest,
                         ::testing::Combine(::testing::Values<int64_t>(1, 2, 4),
                                            ::testing::Values<int64_t>(2, 8, 64)));

// --- Router invariants over (experts, top-k). ---

class RouterSweepTest : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(RouterSweepTest, InvariantsHold) {
  const auto [experts, k] = GetParam();
  if (k > experts) {
    GTEST_SKIP();
  }
  Rng rng(static_cast<uint64_t>(experts * 100 + k));
  const int64_t tokens = 24;
  Tensor logits = Tensor::Randn({tokens, experts}, rng);
  RouterConfig config;
  config.num_experts = experts;
  config.top_k = k;
  RoutingResult routing = RouteTokens(logits, config);

  // (1) combine weights sum to 1 per token and are non-negative.
  for (int64_t t = 0; t < tokens; ++t) {
    double sum = 0.0;
    for (int64_t slot = 0; slot < k; ++slot) {
      EXPECT_GE(routing.combine_weight.At(t, slot), 0.0f);
      sum += routing.combine_weight.At(t, slot);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5) << t;
  }
  // (2) each token's selected experts are distinct.
  for (int64_t t = 0; t < tokens; ++t) {
    for (int64_t a = 0; a < k; ++a) {
      for (int64_t b = a + 1; b < k; ++b) {
        EXPECT_NE(routing.expert_index[static_cast<size_t>(t * k + a)],
                  routing.expert_index[static_cast<size_t>(t * k + b)]);
      }
    }
  }
  // (3) selected experts have the k highest probabilities.
  for (int64_t t = 0; t < tokens; ++t) {
    float min_selected = 1.0f;
    for (int64_t slot = 0; slot < k; ++slot) {
      min_selected = std::min(
          min_selected,
          routing.probs.At(t, routing.expert_index[static_cast<size_t>(t * k + slot)]));
    }
    int num_higher = 0;
    for (int64_t e = 0; e < experts; ++e) {
      if (routing.probs.At(t, e) > min_selected) {
        ++num_higher;
      }
    }
    EXPECT_LT(num_higher, k) << t;
  }
  // (4) counts match the dispatch plan.
  const int64_t total = std::accumulate(routing.expert_counts.begin(),
                                        routing.expert_counts.end(), int64_t{0});
  EXPECT_EQ(total, tokens * k);
  DispatchPlan plan = BuildDispatchPlan(routing, experts);
  EXPECT_EQ(plan.total_rows(), total);
}

INSTANTIATE_TEST_SUITE_P(ExpertTopK, RouterSweepTest,
                         ::testing::Combine(::testing::Values<int64_t>(2, 4, 8, 16, 64),
                                            ::testing::Values<int64_t>(1, 2, 3, 6)));

// --- Quantization idempotence across granularities and shapes. ---

class QuantIdempotenceTest
    : public ::testing::TestWithParam<std::tuple<QuantGranularity, int64_t, int64_t>> {};

TEST_P(QuantIdempotenceTest, RoundTripIsIdempotent) {
  const auto [granularity, rows, cols] = GetParam();
  Rng rng(static_cast<uint64_t>(rows * 131 + cols));
  std::vector<float> data(static_cast<size_t>(rows * cols));
  for (auto& v : data) {
    v = static_cast<float>(rng.NextGaussian(0.0, 3.0));
  }
  QuantConfig config;
  config.granularity = granularity;
  config.group_size = 4;
  const std::vector<float> once = QuantizeRoundTrip(data.data(), rows, cols, config);
  const std::vector<float> twice = QuantizeRoundTrip(once.data(), rows, cols, config);
  for (size_t i = 0; i < once.size(); ++i) {
    // Re-quantizing an already-quantized tensor (with its own amax as the
    // new scale) must reproduce it within one ulp of the E4M3 grid.
    EXPECT_NEAR(twice[i], once[i], std::fabs(once[i]) / 64.0f + 1e-6f) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GranularityShapes, QuantIdempotenceTest,
    ::testing::Combine(::testing::Values(QuantGranularity::kPerTensor,
                                         QuantGranularity::kPerToken,
                                         QuantGranularity::kPerChannel,
                                         QuantGranularity::kPerChannelGrouped),
                       ::testing::Values<int64_t>(1, 5, 16),
                       ::testing::Values<int64_t>(1, 8)));

// --- BF16 ordering: rounding preserves <= over a random sample. ---

TEST(Bf16PropertyTest, RoundingIsMonotone) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const float a = static_cast<float>(rng.NextGaussian(0.0, 100.0));
    const float b = static_cast<float>(rng.NextGaussian(0.0, 100.0));
    const float lo = std::min(a, b);
    const float hi = std::max(a, b);
    EXPECT_LE(Bf16Round(lo), Bf16Round(hi));
  }
}

// --- Attention over a GQA-ratio sweep: output rows are convex combinations
// of value rows (causal attention is an average over the prefix). ---

class AttentionSweepTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(AttentionSweepTest, OutputWithinValueHull) {
  const int64_t m = GetParam();  // query:kv head ratio
  Rng rng(static_cast<uint64_t>(m));
  const int64_t s = 6;
  const int64_t hkv = 2;
  const int64_t hq = hkv * m;
  const int64_t d = 4;
  Tensor q = Tensor::Randn({s, hq, d}, rng);
  Tensor k = Tensor::Randn({s, hkv, d}, rng);
  Tensor v = Tensor::Randn({s, hkv, d}, rng);
  AttentionCoreCache cache;
  Tensor out = AttentionCore(q, k, v, m, &cache);
  for (int64_t t = 0; t < s; ++t) {
    for (int64_t head = 0; head < hq; ++head) {
      const int64_t kv_head = head / m;
      for (int64_t e = 0; e < d; ++e) {
        float lo = 1e30f;
        float hi = -1e30f;
        for (int64_t u = 0; u <= t; ++u) {
          lo = std::min(lo, v.At(u, kv_head, e));
          hi = std::max(hi, v.At(u, kv_head, e));
        }
        EXPECT_GE(out.At(t, head, e), lo - 1e-5f);
        EXPECT_LE(out.At(t, head, e), hi + 1e-5f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GqaRatios, AttentionSweepTest, ::testing::Values<int64_t>(1, 2, 4));

// --- SP attention at n = 4 (the suite's other tests use n = 2). ---

TEST(SpAttentionWideTest, FourRanksMatchReference) {
  ModelConfig config = TinyMoeConfig(4, 2);
  config.hidden = 32;
  config.num_heads = 8;
  config.gqa_ratio = 2;
  config.seq_len = 8;
  const int n = 4;
  const int64_t batch = 1;
  Rng rng(5);
  Tensor w_qkv = Tensor::Randn({config.hidden, config.qkv_out_dim()}, rng, 0.0f, 0.2f);
  Tensor w_out = Tensor::Randn({config.hidden, config.hidden}, rng, 0.0f, 0.2f);
  Tensor x = Tensor::Randn({batch * config.seq_len, config.hidden}, rng);

  // Single-rank reference via the n=1 path of the same module.
  FlatCommunicator solo(1);
  Tensor y_ref;
  RunOnRanks(1, [&](int) {
    ShardContext ctx{&solo, 0};
    SpAttentionCache cache;
    y_ref = SpAttentionForward(ctx, config, w_qkv, w_out, x, batch, config.seq_len, &cache);
  });

  FlatCommunicator group(n);
  std::vector<Tensor> y(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&group, rank};
    const int64_t s_local = config.seq_len / n;
    Tensor x_local = x.SliceRows(rank * s_local, (rank + 1) * s_local);
    SpAttentionCache cache;
    y[static_cast<size_t>(rank)] =
        SpAttentionForward(ctx, config, w_qkv, w_out, x_local, batch, config.seq_len,
                           &cache);
  });
  for (int rank = 0; rank < n; ++rank) {
    const int64_t s_local = config.seq_len / n;
    Tensor ref_chunk = y_ref.SliceRows(rank * s_local, (rank + 1) * s_local);
    EXPECT_LT(y[static_cast<size_t>(rank)].RelativeL2Diff(ref_chunk), 1e-5) << rank;
  }
}

// --- Config accounting: parameter counts scale as expected. ---

TEST(ConfigPropertyTest, ParamsScaleLinearlyWithExperts) {
  ModelConfig base = TinyMoeConfig(8, 2);
  ModelConfig doubled = TinyMoeConfig(16, 2);
  EXPECT_EQ(doubled.ExpertParams(), 2 * base.ExpertParams());
  EXPECT_EQ(doubled.AttentionParams(), base.AttentionParams());
}

TEST(ConfigPropertyTest, ActivatedParamsIndependentOfExpertCount) {
  // Sparse activation: adding experts does not change activated params.
  ModelConfig a = TinyMoeConfig(8, 2);
  ModelConfig b = TinyMoeConfig(64, 2);
  // Router grows by h per expert; subtract that negligible term.
  const int64_t router_diff = (b.num_experts - a.num_experts) * b.hidden * b.num_layers;
  EXPECT_EQ(b.ActivatedParamsPerToken() - router_diff, a.ActivatedParamsPerToken());
}

// --- Runtime executor: ANY dependency-respecting schedule of a recorded
// fused pipeline terminates and is bitwise identical to the unfused
// reference, across worker counts, stream counts, and random seeds. To
// shrink a failing cell, rerun with the printed (workers, streams, seed)
// and reduce the tile count (larger `tile` = fewer ops). ---

class RandomizedScheduleTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(RandomizedScheduleTest, AnyValidScheduleIsBitwiseEqualToEager) {
  const auto [workers, num_streams, seed] = GetParam();
  const int n = 4;
  const int64_t rows_local = 7;  // ragged tiles
  const int64_t k = 8;
  const int64_t cols = 5;
  const int64_t tile = 2;

  Rng rng(seed * 101 + 3);
  std::vector<Tensor> x_locals;
  for (int rank = 0; rank < n; ++rank) {
    x_locals.push_back(Tensor::Randn({rows_local, k}, rng));
  }
  Tensor w = Tensor::Randn({k, cols}, rng);

  Tensor x_full({n * rows_local, k});
  for (int rank = 0; rank < n; ++rank) {
    std::copy(x_locals[static_cast<size_t>(rank)].data(),
              x_locals[static_cast<size_t>(rank)].data() + rows_local * k,
              x_full.data() + rank * rows_local * k);
  }
  Tensor y_ref = MatMul(x_full, w);

  const int restore = ParallelWorkerCount();
  SetParallelWorkerCount(workers);

  // All-gather + GEMM pipeline under a seeded random schedule. Every rank
  // derives the schedule from the same (graph shape, seed), so ranks agree.
  {
    FlatCommunicator group(n);
    std::vector<Tensor> y(n);
    std::vector<Status> statuses(static_cast<size_t>(n));
    RunOnRanks(n, [&, num_streams = num_streams, seed = seed](int rank) {
      ShardContext ctx{&group, rank};
      std::unique_ptr<FusedPipeline> pipe =
          RecordFusedAllGatherGemm(ctx, x_locals[static_cast<size_t>(rank)], w, tile);
      std::vector<int> order;
      std::vector<int> streams;
      RandomSchedule(pipe->graph.ops(), seed, num_streams, &order, &streams);
      statuses[static_cast<size_t>(rank)] =
          pipe->graph.ExecuteSchedule(order, streams, num_streams).status;
      y[static_cast<size_t>(rank)] = std::move(pipe->y);
    });
    for (int rank = 0; rank < n; ++rank) {
      ASSERT_TRUE(statuses[static_cast<size_t>(rank)].ok())
          << "AG-GEMM workers=" << workers << " streams=" << num_streams
          << " seed=" << seed << " rank=" << rank;
      EXPECT_EQ(y[static_cast<size_t>(rank)].RelativeL2Diff(y_ref), 0.0)
          << "AG-GEMM workers=" << workers << " streams=" << num_streams
          << " seed=" << seed << " rank=" << rank;
    }
  }

  // Producer-gated GEMM + reduce-scatter pipeline: the schedule can reorder
  // signals, tile GEMMs, and the wait-all any dependency-respecting way and
  // must still terminate (the wait-all deps on every signal) bitwise equal.
  {
    const int64_t rows = 8;
    const int64_t k_total = 12;
    const int64_t k_shard = k_total / n;
    Rng rs_rng(seed * 977 + 5);
    Tensor rs_x = Tensor::Randn({rows, k_total}, rs_rng);
    Tensor rs_w = Tensor::Randn({k_total, cols}, rs_rng);

    const auto shard_inputs = [&](int rank, Tensor* x_shard, Tensor* w_shard) {
      *x_shard = Tensor({rows, k_shard});
      *w_shard = Tensor({k_shard, cols});
      for (int64_t r = 0; r < rows; ++r) {
        std::copy(rs_x.data() + r * k_total + rank * k_shard,
                  rs_x.data() + r * k_total + (rank + 1) * k_shard,
                  x_shard->data() + r * k_shard);
      }
      std::copy(rs_w.data() + rank * k_shard * cols,
                rs_w.data() + (rank + 1) * k_shard * cols, w_shard->data());
    };

    // Bitwise reference: the eager fused pipeline (declared schedule). The
    // ring reduction is a rank-ordered sum, so it is NOT bit-equal to a
    // monolithic full-k GEMM — the invariant under test is schedule
    // independence, fused-vs-fused.
    std::vector<Tensor> y_eager(n);
    {
      FlatCommunicator group(n);
      RunOnRanks(n, [&](int rank) {
        Tensor x_shard;
        Tensor w_shard;
        shard_inputs(rank, &x_shard, &w_shard);
        ShardContext ctx{&group, rank};
        y_eager[static_cast<size_t>(rank)] =
            FusedGemmReduceScatter(ctx, x_shard, w_shard, tile);
      });
    }

    FlatCommunicator group(n);
    std::vector<Tensor> y(n);
    std::vector<Status> statuses(static_cast<size_t>(n));
    RunOnRanks(n, [&, num_streams = num_streams, seed = seed](int rank) {
      Tensor x_shard;
      Tensor w_shard;
      shard_inputs(rank, &x_shard, &w_shard);
      ShardContext ctx{&group, rank};
      std::unique_ptr<FusedPipeline> pipe =
          RecordFusedGemmReduceScatter(ctx, x_shard, w_shard, tile);
      std::vector<int> order;
      std::vector<int> streams;
      RandomSchedule(pipe->graph.ops(), seed, num_streams, &order, &streams);
      statuses[static_cast<size_t>(rank)] =
          pipe->graph.ExecuteSchedule(order, streams, num_streams).status;
      y[static_cast<size_t>(rank)] = std::move(pipe->y);
    });
    for (int rank = 0; rank < n; ++rank) {
      ASSERT_TRUE(statuses[static_cast<size_t>(rank)].ok())
          << "GEMM-RS workers=" << workers << " streams=" << num_streams
          << " seed=" << seed << " rank=" << rank;
      EXPECT_EQ(y[static_cast<size_t>(rank)].RelativeL2Diff(
                    y_eager[static_cast<size_t>(rank)]),
                0.0)
          << "GEMM-RS workers=" << workers << " streams=" << num_streams
          << " seed=" << seed << " rank=" << rank;
    }
  }

  SetParallelWorkerCount(restore);
}

INSTANTIATE_TEST_SUITE_P(
    ScheduleGrid, RandomizedScheduleTest,
    ::testing::Combine(::testing::Values(1, 2, 4),       // workers
                       ::testing::Values(1, 2, 3),       // streams
                       ::testing::Values<uint64_t>(1, 7, 23)));

}  // namespace
}  // namespace msmoe
