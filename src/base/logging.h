// Lightweight logging and assertion facilities.
//
// The library is used from multi-threaded rank code, so log emission is
// serialized with a process-wide mutex. CHECK failures abort: they indicate
// programmer error, never expected runtime conditions (those use Status).
#ifndef MSMOE_SRC_BASE_LOGGING_H_
#define MSMOE_SRC_BASE_LOGGING_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace msmoe {

// Thrown instead of aborting when a fatal log / CHECK failure happens on a
// thread that opted in via ScopedThrowOnFatal (below).
class FatalError : public std::runtime_error {
 public:
  explicit FatalError(const std::string& message) : std::runtime_error(message) {}
};

// While alive, fatal failures on THIS thread throw FatalError instead of
// aborting the process. Rank-thread harnesses (RunOnRanksStatus) use it so a
// CHECK failure in one rank can be reported as a Status and surviving ranks
// can be unblocked, rather than tearing the whole process down mid-test.
class ScopedThrowOnFatal {
 public:
  ScopedThrowOnFatal();
  ~ScopedThrowOnFatal();

  ScopedThrowOnFatal(const ScopedThrowOnFatal&) = delete;
  ScopedThrowOnFatal& operator=(const ScopedThrowOnFatal&) = delete;

  // True if the current thread is inside a ScopedThrowOnFatal scope.
  static bool Active();

 private:
  bool previous_;
};

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Returns the minimum severity that is actually emitted. Controlled by the
// MSMOE_LOG_LEVEL environment variable (0..4); defaults to kInfo.
LogSeverity MinLogSeverity();

namespace internal {

// Collects one log statement and emits it (and aborts for kFatal) on
// destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  // May throw FatalError for kFatal under ScopedThrowOnFatal.
  ~LogMessage() noexcept(false);

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Turns an ostream expression into void so the CHECK ternary type-checks;
// operator& binds looser than operator<<.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define MSMOE_LOG(severity)                                                             \
  ::msmoe::internal::LogMessage(::msmoe::LogSeverity::k##severity, __FILE__, __LINE__) \
      .stream()

#define MSMOE_CHECK(cond)                                                      \
  (cond) ? (void)0                                                             \
         : ::msmoe::internal::Voidify() &                                      \
               ::msmoe::internal::LogMessage(::msmoe::LogSeverity::kFatal,     \
                                             __FILE__, __LINE__)               \
                   .stream()                                                   \
               << "Check failed: " #cond " "

#define MSMOE_CHECK_EQ(a, b) MSMOE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define MSMOE_CHECK_NE(a, b) MSMOE_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define MSMOE_CHECK_LT(a, b) MSMOE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define MSMOE_CHECK_LE(a, b) MSMOE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define MSMOE_CHECK_GT(a, b) MSMOE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define MSMOE_CHECK_GE(a, b) MSMOE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

// MSMOE_DCHECK*: assertions on per-element hot paths (Tensor::operator[] /
// At and similar). Active in Debug builds (no NDEBUG) and in sanitizer
// builds (CMake defines MSMOE_DCHECK_ALWAYS_ON whenever MSMOE_SANITIZE is
// set — the default RelWithDebInfo base of those builds would otherwise
// define NDEBUG and silently disable them). In optimized builds they
// compile to nothing: the condition is parsed but never evaluated.
#if !defined(NDEBUG) || defined(MSMOE_DCHECK_ALWAYS_ON)
#define MSMOE_DCHECK_IS_ON 1
#else
#define MSMOE_DCHECK_IS_ON 0
#endif

#if MSMOE_DCHECK_IS_ON
#define MSMOE_DCHECK(cond) MSMOE_CHECK(cond)
#else
#define MSMOE_DCHECK(cond) \
  while (false) MSMOE_CHECK(cond)
#endif

#define MSMOE_DCHECK_EQ(a, b) MSMOE_DCHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define MSMOE_DCHECK_NE(a, b) MSMOE_DCHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define MSMOE_DCHECK_LT(a, b) MSMOE_DCHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define MSMOE_DCHECK_LE(a, b) MSMOE_DCHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define MSMOE_DCHECK_GT(a, b) MSMOE_DCHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define MSMOE_DCHECK_GE(a, b) MSMOE_DCHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace msmoe

#endif  // MSMOE_SRC_BASE_LOGGING_H_
