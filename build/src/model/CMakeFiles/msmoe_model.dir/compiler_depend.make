# Empty compiler generated dependencies file for msmoe_model.
# This may be replaced when dependencies are built.
