# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("numerics")
subdirs("tensor")
subdirs("comm")
subdirs("hw")
subdirs("sim")
subdirs("model")
subdirs("parallel")
subdirs("core")
