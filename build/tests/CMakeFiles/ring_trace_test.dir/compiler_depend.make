# Empty compiler generated dependencies file for ring_trace_test.
# This may be replaced when dependencies are built.
