// Shared helpers for the reproduction benches (one binary per paper
// table/figure; each prints the same rows/series the paper reports).
#ifndef MSMOE_BENCH_BENCH_UTIL_H_
#define MSMOE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace msmoe {

inline void PrintHeader(const std::string& experiment, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n\n");
}

inline void PrintPaperNote(const std::string& note) {
  std::printf("paper reference: %s\n\n", note.c_str());
}

// Wall-clock timing with warmup + median-of-N, so BENCH JSON numbers are
// stable run-to-run (a single cold measurement can be 2x off: first-touch
// page faults, frequency ramp, pool-thread spawn). Runs fn() `warmup` times
// untimed, then `reps` timed times, and returns the median of the timed
// repetitions in seconds.
template <typename Fn>
double MedianSecondsOfN(int warmup, int reps, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

}  // namespace msmoe

#endif  // MSMOE_BENCH_BENCH_UTIL_H_
