// The §7 "Scale up" analysis: the compute/communication ratio R of the MoE
// FFN under SP+EP scaling (Eqs 5-9).
//
//   comm_time = 2k * bsh(n-1)/n / n / bandwidth
//   comp_time = 3k * bs * h * h_ffn / n / peak
//   R = comp/comm ~= 3/2 * h_ffn * bandwidth / peak          (Eq 9)
//
// R > 1 means expert computation can fully hide dispatch/combine
// communication; R is independent of expert count, top-k, hidden size,
// parallel size and batch — only the expert intermediate width and the
// hardware ratio matter.
#ifndef MSMOE_SRC_CORE_SCALEUP_ANALYSIS_H_
#define MSMOE_SRC_CORE_SCALEUP_ANALYSIS_H_

#include <cstdint>

#include "src/hw/gpu_spec.h"

namespace msmoe {

struct ScaleupRatio {
  double comm_time_us = 0.0;
  double comp_time_us = 0.0;
  double exact_ratio = 0.0;   // comp / comm with the (n-1)/n term (Eq 8)
  double approx_ratio = 0.0;  // Eq 9 limit
};

// Exact Eq 5-8 evaluation for a concrete configuration. `bandwidth` and
// `peak` come from the GPU spec (bytes/us and FLOPs/us); elements are BF16.
ScaleupRatio ComputeScaleupRatio(int64_t b, int64_t s, int64_t h, int64_t h_ffn, int64_t k,
                                 int n, double bandwidth_bytes_per_us,
                                 double peak_flops_per_us);

// Eq 9: R ~= 3/2 * h_ffn * bandwidth / peak (per-element bytes folded in).
double ScaleupRatioApprox(int64_t h_ffn, double bandwidth_bytes_per_us,
                          double peak_flops_per_us);

// Smallest expert intermediate width sustaining R > 1 on the given GPU,
// i.e. the §7 "expert dimension is sufficiently large" threshold.
int64_t MinEfficientFfnHidden(const GpuSpec& gpu, bool internode);

}  // namespace msmoe

#endif  // MSMOE_SRC_CORE_SCALEUP_ANALYSIS_H_
