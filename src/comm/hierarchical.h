// Hierarchical (intra-node + inter-node) collectives, Appendix A.1.
//
// SP attention replicates the attention parameters across the n ranks of a
// node, so gradient synchronization involves the full parameter tensor on
// n*d devices. Modern communication libraries implement this as four steps
// (Fig 5a): intra-node reduce-scatter, inter-node reduce-scatter, inter-node
// all-gather, intra-node all-gather. The inter-node volume matches TP
// attention's 2*P/n*(d-1)/d, which is the paper's argument that SP costs
// about the same to synchronize in practice.
//
// Ranks are numbered node-major: global = node * gpus_per_node + local.
#ifndef MSMOE_SRC_COMM_HIERARCHICAL_H_
#define MSMOE_SRC_COMM_HIERARCHICAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/comm/collective_group.h"

namespace msmoe {

class HierarchicalComm {
 public:
  HierarchicalComm(int nodes, int gpus_per_node);

  int nodes() const { return nodes_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int world_size() const { return nodes_ * gpus_per_node_; }

  int NodeOf(int rank) const { return rank / gpus_per_node_; }
  int LocalOf(int rank) const { return rank % gpus_per_node_; }

  // The intra-node group containing `rank` (members are the node's GPUs;
  // member index = local index).
  CollectiveGroup& IntraGroup(int rank);
  // The inter-node group containing `rank` (members are the same local index
  // across nodes; member index = node index).
  CollectiveGroup& InterGroup(int rank);

  // Four-step hierarchical all-reduce of `count` floats replicated on every
  // rank. Every rank ends with the global sum. All ranks must call.
  void AllReduce(int rank, float* data, int64_t count);

  // Total analytic wire bytes by fabric.
  uint64_t IntraWireBytes() const;
  uint64_t InterWireBytes() const;
  void ResetWireBytes();

  // Fault surface, fanned out over every constituent group (a rank can be
  // blocked in its intra-node or inter-node barrier; see collective_group.h).
  void SetTimeoutMs(double timeout_ms);
  void AbortAll(const Status& status);
  void ResetAbortAll();
  // First non-OK status across the sub-groups, or OK.
  Status FirstError() const;

 private:
  const int nodes_;
  const int gpus_per_node_;
  std::vector<std::unique_ptr<CollectiveGroup>> intra_groups_;  // one per node
  std::vector<std::unique_ptr<CollectiveGroup>> inter_groups_;  // one per local index
};

}  // namespace msmoe

#endif  // MSMOE_SRC_COMM_HIERARCHICAL_H_
