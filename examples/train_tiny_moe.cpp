// End-to-end numeric training of a small MoE language model with the
// production recipe: data-parallel thread ranks, BF16 compute copies over
// FP32 masters, the §5 BF16 all-to-all gradient compression, group-wise
// balance loss, and a mid-run checkpoint restart.
//
//   $ ./train_tiny_moe
//
// The model is the real thing (GQA attention + RoPE + top-k routed SwiGLU
// experts with manual backprop), just small enough for a CPU.
#include <cstdio>

#include "src/core/trainer.h"

using namespace msmoe;

int main() {
  NumericTrainConfig config;
  config.model = TinyMoeConfig(/*num_experts=*/8, /*top_k=*/2);
  config.model.num_layers = 2;
  config.model.vocab = 32;
  config.model.seq_len = 16;
  config.router.num_experts = 8;
  config.router.top_k = 2;
  config.router.aux_loss_coeff = 0.01;
  config.router.experts_per_group = 4;   // balance per device group (§3.2)
  config.router.capacity_factor = 2.0;   // drop pathological overflow
  config.dp_size = 2;
  config.batch_per_rank = 4;
  config.steps = 120;
  config.adam.lr = 3e-3;
  config.precision = TrainPrecision::kBf16;            // FP32 masters kept
  config.grad_sync = GradSyncMode::kBf16AllToAll;      // §5 compression
  config.restart_every = 50;                           // checkpoint + restart

  std::printf("training a %lld-parameter MoE LM on %d DP ranks (%s grads, %s compute)\n",
              static_cast<long long>(
                  LmParams::ZerosLike(config.model).TotalElements()),
              config.dp_size, GradSyncModeName(config.grad_sync),
              TrainPrecisionName(config.precision));

  const TrainCurve curve = TrainLm(config);
  for (size_t step = 0; step < curve.loss.size(); step += 10) {
    std::printf("step %3zu  loss %.4f\n", step, curve.loss[step]);
  }
  std::printf("final loss %.4f (started at %.4f)\n", curve.loss.back(), curve.loss.front());
  std::printf("checkpoint restarts at steps:");
  for (int64_t step : curve.restart_steps) {
    std::printf(" %lld", static_cast<long long>(step));
  }
  std::printf("\n");
  return curve.loss.back() < curve.loss.front() ? 0 : 1;
}
