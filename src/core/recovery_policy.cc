#include "src/core/recovery_policy.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace msmoe {

const char* FaultVerdictName(FaultVerdict verdict) {
  switch (verdict) {
    case FaultVerdict::kTransient:
      return "transient";
    case FaultVerdict::kPermanent:
      return "permanent";
    case FaultVerdict::kFatal:
      return "fatal";
  }
  return "unknown";
}

Status ValidateRecoveryPolicyConfig(const RecoveryPolicyConfig& config) {
  if (config.max_retries < 0) {
    return InvalidArgument("max_retries must be >= 0");
  }
  if (config.backoff_base_ms < 0.0 || config.backoff_max_ms < 0.0) {
    return InvalidArgument("backoff bounds must be >= 0");
  }
  if (config.backoff_multiplier < 1.0) {
    return InvalidArgument("backoff_multiplier must be >= 1");
  }
  if (config.rank_strike_limit < 1) {
    return InvalidArgument("rank_strike_limit must be >= 1");
  }
  return Status::Ok();
}

RecoveryPolicy::RecoveryPolicy(const RecoveryPolicyConfig& config) : config_(config) {
  MSMOE_CHECK(ValidateRecoveryPolicyConfig(config).ok())
      << ValidateRecoveryPolicyConfig(config).ToString();
}

RecoveryDecision RecoveryPolicy::OnFailure(const Status& status, int suspect_rank) {
  MSMOE_CHECK(!status.ok()) << "OnFailure needs a non-OK status";
  RecoveryDecision decision;
  decision.attempt = ++attempt_;
  decision.culprit_rank = suspect_rank;

  // kDataLoss is rollback-repairable even though re-running the op is not
  // (see header); everything else outside IsRetryableFault is a logic or
  // config error that will fail identically on every attempt.
  const bool recoverable =
      IsRetryableFault(status) || status.code() == StatusCode::kDataLoss;
  if (!recoverable) {
    decision.verdict = FaultVerdict::kFatal;
    decision.reason = std::string("non-recoverable status code ") +
                      StatusCodeName(status.code());
    return decision;
  }

  if (suspect_rank >= 0) {
    if (suspect_rank >= static_cast<int>(strikes_.size())) {
      strikes_.resize(static_cast<size_t>(suspect_rank) + 1, 0);
    }
    const int strikes = ++strikes_[static_cast<size_t>(suspect_rank)];
    if (strikes >= config_.rank_strike_limit) {
      decision.verdict = FaultVerdict::kPermanent;
      decision.reason = "rank " + std::to_string(suspect_rank) + " reached " +
                        std::to_string(strikes) + "/" +
                        std::to_string(config_.rank_strike_limit) +
                        " strikes (recurring fault)";
      return decision;
    }
  }

  if (attempt_ > config_.max_retries) {
    if (suspect_rank >= 0) {
      // The budget ran out but we know who keeps failing: evict rather than
      // give up on the whole job.
      decision.verdict = FaultVerdict::kPermanent;
      decision.reason = "retry budget exhausted (" + std::to_string(attempt_ - 1) +
                        "/" + std::to_string(config_.max_retries) +
                        " retries used); evicting suspect rank " +
                        std::to_string(suspect_rank);
    } else {
      decision.verdict = FaultVerdict::kFatal;
      decision.reason = "retry budget exhausted with no suspect to evict";
    }
    return decision;
  }

  decision.verdict = FaultVerdict::kTransient;
  decision.backoff_ms =
      std::min(config_.backoff_base_ms *
                   std::pow(config_.backoff_multiplier,
                            static_cast<double>(decision.attempt - 1)),
               config_.backoff_max_ms);
  decision.reason = std::string("retryable ") + StatusCodeName(status.code()) +
                    " (attempt " + std::to_string(decision.attempt) + "/" +
                    std::to_string(config_.max_retries) + ")";
  return decision;
}

void RecoveryPolicy::OnStepSuccess() { attempt_ = 0; }

int RecoveryPolicy::strikes(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(strikes_.size())) {
    return 0;
  }
  return strikes_[static_cast<size_t>(rank)];
}

}  // namespace msmoe
