// Intra-rank data parallelism: a lazily-initialized, per-process persistent
// worker pool plus ParallelFor, the only entry point kernel code uses.
//
// Layering (see DESIGN.md "Compute backend"): the comm layer runs one
// long-lived thread per simulated GPU rank (RunOnRanks); *within* a rank the
// compute kernels (GEMM row panels, GroupedGemm expert groups, attention
// heads) split their index range across this pool. The two pools are
// independent: rank threads are full ParallelFor callers, while nested
// ParallelFor calls (a shard that itself calls ParallelFor) degrade to
// inline execution, so worker threads never block on further shards and the
// pool cannot deadlock on itself.
//
// Determinism contract: ParallelFor only partitions the index range into
// contiguous shards; it never introduces cross-shard reductions. Kernels
// built on it keep every output element's accumulation order independent of
// the shard boundaries, so results are bit-identical for any worker count
// (MSMOE_NUM_THREADS ∈ {1, 4, ...}) — the property the fused-ops bitwise
// tests and fault-replay loss checks rely on.
//
// Sizing: MSMOE_NUM_THREADS when set (clamped to [1, 64]); otherwise
// hardware_concurrency clamped to 16. SetParallelWorkerCount overrides at
// runtime (benches use it to measure 1-vs-N-worker scaling in one process);
// the pool grows on demand and threads persist until process exit.
#ifndef MSMOE_SRC_BASE_PARALLEL_FOR_H_
#define MSMOE_SRC_BASE_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace msmoe {

// Current worker cap used by ParallelFor (>= 1). This counts the calling
// thread: a value of 1 means every ParallelFor runs inline.
int ParallelWorkerCount();

// Overrides the worker cap (clamped to [1, 64]). Takes effect for subsequent
// ParallelFor calls; already-spawned pool threads are kept.
void SetParallelWorkerCount(int count);

// True while the current thread is executing a ParallelFor shard (pool
// worker or the caller running its own shard). Nested ParallelFor calls see
// this and run inline.
bool InParallelWorker();

// Invokes fn over a disjoint partition of [0, n): fn(begin, end) with
// 0 <= begin < end <= n, covering every index exactly once. Shards are
// contiguous and at least `grain` long (except possibly the last), capped at
// ParallelWorkerCount() shards. The caller executes one shard itself and
// blocks until all shards finish. Runs fn(0, n) inline when n <= grain, the
// cap is 1, or the call is nested inside another ParallelFor shard.
//
// Exceptions thrown by fn on any shard (including MSMOE_CHECK failures on
// pool workers, which are converted to FatalError) are captured; the first
// one is rethrown on the calling thread after all shards complete.
void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t begin, int64_t end)>& fn);

}  // namespace msmoe

#endif  // MSMOE_SRC_BASE_PARALLEL_FOR_H_
