// Google-benchmark microbenchmarks of the real (CPU) kernels underpinning
// the numeric substrate: GEMM, grouped GEMM, attention core, router,
// quantization, and thread-rank collectives. These measure actual wall
// time (unlike the figure benches, which report simulated cluster time).
#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/comm/communicator.h"
#include "src/model/attention.h"
#include "src/model/grouped_gemm.h"
#include "src/model/router.h"
#include "src/numerics/quantize.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t dim = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({dim, dim}, rng);
  Tensor b = Tensor::Randn({dim, dim}, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * dim * dim * dim);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_GroupedGemm(benchmark::State& state) {
  const int64_t experts = state.range(0);
  Rng rng(2);
  const int64_t rows = 128;
  const int64_t h = 64;
  const int64_t f = 96;
  Tensor x = Tensor::Randn({rows, h}, rng);
  std::vector<Tensor> weights;
  std::vector<int64_t> offsets = {0};
  for (int64_t e = 0; e < experts; ++e) {
    weights.push_back(Tensor::Randn({h, f}, rng));
    offsets.push_back(rows * (e + 1) / experts);
  }
  for (auto _ : state) {
    Tensor y = GroupedGemm(x, offsets, weights);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GroupedGemm)->Arg(2)->Arg(8)->Arg(32);

void BM_AttentionCore(benchmark::State& state) {
  const int64_t seq = state.range(0);
  Rng rng(3);
  Tensor q = Tensor::Randn({seq, 4, 16}, rng);
  Tensor k = Tensor::Randn({seq, 2, 16}, rng);
  Tensor v = Tensor::Randn({seq, 2, 16}, rng);
  for (auto _ : state) {
    AttentionCoreCache cache;
    Tensor out = AttentionCore(q, k, v, 2, &cache);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AttentionCore)->Arg(32)->Arg(128);

void BM_RouteTokens(benchmark::State& state) {
  const int64_t experts = state.range(0);
  Rng rng(4);
  Tensor logits = Tensor::Randn({256, experts}, rng);
  RouterConfig config;
  config.num_experts = experts;
  config.top_k = 2;
  config.aux_loss_coeff = 0.01;
  for (auto _ : state) {
    RoutingResult routing = RouteTokens(logits, config);
    benchmark::DoNotOptimize(routing.expert_counts.data());
  }
}
BENCHMARK(BM_RouteTokens)->Arg(8)->Arg(64);

void BM_QuantizeFp8(benchmark::State& state) {
  Rng rng(5);
  const int64_t rows = 128;
  const int64_t cols = 256;
  std::vector<float> data(static_cast<size_t>(rows * cols));
  for (auto& v : data) {
    v = static_cast<float>(rng.NextGaussian());
  }
  QuantConfig config;
  config.granularity = static_cast<QuantGranularity>(state.range(0));
  for (auto _ : state) {
    QuantizedMatrix q = Quantize(data.data(), rows, cols, config);
    benchmark::DoNotOptimize(q.codes.data());
  }
  state.SetBytesProcessed(state.iterations() * rows * cols * 4);
}
BENCHMARK(BM_QuantizeFp8)
    ->Arg(static_cast<int>(QuantGranularity::kPerTensor))
    ->Arg(static_cast<int>(QuantGranularity::kPerToken))
    ->Arg(static_cast<int>(QuantGranularity::kPerChannelGrouped));

void BM_AllToAll(benchmark::State& state) {
  const int n = 4;
  const int64_t count = state.range(0);
  for (auto _ : state) {
    FlatCommunicator group(n);
    RunOnRanks(n, [&](int rank) {
      std::vector<float> send(static_cast<size_t>(n * count), 1.0f);
      std::vector<float> recv(static_cast<size_t>(n * count));
      group.AllToAll(rank, send.data(), recv.data(), count);
      benchmark::DoNotOptimize(recv.data());
    });
  }
}
BENCHMARK(BM_AllToAll)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace msmoe

BENCHMARK_MAIN();
