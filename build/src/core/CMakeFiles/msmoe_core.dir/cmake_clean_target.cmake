file(REMOVE_RECURSE
  "libmsmoe_core.a"
)
