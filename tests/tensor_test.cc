#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "src/base/arena.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

// Finite-difference gradient check helper: perturbs x[i] and compares the
// numeric derivative of `loss` against analytic_grad[i].
template <typename LossFn>
void CheckGradient(Tensor& x, const Tensor& analytic_grad, LossFn loss, double tol = 2e-2) {
  const float eps = 1e-3f;
  for (int64_t i = 0; i < x.numel(); i += std::max<int64_t>(1, x.numel() / 17)) {
    const float original = x[i];
    x[i] = original + eps;
    const double up = loss();
    x[i] = original - eps;
    const double down = loss();
    x[i] = original;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic_grad[i], numeric,
                tol * std::max(1.0, std::fabs(numeric)))
        << "index " << i;
  }
}

TEST(TensorTest, ZerosAndShape) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.dim(2), 4);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(1, 0), 3.0f);
  EXPECT_EQ(t.At(1, 1), 4.0f);
}

TEST(TensorTest, RandnDeterministic) {
  Rng rng1(42);
  Rng rng2(42);
  Tensor a = Tensor::Randn({8, 8}, rng1);
  Tensor b = Tensor::Randn({8, 8}, rng2);
  EXPECT_EQ(a.RelativeL2Diff(b), 0.0);
}

TEST(TensorTest, ReshapedPreservesData) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.At(0, 1), 2.0f);
  EXPECT_EQ(r.At(2, 1), 6.0f);
}

TEST(TensorTest, SliceRows) {
  Tensor t = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = t.SliceRows(1, 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.At(0, 0), 3.0f);
  EXPECT_EQ(s.At(1, 1), 6.0f);
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor b = Tensor::FromVector({2}, {10.0f, 20.0f});
  a.AddInPlace(b);
  EXPECT_EQ(a[0], 11.0f);
  a.ScaleInPlace(0.5f);
  EXPECT_EQ(a[1], 11.0f);
  a.AxpyInPlace(2.0f, b);
  EXPECT_EQ(a[0], 25.5f);
}

TEST(GemmTest, MatMulSmallKnown) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.At(0, 0), 58.0f);
  EXPECT_EQ(c.At(0, 1), 64.0f);
  EXPECT_EQ(c.At(1, 0), 139.0f);
  EXPECT_EQ(c.At(1, 1), 154.0f);
}

TEST(GemmTest, TransposeVariantsAgree) {
  Rng rng(1);
  Tensor a = Tensor::Randn({4, 6}, rng);
  Tensor b = Tensor::Randn({6, 5}, rng);
  Tensor c = MatMul(a, b);

  // b_t[n, k]: MatMulNT(a, b_t) must equal c.
  Tensor b_t({5, 6});
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      b_t.At(j, i) = b.At(i, j);
    }
  }
  EXPECT_LT(MatMulNT(a, b_t).RelativeL2Diff(c), 1e-6);

  // a_t[k, m]: MatMulTN(a_t, b) must equal c.
  Tensor a_t({6, 4});
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      a_t.At(j, i) = a.At(i, j);
    }
  }
  EXPECT_LT(MatMulTN(a_t, b).RelativeL2Diff(c), 1e-6);
}

TEST(GemmTest, BetaAccumulates) {
  Tensor a = Tensor::FromVector({1, 1}, {2.0f});
  Tensor b = Tensor::FromVector({1, 1}, {3.0f});
  Tensor c = Tensor::FromVector({1, 1}, {10.0f});
  Gemm(false, false, 1, 1, 1, 1.0f, a.data(), b.data(), 1.0f, c.data());
  EXPECT_EQ(c[0], 16.0f);
}

TEST(GemmTest, MatMulGradientsFiniteDifference) {
  Rng rng(2);
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor b = Tensor::Randn({4, 2}, rng);
  Tensor dc = Tensor::Full({3, 2}, 1.0f);
  MatMulGrads grads = MatMulBackward(dc, a, b);
  auto loss = [&] {
    Tensor c = MatMul(a, b);
    double total = 0.0;
    for (int64_t i = 0; i < c.numel(); ++i) {
      total += c[i];
    }
    return total;
  };
  CheckGradient(a, grads.da, loss);
  CheckGradient(b, grads.db, loss);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(3);
  Tensor x = Tensor::Randn({5, 7}, rng);
  Tensor y = Softmax(x);
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < 7; ++c) {
      EXPECT_GT(y.At(r, c), 0.0f);
      sum += y.At(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Tensor x = Tensor::FromVector({1, 3}, {1000.0f, 1001.0f, 999.0f});
  Tensor y = Softmax(x);
  EXPECT_FALSE(std::isnan(y[0]));
  EXPECT_GT(y.At(0, 1), y.At(0, 0));
}

TEST(SoftmaxTest, BackwardFiniteDifference) {
  Rng rng(4);
  Tensor x = Tensor::Randn({2, 5}, rng);
  Tensor dy = Tensor::Randn({2, 5}, rng);
  Tensor y = Softmax(x);
  Tensor dx = SoftmaxBackward(dy, y);
  auto loss = [&] {
    Tensor out = Softmax(x);
    double total = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i) {
      total += out[i] * dy[i];
    }
    return total;
  };
  CheckGradient(x, dx, loss);
}

TEST(RmsNormTest, UnitGainNormalizes) {
  Rng rng(5);
  Tensor x = Tensor::Randn({4, 32}, rng, 0.0f, 3.0f);
  Tensor gain = Tensor::Full({32}, 1.0f);
  Tensor inv_rms;
  Tensor y = RmsNorm(x, gain, &inv_rms);
  for (int64_t r = 0; r < 4; ++r) {
    double sum_sq = 0.0;
    for (int64_t c = 0; c < 32; ++c) {
      sum_sq += static_cast<double>(y.At(r, c)) * y.At(r, c);
    }
    EXPECT_NEAR(sum_sq / 32.0, 1.0, 1e-3);
  }
}

TEST(RmsNormTest, BackwardFiniteDifference) {
  Rng rng(6);
  Tensor x = Tensor::Randn({3, 8}, rng);
  Tensor gain = Tensor::Uniform({8}, rng, 0.5f, 1.5f);
  Tensor dy = Tensor::Randn({3, 8}, rng);
  Tensor inv_rms;
  Tensor y = RmsNorm(x, gain, &inv_rms);
  RmsNormGrads grads = RmsNormBackward(dy, x, gain, inv_rms);
  auto loss = [&] {
    Tensor out = RmsNorm(x, gain, nullptr);
    double total = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i) {
      total += out[i] * dy[i];
    }
    return total;
  };
  CheckGradient(x, grads.dx, loss);
  CheckGradient(gain, grads.dgain, loss);
}

TEST(SwiGluTest, MatchesDefinition) {
  Tensor gate = Tensor::FromVector({1, 2}, {1.0f, -2.0f});
  Tensor lin = Tensor::FromVector({1, 2}, {3.0f, 4.0f});
  Tensor y = SwiGlu(gate, lin);
  auto silu = [](float v) { return v / (1.0f + std::exp(-v)); };
  EXPECT_NEAR(y[0], silu(1.0f) * 3.0f, 1e-6);
  EXPECT_NEAR(y[1], silu(-2.0f) * 4.0f, 1e-6);
}

TEST(SwiGluTest, BackwardFiniteDifference) {
  Rng rng(7);
  Tensor gate = Tensor::Randn({2, 4}, rng);
  Tensor lin = Tensor::Randn({2, 4}, rng);
  Tensor dy = Tensor::Randn({2, 4}, rng);
  SwiGluGrads grads = SwiGluBackward(dy, gate, lin);
  auto loss = [&] {
    Tensor out = SwiGlu(gate, lin);
    double total = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i) {
      total += out[i] * dy[i];
    }
    return total;
  };
  CheckGradient(gate, grads.dgate, loss);
  CheckGradient(lin, grads.dlinear, loss);
}

TEST(RopeTest, PreservesNorm) {
  Rng rng(8);
  Tensor x = Tensor::Randn({4, 2, 8}, rng);
  const double norm_before = x.SumAbs();
  std::vector<int64_t> positions = {0, 1, 2, 3};
  Tensor rotated = x;
  RopeInPlace(rotated, positions, 2, 8);
  // Rotations preserve the L2 norm of each (pair) subspace.
  double sq_before = 0.0;
  double sq_after = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    sq_before += static_cast<double>(x[i]) * x[i];
    sq_after += static_cast<double>(rotated[i]) * rotated[i];
  }
  EXPECT_NEAR(sq_after, sq_before, 1e-3);
  (void)norm_before;
}

TEST(RopeTest, PositionZeroIsIdentity) {
  Rng rng(9);
  Tensor x = Tensor::Randn({1, 2, 8}, rng);
  Tensor rotated = x;
  RopeInPlace(rotated, {0}, 2, 8);
  EXPECT_LT(rotated.RelativeL2Diff(x), 1e-7);
}

TEST(RopeTest, BackwardInvertsForward) {
  Rng rng(10);
  Tensor x = Tensor::Randn({3, 2, 8}, rng);
  Tensor original = x;
  std::vector<int64_t> positions = {5, 9, 13};
  RopeInPlace(x, positions, 2, 8);
  RopeBackwardInPlace(x, positions, 2, 8);
  EXPECT_LT(x.RelativeL2Diff(original), 1e-5);
}

TEST(GatherScatterTest, GatherRows) {
  Tensor x = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(x, {2, 0, 0});
  EXPECT_EQ(g.dim(0), 3);
  EXPECT_EQ(g.At(0, 0), 5.0f);
  EXPECT_EQ(g.At(1, 0), 1.0f);
  EXPECT_EQ(g.At(2, 1), 2.0f);
}

TEST(GatherScatterTest, ScatterAddIsGatherTranspose) {
  // <Gather(x), y> == <x, ScatterAdd(y)> for any x, y: the adjoint property
  // that makes dispatch/combine gradients correct.
  Rng rng(11);
  Tensor x = Tensor::Randn({5, 3}, rng);
  std::vector<int64_t> map = {4, 1, 1, 0};
  Tensor y = Tensor::Randn({4, 3}, rng);
  Tensor gx = GatherRows(x, map);
  Tensor sy = ScatterAddRows(y, map, 5);
  double lhs = 0.0;
  double rhs = 0.0;
  for (int64_t i = 0; i < gx.numel(); ++i) {
    lhs += static_cast<double>(gx[i]) * y[i];
  }
  for (int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * sy[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-5);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogVocab) {
  Tensor logits = Tensor::Zeros({4, 8});
  CrossEntropyResult result = CrossEntropy(logits, {0, 1, 2, 3});
  EXPECT_NEAR(result.mean_loss, std::log(8.0), 1e-6);
}

TEST(CrossEntropyTest, GradientFiniteDifference) {
  Rng rng(12);
  Tensor logits = Tensor::Randn({3, 5}, rng);
  std::vector<int64_t> targets = {1, 4, 0};
  CrossEntropyResult result = CrossEntropy(logits, targets);
  auto loss = [&] { return CrossEntropy(logits, targets).mean_loss; };
  CheckGradient(logits, result.dlogits, loss);
}

TEST(CrossEntropyTest, PerfectPredictionNearZeroLoss) {
  Tensor logits = Tensor::Zeros({2, 4});
  logits.At(0, 2) = 50.0f;
  logits.At(1, 0) = 50.0f;
  CrossEntropyResult result = CrossEntropy(logits, {2, 0});
  EXPECT_LT(result.mean_loss, 1e-6);
}

// ---------------------------------------------------------------------------
// Pooled storage (src/base/arena.h) behind Tensor.
// ---------------------------------------------------------------------------

TEST(ArenaTensorTest, UninitFullyWrittenIsWellDefined) {
  Tensor t = Tensor::Uninit({4, 8});
  EXPECT_EQ(t.numel(), 32);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(i);
  }
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], static_cast<float>(i));
  }
}

TEST(ArenaTensorTest, ZerosIsZeroEvenOnRecycledBlocks) {
  // Dirty a block, return it to the pool, then demand zeros at the same
  // size class: the value constructor must clear recycled contents.
  { Tensor dirty = Tensor::Full({4, 8}, 9.0f); }
  Tensor clean = Tensor::Zeros({4, 8});
  for (int64_t i = 0; i < clean.numel(); ++i) {
    EXPECT_EQ(clean[i], 0.0f);
  }
}

TEST(ArenaTensorTest, PoolServesMatchingSizeClassAcrossShapes) {
  // LIFO reuse: a freed [4, 8] block backs the next same-class request, no
  // matter its shape ([8, 4], [32] — all 32 floats).
  const float* freed = nullptr;
  {
    Tensor a = Tensor::Uninit({4, 8});
    freed = a.data();
  }
  Tensor b = Tensor::Uninit({8, 4});
  EXPECT_EQ(b.data(), freed);
  const float* freed_b = b.data();
  b = Tensor();  // release
  Tensor c = Tensor::Uninit({32});
  EXPECT_EQ(c.data(), freed_b);
}

TEST(ArenaTensorTest, MoveStealsBlockCopyIsDeep) {
  Tensor a = Tensor::Full({16}, 3.0f);
  const float* block = a.data();
  Tensor moved = std::move(a);
  EXPECT_EQ(moved.data(), block);
  EXPECT_EQ(a.numel(), 0);
  EXPECT_EQ(a.data(), nullptr);

  Tensor copy = moved;
  EXPECT_NE(copy.data(), moved.data());
  copy[0] = -1.0f;
  EXPECT_EQ(moved[0], 3.0f);
}

TEST(ArenaTensorTest, CopyAssignReusesBufferOnMatchingNumel) {
  Tensor dst = Tensor::Zeros({4, 8});
  const float* block = dst.data();
  Tensor src = Tensor::Full({32}, 2.0f);
  dst = src;
  EXPECT_EQ(dst.data(), block);  // same numel: buffer kept, shape updated
  EXPECT_EQ(dst.ndim(), 1);
  EXPECT_EQ(dst[31], 2.0f);
}

TEST(ArenaStatsTest, SecondAcquireOfAClassIsAPoolHit) {
  ArenaTrim();
  ResetMemStats();
  void* p = ArenaAcquire(3 << 20);  // 3 MB -> 4 MB class, cold after the trim
  ArenaRelease(p, 3 << 20);
  void* q = ArenaAcquire(3 << 20);
  const MemStatsSnapshot stats = GetMemStats();
  EXPECT_EQ(q, p);
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.heap_allocs, 1u);
  EXPECT_EQ(stats.pool_hits, 1u);
  EXPECT_EQ(stats.releases, 1u);
  ArenaRelease(q, 3 << 20);
}

TEST(ArenaStatsTest, PoolingDisabledMakesEveryAcquireAHeapAlloc) {
  SetArenaPoolingEnabled(false);
  ResetMemStats();
  for (int i = 0; i < 3; ++i) {
    Tensor t = Tensor::Uninit({64});
    t[0] = 1.0f;
  }
  const MemStatsSnapshot stats = GetMemStats();
  SetArenaPoolingEnabled(true);
  EXPECT_EQ(stats.heap_allocs, 3u);
  EXPECT_EQ(stats.pool_hits, 0u);
}

TEST(ArenaStatsTest, MemoryScopeAttributesThisThreadsTraffic) {
  ResetMemStats();
  {
    MemoryScope scope("tensor_test_phase");
    Tensor t = Tensor::Uninit({128});
    t[0] = 1.0f;
  }
  Tensor outside = Tensor::Uninit({128});
  outside[0] = 1.0f;
  const MemStatsSnapshot stats = GetMemStats();
  bool found = false;
  for (const MemPhaseSnapshot& phase : stats.phases) {
    if (phase.name == "tensor_test_phase") {
      found = true;
      EXPECT_EQ(phase.acquires, 1u);
      EXPECT_EQ(phase.acquired_bytes, 128u * sizeof(float));
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(stats.acquires, 2u);
}

TEST(WorkspaceTest, SameTagReturnsSameBufferUntilItGrows) {
  Workspace& ws = ThreadWorkspace();
  float* first = ws.Floats("tensor_test.ws", 100);
  float* again = ws.Floats("tensor_test.ws", 80);  // fits: same buffer
  EXPECT_EQ(again, first);
  first[0] = 42.0f;
  EXPECT_EQ(ws.Floats("tensor_test.ws", 100)[0], 42.0f);  // contents persist
  float* other = ws.Floats("tensor_test.ws2", 100);
  EXPECT_NE(other, first);  // distinct tags are distinct slots
}

TEST(ArenaTensorTest, AtCheckedFailsHardOnOutOfRangeInEveryBuild) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.AtChecked(1, 2), 0.0f);
  ScopedThrowOnFatal throw_on_fatal;
  EXPECT_THROW(t.AtChecked(2, 0), FatalError);
  EXPECT_THROW(t.AtChecked(0, 3), FatalError);
  EXPECT_THROW(t.AtChecked(6), FatalError);
}

#if MSMOE_DCHECK_IS_ON
TEST(ArenaTensorTest, DcheckedAccessorsFailWhenDchecksAreOn) {
  Tensor t = Tensor::Zeros({2, 3});
  ScopedThrowOnFatal throw_on_fatal;
  EXPECT_THROW(t[-1], FatalError);
  EXPECT_THROW(t[6], FatalError);
  EXPECT_THROW(t.At(2, 0), FatalError);
}
#endif

}  // namespace
}  // namespace msmoe
