#!/usr/bin/env bash
# Repository check: tier-1 verify (full build + ctest), a ThreadSanitizer
# build of the concurrency-heavy tests, an AddressSanitizer pass over the
# fault/recovery machinery, and a Release-mode perf smoke test of the GEMM
# compute backend. The collectives run real thread ranks over shared
# buffers, so comm_test / kernel_test / parallel_test / telemetry_test /
# fault_test / elastic_test / fused_ops_test / exec_graph_test / property_test
# under TSan are the races-or-not verdict for the whole substrate
# (fused_ops_test hammers the chunked async pipelines; exec_graph_test
# hammers the runtime task-graph executor across streams and randomized
# schedules; property_test sweeps the fused EP dispatch pipeline across
# worker and chunk counts); fault_test and the recovery bench under ASan
# cover the checkpoint IO and buffer-corruption paths, and parallel_test /
# property_test under ASan cover the Workspace-staged dispatch packing;
# the perf smoke fails if the blocked GEMM kernel ever regresses
# below the naive reference, the overlap smoke fails if the fused
# all-gather+GEMM pipeline stops beating the unfused sequence, and the
# scheduler smoke fails if a searched schedule replayed on the real
# executor stops beating the naive single-stream order, the elastic
# smoke fails if a permanent rank eviction stops shrinking to a
# bit-identical W-1 curve (bench_fault_recovery --check), the memory
# smoke fails if the steady-state training step ever hits the system
# allocator again or pooled storage changes a bit of the numerics
# (bench_memory --check), and the dispatch smoke fails if the pipelined
# EP dispatch stops beating the blocking path by 1.3x under a calibrated
# wire, stops being bitwise identical, or allocates in steady state
# (bench_fig7_dispatch --check). obs_test under TSan is the verdict on the
# metrics registry's sharded recording (concurrent threads + retirement
# folds), and the observability smoke fails if profiling the fused pipeline
# costs more than 2% wall clock, if a disabled registry stops being free
# (steady-state heap allocs or measurable drag), if instrumenting a training
# run changes one bit of the loss, or if an injected slow rank goes
# undetected (bench_observability --check).
#
#   $ tools/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j

echo
echo "== TSan: tensor_test + comm_test + kernel_test + parallel_test + telemetry_test + fault_test + elastic_test + fused_ops_test + exec_graph_test + property_test + obs_test =="
cmake -B build-tsan -S . -DMSMOE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target tensor_test comm_test kernel_test parallel_test \
  telemetry_test fault_test elastic_test fused_ops_test exec_graph_test \
  property_test obs_test bench_fault_recovery >/dev/null
./build-tsan/tests/tensor_test
./build-tsan/tests/comm_test
./build-tsan/tests/kernel_test
./build-tsan/tests/parallel_test
./build-tsan/tests/telemetry_test
./build-tsan/tests/fault_test
./build-tsan/tests/elastic_test
./build-tsan/tests/fused_ops_test
./build-tsan/tests/exec_graph_test
./build-tsan/tests/property_test
./build-tsan/tests/obs_test
(cd build-tsan/bench && ./bench_fault_recovery >/dev/null)

echo
echo "== ASan: tensor_test + fault_test + elastic_test + parallel_test + property_test + obs_test + checkpoint/recovery paths =="
cmake -B build-asan -S . -DMSMOE_SANITIZE=address >/dev/null
cmake --build build-asan -j --target tensor_test fault_test elastic_test model_test \
  trainer_test fused_ops_test parallel_test property_test obs_test >/dev/null
./build-asan/tests/tensor_test
./build-asan/tests/fault_test
./build-asan/tests/elastic_test
./build-asan/tests/model_test
./build-asan/tests/trainer_test
./build-asan/tests/fused_ops_test
./build-asan/tests/parallel_test
./build-asan/tests/property_test
./build-asan/tests/obs_test

echo
echo "== perf smoke: Release blocked GEMM >= naive (bench_micro_kernels --check) =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j --target bench_micro_kernels \
  bench_fig15_intra_overlap bench_ablation_scheduler >/dev/null
(cd build-release/bench && ./bench_micro_kernels --check)

echo
echo "== overlap smoke: fused all-gather+GEMM beats unfused (bench_fig15 --check) =="
(cd build-release/bench && ./bench_fig15_intra_overlap --check)

echo
echo "== scheduler smoke: searched schedule beats naive on the real executor (bench_ablation_scheduler --check) =="
(cd build-release/bench && ./bench_ablation_scheduler --check)

echo
echo "== elastic smoke: permanent eviction shrinks W->W-1 bit-identically (bench_fault_recovery --check) =="
cmake --build build-release -j --target bench_fault_recovery >/dev/null
(cd build-release/bench && ./bench_fault_recovery --check)

echo
echo "== memory smoke: zero steady-state heap allocs + pooled bitwise identity (bench_memory --check) =="
cmake --build build-release -j --target bench_memory >/dev/null
(cd build-release/bench && ./bench_memory --check)

echo
echo "== dispatch smoke: pipelined EP dispatch beats blocking 1.3x, bitwise, zero-alloc (bench_fig7_dispatch --check) =="
cmake --build build-release -j --target bench_fig7_dispatch >/dev/null
(cd build-release/bench && ./bench_fig7_dispatch --check)

echo
echo "== observability smoke: <2% profiling overhead, disabled registry free, loss bitwise, slow rank detected (bench_observability --check) =="
cmake --build build-release -j --target bench_observability >/dev/null
(cd build-release/bench && ./bench_observability --check)

echo
echo "all checks passed"
