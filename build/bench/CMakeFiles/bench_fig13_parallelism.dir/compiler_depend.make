# Empty compiler generated dependencies file for bench_fig13_parallelism.
# This may be replaced when dependencies are built.
