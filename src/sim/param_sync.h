// Parameter/gradient synchronization time model for SP vs TP attention
// (Fig 14, Appendix A.1).
//
// Setting: model-parallel size n inside a node, d data-parallel replicas
// across nodes. Under TP each GPU stores a P/n shard and synchronizes it
// across d nodes (inter-node reduce-scatter + all-gather). Under SP each GPU
// replicates the full P, synchronized by the four-step hierarchical schedule:
// intra-node RS, inter-node RS, inter-node AG, intra-node AG — with the
// intra-node steps running on NVLink and pipelined in chunks against the
// NIC steps (Fig 5b). Because the inter-node volume is identical (2*(P/n)*
// (d-1)/d) and the intra-node work hides under it, SP's sync time lands
// within a few percent of TP's — the Fig 14 result.
#ifndef MSMOE_SRC_SIM_PARAM_SYNC_H_
#define MSMOE_SRC_SIM_PARAM_SYNC_H_

#include <cstdint>

#include "src/sim/cost_model.h"

namespace msmoe {

struct ParamSyncResult {
  double tp_us = 0.0;
  double sp_us = 0.0;
  double sp_intra_us = 0.0;  // standalone intra-node time (before pipelining)
  double sp_inter_us = 0.0;  // standalone inter-node time
};

// per_gpu_shard_bytes is the TP per-GPU attention shard (P/n); the SP
// replica is n times that. `chunks` is the pipelining granularity of the
// hierarchical schedule.
ParamSyncResult ParamSyncTime(const CostModel& cost, int64_t per_gpu_shard_bytes, int n,
                              int d, int chunks = 8);

}  // namespace msmoe

#endif  // MSMOE_SRC_SIM_PARAM_SYNC_H_
