file(REMOVE_RECURSE
  "libmsmoe_comm.a"
)
