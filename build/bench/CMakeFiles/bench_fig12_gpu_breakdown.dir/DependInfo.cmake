
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_gpu_breakdown.cc" "bench/CMakeFiles/bench_fig12_gpu_breakdown.dir/bench_fig12_gpu_breakdown.cc.o" "gcc" "bench/CMakeFiles/bench_fig12_gpu_breakdown.dir/bench_fig12_gpu_breakdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msmoe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msmoe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/msmoe_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/msmoe_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/msmoe_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/msmoe_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/msmoe_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/msmoe_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/msmoe_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
