# Empty compiler generated dependencies file for bench_ablation_ep_dispatch.
# This may be replaced when dependencies are built.
