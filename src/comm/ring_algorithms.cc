#include "src/comm/ring_algorithms.h"

#include <vector>

#include "src/base/logging.h"

namespace msmoe {

void NeighborExchange(CollectiveGroup& group, int rank, const float* send, float* recv,
                      int64_t count) {
  const int n = group.size();
  // A restricted all-to-all: `count` floats to rank+1, nothing elsewhere.
  std::vector<int64_t> send_counts(static_cast<size_t>(n), 0);
  send_counts[static_cast<size_t>((rank + 1) % n)] = count;
  std::vector<int64_t> recv_counts;
  group.AllToAllV(rank, send, send_counts, recv, &recv_counts);
  // Sanity: everything arrived from the ring predecessor.
  for (int src = 0; src < n; ++src) {
    const int64_t expected = src == (rank - 1 + n) % n ? count : 0;
    MSMOE_CHECK_EQ(recv_counts[static_cast<size_t>(src)], expected);
  }
}

void RingAllGather(CollectiveGroup& group, int rank, const float* send, float* recv,
                   int64_t count) {
  const int n = group.size();
  std::copy(send, send + count, recv + static_cast<int64_t>(rank) * count);
  std::vector<float> in_flight(send, send + count);
  std::vector<float> incoming(static_cast<size_t>(count));
  for (int step = 1; step < n; ++step) {
    NeighborExchange(group, rank, in_flight.data(), incoming.data(), count);
    // The chunk arriving at step `step` originated at rank - step.
    const int origin = (rank - step + n) % n;
    std::copy(incoming.begin(), incoming.end(),
              recv + static_cast<int64_t>(origin) * count);
    in_flight.swap(incoming);
  }
}

void RingReduceScatter(CollectiveGroup& group, int rank, const float* send, float* recv,
                       int64_t count) {
  const int n = group.size();
  if (n == 1) {
    std::copy(send, send + count, recv);
    return;
  }
  // Chunk c starts at rank (c+1) % n and accumulates contributions as it
  // travels the ring, arriving fully reduced at rank c after n-1 hops.
  const int initial_chunk = (rank - 1 + n) % n;
  std::vector<float> partial(send + static_cast<int64_t>(initial_chunk) * count,
                             send + static_cast<int64_t>(initial_chunk + 1) * count);
  std::vector<float> incoming(static_cast<size_t>(count));
  for (int step = 1; step < n; ++step) {
    NeighborExchange(group, rank, partial.data(), incoming.data(), count);
    const int chunk = (rank - step - 1 + n) % n;
    const float* own = send + static_cast<int64_t>(chunk) * count;
    for (int64_t i = 0; i < count; ++i) {
      incoming[static_cast<size_t>(i)] += own[i];
    }
    partial.swap(incoming);
  }
  std::copy(partial.begin(), partial.end(), recv);
}

void RingAllReduce(CollectiveGroup& group, int rank, float* data, int64_t count) {
  const int n = group.size();
  std::vector<float> reduced(static_cast<size_t>(count));
  RingReduceScatter(group, rank, data, reduced.data(), count);
  RingAllGather(group, rank, reduced.data(), data, count);
}

}  // namespace msmoe
