
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fused_ops_test.cc" "tests/CMakeFiles/fused_ops_test.dir/fused_ops_test.cc.o" "gcc" "tests/CMakeFiles/fused_ops_test.dir/fused_ops_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/msmoe_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/msmoe_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/msmoe_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/msmoe_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/msmoe_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/msmoe_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
