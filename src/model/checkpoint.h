// Binary checkpointing for model parameters and optimizer state.
//
// Production MoE runs last months and restart repeatedly (Fig 19); the
// checkpoint is the contract that makes restarts loss-transparent. Current
// format (version 2):
//   magic "MSMC" | u32 version=2 | u64 param_count | u64 opt_count
//   | u32 payload_crc32 | param_count floats | opt_count floats
// where payload_crc32 is the CRC-32 (src/base/crc32) of the concatenated
// parameter and optimizer float payloads, so torn or bit-flipped writes are
// detected at load time, not three weeks later as a diverged loss curve.
// Version-1 files (identical layout minus the CRC word) still load — long
// runs carry checkpoints across software upgrades.
//
// SaveCheckpoint is crash-safe: it writes to "<path>.tmp" and atomically
// renames over the destination, so a job killed mid-save leaves the
// previous checkpoint intact (never a half-written file at `path`).
//
// Errors (missing file, bad magic, truncation, CRC or size mismatch)
// surface as Status — a corrupt checkpoint must never silently load.
#ifndef MSMOE_SRC_MODEL_CHECKPOINT_H_
#define MSMOE_SRC_MODEL_CHECKPOINT_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/model/lm.h"

namespace msmoe {

struct Checkpoint {
  std::vector<float> params;
  std::vector<float> optimizer_state;
};

// Writes params (flattened in ForEach order) and the optimizer blob.
Status SaveCheckpoint(const std::string& path, const LmParams& params,
                      const std::vector<float>& optimizer_state);

// Reads and validates a checkpoint file.
Result<Checkpoint> LoadCheckpoint(const std::string& path);

// Copies a flat parameter blob back into params; fails on element-count
// mismatch (e.g. the checkpoint belongs to a different model config).
Status RestoreParams(LmParams& params, const std::vector<float>& blob);

// Flattens params in ForEach order (the SaveCheckpoint layout).
std::vector<float> FlattenParams(const LmParams& params);

// --- World-size-crossing resharding (elastic recovery) ---------------------
//
// ZeRO-1 shards a flat `total` - element state across `world` ranks with
// zero-padding to a multiple of `world` (see src/parallel/dp_grad_sync.h).
// These helpers move such state between world sizes: state saved at W ranks
// restores onto W-k survivors after an elastic shrink, and back onto W+k
// after a re-grow. All are pure functions of their inputs — resharding the
// same state to any world size and gathering it back is bitwise lossless
// (the padding is always zero and always trimmed).

// Padded per-world flat length: ceil(total / world) * world.
int64_t PaddedShardElems(int64_t total_elems, int world);

// Rank `rank`'s shard of a full `total_elems` blob under `world`-way
// sharding: elements [rank*S, (rank+1)*S) of the zero-padded blob, where
// S = PaddedShardElems / world. The tail shard is zero-padded.
std::vector<float> ShardOfFlat(const std::vector<float>& full, int64_t total_elems,
                               int world, int rank);

// Inverse of ShardOfFlat over all ranks: concatenates the shards and trims
// the padding back to `total_elems`. Shard sizes must be equal; fails on a
// layout mismatch.
Result<std::vector<float>> GatherFlatFromShards(
    const std::vector<std::vector<float>>& shards, int64_t total_elems);

// Reshards from one world size to another: gather + re-slice. shards.size()
// is the source world; returns `to_world` shards.
Result<std::vector<std::vector<float>>> ReshardFlatState(
    const std::vector<std::vector<float>>& shards, int64_t total_elems,
    int to_world);

}  // namespace msmoe

#endif  // MSMOE_SRC_MODEL_CHECKPOINT_H_
