# Empty dependencies file for bench_fig16_sar.
# This may be replaced when dependencies are built.
