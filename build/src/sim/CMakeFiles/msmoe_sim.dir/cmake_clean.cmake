file(REMOVE_RECURSE
  "CMakeFiles/msmoe_sim.dir/cost_model.cc.o"
  "CMakeFiles/msmoe_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/msmoe_sim.dir/cp_attention.cc.o"
  "CMakeFiles/msmoe_sim.dir/cp_attention.cc.o.d"
  "CMakeFiles/msmoe_sim.dir/engine.cc.o"
  "CMakeFiles/msmoe_sim.dir/engine.cc.o.d"
  "CMakeFiles/msmoe_sim.dir/graph.cc.o"
  "CMakeFiles/msmoe_sim.dir/graph.cc.o.d"
  "CMakeFiles/msmoe_sim.dir/overlap_sim.cc.o"
  "CMakeFiles/msmoe_sim.dir/overlap_sim.cc.o.d"
  "CMakeFiles/msmoe_sim.dir/param_sync.cc.o"
  "CMakeFiles/msmoe_sim.dir/param_sync.cc.o.d"
  "CMakeFiles/msmoe_sim.dir/pipeline_event_sim.cc.o"
  "CMakeFiles/msmoe_sim.dir/pipeline_event_sim.cc.o.d"
  "CMakeFiles/msmoe_sim.dir/pipeline_sim.cc.o"
  "CMakeFiles/msmoe_sim.dir/pipeline_sim.cc.o.d"
  "CMakeFiles/msmoe_sim.dir/trace_export.cc.o"
  "CMakeFiles/msmoe_sim.dir/trace_export.cc.o.d"
  "libmsmoe_sim.a"
  "libmsmoe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msmoe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
