#include "src/base/arena.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/base/logging.h"

namespace msmoe {
namespace {

constexpr int kMinClassLog2 = 6;   // 64-byte minimum class, matches alignment
constexpr int kMaxClassLog2 = 44;  // 16 TiB ceiling — a size guard, not a target
constexpr int kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;
constexpr int kMaxPhases = 32;  // last slot reserved for "other"

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

int64_t ClassBytes(int c) { return int64_t{1} << (c + kMinClassLog2); }

int ClassIndex(int64_t bytes) {
  if (bytes <= ClassBytes(0)) return 0;
  const int log2 = 64 - std::countl_zero(static_cast<uint64_t>(bytes) - 1);
  MSMOE_CHECK_LE(log2, kMaxClassLog2) << "arena acquire too large: " << bytes << " bytes";
  return log2 - kMinClassLog2;
}

struct PhaseStats {
  const char* name = nullptr;
  std::atomic<uint64_t> acquires{0};
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> heap_allocs{0};
  std::atomic<uint64_t> acquired_bytes{0};
};

struct ArenaState {
  struct Bucket {
    std::mutex mu;
    std::vector<void*> free_list;
  };
  Bucket buckets[kNumClasses];

  std::atomic<bool> pooling{true};
  std::atomic<uint64_t> acquires{0};
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> heap_allocs{0};
  std::atomic<uint64_t> releases{0};
  std::atomic<uint64_t> acquired_bytes{0};
  std::atomic<uint64_t> heap_bytes{0};
  std::atomic<int64_t> live_bytes{0};
  std::atomic<int64_t> high_water_bytes{0};

  std::mutex phase_mu;                // serializes registration only
  std::atomic<int> num_phases{0};     // readers scan [0, num_phases) lock-free
  PhaseStats phases[kMaxPhases];
};

// Intentionally leaked: pooled rank/comm threads can release buffers during
// process teardown, after static destructors would have run.
ArenaState& Global() {
  static ArenaState* arena = new ArenaState();
  return *arena;
}

thread_local PhaseStats* tls_phase = nullptr;

PhaseStats* ResolvePhase(const char* name) {
  ArenaState& a = Global();
  const int n = a.num_phases.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    if (a.phases[i].name == name || std::strcmp(a.phases[i].name, name) == 0) {
      return &a.phases[i];
    }
  }
  std::lock_guard<std::mutex> lock(a.phase_mu);
  const int now = a.num_phases.load(kRelaxed);
  for (int i = n; i < now; ++i) {  // re-check slots registered while racing
    if (std::strcmp(a.phases[i].name, name) == 0) return &a.phases[i];
  }
  if (now >= kMaxPhases - 1) {  // fold overflow into the reserved last slot
    PhaseStats* other = &a.phases[kMaxPhases - 1];
    if (other->name == nullptr) {
      other->name = "other";
      a.num_phases.store(kMaxPhases, std::memory_order_release);
    }
    return other;
  }
  a.phases[now].name = name;
  a.num_phases.store(now + 1, std::memory_order_release);
  return &a.phases[now];
}

}  // namespace

void* ArenaAcquire(int64_t bytes) {
  if (bytes <= 0) return nullptr;
  ArenaState& a = Global();
  const int c = ClassIndex(bytes);
  const int64_t class_bytes = ClassBytes(c);

  a.acquires.fetch_add(1, kRelaxed);
  a.acquired_bytes.fetch_add(static_cast<uint64_t>(bytes), kRelaxed);
  PhaseStats* phase = tls_phase;
  if (phase != nullptr) {
    phase->acquires.fetch_add(1, kRelaxed);
    phase->acquired_bytes.fetch_add(static_cast<uint64_t>(bytes), kRelaxed);
  }

  void* p = nullptr;
  if (a.pooling.load(kRelaxed)) {
    ArenaState::Bucket& bucket = a.buckets[c];
    std::lock_guard<std::mutex> lock(bucket.mu);
    if (!bucket.free_list.empty()) {
      p = bucket.free_list.back();
      bucket.free_list.pop_back();
    }
  }
  if (p != nullptr) {
    a.pool_hits.fetch_add(1, kRelaxed);
    if (phase != nullptr) phase->pool_hits.fetch_add(1, kRelaxed);
  } else {
    p = std::aligned_alloc(64, static_cast<size_t>(class_bytes));
    MSMOE_CHECK(p != nullptr) << "arena: out of memory acquiring " << class_bytes << " bytes";
    a.heap_allocs.fetch_add(1, kRelaxed);
    a.heap_bytes.fetch_add(static_cast<uint64_t>(class_bytes), kRelaxed);
    if (phase != nullptr) phase->heap_allocs.fetch_add(1, kRelaxed);
  }

  const int64_t live = a.live_bytes.fetch_add(class_bytes, kRelaxed) + class_bytes;
  int64_t hw = a.high_water_bytes.load(kRelaxed);
  while (live > hw && !a.high_water_bytes.compare_exchange_weak(hw, live, kRelaxed)) {
  }
  return p;
}

void ArenaRelease(void* p, int64_t bytes) {
  if (p == nullptr) return;
  MSMOE_CHECK_GT(bytes, 0);
  ArenaState& a = Global();
  const int c = ClassIndex(bytes);
  a.releases.fetch_add(1, kRelaxed);
  a.live_bytes.fetch_sub(ClassBytes(c), kRelaxed);
  if (a.pooling.load(kRelaxed)) {
    ArenaState::Bucket& bucket = a.buckets[c];
    std::lock_guard<std::mutex> lock(bucket.mu);
    bucket.free_list.push_back(p);
    return;
  }
  std::free(p);
}

void SetArenaPoolingEnabled(bool enabled) { Global().pooling.store(enabled, kRelaxed); }

bool ArenaPoolingEnabled() { return Global().pooling.load(kRelaxed); }

void ArenaTrim() {
  ArenaState& a = Global();
  for (int c = 0; c < kNumClasses; ++c) {
    ArenaState::Bucket& bucket = a.buckets[c];
    std::lock_guard<std::mutex> lock(bucket.mu);
    for (void* p : bucket.free_list) std::free(p);
    bucket.free_list.clear();
  }
}

MemStatsSnapshot GetMemStats() {
  ArenaState& a = Global();
  MemStatsSnapshot out;
  out.acquires = a.acquires.load(kRelaxed);
  out.pool_hits = a.pool_hits.load(kRelaxed);
  out.heap_allocs = a.heap_allocs.load(kRelaxed);
  out.releases = a.releases.load(kRelaxed);
  out.acquired_bytes = a.acquired_bytes.load(kRelaxed);
  out.heap_bytes = a.heap_bytes.load(kRelaxed);
  out.live_bytes = a.live_bytes.load(kRelaxed);
  out.high_water_bytes = a.high_water_bytes.load(kRelaxed);
  const int n = a.num_phases.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    const PhaseStats& p = a.phases[i];
    if (p.name == nullptr) continue;
    MemPhaseSnapshot snap;
    snap.name = p.name;
    snap.acquires = p.acquires.load(kRelaxed);
    snap.pool_hits = p.pool_hits.load(kRelaxed);
    snap.heap_allocs = p.heap_allocs.load(kRelaxed);
    snap.acquired_bytes = p.acquired_bytes.load(kRelaxed);
    out.phases.push_back(std::move(snap));
  }
  return out;
}

void ResetMemStats() {
  ArenaState& a = Global();
  a.acquires.store(0, kRelaxed);
  a.pool_hits.store(0, kRelaxed);
  a.heap_allocs.store(0, kRelaxed);
  a.releases.store(0, kRelaxed);
  a.acquired_bytes.store(0, kRelaxed);
  a.heap_bytes.store(0, kRelaxed);
  a.high_water_bytes.store(a.live_bytes.load(kRelaxed), kRelaxed);
  const int n = a.num_phases.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    a.phases[i].acquires.store(0, kRelaxed);
    a.phases[i].pool_hits.store(0, kRelaxed);
    a.phases[i].heap_allocs.store(0, kRelaxed);
    a.phases[i].acquired_bytes.store(0, kRelaxed);
  }
}

MemStatsSnapshot MemStatsDelta(const MemStatsSnapshot& before,
                               const MemStatsSnapshot& after) {
  MemStatsSnapshot out;
  out.acquires = after.acquires - before.acquires;
  out.pool_hits = after.pool_hits - before.pool_hits;
  out.heap_allocs = after.heap_allocs - before.heap_allocs;
  out.releases = after.releases - before.releases;
  out.acquired_bytes = after.acquired_bytes - before.acquired_bytes;
  out.heap_bytes = after.heap_bytes - before.heap_bytes;
  out.live_bytes = after.live_bytes;
  out.high_water_bytes = after.high_water_bytes;
  for (const MemPhaseSnapshot& phase : after.phases) {
    const MemPhaseSnapshot* base = nullptr;
    for (const MemPhaseSnapshot& candidate : before.phases) {
      if (candidate.name == phase.name) {
        base = &candidate;
        break;
      }
    }
    MemPhaseSnapshot delta;
    delta.name = phase.name;
    delta.acquires = phase.acquires - (base != nullptr ? base->acquires : 0);
    delta.pool_hits = phase.pool_hits - (base != nullptr ? base->pool_hits : 0);
    delta.heap_allocs =
        phase.heap_allocs - (base != nullptr ? base->heap_allocs : 0);
    delta.acquired_bytes =
        phase.acquired_bytes - (base != nullptr ? base->acquired_bytes : 0);
    out.phases.push_back(std::move(delta));
  }
  return out;
}

MemoryScope::MemoryScope(const char* phase) {
  previous_ = tls_phase;
  tls_phase = ResolvePhase(phase);
}

MemoryScope::~MemoryScope() { tls_phase = static_cast<PhaseStats*>(previous_); }

PooledBuffer::~PooledBuffer() { ArenaReleaseFloats(data_, capacity_); }

PooledBuffer::PooledBuffer(PooledBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.capacity_ = 0;
}

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    ArenaReleaseFloats(data_, capacity_);
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  return *this;
}

void PooledBuffer::Resize(int64_t count) {
  MSMOE_CHECK_GE(count, 0);
  if (count > capacity_) {
    ArenaReleaseFloats(data_, capacity_);
    data_ = ArenaAcquireFloats(count);
    capacity_ = count;
  }
  size_ = count;
}

Workspace::~Workspace() {
  for (auto& [tag, entry] : slots_) {
    ArenaRelease(entry.data, entry.capacity);
  }
}

void* Workspace::Slot(const char* tag, int64_t bytes) {
  Entry& entry = slots_[std::string(tag)];
  if (bytes > entry.capacity) {
    ArenaRelease(entry.data, entry.capacity);
    entry.data = ArenaAcquire(bytes);
    entry.capacity = bytes;
  }
  return entry.data;
}

float* Workspace::Floats(const char* tag, int64_t count) {
  return static_cast<float*>(Slot(tag, count * static_cast<int64_t>(sizeof(float))));
}

double* Workspace::Doubles(const char* tag, int64_t count) {
  return static_cast<double*>(Slot(tag, count * static_cast<int64_t>(sizeof(double))));
}

uint8_t* Workspace::Bytes(const char* tag, int64_t count) {
  return static_cast<uint8_t*>(Slot(tag, count));
}

Workspace& ThreadWorkspace() {
  thread_local Workspace workspace;
  return workspace;
}

}  // namespace msmoe
