#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/base/logging.h"
#include "src/tensor/gemm_kernel.h"

namespace msmoe {

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  const auto start = std::chrono::steady_clock::now();
  GemmBlocked(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
  const double micros =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count();
  internal::RecordGemmCall(
      2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k),
      micros);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  MSMOE_CHECK_EQ(a.ndim(), 2);
  MSMOE_CHECK_EQ(b.ndim(), 2);
  MSMOE_CHECK_EQ(a.dim(1), b.dim(0));
  Tensor c = Tensor::Uninit({a.dim(0), b.dim(1)});
  Gemm(false, false, a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  MSMOE_CHECK_EQ(a.ndim(), 2);
  MSMOE_CHECK_EQ(b.ndim(), 2);
  MSMOE_CHECK_EQ(a.dim(1), b.dim(1));
  Tensor c = Tensor::Uninit({a.dim(0), b.dim(0)});
  Gemm(false, true, a.dim(0), b.dim(0), a.dim(1), 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

Tensor MatMulTN(const Tensor& a, const Tensor& b) {
  MSMOE_CHECK_EQ(a.ndim(), 2);
  MSMOE_CHECK_EQ(b.ndim(), 2);
  MSMOE_CHECK_EQ(a.dim(0), b.dim(0));
  Tensor c = Tensor::Uninit({a.dim(1), b.dim(1)});
  Gemm(true, false, a.dim(1), b.dim(1), a.dim(0), 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

MatMulGrads MatMulBackward(const Tensor& dc, const Tensor& a, const Tensor& b) {
  MatMulGrads grads;
  grads.da = MatMulNT(dc, b);
  grads.db = MatMulTN(a, dc);
  return grads;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  MSMOE_CHECK(SameShape(a, b));
  Tensor out = Tensor::Uninit(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) {
    po[i] = pa[i] + pb[i];
  }
  return out;
}

Tensor Softmax(const Tensor& x) {
  MSMOE_CHECK_EQ(x.ndim(), 2);
  const int64_t rows = x.dim(0);
  const int64_t cols = x.dim(1);
  Tensor y = Tensor::Uninit({rows, cols});
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = x.data() + r * cols;
    float* out = y.data() + r * cols;
    float max_value = in[0];
    for (int64_t c = 1; c < cols; ++c) {
      max_value = std::max(max_value, in[c]);
    }
    double total = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - max_value);
      total += out[c];
    }
    const float inv_total = static_cast<float>(1.0 / total);
    for (int64_t c = 0; c < cols; ++c) {
      out[c] *= inv_total;
    }
  }
  return y;
}

Tensor SoftmaxBackward(const Tensor& dy, const Tensor& y) {
  MSMOE_CHECK(SameShape(dy, y));
  const int64_t rows = y.dim(0);
  const int64_t cols = y.dim(1);
  Tensor dx = Tensor::Uninit({rows, cols});
  for (int64_t r = 0; r < rows; ++r) {
    const float* dy_row = dy.data() + r * cols;
    const float* y_row = y.data() + r * cols;
    float* dx_row = dx.data() + r * cols;
    double dot = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      dot += static_cast<double>(dy_row[c]) * y_row[c];
    }
    for (int64_t c = 0; c < cols; ++c) {
      dx_row[c] = y_row[c] * (dy_row[c] - static_cast<float>(dot));
    }
  }
  return dx;
}

Tensor RmsNorm(const Tensor& x, const Tensor& gain, Tensor* inv_rms_out) {
  MSMOE_CHECK_EQ(x.ndim(), 2);
  const int64_t rows = x.dim(0);
  const int64_t cols = x.dim(1);
  MSMOE_CHECK_EQ(gain.numel(), cols);
  constexpr double kEps = 1e-6;
  Tensor y = Tensor::Uninit({rows, cols});
  Tensor inv_rms = Tensor::Uninit({rows});
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = x.data() + r * cols;
    double sum_sq = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      sum_sq += static_cast<double>(in[c]) * in[c];
    }
    const float scale = static_cast<float>(1.0 / std::sqrt(sum_sq / cols + kEps));
    inv_rms[r] = scale;
    float* out = y.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      out[c] = in[c] * scale * gain[c];
    }
  }
  if (inv_rms_out != nullptr) {
    *inv_rms_out = std::move(inv_rms);
  }
  return y;
}

RmsNormGrads RmsNormBackward(const Tensor& dy, const Tensor& x, const Tensor& gain,
                             const Tensor& inv_rms) {
  const int64_t rows = x.dim(0);
  const int64_t cols = x.dim(1);
  RmsNormGrads grads;
  grads.dx = Tensor::Uninit({rows, cols});
  grads.dgain = Tensor({cols});
  for (int64_t r = 0; r < rows; ++r) {
    const float* dy_row = dy.data() + r * cols;
    const float* x_row = x.data() + r * cols;
    float* dx_row = grads.dx.data() + r * cols;
    const float s = inv_rms[r];  // 1 / rms
    // y_c = x_c * s * g_c with s = (mean(x^2) + eps)^(-1/2).
    // dx_c = s * g_c * dy_c - s^3 * x_c * mean_j(dy_j * g_j * x_j).
    double dot = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      dot += static_cast<double>(dy_row[c]) * gain[c] * x_row[c];
      grads.dgain[c] += dy_row[c] * x_row[c] * s;
    }
    const float correction = static_cast<float>(dot / cols) * s * s * s;
    for (int64_t c = 0; c < cols; ++c) {
      dx_row[c] = s * gain[c] * dy_row[c] - correction * x_row[c];
    }
  }
  return grads;
}

namespace {

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Tensor Silu(const Tensor& x) {
  Tensor y = Tensor::Uninit(x.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    y[i] = x[i] * Sigmoid(x[i]);
  }
  return y;
}

Tensor SwiGlu(const Tensor& gate, const Tensor& linear) {
  MSMOE_CHECK(SameShape(gate, linear));
  Tensor y = Tensor::Uninit(gate.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    y[i] = gate[i] * Sigmoid(gate[i]) * linear[i];
  }
  return y;
}

SwiGluGrads SwiGluBackward(const Tensor& dy, const Tensor& gate, const Tensor& linear) {
  MSMOE_CHECK(SameShape(dy, gate));
  MSMOE_CHECK(SameShape(dy, linear));
  SwiGluGrads grads;
  grads.dgate = Tensor::Uninit(gate.shape());
  grads.dlinear = Tensor::Uninit(linear.shape());
  for (int64_t i = 0; i < dy.numel(); ++i) {
    const float sig = Sigmoid(gate[i]);
    const float silu = gate[i] * sig;
    // d(silu)/dgate = sig * (1 + gate * (1 - sig))
    const float dsilu = sig * (1.0f + gate[i] * (1.0f - sig));
    grads.dgate[i] = dy[i] * linear[i] * dsilu;
    grads.dlinear[i] = dy[i] * silu;
  }
  return grads;
}

namespace {

void RopeApply(Tensor& x, const std::vector<int64_t>& positions, int64_t heads,
               int64_t head_dim, double theta_base, bool inverse) {
  MSMOE_CHECK_EQ(head_dim % 2, 0);
  const int64_t tokens = static_cast<int64_t>(positions.size());
  MSMOE_CHECK_EQ(x.numel(), tokens * heads * head_dim);
  const int64_t half = head_dim / 2;
  for (int64_t t = 0; t < tokens; ++t) {
    const double pos = static_cast<double>(positions[static_cast<size_t>(t)]);
    for (int64_t h = 0; h < heads; ++h) {
      float* vec = x.data() + (t * heads + h) * head_dim;
      for (int64_t d = 0; d < half; ++d) {
        const double freq = std::pow(theta_base, -2.0 * static_cast<double>(d) / head_dim);
        double angle = pos * freq;
        if (inverse) {
          angle = -angle;
        }
        const float cos_a = static_cast<float>(std::cos(angle));
        const float sin_a = static_cast<float>(std::sin(angle));
        const float a = vec[d];
        const float b = vec[d + half];
        vec[d] = a * cos_a - b * sin_a;
        vec[d + half] = a * sin_a + b * cos_a;
      }
    }
  }
}

}  // namespace

void RopeInPlace(Tensor& x, const std::vector<int64_t>& positions, int64_t heads,
                 int64_t head_dim, double theta_base) {
  RopeApply(x, positions, heads, head_dim, theta_base, /*inverse=*/false);
}

void RopeBackwardInPlace(Tensor& dx, const std::vector<int64_t>& positions, int64_t heads,
                         int64_t head_dim, double theta_base) {
  RopeApply(dx, positions, heads, head_dim, theta_base, /*inverse=*/true);
}

Tensor GatherRows(const Tensor& x, const std::vector<int64_t>& row_map) {
  MSMOE_CHECK_EQ(x.ndim(), 2);
  const int64_t cols = x.dim(1);
  Tensor out = Tensor::Uninit({static_cast<int64_t>(row_map.size()), cols});
  for (size_t i = 0; i < row_map.size(); ++i) {
    const int64_t src = row_map[i];
    MSMOE_CHECK_GE(src, 0);
    MSMOE_CHECK_LT(src, x.dim(0));
    std::copy(x.data() + src * cols, x.data() + (src + 1) * cols,
              out.data() + static_cast<int64_t>(i) * cols);
  }
  return out;
}

Tensor ScatterAddRows(const Tensor& dy, const std::vector<int64_t>& row_map,
                      int64_t num_source_rows) {
  MSMOE_CHECK_EQ(dy.ndim(), 2);
  MSMOE_CHECK_EQ(dy.dim(0), static_cast<int64_t>(row_map.size()));
  const int64_t cols = dy.dim(1);
  Tensor out({num_source_rows, cols});
  for (size_t i = 0; i < row_map.size(); ++i) {
    const int64_t dst = row_map[i];
    MSMOE_CHECK_GE(dst, 0);
    MSMOE_CHECK_LT(dst, num_source_rows);
    const float* src_row = dy.data() + static_cast<int64_t>(i) * cols;
    float* dst_row = out.data() + dst * cols;
    for (int64_t c = 0; c < cols; ++c) {
      dst_row[c] += src_row[c];
    }
  }
  return out;
}

CrossEntropyResult CrossEntropy(const Tensor& logits, const std::vector<int64_t>& targets) {
  MSMOE_CHECK_EQ(logits.ndim(), 2);
  const int64_t rows = logits.dim(0);
  const int64_t vocab = logits.dim(1);
  MSMOE_CHECK_EQ(rows, static_cast<int64_t>(targets.size()));
  CrossEntropyResult result;
  result.dlogits = Softmax(logits);
  double total_loss = 0.0;
  const float inv_rows = 1.0f / static_cast<float>(rows);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t target = targets[static_cast<size_t>(r)];
    MSMOE_CHECK_GE(target, 0);
    MSMOE_CHECK_LT(target, vocab);
    const float p = result.dlogits.At(r, target);
    total_loss += -std::log(std::max(p, 1e-30f));
    result.dlogits.At(r, target) -= 1.0f;
  }
  result.dlogits.ScaleInPlace(inv_rows);
  result.mean_loss = total_loss / static_cast<double>(rows);
  return result;
}

}  // namespace msmoe
