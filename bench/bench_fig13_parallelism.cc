// Figure 13: training MFU of the four intra-node parallelism combinations
// (TP+TP, TP+EP, SP+TP, SP+EP) across the six evaluation models on one
// 8-GPU H800 node, with all other optimizations disabled. Also reports the
// §6.2 memory accounting: SP's replicated-attention overhead vs TP.
#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/base/units.h"
#include "src/core/layer_program.h"
#include "src/core/parallelism_planner.h"
#include "src/model/config.h"

namespace msmoe {
namespace {

// Per-layer MFU proxy: model GEMM+flash FLOPs / (time * peak).
double LayerMfu(const CostModel& cost, const ModelConfig& model, const LayerTimes& times,
                int64_t micro_batch, int n) {
  const double flops_fwd_bwd = 3.0 *
                               static_cast<double>(model.LayerFlopsPerToken()) *
                               static_cast<double>(micro_batch) * model.seq_len;
  return flops_fwd_bwd /
         (times.total_us() * n * cost.cluster().gpu.peak_tflops * 1e6);
}

void Run() {
  PrintHeader("Figure 13 — parallelism-strategy ablation (one 8-GPU H800 node)",
              "X+Y = attention strategy + expert strategy; other optimizations "
              "disabled; global batch 32");
  PrintPaperNote("SP+EP achieves 14.9%-32.9% higher MFU than TP+TP");

  const CostModel cost(MakeCluster("H800", 8).value());
  const int64_t micro_batch = 4;  // 32 sequences over 8 ranks of DP... one micro-batch

  TablePrinter table({"Model", "TP+TP MFU (%)", "TP+EP MFU (%)", "SP+TP MFU (%)",
                      "SP+EP MFU (%)", "SP+EP vs TP+TP"});
  struct Combo {
    AttnStrategy attn;
    FfnStrategy ffn;
  };
  const Combo combos[] = {
      {AttnStrategy::kTensorParallel, FfnStrategy::kTensorParallel},
      {AttnStrategy::kTensorParallel, FfnStrategy::kExpertParallel},
      {AttnStrategy::kSequenceParallel, FfnStrategy::kTensorParallel},
      {AttnStrategy::kSequenceParallel, FfnStrategy::kExpertParallel},
  };
  for (const ModelConfig& model : EvaluationModels()) {
    std::vector<std::string> row = {model.name};
    double tp_tp_mfu = 0.0;
    double sp_ep_mfu = 0.0;
    for (const Combo& combo : combos) {
      ExecutionOptions options;
      options.attn = combo.attn;
      options.ffn = combo.ffn;
      options.ep_dispatch = ChooseEpDispatch(model.top_k, 8);
      options.inter_op_overlap = false;
      options.intra_op_overlap = false;
      options.sar = false;
      const LayerTimes times = SimulateLayer(cost, model, options, micro_batch,
                                             model.seq_len, 8);
      const double mfu = LayerMfu(cost, model, times, micro_batch, 8);
      if (combo.attn == AttnStrategy::kTensorParallel &&
          combo.ffn == FfnStrategy::kTensorParallel) {
        tp_tp_mfu = mfu;
      }
      if (combo.attn == AttnStrategy::kSequenceParallel &&
          combo.ffn == FfnStrategy::kExpertParallel) {
        sp_ep_mfu = mfu;
      }
      row.push_back(TablePrinter::Fmt(mfu * 100.0, 1));
    }
    row.push_back("+" + TablePrinter::Fmt((sp_ep_mfu / tp_tp_mfu - 1.0) * 100.0, 1) + "%");
    table.AddRow(std::move(row));
  }
  table.Print("Per-layer MFU by strategy combination:");

  // §6.2 memory accounting.
  TablePrinter memory({"Model", "SP state overhead (%)", "SP total overhead (%)"});
  for (const ModelConfig& model : EvaluationModels()) {
    MemoryOptions options;
    options.batch_tokens = 8192;
    const MemoryFootprint sp = EstimateMemory(model, AttnStrategy::kSequenceParallel,
                                              FfnStrategy::kExpertParallel, options);
    const MemoryFootprint tp = EstimateMemory(model, AttnStrategy::kTensorParallel,
                                              FfnStrategy::kExpertParallel, options);
    memory.AddRow({model.name,
                   TablePrinter::Fmt((sp.StateBytes() / tp.StateBytes() - 1.0) * 100.0, 1),
                   TablePrinter::Fmt((sp.TotalBytes() / tp.TotalBytes() - 1.0) * 100.0, 1)});
  }
  memory.Print("§6.2 — SP attention memory overhead vs TP (paper: 1.7%-8.1% "
               "state, 1.2%-5.4% total):");
}

}  // namespace
}  // namespace msmoe

int main() {
  msmoe::Run();
  return 0;
}
