#include "src/model/optimizer.h"

#include <cmath>

#include "src/base/logging.h"

namespace msmoe {

void AdamOptimizer::Register(Tensor* param) {
  MSMOE_CHECK(param != nullptr);
  MSMOE_CHECK_EQ(step_, 0) << "cannot register params after stepping";
  params_.push_back(param);
  m_.emplace_back(param->shape());
  v_.emplace_back(param->shape());
}

void AdamOptimizer::Step(const std::vector<const Tensor*>& grads) {
  MSMOE_CHECK_EQ(grads.size(), params_.size());
  ++step_;

  double clip_scale = 1.0;
  if (config_.grad_clip_norm > 0.0) {
    double norm_sq = 0.0;
    for (const Tensor* grad : grads) {
      for (int64_t i = 0; i < grad->numel(); ++i) {
        norm_sq += static_cast<double>((*grad)[i]) * (*grad)[i];
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.grad_clip_norm) {
      clip_scale = config_.grad_clip_norm / norm;
    }
  }

  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
  for (size_t p = 0; p < params_.size(); ++p) {
    Tensor& param = *params_[p];
    const Tensor& grad = *grads[p];
    MSMOE_CHECK(SameShape(param, grad));
    Tensor& m = m_[p];
    Tensor& v = v_[p];
    for (int64_t i = 0; i < param.numel(); ++i) {
      const double g = static_cast<double>(grad[i]) * clip_scale;
      m[i] = static_cast<float>(config_.beta1 * m[i] + (1.0 - config_.beta1) * g);
      v[i] = static_cast<float>(config_.beta2 * v[i] + (1.0 - config_.beta2) * g * g);
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      double update = m_hat / (std::sqrt(v_hat) + config_.eps);
      if (config_.weight_decay > 0.0) {
        update += config_.weight_decay * param[i];
      }
      param[i] = static_cast<float>(param[i] - config_.lr * update);
    }
  }
}

std::vector<float> AdamOptimizer::SaveState() const {
  std::vector<float> blob;
  blob.push_back(static_cast<float>(step_));
  for (size_t p = 0; p < params_.size(); ++p) {
    for (int64_t i = 0; i < m_[p].numel(); ++i) {
      blob.push_back(m_[p][i]);
    }
    for (int64_t i = 0; i < v_[p].numel(); ++i) {
      blob.push_back(v_[p][i]);
    }
  }
  return blob;
}

void AdamOptimizer::LoadState(const std::vector<float>& blob) {
  MSMOE_CHECK(!blob.empty());
  step_ = static_cast<int64_t>(blob[0]);
  size_t cursor = 1;
  for (size_t p = 0; p < params_.size(); ++p) {
    for (int64_t i = 0; i < m_[p].numel(); ++i) {
      m_[p][i] = blob[cursor++];
    }
    for (int64_t i = 0; i < v_[p].numel(); ++i) {
      v_[p][i] = blob[cursor++];
    }
  }
  MSMOE_CHECK_EQ(cursor, blob.size());
}

}  // namespace msmoe
