#include "src/comm/collective_group.h"

namespace msmoe {

CollectiveGroup::CollectiveGroup(int size)
    : size_(size),
      barrier_(size),
      send_slots_(static_cast<size_t>(size), nullptr),
      counts_(static_cast<size_t>(size) * static_cast<size_t>(size), 0),
      scalars_(static_cast<size_t>(size), 0.0) {
  MSMOE_CHECK_GT(size, 0);
}

void CollectiveGroup::Barrier() { barrier_.arrive_and_wait(); }

void CollectiveGroup::PublishCounts(int member, const std::vector<int64_t>& counts) {
  for (int dst = 0; dst < size_; ++dst) {
    counts_[static_cast<size_t>(member * size_ + dst)] = counts[static_cast<size_t>(dst)];
  }
}

std::vector<double> CollectiveGroup::ExchangeScalars(int member, double value) {
  scalars_[static_cast<size_t>(member)] = value;
  Barrier();
  std::vector<double> out = scalars_;
  AccountOnce(member, RingVolume(sizeof(double)));
  Barrier();
  return out;
}

void RunOnRanks(int world_size, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world_size));
  for (int rank = 0; rank < world_size; ++rank) {
    threads.emplace_back([&fn, rank] { fn(rank); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
}

}  // namespace msmoe
