#include "src/sim/fault_sim.h"

#include <algorithm>
#include <functional>

#include "src/base/logging.h"
#include "src/sim/engine.h"

namespace msmoe {

const char* SimFaultTypeName(SimFaultType type) {
  switch (type) {
    case SimFaultType::kDegradeLink:
      return "degrade_link";
    case SimFaultType::kFailRank:
      return "fail_rank";
  }
  return "unknown";
}

FaultSimResult SimulateFaultyRun(const FaultSimConfig& config) {
  MSMOE_CHECK_GE(config.ranks, 1);
  MSMOE_CHECK_GE(config.iterations, 1);
  MSMOE_CHECK_GE(config.compute_us, 0.0);
  MSMOE_CHECK_GE(config.comm_us, 0.0);

  FaultSimResult result;
  const double base_iteration = config.compute_us + config.comm_us;
  result.fault_free_us = static_cast<double>(config.iterations) * base_iteration;

  std::vector<SimFaultEvent> events = config.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const SimFaultEvent& a, const SimFaultEvent& b) {
                     return a.at_us < b.at_us;
                   });
  for (const SimFaultEvent& event : events) {
    MSMOE_CHECK_GE(event.rank, 0);
    MSMOE_CHECK_LT(event.rank, config.ranks);
    if (event.type == SimFaultType::kDegradeLink) {
      MSMOE_CHECK_GT(event.bandwidth_factor, 0.0);
      MSMOE_CHECK_LE(event.bandwidth_factor, 1.0);
    }
  }

  // Synchronous job: the iteration runs at the slowest member's pace. In
  // elastic mode dead ranks have left the membership: they neither pace the
  // job nor participate, and ring-collective time scales with the live
  // membership's (n-1)/n factor relative to the initial world.
  std::vector<double> bandwidth(static_cast<size_t>(config.ranks), 1.0);
  std::vector<char> alive(static_cast<size_t>(config.ranks), 1);
  int alive_count = config.ranks;
  auto iteration_time = [&] {
    double slowest = 1.0;
    for (int rank = 0; rank < config.ranks; ++rank) {
      if (alive[static_cast<size_t>(rank)]) {
        slowest = std::min(slowest, bandwidth[static_cast<size_t>(rank)]);
      }
    }
    double ring_ratio = 1.0;
    if (config.ranks > 1 && alive_count != config.ranks) {
      ring_ratio = (static_cast<double>(alive_count - 1) / alive_count) /
                   (static_cast<double>(config.ranks - 1) / config.ranks);
    }
    return config.compute_us + config.comm_us * ring_ratio / slowest;
  };

  SimEngine engine;
  size_t next_degrade = 0;  // cursor over degrade events (boundary-applied)
  std::vector<const SimFaultEvent*> failures;
  for (const SimFaultEvent& event : events) {
    if (event.type == SimFaultType::kFailRank) {
      failures.push_back(&event);
    }
  }
  size_t next_failure = 0;

  int64_t iteration = 0;        // next iteration to run
  int64_t last_checkpoint = 0;  // most recent persisted iteration

  std::function<void()> step;
  step = [&] {
    if (iteration >= config.iterations) {
      return;  // queue drains; engine.Run() returns the final clock
    }
    const double start = engine.now();
    // Link degradations apply from the iteration boundary following the
    // event (a collective in flight finishes at the old estimate).
    while (next_degrade < events.size()) {
      const SimFaultEvent& event = events[next_degrade];
      if (event.at_us > start) {
        break;
      }
      if (event.type == SimFaultType::kDegradeLink) {
        bandwidth[static_cast<size_t>(event.rank)] = event.bandwidth_factor;
      }
      ++next_degrade;
    }
    if (config.checkpoint_every > 0 && iteration % config.checkpoint_every == 0) {
      last_checkpoint = iteration;
    }
    const double duration = iteration_time();

    // A rank death inside this iteration aborts it: peers block until the
    // collective deadline expires, the replacement spins up and reloads the
    // checkpoint, and everything since the checkpoint is replayed.
    if (next_failure < failures.size() &&
        failures[next_failure]->at_us < start + duration) {
      const SimFaultEvent& failure = *failures[next_failure];
      const double fail_time = std::max(failure.at_us, start);
      ++next_failure;
      ++result.failures;
      double resume;
      if (config.elastic && alive_count > 1 &&
          alive[static_cast<size_t>(failure.rank)]) {
        // Shrink to survivors: no respawn — after detection the remaining
        // ranks rebuild the communicator and reshard optimizer state, then
        // replay from the checkpoint on the smaller world.
        alive[static_cast<size_t>(failure.rank)] = 0;
        --alive_count;
        resume = fail_time + config.detect_timeout_us + config.reshard_us;
      } else {
        resume = fail_time + config.detect_timeout_us + config.restart_us;
      }
      result.stall_us += resume - start;
      result.iterations_replayed += iteration - last_checkpoint;
      iteration = last_checkpoint;
      engine.Schedule(resume, step);
      return;
    }

    engine.ScheduleAfter(duration, [&] {
      ++iteration;
      step();
    });
  };
  engine.Schedule(0.0, step);
  result.total_us = engine.Run();
  result.slowdown =
      result.fault_free_us > 0.0 ? result.total_us / result.fault_free_us : 1.0;
  result.iteration_us = iteration_time();
  result.final_ranks = alive_count;
  result.throughput_factor =
      result.iteration_us > 0.0
          ? (static_cast<double>(alive_count) / config.ranks) *
                (base_iteration / result.iteration_us)
          : 1.0;
  return result;
}

}  // namespace msmoe
