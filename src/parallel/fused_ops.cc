#include "src/parallel/fused_ops.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/base/logging.h"
#include "src/base/math_util.h"
#include "src/base/parallel_for.h"
#include "src/comm/telemetry.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {

namespace {

// Chunk count for the EP dispatch pipeline, which has no caller-facing tile
// knob: enough chunks that expert GEMMs start before the gather finishes,
// few enough that per-chunk overhead stays negligible at test sizes.
constexpr int kDispatchChunks = 4;

}  // namespace

Tensor FusedAllGatherGemm(const ShardContext& ctx, const Tensor& x_local, const Tensor& w,
                          int64_t row_tile) {
  MSMOE_CHECK_EQ(x_local.ndim(), 2);
  MSMOE_CHECK_EQ(w.ndim(), 2);
  MSMOE_CHECK_EQ(x_local.dim(1), w.dim(0));
  MSMOE_CHECK_GT(row_tile, 0);
  const int n = ctx.size();
  const int64_t rows_local = x_local.dim(0);
  const int64_t k = x_local.dim(1);
  const int64_t cols = w.dim(1);

  // Double-buffered pipeline: the comm thread streams the all-gather chunk
  // by chunk while this thread runs the GEMM of every chunk that already
  // landed — the transfer of chunk c+1 overlaps the compute of chunk c.
  // Chunk c is rows [begin, end) of EVERY source's block, so its GEMM
  // covers n row tiles.
  std::vector<float> gathered(static_cast<size_t>(n) * rows_local * k);
  const int num_chunks = static_cast<int>(CeilDiv(rows_local, row_tile));
  auto handle = ctx.comm->StartAllGather(ctx.rank, x_local.data(), gathered.data(),
                                         rows_local * k, num_chunks, /*quantum=*/k);

  Tensor y({static_cast<int64_t>(n) * rows_local, cols});
  for (int c = 0; c < handle->num_chunks(); ++c) {
    if (!handle->WaitChunk(c).ok()) {
      break;  // the caller observes the failure via GroupStatus()
    }
    const int64_t row0 = handle->layout().begin(c) / k;
    const int64_t tile_rows = handle->layout().size(c) / k;
    ScopedCompSpan span(&ctx.comm->telemetry(), "fused_ag_gemm", ctx.rank);
    // Per-row GEMMs are independent, so processing sources in ring order
    // inside an arrival chunk keeps the output bitwise equal to the unfused
    // collective-then-GEMM sequence.
    for (int step = 0; step < n; ++step) {
      const int src = (ctx.rank + step) % n;
      const int64_t row = static_cast<int64_t>(src) * rows_local + row0;
      Gemm(false, false, tile_rows, cols, k, 1.0f, gathered.data() + row * k, w.data(),
           0.0f, y.data() + row * cols);
    }
  }
  return y;
}

Tensor FusedGemmReduceScatter(const ShardContext& ctx, const Tensor& x_local,
                              const Tensor& w_shard, int64_t row_tile) {
  MSMOE_CHECK_EQ(x_local.ndim(), 2);
  MSMOE_CHECK_EQ(x_local.dim(1), w_shard.dim(0));
  MSMOE_CHECK_GT(row_tile, 0);
  const int n = ctx.size();
  const int64_t rows = x_local.dim(0);
  MSMOE_CHECK_EQ(rows % n, 0);
  const int64_t k_shard = x_local.dim(1);
  const int64_t cols = w_shard.dim(1);
  const int64_t rows_out = rows / n;
  const int64_t count = rows_out * cols;

  // Producer-gated pipeline: each output-row tile's partial GEMM lands in
  // the destination-major send buffer, its chunk is signalled, and the comm
  // thread reduce-scatters it while this thread computes the next tile.
  std::vector<float> send(static_cast<size_t>(rows) * cols);
  Tensor y_local({rows_out, cols});
  const int num_chunks = static_cast<int>(CeilDiv(rows_out, row_tile));
  auto handle = ctx.comm->StartReduceScatter(ctx.rank, send.data(), y_local.data(),
                                             count, num_chunks, /*quantum=*/cols);
  for (int c = 0; c < handle->num_chunks(); ++c) {
    const int64_t begin = handle->layout().begin(c);
    const int64_t row0 = begin / cols;
    const int64_t tile_rows = handle->layout().size(c) / cols;
    {
      ScopedCompSpan span(&ctx.comm->telemetry(), "fused_gemm_rs", ctx.rank);
      // This tile's partial for EVERY destination chunk: the rows whose
      // reduce-scatter lands in this tile position.
      for (int dst = 0; dst < n; ++dst) {
        const int64_t src_row = static_cast<int64_t>(dst) * rows_out + row0;
        Gemm(false, false, tile_rows, cols, k_shard,
             1.0f, x_local.data() + src_row * k_shard, w_shard.data(), 0.0f,
             send.data() + static_cast<int64_t>(dst) * count + begin);
      }
    }
    handle->SignalChunkReady(c);
  }
  // Block until every chunk of y_local landed (and retire the comm-thread op
  // before `send` goes out of scope); on failure the caller observes the
  // error via GroupStatus().
  (void)handle->WaitAll();
  handle.reset();
  return y_local;
}

Tensor FusedAllGatherScatterGroupedGemm(const ShardContext& ctx, const Tensor& x_local,
                                        const std::vector<int64_t>& token_expert,
                                        const std::vector<Tensor>& expert_weights,
                                        int64_t experts_per_rank,
                                        std::vector<int64_t>* row_token) {
  const int n = ctx.size();
  const int64_t t_local = x_local.dim(0);
  const int64_t h = x_local.dim(1);
  MSMOE_CHECK_EQ(static_cast<int64_t>(token_expert.size()), t_local);
  const int64_t cols = expert_weights[0].dim(1);

  // Start the (big) token payload streaming on the comm thread first; the
  // (small) routing gather and the bucket build below overlap with it.
  std::vector<float> x_all(static_cast<size_t>(n) * t_local * h);
  auto handle = ctx.comm->StartAllGather(ctx.rank, x_local.data(), x_all.data(),
                                         t_local * h, kDispatchChunks, /*quantum=*/h);
  std::vector<int64_t> expert_all(static_cast<size_t>(n) * t_local);
  ctx.comm->AllGather(ctx.rank, token_expert.data(), expert_all.data(), t_local);

  // Local scatter fused with arrival: iterating sources in ring order yields
  // rows sorted by (expert, source-arrival) — the §4.2 order that minimizes
  // per-tile dependency count.
  const int64_t e_first = static_cast<int64_t>(ctx.rank) * experts_per_rank;
  std::vector<std::vector<int64_t>> bucket(static_cast<size_t>(experts_per_rank));
  for (int step = 0; step < n; ++step) {
    const int src = (ctx.rank + step) % n;
    for (int64_t t = 0; t < t_local; ++t) {
      const int64_t global_token = static_cast<int64_t>(src) * t_local + t;
      const int64_t e = expert_all[static_cast<size_t>(global_token)] - e_first;
      if (e >= 0 && e < experts_per_rank) {
        bucket[static_cast<size_t>(e)].push_back(global_token);
      }
    }
  }

  row_token->clear();
  for (const auto& rows : bucket) {
    row_token->insert(row_token->end(), rows.begin(), rows.end());
  }
  const int64_t total_rows = static_cast<int64_t>(row_token->size());
  Tensor y({total_rows, cols});

  std::vector<int64_t> out_begin(static_cast<size_t>(experts_per_rank) + 1, 0);
  for (int64_t e = 0; e < experts_per_rank; ++e) {
    out_begin[static_cast<size_t>(e) + 1] =
        out_begin[static_cast<size_t>(e)] +
        static_cast<int64_t>(bucket[static_cast<size_t>(e)].size());
  }

  // An all-gather chunk delivers token rows [begin/h, end/h) of every
  // source, so an expert's GEMM is unblocked once the chunk holding its
  // highest local-token row arrived.
  const int chunks = handle->num_chunks();
  std::vector<int> token_chunk(static_cast<size_t>(t_local), 0);
  for (int c = 0; c < chunks; ++c) {
    for (int64_t t = handle->layout().begin(c) / h; t < handle->layout().end(c) / h;
         ++t) {
      token_chunk[static_cast<size_t>(t)] = c;
    }
  }
  std::vector<int> last_chunk(static_cast<size_t>(experts_per_rank), -1);
  for (int64_t e = 0; e < experts_per_rank; ++e) {
    for (const int64_t g : bucket[static_cast<size_t>(e)]) {
      last_chunk[static_cast<size_t>(e)] =
          std::max(last_chunk[static_cast<size_t>(e)],
                   token_chunk[static_cast<size_t>(g % t_local)]);
    }
  }

  // GroupedGEMM pipeline: as each chunk lands, fire the GEMM of every
  // expert whose rows just completed — across the intra-rank worker pool,
  // with disjoint output rows.
  for (int c = 0; c < chunks; ++c) {
    if (!handle->WaitChunk(c).ok()) {
      break;  // the caller observes the failure via GroupStatus()
    }
    std::vector<int64_t> ready;
    for (int64_t e = 0; e < experts_per_rank; ++e) {
      if (last_chunk[static_cast<size_t>(e)] == c) {
        ready.push_back(e);
      }
    }
    if (ready.empty()) {
      continue;
    }
    ScopedCompSpan span(&ctx.comm->telemetry(), "fused_grouped_gemm", ctx.rank);
    ParallelFor(static_cast<int64_t>(ready.size()), /*grain=*/1,
                [&](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) {
                    const int64_t e = ready[static_cast<size_t>(i)];
                    const auto& rows = bucket[static_cast<size_t>(e)];
                    Tensor ffn_in({static_cast<int64_t>(rows.size()), h});
                    for (size_t r = 0; r < rows.size(); ++r) {
                      std::copy(x_all.data() + rows[r] * h,
                                x_all.data() + (rows[r] + 1) * h,
                                ffn_in.data() + static_cast<int64_t>(r) * h);
                    }
                    const Tensor& w = expert_weights[static_cast<size_t>(e_first + e)];
                    Gemm(false, false, static_cast<int64_t>(rows.size()), cols, h, 1.0f,
                         ffn_in.data(), w.data(), 0.0f,
                         y.data() + out_begin[static_cast<size_t>(e)] * cols);
                  }
                });
  }
  return y;
}

}  // namespace msmoe
