// Observability overhead and efficacy (the src/obs subsystem end to end):
//
//   1. Recording overhead — the Fig 15 fused all-gather + GEMM pipeline
//      (4 thread-ranks, the bench_memory shapes) timed with the metrics
//      registry enabled vs disabled. Every collective, parallel region,
//      and arena acquire records into the registry on this path, so the
//      delta is the registry's real hot-path cost.
//   2. Loss identity — a dp=2 training run with a StepProfiler attached
//      (writing metrics.jsonl, the merged Chrome trace, and the Prometheus
//      snapshot) vs the identical run uninstrumented. Profiling must never
//      change a bit of the numerics.
//   3. Anomaly efficacy — the same run with a FaultPlan slow rank (30ms
//      per collective from roughly step 6): the online detector must flag
//      the regression within five steps of the fault and name the injected
//      rank, and the anomaly lane must land in the merged trace.
//   4. Disabled-registry guarantee — with the registry disabled, the
//      steady-state (warmed-pool) training step must stay at zero heap
//      allocations: a disabled record path is a relaxed load + branch.
//
// Writes BENCH_obs.json. With --check, gates (the observability smoke
// stage of tools/check.sh):
//   (a) metrics-enabled fused-pipeline median within 2% of disabled (plus
//       a 0.15ms absolute jitter floor so sub-10ms medians don't flake),
//   (b) instrumented loss curve bitwise equal to uninstrumented, with all
//       three artifacts written,
//   (c) slow rank flagged within five steps, attributed to the right rank,
//       and present in the trace's anomaly lane,
//   (d) zero steady-state heap allocs with the registry disabled.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/arena.h"
#include "src/base/parallel_for.h"
#include "src/base/rng.h"
#include "src/comm/communicator.h"
#include "src/comm/fault.h"
#include "src/core/trainer.h"
#include "src/obs/metrics.h"
#include "src/obs/step_profiler.h"
#include "src/parallel/fused_ops.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

// --- 1. Registry overhead on the fused fig15 pipeline -----------------------

struct OverheadTiming {
  double enabled_ms = 0.0;
  double disabled_ms = 0.0;
  TimingStats enabled_stats;
  TimingStats disabled_stats;
  double overhead_pct = 0.0;  // (enabled - disabled) / disabled * 100
};

OverheadTiming TimeRegistryOverhead() {
  constexpr int kRanks = 4;
  constexpr int64_t kRowsLocal = 384;
  constexpr int64_t kK = 384;
  constexpr int64_t kCols = 512;
  constexpr int64_t kTile = 96;
  Rng rng(7);
  std::vector<Tensor> x_locals;
  for (int rank = 0; rank < kRanks; ++rank) {
    x_locals.push_back(Tensor::Randn({kRowsLocal, kK}, rng));
  }
  const Tensor w = Tensor::Randn({kK, kCols}, rng);
  FlatCommunicator comm(kRanks);
  std::vector<Tensor> y(kRanks);

  auto run_fused = [&] {
    RunOnRanks(kRanks, [&](int rank) {
      ShardContext ctx{&comm, rank};
      y[static_cast<size_t>(rank)] =
          FusedAllGatherGemm(ctx, x_locals[static_cast<size_t>(rank)], w, kTile);
    });
  };

  MetricsRegistry& registry = MetricsRegistry::Global();
  OverheadTiming timing;
  registry.set_enabled(false);
  timing.disabled_stats = TimedStatsOfN(3, 15, run_fused);
  timing.disabled_ms = timing.disabled_stats.median_s * 1e3;
  registry.set_enabled(true);
  timing.enabled_stats = TimedStatsOfN(3, 15, run_fused);
  timing.enabled_ms = timing.enabled_stats.median_s * 1e3;
  timing.overhead_pct =
      timing.disabled_ms > 0.0
          ? 100.0 * (timing.enabled_ms - timing.disabled_ms) / timing.disabled_ms
          : 0.0;
  return timing;
}

// --- 2/3. Trainer instrumentation -------------------------------------------

NumericTrainConfig ObsConfig() {
  NumericTrainConfig config;
  config.model = TinyMoeConfig(4, 2);
  config.model.num_layers = 1;
  config.model.vocab = 32;
  config.model.seq_len = 8;
  config.router.num_experts = 4;
  config.router.top_k = 2;
  config.dp_size = 2;
  config.batch_per_rank = 2;
  config.steps = 8;
  return config;
}

// Detector thresholds for wall-clock-driven runs on a loaded CI host: only
// a >=2x, >=10ms, z>=6 excursion is a verdict — unreachable for scheduler
// jitter on single-digit-ms steps, trivial for a 30ms-per-collective stall.
AnomalyConfig RobustAnomalyConfig() {
  AnomalyConfig anomaly;
  anomaly.z_threshold = 6.0;
  anomaly.min_ratio = 2.0;
  anomaly.min_delta_ms = 10.0;
  return anomaly;
}

struct InstrumentedResult {
  std::vector<double> bare_loss;
  std::vector<double> profiled_loss;
  bool bitwise = false;
  bool jsonl_written = false;
  bool trace_written = false;
  bool prom_written = false;
  size_t jsonl_lines = 0;
  int64_t collectives_per_step = 0;  // pilot for the fault aim below
};

bool FileNonEmpty(const char* path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.good() && in.tellg() > 0;
}

InstrumentedResult RunInstrumented() {
  InstrumentedResult result;
  const NumericTrainConfig bare = ObsConfig();
  result.bare_loss = TrainLm(bare).loss;

  const char* jsonl_path = "BENCH_obs_metrics.jsonl";
  const char* trace_path = "BENCH_obs_trace.json";
  const char* prom_path = "BENCH_obs_metrics.prom";
  std::remove(jsonl_path);
  std::remove(trace_path);
  std::remove(prom_path);

  StepProfilerConfig profiler_config;
  profiler_config.jsonl_path = jsonl_path;
  profiler_config.trace_path = trace_path;
  profiler_config.prom_path = prom_path;
  profiler_config.anomaly = RobustAnomalyConfig();
  profiler_config.world = bare.dp_size;
  StepProfiler profiler(profiler_config);
  NumericTrainConfig instrumented = ObsConfig();
  instrumented.profiler = &profiler;
  result.profiled_loss = TrainLm(instrumented).loss;

  result.bitwise =
      result.bare_loss.size() == result.profiled_loss.size() &&
      std::memcmp(result.bare_loss.data(), result.profiled_loss.data(),
                  result.bare_loss.size() * sizeof(double)) == 0;
  result.jsonl_written = FileNonEmpty(jsonl_path);
  result.trace_written = FileNonEmpty(trace_path);
  result.prom_written = FileNonEmpty(prom_path);
  std::ifstream jsonl(jsonl_path);
  std::string line;
  while (std::getline(jsonl, line)) {
    StepReport report;
    if (ParseStepReportJson(line, &report)) {
      ++result.jsonl_lines;
      if (report.rank == 1 && report.step == 0) {
        result.collectives_per_step = report.collectives;
      }
    }
  }
  return result;
}

struct AnomalyResult {
  bool detected = false;
  int64_t fault_step = 0;        // step the injected stall starts at (aimed)
  int64_t first_anomaly_step = -1;
  int64_t detection_latency = -1;  // first_anomaly_step - fault_step
  int straggler_suspect = -1;
  size_t anomaly_events = 0;
  bool trace_has_anomaly_lane = false;
};

AnomalyResult RunSlowRankDetection(int64_t collectives_per_step) {
  AnomalyResult result;
  constexpr int64_t kFaultStep = 6;
  result.fault_step = kFaultStep;

  const char* trace_path = "BENCH_obs_anomaly_trace.json";
  std::remove(trace_path);

  // Rank 1 stalls 30ms before every collective from roughly step 6 onward
  // (the op-index aim is approximate by the pre-step setup collectives — the
  // fault can land a step or two early, never late). No timeout is armed, so
  // nothing fails: the run is just slow, and only the detector notices.
  FaultPlan plan;
  plan.AddSlowRank(/*rank=*/1, /*delay_us=*/30000.0,
                   /*from_op=*/kFaultStep * collectives_per_step, /*num_ops=*/-1);

  StepProfilerConfig profiler_config;
  profiler_config.trace_path = trace_path;
  profiler_config.anomaly = RobustAnomalyConfig();
  profiler_config.world = 2;
  StepProfiler profiler(profiler_config);
  NumericTrainConfig config = ObsConfig();
  config.steps = 14;
  config.fault_plan = &plan;
  config.profiler = &profiler;
  TrainLm(config);

  const std::vector<AnomalyEvent> anomalies = profiler.anomalies();
  result.anomaly_events = anomalies.size();
  result.detected = !anomalies.empty();
  for (const AnomalyEvent& event : anomalies) {
    if (result.first_anomaly_step < 0 || event.step < result.first_anomaly_step) {
      result.first_anomaly_step = event.step;
    }
  }
  if (result.detected) {
    result.detection_latency = result.first_anomaly_step - kFaultStep;
  }
  result.straggler_suspect = profiler.StragglerSuspect();

  std::ifstream trace(trace_path);
  if (trace.good()) {
    std::stringstream buffer;
    buffer << trace.rdbuf();
    const std::string text = buffer.str();
    result.trace_has_anomaly_lane =
        text.find("\"anomaly\"") != std::string::npos &&
        text.find("step_time_regression") != std::string::npos;
  }
  return result;
}

// --- 4. Disabled registry preserves the zero-alloc steady state -------------

struct DisabledAllocResult {
  uint64_t steady_heap_allocs = 0;
  uint64_t steady_acquires = 0;
};

DisabledAllocResult RunDisabledAllocCheck() {
  // The bench_memory zero-alloc configuration: dp=1, one worker, pooled —
  // a fully deterministic allocation sequence. First run warms the pool;
  // the second must be served entirely from recycled blocks, and with the
  // registry disabled the record path may not add a single allocation.
  DisabledAllocResult result;
  NumericTrainConfig config = ObsConfig();
  config.dp_size = 1;
  config.batch_per_rank = 1;
  const int default_workers = ParallelWorkerCount();
  SetParallelWorkerCount(1);
  MetricsRegistry::Global().set_enabled(false);
  SetArenaPoolingEnabled(true);
  ArenaTrim();
  ResetMemStats();
  TrainLm(config);
  const MemStatsSnapshot after_cold = GetMemStats();
  TrainLm(config);
  const MemStatsSnapshot after_steady = GetMemStats();
  MetricsRegistry::Global().set_enabled(true);
  SetParallelWorkerCount(default_workers);
  result.steady_heap_allocs = after_steady.heap_allocs - after_cold.heap_allocs;
  result.steady_acquires = after_steady.acquires - after_cold.acquires;
  return result;
}

// --- Reporting ---------------------------------------------------------------

struct Report {
  OverheadTiming overhead;
  InstrumentedResult instrumented;
  AnomalyResult anomaly;
  DisabledAllocResult disabled_allocs;
};

Report RunAll() {
  Report report;
  report.overhead = TimeRegistryOverhead();
  report.instrumented = RunInstrumented();
  report.anomaly = RunSlowRankDetection(report.instrumented.collectives_per_step);
  report.disabled_allocs = RunDisabledAllocCheck();
  return report;
}

void PrintReport(const Report& report) {
  std::printf("fused fig15 pipeline: registry enabled %.3f ms vs disabled %.3f ms "
              "(overhead %+.2f%%)\n",
              report.overhead.enabled_ms, report.overhead.disabled_ms,
              report.overhead.overhead_pct);
  std::printf("instrumented dp=2 run: loss bitwise %s; artifacts jsonl=%s (%zu lines) "
              "trace=%s prom=%s\n",
              report.instrumented.bitwise ? "identical" : "DIVERGED",
              report.instrumented.jsonl_written ? "yes" : "NO",
              report.instrumented.jsonl_lines,
              report.instrumented.trace_written ? "yes" : "NO",
              report.instrumented.prom_written ? "yes" : "NO");
  std::printf("slow-rank injection (30ms/collective from step %lld): %s",
              static_cast<long long>(report.anomaly.fault_step),
              report.anomaly.detected ? "" : "NOT DETECTED\n");
  if (report.anomaly.detected) {
    std::printf("flagged at step %lld (latency %lld steps, %zu events), suspect rank "
                "%d, anomaly lane in trace: %s\n",
                static_cast<long long>(report.anomaly.first_anomaly_step),
                static_cast<long long>(report.anomaly.detection_latency),
                report.anomaly.anomaly_events, report.anomaly.straggler_suspect,
                report.anomaly.trace_has_anomaly_lane ? "yes" : "NO");
  }
  std::printf("disabled registry steady state: %llu heap allocs over %llu acquires\n",
              static_cast<unsigned long long>(report.disabled_allocs.steady_heap_allocs),
              static_cast<unsigned long long>(report.disabled_allocs.steady_acquires));
}

void WriteJson(const Report& report) {
  const char* json_path = "BENCH_obs.json";
  std::FILE* json = std::fopen(json_path, "wb");
  if (json == nullptr) {
    return;
  }
  std::string spread;
  AppendTimingSpreadJson(&spread, "enabled", report.overhead.enabled_stats);
  spread += ", ";
  AppendTimingSpreadJson(&spread, "disabled", report.overhead.disabled_stats);
  std::fprintf(
      json,
      "{\"bench\": \"observability\",\n"
      " \"overhead\": {\"enabled_ms\": %.4f, \"disabled_ms\": %.4f, "
      "\"overhead_pct\": %.3f, %s},\n"
      " \"instrumented\": {\"loss_bitwise\": %s, \"jsonl_written\": %s, "
      "\"jsonl_lines\": %zu, \"trace_written\": %s, \"prom_written\": %s},\n"
      " \"anomaly\": {\"detected\": %s, \"fault_step\": %lld, "
      "\"first_anomaly_step\": %lld, \"detection_latency_steps\": %lld, "
      "\"straggler_suspect\": %d, \"events\": %zu, \"trace_lane\": %s},\n"
      " \"disabled_registry\": {\"steady_heap_allocs\": %llu, "
      "\"steady_acquires\": %llu}}\n",
      report.overhead.enabled_ms, report.overhead.disabled_ms,
      report.overhead.overhead_pct, spread.c_str(),
      report.instrumented.bitwise ? "true" : "false",
      report.instrumented.jsonl_written ? "true" : "false",
      report.instrumented.jsonl_lines,
      report.instrumented.trace_written ? "true" : "false",
      report.instrumented.prom_written ? "true" : "false",
      report.anomaly.detected ? "true" : "false",
      static_cast<long long>(report.anomaly.fault_step),
      static_cast<long long>(report.anomaly.first_anomaly_step),
      static_cast<long long>(report.anomaly.detection_latency),
      report.anomaly.straggler_suspect, report.anomaly.anomaly_events,
      report.anomaly.trace_has_anomaly_lane ? "true" : "false",
      static_cast<unsigned long long>(report.disabled_allocs.steady_heap_allocs),
      static_cast<unsigned long long>(report.disabled_allocs.steady_acquires));
  std::fclose(json);
  std::printf("machine-readable output: %s\n", json_path);
}

int CheckMode() {
  const Report report = RunAll();
  PrintReport(report);
  WriteJson(report);
  int failures = 0;
  // 2% relative with a 0.15ms absolute floor: on a sub-10ms median, 2% is
  // inside scheduler jitter, and the registry's real cost (a few dozen
  // relaxed atomics per pipeline run) is far below both.
  const double budget_ms =
      std::max(1.02 * report.overhead.disabled_ms,
               report.overhead.disabled_ms + 0.15);
  if (report.overhead.enabled_ms > budget_ms) {
    std::printf("\nOBS SMOKE FAILED: metrics-enabled fused pipeline %.3f ms exceeds "
                "the 2%% overhead budget over disabled %.3f ms\n",
                report.overhead.enabled_ms, report.overhead.disabled_ms);
    ++failures;
  }
  if (!report.instrumented.bitwise) {
    std::printf("\nOBS SMOKE FAILED: instrumented loss curve diverged from the "
                "uninstrumented run\n");
    ++failures;
  }
  if (!report.instrumented.jsonl_written || !report.instrumented.trace_written ||
      !report.instrumented.prom_written || report.instrumented.jsonl_lines == 0) {
    std::printf("\nOBS SMOKE FAILED: missing artifacts (jsonl %s/%zu lines, trace %s, "
                "prom %s)\n",
                report.instrumented.jsonl_written ? "ok" : "MISSING",
                report.instrumented.jsonl_lines,
                report.instrumented.trace_written ? "ok" : "MISSING",
                report.instrumented.prom_written ? "ok" : "MISSING");
    ++failures;
  }
  if (!report.anomaly.detected || report.anomaly.detection_latency > 5 ||
      report.anomaly.straggler_suspect != 1 ||
      !report.anomaly.trace_has_anomaly_lane) {
    std::printf("\nOBS SMOKE FAILED: slow rank not properly flagged (detected %s, "
                "latency %lld steps, suspect %d, trace lane %s)\n",
                report.anomaly.detected ? "yes" : "NO",
                static_cast<long long>(report.anomaly.detection_latency),
                report.anomaly.straggler_suspect,
                report.anomaly.trace_has_anomaly_lane ? "ok" : "MISSING");
    ++failures;
  }
  if (report.disabled_allocs.steady_heap_allocs != 0) {
    std::printf("\nOBS SMOKE FAILED: disabled registry steady state performed %llu "
                "heap allocs (expected 0)\n",
                static_cast<unsigned long long>(
                    report.disabled_allocs.steady_heap_allocs));
    ++failures;
  }
  if (failures == 0) {
    std::printf("\nobs smoke ok: %+.2f%% overhead, loss bitwise, slow rank flagged "
                "in %lld steps, 0 steady-state allocs disabled\n",
                report.overhead.overhead_pct,
                static_cast<long long>(report.anomaly.detection_latency));
  }
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      return CheckMode();
    }
  }
  PrintHeader("BENCH observability",
              "metrics registry overhead on the fused pipeline, instrumented-vs-"
              "bare loss identity, slow-rank anomaly detection latency, and the "
              "disabled-registry zero-alloc guarantee");
  const Report report = RunAll();
  PrintReport(report);
  WriteJson(report);
  return 0;
}

}  // namespace
}  // namespace msmoe

int main(int argc, char** argv) { return msmoe::Main(argc, argv); }
