#include "src/core/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "src/base/arena.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/comm/communicator.h"
#include "src/comm/elastic.h"
#include "src/comm/health.h"
#include "src/core/exec_graph.h"
#include "src/model/checkpoint.h"
#include "src/model/flat_adam.h"
#include "src/numerics/bf16.h"
#include "src/numerics/fp8.h"
#include "src/numerics/quantize.h"

namespace msmoe {

const char* TrainPrecisionName(TrainPrecision precision) {
  switch (precision) {
    case TrainPrecision::kFp32:
      return "fp32";
    case TrainPrecision::kBf16:
      return "bf16";
    case TrainPrecision::kFp8:
      return "fp8";
  }
  return "unknown";
}

void MakeTrainingBatch(const ModelConfig& model, uint64_t seed, int64_t step, int rank,
                       int64_t batch, std::vector<int64_t>* inputs,
                       std::vector<int64_t>* targets) {
  Rng rng = Rng(seed).Fork(static_cast<uint64_t>(step) * 1000003ULL +
                           static_cast<uint64_t>(rank));
  const int64_t tokens = batch * model.seq_len;
  inputs->resize(static_cast<size_t>(tokens));
  targets->resize(static_cast<size_t>(tokens));
  for (int64_t b = 0; b < batch; ++b) {
    int64_t previous = 0;
    for (int64_t i = 0; i < model.seq_len; ++i) {
      const int64_t token = static_cast<int64_t>(rng.NextIndex(
          static_cast<uint64_t>(model.vocab)));
      (*inputs)[static_cast<size_t>(b * model.seq_len + i)] = token;
      // Previous-token copy: solvable only through attention, learnable
      // quickly by a 2-layer model (unlike modular addition).
      (*targets)[static_cast<size_t>(b * model.seq_len + i)] = previous;
      previous = token;
    }
  }
}

void RoundParams(LmParams& params, TrainPrecision precision) {
  switch (precision) {
    case TrainPrecision::kFp32:
      return;
    case TrainPrecision::kBf16:
      params.ForEach([](const std::string&, Tensor& tensor) {
        for (int64_t i = 0; i < tensor.numel(); ++i) {
          tensor[i] = Bf16Round(tensor[i]);
        }
      });
      return;
    case TrainPrecision::kFp8:
      // Per-tensor amax-scaled E4M3 (the multi-precision optimizer of §7
      // stores FP8 compute copies; masters stay FP32 in Adam).
      params.ForEach([](const std::string&, Tensor& tensor) {
        float amax = 0.0f;
        for (int64_t i = 0; i < tensor.numel(); ++i) {
          amax = std::max(amax, std::fabs(tensor[i]));
        }
        const float scale = amax > 0.0f ? amax / Fp8MaxFinite(Fp8Format::kE4M3) : 1.0f;
        for (int64_t i = 0; i < tensor.numel(); ++i) {
          tensor[i] = Fp8RoundE4M3(tensor[i] / scale) * scale;
        }
      });
      return;
  }
}

namespace {

// Per-token (1 x h) FP8 rounding of hidden states (§7), straight-through.
void RoundActivationsPerToken(Tensor& hidden) {
  const int64_t rows = hidden.dim(0);
  const int64_t cols = hidden.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    float amax = 0.0f;
    float* row = hidden.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      amax = std::max(amax, std::fabs(row[c]));
    }
    const float scale = amax > 0.0f ? amax / Fp8MaxFinite(Fp8Format::kE4M3) : 1.0f;
    for (int64_t c = 0; c < cols; ++c) {
      row[c] = Fp8RoundE4M3(row[c] / scale) * scale;
    }
  }
}

// Rounds a flat buffer to the chosen wire precision (per-128-group scaled
// E4M3 for FP8, matching the grouped quantization of §5).
void RoundFlatForWire(float* data, int64_t count, TrainPrecision precision) {
  switch (precision) {
    case TrainPrecision::kFp32:
      return;
    case TrainPrecision::kBf16:
      for (int64_t i = 0; i < count; ++i) {
        data[i] = Bf16Round(data[i]);
      }
      return;
    case TrainPrecision::kFp8: {
      constexpr int64_t kGroup = 128;
      for (int64_t begin = 0; begin < count; begin += kGroup) {
        const int64_t end = std::min(count, begin + kGroup);
        float amax = 0.0f;
        for (int64_t i = begin; i < end; ++i) {
          amax = std::max(amax, std::fabs(data[i]));
        }
        const float scale = amax > 0.0f ? amax / Fp8MaxFinite(Fp8Format::kE4M3) : 1.0f;
        for (int64_t i = begin; i < end; ++i) {
          data[i] = Fp8RoundE4M3(data[i] / scale) * scale;
        }
      }
      return;
    }
  }
}

std::vector<float> SaveParams(const LmParams& params) {
  std::vector<float> blob;
  params.ForEachConst([&blob](const std::string&, const Tensor& tensor) {
    const size_t cursor = blob.size();
    blob.resize(cursor + static_cast<size_t>(tensor.numel()));
    std::memcpy(blob.data() + cursor, tensor.data(),
                static_cast<size_t>(tensor.numel()) * sizeof(float));
  });
  return blob;
}

void LoadParams(LmParams& params, const std::vector<float>& blob) {
  size_t cursor = 0;
  params.ForEach([&](const std::string&, Tensor& tensor) {
    std::memcpy(tensor.data(), blob.data() + cursor,
                static_cast<size_t>(tensor.numel()) * sizeof(float));
    cursor += static_cast<size_t>(tensor.numel());
  });
  MSMOE_CHECK_EQ(cursor, blob.size());
}

}  // namespace

Status ValidateNumericTrainConfig(const NumericTrainConfig& config) {
  if (config.overlap_grad_sync && config.zero_shard_optimizer) {
    return InvalidArgument(
        "overlap_grad_sync is incompatible with zero_shard_optimizer: ZeRO-1 "
        "reduces one flat gradient buffer after the full backward and has no "
        "per-layer segments to overlap; disable one of the two");
  }
  if (config.elastic) {
    if (config.restart_every > 0) {
      return InvalidArgument(
          "elastic is incompatible with restart_every: the Fig 19 restart "
          "pattern assumes a fixed world, while elastic recovery may shrink it");
    }
    MSMOE_RETURN_IF_ERROR(ValidateRecoveryPolicyConfig(config.recovery_policy));
    if (config.min_world < 1) {
      return InvalidArgument("min_world must be >= 1");
    }
  }
  if (!config.init_checkpoint_path.empty() && config.zero_shard_optimizer) {
    return InvalidArgument(
        "init_checkpoint_path requires a replicated optimizer: checkpoint "
        "files hold full state, which ZeRO-1 runs shard per rank");
  }
  if (config.first_step < 0) {
    return InvalidArgument("first_step must be >= 0");
  }
  if (config.first_step > 0) {
    if (config.init_checkpoint_path.empty()) {
      return InvalidArgument(
          "first_step > 0 requires init_checkpoint_path: the steps before "
          "first_step are the checkpointed run's history, not replayable here");
    }
    if (config.first_step >= config.steps) {
      return InvalidArgument("first_step must be < steps");
    }
  }
  return Status::Ok();
}

TrainCurve TrainLm(const NumericTrainConfig& config) {
  const Status config_status = ValidateNumericTrainConfig(config);
  MSMOE_CHECK(config_status.ok()) << config_status.ToString();
  const int dp = config.dp_size;
  MSMOE_CHECK_GE(dp, 1);
  // Epoch 0 of the elastic membership is exactly the fixed-world
  // communicator non-elastic runs always used; further epochs only exist if
  // a permanent fault shrinks the membership.
  ElasticComm elastic(config.comm_backend, dp, config.gpus_per_node);
  if (config.fault_plan != nullptr) {
    elastic.set_fault_plan(config.fault_plan);
  }
  if (config.collective_timeout_ms > 0.0) {
    elastic.SetCollectiveTimeout(config.collective_timeout_ms);
  }
  // Whether any step can fail. A fault-free run without deadlines never sees
  // a non-OK group, so the plain loop is kept byte-for-byte identical.
  const bool fault_aware = config.fault_plan != nullptr ||
                           config.collective_timeout_ms > 0.0 ||
                           config.guard_grad_checksum || config.elastic;
  // File-backed recovery needs state that is identical on every rank; ZeRO
  // shards the masters per-rank, so those runs recover from memory.
  const bool file_checkpoints =
      !config.checkpoint_path.empty() && !config.zero_shard_optimizer;
  TrainCurve curve;
  curve.loss.assign(static_cast<size_t>(config.steps), 0.0);
  if (config.profiler != nullptr) {
    config.profiler->set_world(dp);
  }

  RunOnRanks(dp, [&](int rank) {
    // `rank` is this thread's GLOBAL (epoch-0) rank, fixed for its lifetime.
    // `my` is the dense rank within the CURRENT membership epoch and
    // `dp_now` the current world size — both are remapped when an elastic
    // shrink evicts a rank. Non-elastic runs never change them.
    Communicator* comm_now = elastic.comm();
    int my = rank;
    int dp_now = dp;
    // Global ranks of comm_now's epoch, snapshotted at bind time. Fault
    // attribution maps epoch ranks through THIS list, never through
    // elastic.GlobalRank(): a survivor that classifies late (it slept
    // through the fault) must resolve its suspect against the epoch that
    // failed, not against a membership its peers already committed.
    std::vector<int> members_now(static_cast<size_t>(dp));
    for (int i = 0; i < dp; ++i) {
      members_now[static_cast<size_t>(i)] = i;
    }

    // Identical init on every rank.
    Rng rng(config.seed);
    LmParams params = LmParams::Init(config.model, rng);

    // Replicated-optimizer path state.
    AdamOptimizer adam(config.adam);
    if (!config.zero_shard_optimizer) {
      for (Tensor* t : params.TensorList()) {
        adam.Register(t);
      }
    }

    ActivationTransform activation_transform = nullptr;
    if (config.precision == TrainPrecision::kFp8) {
      activation_transform = RoundActivationsPerToken;
    }

    const int64_t total_elems = params.TotalElements();
    // Pad the flat gradient buffer so it shards evenly over the DP group.
    // Mutable: an elastic shrink re-plans the geometry for the new world.
    int64_t padded = PaddedGradCount(total_elems, dp_now);
    int64_t shard = padded / dp_now;
    std::vector<float> flat(static_cast<size_t>(padded), 0.0f);

    // §5 inter-op overlap (see NumericTrainConfig::overlap_grad_sync): each
    // layer's gradients reduce-scatter on the comm thread while the earlier
    // layers are still in backward, with the whole step recorded as an
    // ExecGraph. Restricted to the shapes where the result is provably
    // bitwise identical to the synchronous path; fault replay keeps the
    // synchronous op sequence. (overlap + ZeRO was rejected loudly by
    // ValidateNumericTrainConfig above.)
    const bool overlap_sync = config.overlap_grad_sync &&
                              config.grad_sync == GradSyncMode::kFp32ReduceScatter &&
                              config.grad_accum_steps <= 1 && !fault_aware;
    struct GradSegment {
      int64_t elems = 0;   // real elements (padded to a dp multiple below)
      int64_t padded = 0;
      std::vector<float> send;
      std::vector<float> shard;
      std::vector<float> full;
      std::unique_ptr<CommHandle> handle;
    };
    // One segment per layer plus a tail segment (embedding + final_gain +
    // lm_head, all ready only once backward reaches the embedding).
    std::vector<GradSegment> segments;
    if (overlap_sync) {
      segments.resize(static_cast<size_t>(config.model.num_layers) + 1);
      for (int64_t l = 0; l < config.model.num_layers; ++l) {
        segments[static_cast<size_t>(l)].elems =
            params.layers[static_cast<size_t>(l)].TotalElements();
      }
      segments.back().elems = params.embedding.numel() + params.final_gain.numel() +
                              params.lm_head.numel();
      for (GradSegment& seg : segments) {
        seg.padded = ((seg.elems + dp - 1) / dp) * dp;
        seg.send.assign(static_cast<size_t>(seg.padded), 0.0f);
        seg.shard.assign(static_cast<size_t>(seg.padded / dp), 0.0f);
        seg.full.assign(static_cast<size_t>(seg.padded), 0.0f);
      }
    }

    // ZeRO-1 path state: this rank's FP32 master shard + Adam moments.
    FlatAdam flat_adam(config.adam, config.zero_shard_optimizer ? shard : 0);
    std::vector<float> master_shard;
    if (config.zero_shard_optimizer) {
      std::vector<float> full = SaveParams(params);
      full.resize(static_cast<size_t>(padded), 0.0f);
      master_shard.assign(full.begin() + my * shard, full.begin() + (my + 1) * shard);
    }

    // Elastic + ZeRO snapshots hold the FULL gathered state, not this
    // rank's shard: after a shrink the shard boundaries move, so recovery
    // reshards the gathered masters and Adam moments at the new geometry
    // (src/model/checkpoint.h reshard helpers).
    const bool elastic_zero = config.elastic && config.zero_shard_optimizer;
    std::vector<float> snapshot_master_full;
    std::vector<float> snapshot_m_full;
    std::vector<float> snapshot_v_full;
    int64_t snapshot_opt_step = 0;

    // Batch buffers, hoisted out of the step loop so MakeTrainingBatch's
    // resize is a no-op at steady state.
    std::vector<int64_t> inputs;
    std::vector<int64_t> targets;

    auto run_step = [&](int64_t step, bool record) {
      // Observability bracket: recorded steps only (warmup and replayed
      // internals use negative/duplicate step ids), and inert when no
      // profiler is configured — the uninstrumented step is byte-for-byte
      // the code below.
      ScopedStep obs_step(record ? config.profiler : nullptr, my, step,
                          &comm_now->telemetry());
      // Low-precision compute copy; masters stay FP32 (in `params` or in the
      // ZeRO master shard).
      std::optional<MemoryScope> cast_scope;
      cast_scope.emplace("param_cast");
      LmParams compute = params;
      RoundParams(compute, config.precision);

      // FP32 gradient accumulation over micro-batches (§5: the main grads
      // stay FP32 throughout; only the post-accumulation communication is
      // compressed).
      LmParams grads = LmParams::ZerosLike(config.model);
      cast_scope.reset();
      LmStepStats stats;
      const int64_t accum = std::max<int64_t>(1, config.grad_accum_steps);
      const auto run_micro_batches = [&](const LayerGradCallback& on_layer_grads) {
        MemoryScope scope("fwd_bwd");
        for (int64_t micro = 0; micro < accum; ++micro) {
          MakeTrainingBatch(config.model, config.seed, step * accum + micro, my,
                            config.batch_per_rank, &inputs, &targets);
          const LmStepStats micro_stats =
              LmForwardBackward(compute, config.model, config.router, inputs, targets,
                                config.batch_per_rank, &grads, activation_transform,
                                on_layer_grads);
          stats.ce_loss += micro_stats.ce_loss / static_cast<double>(accum);
          stats.aux_loss += micro_stats.aux_loss / static_cast<double>(accum);
        }
        if (accum > 1) {
          grads.Scale(1.0f / static_cast<float>(accum));
        }
      };

      if (overlap_sync) {
        // The overlapped step, recorded as a two-stream graph on the runtime
        // executor. Every segment's producer-gated reduce-scatter is
        // registered HERE, at record time on the rank's main thread — issue
        // order (backward production order: layer L-1 .. 0, then the tail)
        // is therefore identical on every rank no matter how the graph is
        // scheduled. The ops only signal, wait, and compute.
        for (int64_t l = config.model.num_layers - 1; l >= 0; --l) {
          GradSegment& seg = segments[static_cast<size_t>(l)];
          seg.handle =
              StartGradShardSync(*comm_now, my, seg.send.data(), seg.padded,
                                 seg.shard.data(), config.overlap_grad_chunks,
                                 /*signal_now=*/false);
        }
        GradSegment& tail = segments.back();
        tail.handle = StartGradShardSync(*comm_now, my, tail.send.data(), tail.padded,
                                         tail.shard.data(), config.overlap_grad_chunks,
                                         /*signal_now=*/false);

        ExecGraph graph;
        const int fwd_bwd = graph.AddCompute("fwd_bwd", [&] {
          // As each layer's backward finishes, flatten its (final,
          // accum == 1) gradients into the segment buffer and release the
          // in-flight reduce-scatter; the transfer streams on the comm-proxy
          // thread while the remaining layers run backward.
          LayerGradCallback on_layer_grads = [&](int64_t l) {
            GradSegment& seg = segments[static_cast<size_t>(l)];
            size_t cur = 0;
            grads.layers[static_cast<size_t>(l)].ForEachConst(
                [&](const std::string&, const Tensor& tensor) {
                  std::memcpy(seg.send.data() + cur, tensor.data(),
                              static_cast<size_t>(tensor.numel()) * sizeof(float));
                  cur += static_cast<size_t>(tensor.numel());
                });
            std::fill(seg.send.begin() + static_cast<int64_t>(cur), seg.send.end(),
                      0.0f);
            SignalGradSegmentReady(*seg.handle);
          };
          run_micro_batches(on_layer_grads);
          // Tail segment (embedding + final_gain + lm_head) becomes final
          // only once backward reaches the embedding.
          GradSegment& t = segments.back();
          size_t cur = 0;
          const auto pack = [&](const Tensor& tensor) {
            std::memcpy(t.send.data() + cur, tensor.data(),
                        static_cast<size_t>(tensor.numel()) * sizeof(float));
            cur += static_cast<size_t>(tensor.numel());
          };
          pack(grads.embedding);
          pack(grads.final_gain);
          pack(grads.lm_head);
          std::fill(t.send.begin() + static_cast<int64_t>(cur), t.send.end(), 0.0f);
          SignalGradSegmentReady(*t.handle);
          return Status::Ok();
        });
        // Per segment: rendezvous with the reduced shard on the comm stream,
        // then all-gather the summed segment. The all-gathers are blocking
        // collectives, so they live on stream 0 — the caller's FIFO — where
        // the declared order keeps their issue order identical on every
        // rank. The waits depend on fwd_bwd so an aborted step skips them
        // and the handle destructors cancel the unsignalled transfers.
        std::vector<int> gathers;
        for (size_t s = 0; s < segments.size(); ++s) {
          GradSegment* seg = &segments[s];
          const int wait = graph.AddComm(
              "grad_rs_wait[" + std::to_string(s) + "]", /*stream=*/1,
              [seg] { return seg->handle->WaitAll(); }, {fwd_bwd});
          gathers.push_back(graph.AddComm(
              "param_ag[" + std::to_string(s) + "]", /*stream=*/0,
              [&, seg] {
                comm_now->AllGather(my, seg->shard.data(), seg->full.data(),
                                    seg->padded / dp);
                return comm_now->GroupStatus();
              },
              {wait}));
        }
        graph.AddCompute(
            "grad_unpack+adam",
            [&] {
              MemoryScope scope("optimizer");
              for (int64_t l = 0; l < config.model.num_layers; ++l) {
                GradSegment& seg = segments[static_cast<size_t>(l)];
                size_t cur = 0;
                grads.layers[static_cast<size_t>(l)].ForEach(
                    [&](const std::string&, Tensor& tensor) {
                      for (int64_t i = 0; i < tensor.numel(); ++i) {
                        tensor[i] = seg.full[cur++] / static_cast<float>(dp);
                      }
                    });
              }
              GradSegment& t = segments.back();
              size_t cur = 0;
              const auto unpack = [&](Tensor& tensor) {
                for (int64_t i = 0; i < tensor.numel(); ++i) {
                  tensor[i] = t.full[cur++] / static_cast<float>(dp);
                }
              };
              unpack(grads.embedding);
              unpack(grads.final_gain);
              unpack(grads.lm_head);
              adam.Step(grads.TensorListConst());
              return Status::Ok();
            },
            gathers);
        // A failure surfaces as the communicator's sticky group status,
        // which the step loop below already checks; the graph result merely
        // mirrors it.
        (void)graph.Execute(2);
        for (GradSegment& seg : segments) {
          seg.handle.reset();
        }
        if (record && my == 0) {
          curve.loss[static_cast<size_t>(step)] = stats.ce_loss;
        }
        obs_step.set_loss(stats.ce_loss);
        return stats.ce_loss;
      }

      run_micro_batches(nullptr);

      // Flatten the gradients (the overlap path above flattens per segment
      // as the layer callbacks fire instead).
      size_t cursor = 0;
      grads.ForEachConst([&](const std::string&, const Tensor& tensor) {
        std::memcpy(flat.data() + cursor, tensor.data(),
                    static_cast<size_t>(tensor.numel()) * sizeof(float));
        cursor += static_cast<size_t>(tensor.numel());
      });
      std::fill(flat.begin() + static_cast<int64_t>(cursor), flat.end(), 0.0f);

      if (config.zero_shard_optimizer) {
        // ZeRO-1: reduce this rank's gradient shard, update the master
        // shard, and all-gather the updated parameters on the chosen wire.
        // The shard and wire staging live in the rank thread's workspace —
        // reused verbatim every step.
        Workspace& ws = ThreadWorkspace();
        float* grad_shard = ws.Floats("trainer.grad_shard", shard);
        {
          MemoryScope scope("grad_sync");
          SyncGradShardInto(*comm_now, my, flat.data(), padded, config.grad_sync,
                            grad_shard);
        }
        for (int64_t i = 0; i < shard; ++i) {
          grad_shard[i] /= static_cast<float>(dp_now);
        }
        {
          MemoryScope scope("optimizer");
          flat_adam.Step(grad_shard, master_shard.data());
        }
        MemoryScope scope("grad_sync");
        float* wire = ws.Floats("trainer.wire", shard);
        std::memcpy(wire, master_shard.data(), static_cast<size_t>(shard) * sizeof(float));
        RoundFlatForWire(wire, shard, config.param_gather_precision);
        comm_now->AllGather(my, wire, flat.data(), shard);
        cursor = 0;
        params.ForEach([&](const std::string&, Tensor& tensor) {
          std::memcpy(tensor.data(), flat.data() + cursor,
                      static_cast<size_t>(tensor.numel()) * sizeof(float));
          cursor += static_cast<size_t>(tensor.numel());
        });
      } else {
        {
          MemoryScope scope("grad_sync");
          AllReduceGrads(*comm_now, my, flat.data(), padded, config.grad_sync);
        }
        MemoryScope scope("optimizer");
        cursor = 0;
        grads.ForEach([&](const std::string&, Tensor& tensor) {
          float* d = tensor.data();
          for (int64_t i = 0; i < tensor.numel(); ++i) {
            d[i] = flat[cursor++] / static_cast<float>(dp_now);
          }
        });
        adam.Step(grads.TensorListConst());
      }

      if (record && my == 0) {
        curve.loss[static_cast<size_t>(step)] = stats.ce_loss;
      }
      obs_step.set_loss(stats.ce_loss);
      return stats.ce_loss;
    };

    auto save_opt = [&] {
      return config.zero_shard_optimizer ? flat_adam.SaveState() : adam.SaveState();
    };
    auto load_opt = [&](const std::vector<float>& blob) {
      if (config.zero_shard_optimizer) {
        flat_adam.LoadState(blob);
      } else {
        adam.LoadState(blob);
      }
    };

    // Warmup ("checkpoint to continue from", Fig 18's 176B scenario).
    for (int64_t step = 0; step < config.warmup_steps; ++step) {
      run_step(-config.warmup_steps + step - 1000000, /*record=*/false);
    }

    // Continue a previous run from its persisted checkpoint (the elastic
    // bit-identity cross-check starts a fresh W-k run this way).
    if (!config.init_checkpoint_path.empty()) {
      Result<Checkpoint> loaded = LoadCheckpoint(config.init_checkpoint_path);
      MSMOE_CHECK(loaded.ok()) << loaded.status().ToString();
      const Status restored = RestoreParams(params, loaded.value().params);
      MSMOE_CHECK(restored.ok()) << restored.ToString();
      load_opt(loaded.value().optimizer_state);
    }

    // Gathers the full ZeRO state (masters + Adam moments) of the CURRENT
    // membership into the elastic snapshot buffers; returns false (nothing
    // committed) if the group failed mid-gather. The gathered padding is
    // zero by construction (zero-padded grads keep zero moments and zero
    // master updates), so trimming to total_elems is lossless.
    auto gather_zero_snapshot = [&] {
      std::vector<float> opt_blob = flat_adam.SaveState();  // [step, m, v]
      MSMOE_CHECK_EQ(static_cast<int64_t>(opt_blob.size()), 1 + 2 * shard);
      std::vector<float> master_full(static_cast<size_t>(padded), 0.0f);
      std::vector<float> m_full(static_cast<size_t>(padded), 0.0f);
      std::vector<float> v_full(static_cast<size_t>(padded), 0.0f);
      // Commit on each gather's own status (the TryBarrier commit-token
      // contract): every rank reaches the same verdict even when a fault
      // lands right after the last gather closes.
      Status gathered =
          comm_now->TryAllGather(my, master_shard.data(), master_full.data(), shard);
      if (gathered.ok()) {
        gathered = comm_now->TryAllGather(my, opt_blob.data() + 1, m_full.data(), shard);
      }
      if (gathered.ok()) {
        gathered = comm_now->TryAllGather(my, opt_blob.data() + 1 + shard,
                                          v_full.data(), shard);
      }
      if (!gathered.ok()) {
        return false;
      }
      master_full.resize(static_cast<size_t>(total_elems));
      m_full.resize(static_cast<size_t>(total_elems));
      v_full.resize(static_cast<size_t>(total_elems));
      snapshot_master_full = std::move(master_full);
      snapshot_m_full = std::move(m_full);
      snapshot_v_full = std::move(v_full);
      snapshot_opt_step = static_cast<int64_t>(opt_blob[0]);
      return true;
    };

    std::vector<float> checkpoint_params = SaveParams(params);
    std::vector<float> checkpoint_master = master_shard;
    std::vector<float> checkpoint_opt = save_opt();
    int64_t checkpoint_step = config.first_step;
    if (elastic_zero) {
      MSMOE_CHECK(gather_zero_snapshot()) << "initial elastic snapshot failed: "
                                          << comm_now->GroupStatus().ToString();
    }
    if (file_checkpoints && my == 0) {
      const Status saved =
          SaveCheckpoint(config.checkpoint_path, params, checkpoint_opt);
      MSMOE_CHECK(saved.ok()) << saved.ToString();
    }

    // Barrier-gated snapshot: every rank commits the same checkpoint step or
    // none does. Without the gate a rank that has not yet observed an
    // in-flight fault could snapshot a step its peers never reached, and
    // recovery would resume from diverged states.
    auto try_snapshot = [&](int64_t step) {
      // The commit decision branches on the barrier's OWN returned status
      // (serialized with concurrent aborts), never on a GroupStatus() read
      // after the fact: a crash raised by a peer between one rank's barrier
      // exit and another's status read would otherwise commit the snapshot
      // on some ranks only, diverging checkpoint_step — and with it the
      // resume step — across the group.
      if (!comm_now->TryBarrier(my).ok()) {
        return false;
      }
      if (elastic_zero && !gather_zero_snapshot()) {
        return false;
      }
      checkpoint_params = SaveParams(params);
      checkpoint_master = master_shard;
      checkpoint_opt = save_opt();
      checkpoint_step = step;
      if (file_checkpoints && my == 0) {
        const Status saved =
            SaveCheckpoint(config.checkpoint_path, params, checkpoint_opt);
        MSMOE_CHECK(saved.ok()) << saved.ToString();
      }
      return true;
    };

    // Restores the snapshot at the CURRENT geometry (my, dp_now): after an
    // elastic shrink the ZeRO state is re-sliced from the gathered full
    // snapshot, so restoring at an unchanged world is bitwise identical to
    // the plain per-shard copy.
    auto restore_snapshot = [&] {
      if (file_checkpoints) {
        Result<Checkpoint> loaded = LoadCheckpoint(config.checkpoint_path);
        MSMOE_CHECK(loaded.ok()) << loaded.status().ToString();
        const Status restored = RestoreParams(params, loaded.value().params);
        MSMOE_CHECK(restored.ok()) << restored.ToString();
        load_opt(loaded.value().optimizer_state);
      } else if (elastic_zero) {
        LoadParams(params, checkpoint_params);
        master_shard = ShardOfFlat(snapshot_master_full, total_elems, dp_now, my);
        std::vector<float> blob;
        blob.reserve(static_cast<size_t>(1 + 2 * shard));
        blob.push_back(static_cast<float>(snapshot_opt_step));
        const std::vector<float> m =
            ShardOfFlat(snapshot_m_full, total_elems, dp_now, my);
        const std::vector<float> v =
            ShardOfFlat(snapshot_v_full, total_elems, dp_now, my);
        blob.insert(blob.end(), m.begin(), m.end());
        blob.insert(blob.end(), v.begin(), v.end());
        flat_adam = FlatAdam(config.adam, shard);
        flat_adam.LoadState(blob);
      } else {
        LoadParams(params, checkpoint_params);
        master_shard = checkpoint_master;
        load_opt(checkpoint_opt);
      }
    };

    // Cross-rank bitwise agreement on the synced flat buffer. Replicas are
    // bit-identical by construction, so any difference (a flipped payload
    // bit, a diverged update) is corruption; the first rank to see it
    // cancels the group.
    auto checksum_guard = [&] {
      double sum = 0.0;
      for (float value : flat) {
        sum += static_cast<double>(value);
      }
      const std::vector<double> sums = comm_now->ExchangeScalars(my, sum);
      if (!comm_now->GroupStatus().ok()) {
        return;
      }
      for (int peer = 0; peer < dp_now; ++peer) {
        if (sums[static_cast<size_t>(peer)] != sum) {
          comm_now->Abort(DataLoss("replica checksum mismatch after step sync: rank " +
                                   std::to_string(my) + " disagrees with rank " +
                                   std::to_string(peer)));
          return;
        }
      }
    };

    // Fault classification replica (elastic runs). Every rank classifies
    // the SAME sticky error with the SAME suspect attribution, so the
    // replicas reach identical verdicts without any extra coordination.
    RecoveryPolicy policy(config.recovery_policy);
    int64_t recoveries_used = 0;
    int64_t step = config.first_step;
    while (step < config.steps) {
      if (config.restart_every > 0 && step > 0 && step % config.restart_every == 0 &&
          step != checkpoint_step) {
        // Checkpoint the current state, tear down, and restore — the Fig 19
        // restart pattern. The curve must continue seamlessly.
        checkpoint_params = SaveParams(params);
        checkpoint_master = master_shard;
        checkpoint_opt = save_opt();
        checkpoint_step = step;
        LoadParams(params, checkpoint_params);
        master_shard = checkpoint_master;
        load_opt(checkpoint_opt);
        if (my == 0) {
          curve.restart_steps.push_back(step);
        }
      }
      bool step_ran = true;
      if (fault_aware && config.checkpoint_every > 0 && step > checkpoint_step &&
          step - checkpoint_step >= config.checkpoint_every) {
        step_ran = try_snapshot(step);
      }
      if (step_ran) {
        run_step(step, /*record=*/true);
        if (config.profiler != nullptr && config.elastic) {
          // Forward the detector's straggler verdict (an epoch-local rank)
          // as an advisory attribution: first hint sticks, real fault
          // attribution still wins inside SuspectRank. Every rank reads the
          // same shared profiler, so the CAS race is benign.
          const int hint = config.profiler->StragglerSuspect();
          if (hint >= 0) {
            comm_now->HintSuspect(hint);
          }
        }
        if (config.guard_grad_checksum && comm_now->GroupStatus().ok()) {
          checksum_guard();
        }
      }
      const Status status = comm_now->GroupStatus();
      if (status.ok()) {
        if (config.elastic) {
          policy.OnStepSuccess();
        }
        ++step;
        continue;
      }
      // A fault surfaced somewhere in this step: every rank observes the
      // same sticky error (the collectives all route through the cancelled
      // barrier). A rank whose step completed just before a peer raised the
      // fault may read OK here and enter recovery one iteration later — the
      // rollback below re-aligns everyone at step = checkpoint_step, which
      // the barrier-gated snapshot keeps identical across the group.
      if (!config.elastic) {
        // Legacy rollback path: every recoverable fault is retried. Codes
        // outside the rollback-repairable set (see IsRetryableFault) are
        // logic errors that would fail identically on replay — fail loudly.
        MSMOE_CHECK(IsRetryableFault(status) ||
                    status.code() == StatusCode::kDataLoss)
            << "non-recoverable failure at step " << step << ": "
            << status.ToString();
        ++recoveries_used;
        MSMOE_CHECK_LE(recoveries_used, config.max_recoveries)
            << "training failed at step " << step << " and exhausted "
            << config.max_recoveries << " recoveries: " << status.ToString();
        if (my == 0 && config.profiler != nullptr) {
          config.profiler->NoteRetry();
        }
        comm_now->RecoveryBarrier(my);
        restore_snapshot();
        if (my == 0) {
          RecoveryEvent event;
          event.failed_step = step;
          event.resumed_step = checkpoint_step;
          event.steps_lost = step - checkpoint_step;
          event.cause = status.ToString();
          event.world_after = 0;
          curve.recoveries.push_back(event);
        }
        step = checkpoint_step;
        continue;
      }

      // --- Elastic fault classification ---------------------------------
      // Attribution: the communicator's shared suspect (explicit abort
      // culprit, or the barrier arrival bitmap on a timeout), falling back
      // to the straggler report over the epoch's telemetry for deadline
      // faults with no bitmap attribution. Both inputs are identical on
      // every rank.
      int suspect = comm_now->SuspectRank();
      if (suspect < 0 && status.code() == StatusCode::kDeadlineExceeded) {
        suspect =
            WorstStragglerRank(DetectStragglers(comm_now->telemetry().Events()));
      }
      const int culprit_global =
          (suspect >= 0 && suspect < dp_now)
              ? members_now[static_cast<size_t>(suspect)]
              : -1;
      const RecoveryDecision decision = policy.OnFailure(status, culprit_global);
      MSMOE_CHECK(decision.verdict != FaultVerdict::kFatal)
          << "fatal failure at step " << step << " (" << decision.reason
          << "): " << status.ToString();
      ++recoveries_used;
      MSMOE_CHECK_LE(recoveries_used, config.max_recoveries)
          << "training failed at step " << step << " and exhausted "
          << config.max_recoveries << " recoveries: " << status.ToString();
      if (my == 0 && config.profiler != nullptr) {
        config.profiler->NoteRetry();
      }

      if (decision.verdict == FaultVerdict::kTransient) {
        comm_now->RecoveryBarrier(my);
        if (decision.backoff_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(decision.backoff_ms));
        }
        restore_snapshot();
        if (my == 0) {
          RecoveryEvent event;
          event.failed_step = step;
          event.resumed_step = checkpoint_step;
          event.steps_lost = step - checkpoint_step;
          event.cause = status.ToString();
          event.verdict = decision.verdict;
          event.culprit_rank = decision.culprit_rank;
          event.world_after = dp_now;
          event.backoff_ms = decision.backoff_ms;
          curve.recoveries.push_back(event);
        }
        step = checkpoint_step;
        continue;
      }

      // Permanent verdict: evict the culprit and continue on the survivors.
      MSMOE_CHECK_GE(culprit_global, 0)
          << "permanent verdict without a culprit: " << decision.reason;
      MSMOE_CHECK_GE(dp_now - 1, config.min_world)
          << "cannot shrink below min_world=" << config.min_world << " (world "
          << dp_now << ", evicting rank " << culprit_global << ")";
      if (rank == culprit_global) {
        // This thread IS the evicted rank. It reached the same replicated
        // verdict from the same sticky error, recognized itself, and leaves
        // the rank loop; the survivors rendezvous in Shrink WITHOUT it (a
        // dead rank can't be required for its own funeral). Its stale
        // communicator stays valid — retired — for any pointer still held.
        return;
      }
      const Status shrunk = elastic.Shrink(rank, {culprit_global});
      MSMOE_CHECK(shrunk.ok()) << "elastic shrink failed at step " << step
                               << ": " << shrunk.ToString();
      comm_now = elastic.comm();
      my = elastic.EpochRank(rank);
      MSMOE_CHECK_GE(my, 0);
      dp_now = elastic.size();
      members_now = elastic.members();
      if (my == 0 && config.profiler != nullptr) {
        config.profiler->NoteEviction();
        // New epoch => new (smaller) world for MFU attribution and the
        // detector's cross-rank pass; partially-reported steps of the old
        // epoch age out of the detector's pending map.
        config.profiler->set_world(dp_now);
      }
      // Re-plan the per-rank geometry for the shrunk world, then restore
      // the snapshot resharded at the new boundaries.
      padded = PaddedGradCount(total_elems, dp_now);
      shard = padded / dp_now;
      flat.assign(static_cast<size_t>(padded), 0.0f);
      restore_snapshot();
      {
        // Cross-rank checksum of the resharded state BEFORE the first
        // degraded step: a reshard bug must surface here as DataLoss, not
        // three steps later as a silently forked loss curve. Params (and
        // for ZeRO the gathered full snapshots) are replicated, so their
        // sums must agree bitwise across all survivors.
        double state_sum = 0.0;
        const std::vector<float> restored = SaveParams(params);
        for (float value : restored) {
          state_sum += static_cast<double>(value);
        }
        if (elastic_zero) {
          for (float value : snapshot_master_full) {
            state_sum += static_cast<double>(value);
          }
          for (float value : snapshot_m_full) {
            state_sum += static_cast<double>(value);
          }
          for (float value : snapshot_v_full) {
            state_sum += static_cast<double>(value);
          }
        }
        const std::vector<double> sums = comm_now->ExchangeScalars(my, state_sum);
        const Status guard = comm_now->GroupStatus();
        MSMOE_CHECK(guard.ok())
            << "post-shrink validation collective failed: " << guard.ToString();
        for (int peer = 0; peer < dp_now; ++peer) {
          if (sums[static_cast<size_t>(peer)] != state_sum) {
            comm_now->Abort(
                DataLoss("resharded state diverged across survivors after the "
                         "shrink (rank " + std::to_string(my) +
                         " disagrees with rank " + std::to_string(peer) + ")"));
          }
        }
        MSMOE_CHECK(comm_now->GroupStatus().ok())
            << "post-shrink reshard validation failed: "
            << comm_now->GroupStatus().ToString();
      }
      if (my == 0) {
        RecoveryEvent event;
        event.failed_step = step;
        event.resumed_step = checkpoint_step;
        event.steps_lost = step - checkpoint_step;
        event.cause = status.ToString();
        event.verdict = decision.verdict;
        event.culprit_rank = culprit_global;
        event.world_after = dp_now;
        curve.recoveries.push_back(event);
      }
      step = checkpoint_step;
    }
  });
  curve.final_world = elastic.size();
  if (config.capture_comm_events) {
    curve.comm_events = elastic.Events();
  }
  if (config.profiler != nullptr) {
    // Write the run artifacts (metrics.jsonl / merged trace / prom snapshot)
    // off the final epoch's telemetry. Finish is idempotent, so a caller
    // aggregating several runs can call it again later; a write failure is
    // an observability loss, not a training failure.
    const Status obs_written =
        config.profiler->Finish(&elastic.comm()->telemetry());
    if (!obs_written.ok()) {
      MSMOE_LOG(Warning) << "profiler artifacts not written: "
                         << obs_written.ToString();
    }
  }
  return curve;
}

}  // namespace msmoe
