file(REMOVE_RECURSE
  "CMakeFiles/bench_scaleup_ratio.dir/bench_scaleup_ratio.cc.o"
  "CMakeFiles/bench_scaleup_ratio.dir/bench_scaleup_ratio.cc.o.d"
  "bench_scaleup_ratio"
  "bench_scaleup_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaleup_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
