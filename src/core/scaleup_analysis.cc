#include "src/core/scaleup_analysis.h"

#include <cmath>

#include "src/base/units.h"

namespace msmoe {
namespace {

constexpr double kElemBytes = 2.0;  // BF16 on the wire

}  // namespace

ScaleupRatio ComputeScaleupRatio(int64_t b, int64_t s, int64_t h, int64_t h_ffn, int64_t k,
                                 int n, double bandwidth_bytes_per_us,
                                 double peak_flops_per_us) {
  ScaleupRatio result;
  const double bsh = static_cast<double>(b) * s * h;
  // Eq 5: dispatch + combine of the k routed copies, each (n-1)/n off-rank.
  result.comm_time_us = kElemBytes * 2.0 * static_cast<double>(k) * bsh *
                        (static_cast<double>(n - 1) / n) / n / bandwidth_bytes_per_us;
  // Eq 6: three grouped GEMMs (FC1, FC3, FC2), 2 FLOPs per MAC.
  result.comp_time_us = 2.0 * 3.0 * static_cast<double>(k) * bsh *
                        static_cast<double>(h_ffn) / n / peak_flops_per_us;
  result.exact_ratio = result.comp_time_us / result.comm_time_us;
  result.approx_ratio = ScaleupRatioApprox(h_ffn, bandwidth_bytes_per_us,
                                           peak_flops_per_us);
  return result;
}

double ScaleupRatioApprox(int64_t h_ffn, double bandwidth_bytes_per_us,
                          double peak_flops_per_us) {
  // Eq 9 with the FLOP factor 2 and wire bytes 2 made explicit:
  // R = (6 k bsh h_ffn / n / peak) / (4 k bsh / n / bw) * (n/(n-1) -> 1)
  //   = 3/2 * h_ffn * bw / peak  (per-element units cancel).
  return 1.5 * static_cast<double>(h_ffn) * bandwidth_bytes_per_us / peak_flops_per_us;
}

int64_t MinEfficientFfnHidden(const GpuSpec& gpu, bool internode) {
  const double bandwidth = GBps(internode ? gpu.nic_gbps : gpu.nvlink_gbps);
  const double peak = Tflops(gpu.peak_tflops);
  // R(h_ffn) = 1  =>  h_ffn = 2/3 * peak / bandwidth.
  return static_cast<int64_t>(std::ceil(peak / bandwidth / 1.5));
}

}  // namespace msmoe
