// Dense row-major float32 tensor.
//
// This is the numeric substrate under the real (non-simulated) training
// path: the MoE transformer modules, the parallel strategies, and the
// convergence experiments all move data through Tensor. Storage is always
// contiguous row-major float32; lower-precision formats (BF16/FP8) exist
// only as conversion steps (src/numerics), mirroring how mixed-precision
// training keeps FP32 master values.
#ifndef MSMOE_SRC_TENSOR_TENSOR_H_
#define MSMOE_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/base/rng.h"

namespace msmoe {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);

  // Factories.
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  // I.i.d. N(mean, stddev) entries, deterministic in rng.
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  // Uniform in [lo, hi).
  static Tensor Uniform(std::vector<int64_t> shape, Rng& rng, float lo, float hi);
  static Tensor FromVector(std::vector<int64_t> shape, std::vector<float> values);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const;
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) {
    MSMOE_CHECK_LT(i, numel_);
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    MSMOE_CHECK_LT(i, numel_);
    return data_[static_cast<size_t>(i)];
  }

  // 2-D / 3-D element access (bounds-checked).
  float& At(int64_t i, int64_t j);
  float At(int64_t i, int64_t j) const;
  float& At(int64_t i, int64_t j, int64_t k);
  float At(int64_t i, int64_t j, int64_t k) const;

  // Reinterprets the shape; the element count must match.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  void Fill(float value);
  void AddInPlace(const Tensor& other);       // this += other (same shape)
  void ScaleInPlace(float factor);            // this *= factor
  void AxpyInPlace(float alpha, const Tensor& other);  // this += alpha * other

  // Returns rows [row_begin, row_end) of a 2-D tensor as a new tensor.
  Tensor SliceRows(int64_t row_begin, int64_t row_end) const;

  double SumAbs() const;
  double MaxAbs() const;
  // Frobenius-norm relative difference vs other (same shape).
  double RelativeL2Diff(const Tensor& other) const;

  std::string ShapeString() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
  int64_t numel_ = 0;
};

// True when shapes match exactly.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace msmoe

#endif  // MSMOE_SRC_TENSOR_TENSOR_H_
