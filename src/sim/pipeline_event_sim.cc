#include "src/sim/pipeline_event_sim.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

#include "src/base/logging.h"
#include "src/sim/engine.h"

namespace msmoe {
namespace {

// A work item is (micro-batch m, pipeline position q, direction).
// Positions 0 .. p*v-1 run chunk-major: position q lives on device q % p and
// belongs to virtual chunk q / p. Forward flows q-1 -> q; backward flows
// q+1 -> q and additionally requires the item's own forward.
struct Item {
  int micro;
  int position;
  bool backward;
};

}  // namespace

PipelineEventResult SimulatePipelineEvents(const PipelineEventConfig& config) {
  const int p = config.pp_stages;
  const int v = config.virtual_stages;
  const int m_count = config.num_microbatches;
  MSMOE_CHECK_GE(p, 1);
  MSMOE_CHECK_GE(v, 1);
  MSMOE_CHECK_GE(m_count, 1);
  const int positions = p * v;

  auto device_of = [&](int position) { return position % p; };
  auto fwd_id = [&](int micro, int position) { return micro * positions + position; };
  const int total_fwd = m_count * positions;
  auto bwd_id = [&](int micro, int position) {
    return total_fwd + micro * positions + position;
  };

  // Dependency counts. Forward (m, q): needs fwd (m, q-1). Backward (m, q):
  // needs bwd (m, q+1) (or is the first backward, needing only fwd (m, last))
  // plus its own forward.
  const int total = 2 * total_fwd;
  std::vector<int> pending(static_cast<size_t>(total), 0);
  std::vector<std::vector<int>> dependents(static_cast<size_t>(total));
  auto add_dep = [&](int before, int after) {
    ++pending[static_cast<size_t>(after)];
    dependents[static_cast<size_t>(before)].push_back(after);
  };
  for (int micro = 0; micro < m_count; ++micro) {
    for (int position = 0; position < positions; ++position) {
      if (position > 0) {
        add_dep(fwd_id(micro, position - 1), fwd_id(micro, position));
      }
      add_dep(fwd_id(micro, position), bwd_id(micro, position));
      if (position + 1 < positions) {
        add_dep(bwd_id(micro, position + 1), bwd_id(micro, position));
      }
    }
  }

  // Per-device ready queues: backward first (1F1B drains activations), then
  // lower micro-batch, then lower position — a greedy interleaved schedule.
  struct Readier {
    bool operator()(const std::pair<int, Item>& a, const std::pair<int, Item>& b) const {
      const Item& x = a.second;
      const Item& y = b.second;
      if (x.backward != y.backward) {
        return !x.backward;  // backward items pop first (priority_queue max-heap)
      }
      if (x.micro != y.micro) {
        return x.micro > y.micro;
      }
      return x.position > y.position;
    }
  };
  using Queue =
      std::priority_queue<std::pair<int, Item>, std::vector<std::pair<int, Item>>, Readier>;
  std::vector<Queue> ready;
  ready.reserve(static_cast<size_t>(p));
  for (int d = 0; d < p; ++d) {
    ready.emplace_back(Readier{});
  }

  SimEngine engine;
  std::vector<bool> device_busy(static_cast<size_t>(p), false);
  PipelineEventResult result;
  result.device_busy_us.assign(static_cast<size_t>(p), 0.0);
  int in_flight_device0 = 0;
  int completed = 0;

  auto item_of = [&](int id) {
    Item item;
    item.backward = id >= total_fwd;
    const int base = item.backward ? id - total_fwd : id;
    item.micro = base / positions;
    item.position = base % positions;
    return item;
  };

  // 1F1B admission rule: a brand-new micro-batch (forward at position 0)
  // may not start while the in-flight limit is reached — this is what
  // bounds activation memory. Plain 1F1B admits p micro-batches; the
  // interleaved schedule's deeper warmup admits ~p per virtual chunk
  // (Megatron's (p-1)*2 + (v-1)*p warmup rule).
  const int in_flight_limit = p * v;
  auto admissible = [&](const Item& item) {
    if (item.backward || item.position != 0) {
      return true;
    }
    return in_flight_device0 < in_flight_limit;
  };

  std::function<void(int)> try_start = [&](int device) {
    if (device_busy[static_cast<size_t>(device)] ||
        ready[static_cast<size_t>(device)].empty()) {
      return;
    }
    // Pop until an admissible item is found; defer the rest.
    std::vector<std::pair<int, Item>> deferred;
    bool found = false;
    int id = -1;
    Item item{};
    while (!ready[static_cast<size_t>(device)].empty()) {
      auto candidate = ready[static_cast<size_t>(device)].top();
      ready[static_cast<size_t>(device)].pop();
      if (admissible(candidate.second)) {
        id = candidate.first;
        item = candidate.second;
        found = true;
        break;
      }
      deferred.push_back(candidate);
    }
    for (const auto& entry : deferred) {
      ready[static_cast<size_t>(device)].push(entry);
    }
    if (!found) {
      return;
    }
    device_busy[static_cast<size_t>(device)] = true;
    const double duration = item.backward ? config.bwd_chunk_us : config.fwd_chunk_us;
    result.device_busy_us[static_cast<size_t>(device)] += duration;
    if (device == 0 && !item.backward && item.position == 0) {
      ++in_flight_device0;
      result.peak_in_flight = std::max(result.peak_in_flight, in_flight_device0);
    }
    if (device == 0 && item.backward && item.position == 0) {
      --in_flight_device0;
    }
    engine.ScheduleAfter(duration, [&, id, item, device] {
      ++completed;
      device_busy[static_cast<size_t>(device)] = false;
      for (int dependent : dependents[static_cast<size_t>(id)]) {
        if (--pending[static_cast<size_t>(dependent)] == 0) {
          const Item next = item_of(dependent);
          const int next_device = device_of(next.position);
          // Crossing a device boundary costs a p2p transfer.
          const double delay = next_device == device ? 0.0 : config.p2p_us;
          engine.ScheduleAfter(delay, [&, dependent, next, next_device] {
            ready[static_cast<size_t>(next_device)].emplace(dependent, next);
            try_start(next_device);
          });
        }
      }
      try_start(device);
      if (item.backward && item.position == 0) {
        try_start(0);  // an in-flight slot was freed
      }
    });
  };

  engine.Schedule(0.0, [&] {
    for (int micro = 0; micro < m_count; ++micro) {
      ready[0].emplace(fwd_id(micro, 0), Item{micro, 0, false});
    }
    try_start(0);
  });
  result.makespan_us = engine.Run();
  MSMOE_CHECK_EQ(completed, total) << "pipeline schedule deadlocked";

  double mean_busy = 0.0;
  for (double busy : result.device_busy_us) {
    mean_busy += busy;
  }
  mean_busy /= p;
  result.bubble_fraction = 1.0 - mean_busy / result.makespan_us;
  return result;
}

}  // namespace msmoe
