// Pipeline-parallel iteration-time model (interleaved 1F1B, §2.2).
//
// Megatron-LM-style interleaved 1F1B with p stages and v virtual stages per
// device: per-device useful work is M * (F + B) for M micro-batches; the
// pipeline bubble is (p - 1) * (F + B) / v; boundary activations travel
// point-to-point each micro-batch (overlappable except at fill/drain); the
// data-parallel gradient sync and the optimizer step close the iteration.
#ifndef MSMOE_SRC_SIM_PIPELINE_SIM_H_
#define MSMOE_SRC_SIM_PIPELINE_SIM_H_

namespace msmoe {

struct PipelineConfig {
  int pp_stages = 1;            // p
  int virtual_stages = 1;       // v (interleaved 1F1B)
  int num_microbatches = 1;     // M
  double fwd_us = 0.0;          // F: forward of one micro-batch on one device
  double bwd_us = 0.0;          // B: backward of one micro-batch on one device
  double p2p_us = 0.0;          // one boundary transfer of one micro-batch
  double grad_sync_us = 0.0;    // DP gradient synchronization (full volume)
  double optimizer_us = 0.0;
  // Fraction of grad_sync hidden under backward computation (Megatron
  // overlaps partially; MegaScale's holistic schedule hides nearly all).
  double grad_sync_overlap = 0.0;
};

struct PipelineResult {
  double iteration_us = 0.0;
  double bubble_us = 0.0;
  double exposed_p2p_us = 0.0;
  double exposed_sync_us = 0.0;
  double bubble_fraction = 0.0;  // bubble / iteration
};

PipelineResult SimulatePipeline(const PipelineConfig& config);

}  // namespace msmoe

#endif  // MSMOE_SRC_SIM_PIPELINE_SIM_H_
