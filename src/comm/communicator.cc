#include "src/comm/communicator.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"
#include "src/base/math_util.h"

namespace msmoe {

const char* CommBackendName(CommBackend backend) {
  switch (backend) {
    case CommBackend::kFlat:
      return "flat";
    case CommBackend::kHierarchical:
      return "hierarchical";
  }
  return "unknown";
}

namespace {

// Analytic total volumes, mirroring CollectiveGroup's accounting (§3).
uint64_t RingBytes(int n, int64_t bytes_per_member) {
  return static_cast<uint64_t>(n - 1) * static_cast<uint64_t>(bytes_per_member);
}

uint64_t A2ABytes(int n, int64_t bytes_per_block) {
  return static_cast<uint64_t>(n - 1) * static_cast<uint64_t>(bytes_per_block);
}

}  // namespace

void Communicator::set_fault_plan(FaultPlan* plan) {
  fault_plan_ = plan;
  op_counts_.assign(static_cast<size_t>(size()), 0);
}

// ---------------------------------------------------------------------------
// FlatCommunicator

uint64_t FlatCommunicator::AllGatherBytes(int member, const void* send, void* recv,
                                          int64_t bytes) {
  group_.AllGather(member, static_cast<const uint8_t*>(send),
                   static_cast<uint8_t*>(recv), bytes);
  return RingBytes(size(), bytes);
}

uint64_t FlatCommunicator::ReduceScatterF32(int member, const float* send, float* recv,
                                            int64_t count) {
  group_.ReduceScatter(member, send, recv, count);
  return RingBytes(size(), count * static_cast<int64_t>(sizeof(float)));
}

uint64_t FlatCommunicator::AllReduceF32(int member, const float* send, float* recv,
                                        int64_t count) {
  group_.AllReduce(member, send, recv, count);
  return 2 * RingBytes(size(), count * static_cast<int64_t>(sizeof(float)));
}

uint64_t FlatCommunicator::BroadcastBytes(int member, int root, void* data,
                                          int64_t bytes) {
  group_.Broadcast(member, root, static_cast<uint8_t*>(data), bytes);
  return static_cast<uint64_t>(size() - 1) * static_cast<uint64_t>(bytes);
}

uint64_t FlatCommunicator::AllToAllBytes(int member, const void* send, void* recv,
                                         int64_t bytes_per_block) {
  group_.AllToAll(member, static_cast<const uint8_t*>(send),
                  static_cast<uint8_t*>(recv), bytes_per_block);
  return A2ABytes(size(), bytes_per_block);
}

uint64_t FlatCommunicator::AllToAllVBytes(int member, const void* send,
                                          const std::vector<int64_t>& send_bytes,
                                          void* recv, std::vector<int64_t>* recv_bytes) {
  return group_.AllToAllV(member, static_cast<const uint8_t*>(send), send_bytes,
                          static_cast<uint8_t*>(recv), recv_bytes);
}

uint64_t FlatCommunicator::ExchangeScalarsImpl(int member, double value,
                                               std::vector<double>* out) {
  *out = group_.ExchangeScalars(member, value);
  return RingBytes(size(), sizeof(double));
}

const char* FlatCommunicator::AlgorithmName(CommOp op) const {
  switch (op) {
    case CommOp::kAllGather:
    case CommOp::kReduceScatter:
    case CommOp::kAllReduce:
      return "ring";
    case CommOp::kAllToAll:
    case CommOp::kAllToAllV:
      return "pairwise";
    case CommOp::kBroadcast:
    case CommOp::kExchangeScalars:
    case CommOp::kBarrier:
      return "direct";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// HierarchicalCommunicator

HierarchicalCommunicator::HierarchicalCommunicator(int nodes, int gpus_per_node)
    : world_(nodes * gpus_per_node), hier_(nodes, gpus_per_node) {
  MSMOE_CHECK_GT(nodes, 0);
  MSMOE_CHECK_GT(gpus_per_node, 0);
}

uint64_t HierarchicalCommunicator::AllGatherBytes(int member, const void* send,
                                                  void* recv, int64_t bytes) {
  world_.AllGather(member, static_cast<const uint8_t*>(send),
                   static_cast<uint8_t*>(recv), bytes);
  return RingBytes(size(), bytes);
}

uint64_t HierarchicalCommunicator::ReduceScatterF32(int member, const float* send,
                                                    float* recv, int64_t count) {
  world_.ReduceScatter(member, send, recv, count);
  return RingBytes(size(), count * static_cast<int64_t>(sizeof(float)));
}

uint64_t HierarchicalCommunicator::AllReduceF32(int member, const float* send,
                                                float* recv, int64_t count) {
  std::memcpy(recv, send, static_cast<size_t>(count) * sizeof(float));
  hier_.AllReduce(member, recv, count);
  // Four-step analytic volume (Fig 5a): per node an intra RS + AG over
  // chunk floats, per local index an inter all-reduce of one chunk.
  const int g = hier_.gpus_per_node();
  const int nodes = hier_.nodes();
  const uint64_t chunk_bytes =
      static_cast<uint64_t>(CeilDiv(count, static_cast<int64_t>(g))) * sizeof(float);
  const uint64_t intra =
      static_cast<uint64_t>(nodes) * 2 * static_cast<uint64_t>(g - 1) * chunk_bytes;
  const uint64_t inter =
      static_cast<uint64_t>(g) * 2 * static_cast<uint64_t>(nodes - 1) * chunk_bytes;
  return intra + inter;
}

uint64_t HierarchicalCommunicator::BroadcastBytes(int member, int root, void* data,
                                                  int64_t bytes) {
  world_.Broadcast(member, root, static_cast<uint8_t*>(data), bytes);
  return static_cast<uint64_t>(size() - 1) * static_cast<uint64_t>(bytes);
}

uint64_t HierarchicalCommunicator::AllToAllBytes(int member, const void* send,
                                                 void* recv, int64_t bytes_per_block) {
  world_.AllToAll(member, static_cast<const uint8_t*>(send),
                  static_cast<uint8_t*>(recv), bytes_per_block);
  return A2ABytes(size(), bytes_per_block);
}

uint64_t HierarchicalCommunicator::AllToAllVBytes(int member, const void* send,
                                                  const std::vector<int64_t>& send_bytes,
                                                  void* recv,
                                                  std::vector<int64_t>* recv_bytes) {
  return world_.AllToAllV(member, static_cast<const uint8_t*>(send), send_bytes,
                          static_cast<uint8_t*>(recv), recv_bytes);
}

uint64_t HierarchicalCommunicator::ExchangeScalarsImpl(int member, double value,
                                                       std::vector<double>* out) {
  *out = world_.ExchangeScalars(member, value);
  return RingBytes(size(), sizeof(double));
}

const char* HierarchicalCommunicator::AlgorithmName(CommOp op) const {
  switch (op) {
    case CommOp::kAllReduce:
      return "hierarchical";
    case CommOp::kAllGather:
    case CommOp::kReduceScatter:
      return "ring";
    case CommOp::kAllToAll:
    case CommOp::kAllToAllV:
      return "pairwise";
    case CommOp::kBroadcast:
    case CommOp::kExchangeScalars:
    case CommOp::kBarrier:
      return "direct";
  }
  return "unknown";
}

std::unique_ptr<Communicator> MakeCommunicator(CommBackend backend, int world_size,
                                               int gpus_per_node) {
  MSMOE_CHECK_GT(world_size, 0);
  if (backend == CommBackend::kHierarchical && gpus_per_node > 1 &&
      world_size % gpus_per_node == 0 && world_size / gpus_per_node > 1) {
    return std::make_unique<HierarchicalCommunicator>(world_size / gpus_per_node,
                                                      gpus_per_node);
  }
  return std::make_unique<FlatCommunicator>(world_size);
}

}  // namespace msmoe
