file(REMOVE_RECURSE
  "libmsmoe_parallel.a"
)
