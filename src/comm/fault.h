// Deterministic fault injection for the thread-rank collective substrate.
//
// Production MoE training survives slow ranks, dead ranks, and corrupted
// payloads; this reproduction needs a way to CAUSE those conditions on
// demand, reproducibly, to test the recovery machinery (cancellable
// barriers, straggler detection, checkpoint restart). A FaultPlan is a
// seeded schedule of faults keyed on (rank, per-rank collective-op index):
//
//   kSlowRank:  inject a fixed wall-clock delay before each collective in an
//               op-index window — the straggler the health detector must
//               flag (src/comm/health).
//   kCrashAtOp: the rank "dies" at its Nth collective: it never enters the
//               op and cancels the group, so every peer observes
//               Status(kAborted) instead of hanging. One-shot — after a
//               recovery the respawned rank does not re-crash.
//   kBitFlip:   flips one seeded-pseudorandom bit in the rank's RECEIVE
//               buffer after the op completes — the silent payload
//               corruption that checksum guards must catch. One-shot.
//
// The plan is consulted by the Communicator layer (communicator.h) via
// OnCollective, called by each rank thread with its own monotonically
// increasing op index; the plan itself is thread-safe and never blocks.
#ifndef MSMOE_SRC_COMM_FAULT_H_
#define MSMOE_SRC_COMM_FAULT_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace msmoe {

enum class FaultKind { kSlowRank, kCrashAtOp, kBitFlip };

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kSlowRank;
  int rank = 0;  // target rank
  // kCrashAtOp / kBitFlip: the exact per-rank op index that triggers.
  // kSlowRank: first op index of the slow window.
  int64_t at_op = 0;
  // kSlowRank: injected delay per collective and window length in ops
  // (-1 = until the end of the run).
  double delay_us = 0.0;
  int64_t num_ops = -1;
};

// What the Communicator should do to the current collective on this rank.
struct FaultAction {
  bool crash = false;       // skip the op and cancel the group
  double delay_us = 0.0;    // sleep this long before entering the op
  bool corrupt = false;     // flip a bit in the receive buffer afterwards
  uint64_t corrupt_seed = 0;  // seed for the (deterministic) bit choice
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 0) : seed_(seed) {}

  void AddSlowRank(int rank, double delay_us, int64_t from_op = 0,
                   int64_t num_ops = -1);
  void AddCrash(int rank, int64_t at_op);
  void AddBitFlip(int rank, int64_t at_op);

  // Resolves the action for rank's op_index-th collective. Thread-safe;
  // one-shot faults (crash, bit flip) are marked fired and never returned
  // again — a recovered run replays the ops without re-injecting them.
  FaultAction OnCollective(int rank, int64_t op_index);

  // Fault bookkeeping (for tests and benches).
  int64_t crashes_fired() const;
  int64_t bit_flips_fired() const;
  int64_t delays_fired() const;

 private:
  mutable std::mutex mu_;
  std::vector<FaultSpec> specs_;
  std::vector<bool> fired_;
  int64_t crashes_fired_ = 0;
  int64_t bit_flips_fired_ = 0;
  int64_t delays_fired_ = 0;
  uint64_t seed_;
};

// Flips one pseudorandom bit of buffer[0..bytes); which bit is a stable
// function of `seed`. No-op on an empty buffer.
void FlipOneBit(void* buffer, int64_t bytes, uint64_t seed);

}  // namespace msmoe

#endif  // MSMOE_SRC_COMM_FAULT_H_
