// MoE model configurations (Table 2 of the paper) and the analytic
// parameter / FLOP / activation accounting used by both the simulator and
// the benchmark harnesses.
//
// Symbols follow Table 1: b micro-batch, s sequence length, h hidden size,
// n model-parallel size, m = #query heads / #kv heads, k = top-k.
#ifndef MSMOE_SRC_MODEL_CONFIG_H_
#define MSMOE_SRC_MODEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace msmoe {

struct ModelConfig {
  std::string name;
  int64_t num_layers = 0;
  int64_t hidden = 0;        // h
  int64_t num_heads = 0;     // query heads
  int64_t gqa_ratio = 1;     // m = query heads per kv head
  int64_t ffn_hidden = 0;    // h_ffn, per expert
  int64_t num_experts = 0;
  int64_t top_k = 1;
  int64_t vocab = 65536;
  int64_t seq_len = 8192;

  int64_t head_dim() const { return hidden / num_heads; }
  int64_t kv_heads() const { return num_heads / gqa_ratio; }
  // Width of the fused QKV projection output: h * (1 + 2/m).
  int64_t qkv_out_dim() const { return hidden + 2 * kv_heads() * head_dim(); }

  // --- Parameter counts (per layer unless noted) ---
  int64_t AttentionParams() const;        // Wqkv + Wo + 2 RMSNorm gains
  int64_t RouterParams() const;           // h * num_experts
  int64_t ExpertParams() const;           // all experts: 3 * h * h_ffn each
  int64_t LayerParams() const;
  int64_t TotalParams() const;            // embeddings + layers + head
  int64_t ActivatedParamsPerToken() const;  // dense-equivalent active params

  // --- FLOPs per token, forward pass, one layer ---
  // GEMM-only accounting (what the paper's MFU counts: FlashAttention and
  // GEMMs), model FLOPs = 3x forward for fwd+bwd.
  int64_t AttentionGemmFlopsPerToken() const;   // qkv + out projections
  int64_t AttentionCoreFlopsPerToken() const;   // flash attention (causal)
  int64_t ExpertFlopsPerToken() const;          // 3 grouped GEMMs * top_k
  int64_t LayerFlopsPerToken() const;           // fwd only
  int64_t ModelFlopsPerToken() const;           // fwd+bwd, all layers + head

  // --- Activation bytes of one layer (Appendix A.2), BF16 activations ---
  // Full set: (2n + 2k + 3kf + 12 + 5/m) * b*s*h / n elements.
  double ActivationBytesFull(int64_t batch_tokens, int64_t mp_size) const;
  // With selective rematerialization: (2kf + 4 + 2/m) * b*s*h / n.
  double ActivationBytesWithSar(int64_t batch_tokens, int64_t mp_size) const;
};

// Table 2 names: "Internal-352B", "Mixtral-8x7B", "Mixtral-8x22B",
// "Hunyuan-Large", "Phi-3.5-MoE", "DeepSeekMoE". Also "Mixtral-8x2B"
// (Fig 16) and "Internal-7B" / "Internal-35B" (Figs 17/18 stand-ins).
Result<ModelConfig> ModelConfigByName(const std::string& name);
const std::vector<ModelConfig>& EvaluationModels();  // the six Table 2 rows

// Small config for numeric tests and convergence runs on CPU.
ModelConfig TinyMoeConfig(int64_t num_experts = 8, int64_t top_k = 2);

}  // namespace msmoe

#endif  // MSMOE_SRC_MODEL_CONFIG_H_
