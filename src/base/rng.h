// Deterministic pseudo-random number generation.
//
// Training runs, tests, and workload generators must be reproducible across
// machines, so all randomness flows through this SplitMix64-based generator
// rather than std::mt19937 (whose distributions are not portable).
#ifndef MSMOE_SRC_BASE_RNG_H_
#define MSMOE_SRC_BASE_RNG_H_

#include <cstdint>

namespace msmoe {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value (SplitMix64).
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextUniform();

  // Uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t NextIndex(uint64_t n);

  // Standard normal via Box-Muller (pairs cached).
  double NextGaussian();

  // Normal with the given mean and stddev.
  double NextGaussian(double mean, double stddev);

  // Derives an independent generator; stable function of (this seed, salt).
  Rng Fork(uint64_t salt) const;

 private:
  uint64_t state_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace msmoe

#endif  // MSMOE_SRC_BASE_RNG_H_
