# Empty dependencies file for train_tiny_moe.
# This may be replaced when dependencies are built.
