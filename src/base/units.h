// Unit helpers for bytes, time, and rates used throughout the simulator.
//
// Conventions:
//   - All simulated time is in microseconds (double).
//   - Bandwidths are bytes per microsecond internally; constructors accept
//     GB/s (decimal gigabytes, matching vendor NVLink/NIC datasheets).
//   - Compute rates are FLOPs per microsecond; constructors accept TFLOPS.
#ifndef MSMOE_SRC_BASE_UNITS_H_
#define MSMOE_SRC_BASE_UNITS_H_

#include <cstdint>

namespace msmoe {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr double kGB = 1e9;   // decimal, for bandwidth datasheets
inline constexpr double kTB = 1e12;

inline constexpr double kUsPerSecond = 1e6;
inline constexpr double kUsPerMs = 1e3;

// GB/s -> bytes/us.
constexpr double GBps(double gbps) { return gbps * kGB / kUsPerSecond; }

// TFLOPS -> FLOPs/us.
constexpr double Tflops(double tflops) { return tflops * 1e12 / kUsPerSecond; }

// bytes/us -> GB/s (for reporting).
constexpr double ToGBps(double bytes_per_us) { return bytes_per_us * kUsPerSecond / kGB; }

// us -> seconds / milliseconds (for reporting).
constexpr double UsToSeconds(double us) { return us / kUsPerSecond; }
constexpr double UsToMs(double us) { return us / kUsPerMs; }
constexpr double SecondsToUs(double s) { return s * kUsPerSecond; }
constexpr double MsToUs(double ms) { return ms * kUsPerMs; }

}  // namespace msmoe

#endif  // MSMOE_SRC_BASE_UNITS_H_
