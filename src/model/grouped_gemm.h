// Grouped GEMM: one matmul per expert over contiguous row ranges of a
// dispatched token tensor (the GroupedGEMM operator of the paper).
//
// Load balancing: skewed routing concentrates rows on a few hot experts, so
// distributing whole experts across the worker pool serializes on the
// hottest one. Instead the non-empty (expert × row-panel) tiles are
// flattened into a single work queue and that queue is what ParallelFor
// shards — a hot expert contributes many tiles and spreads over the pool.
// Row-panel splits are bitwise safe (each output row's k-accumulation is
// untouched); the one reduction over rows — dW = xᵀ @ dy in the backward —
// stays a whole-expert task inside the same queue.
#ifndef MSMOE_SRC_MODEL_GROUPED_GEMM_H_
#define MSMOE_SRC_MODEL_GROUPED_GEMM_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace msmoe {

// x is [total_rows, in_dim]; rows [offsets[e], offsets[e+1]) belong to expert
// e and are multiplied by weights[e] ([in_dim, out_dim]). Returns
// [total_rows, out_dim]. The span form lets callers pass a window of a
// larger per-expert weight array (e.g. rank-local experts) without copying.
Tensor GroupedGemm(const Tensor& x, const std::vector<int64_t>& offsets,
                   const Tensor* weights, int64_t num_experts);
Tensor GroupedGemm(const Tensor& x, const std::vector<int64_t>& offsets,
                   const std::vector<Tensor>& weights);

struct GroupedGemmGrads {
  Tensor dx;
  std::vector<Tensor> dweights;
};

GroupedGemmGrads GroupedGemmBackward(const Tensor& dy, const Tensor& x,
                                     const std::vector<int64_t>& offsets,
                                     const Tensor* weights, int64_t num_experts);
GroupedGemmGrads GroupedGemmBackward(const Tensor& dy, const Tensor& x,
                                     const std::vector<int64_t>& offsets,
                                     const std::vector<Tensor>& weights);

}  // namespace msmoe

#endif  // MSMOE_SRC_MODEL_GROUPED_GEMM_H_
