file(REMOVE_RECURSE
  "CMakeFiles/msmoe_model.dir/attention.cc.o"
  "CMakeFiles/msmoe_model.dir/attention.cc.o.d"
  "CMakeFiles/msmoe_model.dir/checkpoint.cc.o"
  "CMakeFiles/msmoe_model.dir/checkpoint.cc.o.d"
  "CMakeFiles/msmoe_model.dir/config.cc.o"
  "CMakeFiles/msmoe_model.dir/config.cc.o.d"
  "CMakeFiles/msmoe_model.dir/flat_adam.cc.o"
  "CMakeFiles/msmoe_model.dir/flat_adam.cc.o.d"
  "CMakeFiles/msmoe_model.dir/grouped_gemm.cc.o"
  "CMakeFiles/msmoe_model.dir/grouped_gemm.cc.o.d"
  "CMakeFiles/msmoe_model.dir/lm.cc.o"
  "CMakeFiles/msmoe_model.dir/lm.cc.o.d"
  "CMakeFiles/msmoe_model.dir/moe_layer.cc.o"
  "CMakeFiles/msmoe_model.dir/moe_layer.cc.o.d"
  "CMakeFiles/msmoe_model.dir/optimizer.cc.o"
  "CMakeFiles/msmoe_model.dir/optimizer.cc.o.d"
  "CMakeFiles/msmoe_model.dir/router.cc.o"
  "CMakeFiles/msmoe_model.dir/router.cc.o.d"
  "libmsmoe_model.a"
  "libmsmoe_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msmoe_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
