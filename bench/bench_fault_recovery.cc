// Fault injection + recovery: what a crash, a flipped bit, and a slow rank
// cost a synchronous training job, and proof that recovery is
// loss-transparent (the recovered curve is bit-identical to a fault-free
// run — the property the production Fig 19 restarts rely on).
//
// Four experiments:
//   1. live recovery: crash one rank mid-collective via FaultPlan; the
//      cancellable collectives surface the failure on every peer, the
//      trainer rolls back to the last checkpoint and replays.
//   2. live corruption: flip one payload bit in a synced gradient; the
//      cross-rank checksum guard catches the divergence and recovery keeps
//      the curve exact.
//   3. straggler: delay one rank's collective entries; the health detector
//      flags it from telemetry, and the discrete-event simulator quantifies
//      the slowdown a degraded link / dead rank costs at scale.
//   4. elastic eviction: a rank fails RECURRINGLY; the recovery policy
//      promotes it to permanent, survivors shrink W -> W-1, and the
//      degraded run's curve is bit-identical to a fresh W-1 run. The
//      measured degraded throughput is cross-checked against the fault
//      simulator's elastic prediction.
// Results land in BENCH_fault.json. With --check, the elastic invariants
// gate the exit code (for tools/check.sh).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/comm/fault.h"
#include "src/comm/health.h"
#include "src/core/trainer.h"
#include "src/sim/fault_sim.h"

namespace msmoe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

NumericTrainConfig BaseConfig() {
  NumericTrainConfig config;
  config.model = TinyMoeConfig(8, 2);
  config.model.num_layers = 2;
  config.model.vocab = 32;
  config.model.seq_len = 16;
  config.router.num_experts = 8;
  config.router.top_k = 2;
  config.router.aux_loss_coeff = 0.01;
  config.dp_size = 4;
  config.batch_per_rank = 2;
  config.steps = 40;
  config.adam.lr = 3e-3;
  config.checkpoint_every = 10;
  config.collective_timeout_ms = 10000.0;
  return config;
}

bool BitIdentical(const TrainCurve& a, const TrainCurve& b) {
  if (a.loss.size() != b.loss.size()) {
    return false;
  }
  for (size_t i = 0; i < a.loss.size(); ++i) {
    if (a.loss[i] != b.loss[i]) {
      return false;
    }
  }
  return true;
}

void Run(bool check, bool& check_failed) {
  PrintHeader("Fault injection & recovery",
              "crash / bit-flip / straggler faults against the fault-tolerant "
              "trainer; recovery cost and loss transparency");
  PrintPaperNote(
      "production runs sustain restarts with a seamless loss curve (Fig 19); "
      "a synchronous job moves at the pace of its slowest member");

  // --- Baseline: fault-free run -------------------------------------------
  const NumericTrainConfig base = BaseConfig();
  auto t0 = std::chrono::steady_clock::now();
  const TrainCurve clean = TrainLm(base);
  const double clean_ms = MillisSince(t0);

  // --- Experiment 1: crash one rank mid-collective ------------------------
  FaultPlan crash_plan(/*seed=*/7);
  crash_plan.AddCrash(/*rank=*/2, /*at_op=*/61);
  NumericTrainConfig crashed_config = base;
  crashed_config.fault_plan = &crash_plan;
  t0 = std::chrono::steady_clock::now();
  const TrainCurve crashed = TrainLm(crashed_config);
  const double crashed_ms = MillisSince(t0);
  const bool crash_identical = BitIdentical(clean, crashed);
  int64_t crash_steps_lost = 0;
  for (const RecoveryEvent& event : crashed.recoveries) {
    crash_steps_lost += event.steps_lost;
  }

  // --- Experiment 2: flip one payload bit, checksum guard catches it ------
  // The flip targets an all-gather receive buffer: that corrupts exactly one
  // replica, which the cross-rank checksum catches. (A flip on a
  // reduce-scatter output would be re-broadcast by the following all-gather
  // and corrupt every replica identically — divergence guards cannot see
  // consistent corruption.)
  FaultPlan flip_plan(/*seed=*/11);
  flip_plan.AddBitFlip(/*rank=*/1, /*at_op=*/41);
  NumericTrainConfig flipped_config = base;
  flipped_config.fault_plan = &flip_plan;
  flipped_config.guard_grad_checksum = true;
  const TrainCurve flipped = TrainLm(flipped_config);
  const bool flip_identical = BitIdentical(clean, flipped);

  // --- Experiment 3: straggler rank, detected from telemetry --------------
  // The injected delay must dominate natural compute skew between rank
  // threads (ms-scale on an oversubscribed host), so only rank 3 trips the
  // threshold.
  FaultPlan slow_plan(/*seed=*/13);
  slow_plan.AddSlowRank(/*rank=*/3, /*delay_us=*/10000.0);
  NumericTrainConfig slow_config = base;
  slow_config.steps = 12;
  slow_config.fault_plan = &slow_plan;
  slow_config.capture_comm_events = true;
  const TrainCurve slowed = TrainLm(slow_config);
  StragglerConfig detector;
  detector.threshold_us = 5000.0;
  const StragglerReport health = DetectStragglers(slowed.comm_events, detector);

  // --- Simulated fault cost at scale --------------------------------------
  FaultSimConfig sim;
  sim.ranks = 64;
  sim.iterations = 200;
  sim.compute_us = 800.0;
  sim.comm_us = 200.0;
  sim.checkpoint_every = 20;
  SimFaultEvent fail;
  fail.type = SimFaultType::kFailRank;
  fail.rank = 17;
  fail.at_us = 150 * (sim.compute_us + sim.comm_us) + 1.0;
  sim.events = {fail};
  const FaultSimResult sim_fail = SimulateFaultyRun(sim);

  SimFaultEvent degrade;
  degrade.type = SimFaultType::kDegradeLink;
  degrade.rank = 17;
  degrade.at_us = 0.0;
  degrade.bandwidth_factor = 0.25;
  sim.events = {degrade};
  const FaultSimResult sim_slow = SimulateFaultyRun(sim);

  // --- Experiment 4: recurring fault -> permanent eviction, shrink to W-1 --
  // With no periodic snapshots the shrunk survivors replay from step 0, so
  // the whole degraded curve must be bitwise a fresh dp-1 run — the
  // strongest form of the "training continues transparently" claim.
  FaultPlan evict_plan(/*seed=*/17);
  evict_plan.AddCrash(/*rank=*/2, /*at_op=*/20);
  evict_plan.AddCrash(/*rank=*/2, /*at_op=*/21);
  evict_plan.AddCrash(/*rank=*/2, /*at_op=*/22);
  NumericTrainConfig elastic_config = base;
  elastic_config.checkpoint_every = 0;
  elastic_config.elastic = true;
  elastic_config.fault_plan = &evict_plan;
  t0 = std::chrono::steady_clock::now();
  const TrainCurve shrunk = TrainLm(elastic_config);
  const double shrunk_ms = MillisSince(t0);

  NumericTrainConfig small_config = base;
  small_config.checkpoint_every = 0;
  small_config.dp_size = base.dp_size - 1;
  t0 = std::chrono::steady_clock::now();
  const TrainCurve fresh_small = TrainLm(small_config);
  const double small_ms = MillisSince(t0);

  int64_t permanent_recoveries = 0;
  for (const RecoveryEvent& event : shrunk.recoveries) {
    if (event.verdict == FaultVerdict::kPermanent) {
      ++permanent_recoveries;
    }
  }
  const bool elastic_identical = BitIdentical(fresh_small, shrunk);
  // Useful throughput (samples/s) of the degraded world relative to the
  // full one: (W-1)/W ranks each stepping at the smaller world's pace.
  const double measured_throughput_factor =
      shrunk_ms > 0.0 ? (static_cast<double>(small_config.dp_size) / base.dp_size) *
                            (clean_ms / small_ms)
                      : 0.0;

  FaultSimConfig elastic_sim = sim;
  SimFaultEvent elastic_fail = fail;
  elastic_sim.events = {elastic_fail};
  elastic_sim.elastic = true;
  elastic_sim.reshard_us = 1000.0;
  const FaultSimResult sim_elastic = SimulateFaultyRun(elastic_sim);

  // --- Report --------------------------------------------------------------
  TablePrinter table({"Experiment", "Recoveries", "Steps lost",
                      "Loss bit-identical", "Wall ms"});
  table.AddRow({"fault-free baseline", "0", "0", "-", TablePrinter::Fmt(clean_ms, 1)});
  table.AddRow({"crash rank 2 mid-collective",
                TablePrinter::Fmt(static_cast<int64_t>(crashed.recoveries.size())),
                TablePrinter::Fmt(crash_steps_lost), crash_identical ? "yes" : "NO",
                TablePrinter::Fmt(crashed_ms, 1)});
  table.AddRow({"bit-flip rank 1 (checksum guard)",
                TablePrinter::Fmt(static_cast<int64_t>(flipped.recoveries.size())),
                TablePrinter::Fmt(flipped.recoveries.empty()
                                      ? int64_t{0}
                                      : flipped.recoveries.front().steps_lost),
                flip_identical ? "yes" : "NO", "-"});
  table.AddRow({"recurring crash -> evict rank 2 (elastic)",
                TablePrinter::Fmt(static_cast<int64_t>(shrunk.recoveries.size())),
                "-", elastic_identical ? "yes (vs fresh W-1)" : "NO",
                TablePrinter::Fmt(shrunk_ms, 1)});
  table.Print("Live fault-tolerant training:");

  for (const RecoveryEvent& event : crashed.recoveries) {
    std::printf("crash recovery: failed step %lld -> resumed step %lld (%s)\n",
                static_cast<long long>(event.failed_step),
                static_cast<long long>(event.resumed_step), event.cause.c_str());
  }
  for (const RankHealth& rank : health.ranks) {
    if (rank.straggler) {
      std::printf("straggler detected: rank %d, mean entry lag %.1f us over %lld "
                  "collectives (threshold %.1f us)\n",
                  rank.rank, rank.mean_entry_lag_us,
                  static_cast<long long>(rank.collectives), health.threshold_us);
    }
  }
  std::printf("simulated rank death: %.2fx slowdown (%.1f ms stalled, %lld "
              "iterations replayed)\n",
              sim_fail.slowdown, sim_fail.stall_us / 1000.0,
              static_cast<long long>(sim_fail.iterations_replayed));
  std::printf("simulated 4x-degraded link: %.2fx slowdown (iteration %.0f us -> "
              "%.0f us)\n",
              sim_slow.slowdown, sim.compute_us + sim.comm_us, sim_slow.iteration_us);
  std::printf("elastic eviction: world %d -> %d after %lld permanent verdict(s); "
              "degraded throughput %.2fx of full (sim predicts %.2fx at %d ranks)\n\n",
              base.dp_size, shrunk.final_world,
              static_cast<long long>(permanent_recoveries),
              measured_throughput_factor, sim_elastic.throughput_factor,
              elastic_sim.ranks);

  const RankHealth* flagged = nullptr;
  for (const RankHealth& rank : health.ranks) {
    if (rank.straggler && (flagged == nullptr ||
                           rank.mean_entry_lag_us > flagged->mean_entry_lag_us)) {
      flagged = &rank;
    }
  }
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> json(
      std::fopen("BENCH_fault.json", "wb"), &std::fclose);
  if (json != nullptr) {
    std::fprintf(json.get(), "{\n");
    std::fprintf(json.get(), "  \"baseline_wall_ms\": %.3f,\n", clean_ms);
    std::fprintf(json.get(), "  \"crash\": {\"recoveries\": %zu, \"steps_lost\": %lld, "
                             "\"wall_ms\": %.3f, \"recovery_overhead_ms\": %.3f, "
                             "\"loss_bit_identical\": %s},\n",
                 crashed.recoveries.size(), static_cast<long long>(crash_steps_lost),
                 crashed_ms, crashed_ms - clean_ms, crash_identical ? "true" : "false");
    std::fprintf(json.get(), "  \"bit_flip\": {\"recoveries\": %zu, "
                             "\"loss_bit_identical\": %s},\n",
                 flipped.recoveries.size(), flip_identical ? "true" : "false");
    std::fprintf(json.get(), "  \"straggler\": {\"flagged_rank\": %d, "
                             "\"mean_entry_lag_us\": %.3f, \"threshold_us\": %.3f},\n",
                 flagged != nullptr ? flagged->rank : -1,
                 flagged != nullptr ? flagged->mean_entry_lag_us : 0.0,
                 health.threshold_us);
    std::fprintf(json.get(), "  \"sim_rank_death\": {\"slowdown\": %.4f, "
                             "\"stall_us\": %.1f, \"iterations_replayed\": %lld},\n",
                 sim_fail.slowdown, sim_fail.stall_us,
                 static_cast<long long>(sim_fail.iterations_replayed));
    std::fprintf(json.get(), "  \"sim_degraded_link\": {\"slowdown\": %.4f, "
                             "\"iteration_us\": %.1f},\n",
                 sim_slow.slowdown, sim_slow.iteration_us);
    std::fprintf(json.get(),
                 "  \"elastic\": {\"recoveries\": %zu, \"permanent_recoveries\": "
                 "%lld, \"final_world\": %d, \"loss_bit_identical_vs_fresh_small\": "
                 "%s, \"measured_throughput_factor\": %.4f, \"wall_ms\": %.3f},\n",
                 shrunk.recoveries.size(), static_cast<long long>(permanent_recoveries),
                 shrunk.final_world, elastic_identical ? "true" : "false",
                 measured_throughput_factor, shrunk_ms);
    std::fprintf(json.get(),
                 "  \"sim_elastic_shrink\": {\"final_ranks\": %d, "
                 "\"throughput_factor\": %.4f, \"stall_us\": %.1f, "
                 "\"slowdown\": %.4f}\n",
                 sim_elastic.final_ranks, sim_elastic.throughput_factor,
                 sim_elastic.stall_us, sim_elastic.slowdown);
    std::fprintf(json.get(), "}\n");
    std::printf("wrote BENCH_fault.json\n");
  }

  // --check: gate the elastic invariants (and the existing loss-transparency
  // ones) so CI fails loudly on a regression instead of shipping a wrong
  // BENCH_fault.json.
  if (check) {
    bool ok = true;
    auto require = [&ok](bool condition, const char* what) {
      if (!condition) {
        std::printf("CHECK FAILED: %s\n", what);
        ok = false;
      }
    };
    require(crash_identical, "crash recovery must keep the loss bit-identical");
    require(flip_identical, "bit-flip recovery must keep the loss bit-identical");
    require(shrunk.final_world == base.dp_size - 1,
            "elastic run must end on W-1 survivors");
    require(permanent_recoveries >= 1,
            "recurring crash must yield a permanent verdict");
    require(elastic_identical,
            "post-shrink curve must be bit-identical to a fresh W-1 run");
    // Loose cross-check: wall-clock noise on an oversubscribed host is
    // large, so only tie the measured factor to the sim's order of
    // magnitude (both must say "slightly below (W-1)/W of full throughput").
    require(measured_throughput_factor > 0.0 &&
                sim_elastic.throughput_factor > 0.0 &&
                measured_throughput_factor / sim_elastic.throughput_factor > 0.25 &&
                measured_throughput_factor / sim_elastic.throughput_factor < 4.0,
            "measured degraded throughput must be within 4x of the sim's "
            "elastic prediction");
    std::printf(ok ? "CHECK PASSED\n" : "CHECK FAILED\n");
    check_failed = !ok;
  }
}

}  // namespace
}  // namespace msmoe

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    }
  }
  bool check_failed = false;
  msmoe::Run(check, check_failed);
  return check_failed ? 1 : 0;
}
