// Unit tests for the runtime task-graph executor (src/core/exec_graph.h):
// stream FIFO semantics, cross-stream event waits, schedule validation,
// fault/exception propagation, the sim mirror, and the record-time Start*
// convention driving real async_comm handles across rank threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/comm/communicator.h"
#include "src/core/exec_graph.h"
#include "src/parallel/fused_ops.h"
#include "src/sim/graph.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

TEST(ExecGraphTest, ComputeOpsRunInScheduleOrderOnCallerThread) {
  const std::thread::id caller = std::this_thread::get_id();
  ExecGraph graph;
  std::vector<int> ran;
  std::vector<std::thread::id> tids;
  for (int i = 0; i < 5; ++i) {
    graph.AddCompute("c" + std::to_string(i), [&, i] {
      ran.push_back(i);
      tids.push_back(std::this_thread::get_id());
      return Status::Ok();
    });
  }
  ExecResult declared = graph.Execute(2);
  ASSERT_TRUE(declared.status.ok()) << declared.status.ToString();
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3, 4}));
  for (const std::thread::id& tid : tids) {
    EXPECT_EQ(tid, caller) << "compute op escaped the calling thread";
  }

  // A permuted (dependency-free) schedule runs in exactly that order.
  ran.clear();
  const std::vector<int> order = {4, 2, 0, 3, 1};
  const std::vector<int> streams(5, 0);
  ExecResult permuted = graph.ExecuteSchedule(order, streams, 2);
  ASSERT_TRUE(permuted.status.ok()) << permuted.status.ToString();
  EXPECT_EQ(ran, order);
  EXPECT_EQ(permuted.order, order);
}

TEST(ExecGraphTest, CrossStreamDepIsAnEventWait) {
  ExecGraph graph;
  std::atomic<bool> produced{false};
  const int producer = graph.AddComm("produce", /*stream=*/1, [&] {
    produced.store(true);
    return Status::Ok();
  });
  bool consumer_saw = false;
  graph.AddCompute(
      "consume",
      [&] {
        consumer_saw = produced.load();
        return Status::Ok();
      },
      {producer});
  ExecResult result = graph.Execute(2);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(consumer_saw) << "dep ran after its dependent";
  // Timings respect the event: the consumer starts no earlier than the
  // producer finished.
  EXPECT_GE(result.timings[1].start_us, result.timings[0].end_us);
}

TEST(ExecGraphTest, NonOkStatusAbortsGraphAndSkipsDependents) {
  ExecGraph graph;
  bool later_ran = false;
  bool dependent_ran = false;
  graph.AddCompute("ok", [] { return Status::Ok(); });
  const int bad = graph.AddCompute("bad", [] { return Internal("injected"); });
  graph.AddCompute(
      "dependent",
      [&] {
        dependent_ran = true;
        return Status::Ok();
      },
      {bad});
  graph.AddComm("later", /*stream=*/1, [&] {
    later_ran = true;
    return Status::Ok();
  });
  ExecResult result = graph.Execute(2);
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_FALSE(dependent_ran);
  // "later" has no dep on the failed op; whether it ran depends on the
  // abort race, but the graph must not hang and the eventual status is the
  // sticky FIRST error.
  (void)later_ran;
}

TEST(ExecGraphTest, ThrownExceptionRethrownOnCallerAfterDrain) {
  ExecGraph graph;
  bool dependent_ran = false;
  const int bad = graph.AddCompute("throws", []() -> Status {
    throw std::runtime_error("closure exploded");
  });
  graph.AddCompute(
      "dependent",
      [&] {
        dependent_ran = true;
        return Status::Ok();
      },
      {bad});
  graph.AddComm("comm", /*stream=*/1, [] { return Status::Ok(); });
  EXPECT_THROW(graph.Execute(2), std::runtime_error);
  EXPECT_FALSE(dependent_ran);
}

TEST(ExecGraphTest, InvalidSchedulesRejectedWithoutRunning) {
  ExecGraph graph;
  bool ran = false;
  const int first = graph.AddCompute("a", [&] {
    ran = true;
    return Status::Ok();
  });
  graph.AddCompute(
      "b", [&] { return Status::Ok(); }, {first});

  // Dependency after dependent.
  ExecResult flipped = graph.ExecuteSchedule({1, 0}, {0, 0}, 2);
  EXPECT_EQ(flipped.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ran);

  // Not a permutation.
  ExecResult dup = graph.ExecuteSchedule({0, 0}, {0, 0}, 2);
  EXPECT_EQ(dup.status.code(), StatusCode::kInvalidArgument);

  // Compute op off stream 0.
  ExecResult moved = graph.ExecuteSchedule({0, 1}, {0, 1}, 2);
  EXPECT_EQ(moved.status.code(), StatusCode::kInvalidArgument);

  // Stream out of range.
  ExecGraph comm_graph;
  comm_graph.AddComm("c", /*stream=*/1, [] { return Status::Ok(); });
  ExecResult range = comm_graph.ExecuteSchedule({0}, {5}, 2);
  EXPECT_EQ(range.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ran);
}

TEST(ExecGraphTest, RandomSchedulesAreAlwaysValid) {
  // Random layered DAGs: every RandomSchedule draw must pass validation.
  Rng shape_rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    ExecGraph graph;
    const int count = 3 + static_cast<int>(shape_rng.NextIndex(12));
    for (int i = 0; i < count; ++i) {
      std::vector<int> deps;
      for (int d = 0; d < i; ++d) {
        if (shape_rng.NextUniform() < 0.3) {
          deps.push_back(d);
        }
      }
      if (shape_rng.NextUniform() < 0.5) {
        graph.AddComm("comm" + std::to_string(i), /*stream=*/1,
                      [] { return Status::Ok(); }, std::move(deps));
      } else {
        graph.AddCompute("comp" + std::to_string(i), [] { return Status::Ok(); },
                         std::move(deps));
      }
    }
    for (uint64_t seed = 0; seed < 8; ++seed) {
      std::vector<int> order;
      std::vector<int> streams;
      RandomSchedule(graph.ops(), seed, /*num_streams=*/3, &order, &streams);
      const Status valid = ValidateSchedule(graph.ops(), order, streams, 3);
      EXPECT_TRUE(valid.ok()) << "trial " << trial << " seed " << seed << ": "
                              << valid.ToString();
      // And the schedule actually runs to completion.
      ExecResult result = graph.ExecuteSchedule(order, streams, 3);
      EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    }
  }
}

TEST(ExecGraphTest, ToSimOpsMirrorsGraphAndFeedsTheSimulator) {
  ExecGraph graph;
  const int a = graph.AddCompute("gemm_a", [] { return Status::Ok(); });
  const int b = graph.AddComm("xfer", /*stream=*/1, [] { return Status::Ok(); }, {a});
  graph.AddCompute(
      "gemm_b", [] { return Status::Ok(); }, {b});
  graph.SetCost(a, 100.0);
  graph.SetCost(b, 50.0);
  graph.SetCost(2, 25.0);

  std::vector<SimOp> sim_ops = graph.ToSimOps();
  ASSERT_EQ(sim_ops.size(), 3u);
  EXPECT_EQ(sim_ops[0].name, "gemm_a");
  EXPECT_FALSE(sim_ops[0].is_comm);
  EXPECT_TRUE(sim_ops[1].is_comm);
  EXPECT_EQ(sim_ops[1].stream, 1);
  EXPECT_EQ(sim_ops[2].deps, (std::vector<int>{1}));
  GraphResult predicted = ExecuteGraph(sim_ops, 2);
  EXPECT_DOUBLE_EQ(predicted.makespan, 175.0);  // pure chain
}

TEST(ExecGraphTest, MeasuredTimelineMatchesExecutedSchedule) {
  ExecGraph graph;
  const int a = graph.AddCompute("a", [] { return Status::Ok(); });
  graph.AddComm("b", /*stream=*/1, [] { return Status::Ok(); }, {a});
  ExecResult result = graph.Execute(2);
  ASSERT_TRUE(result.status.ok());

  std::vector<SimOp> ops;
  GraphResult timeline;
  MeasuredTimeline(graph, result, &ops, &timeline);
  ASSERT_EQ(ops.size(), 2u);
  ASSERT_EQ(timeline.timings.size(), 2u);
  EXPECT_EQ(ops[1].stream, 1);
  EXPECT_GE(timeline.makespan, 0.0);
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_DOUBLE_EQ(timeline.timings[i].end - timeline.timings[i].start,
                     ops[i].duration);
  }
}

// Bitwise determinism across the schedule grid: a mixed graph with chained
// accumulation (order forced by deps) plus independent disjoint writers must
// produce identical bytes under every schedule and stream count.
TEST(ExecGraphTest, ScheduleGridIsBitwiseDeterministic) {
  const int kSlots = 6;
  auto build = [&](std::vector<float>* acc, std::vector<float>* slots) {
    ExecGraph graph;
    int prev = -1;
    for (int k = 0; k < 5; ++k) {
      std::vector<int> deps;
      if (prev >= 0) {
        deps.push_back(prev);
      }
      // Float accumulation is order-dependent, so the chain of deps IS the
      // determinism guarantee the real pipelines rely on.
      prev = graph.AddCompute(
          "acc" + std::to_string(k),
          [acc, k] {
            (*acc)[0] += 1.0f / static_cast<float>(3 + k);
            return Status::Ok();
          },
          std::move(deps));
    }
    for (int s = 0; s < kSlots; ++s) {
      graph.AddCompute("slot" + std::to_string(s), [slots, s] {
        (*slots)[static_cast<size_t>(s)] = static_cast<float>(s) * 0.25f;
        return Status::Ok();
      });
    }
    return graph;
  };

  std::vector<float> ref_acc(1, 0.0f);
  std::vector<float> ref_slots(kSlots, 0.0f);
  {
    ExecGraph graph = build(&ref_acc, &ref_slots);
    ASSERT_TRUE(graph.Execute(1).status.ok());
  }
  for (int num_streams = 1; num_streams <= 3; ++num_streams) {
    for (uint64_t seed = 0; seed < 10; ++seed) {
      std::vector<float> acc(1, 0.0f);
      std::vector<float> slots(kSlots, 0.0f);
      ExecGraph graph = build(&acc, &slots);
      std::vector<int> order;
      std::vector<int> streams;
      RandomSchedule(graph.ops(), seed, num_streams, &order, &streams);
      ExecResult result = graph.ExecuteSchedule(order, streams, num_streams);
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_EQ(acc[0], ref_acc[0]) << "streams " << num_streams << " seed " << seed;
      EXPECT_EQ(slots, ref_slots) << "streams " << num_streams << " seed " << seed;
    }
  }
}

// Recording a pipeline and destroying it WITHOUT executing must not hang:
// the handle destructor cancels the unsignalled producer-gated collective on
// every rank and deliberately ABORTS the channel (PR 4 semantics) — a
// recorded-but-never-run transfer is a usage bug that surfaces loudly
// instead of wedging peers.
TEST(ExecGraphCommTest, RecordedPipelineDroppedWithoutExecute) {
  const int n = 4;
  const int64_t rows = 8;
  const int64_t k_shard = 3;
  const int64_t cols = 5;
  Rng rng(11);
  Tensor x = Tensor::Randn({rows, k_shard}, rng);
  Tensor w = Tensor::Randn({k_shard, cols}, rng);
  FlatCommunicator group(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&group, rank};
    std::unique_ptr<FusedPipeline> pipe = RecordFusedGemmReduceScatter(ctx, x, w, 2);
    // Dropped on the floor: no Execute, no signals.
    pipe.reset();
  });
  EXPECT_EQ(group.GroupStatus().code(), StatusCode::kAborted)
      << group.GroupStatus().ToString();
}

// A group aborted before execution surfaces as a non-OK graph status on
// every rank — no hang, compute dependents skipped.
TEST(ExecGraphCommTest, GroupAbortSurfacesAsGraphError) {
  const int n = 4;
  const int64_t rows_local = 4;
  const int64_t k = 3;
  const int64_t cols = 2;
  Rng rng(12);
  Tensor w = Tensor::Randn({k, cols}, rng);
  FlatCommunicator group(n);
  std::vector<Status> statuses(static_cast<size_t>(n));
  RunOnRanks(n, [&](int rank) {
    Rng rank_rng(100 + static_cast<uint64_t>(rank));
    Tensor x = Tensor::Randn({rows_local, k}, rank_rng);
    ShardContext ctx{&group, rank};
    std::unique_ptr<FusedPipeline> pipe = RecordFusedAllGatherGemm(ctx, x, w, 1);
    if (rank == 0) {
      group.Abort(Internal("injected pre-execute fault"));
    }
    statuses[static_cast<size_t>(rank)] = pipe->graph.Execute(2).status;
  });
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_FALSE(statuses[static_cast<size_t>(rank)].ok()) << "rank " << rank;
  }
  EXPECT_FALSE(group.GroupStatus().ok());
}

}  // namespace
}  // namespace msmoe
