// End-to-end simulated training iteration (the Table 3 / Fig 11 / Fig 12
// harness): pipeline parallelism across nodes, SP/TP + EP/TP inside the
// node, DP gradient synchronization, optimizer step, MFU accounting.
#ifndef MSMOE_SRC_CORE_SIM_TRAINER_H_
#define MSMOE_SRC_CORE_SIM_TRAINER_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/core/layer_program.h"
#include "src/core/parallelism_planner.h"
#include "src/hw/gpu_spec.h"
#include "src/model/config.h"
#include "src/parallel/dp_grad_sync.h"

namespace msmoe {

struct TrainJobConfig {
  ModelConfig model;
  ClusterSpec cluster;
  int pp_stages = 1;
  int virtual_stages = 2;
  int64_t global_batch = 720;       // sequences per iteration
  int64_t micro_batch = 1;          // sequences per micro-batch
  int64_t seq_len = 8192;
  ExecutionOptions exec;
  GradSyncMode grad_sync = GradSyncMode::kFp32ReduceScatter;
  // Fraction of DP sync hidden under backward (§4.1 holistic scheduling).
  double grad_sync_overlap = 0.3;

  // The two evaluated systems at a given cluster size.
  static TrainJobConfig Megatron(const ModelConfig& model, const ClusterSpec& cluster,
                                 int pp_stages, int64_t global_batch);
  static TrainJobConfig MegaScaleMoe(const ModelConfig& model, const ClusterSpec& cluster,
                                     int pp_stages, int64_t global_batch);
};

struct IterationReport {
  double iteration_s = 0.0;
  double tokens_per_s = 0.0;
  double mfu = 0.0;
  double days_for_1t_tokens = 0.0;
  // Per-iteration per-GPU time breakdown (seconds), Fig 12a categories.
  double exposed_comm_s = 0.0;
  double flash_s = 0.0;
  double gemm_s = 0.0;      // incl. fused comm+GEMM kernels
  double other_s = 0.0;     // memory-bound ops, bubble, sync tail, optimizer
  int dp_size = 0;
  int num_microbatches = 0;

  std::string ToString() const;
};

// Simulates one iteration. Fails if the cluster does not factor into
// (mp = gpus_per_node) x pp_stages x dp.
Result<IterationReport> SimulateTraining(const TrainJobConfig& config);

}  // namespace msmoe

#endif  // MSMOE_SRC_CORE_SIM_TRAINER_H_
