#include "src/model/attention.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/base/logging.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

void CheckShapes(const Tensor& q, const Tensor& k, const Tensor& v, int64_t gqa_ratio) {
  MSMOE_CHECK_EQ(q.ndim(), 3);
  MSMOE_CHECK_EQ(k.ndim(), 3);
  MSMOE_CHECK_EQ(v.ndim(), 3);
  MSMOE_CHECK_EQ(q.dim(0), k.dim(0));
  MSMOE_CHECK_EQ(k.dim(0), v.dim(0));
  MSMOE_CHECK_EQ(q.dim(1), k.dim(1) * gqa_ratio);
  MSMOE_CHECK_EQ(k.dim(1), v.dim(1));
  MSMOE_CHECK_EQ(q.dim(2), k.dim(2));
  MSMOE_CHECK_EQ(k.dim(2), v.dim(2));
}

}  // namespace

Tensor AttentionCore(const Tensor& q, const Tensor& k, const Tensor& v, int64_t gqa_ratio,
                     AttentionCoreCache* cache) {
  CheckShapes(q, k, v, gqa_ratio);
  const int64_t s = q.dim(0);
  const int64_t hq = q.dim(1);
  const int64_t d = q.dim(2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  Tensor out({s, hq, d});
  Tensor probs({hq, s, s});
  for (int64_t head = 0; head < hq; ++head) {
    const int64_t kv_head = head / gqa_ratio;
    for (int64_t t = 0; t < s; ++t) {
      // Scores over keys 0..t (causal), softmax inline.
      float* prob_row = probs.data() + (head * s + t) * s;
      const float* q_vec = q.data() + (t * hq + head) * d;
      float max_score = -1e30f;
      for (int64_t u = 0; u <= t; ++u) {
        const float* k_vec = k.data() + (u * k.dim(1) + kv_head) * d;
        float dot = 0.0f;
        for (int64_t e = 0; e < d; ++e) {
          dot += q_vec[e] * k_vec[e];
        }
        prob_row[u] = dot * scale;
        max_score = std::max(max_score, prob_row[u]);
      }
      double total = 0.0;
      for (int64_t u = 0; u <= t; ++u) {
        prob_row[u] = std::exp(prob_row[u] - max_score);
        total += prob_row[u];
      }
      const float inv_total = static_cast<float>(1.0 / total);
      float* out_vec = out.data() + (t * hq + head) * d;
      for (int64_t e = 0; e < d; ++e) {
        out_vec[e] = 0.0f;
      }
      for (int64_t u = 0; u <= t; ++u) {
        prob_row[u] *= inv_total;
        const float* v_vec = v.data() + (u * v.dim(1) + kv_head) * d;
        for (int64_t e = 0; e < d; ++e) {
          out_vec[e] += prob_row[u] * v_vec[e];
        }
      }
      for (int64_t u = t + 1; u < s; ++u) {
        prob_row[u] = 0.0f;
      }
    }
  }
  if (cache != nullptr) {
    cache->probs = std::move(probs);
  }
  return out;
}

AttentionCoreGrads AttentionCoreBackward(const Tensor& dout, const Tensor& q, const Tensor& k,
                                         const Tensor& v, int64_t gqa_ratio,
                                         const AttentionCoreCache& cache) {
  CheckShapes(q, k, v, gqa_ratio);
  const int64_t s = q.dim(0);
  const int64_t hq = q.dim(1);
  const int64_t hkv = k.dim(1);
  const int64_t d = q.dim(2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  AttentionCoreGrads grads;
  grads.dq = Tensor({s, hq, d});
  grads.dk = Tensor({s, hkv, d});
  grads.dv = Tensor({s, hkv, d});

  for (int64_t head = 0; head < hq; ++head) {
    const int64_t kv_head = head / gqa_ratio;
    for (int64_t t = 0; t < s; ++t) {
      const float* prob_row = cache.probs.data() + (head * s + t) * s;
      const float* dout_vec = dout.data() + (t * hq + head) * d;
      const float* q_vec = q.data() + (t * hq + head) * d;
      float* dq_vec = grads.dq.data() + (t * hq + head) * d;

      // dV[u] += p[u] * dout; dp[u] = dout . v[u].
      // Softmax backward: dscore[u] = p[u] * (dp[u] - sum_w p[w] dp[w]).
      double dot_p_dp = 0.0;
      // First pass computes dp and the weighted sum.
      // Reuse a small stack buffer via vector for clarity (s is small here).
      std::vector<float> dp(static_cast<size_t>(t) + 1);
      for (int64_t u = 0; u <= t; ++u) {
        const float* v_vec = v.data() + (u * hkv + kv_head) * d;
        float acc = 0.0f;
        for (int64_t e = 0; e < d; ++e) {
          acc += dout_vec[e] * v_vec[e];
        }
        dp[static_cast<size_t>(u)] = acc;
        dot_p_dp += static_cast<double>(prob_row[u]) * acc;
      }
      for (int64_t u = 0; u <= t; ++u) {
        const float p_u = prob_row[u];
        const float dscore = p_u * (dp[static_cast<size_t>(u)] - static_cast<float>(dot_p_dp));
        const float* k_vec = k.data() + (u * hkv + kv_head) * d;
        float* dk_vec = grads.dk.data() + (u * hkv + kv_head) * d;
        float* dv_vec = grads.dv.data() + (u * hkv + kv_head) * d;
        for (int64_t e = 0; e < d; ++e) {
          dq_vec[e] += dscore * scale * k_vec[e];
          dk_vec[e] += dscore * scale * q_vec[e];
          dv_vec[e] += p_u * dout_vec[e];
        }
      }
    }
  }
  return grads;
}

}  // namespace msmoe
