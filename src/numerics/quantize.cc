#include "src/numerics/quantize.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"
#include "src/base/math_util.h"

namespace msmoe {
namespace {

float AmaxToScale(float amax, Fp8Format format) {
  if (amax <= 0.0f || !std::isfinite(amax)) {
    return 1.0f;
  }
  return amax / Fp8MaxFinite(format);
}

// Computes amax over a strided slice.
float SliceAmax(const float* data, int64_t count, int64_t stride) {
  float amax = 0.0f;
  for (int64_t i = 0; i < count; ++i) {
    amax = std::max(amax, std::fabs(data[i * stride]));
  }
  return amax;
}

}  // namespace

const char* QuantGranularityName(QuantGranularity granularity) {
  switch (granularity) {
    case QuantGranularity::kPerTensor:
      return "per-tensor";
    case QuantGranularity::kPerToken:
      return "per-token";
    case QuantGranularity::kPerChannel:
      return "per-channel";
    case QuantGranularity::kPerChannelGrouped:
      return "per-channel-grouped";
  }
  return "unknown";
}

int64_t QuantScalesCount(int64_t rows, int64_t cols, const QuantConfig& config) {
  switch (config.granularity) {
    case QuantGranularity::kPerTensor:
      return 1;
    case QuantGranularity::kPerToken:
      return rows;
    case QuantGranularity::kPerChannel:
      return cols;
    case QuantGranularity::kPerChannelGrouped:
      return std::max<int64_t>(1, CeilDiv(rows, config.group_size)) * cols;
  }
  return 0;
}

void QuantizeInto(const float* data, int64_t rows, int64_t cols, const QuantConfig& config,
                  uint8_t* codes_out, float* scales_out) {
  MSMOE_CHECK_GE(rows, 0);
  MSMOE_CHECK_GE(cols, 0);

  auto encode_with_scale = [&](int64_t r, int64_t c, float scale) {
    const float value = data[r * cols + c];
    codes_out[r * cols + c] = Fp8Encode(value / scale, config.format);
  };

  switch (config.granularity) {
    case QuantGranularity::kPerTensor: {
      const float amax = SliceAmax(data, rows * cols, 1);
      const float scale = AmaxToScale(amax, config.format);
      scales_out[0] = scale;
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
          encode_with_scale(r, c, scale);
        }
      }
      break;
    }
    case QuantGranularity::kPerToken: {
      for (int64_t r = 0; r < rows; ++r) {
        const float amax = SliceAmax(data + r * cols, cols, 1);
        const float scale = AmaxToScale(amax, config.format);
        scales_out[r] = scale;
        for (int64_t c = 0; c < cols; ++c) {
          encode_with_scale(r, c, scale);
        }
      }
      break;
    }
    case QuantGranularity::kPerChannel: {
      for (int64_t c = 0; c < cols; ++c) {
        const float amax = SliceAmax(data + c, rows, cols);
        scales_out[c] = AmaxToScale(amax, config.format);
      }
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
          encode_with_scale(r, c, scales_out[c]);
        }
      }
      break;
    }
    case QuantGranularity::kPerChannelGrouped: {
      MSMOE_CHECK_GT(config.group_size, 0);
      const int64_t num_groups = std::max<int64_t>(1, CeilDiv(rows, config.group_size));
      for (int64_t g = 0; g < num_groups; ++g) {
        const int64_t row_begin = g * config.group_size;
        const int64_t row_end = std::min(rows, row_begin + config.group_size);
        for (int64_t c = 0; c < cols; ++c) {
          const float amax =
              SliceAmax(data + row_begin * cols + c, row_end - row_begin, cols);
          const float scale = AmaxToScale(amax, config.format);
          scales_out[g * cols + c] = scale;
          for (int64_t r = row_begin; r < row_end; ++r) {
            encode_with_scale(r, c, scale);
          }
        }
      }
      break;
    }
  }
}

QuantizedMatrix Quantize(const float* data, int64_t rows, int64_t cols,
                         const QuantConfig& config) {
  QuantizedMatrix out;
  out.rows = rows;
  out.cols = cols;
  out.config = config;
  out.codes.resize(static_cast<size_t>(rows * cols));
  out.scales.resize(static_cast<size_t>(QuantScalesCount(rows, cols, config)));
  QuantizeInto(data, rows, cols, config, out.codes.data(), out.scales.data());
  return out;
}

void DequantizeInto(const uint8_t* codes, const float* scales, int64_t rows, int64_t cols,
                    const QuantConfig& config, float* out) {
  auto scale_at = [&](int64_t r, int64_t c) -> float {
    switch (config.granularity) {
      case QuantGranularity::kPerTensor:
        return scales[0];
      case QuantGranularity::kPerToken:
        return scales[r];
      case QuantGranularity::kPerChannel:
        return scales[c];
      case QuantGranularity::kPerChannelGrouped: {
        const int64_t group = r / config.group_size;
        return scales[group * cols + c];
      }
    }
    return 1.0f;
  };

  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      out[r * cols + c] = Fp8Decode(codes[r * cols + c], config.format) * scale_at(r, c);
    }
  }
}

void Dequantize(const QuantizedMatrix& quantized, float* out) {
  DequantizeInto(quantized.codes.data(), quantized.scales.data(), quantized.rows,
                 quantized.cols, quantized.config, out);
}

std::vector<float> QuantizeRoundTrip(const float* data, int64_t rows, int64_t cols,
                                     const QuantConfig& config) {
  QuantizedMatrix quantized = Quantize(data, rows, cols, config);
  std::vector<float> out(static_cast<size_t>(rows * cols));
  Dequantize(quantized, out.data());
  return out;
}

double QuantizationMaxError(const float* data, int64_t rows, int64_t cols,
                            const QuantConfig& config) {
  const std::vector<float> round_trip = QuantizeRoundTrip(data, rows, cols, config);
  double max_error = 0.0;
  for (int64_t i = 0; i < rows * cols; ++i) {
    max_error = std::max(max_error,
                         static_cast<double>(std::fabs(round_trip[static_cast<size_t>(i)] -
                                                       data[i])));
  }
  return max_error;
}

}  // namespace msmoe
