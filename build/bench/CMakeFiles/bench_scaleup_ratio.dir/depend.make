# Empty dependencies file for bench_scaleup_ratio.
# This may be replaced when dependencies are built.
