// End-to-end check of the instrumented Communicator layer: a real
// multi-threaded run records per-collective telemetry, serializes to
// Chrome-trace JSON, and every recorded wire volume matches the analytic
// CostModel prediction for the same (op, bytes, group) — the §3 formulas
// asserted against the live system rather than the simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/comm/communicator.h"
#include "src/comm/health.h"
#include "src/hw/gpu_spec.h"
#include "src/sim/comm_crosscheck.h"
#include "src/sim/cost_model.h"
#include "src/sim/trace_export.h"

namespace msmoe {
namespace {

// Runs one of each core collective on real thread ranks.
void RunCoreCollectives(Communicator& comm, int64_t count) {
  const int n = comm.size();
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(n * count),
                            static_cast<float>(rank + 1));
    std::vector<float> gathered(static_cast<size_t>(n * count));
    std::vector<float> reduced(static_cast<size_t>(count));
    std::vector<float> recv(static_cast<size_t>(n * count));
    comm.AllGather(rank, send.data(), gathered.data(), count);
    comm.ReduceScatter(rank, send.data(), reduced.data(), count);
    comm.AllReduce(rank, send.data(), recv.data(), count);
    comm.AllToAll(rank, send.data(), recv.data(), count);
  });
}

// Extracts (name, wire_bytes) for every duration ("ph":"X") event.
std::vector<std::pair<std::string, uint64_t>> ParseTraceEvents(const std::string& json) {
  std::vector<std::pair<std::string, uint64_t>> out;
  size_t pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    const size_t obj_start = json.rfind('{', pos);
    const size_t name_pos = json.find("\"name\":\"", obj_start);
    const size_t name_end = json.find('"', name_pos + 8);
    const std::string name = json.substr(name_pos + 8, name_end - name_pos - 8);
    const size_t wb_pos = json.find("\"wire_bytes\":", pos);
    EXPECT_NE(wb_pos, std::string::npos);
    const uint64_t wb = std::strtoull(json.c_str() + wb_pos + 13, nullptr, 10);
    out.emplace_back(name, wb);
    pos = wb_pos;
  }
  return out;
}

TEST(CommTelemetryTest, RealRunTraceMatchesCostModelVolumes) {
  const int n = 4;
  const int64_t count = 96;
  FlatCommunicator comm(n);
  RunCoreCollectives(comm, count);

  const std::vector<CommEvent> events = comm.telemetry().Events();
  ASSERT_EQ(events.size(), static_cast<size_t>(4 * n));  // 4 ops x n ranks

  // Every event agrees with the closed-form §3 volume for its op.
  const CommCheckReport report = CrossCheckCommEvents(events);
  EXPECT_EQ(report.checked, 4 * n);
  EXPECT_EQ(report.skipped, 0);
  EXPECT_TRUE(report.ok()) << (report.mismatches.empty() ? "" : report.mismatches[0]);

  // The same volumes fall out of the CostModel time formulas: time * bus
  // bandwidth recovers the bytes the model believes each collective moves.
  const CostModel cost(MakeCluster("H800", n).value());
  const double bw = cost.BusBw(/*internode=*/false);
  const int64_t bytes_per_rank = count * 4;
  for (const CommEvent& event : events) {
    double model_bytes = 0.0;
    switch (event.op) {
      case CommOp::kAllGather:
      case CommOp::kReduceScatter:
        model_bytes = cost.RingCollectiveTime(bytes_per_rank, n, false) * bw;
        break;
      case CommOp::kAllReduce:
        model_bytes = 2.0 * cost.RingCollectiveTime(bytes_per_rank, n, false) * bw;
        break;
      case CommOp::kAllToAll:
        model_bytes = cost.AllToAllTime(n * bytes_per_rank, n, false) * bw *
                      CostModel::kA2AEfficiency;
        break;
      default:
        FAIL() << "unexpected op " << CommOpName(event.op);
    }
    EXPECT_NEAR(static_cast<double>(event.wire_bytes), model_bytes, 0.5)
        << CommOpName(event.op);
    EXPECT_GT(PredictedTimeUs(cost, event, false), 0.0);
    EXPECT_GE(event.duration_us, 0.0);
    EXPECT_EQ(event.group_size, n);
    EXPECT_EQ(event.primary, event.rank == 0);
  }

  // Summing primary events reproduces the backend's total accounting.
  EXPECT_EQ(comm.telemetry().TotalWireBytes(), comm.wire_bytes());

  // The run serializes to Chrome-trace JSON (ranks as threads) and the
  // serialized wire bytes round-trip.
  const std::string path = testing::TempDir() + "/msmoe_comm_trace.json";
  ASSERT_TRUE(WriteCommTrace(path, events).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 3\""), std::string::npos);

  const auto parsed = ParseTraceEvents(json);
  ASSERT_EQ(parsed.size(), events.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].first, CommOpName(events[i].op));
    EXPECT_EQ(parsed[i].second, events[i].wire_bytes);
  }
}

TEST(CommTelemetryTest, AllToAllVRecordsTotalOffRankVolume) {
  const int n = 3;
  FlatCommunicator comm(n);
  // rank r sends (r + dst) int64 elements to dst.
  RunOnRanks(n, [&](int rank) {
    std::vector<int64_t> send_counts(static_cast<size_t>(n));
    int64_t total_send = 0;
    for (int dst = 0; dst < n; ++dst) {
      send_counts[static_cast<size_t>(dst)] = rank + dst;
      total_send += rank + dst;
    }
    std::vector<int64_t> send(static_cast<size_t>(total_send), rank);
    std::vector<int64_t> recv(64);
    std::vector<int64_t> recv_counts;
    comm.AllToAllV(rank, send.data(), send_counts, recv.data(), &recv_counts);
  });

  // Off-rank elements: sum over src != dst of (src + dst) = 12; 8 bytes each.
  uint64_t expected = 0;
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src != dst) {
        expected += static_cast<uint64_t>(src + dst) * sizeof(int64_t);
      }
    }
  }
  EXPECT_EQ(comm.wire_bytes(), expected);
  const std::vector<CommEvent> events = comm.telemetry().Events();
  ASSERT_EQ(events.size(), static_cast<size_t>(n));
  for (const CommEvent& event : events) {
    EXPECT_EQ(event.op, CommOp::kAllToAllV);
    // The total volume is identical on every rank's event.
    EXPECT_EQ(event.wire_bytes, expected);
    EXPECT_EQ(event.elem_type, "i64");
  }
  EXPECT_EQ(comm.telemetry().TotalWireBytes(), expected);
}

TEST(CommTelemetryTest, HierarchicalBackendMatchesFlatResultWithA1Volume) {
  const int nodes = 2, per_node = 2, world = nodes * per_node;
  const int64_t count = 10;
  FlatCommunicator flat(world);
  HierarchicalCommunicator hier(nodes, per_node);
  std::vector<std::vector<float>> flat_out(world), hier_out(world);
  RunOnRanks(world, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      send[static_cast<size_t>(i)] = static_cast<float>((rank + 1) * (i + 1));
    }
    std::vector<float> a(static_cast<size_t>(count)), b(static_cast<size_t>(count));
    flat.AllReduce(rank, send.data(), a.data(), count);
    hier.AllReduce(rank, send.data(), b.data(), count);
    flat_out[static_cast<size_t>(rank)] = std::move(a);
    hier_out[static_cast<size_t>(rank)] = std::move(b);
  });
  for (int rank = 0; rank < world; ++rank) {
    for (int64_t i = 0; i < count; ++i) {
      EXPECT_NEAR(hier_out[static_cast<size_t>(rank)][static_cast<size_t>(i)],
                  flat_out[static_cast<size_t>(rank)][static_cast<size_t>(i)], 1e-4);
    }
  }

  // Appendix A.1 four-step volume: chunk = ceil(10/2) = 5 floats.
  const uint64_t chunk_bytes = 5 * 4;
  const uint64_t intra = nodes * 2 * (per_node - 1) * chunk_bytes;
  const uint64_t inter = per_node * 2 * (nodes - 1) * chunk_bytes;
  EXPECT_EQ(hier.wire_bytes(), intra + inter);
  const std::vector<CommEvent> events = hier.telemetry().Events();
  ASSERT_EQ(events.size(), static_cast<size_t>(world));
  for (const CommEvent& event : events) {
    EXPECT_EQ(event.algorithm, "hierarchical");
    EXPECT_EQ(event.wire_bytes, intra + inter);
  }
  // No closed form from the event fields alone -> the cross-check skips it.
  const CommCheckReport report = CrossCheckCommEvents(events);
  EXPECT_EQ(report.skipped, world);
  EXPECT_TRUE(report.ok());
}

TEST(CommTelemetryTest, MakeCommunicatorSelectsBackend) {
  auto flat = MakeCommunicator(CommBackend::kFlat, 4);
  EXPECT_NE(dynamic_cast<FlatCommunicator*>(flat.get()), nullptr);
  auto hier = MakeCommunicator(CommBackend::kHierarchical, 4, 2);
  EXPECT_NE(dynamic_cast<HierarchicalCommunicator*>(hier.get()), nullptr);
  EXPECT_EQ(hier->size(), 4);
  // Degenerate shapes (one node, or no node size given) fall back to flat.
  EXPECT_NE(dynamic_cast<FlatCommunicator*>(
                MakeCommunicator(CommBackend::kHierarchical, 4).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<FlatCommunicator*>(
                MakeCommunicator(CommBackend::kHierarchical, 4, 4).get()),
            nullptr);
}

TEST(CommTelemetryTest, ChunkedOpsAggregateToMonolithicAccounting) {
  // The async lane's per-chunk events must reassemble into exactly the
  // monolithic op's accounting: every chunk present once, and the summed
  // per-chunk wire bytes equal to the closed-form volume of the aggregate
  // element count (the AccountOnce no-double-counting invariant).
  const int n = 4;
  const int64_t count = 36;
  const int ag_chunks = 5;
  const int rs_chunks = 3;
  FlatCommunicator comm(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(n) * count,
                            static_cast<float>(rank + 1));
    std::vector<float> gathered(static_cast<size_t>(n) * count);
    std::vector<float> reduced(static_cast<size_t>(count));
    auto ag = comm.StartAllGather(rank, send.data(), gathered.data(), count, ag_chunks);
    ASSERT_TRUE(ag->WaitAll().ok());
    auto rs = comm.StartReduceScatter(rank, send.data(), reduced.data(), count,
                                      rs_chunks);
    for (int c = 0; c < rs->num_chunks(); ++c) {
      rs->SignalChunkReady(c);
    }
    ASSERT_TRUE(rs->WaitAll().ok());
  });

  const std::vector<CommEvent> events = comm.telemetry().Events();
  const ChunkCheckReport report = CrossCheckChunkAggregation(events);
  EXPECT_EQ(report.logical_ops, 2);
  EXPECT_EQ(report.chunk_events, ag_chunks + rs_chunks);  // primary lane only
  EXPECT_TRUE(report.ok()) << (report.mismatches.empty() ? ""
                                                         : report.mismatches[0]);
  // And the telemetry total equals the backend's own wire accounting.
  EXPECT_EQ(comm.telemetry().TotalWireBytes(), comm.wire_bytes());
}

TEST(CommTelemetryTest, CapacityBoundsEventGrowth) {
  FlatCommunicator comm(2);
  comm.telemetry().set_capacity(4);
  RunOnRanks(2, [&](int rank) {
    std::vector<float> send(8, 1.0f), recv(8);
    for (int i = 0; i < 4; ++i) {
      comm.AllReduce(rank, send.data(), recv.data(), 4);
    }
  });
  EXPECT_EQ(comm.telemetry().event_count(), 4u);
  EXPECT_EQ(comm.telemetry().dropped(), 4u);
  comm.telemetry().Clear();
  EXPECT_EQ(comm.telemetry().event_count(), 0u);
  EXPECT_EQ(comm.telemetry().dropped(), 0u);
}

TEST(StragglerDetectorTest, TruncatedStreamKeepsTheHealthyRanksLateCollectives) {
  // Regression: a crashed rank's event stream ends early. Truncating every
  // stream to the shortest one would discard the surviving ranks' later
  // collectives — exactly the instances that carry the fault signature
  // here: rank 1 only starts lagging AFTER rank 2's stream ends.
  auto event = [](int rank, double start_us) {
    CommEvent e;
    e.rank = rank;
    e.start_us = start_us;
    return e;
  };
  const std::vector<CommEvent> events = {
      event(0, 0.0),   event(1, 0.0),   event(2, 0.0),    // instance 0
      event(0, 100.0), event(1, 100.0), event(2, 100.0),  // instance 1
      event(0, 200.0), event(1, 250.0),                   // rank 2 crashed
      event(0, 300.0), event(1, 350.0),
  };
  StragglerConfig config;
  config.threshold_us = 20.0;
  config.min_collectives = 2;
  const StragglerReport report = DetectStragglers(events, config);

  // All four instances are matched over the ranks that reached them.
  EXPECT_EQ(report.collectives_matched, 4);
  ASSERT_EQ(report.ranks.size(), 3u);
  EXPECT_EQ(report.ranks[0].collectives, 4);
  EXPECT_EQ(report.ranks[1].collectives, 4);
  EXPECT_EQ(report.ranks[2].collectives, 2);  // its own participation only
  // Rank 1's lag lives entirely in instances 2 and 3: mean (0+0+50+50)/4.
  EXPECT_DOUBLE_EQ(report.ranks[1].mean_entry_lag_us, 25.0);
  EXPECT_TRUE(report.ranks[1].straggler);
  EXPECT_FALSE(report.ranks[0].straggler);
  EXPECT_FALSE(report.ranks[2].straggler);
}

TEST(CommTelemetryTest, TraceEmbedsMemStatsPhases) {
  ResetMemStats();
  {
    MemoryScope scope("trace_test_phase");
    void* p = ArenaAcquire(1024);
    ArenaRelease(p, 1024);
  }
  const MemStatsSnapshot mem = GetMemStats();
  const std::string json = CommEventsToChromeTrace(
      {}, "msmoe-run", /*health=*/nullptr, /*comp_events=*/nullptr, &mem);
  EXPECT_NE(json.find("\"name\":\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mem total\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mem trace_test_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"pool_hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"heap_allocs\""), std::string::npos);
}

}  // namespace
}  // namespace msmoe
