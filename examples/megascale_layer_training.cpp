// The full numeric MegaScale-MoE stack end to end: a distributed MoE LM
// running sequence-parallel attention + expert-parallel FFN + selective
// activation rematerialization over 2 model-parallel thread ranks, trained
// with gradients synchronized across the group.
//
//   $ ./megascale_layer_training
#include <cstdio>
#include <vector>

#include "src/base/rng.h"
#include "src/comm/communicator.h"
#include "src/core/parallelism_planner.h"
#include "src/model/config.h"
#include "src/model/optimizer.h"
#include "src/parallel/distributed_lm.h"

using namespace msmoe;

int main() {
  ModelConfig config = TinyMoeConfig(/*num_experts=*/4, /*top_k=*/2);
  config.num_layers = 2;
  config.hidden = 16;
  config.num_heads = 4;
  config.gqa_ratio = 2;
  config.ffn_hidden = 12;
  config.seq_len = 16;
  config.vocab = 32;
  RouterConfig router;
  router.num_experts = config.num_experts;
  router.top_k = config.top_k;

  const int n = 2;       // model-parallel ranks (SP = EP = 2)
  const int64_t batch = 2;
  const int steps = 80;

  ParallelMoeLayerOptions options;
  options.dispatch = ChooseEpDispatch(config.top_k, n);
  options.sar = true;  // half the activations, bit-identical gradients

  std::printf("distributed MoE LM: SP=EP=%d, dispatch=%s, SAR=on\n", n,
              EpDispatchModeName(options.dispatch));

  FlatCommunicator group(n);
  FlatCommunicator sync(n);
  std::vector<double> losses(static_cast<size_t>(steps), 0.0);
  RunOnRanks(n, [&](int rank) {
    Rng rng(7);
    LmParams params = LmParams::Init(config, rng);
    AdamOptimizer adam(AdamConfig{.lr = 4e-3});
    for (Tensor* t : params.TensorList()) {
      adam.Register(t);
    }
    ShardContext ctx{&group, rank};

    for (int step = 0; step < steps; ++step) {
      // Previous-token copy task, fresh batch each step.
      std::vector<int64_t> inputs, targets;
      Rng data_rng(Rng(99).Fork(static_cast<uint64_t>(step)).NextU64());
      int64_t previous = 0;
      for (int64_t i = 0; i < batch * config.seq_len; ++i) {
        const int64_t token = static_cast<int64_t>(data_rng.NextIndex(config.vocab));
        inputs.push_back(token);
        targets.push_back(previous);
        previous = token;
      }

      LmParams grads = LmParams::ZerosLike(config);
      const DistributedLmStats stats = DistributedLmForwardBackward(
          ctx, config, router, options, params,
          ShardTokenIds(inputs, batch, config.seq_len, rank, n),
          ShardTokenIds(targets, batch, config.seq_len, rank, n), batch, config.seq_len,
          &grads);

      // One all-reduce completes every gradient: token-partial entries sum
      // across ranks; expert entries are owner-complete + zero elsewhere.
      for (Tensor* tensor : grads.TensorList()) {
        std::vector<float> reduced(static_cast<size_t>(tensor->numel()));
        sync.AllReduce(rank, tensor->data(), reduced.data(), tensor->numel());
        std::copy(reduced.begin(), reduced.end(), tensor->data());
      }
      adam.Step(grads.TensorListConst());
      if (rank == 0) {
        losses[static_cast<size_t>(step)] = stats.ce_loss;
      }
    }
  });

  for (int step = 0; step < steps; step += 5) {
    std::printf("step %2d  loss %.4f\n", step, losses[static_cast<size_t>(step)]);
  }
  std::printf("final loss %.4f (started %.4f)\n", losses.back(), losses.front());
  std::printf("wire bytes this run: layer collectives %llu, grad sync %llu\n",
              static_cast<unsigned long long>(group.wire_bytes()),
              static_cast<unsigned long long>(sync.wire_bytes()));
  return losses.back() < losses.front() ? 0 : 1;
}
