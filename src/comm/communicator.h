// The instrumented collective interface every parallel module talks to.
//
// Communicator is the seam between the algorithm code (src/parallel,
// src/core) and the collective substrate: call sites never touch a
// CollectiveGroup directly — they issue ops through this layer, which
//   1. dispatches to a backend (flat single-level group, or the 2-level
//      hierarchical intra/inter-node scheme of Appendix A.1), and
//   2. records one CommEvent per operation per rank — op kind, algorithm,
//      group size, element type, analytic wire bytes, wall-clock start and
//      duration — into a thread-safe CommTelemetry registry.
//
// Backend choice is a constructor argument (or MakeCommunicator), not
// hard-coded wiring, so swapping the synchronization scheme never touches
// algorithm code. The recorded events serialize to Chrome-trace JSON
// (src/sim/trace_export) and are cross-checked against the §3 analytic
// volume formulas (src/sim/comm_crosscheck).
//
// Data-movement collectives (all-gather, broadcast, all-to-all(v)) are
// templated over the element type and forwarded byte-wise to the backend —
// their semantics and wire volume depend only on byte counts. Reducing
// collectives (reduce-scatter, all-reduce) are float-only, matching every
// call site in the repo (wire precision is emulated by converting values
// before the call, see src/numerics).
#ifndef MSMOE_SRC_COMM_COMMUNICATOR_H_
#define MSMOE_SRC_COMM_COMMUNICATOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/comm/async_comm.h"
#include "src/comm/collective_group.h"
#include "src/comm/fault.h"
#include "src/comm/hierarchical.h"
#include "src/comm/telemetry.h"

namespace msmoe {

enum class CommBackend { kFlat, kHierarchical };

const char* CommBackendName(CommBackend backend);

// Wire element-type labels recorded in CommEvents.
template <typename T>
inline const char* CommElemTypeName() {
  return "bytes";
}
template <>
inline const char* CommElemTypeName<float>() {
  return "f32";
}
template <>
inline const char* CommElemTypeName<double>() {
  return "f64";
}
template <>
inline const char* CommElemTypeName<int64_t>() {
  return "i64";
}
template <>
inline const char* CommElemTypeName<int32_t>() {
  return "i32";
}
template <>
inline const char* CommElemTypeName<uint8_t>() {
  return "u8";
}
template <>
inline const char* CommElemTypeName<uint16_t>() {
  return "u16";
}

class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int size() const = 0;
  // Analytic bytes a real fabric would have moved (total over members),
  // accumulated under the AccountOnce convention — backend channels plus
  // the async channel of chunked collectives.
  uint64_t wire_bytes() const;
  void ResetWireBytes();

  CommTelemetry& telemetry() { return telemetry_; }
  const CommTelemetry& telemetry() const { return telemetry_; }

  // --- Fault surface -------------------------------------------------------

  // Installs a fault-injection schedule (not owned; may be nullptr). Call
  // before ranks start issuing collectives. Every collective consults the
  // plan with this rank's monotonically increasing op index.
  void set_fault_plan(FaultPlan* plan);
  FaultPlan* fault_plan() const { return fault_plan_; }

  // Deadline for every internal barrier wait (0 = wait forever); a rank
  // that never arrives then surfaces as kDeadlineExceeded on all peers.
  // Applies to the backend channels and the async channel.
  void SetCollectiveTimeout(double timeout_ms);
  // Emulated wire clock (see collective_group.h): every data-moving
  // collective — sync and async — additionally blocks for the modeled link
  // occupancy of its analytic volume. Off by default.
  void SetWireModel(double bytes_per_us, double latency_us);
  // Cancels every channel's barrier; all ranks observe `status`. The
  // two-argument form additionally attributes the fault to `culprit_rank`
  // (surfaced by SuspectRank; first attribution sticks); injected crashes
  // attribute themselves automatically.
  void Abort(Status status) { Abort(std::move(status), -1); }
  void Abort(Status status, int culprit_rank);
  // First error raised on any channel (abort, timeout, injected crash), or
  // OK. After a failed collective the output buffers are unspecified;
  // fault-aware callers check this per step and run recovery.
  Status GroupStatus() const;
  // Best-guess member responsible for the current failure: an explicit
  // attribution passed to Abort (injected crashes name the crashing rank),
  // else the backend barrier's missing-member attribution on timeout, else
  // the async channel's, else an observability hint (HintSuspect). -1 when
  // healthy or unattributed.
  int SuspectRank() const;
  // Advisory suspect from the observability layer (obs StepProfiler's
  // anomaly detector): consulted LAST by SuspectRank, so real fault
  // attribution always wins over statistics. First hint sticks until
  // RecoveryBarrier clears it alongside suspect_rank_; hints never abort
  // anything by themselves.
  void HintSuspect(int rank);
  // Collective-safe reset after all ranks observed the failure: rendezvous,
  // clear the abort on every channel (async included), rendezvous (see
  // CollectiveGroup::RecoveryBarrier). Outstanding CommHandles must be
  // destroyed before this is called, so the comm threads have unwound.
  // Refuses (CHECK) on a retired communicator — a stale epoch never heals.
  void RecoveryBarrier(int member);

  // --- Elastic epochs (src/comm/elastic.h) ---------------------------------

  // Permanently fails this communicator as a stale membership epoch: aborts
  // every channel (keeping the ORIGINAL fault visible via GroupStatus, so
  // the culprit rank observes the same first error as the survivors) and
  // refuses future ResetAbort/RecoveryBarrier. Subsequent Start* calls
  // return an already-failed handle carrying `stale`, so an overlap
  // pipeline issued against the replaced membership fails loudly instead of
  // deadlocking on a rendezvous nobody will join.
  void Retire(Status stale);
  bool retired() const { return retired_.load(std::memory_order_acquire); }
  // The stale-epoch status installed by Retire (OK if not retired).
  Status stale_status() const;
  // Membership epoch stamped by the owning ElasticComm (0 standalone).
  int epoch() const { return epoch_; }
  void set_epoch(int epoch) { epoch_ = epoch; }

  // All members must call every collective, with their own member index.
  // Semantics match CollectiveGroup (see collective_group.h). On an aborted
  // group each collective returns promptly without touching the output
  // buffers and without recording telemetry; GroupStatus() carries the
  // error.

  void Barrier(int member) {
    const FaultAction action = BeginOp(member);
    if (action.crash) {
      return;
    }
    const double start = telemetry_.NowUs();
    BarrierImpl(member);
    if (!GroupStatus().ok()) {
      return;
    }
    Finish(CommOp::kBarrier, member, "bytes", 0, 0, 0, start);
  }

  // Like Barrier, but returns THIS barrier's own completion status. The
  // return value is serialized with concurrent Aborts under the group
  // mutex: a barrier that closed returns Ok on EVERY member — even when a
  // fault lands immediately after it closes — and a cancelled one returns
  // the same sticky error on every member. Collective commit decisions
  // (e.g. the trainer's barrier-gated snapshot) must branch on this value;
  // re-reading GroupStatus() after the call races with faults raised
  // between one member's barrier exit and another member's read, splitting
  // the commit across the group.
  Status TryBarrier(int member) {
    const FaultAction action = BeginOp(member);
    if (action.crash) {
      return GroupStatus();
    }
    const double start = telemetry_.NowUs();
    const Status status = TryBarrierStatus(member);
    if (!status.ok()) {
      return status;
    }
    Finish(CommOp::kBarrier, member, "bytes", 0, 0, 0, start);
    return status;
  }

  // AllGather whose return value is this op's own serialized status (same
  // commit-token contract as TryBarrier): Ok means the gather completed
  // group-wide and the receive buffer is fully populated on every member.
  template <typename T>
  Status TryAllGather(int member, const T* send, T* recv, int64_t count) {
    const FaultAction action = BeginOp(member);
    if (action.crash) {
      return GroupStatus();
    }
    const double start = telemetry_.NowUs();
    const int64_t bytes = count * static_cast<int64_t>(sizeof(T));
    uint64_t wire = 0;
    const Status status = TryAllGatherStatus(member, send, recv, bytes, &wire);
    if (!status.ok()) {
      return status;
    }
    EndOp(action, recv, size() * bytes);
    Finish(CommOp::kAllGather, member, CommElemTypeName<T>(), sizeof(T), count, wire,
           start);
    return status;
  }

  template <typename T>
  void AllGather(int member, const T* send, T* recv, int64_t count) {
    const FaultAction action = BeginOp(member);
    if (action.crash) {
      return;
    }
    const double start = telemetry_.NowUs();
    const int64_t bytes = count * static_cast<int64_t>(sizeof(T));
    const uint64_t wire = AllGatherBytes(member, send, recv, bytes);
    if (!GroupStatus().ok()) {
      return;
    }
    EndOp(action, recv, size() * bytes);
    Finish(CommOp::kAllGather, member, CommElemTypeName<T>(), sizeof(T), count, wire,
           start);
  }

  void ReduceScatter(int member, const float* send, float* recv, int64_t count) {
    const FaultAction action = BeginOp(member);
    if (action.crash) {
      return;
    }
    const double start = telemetry_.NowUs();
    const uint64_t wire = ReduceScatterF32(member, send, recv, count);
    if (!GroupStatus().ok()) {
      return;
    }
    EndOp(action, recv, count * static_cast<int64_t>(sizeof(float)));
    Finish(CommOp::kReduceScatter, member, "f32", sizeof(float), count, wire, start);
  }

  void AllReduce(int member, const float* send, float* recv, int64_t count) {
    const FaultAction action = BeginOp(member);
    if (action.crash) {
      return;
    }
    const double start = telemetry_.NowUs();
    const uint64_t wire = AllReduceF32(member, send, recv, count);
    if (!GroupStatus().ok()) {
      return;
    }
    EndOp(action, recv, count * static_cast<int64_t>(sizeof(float)));
    Finish(CommOp::kAllReduce, member, "f32", sizeof(float), count, wire, start);
  }

  template <typename T>
  void Broadcast(int member, int root, T* data, int64_t count) {
    const FaultAction action = BeginOp(member);
    if (action.crash) {
      return;
    }
    const double start = telemetry_.NowUs();
    const int64_t bytes = count * static_cast<int64_t>(sizeof(T));
    const uint64_t wire = BroadcastBytes(member, root, data, bytes);
    if (!GroupStatus().ok()) {
      return;
    }
    EndOp(action, data, bytes);
    Finish(CommOp::kBroadcast, member, CommElemTypeName<T>(), sizeof(T), count, wire,
           start);
  }

  // `count` is the per-destination block size in elements (the recorded
  // elem_count), exactly as in CollectiveGroup::AllToAll.
  template <typename T>
  void AllToAll(int member, const T* send, T* recv, int64_t count) {
    const FaultAction action = BeginOp(member);
    if (action.crash) {
      return;
    }
    const double start = telemetry_.NowUs();
    const int64_t bytes = count * static_cast<int64_t>(sizeof(T));
    const uint64_t wire = AllToAllBytes(member, send, recv, bytes);
    if (!GroupStatus().ok()) {
      return;
    }
    EndOp(action, recv, size() * bytes);
    Finish(CommOp::kAllToAll, member, CommElemTypeName<T>(), sizeof(T), count, wire,
           start);
  }

  // Recorded elem_count is the total element count this member received.
  template <typename T>
  void AllToAllV(int member, const T* send, const std::vector<int64_t>& send_counts,
                 T* recv, std::vector<int64_t>* recv_counts) {
    const FaultAction action = BeginOp(member);
    if (action.crash) {
      return;
    }
    const double start = telemetry_.NowUs();
    std::vector<int64_t> send_bytes(send_counts.size());
    for (size_t i = 0; i < send_counts.size(); ++i) {
      send_bytes[i] = send_counts[i] * static_cast<int64_t>(sizeof(T));
    }
    std::vector<int64_t> recv_bytes;
    const uint64_t wire = AllToAllVBytes(member, send, send_bytes, recv, &recv_bytes);
    if (!GroupStatus().ok()) {
      return;
    }
    recv_counts->resize(recv_bytes.size());
    int64_t received = 0;
    for (size_t i = 0; i < recv_bytes.size(); ++i) {
      (*recv_counts)[i] = recv_bytes[i] / static_cast<int64_t>(sizeof(T));
      received += (*recv_counts)[i];
    }
    EndOp(action, recv, received * static_cast<int64_t>(sizeof(T)));
    Finish(CommOp::kAllToAllV, member, CommElemTypeName<T>(), sizeof(T), received, wire,
           start);
  }

  std::vector<double> ExchangeScalars(int member, double value) {
    const FaultAction action = BeginOp(member);
    std::vector<double> out;
    if (action.crash) {
      return out;
    }
    const double start = telemetry_.NowUs();
    const uint64_t wire = ExchangeScalarsImpl(member, value, &out);
    if (!GroupStatus().ok()) {
      out.clear();
      return out;
    }
    EndOp(action, out.data(), static_cast<int64_t>(out.size() * sizeof(double)));
    Finish(CommOp::kExchangeScalars, member, "f64", sizeof(double), 1, wire, start);
    return out;
  }

  // --- Nonblocking chunked collectives (§4.2) ------------------------------
  //
  // Each Start* splits the op into num_chunks contiguous chunks and hands
  // it to this rank's persistent comm-proxy thread, which drives the chunks
  // over a DEDICATED async-channel group; the caller overlaps compute and
  // consumes per-chunk readiness through the returned CommHandle (see
  // async_comm.h for the ordering and fault contract). All ranks must issue
  // the same Start* sequence; handles must not outlive this Communicator.
  // Chunk boundaries fall on multiples of `quantum` elements (a row).
  // Injected faults surface through WaitChunk/WaitAll as the same sticky
  // Status the synchronous ops report via GroupStatus().

  template <typename T>
  std::unique_ptr<CommHandle> StartAllGather(int member, const T* send, T* recv,
                                             int64_t count, int num_chunks,
                                             int64_t quantum = 1) {
    if (retired()) {
      return AsyncCommDriver::MakeFailedHandle(stale_status());
    }
    return AsyncCommDriver::StartAllGather(
        AsyncParams(member, CommElemTypeName<T>(), sizeof(T)), send, recv, count,
        num_chunks, quantum);
  }

  std::unique_ptr<CommHandle> StartReduceScatter(int member, const float* send,
                                                 float* recv, int64_t count,
                                                 int num_chunks, int64_t quantum = 1) {
    if (retired()) {
      return AsyncCommDriver::MakeFailedHandle(stale_status());
    }
    return AsyncCommDriver::StartReduceScatter(AsyncParams(member, "f32", sizeof(float)),
                                               send, recv, count, num_chunks, quantum);
  }

  // *recv is resized on the comm thread once the counts exchange fixed the
  // total; do not touch it until the first WaitChunk/WaitAll returns.
  template <typename T>
  std::unique_ptr<CommHandle> StartAllToAllV(int member, const T* send,
                                             const std::vector<int64_t>& send_counts,
                                             std::vector<T>* recv, int num_chunks) {
    if (retired()) {
      return AsyncCommDriver::MakeFailedHandle(stale_status());
    }
    auto resize = [recv](int64_t elems) -> void* {
      recv->resize(static_cast<size_t>(elems));
      return recv->data();
    };
    return AsyncCommDriver::StartAllToAllV(
        AsyncParams(member, CommElemTypeName<T>(), sizeof(T)), send, send_counts,
        resize, num_chunks);
  }

 protected:
  // Backends implement byte-level data movement plus float reductions and
  // return the TOTAL analytic wire volume of the collective (the value the
  // event records; must equal the delta the backend adds to wire_bytes()).
  virtual void BarrierImpl(int member) = 0;
  // Status-returning variants backing TryBarrier/TryAllGather: the status
  // is the op's own serialized verdict (see TryBarrier above).
  virtual Status TryBarrierStatus(int member) = 0;
  virtual Status TryAllGatherStatus(int member, const void* send, void* recv,
                                    int64_t bytes, uint64_t* wire) = 0;
  virtual uint64_t AllGatherBytes(int member, const void* send, void* recv,
                                  int64_t bytes) = 0;
  virtual uint64_t ReduceScatterF32(int member, const float* send, float* recv,
                                    int64_t count) = 0;
  virtual uint64_t AllReduceF32(int member, const float* send, float* recv,
                                int64_t count) = 0;
  virtual uint64_t BroadcastBytes(int member, int root, void* data, int64_t bytes) = 0;
  virtual uint64_t AllToAllBytes(int member, const void* send, void* recv,
                                 int64_t bytes_per_block) = 0;
  virtual uint64_t AllToAllVBytes(int member, const void* send,
                                  const std::vector<int64_t>& send_bytes, void* recv,
                                  std::vector<int64_t>* recv_bytes) = 0;
  virtual uint64_t ExchangeScalarsImpl(int member, double value,
                                       std::vector<double>* out) = 0;
  // Algorithm label recorded in events ("ring", "pairwise", "direct",
  // "hierarchical").
  virtual const char* AlgorithmName(CommOp op) const = 0;

  // Backend hooks behind the non-virtual fault/accounting surface above.
  virtual uint64_t BackendWireBytes() const = 0;
  virtual void ResetBackendWireBytes() = 0;
  virtual void SetTimeoutImpl(double timeout_ms) = 0;
  virtual void SetWireModelImpl(double bytes_per_us, double latency_us) = 0;
  virtual void AbortImpl(Status status) = 0;
  virtual Status BackendStatus() const = 0;
  virtual void RecoveryArriveImpl() = 0;
  virtual void ResetBackendAbort() = 0;
  // Retires the backend channels with the stale-epoch status (see Retire).
  virtual void RetireBackend(Status stale) = 0;
  // The backend barrier's fault attribution (missing member on a timeout,
  // explicit culprit on an abort), or -1.
  virtual int BackendCulpritRank() const = 0;

 private:
  // Consults the fault plan with this rank's op index: sleeps out injected
  // straggler delays (BEFORE the start timestamp, so the late collective
  // entry is visible to the health detector), and on an injected crash
  // cancels the group so peers fail fast instead of hanging.
  FaultAction BeginOp(int member) {
    FaultAction action;
    if (fault_plan_ != nullptr) {
      const int64_t index = op_counts_[static_cast<size_t>(member)]++;
      action = fault_plan_->OnCollective(member, index);
      if (action.delay_us > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(action.delay_us));
      }
      if (action.crash) {
        Abort(Aborted("fault injection: rank " + std::to_string(member) +
                      " crashed at collective " + std::to_string(index)),
              /*culprit_rank=*/member);
      }
    }
    return action;
  }

  // Applies post-op payload faults to the receive buffer.
  void EndOp(const FaultAction& action, void* recv, int64_t bytes) {
    if (action.corrupt) {
      FlipOneBit(recv, bytes, action.corrupt_seed);
    }
  }

  void Finish(CommOp op, int member, const char* elem_type, int elem_bytes,
              int64_t elem_count, uint64_t wire, double start_us) {
    CommEvent event;
    event.op = op;
    event.algorithm = AlgorithmName(op);
    event.group_size = size();
    event.rank = member;
    event.elem_type = elem_type;
    event.elem_bytes = elem_bytes;
    event.elem_count = elem_count;
    event.wire_bytes = wire;
    event.primary = member == 0;
    event.start_us = start_us;
    event.duration_us = telemetry_.NowUs() - start_us;
    telemetry_.Record(std::move(event));
  }

  // The async engine behind Start*: one dedicated channel group (so async
  // rendezvous never mix with main-channel ones) and one comm-proxy thread
  // per rank, created on first use. The threads are declared after the
  // channel so they are destroyed (drained) first.
  struct AsyncEngine {
    explicit AsyncEngine(int size)
        : channel(size), threads(static_cast<size_t>(size)) {}
    CollectiveGroup channel;
    std::vector<std::unique_ptr<PooledThread>> threads;
  };

  AsyncEngine& EnsureAsync();
  // Assembles the driver parameters for one Start* call: runs the fault
  // hook (delays, crash-abort), bumps this rank's logical-op sequence
  // number, and binds the channel, comm thread, and telemetry.
  AsyncOpParams AsyncParams(int member, const char* elem_type, int elem_bytes);

  CommTelemetry telemetry_;
  FaultPlan* fault_plan_ = nullptr;
  // First explicit fault attribution handed to Abort; -1 = none. Cleared by
  // RecoveryBarrier (transient faults forgive the suspect on reset).
  std::atomic<int> suspect_rank_{-1};
  // Advisory attribution from the observability layer (HintSuspect); lowest
  // priority in SuspectRank, cleared with suspect_rank_.
  std::atomic<int> hint_suspect_{-1};
  // Stale-epoch state (Retire): set once, never cleared.
  std::atomic<bool> retired_{false};
  Status stale_status_;  // guarded by async_mu_
  int epoch_ = 0;
  // Per-rank collective-op counters (each element touched only by its own
  // rank thread); sized by set_fault_plan.
  std::vector<int64_t> op_counts_;

  mutable std::mutex async_mu_;
  std::unique_ptr<AsyncEngine> async_;
  // Per-rank logical-op sequence (each element touched only by its own rank
  // thread; identical across ranks because all issue the same Start* order).
  std::vector<int64_t> async_seq_;
  // Settings applied to the async channel when it is (lazily) created.
  double timeout_ms_ = 0.0;
  double wire_bytes_per_us_ = 0.0;
  double wire_latency_us_ = 0.0;
};

// Single-level backend: one CollectiveGroup spanning all ranks (ring
// AG/RS/AR, pairwise A2A — the flat NCCL-communicator equivalent).
class FlatCommunicator final : public Communicator {
 public:
  explicit FlatCommunicator(int size) : group_(size) {}

  int size() const override { return group_.size(); }

  // Escape hatch for comm-layer algorithm code (src/comm) and tests;
  // algorithm code in src/parallel and src/core must not use it.
  CollectiveGroup& group() { return group_; }

 protected:
  uint64_t BackendWireBytes() const override { return group_.wire_bytes(); }
  void ResetBackendWireBytes() override { group_.ResetWireBytes(); }
  void SetTimeoutImpl(double timeout_ms) override { group_.set_timeout_ms(timeout_ms); }
  void SetWireModelImpl(double bytes_per_us, double latency_us) override {
    group_.set_wire_model(bytes_per_us, latency_us);
  }
  void AbortImpl(Status status) override { group_.Abort(std::move(status)); }
  Status BackendStatus() const override { return group_.status(); }
  void RecoveryArriveImpl() override { group_.RecoveryArrive(); }
  void ResetBackendAbort() override { group_.ResetAbort(); }
  void RetireBackend(Status stale) override { group_.Retire(std::move(stale)); }
  int BackendCulpritRank() const override { return group_.culprit_rank(); }

  void BarrierImpl(int member) override { group_.Barrier(member); }
  Status TryBarrierStatus(int member) override { return group_.TryBarrier(member); }
  Status TryAllGatherStatus(int member, const void* send, void* recv, int64_t bytes,
                            uint64_t* wire) override;
  uint64_t AllGatherBytes(int member, const void* send, void* recv,
                          int64_t bytes) override;
  uint64_t ReduceScatterF32(int member, const float* send, float* recv,
                            int64_t count) override;
  uint64_t AllReduceF32(int member, const float* send, float* recv,
                        int64_t count) override;
  uint64_t BroadcastBytes(int member, int root, void* data, int64_t bytes) override;
  uint64_t AllToAllBytes(int member, const void* send, void* recv,
                         int64_t bytes_per_block) override;
  uint64_t AllToAllVBytes(int member, const void* send,
                          const std::vector<int64_t>& send_bytes, void* recv,
                          std::vector<int64_t>* recv_bytes) override;
  uint64_t ExchangeScalarsImpl(int member, double value,
                               std::vector<double>* out) override;
  const char* AlgorithmName(CommOp op) const override;

 private:
  CollectiveGroup group_;
};

// Two-level backend (Appendix A.1): all-reduce runs as intra-node
// reduce-scatter -> inter-node all-reduce -> intra-node all-gather over a
// HierarchicalComm; every other op spans the flat world group. Ranks are
// node-major: rank = node * gpus_per_node + local.
class HierarchicalCommunicator final : public Communicator {
 public:
  HierarchicalCommunicator(int nodes, int gpus_per_node);

  int size() const override { return hier_.world_size(); }

  uint64_t IntraWireBytes() const { return hier_.IntraWireBytes(); }
  uint64_t InterWireBytes() const { return hier_.InterWireBytes(); }

 protected:
  uint64_t BackendWireBytes() const override {
    return world_.wire_bytes() + hier_.IntraWireBytes() + hier_.InterWireBytes();
  }
  void ResetBackendWireBytes() override {
    world_.ResetWireBytes();
    hier_.ResetWireBytes();
  }
  void SetTimeoutImpl(double timeout_ms) override {
    world_.set_timeout_ms(timeout_ms);
    hier_.SetTimeoutMs(timeout_ms);
  }
  // The wire model covers the world-level channel; the hierarchical
  // all-reduce's intra/inter sub-groups stay unmodeled (their cost is
  // studied analytically in src/sim, not measured).
  void SetWireModelImpl(double bytes_per_us, double latency_us) override {
    world_.set_wire_model(bytes_per_us, latency_us);
  }
  // An abort must cancel every constituent group: a rank may be blocked in
  // the world barrier, its intra-node group, or its inter-node group.
  void AbortImpl(Status status) override {
    hier_.AbortAll(status);
    world_.Abort(std::move(status));
  }
  Status BackendStatus() const override {
    Status status = world_.status();
    if (!status.ok()) {
      return status;
    }
    return hier_.FirstError();
  }
  void RecoveryArriveImpl() override { world_.RecoveryArrive(); }
  void ResetBackendAbort() override {
    world_.ResetAbort();
    hier_.ResetAbortAll();
  }
  // The sub-groups have no Retire; a sticky abort is enough because a
  // retired communicator never runs ResetBackendAbort again.
  void RetireBackend(Status stale) override {
    hier_.AbortAll(stale);
    world_.Retire(std::move(stale));
  }
  int BackendCulpritRank() const override { return world_.culprit_rank(); }

  void BarrierImpl(int member) override { world_.Barrier(member); }
  Status TryBarrierStatus(int member) override { return world_.TryBarrier(member); }
  Status TryAllGatherStatus(int member, const void* send, void* recv, int64_t bytes,
                            uint64_t* wire) override;
  uint64_t AllGatherBytes(int member, const void* send, void* recv,
                          int64_t bytes) override;
  uint64_t ReduceScatterF32(int member, const float* send, float* recv,
                            int64_t count) override;
  uint64_t AllReduceF32(int member, const float* send, float* recv,
                        int64_t count) override;
  uint64_t BroadcastBytes(int member, int root, void* data, int64_t bytes) override;
  uint64_t AllToAllBytes(int member, const void* send, void* recv,
                         int64_t bytes_per_block) override;
  uint64_t AllToAllVBytes(int member, const void* send,
                          const std::vector<int64_t>& send_bytes, void* recv,
                          std::vector<int64_t>* recv_bytes) override;
  uint64_t ExchangeScalarsImpl(int member, double value,
                               std::vector<double>* out) override;
  const char* AlgorithmName(CommOp op) const override;

 private:
  CollectiveGroup world_;
  HierarchicalComm hier_;
};

// Creates a communicator over `world_size` ranks. For kHierarchical,
// gpus_per_node must be > 1 and divide world_size with at least two nodes;
// any other shape degenerates to the flat backend (a one-node "hierarchy"
// is just a flat group).
std::unique_ptr<Communicator> MakeCommunicator(CommBackend backend, int world_size,
                                               int gpus_per_node = 0);

// The per-rank handle passed through every parallel module: the shared
// communicator plus this thread's rank within it.
struct ShardContext {
  Communicator* comm = nullptr;
  int rank = 0;

  int size() const { return comm->size(); }
};

}  // namespace msmoe

#endif  // MSMOE_SRC_COMM_COMMUNICATOR_H_
