file(REMOVE_RECURSE
  "CMakeFiles/msmoe_parallel.dir/distributed_lm.cc.o"
  "CMakeFiles/msmoe_parallel.dir/distributed_lm.cc.o.d"
  "CMakeFiles/msmoe_parallel.dir/dp_grad_sync.cc.o"
  "CMakeFiles/msmoe_parallel.dir/dp_grad_sync.cc.o.d"
  "CMakeFiles/msmoe_parallel.dir/ep_ffn.cc.o"
  "CMakeFiles/msmoe_parallel.dir/ep_ffn.cc.o.d"
  "CMakeFiles/msmoe_parallel.dir/fp8_comm.cc.o"
  "CMakeFiles/msmoe_parallel.dir/fp8_comm.cc.o.d"
  "CMakeFiles/msmoe_parallel.dir/fused_ops.cc.o"
  "CMakeFiles/msmoe_parallel.dir/fused_ops.cc.o.d"
  "CMakeFiles/msmoe_parallel.dir/parallel_moe_layer.cc.o"
  "CMakeFiles/msmoe_parallel.dir/parallel_moe_layer.cc.o.d"
  "CMakeFiles/msmoe_parallel.dir/sp_attention.cc.o"
  "CMakeFiles/msmoe_parallel.dir/sp_attention.cc.o.d"
  "CMakeFiles/msmoe_parallel.dir/tp_attention.cc.o"
  "CMakeFiles/msmoe_parallel.dir/tp_attention.cc.o.d"
  "CMakeFiles/msmoe_parallel.dir/tp_ffn.cc.o"
  "CMakeFiles/msmoe_parallel.dir/tp_ffn.cc.o.d"
  "libmsmoe_parallel.a"
  "libmsmoe_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msmoe_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
