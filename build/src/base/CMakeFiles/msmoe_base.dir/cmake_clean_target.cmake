file(REMOVE_RECURSE
  "libmsmoe_base.a"
)
