#include "src/sim/cost_model.h"

#include <algorithm>

#include "src/base/logging.h"

namespace msmoe {

namespace {

// Tensor-core utilization drops for narrow output dimensions (tiles go
// partially filled) — the reason §3.2 notes that TP's partitioning of the
// expert intermediate dimension hurts GEMM efficiency. Half-utilization
// point at 320 columns, calibrated against the Fig 13 TP-vs-EP MFU gap.
double WidthUtilization(int64_t out_dim) {
  const double utilization =
      static_cast<double>(out_dim) / (static_cast<double>(out_dim) + 320.0);
  return std::max(0.45, utilization);
}

}  // namespace

double CostModel::GemmTime(int64_t m, int64_t n, int64_t k) const {
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  const double bytes = static_cast<double>(kElemBytes) *
                       (static_cast<double>(m) * k + static_cast<double>(k) * n +
                        static_cast<double>(m) * n);
  const double rate = cluster_.GemmRate() * WidthUtilization(n);
  return std::max(flops / rate, bytes / cluster_.HbmBw());
}

double CostModel::GroupedGemmTime(int64_t rows, int64_t in_dim, int64_t out_dim,
                                  int64_t groups) const {
  MSMOE_CHECK_GT(groups, 0);
  const double flops = 2.0 * static_cast<double>(rows) * in_dim * out_dim;
  // Every expert's weights are loaded once regardless of its row count.
  const double bytes = static_cast<double>(kElemBytes) *
                       (static_cast<double>(rows) * (in_dim + out_dim) +
                        static_cast<double>(groups) * in_dim * out_dim);
  const double rate = cluster_.GroupedGemmRate() * WidthUtilization(out_dim);
  return std::max(flops / rate, bytes / cluster_.HbmBw());
}

double CostModel::FlashAttentionTime(int64_t batch, int64_t seq, int64_t heads,
                                     int64_t d) const {
  // Causal: ~s/2 keys per query; QK^T and PV are each 2*d FLOPs per
  // (query, key) pair.
  const double flops = 2.0 * 2.0 * static_cast<double>(batch) * heads * d *
                       static_cast<double>(seq) * (static_cast<double>(seq) / 2.0);
  // IO: q, k, v, o streamed once (the point of flash attention).
  const double bytes = static_cast<double>(kElemBytes) * 4.0 * batch * seq * heads * d;
  return std::max(flops / cluster_.GemmRate(), bytes / cluster_.HbmBw());
}

double CostModel::MemBoundTime(int64_t bytes) const {
  return static_cast<double>(bytes) / cluster_.HbmBw();
}

double CostModel::BusBw(bool internode) const {
  return internode ? cluster_.NicBusBw() : cluster_.NvlinkBusBw();
}

double CostModel::RingCollectiveTime(int64_t bytes_per_rank, int n, bool internode) const {
  if (n <= 1) {
    return 0.0;
  }
  const double total = static_cast<double>(bytes_per_rank) * n;
  return total * (static_cast<double>(n - 1) / n) / BusBw(internode);
}

double CostModel::AllToAllTime(int64_t bytes_per_rank, int n, bool internode) const {
  if (n <= 1) {
    return 0.0;
  }
  const double off_rank = static_cast<double>(bytes_per_rank) *
                          (static_cast<double>(n - 1) / n);
  return off_rank / (BusBw(internode) * kA2AEfficiency);
}

double CostModel::P2PTime(int64_t bytes, bool internode) const {
  return static_cast<double>(bytes) / BusBw(internode);
}

}  // namespace msmoe
