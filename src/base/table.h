// Column-aligned ASCII table printer used by the benchmark harnesses to
// reproduce the rows of the paper's tables and figure series.
#ifndef MSMOE_SRC_BASE_TABLE_H_
#define MSMOE_SRC_BASE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msmoe {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends one row; cells beyond the header count are dropped, missing cells
  // render empty.
  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string Fmt(double value, int precision = 2);
  static std::string Fmt(int64_t value);

  // Renders the table with a header rule. If title is non-empty it is printed
  // above the table.
  std::string ToString(const std::string& title = "") const;

  // Renders as CSV (header row + data rows), for downstream plotting.
  std::string ToCsv() const;

  void Print(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace msmoe

#endif  // MSMOE_SRC_BASE_TABLE_H_
