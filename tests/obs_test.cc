// Unified observability layer: MetricsRegistry aggregation across threads,
// StepProfiler determinism and artifact round-trips, and the online anomaly
// detector (synthetic feeds plus a real slow-rank injection through the
// trainer).
//
// The central claims under test:
//   1. registry totals are exact across concurrent recording threads,
//      including threads that exited before aggregation (retired shards);
//   2. the StepReport fields documented as deterministic (loss, wire_bytes,
//      collectives, dispatch_rows, expert_imbalance) are bitwise stable
//      across worker counts;
//   3. the anomaly detector stays quiet on clean runs and flags an injected
//      slow rank within five steps of the fault, attributing the right rank;
//   4. metrics.jsonl lines and the merged trace round-trip / parse.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/parallel_for.h"
#include "src/comm/fault.h"
#include "src/comm/telemetry.h"
#include "src/core/trainer.h"
#include "src/model/config.h"
#include "src/obs/anomaly.h"
#include "src/obs/metrics.h"
#include "src/obs/step_profiler.h"
#include "src/sim/trace_export.h"

namespace msmoe {
namespace {

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, AggregatesExactlyAcrossLiveAndRetiredThreads) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId counter =
      registry.Counter("obs_test.thread_counter", "test counter");
  const MetricId hist = registry.Histogram("obs_test.thread_hist", "test histogram",
                                           {1.0, 10.0});

  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        registry.Add(counter, 1.0);
        // One observation per bucket: <=1, (1,10], +inf.
        registry.Add(hist, 0.5);
        registry.Add(hist, 5.0);
        registry.Add(hist, 50.0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();  // threads retire; their shards fold into the registry
  }
  registry.Add(counter, 2.0);  // the live (main-thread) shard path

  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricSnapshot* c = snapshot.Find("obs_test.thread_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->type, MetricType::kCounter);
  EXPECT_DOUBLE_EQ(c->value, kThreads * kAddsPerThread + 2.0);

  const MetricSnapshot* h = snapshot.Find("obs_test.thread_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->type, MetricType::kHistogram);
  EXPECT_EQ(h->histogram.count,
            static_cast<uint64_t>(kThreads) * kAddsPerThread * 3);
  ASSERT_EQ(h->histogram.counts.size(), 3u);
  EXPECT_EQ(h->histogram.counts[0], static_cast<uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(h->histogram.counts[1], static_cast<uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(h->histogram.counts[2], static_cast<uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_DOUBLE_EQ(h->histogram.sum, kThreads * kAddsPerThread * (0.5 + 5.0 + 50.0));
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId a = registry.Counter("obs_test.idempotent", "first");
  const MetricId b = registry.Counter("obs_test.idempotent", "second");
  EXPECT_EQ(a.index, b.index);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsRecordsAndGaugesStick) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricId counter = registry.Counter("obs_test.gated_counter", "gated");
  const MetricId gauge = registry.Gauge("obs_test.gauge", "gauge");

  registry.Add(counter, 5.0);
  registry.Set(gauge, 42.0);
  registry.set_enabled(false);
  registry.Add(counter, 100.0);  // must be dropped
  registry.Set(gauge, -1.0);     // must be dropped
  registry.set_enabled(true);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.Find("obs_test.gated_counter")->value, 5.0);
  EXPECT_DOUBLE_EQ(snapshot.Find("obs_test.gauge")->value, 42.0);
}

TEST(MetricsRegistryTest, PrometheusTextExposesSanitizedFamilies) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Add(registry.Counter("obs_test.prom_counter", "prom help"), 3.0);
  registry.Add(registry.Histogram("obs_test.prom_hist", "hist help", {2.0}), 1.0);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE obs_test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP obs_test_prom_counter prom help"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_count 1"), std::string::npos);
}

// --- AnomalyDetector (synthetic, fully deterministic) -----------------------

StepSample MakeSample(int rank, int64_t step, double step_ms, double compute_ms,
                      double exposed_ms) {
  StepSample sample;
  sample.rank = rank;
  sample.step = step;
  sample.ts_us = static_cast<double>(step) * 1000.0;
  sample.step_ms = step_ms;
  sample.compute_ms = compute_ms;
  sample.exposed_comm_ms = exposed_ms;
  return sample;
}

TEST(AnomalyDetectorTest, QuietOnSteadySamples) {
  AnomalyDetector detector;
  detector.set_world(2);
  for (int64_t step = 0; step < 20; ++step) {
    for (int rank = 0; rank < 2; ++rank) {
      EXPECT_TRUE(detector.Observe(MakeSample(rank, step, 2.0, 1.5, 0.4)).empty());
    }
  }
  EXPECT_TRUE(detector.events().empty());
  EXPECT_EQ(detector.straggler_suspect(), -1);
}

TEST(AnomalyDetectorTest, FlagsSpikeAndAttributesStraggler) {
  AnomalyDetector detector;
  detector.set_world(2);
  for (int64_t step = 0; step < 8; ++step) {
    for (int rank = 0; rank < 2; ++rank) {
      ASSERT_TRUE(detector.Observe(MakeSample(rank, step, 2.0, 1.5, 0.4)).empty());
    }
  }
  // Step 8: rank 0 stalls (compute balloons); rank 1 waits in the barrier
  // (exposed comm balloons). Both step times spike in lockstep — exactly the
  // synchronous-training signature.
  const auto fired0 = detector.Observe(MakeSample(0, 8, 30.0, 29.0, 0.4));
  EXPECT_FALSE(fired0.empty());  // step-time regression on rank 0
  const auto fired1 = detector.Observe(MakeSample(1, 8, 30.0, 2.0, 28.0));
  EXPECT_FALSE(fired1.empty());

  bool saw_suspect = false;
  for (const AnomalyEvent& event : detector.events()) {
    if (event.kind == AnomalyEvent::Kind::kStragglerSuspect) {
      saw_suspect = true;
      EXPECT_EQ(event.rank, 0);
      EXPECT_EQ(event.step, 8);
    }
  }
  EXPECT_TRUE(saw_suspect);
  EXPECT_EQ(detector.straggler_suspect(), 0);
}

TEST(AnomalyDetectorTest, FlaggedSamplesDoNotPoisonTheBaseline) {
  AnomalyDetector detector;
  detector.set_world(1);
  for (int64_t step = 0; step < 8; ++step) {
    ASSERT_TRUE(detector.Observe(MakeSample(0, step, 2.0, 1.5, 0.4)).empty());
  }
  // A sustained regression: every slow step must keep firing because the
  // flagged samples never enter the rolling baseline.
  for (int64_t step = 8; step < 12; ++step) {
    EXPECT_FALSE(detector.Observe(MakeSample(0, step, 30.0, 29.0, 0.4)).empty())
        << "step " << step << " stopped firing (baseline poisoned)";
  }
}

// --- StepReport JSON round-trip ---------------------------------------------

TEST(StepReportJsonTest, RoundTripsEveryField) {
  StepReport report;
  report.step = 17;
  report.rank = 3;
  report.ts_us = 123456.789;
  report.step_ms = 12.5;
  report.compute_ms = 9.25;
  report.comm_ms = 4.75;
  report.exposed_comm_ms = 3.25;
  report.bubble_ms = 0.5;
  report.gemm_gflop = 1.75;
  report.achieved_gflops = 140.0;
  report.mfu = 0.375;
  report.wire_bytes = 987654321;
  report.collectives = 42;
  report.expert_imbalance = 2.125;
  report.dispatch_rows = 4096;
  report.pool_hit_rate = 0.96875;
  report.heap_allocs = 7;
  report.retries = 2;
  report.evictions = 1;
  report.loss = 3.14159265358979;

  StepReport parsed;
  ASSERT_TRUE(ParseStepReportJson(StepReportToJson(report), &parsed));
  EXPECT_EQ(parsed.step, report.step);
  EXPECT_EQ(parsed.rank, report.rank);
  EXPECT_EQ(parsed.ts_us, report.ts_us);
  EXPECT_EQ(parsed.step_ms, report.step_ms);
  EXPECT_EQ(parsed.compute_ms, report.compute_ms);
  EXPECT_EQ(parsed.comm_ms, report.comm_ms);
  EXPECT_EQ(parsed.exposed_comm_ms, report.exposed_comm_ms);
  EXPECT_EQ(parsed.bubble_ms, report.bubble_ms);
  EXPECT_EQ(parsed.gemm_gflop, report.gemm_gflop);
  EXPECT_EQ(parsed.achieved_gflops, report.achieved_gflops);
  EXPECT_EQ(parsed.mfu, report.mfu);
  EXPECT_EQ(parsed.wire_bytes, report.wire_bytes);
  EXPECT_EQ(parsed.collectives, report.collectives);
  EXPECT_EQ(parsed.expert_imbalance, report.expert_imbalance);
  EXPECT_EQ(parsed.dispatch_rows, report.dispatch_rows);
  EXPECT_EQ(parsed.pool_hit_rate, report.pool_hit_rate);
  EXPECT_EQ(parsed.heap_allocs, report.heap_allocs);
  EXPECT_EQ(parsed.retries, report.retries);
  EXPECT_EQ(parsed.evictions, report.evictions);
  EXPECT_EQ(parsed.loss, report.loss);

  EXPECT_FALSE(ParseStepReportJson("{\"not\":\"a report\"}", &parsed));
}

// --- Telemetry drop accounting ----------------------------------------------

TEST(TelemetryDropsTest, DropsSplitByKindAndSurfaceInTrace) {
  CommTelemetry telemetry;
  telemetry.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    CommEvent event;
    event.rank = 0;
    telemetry.Record(event);
    CompEvent comp;
    comp.rank = 0;
    telemetry.RecordComp(comp);
    DispatchEvent dispatch;
    dispatch.rank = 0;
    telemetry.RecordDispatch(dispatch);
  }
  const TelemetryDropCounts drops = telemetry.drop_counts();
  EXPECT_EQ(drops.comm, 3u);
  EXPECT_EQ(drops.comp, 3u);
  EXPECT_EQ(drops.dispatch, 3u);
  EXPECT_EQ(drops.total(), 9u);
  EXPECT_EQ(telemetry.dropped(), 9u);

  const std::string trace =
      CommEventsToChromeTrace(telemetry.Events(), "obs-test", nullptr, nullptr,
                              nullptr, nullptr, nullptr, &drops);
  EXPECT_NE(trace.find("[WARNING] telemetry dropped events"), std::string::npos);
  EXPECT_NE(trace.find("\"dropped_comm\":3"), std::string::npos);
  EXPECT_NE(trace.find("\"dropped_dispatch\":3"), std::string::npos);

  // A clean registry emits no warning row.
  const TelemetryDropCounts none;
  const std::string clean_trace =
      CommEventsToChromeTrace({}, "obs-test", nullptr, nullptr, nullptr, nullptr,
                              nullptr, &none);
  EXPECT_EQ(clean_trace.find("[WARNING]"), std::string::npos);
}

// --- Trainer integration ----------------------------------------------------

NumericTrainConfig ObsTrainConfig() {
  NumericTrainConfig config;
  config.model = TinyMoeConfig(4, 2);
  config.model.num_layers = 1;
  config.model.vocab = 32;
  config.model.seq_len = 8;
  config.router.num_experts = 4;
  config.router.top_k = 2;
  config.dp_size = 2;
  config.batch_per_rank = 2;
  config.steps = 8;
  return config;
}

// Generous thresholds for wall-clock-driven assertions: a loaded CI host
// jitters single-digit-ms steps, so a verdict requires a >=2x, >=10ms,
// z>=6 excursion — trivial for an injected 30ms-per-collective stall,
// unreachable for scheduler noise.
AnomalyConfig RobustAnomalyConfig() {
  AnomalyConfig anomaly;
  anomaly.z_threshold = 6.0;
  anomaly.min_ratio = 2.0;
  anomaly.min_delta_ms = 10.0;
  return anomaly;
}

TEST(StepProfilerTrainerTest, EmitsOneReportPerRankStepAndWritesArtifacts) {
  const std::string jsonl_path = "obs_test_metrics.jsonl";
  const std::string trace_path = "obs_test_trace.json";
  const std::string prom_path = "obs_test_metrics.prom";
  std::remove(jsonl_path.c_str());
  std::remove(trace_path.c_str());
  std::remove(prom_path.c_str());

  StepProfilerConfig profiler_config;
  profiler_config.jsonl_path = jsonl_path;
  profiler_config.trace_path = trace_path;
  profiler_config.prom_path = prom_path;
  profiler_config.anomaly = RobustAnomalyConfig();
  profiler_config.world = 2;
  StepProfiler profiler(profiler_config);

  NumericTrainConfig config = ObsTrainConfig();
  config.profiler = &profiler;
  const TrainCurve curve = TrainLm(config);

  const std::vector<StepReport> reports = profiler.reports();
  ASSERT_EQ(reports.size(), static_cast<size_t>(config.steps * config.dp_size));
  ASSERT_EQ(curve.loss.size(), static_cast<size_t>(config.steps));
  for (const StepReport& report : reports) {
    EXPECT_GE(report.rank, 0);
    EXPECT_LT(report.rank, config.dp_size);
    EXPECT_GT(report.step_ms, 0.0) << "step " << report.step;
    EXPECT_GT(report.collectives, 0) << "step " << report.step;
    EXPECT_GT(report.wire_bytes, 0u) << "step " << report.step;
    // Each rank reports its own micro-batch CE loss; the curve is rank 0's.
    if (report.rank == 0) {
      EXPECT_EQ(report.loss, curve.loss[static_cast<size_t>(report.step)])
          << "step " << report.step;
    }
  }

  // metrics.jsonl: one parseable line per rank-step, matching reports().
  std::ifstream jsonl(jsonl_path);
  ASSERT_TRUE(jsonl.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(jsonl, line)) {
    StepReport parsed;
    EXPECT_TRUE(ParseStepReportJson(line, &parsed)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, reports.size());

  // Merged trace: valid-looking Chrome trace with the step spans on it.
  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::stringstream trace_buffer;
  trace_buffer << trace.rdbuf();
  const std::string trace_text = trace_buffer.str();
  EXPECT_EQ(trace_text.front(), '{');
  EXPECT_NE(trace_text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_text.find("step 0"), std::string::npos);
  EXPECT_EQ(trace_text.find("[WARNING]"), std::string::npos);

  // Prometheus snapshot carries the obs families.
  std::ifstream prom(prom_path);
  ASSERT_TRUE(prom.good());
  std::stringstream prom_buffer;
  prom_buffer << prom.rdbuf();
  EXPECT_NE(prom_buffer.str().find("obs_steps"), std::string::npos);
  EXPECT_NE(prom_buffer.str().find("obs_step_ms_bucket"), std::string::npos);

  std::remove(jsonl_path.c_str());
  std::remove(trace_path.c_str());
  std::remove(prom_path.c_str());
}

// The documented deterministic field set must be bitwise stable across
// worker counts (MSMOE_NUM_THREADS): these fields derive from the rank's
// own event streams, not from process-global counters.
TEST(StepProfilerTrainerTest, DeterministicFieldsBitwiseStableAcrossWorkerCounts) {
  const auto run = [](int workers) {
    const int restore = ParallelWorkerCount();
    SetParallelWorkerCount(workers);
    StepProfilerConfig profiler_config;
    profiler_config.anomaly = RobustAnomalyConfig();
    profiler_config.world = 2;
    StepProfiler profiler(profiler_config);
    NumericTrainConfig config = ObsTrainConfig();
    config.profiler = &profiler;
    TrainLm(config);
    SetParallelWorkerCount(restore);
    std::vector<StepReport> reports = profiler.reports();
    // Rank threads interleave Submit arbitrarily; order by (step, rank).
    std::sort(reports.begin(), reports.end(),
              [](const StepReport& a, const StepReport& b) {
                return a.step != b.step ? a.step < b.step : a.rank < b.rank;
              });
    return reports;
  };

  const std::vector<StepReport> one_worker = run(1);
  const std::vector<StepReport> four_workers = run(4);
  ASSERT_EQ(one_worker.size(), four_workers.size());
  for (size_t i = 0; i < one_worker.size(); ++i) {
    const StepReport& a = one_worker[i];
    const StepReport& b = four_workers[i];
    ASSERT_EQ(a.step, b.step);
    ASSERT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.loss, b.loss) << "step " << a.step << " rank " << a.rank;
    EXPECT_EQ(a.wire_bytes, b.wire_bytes) << "step " << a.step << " rank " << a.rank;
    EXPECT_EQ(a.collectives, b.collectives) << "step " << a.step << " rank " << a.rank;
    EXPECT_EQ(a.dispatch_rows, b.dispatch_rows)
        << "step " << a.step << " rank " << a.rank;
    EXPECT_EQ(a.expert_imbalance, b.expert_imbalance)
        << "step " << a.step << " rank " << a.rank;
  }
}

TEST(StepProfilerTrainerTest, CleanRunRaisesNoAnomalies) {
  StepProfilerConfig profiler_config;
  profiler_config.anomaly = RobustAnomalyConfig();
  profiler_config.world = 2;
  StepProfiler profiler(profiler_config);
  NumericTrainConfig config = ObsTrainConfig();
  config.profiler = &profiler;
  TrainLm(config);
  EXPECT_TRUE(profiler.anomalies().empty());
  EXPECT_EQ(profiler.StragglerSuspect(), -1);
}

TEST(StepProfilerTrainerTest, InjectedSlowRankFlaggedWithinFiveSteps) {
  // Clean pilot run: learn how many collectives one rank issues per step so
  // the fault window can be aimed at roughly step 6 (after the detector's
  // baseline has filled).
  StepProfilerConfig pilot_config;
  pilot_config.anomaly = RobustAnomalyConfig();
  pilot_config.world = 2;
  StepProfiler pilot(pilot_config);
  NumericTrainConfig config = ObsTrainConfig();
  config.steps = 14;
  config.profiler = &pilot;
  TrainLm(config);
  int64_t ops_per_step = 0;
  for (const StepReport& report : pilot.reports()) {
    if (report.rank == 1 && report.step == 0) {
      ops_per_step = report.collectives;
    }
  }
  ASSERT_GT(ops_per_step, 0);

  // Faulted run: rank 1 sleeps 30ms before every collective from roughly
  // step 6 onward. No timeout is armed, so nothing fails — the run is just
  // slow, which is exactly what the detector must notice on its own.
  FaultPlan plan;
  plan.AddSlowRank(/*rank=*/1, /*delay_us=*/30000.0,
                   /*from_op=*/7 * ops_per_step, /*num_ops=*/-1);
  StepProfilerConfig profiler_config;
  profiler_config.anomaly = RobustAnomalyConfig();
  profiler_config.world = 2;
  StepProfiler profiler(profiler_config);
  NumericTrainConfig faulty = ObsTrainConfig();
  faulty.steps = 14;
  faulty.fault_plan = &plan;
  faulty.profiler = &profiler;
  TrainLm(faulty);

  const std::vector<AnomalyEvent> anomalies = profiler.anomalies();
  ASSERT_FALSE(anomalies.empty()) << "slow rank never flagged";
  int64_t first_step = anomalies.front().step;
  for (const AnomalyEvent& event : anomalies) {
    first_step = std::min(first_step, event.step);
  }
  // The fault lands within steps ~5-7 (the op-index aim is approximate by
  // at most the setup collectives before step 0); the detector must page
  // within five steps of it.
  EXPECT_GE(first_step, 4);
  EXPECT_LE(first_step, 12) << "detector took more than five steps to fire";
  EXPECT_EQ(profiler.StragglerSuspect(), 1)
      << "cross-rank attribution picked the wrong rank";
}

}  // namespace
}  // namespace msmoe
