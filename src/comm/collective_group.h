// In-process collective communication over thread ranks.
//
// This is the repository's NCCL substitute: each "GPU rank" is a thread, and
// a CollectiveGroup provides barrier-synchronized collectives with exactly
// the semantics of the NCCL operations the paper uses (all-reduce,
// all-gather, reduce-scatter, all-to-all(v), broadcast). Reductions are
// performed in deterministic rank order so every member computes bit-
// identical results — which the numerical-equivalence tests rely on.
//
// Payload precision on the (virtual) wire is emulated by converting values
// before calling a collective (src/numerics); the group additionally keeps
// an analytic count of wire bytes per algorithm (ring AG/RS, all-to-all) so
// tests and benches can assert the communication-volume formulas of §3.
//
// Wire-byte accounting convention: every collective computes the TOTAL
// analytic volume of the operation (summed over all members' off-rank
// traffic) and adds it to wire_bytes() exactly once, on member 0
// (AccountOnce). No collective accumulates per-member shares — so
// wire_bytes() always reads as "bytes the fabric moved", regardless of
// which member queries it or how asymmetric the op was (AllToAllV).
//
// Emulated wire clock: on this substrate a collective's data movement is a
// memcpy, so comm/compute overlap would be unmeasurable in wall-clock time.
// set_wire_model() makes every data-moving collective additionally block for
// latency_us + bytes / bytes_per_us of IDLE time (an abortable wait, not a
// spin), modeling the link occupancy of the analytic volume it accounts.
// Off by default — nothing changes for existing callers; the overlap bench
// and tests enable it to measure fused-op pipelining as real elapsed time.
//
// Fault tolerance: the internal rendezvous is a CANCELLABLE barrier, not a
// raw std::barrier. Every collective has a Status-returning Try* form; a
// member that never arrives (crashed or stuck rank) surfaces as
// Status(kDeadlineExceeded) on the first member whose configured deadline
// expires and as the same sticky error on every other member, instead of a
// process-wide hang. Abort(status) cancels the barrier explicitly (fault
// injection, failed health checks); once aborted every collective fails
// fast with the FIRST error raised until all members rendezvous through
// RecoveryBarrier(), which clears the fault. The void-returning legacy
// collectives discard the status — they are for fault-free contexts, and
// under an abort they return with the output buffers unmodified; callers in
// fault-aware paths must use Try* or check status().
//
// Algorithm code should not call this class directly — issue collectives
// through the instrumented msmoe::Communicator layer (communicator.h),
// which records per-op telemetry on top of these primitives.
#ifndef MSMOE_SRC_COMM_COLLECTIVE_GROUP_H_
#define MSMOE_SRC_COMM_COLLECTIVE_GROUP_H_

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/logging.h"
#include "src/base/status.h"

namespace msmoe {

class CollectiveGroup {
 public:
  explicit CollectiveGroup(int size);

  int size() const { return size_; }

  // Analytic bytes a real fabric would have moved (sum over members).
  uint64_t wire_bytes() const { return wire_bytes_.load(std::memory_order_relaxed); }
  void ResetWireBytes() { wire_bytes_.store(0, std::memory_order_relaxed); }

  // --- Emulated wire clock (see header comment) ---------------------------
  //
  // bytes_per_us <= 0 disables the emulation (the default). Set before ranks
  // start issuing collectives; applies to every data-moving collective.
  void set_wire_model(double bytes_per_us, double latency_us) {
    wire_bytes_per_us_ = bytes_per_us;
    wire_latency_us_ = latency_us;
  }
  bool wire_model_enabled() const { return wire_bytes_per_us_ > 0.0; }
  // Modeled occupancy of `bytes` on the emulated wire (0 when disabled).
  double WireTimeUs(uint64_t bytes) const {
    if (!wire_model_enabled()) {
      return 0.0;
    }
    return wire_latency_us_ + static_cast<double>(bytes) / wire_bytes_per_us_;
  }

  // --- Fault surface -------------------------------------------------------

  // Deadline applied to every internal barrier wait. 0 (the default) waits
  // forever — exactly the pre-fault-tolerance behavior. Set before ranks
  // start issuing collectives.
  void set_timeout_ms(double timeout_ms) { timeout_ms_ = timeout_ms; }
  double timeout_ms() const { return timeout_ms_; }

  // Cancels the barrier: every current and future wait returns the first
  // non-OK status raised (sticky until RecoveryBarrier). `status` must be
  // non-OK. `culprit_rank` optionally attributes the fault to a member
  // (e.g. the rank an injected crash targeted); the FIRST attribution
  // sticks, like the first status.
  void Abort(Status status, int culprit_rank = -1);

  // First error raised on this group, or OK.
  Status status() const;
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  // The member the sticky error is attributed to: the rank passed to
  // Abort, or — for a barrier timeout — the lowest-indexed member that had
  // not arrived at the expired sync point. -1 when healthy or when no
  // attribution exists (e.g. an external Abort without a culprit). Cleared
  // by ResetAbort.
  int culprit_rank() const;

  // Permanently decommissions the group (elastic shrink replaced it with a
  // new epoch): aborts every waiter and makes the abort UNCLEARABLE —
  // ResetAbort/RecoveryBarrier keep the sticky status, so a straggling
  // collective issued against the retired membership fails loudly instead
  // of rendezvousing with nobody. If the group already carries a fault
  // status, that first error is kept (it is more informative than the
  // stale-epoch notice).
  void Retire(Status status);
  bool retired() const { return retired_.load(std::memory_order_acquire); }

  // Collective-safe fault recovery: ALL members call with their own index
  // once they have observed the failure and unwound out of the failed
  // step's collectives. Rendezvouses on a plain (never-cancelled) barrier,
  // clears the abort state, and rendezvouses again, so no member can re-
  // enter a collective while the reset is in flight. In this thread-rank
  // world even a "crashed" rank's thread survives to call this — it plays
  // the respawned replacement process of a production restart.
  void RecoveryBarrier(int member);

  // Phases of RecoveryBarrier, exposed so multi-group schemes (hierarchical
  // backend) can reset several groups inside one world rendezvous.
  void RecoveryArrive() { recovery_barrier_.arrive_and_wait(); }
  void ResetAbort();

  // --- Collectives ---------------------------------------------------------
  //
  // All members must call every collective, with their own member index.
  // Try* forms return the group status; the void forms discard it (see the
  // header comment).

  // The member-less forms are kept for call sites outside any rank context
  // (tests poking a barrier from an anonymous thread); they cannot
  // contribute to timeout culprit attribution.
  Status TryBarrier(int member = -1);
  void Barrier(int member = -1) { (void)TryBarrier(member); }

  // recv must hold size() * count elements; member m's send block lands at
  // recv[m * count .. (m+1) * count).
  template <typename T>
  Status TryAllGather(int member, const T* send, T* recv, int64_t count) {
    PublishSend(member, send);
    MSMOE_RETURN_IF_ERROR(SyncPoint(member));
    for (int src = 0; src < size_; ++src) {
      std::memcpy(recv + static_cast<int64_t>(src) * count, SendSlot<T>(src),
                  static_cast<size_t>(count) * sizeof(T));
    }
    const uint64_t volume = RingVolume(count * static_cast<int64_t>(sizeof(T)));
    AccountOnce(member, volume);
    MSMOE_RETURN_IF_ERROR(EmulateWire(volume));
    return SyncPoint(member);
  }
  template <typename T>
  void AllGather(int member, const T* send, T* recv, int64_t count) {
    (void)TryAllGather(member, send, recv, count);
  }

  // send holds size() * count elements; member m receives the sum of all
  // members' m-th blocks into recv (count elements).
  template <typename T>
  Status TryReduceScatter(int member, const T* send, T* recv, int64_t count) {
    PublishSend(member, send);
    MSMOE_RETURN_IF_ERROR(SyncPoint(member));
    const int64_t offset = static_cast<int64_t>(member) * count;
    for (int64_t i = 0; i < count; ++i) {
      double sum = 0.0;
      for (int src = 0; src < size_; ++src) {
        sum += static_cast<double>(SendSlot<T>(src)[offset + i]);
      }
      recv[i] = static_cast<T>(sum);
    }
    const uint64_t volume = RingVolume(count * static_cast<int64_t>(sizeof(T)));
    AccountOnce(member, volume);
    MSMOE_RETURN_IF_ERROR(EmulateWire(volume));
    return SyncPoint(member);
  }
  template <typename T>
  void ReduceScatter(int member, const T* send, T* recv, int64_t count) {
    (void)TryReduceScatter(member, send, recv, count);
  }

  // Element-wise sum over all members; every member receives the full result.
  template <typename T>
  Status TryAllReduce(int member, const T* send, T* recv, int64_t count) {
    PublishSend(member, send);
    MSMOE_RETURN_IF_ERROR(SyncPoint(member));
    for (int64_t i = 0; i < count; ++i) {
      double sum = 0.0;
      for (int src = 0; src < size_; ++src) {
        sum += static_cast<double>(SendSlot<T>(src)[i]);
      }
      recv[i] = static_cast<T>(sum);
    }
    const uint64_t volume = 2 * RingVolume(count * static_cast<int64_t>(sizeof(T)));
    AccountOnce(member, volume);
    MSMOE_RETURN_IF_ERROR(EmulateWire(volume));
    return SyncPoint(member);
  }
  template <typename T>
  void AllReduce(int member, const T* send, T* recv, int64_t count) {
    (void)TryAllReduce(member, send, recv, count);
  }

  // Member `root`'s buffer is copied to every member.
  template <typename T>
  Status TryBroadcast(int member, int root, T* data, int64_t count) {
    if (member == root) {
      PublishSend(member, data);
    }
    MSMOE_RETURN_IF_ERROR(SyncPoint(member));
    if (member != root) {
      std::memcpy(data, SendSlot<T>(root), static_cast<size_t>(count) * sizeof(T));
    }
    const uint64_t volume =
        static_cast<uint64_t>(size_ - 1) *
        static_cast<uint64_t>(count * static_cast<int64_t>(sizeof(T)));
    AccountOnce(member, volume);
    MSMOE_RETURN_IF_ERROR(EmulateWire(volume));
    return SyncPoint(member);
  }
  template <typename T>
  void Broadcast(int member, int root, T* data, int64_t count) {
    (void)TryBroadcast(member, root, data, count);
  }

  // Fixed-size all-to-all: send and recv hold size() * count elements;
  // recv[src * count ..] = member src's block addressed to this member.
  template <typename T>
  Status TryAllToAll(int member, const T* send, T* recv, int64_t count) {
    PublishSend(member, send);
    MSMOE_RETURN_IF_ERROR(SyncPoint(member));
    for (int src = 0; src < size_; ++src) {
      std::memcpy(recv + static_cast<int64_t>(src) * count,
                  SendSlot<T>(src) + static_cast<int64_t>(member) * count,
                  static_cast<size_t>(count) * sizeof(T));
    }
    const uint64_t volume = A2AVolume(count * static_cast<int64_t>(sizeof(T)));
    AccountOnce(member, volume);
    MSMOE_RETURN_IF_ERROR(EmulateWire(volume));
    return SyncPoint(member);
  }
  template <typename T>
  void AllToAll(int member, const T* send, T* recv, int64_t count) {
    (void)TryAllToAll(member, send, recv, count);
  }

  // Variable all-to-all. send_counts[d] elements go to member d, packed
  // contiguously in destination order. On return, *recv_counts[s] holds the
  // element count received from member s and recv is packed in source order.
  // recv must have capacity for the total received (callers can size it via
  // ExchangeCounts below, or pass a vector to the overload in comm_util).
  // *wire_out (optional) receives the total off-rank wire bytes of this
  // collective (identical on every member; accounted once per the header
  // convention).
  template <typename T>
  Status TryAllToAllV(int member, const T* send, const std::vector<int64_t>& send_counts,
                      T* recv, std::vector<int64_t>* recv_counts,
                      uint64_t* wire_out = nullptr) {
    MSMOE_CHECK_EQ(static_cast<int>(send_counts.size()), size_);
    PublishSend(member, send);
    PublishCounts(member, send_counts);
    MSMOE_RETURN_IF_ERROR(SyncPoint(member));
    recv_counts->assign(static_cast<size_t>(size_), 0);
    int64_t recv_offset = 0;
    for (int src = 0; src < size_; ++src) {
      // Offset of the block addressed to `member` inside src's send buffer.
      int64_t src_offset = 0;
      for (int dst = 0; dst < member; ++dst) {
        src_offset += CountAt(src, dst);
      }
      const int64_t n = CountAt(src, member);
      std::memcpy(recv + recv_offset, SendSlot<T>(src) + src_offset,
                  static_cast<size_t>(n) * sizeof(T));
      (*recv_counts)[static_cast<size_t>(src)] = n;
      recv_offset += n;
    }
    // The published counts matrix is stable between the barriers, so every
    // member computes the same total off-rank volume.
    uint64_t total = 0;
    for (int src = 0; src < size_; ++src) {
      for (int dst = 0; dst < size_; ++dst) {
        if (src != dst) {
          total += static_cast<uint64_t>(CountAt(src, dst)) * sizeof(T);
        }
      }
    }
    AccountOnce(member, total);
    if (wire_out != nullptr) {
      *wire_out = total;
    }
    MSMOE_RETURN_IF_ERROR(EmulateWire(total));
    return SyncPoint(member);
  }
  template <typename T>
  uint64_t AllToAllV(int member, const T* send, const std::vector<int64_t>& send_counts,
                     T* recv, std::vector<int64_t>* recv_counts) {
    uint64_t wire = 0;
    (void)TryAllToAllV(member, send, send_counts, recv, recv_counts, &wire);
    return wire;
  }

  // Shares each member's scalar value into *out (size() entries).
  // Accounted as an all-gather of one double: (size-1) * sizeof(double).
  Status TryExchangeScalars(int member, double value, std::vector<double>* out);
  std::vector<double> ExchangeScalars(int member, double value);

  // Shares each member's per-destination counts; *all_counts becomes the
  // full size() x size() matrix (row src, column dst). This is the
  // metadata rendezvous of AllToAllV exposed on its own, for the chunked
  // async driver — like the monolithic op's counts matrix it rides the
  // barrier's shared slots and accounts no wire bytes.
  Status TryExchangeCounts(int member, const std::vector<int64_t>& send_counts,
                           std::vector<int64_t>* all_counts);

 private:
  template <typename T>
  const T* SendSlot(int src) const {
    return static_cast<const T*>(send_slots_[static_cast<size_t>(src)]);
  }

  void PublishSend(int member, const void* ptr) {
    send_slots_[static_cast<size_t>(member)] = ptr;
  }
  void PublishCounts(int member, const std::vector<int64_t>& counts);
  int64_t CountAt(int src, int dst) const {
    return counts_[static_cast<size_t>(src * size_ + dst)];
  }

  // The cancellable rendezvous every collective phase runs through: returns
  // OK when all members arrived, the sticky abort status if the group was
  // cancelled, or raises kDeadlineExceeded for everyone when this waiter's
  // deadline expires first. `member` (when >= 0) marks this waiter in the
  // arrival bitmap, so a timeout can attribute the fault to the members
  // that never showed up.
  Status SyncPoint(int member = -1);

  // Blocks for WireTimeUs(bytes) of idle time when the wire model is on
  // (every member sleeps concurrently, so one collective costs one wire
  // time). Abortable: a group Abort wakes sleepers with the sticky status.
  Status EmulateWire(uint64_t bytes);

  // Ring all-gather / reduce-scatter volume per the standard (g-1)/g * total.
  uint64_t RingVolume(int64_t bytes_per_member) const {
    return static_cast<uint64_t>(size_ - 1) * static_cast<uint64_t>(bytes_per_member);
  }
  // All-to-all: every member sends (g-1) off-rank blocks of `bytes` each.
  uint64_t A2AVolume(int64_t bytes_per_block) const {
    return static_cast<uint64_t>(size_) * static_cast<uint64_t>(size_ - 1) *
           static_cast<uint64_t>(bytes_per_block) / static_cast<uint64_t>(size_);
  }
  // Adds `bytes` exactly once per collective (member 0 accounts) — the
  // single accounting convention documented at the top of this header.
  void AccountOnce(int member, uint64_t bytes) {
    if (member == 0) {
      wire_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
  }

  const int size_;
  std::vector<const void*> send_slots_;
  std::vector<int64_t> counts_;
  std::vector<double> scalars_;
  std::atomic<uint64_t> wire_bytes_{0};

  // Cancellable-barrier state.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
  Status abort_status_;               // first error; OK = healthy
  std::atomic<bool> aborted_{false};  // lock-free fast-path mirror
  std::atomic<bool> retired_{false};  // abort is permanent (stale epoch)
  double timeout_ms_ = 0.0;           // 0 = wait forever
  // Which members have arrived at the OPEN sync point (cleared when the
  // barrier closes); consulted on timeout to name the missing ranks.
  std::vector<char> arrived_members_;
  int culprit_rank_ = -1;  // first fault attribution; -1 = none

  // Emulated wire clock (off when bytes_per_us <= 0).
  double wire_bytes_per_us_ = 0.0;
  double wire_latency_us_ = 0.0;

  // Recovery rendezvous: a plain barrier that is never cancelled (all rank
  // threads survive simulated faults), used only by RecoveryBarrier.
  std::barrier<> recovery_barrier_;
};

// A persistent FIFO task thread drawn from the same process-wide pool that
// backs RunOnRanks. Communicators dedicate one per rank as the "comm proxy"
// thread driving nonblocking chunked collectives (async_comm.h) — the
// thread-rank analogue of a GPU's communication stream. Tasks run strictly
// in submission order. The destructor drains the queue, waits for the loop
// to finish, and returns the thread to the shared pool for reuse.
class PooledThread {
 public:
  PooledThread();
  ~PooledThread();

  PooledThread(const PooledThread&) = delete;
  PooledThread& operator=(const PooledThread&) = delete;

  // Enqueues a task; runs after every previously submitted task completed.
  // Tasks must not throw.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void Drain();

 private:
  struct State;
  std::shared_ptr<State> state_;
};

// Runs fn(rank) on `world_size` concurrent rank threads and blocks until
// all complete. Rank threads come from a per-process persistent pool (one
// live thread is dedicated per rank for the whole call — ranks block inside
// collective barriers and can never be queued), so trainer loops issuing a
// RunOnRanks per step reuse the same threads instead of paying a
// spawn/join per call. A rank failure (thrown exception, or MSMOE_CHECK
// failure — converted to an exception for the rank threads) is re-raised as
// a CHECK failure on the calling thread after all ranks finished. NOTE:
// without an abort_group, a rank that fails while its peers wait inside a
// collective leaves those peers blocked — use RunOnRanksStatus with the
// group for fault-prone code.
void RunOnRanks(int world_size, const std::function<void(int)>& fn);

// As RunOnRanks, but the first rank failure (1) immediately cancels
// `abort_group` (when non-null) so surviving ranks fall out of any
// collective with Status(kAborted) instead of deadlocking, and (2) is
// returned to the caller as a Status once every rank thread joined.
Status RunOnRanksStatus(int world_size, const std::function<void(int)>& fn,
                        CollectiveGroup* abort_group = nullptr);

}  // namespace msmoe

#endif  // MSMOE_SRC_COMM_COLLECTIVE_GROUP_H_
