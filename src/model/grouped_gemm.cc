#include "src/model/grouped_gemm.h"

#include <algorithm>
#include <chrono>

#include "src/base/arena.h"
#include "src/base/logging.h"
#include "src/base/parallel_for.h"
#include "src/tensor/gemm_kernel.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

double GroupedFlops(const Tensor& x, const std::vector<int64_t>& offsets,
                    int64_t out_dim, bool backward) {
  // Forward: 2*rows*in*out per expert. Backward adds dx and dW GEMMs.
  const double fwd = 2.0 * static_cast<double>(x.dim(0)) *
                     static_cast<double>(x.dim(1)) * static_cast<double>(out_dim);
  (void)offsets;
  return backward ? 2.0 * fwd : fwd;
}

// Tile height of the flattened work queue. Small enough that a hot expert
// fans out over every worker, large enough that one task amortizes the
// blocked kernel's panel setup.
constexpr int64_t kRowPanel = 64;

// One entry of the flattened queue. weight_grad tasks (backward only) cover
// the expert's whole row range: dW accumulates over rows, so splitting it
// would change the reduction order and break bitwise determinism.
struct GemmTask {
  int64_t expert = 0;
  int64_t begin = 0;  // absolute row in x / y / dy
  int64_t rows = 0;
  bool weight_grad = false;
};

// Flattens the non-empty experts' (expert × row-panel) tiles — zero-row
// experts are short-circuited here, before any worker sees them. With
// `with_weight_grad`, each expert's dW task is emitted next to its row
// tiles so ParallelFor's contiguous shards mix the two task kinds. The
// queue lives in the calling thread's workspace: zero steady-state allocs.
GemmTask* BuildTaskQueue(const std::vector<int64_t>& offsets, int64_t num_experts,
                         bool with_weight_grad, int64_t* task_count) {
  int64_t tasks = 0;
  for (int64_t e = 0; e < num_experts; ++e) {
    const int64_t rows =
        offsets[static_cast<size_t>(e) + 1] - offsets[static_cast<size_t>(e)];
    if (rows == 0) {
      continue;
    }
    tasks += (rows + kRowPanel - 1) / kRowPanel + (with_weight_grad ? 1 : 0);
  }
  GemmTask* queue = reinterpret_cast<GemmTask*>(ThreadWorkspace().Bytes(
      "grouped_gemm.tasks", std::max<int64_t>(1, tasks) * static_cast<int64_t>(sizeof(GemmTask))));
  int64_t at = 0;
  for (int64_t e = 0; e < num_experts; ++e) {
    const int64_t begin = offsets[static_cast<size_t>(e)];
    const int64_t rows = offsets[static_cast<size_t>(e) + 1] - begin;
    if (rows == 0) {
      continue;
    }
    if (with_weight_grad) {
      queue[at++] = GemmTask{e, begin, rows, /*weight_grad=*/true};
    }
    for (int64_t r = 0; r < rows; r += kRowPanel) {
      queue[at++] = GemmTask{e, begin + r, std::min(kRowPanel, rows - r), false};
    }
  }
  *task_count = at;
  return queue;
}

}  // namespace

Tensor GroupedGemm(const Tensor& x, const std::vector<int64_t>& offsets,
                   const Tensor* weights, int64_t num_experts) {
  MSMOE_CHECK_EQ(x.ndim(), 2);
  MSMOE_CHECK_GT(num_experts, 0);
  MSMOE_CHECK_EQ(static_cast<int64_t>(offsets.size()), num_experts + 1);
  MSMOE_CHECK_EQ(offsets.back(), x.dim(0));
  const int64_t in_dim = x.dim(1);
  const int64_t out_dim = weights[0].dim(1);
  for (int64_t e = 0; e < num_experts; ++e) {
    MSMOE_CHECK_EQ(weights[e].dim(0), in_dim);
    MSMOE_CHECK_EQ(weights[e].dim(1), out_dim);
  }

  const auto start = std::chrono::steady_clock::now();
  // Every row of y belongs to exactly one expert's contiguous range and is
  // written by exactly one tile's beta == 0 GEMM (empty experts own no rows).
  Tensor y = Tensor::Uninit({x.dim(0), out_dim});
  // The flattened tile queue splits across the worker pool; tiles are
  // near-uniform row panels, so grain 1 is the balanced choice and the
  // effective granularity scales with total rows, not expert count. Each
  // output row's accumulation is a single GEMM over the full k dimension —
  // independent of the tile-to-worker assignment — so results are
  // bit-identical for any worker count and any panel size.
  int64_t task_count = 0;
  const GemmTask* queue = BuildTaskQueue(offsets, num_experts, false, &task_count);
  ParallelFor(task_count, /*grain=*/1, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const GemmTask& task = queue[t];
      GemmBlocked(false, false, task.rows, out_dim, in_dim, 1.0f,
                  x.data() + task.begin * in_dim, weights[task.expert].data(), 0.0f,
                  y.data() + task.begin * out_dim);
    }
  });
  const double micros =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count();
  internal::RecordGroupedGemmCall(GroupedFlops(x, offsets, out_dim, /*backward=*/false),
                                  micros);
  return y;
}

Tensor GroupedGemm(const Tensor& x, const std::vector<int64_t>& offsets,
                   const std::vector<Tensor>& weights) {
  MSMOE_CHECK(!weights.empty());
  return GroupedGemm(x, offsets, weights.data(), static_cast<int64_t>(weights.size()));
}

GroupedGemmGrads GroupedGemmBackward(const Tensor& dy, const Tensor& x,
                                     const std::vector<int64_t>& offsets,
                                     const Tensor* weights, int64_t num_experts) {
  const int64_t in_dim = x.dim(1);
  const int64_t out_dim = dy.dim(1);
  MSMOE_CHECK_EQ(dy.dim(0), x.dim(0));
  MSMOE_CHECK_GT(num_experts, 0);
  MSMOE_CHECK_EQ(static_cast<int64_t>(offsets.size()), num_experts + 1);

  const auto start = std::chrono::steady_clock::now();
  GroupedGemmGrads grads;
  grads.dx = Tensor::Uninit({x.dim(0), in_dim});  // fully written, as y above
  grads.dweights.reserve(static_cast<size_t>(num_experts));
  for (int64_t e = 0; e < num_experts; ++e) {
    // Zeros, NOT Uninit: an expert with zero rows never writes its dW.
    grads.dweights.emplace_back(weights[e].shape());
  }
  // One queue mixes the row-panel dx tiles with the whole-expert dW tasks;
  // dx rows and dweights[e] are disjoint across tasks.
  int64_t task_count = 0;
  const GemmTask* queue = BuildTaskQueue(offsets, num_experts, true, &task_count);
  ParallelFor(task_count, /*grain=*/1, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const GemmTask& task = queue[t];
      if (task.weight_grad) {
        // dW = x^T @ dy over the expert's FULL row range (row reduction).
        GemmBlocked(true, false, in_dim, out_dim, task.rows, 1.0f,
                    x.data() + task.begin * in_dim, dy.data() + task.begin * out_dim,
                    0.0f, grads.dweights[static_cast<size_t>(task.expert)].data());
      } else {
        // dx = dy @ W^T, row-split safe.
        GemmBlocked(false, true, task.rows, in_dim, out_dim, 1.0f,
                    dy.data() + task.begin * out_dim, weights[task.expert].data(), 0.0f,
                    grads.dx.data() + task.begin * in_dim);
      }
    }
  });
  const double micros =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count();
  internal::RecordGroupedGemmCall(GroupedFlops(x, offsets, out_dim, /*backward=*/true),
                                  micros);
  return grads;
}

GroupedGemmGrads GroupedGemmBackward(const Tensor& dy, const Tensor& x,
                                     const std::vector<int64_t>& offsets,
                                     const std::vector<Tensor>& weights) {
  MSMOE_CHECK(!weights.empty());
  return GroupedGemmBackward(dy, x, offsets, weights.data(),
                             static_cast<int64_t>(weights.size()));
}

}  // namespace msmoe
