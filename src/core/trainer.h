// Real (non-simulated) data-parallel training of a small MoE LM over the
// thread-rank collectives — the substrate for the convergence experiments:
//
//   Fig 17: BF16 all-to-all DP gradient compression vs FP32 reduce-scatter.
//   Fig 18: FP8 vs BF16 training (from scratch and continued).
//   Fig 19: long production run with periodic checkpoint restarts.
//
// Every rank holds a replica initialized from the same seed; gradients are
// synchronized with the selected GradSyncMode and averaged, so the replicas
// stay bit-identical and rank 0's loss is the curve.
//
// Precision emulation (the paper's hardware FP8/BF16 pipelines are
// substituted by software rounding, see DESIGN.md):
//   kBf16: parameters rounded to BF16 before each forward/backward
//          (FP32 masters kept by Adam).
//   kFp8:  parameters rounded through per-tensor-scaled E4M3 and hidden
//          activations rounded per-token between layers (§7's per-token
//          quantization), straight-through in backward.
#ifndef MSMOE_SRC_CORE_TRAINER_H_
#define MSMOE_SRC_CORE_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/comm/communicator.h"
#include "src/comm/fault.h"
#include "src/comm/telemetry.h"
#include "src/core/recovery_policy.h"
#include "src/model/config.h"
#include "src/model/lm.h"
#include "src/model/optimizer.h"
#include "src/model/router.h"
#include "src/obs/step_profiler.h"
#include "src/parallel/dp_grad_sync.h"

namespace msmoe {

enum class TrainPrecision { kFp32, kBf16, kFp8 };

const char* TrainPrecisionName(TrainPrecision precision);

struct NumericTrainConfig {
  ModelConfig model = TinyMoeConfig();
  RouterConfig router;
  int dp_size = 2;
  // Collective backend for the DP group: flat single-level ring, or the
  // Appendix A.1 two-level intra/inter-node scheme. Hierarchical requires
  // gpus_per_node > 1 dividing dp_size (otherwise falls back to flat).
  CommBackend comm_backend = CommBackend::kFlat;
  int gpus_per_node = 0;
  GradSyncMode grad_sync = GradSyncMode::kFp32ReduceScatter;
  TrainPrecision precision = TrainPrecision::kBf16;
  AdamConfig adam;
  int64_t batch_per_rank = 2;  // sequences per rank per micro-batch
  // Micro-batches accumulated per optimizer step (pipeline-parallel style).
  // Accumulation is ALWAYS in FP32 (§5, Fig 10): gradients are cast to the
  // wire precision exactly once, after the full accumulation.
  int64_t grad_accum_steps = 1;
  int64_t steps = 50;
  uint64_t seed = 1234;
  // Fig 19: checkpoint every `restart_every` steps and immediately restart
  // from that checkpoint (0 disables). Exercises save/restore continuity.
  int64_t restart_every = 0;
  // Fig 18 "continue training": run this many warmup steps first and treat
  // them as the loaded checkpoint (0 = train from scratch).
  int64_t warmup_steps = 0;
  // ZeRO-1 (§2.2): shard FP32 masters and Adam moments over the DP group;
  // each rank updates its shard and parameters are re-gathered every step.
  bool zero_shard_optimizer = false;
  // Wire precision of the ZeRO parameter all-gather. §7's multi-precision
  // optimizer stores FP8 compute parameters, halving this collective; the
  // FP32 masters live only in the owner's shard.
  TrainPrecision param_gather_precision = TrainPrecision::kFp32;
  // §5 inter-op overlap: the whole step is recorded as a two-stream graph
  // on the runtime executor (src/core/exec_graph.h) — each layer's DP
  // gradient reduce-scatter is registered producer-gated before backward
  // starts, released the moment that layer's backward finishes, and waited
  // on the comm stream before the optimizer step. Bitwise identical to the
  // synchronous path (per-element reductions are segmentation-independent),
  // so the loss curve does not change. Only takes effect on the replicated
  // kFp32ReduceScatter path with grad_accum_steps == 1 and no fault
  // machinery armed; those shapes fall back to the synchronous sync so
  // fault replay keeps its bit-identical op sequence. Combining it with
  // zero_shard_optimizer is a CONFIG ERROR (the ZeRO-1 path reduces one
  // flat buffer after the full backward — there are no per-layer segments
  // to overlap): ValidateNumericTrainConfig rejects it and TrainLm refuses
  // to run, instead of silently training without overlap.
  bool overlap_grad_sync = false;
  // Chunks per per-layer reduce-scatter in the overlap path.
  int overlap_grad_chunks = 2;

  // --- Fault tolerance -----------------------------------------------------
  // Injected fault schedule (not owned; nullptr = fault-free). Installed on
  // the communicator before ranks start, so every collective consults it.
  FaultPlan* fault_plan = nullptr;
  // Deadline for every collective barrier wait (0 = wait forever). With a
  // deadline, a crashed or wedged rank surfaces as kDeadlineExceeded on all
  // peers instead of a hang.
  double collective_timeout_ms = 0.0;
  // Take a recovery snapshot every N optimizer steps (0 = only the initial
  // post-warmup state). Snapshots are barrier-gated so every rank commits
  // the same checkpoint step or none does.
  int64_t checkpoint_every = 0;
  // When set (and not ZeRO-sharded), rank 0 persists every snapshot through
  // SaveCheckpoint (crash-safe v2 file) and recovery restores from the file
  // instead of memory; ZeRO keeps per-rank shards, which only exist
  // in-memory.
  std::string checkpoint_path;
  // Recovery attempts before the run gives up (guards against a fault that
  // deterministically refires, e.g. a permanent slow rank under a timeout).
  int64_t max_recoveries = 8;
  // Cross-rank bitwise checksum of the synced flat buffer after every step;
  // a divergence (e.g. an injected bit-flip) aborts the group and triggers
  // recovery instead of silently forking the replicas.
  bool guard_grad_checksum = false;
  // Copy the communicator's telemetry into TrainCurve::comm_events so the
  // caller can run straggler detection / trace export over the run.
  bool capture_comm_events = false;

  // --- Elastic degraded-mode recovery --------------------------------------
  // Classify faults through RecoveryPolicy instead of retrying every one:
  // transient verdicts roll back with exponential backoff; a PERMANENT
  // verdict evicts the culprit rank and training continues on the shrunk
  // world (src/comm/elastic.h) from a resharded snapshot. Incompatible with
  // restart_every (the Fig 19 restart pattern assumes a fixed world).
  bool elastic = false;
  RecoveryPolicyConfig recovery_policy;
  // Refuse (CHECK) to shrink below this many survivors.
  int min_world = 1;
  // Start from this checkpoint file instead of fresh init (non-ZeRO only:
  // file checkpoints hold replicated state). With first_step > 0 the run
  // continues at that step — batches, loss indices, and snapshots line up
  // with the run that wrote the file, so a fresh W-k run started from a
  // shrunk run's snapshot replays its post-shrink curve bit for bit.
  std::string init_checkpoint_path;
  int64_t first_step = 0;

  // --- Observability (src/obs/step_profiler.h) -----------------------------
  // When set, every recorded training step on every rank is bracketed by a
  // ScopedStep: per-rank StepReports (compute / exposed comm / bubble / MFU
  // / pool-hit / expert skew / loss) accumulate in the profiler, feed its
  // online anomaly detector, and — on elastic runs — a detector straggler
  // verdict is forwarded to the communicator as an advisory suspect hint
  // (lowest-priority input to fault attribution). The trainer also reports
  // retries and evictions, and updates the profiler's world after a shrink.
  // Before TrainLm returns it calls profiler->Finish(...) with the final
  // epoch's telemetry, writing metrics.jsonl / the merged trace / the
  // Prometheus snapshot (Finish is idempotent — callers may call it again).
  // Not owned; nullptr (the default) disables all of it — instrumented and
  // uninstrumented runs are loss-bitwise-identical (bench_observability
  // asserts this).
  StepProfiler* profiler = nullptr;
};

// One recovery incident: training failed at `failed_step`, rolled back to
// the snapshot at `resumed_step`, and replayed the difference. failed_step
// is the step at which rank 0 OBSERVED the failure — an abort raised by a
// racing rank can surface one step before the faulty op itself (fault
// observation is asynchronous, exactly as in a real job); recovery converges
// identically either way.
struct RecoveryEvent {
  int64_t failed_step = 0;
  int64_t resumed_step = 0;
  int64_t steps_lost = 0;  // failed_step - resumed_step (recomputed work)
  std::string cause;       // first error observed on the group
  // Elastic runs additionally classify the incident:
  FaultVerdict verdict = FaultVerdict::kTransient;
  int culprit_rank = -1;   // attributed global rank (-1 unknown)
  int world_after = 0;     // world size after handling (0 = non-elastic run)
  double backoff_ms = 0.0; // backoff slept before the transient retry
};

struct TrainCurve {
  std::vector<double> loss;            // CE loss per step (lowest live rank)
  std::vector<int64_t> restart_steps;  // steps at which a restart occurred
  std::vector<RecoveryEvent> recoveries;
  std::vector<CommEvent> comm_events;  // when capture_comm_events is set
  // Ranks still training at the end (== dp_size unless elastic shrank).
  int final_world = 0;
};

// Rejects contradictory configurations (currently: overlap_grad_sync
// together with zero_shard_optimizer) with kInvalidArgument. TrainLm
// validates on entry and CHECK-fails on a non-OK status rather than
// silently dropping the requested behavior.
[[nodiscard]] Status ValidateNumericTrainConfig(const NumericTrainConfig& config);

// Runs the training job on config.dp_size rank threads and returns the
// loss curve.
TrainCurve TrainLm(const NumericTrainConfig& config);

// The synthetic task: token i's target is input[i-1] (previous-token copy,
// solvable only through attention). Deterministic in (seed, step, rank).
void MakeTrainingBatch(const ModelConfig& model, uint64_t seed, int64_t step, int rank,
                       int64_t batch, std::vector<int64_t>* inputs,
                       std::vector<int64_t>* targets);

// Precision helpers (exposed for tests).
void RoundParams(LmParams& params, TrainPrecision precision);

}  // namespace msmoe

#endif  // MSMOE_SRC_CORE_TRAINER_H_
