file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_strong_scaling.dir/bench_table3_strong_scaling.cc.o"
  "CMakeFiles/bench_table3_strong_scaling.dir/bench_table3_strong_scaling.cc.o.d"
  "bench_table3_strong_scaling"
  "bench_table3_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
