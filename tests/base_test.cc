#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/base/math_util.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/table.h"
#include "src/base/units.h"

namespace msmoe {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgument("bad shape");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Internal("boom"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextUniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextUniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NextIndexBounds) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t idx = rng.NextIndex(10);
    EXPECT_LT(idx, 10u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit over 1000 draws
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng base(5);
  Rng fork1 = base.Fork(1);
  Rng fork1_again = Rng(5).Fork(1);
  Rng fork2 = base.Fork(2);
  EXPECT_EQ(fork1.NextU64(), fork1_again.NextU64());
  EXPECT_NE(fork1.NextU64(), fork2.NextU64());
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(1, 8), 1);
  EXPECT_EQ(CeilDiv(0, 8), 0);
}

TEST(MathUtilTest, AlignUp) {
  EXPECT_EQ(AlignUp(10, 8), 16);
  EXPECT_EQ(AlignUp(16, 8), 16);
  EXPECT_EQ(AlignUp(0, 8), 0);
}

TEST(MathUtilTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-9));
  EXPECT_FALSE(AlmostEqual(1.0, 1.01));
  EXPECT_TRUE(AlmostEqual(0.0, 0.0));
}

TEST(UnitsTest, BandwidthConversions) {
  // 400 GB/s == 400e9 bytes/s == 4e5 bytes/us.
  EXPECT_DOUBLE_EQ(GBps(400.0), 4.0e5);
  EXPECT_DOUBLE_EQ(ToGBps(GBps(123.0)), 123.0);
}

TEST(UnitsTest, ComputeConversions) {
  // 989 TFLOPS == 989e12 FLOP/s == 989e6 FLOP/us.
  EXPECT_DOUBLE_EQ(Tflops(989.0), 989.0e6);
}

TEST(UnitsTest, TimeConversions) {
  EXPECT_DOUBLE_EQ(UsToSeconds(2.5e6), 2.5);
  EXPECT_DOUBLE_EQ(SecondsToUs(3.0), 3.0e6);
  EXPECT_DOUBLE_EQ(UsToMs(1500.0), 1.5);
}

TEST(TableTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "2.50"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 2.50  |"), std::string::npos);
}

TEST(TableTest, CsvRoundTrip) {
  TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "x,y\n1,2\n");
}

TEST(TableTest, FmtHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<int64_t>(42)), "42");
}

TEST(StatusTest, IsRetryableFaultCoversExactlyTheTransientCodes) {
  // The recovery paths (legacy rollback and elastic classification) both
  // route through this predicate: a timed-out or aborted collective is
  // worth retrying; corrupted data and config/logic errors are not — a
  // retry would reproduce them identically.
  EXPECT_TRUE(IsRetryableFault(DeadlineExceeded("peer missing")));
  EXPECT_TRUE(IsRetryableFault(Aborted("rank crashed")));
  EXPECT_FALSE(IsRetryableFault(DataLoss("checksum mismatch")));
  EXPECT_FALSE(IsRetryableFault(InvalidArgument("bad config")));
  EXPECT_FALSE(IsRetryableFault(FailedPrecondition("stale epoch")));
  EXPECT_FALSE(IsRetryableFault(Internal("bug")));
  EXPECT_FALSE(IsRetryableFault(Status::Ok()));
}

}  // namespace
}  // namespace msmoe
