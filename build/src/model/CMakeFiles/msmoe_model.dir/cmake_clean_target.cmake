file(REMOVE_RECURSE
  "libmsmoe_model.a"
)
