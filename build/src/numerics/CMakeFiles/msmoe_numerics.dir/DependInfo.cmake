
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/fp8.cc" "src/numerics/CMakeFiles/msmoe_numerics.dir/fp8.cc.o" "gcc" "src/numerics/CMakeFiles/msmoe_numerics.dir/fp8.cc.o.d"
  "/root/repo/src/numerics/quantize.cc" "src/numerics/CMakeFiles/msmoe_numerics.dir/quantize.cc.o" "gcc" "src/numerics/CMakeFiles/msmoe_numerics.dir/quantize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/msmoe_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
