#include "src/tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

namespace msmoe {
namespace {

int64_t NumelOf(const std::vector<int64_t>& shape) {
  int64_t numel = 1;
  for (int64_t d : shape) {
    MSMOE_CHECK_GE(d, 0);
    numel *= d;
  }
  return numel;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)), numel_(NumelOf(shape_)) {
  data_ = ArenaAcquireFloats(numel_);
  if (numel_ > 0) std::memset(data_, 0, static_cast<size_t>(numel_) * sizeof(float));
}

Tensor::~Tensor() { ArenaReleaseFloats(data_, numel_); }

Tensor::Tensor(const Tensor& other) : shape_(other.shape_), numel_(other.numel_) {
  data_ = ArenaAcquireFloats(numel_);
  if (numel_ > 0) {
    std::memcpy(data_, other.data_, static_cast<size_t>(numel_) * sizeof(float));
  }
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (numel_ != other.numel_) {
    ArenaReleaseFloats(data_, numel_);
    data_ = ArenaAcquireFloats(other.numel_);
    numel_ = other.numel_;
  }
  shape_ = other.shape_;
  if (numel_ > 0) {
    std::memcpy(data_, other.data_, static_cast<size_t>(numel_) * sizeof(float));
  }
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)), data_(other.data_), numel_(other.numel_) {
  other.shape_.clear();
  other.data_ = nullptr;
  other.numel_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  ArenaReleaseFloats(data_, numel_);
  shape_ = std::move(other.shape_);
  data_ = other.data_;
  numel_ = other.numel_;
  other.shape_.clear();
  other.data_ = nullptr;
  other.numel_ = 0;
  return *this;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Uninit(std::vector<int64_t> shape) {
  Tensor out;
  out.shape_ = std::move(shape);
  out.numel_ = NumelOf(out.shape_);
  out.data_ = ArenaAcquireFloats(out.numel_);
  return out;
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor out = Uninit(std::move(shape));
  out.Fill(value);
  return out;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float mean, float stddev) {
  Tensor out = Uninit(std::move(shape));
  for (int64_t i = 0; i < out.numel_; ++i) {
    out.data_[i] = static_cast<float>(rng.NextGaussian(mean, stddev));
  }
  return out;
}

Tensor Tensor::Uniform(std::vector<int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor out = Uninit(std::move(shape));
  for (int64_t i = 0; i < out.numel_; ++i) {
    out.data_[i] = static_cast<float>(rng.NextUniform(lo, hi));
  }
  return out;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, std::vector<float> values) {
  Tensor out = Uninit(std::move(shape));
  MSMOE_CHECK_EQ(out.numel_, static_cast<int64_t>(values.size()));
  if (out.numel_ > 0) {
    std::memcpy(out.data_, values.data(), static_cast<size_t>(out.numel_) * sizeof(float));
  }
  return out;
}

int64_t Tensor::dim(int i) const {
  MSMOE_CHECK_GE(i, 0);
  MSMOE_CHECK_LT(i, ndim());
  return shape_[static_cast<size_t>(i)];
}

float& Tensor::AtChecked(int64_t i) {
  MSMOE_CHECK_GE(i, 0);
  MSMOE_CHECK_LT(i, numel_);
  return data_[i];
}

float Tensor::AtChecked(int64_t i) const { return const_cast<Tensor*>(this)->AtChecked(i); }

float& Tensor::AtChecked(int64_t i, int64_t j) {
  MSMOE_CHECK_EQ(ndim(), 2);
  MSMOE_CHECK_GE(i, 0);
  MSMOE_CHECK_LT(i, shape_[0]);
  MSMOE_CHECK_GE(j, 0);
  MSMOE_CHECK_LT(j, shape_[1]);
  return data_[i * shape_[1] + j];
}

float Tensor::AtChecked(int64_t i, int64_t j) const {
  return const_cast<Tensor*>(this)->AtChecked(i, j);
}

float& Tensor::AtChecked(int64_t i, int64_t j, int64_t k) {
  MSMOE_CHECK_EQ(ndim(), 3);
  MSMOE_CHECK_GE(i, 0);
  MSMOE_CHECK_LT(i, shape_[0]);
  MSMOE_CHECK_GE(j, 0);
  MSMOE_CHECK_LT(j, shape_[1]);
  MSMOE_CHECK_GE(k, 0);
  MSMOE_CHECK_LT(k, shape_[2]);
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float Tensor::AtChecked(int64_t i, int64_t j, int64_t k) const {
  return const_cast<Tensor*>(this)->AtChecked(i, j, k);
}

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  MSMOE_CHECK_EQ(NumelOf(new_shape), numel_);
  Tensor out = Uninit(std::move(new_shape));
  if (numel_ > 0) {
    std::memcpy(out.data_, data_, static_cast<size_t>(numel_) * sizeof(float));
  }
  return out;
}

void Tensor::Fill(float value) {
  for (int64_t i = 0; i < numel_; ++i) data_[i] = value;
}

void Tensor::AddInPlace(const Tensor& other) {
  MSMOE_CHECK(SameShape(*this, other)) << ShapeString() << " vs " << other.ShapeString();
  for (int64_t i = 0; i < numel_; ++i) {
    data_[i] += other.data_[i];
  }
}

void Tensor::ScaleInPlace(float factor) {
  for (int64_t i = 0; i < numel_; ++i) {
    data_[i] *= factor;
  }
}

void Tensor::AxpyInPlace(float alpha, const Tensor& other) {
  MSMOE_CHECK(SameShape(*this, other));
  for (int64_t i = 0; i < numel_; ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

Tensor Tensor::SliceRows(int64_t row_begin, int64_t row_end) const {
  MSMOE_CHECK_EQ(ndim(), 2);
  MSMOE_CHECK_LE(0, row_begin);
  MSMOE_CHECK_LE(row_begin, row_end);
  MSMOE_CHECK_LE(row_end, shape_[0]);
  const int64_t cols = shape_[1];
  Tensor out = Uninit({row_end - row_begin, cols});
  if (out.numel_ > 0) {
    std::memcpy(out.data_, data_ + row_begin * cols,
                static_cast<size_t>(out.numel_) * sizeof(float));
  }
  return out;
}

double Tensor::SumAbs() const {
  double total = 0.0;
  for (int64_t i = 0; i < numel_; ++i) {
    total += std::fabs(static_cast<double>(data_[i]));
  }
  return total;
}

double Tensor::MaxAbs() const {
  double max_abs = 0.0;
  for (int64_t i = 0; i < numel_; ++i) {
    max_abs = std::fmax(max_abs, std::fabs(static_cast<double>(data_[i])));
  }
  return max_abs;
}

double Tensor::RelativeL2Diff(const Tensor& other) const {
  MSMOE_CHECK(SameShape(*this, other));
  double diff_sq = 0.0;
  double ref_sq = 0.0;
  for (int64_t i = 0; i < numel_; ++i) {
    const double d = static_cast<double>(data_[i]) - static_cast<double>(other.data_[i]);
    diff_sq += d * d;
    ref_sq += static_cast<double>(other.data_[i]) * static_cast<double>(other.data_[i]);
  }
  if (ref_sq == 0.0) {
    return diff_sq == 0.0 ? 0.0 : std::sqrt(diff_sq);
  }
  return std::sqrt(diff_sq / ref_sq);
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    out << (i > 0 ? ", " : "") << shape_[i];
  }
  out << "]";
  return out.str();
}

bool SameShape(const Tensor& a, const Tensor& b) { return a.shape() == b.shape(); }

}  // namespace msmoe
