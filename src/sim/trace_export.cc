#include "src/sim/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "src/base/logging.h"

namespace msmoe {
namespace {

// Minimal JSON string escaping (names are ASCII identifiers in practice).
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Status WriteString(const std::string& path, const std::string& json) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(std::fopen(path.c_str(), "wb"),
                                                       &std::fclose);
  if (file == nullptr) {
    return Internal("cannot open trace file for writing: " + path);
  }
  if (std::fwrite(json.data(), 1, json.size(), file.get()) != json.size()) {
    return Internal("trace write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace

std::string ToChromeTrace(const std::vector<SimOp>& ops, const GraphResult& result,
                          const std::string& process_name) {
  MSMOE_CHECK_EQ(ops.size(), result.timings.size());
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\""
      << JsonEscape(process_name) << "\"}}";
  for (size_t i = 0; i < ops.size(); ++i) {
    const SimOp& op = ops[i];
    const OpTiming& timing = result.timings[i];
    out << ",{\"name\":\"" << JsonEscape(op.name) << "\",\"cat\":\""
        << JsonEscape(op.category.empty() ? "op" : op.category)
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << op.stream << ",\"ts\":" << timing.start
        << ",\"dur\":" << (timing.end - timing.start) << ",\"args\":{\"comm\":"
        << (op.is_comm ? "true" : "false") << "}}";
  }
  out << "]}";
  return out.str();
}

Status WriteChromeTrace(const std::string& path, const std::vector<SimOp>& ops,
                        const GraphResult& result, const std::string& process_name) {
  return WriteString(path, ToChromeTrace(ops, result, process_name));
}

std::string CommEventsToChromeTrace(const std::vector<CommEvent>& events,
                                    const std::string& process_name,
                                    const StragglerReport* health,
                                    const std::vector<CompEvent>* comp_events,
                                    const MemStatsSnapshot* mem,
                                    const std::vector<DispatchEvent>* dispatch_events,
                                    const std::vector<AnomalyEvent>* anomalies,
                                    const TelemetryDropCounts* drops) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\""
      << JsonEscape(process_name) << "\"}}";
  if (drops != nullptr && drops->total() > 0) {
    // A saturated ring buffer means this trace is INCOMPLETE — surface that
    // as a loud metadata row instead of letting dropped events vanish.
    out << ",{\"name\":\"[WARNING] telemetry dropped events\",\"cat\":\"telemetry\","
        << "\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{"
        << "\"dropped_comm\":" << drops->comm
        << ",\"dropped_comp\":" << drops->comp
        << ",\"dropped_dispatch\":" << drops->dispatch
        << ",\"dropped_total\":" << drops->total() << "}}";
  }
  int max_rank = -1;
  bool any_async = false;
  for (const CommEvent& event : events) {
    max_rank = std::max(max_rank, event.rank);
    any_async = any_async || event.async_lane;
  }
  if (comp_events != nullptr) {
    for (const CompEvent& event : *comp_events) {
      max_rank = std::max(max_rank, event.rank);
    }
  }
  if (dispatch_events != nullptr) {
    for (const DispatchEvent& event : *dispatch_events) {
      max_rank = std::max(max_rank, event.rank);
    }
  }
  auto flagged = [&](int rank) {
    return health != nullptr && rank < static_cast<int>(health->ranks.size()) &&
           health->ranks[static_cast<size_t>(rank)].straggler;
  };
  // Two lanes per rank: tid 2r is the rank's main thread (sync collectives
  // and compute spans), tid 2r+1 the comm-proxy thread driving chunked
  // async collectives — overlap shows up as simultaneous busy lanes.
  const auto main_tid = [](int rank) { return 2 * rank; };
  const auto comm_tid = [](int rank) { return 2 * rank + 1; };
  for (int rank = 0; rank <= max_rank; ++rank) {
    out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << main_tid(rank)
        << ",\"args\":{\"name\":\"rank " << rank
        << (flagged(rank) ? " [STRAGGLER]" : "") << "\"}}";
    if (any_async) {
      out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
          << comm_tid(rank) << ",\"args\":{\"name\":\"rank " << rank
          << " (comm)\"}}";
    }
  }
  if (health != nullptr) {
    for (const RankHealth& rank_health : health->ranks) {
      char buffer[160];
      std::snprintf(buffer, sizeof(buffer),
                    ",\"args\":{\"straggler\":%s,\"mean_entry_lag_us\":%.3f,"
                    "\"max_entry_lag_us\":%.3f,\"threshold_us\":%.3f}}",
                    rank_health.straggler ? "true" : "false",
                    rank_health.mean_entry_lag_us, rank_health.max_entry_lag_us,
                    health->threshold_us);
      out << ",{\"name\":\"" << (rank_health.straggler ? "straggler" : "rank_health")
          << "\",\"cat\":\"health\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
          << main_tid(rank_health.rank) << ",\"ts\":0" << buffer;
    }
  }
  for (const CommEvent& event : events) {
    char buffer[64];
    out << ",{\"name\":\"" << CommOpName(event.op) << "\",\"cat\":\""
        << JsonEscape(event.algorithm) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
        << (event.async_lane ? comm_tid(event.rank) : main_tid(event.rank));
    std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f,\"dur\":%.3f", event.start_us,
                  event.duration_us);
    out << buffer;
    out << ",\"args\":{\"wire_bytes\":" << event.wire_bytes << ",\"elem_type\":\""
        << JsonEscape(event.elem_type) << "\",\"elem_count\":" << event.elem_count
        << ",\"group_size\":" << event.group_size
        << ",\"primary\":" << (event.primary ? "true" : "false");
    if (event.async_lane) {
      out << ",\"logical_op\":" << event.logical_op
          << ",\"chunk\":" << event.chunk_index
          << ",\"chunk_count\":" << event.chunk_count;
    }
    out << "}}";
  }
  if (comp_events != nullptr) {
    for (const CompEvent& event : *comp_events) {
      char buffer[64];
      out << ",{\"name\":\"" << JsonEscape(event.name)
          << "\",\"cat\":\"compute\",\"ph\":\"X\",\"pid\":1,\"tid\":"
          << main_tid(event.rank);
      std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f,\"dur\":%.3f",
                    event.start_us, event.duration_us);
      out << buffer << ",\"args\":{}}";
    }
  }
  if (mem != nullptr) {
    // One lane past the last rank's comm lane, so the memory rows sort
    // below the timelines they annotate.
    const int mem_tid = 2 * (max_rank + 1);
    out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << mem_tid
        << ",\"args\":{\"name\":\"memory\"}}";
    const auto mem_event = [&](const std::string& name, uint64_t acquires,
                               uint64_t pool_hits, uint64_t heap_allocs,
                               uint64_t acquired_bytes, double hit_rate) {
      char buffer[224];
      std::snprintf(buffer, sizeof(buffer),
                    ",\"args\":{\"acquires\":%llu,\"pool_hits\":%llu,"
                    "\"heap_allocs\":%llu,\"acquired_bytes\":%llu,"
                    "\"pool_hit_rate\":%.4f}}",
                    static_cast<unsigned long long>(acquires),
                    static_cast<unsigned long long>(pool_hits),
                    static_cast<unsigned long long>(heap_allocs),
                    static_cast<unsigned long long>(acquired_bytes), hit_rate);
      out << ",{\"name\":\"" << JsonEscape(name)
          << "\",\"cat\":\"memory\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
          << mem_tid << ",\"ts\":0" << buffer;
    };
    mem_event("mem total", mem->acquires, mem->pool_hits, mem->heap_allocs,
              mem->acquired_bytes, mem->hit_rate());
    for (const MemPhaseSnapshot& phase : mem->phases) {
      mem_event("mem " + phase.name, phase.acquires, phase.pool_hits,
                phase.heap_allocs, phase.acquired_bytes, phase.hit_rate());
    }
  }
  if (dispatch_events != nullptr && !dispatch_events->empty()) {
    // Right below the memory lane (which sits at 2 * (max_rank + 1)), so the
    // routing-skew annotations sort under the rank timelines they explain.
    const int dispatch_tid = 2 * (max_rank + 1) + 1;
    out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << dispatch_tid
        << ",\"args\":{\"name\":\"dispatch\"}}";
    for (const DispatchEvent& event : *dispatch_events) {
      char buffer[256];
      out << ",{\"name\":\"" << JsonEscape(event.name)
          << "\",\"cat\":\"dispatch\",\"ph\":\"X\",\"pid\":1,\"tid\":" << dispatch_tid;
      std::snprintf(buffer, sizeof(buffer),
                    ",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"rank\":%d,\"experts\":%lld,"
                    "\"rows_total\":%lld,\"rows_max\":%lld,\"imbalance\":%.4f,"
                    "\"chunks\":%d}}",
                    event.start_us, event.duration_us, event.rank,
                    static_cast<long long>(event.experts),
                    static_cast<long long>(event.rows_total),
                    static_cast<long long>(event.rows_max), event.imbalance,
                    event.chunks);
      out << buffer;
    }
  }
  if (anomalies != nullptr && !anomalies->empty()) {
    // Below memory (2*(max_rank+1)) and dispatch (+1): the detector's
    // verdict lane, so a page is one glance away from its evidence.
    const int anomaly_tid = 2 * (max_rank + 1) + 2;
    out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << anomaly_tid
        << ",\"args\":{\"name\":\"anomaly\"}}";
    for (const AnomalyEvent& event : *anomalies) {
      char buffer[192];
      out << ",{\"name\":\"" << AnomalyKindName(event.kind)
          << "\",\"cat\":\"anomaly\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
          << anomaly_tid;
      std::snprintf(buffer, sizeof(buffer),
                    ",\"ts\":%.3f,\"args\":{\"rank\":%d,\"step\":%lld,"
                    "\"value_ms\":%.3f,\"baseline_ms\":%.3f,\"zscore\":%.2f,"
                    "\"detail\":\"",
                    event.ts_us, event.rank,
                    static_cast<long long>(event.step), event.value_ms,
                    event.baseline_ms, event.zscore);
      out << buffer << JsonEscape(event.detail) << "\"}}";
    }
  }
  out << "]}";
  return out.str();
}

Status WriteCommTrace(const std::string& path, const std::vector<CommEvent>& events,
                      const std::string& process_name, const StragglerReport* health,
                      const std::vector<CompEvent>* comp_events,
                      const MemStatsSnapshot* mem,
                      const std::vector<DispatchEvent>* dispatch_events,
                      const std::vector<AnomalyEvent>* anomalies,
                      const TelemetryDropCounts* drops) {
  return WriteString(path, CommEventsToChromeTrace(events, process_name, health,
                                                   comp_events, mem, dispatch_events,
                                                   anomalies, drops));
}

}  // namespace msmoe
