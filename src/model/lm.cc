#include "src/model/lm.h"

#include "src/base/logging.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {

LmParams LmParams::Init(const ModelConfig& config, Rng& rng) {
  LmParams params;
  params.embedding = Tensor::Randn({config.vocab, config.hidden}, rng, 0.0f, 0.02f);
  for (int64_t l = 0; l < config.num_layers; ++l) {
    params.layers.push_back(MoeLayerParams::Init(config, rng));
  }
  params.final_gain = Tensor::Full({config.hidden}, 1.0f);
  params.lm_head = Tensor::Randn({config.hidden, config.vocab}, rng, 0.0f, 0.02f);
  return params;
}

LmParams LmParams::ZerosLike(const ModelConfig& config) {
  LmParams params;
  params.embedding = Tensor::Zeros({config.vocab, config.hidden});
  for (int64_t l = 0; l < config.num_layers; ++l) {
    params.layers.push_back(MoeLayerParams::ZerosLike(config));
  }
  params.final_gain = Tensor::Zeros({config.hidden});
  params.lm_head = Tensor::Zeros({config.hidden, config.vocab});
  return params;
}

void LmParams::ForEach(const std::function<void(const std::string&, Tensor&)>& fn) {
  fn("embedding", embedding);
  for (size_t l = 0; l < layers.size(); ++l) {
    const std::string prefix = "layer." + std::to_string(l) + ".";
    layers[l].ForEach([&fn, &prefix](const std::string& name, Tensor& tensor) {
      fn(prefix + name, tensor);
    });
  }
  fn("final_gain", final_gain);
  fn("lm_head", lm_head);
}

void LmParams::ForEachConst(
    const std::function<void(const std::string&, const Tensor&)>& fn) const {
  const_cast<LmParams*>(this)->ForEach(
      [&fn](const std::string& name, Tensor& tensor) { fn(name, tensor); });
}

std::vector<Tensor*> LmParams::TensorList() {
  std::vector<Tensor*> list;
  ForEach([&list](const std::string&, Tensor& tensor) { list.push_back(&tensor); });
  return list;
}

std::vector<const Tensor*> LmParams::TensorListConst() const {
  std::vector<const Tensor*> list;
  ForEachConst(
      [&list](const std::string&, const Tensor& tensor) { list.push_back(&tensor); });
  return list;
}

int64_t LmParams::TotalElements() const {
  int64_t total = 0;
  ForEachConst([&total](const std::string&, const Tensor& tensor) { total += tensor.numel(); });
  return total;
}

void LmParams::Accumulate(const LmParams& other) {
  embedding.AddInPlace(other.embedding);
  for (size_t l = 0; l < layers.size(); ++l) {
    layers[l].Accumulate(other.layers[l]);
  }
  final_gain.AddInPlace(other.final_gain);
  lm_head.AddInPlace(other.lm_head);
}

void LmParams::Scale(float factor) {
  ForEach([factor](const std::string&, Tensor& tensor) { tensor.ScaleInPlace(factor); });
}

namespace {

Tensor EmbedTokens(const Tensor& embedding, const std::vector<int64_t>& ids) {
  const int64_t hidden = embedding.dim(1);
  Tensor out({static_cast<int64_t>(ids.size()), hidden});
  for (size_t t = 0; t < ids.size(); ++t) {
    MSMOE_CHECK_GE(ids[t], 0);
    MSMOE_CHECK_LT(ids[t], embedding.dim(0));
    std::copy(embedding.data() + ids[t] * hidden, embedding.data() + (ids[t] + 1) * hidden,
              out.data() + static_cast<int64_t>(t) * hidden);
  }
  return out;
}

}  // namespace

LmStepStats LmForwardBackward(const LmParams& params, const ModelConfig& config,
                              const RouterConfig& router,
                              const std::vector<int64_t>& input_ids,
                              const std::vector<int64_t>& target_ids, int64_t batch,
                              LmParams* grads,
                              const ActivationTransform& activation_transform,
                              const LayerGradCallback& on_layer_grads) {
  MSMOE_CHECK_EQ(input_ids.size(), target_ids.size());
  MSMOE_CHECK_EQ(params.layers.size(), static_cast<size_t>(config.num_layers));
  const int64_t tokens = static_cast<int64_t>(input_ids.size());

  // Forward.
  Tensor hidden = EmbedTokens(params.embedding, input_ids);
  std::vector<MoeLayerCache> caches(static_cast<size_t>(config.num_layers));
  LmStepStats stats;
  for (int64_t l = 0; l < config.num_layers; ++l) {
    hidden = MoeLayerForward(params.layers[static_cast<size_t>(l)], config, router, hidden,
                             batch, &caches[static_cast<size_t>(l)]);
    stats.aux_loss += caches[static_cast<size_t>(l)].routing.aux_loss;
    if (activation_transform) {
      activation_transform(hidden);
    }
  }
  Tensor final_inv_rms;
  Tensor normed = RmsNorm(hidden, params.final_gain, &final_inv_rms);
  Tensor logits = MatMul(normed, params.lm_head);
  CrossEntropyResult ce = CrossEntropy(logits, target_ids);
  stats.ce_loss = ce.mean_loss;

  // Backward.
  MatMulGrads head_grads = MatMulBackward(ce.dlogits, normed, params.lm_head);
  grads->lm_head.AddInPlace(head_grads.db);
  RmsNormGrads final_norm_grads =
      RmsNormBackward(head_grads.da, hidden, params.final_gain, final_inv_rms);
  grads->final_gain.AddInPlace(final_norm_grads.dgain);

  Tensor dhidden = std::move(final_norm_grads.dx);
  for (int64_t l = config.num_layers - 1; l >= 0; --l) {
    MoeLayerGrads layer_grads =
        MoeLayerBackward(params.layers[static_cast<size_t>(l)], config, router,
                         caches[static_cast<size_t>(l)], dhidden, batch);
    grads->layers[static_cast<size_t>(l)].Accumulate(layer_grads.dparams);
    if (on_layer_grads) {
      on_layer_grads(l);
    }
    dhidden = std::move(layer_grads.dhidden);
  }

  // Embedding backward: scatter-add rows.
  const int64_t h = config.hidden;
  for (int64_t t = 0; t < tokens; ++t) {
    const int64_t id = input_ids[static_cast<size_t>(t)];
    float* dst = grads->embedding.data() + id * h;
    const float* src = dhidden.data() + t * h;
    for (int64_t c = 0; c < h; ++c) {
      dst[c] += src[c];
    }
  }
  return stats;
}

double LmForwardLoss(const LmParams& params, const ModelConfig& config,
                     const RouterConfig& router, const std::vector<int64_t>& input_ids,
                     const std::vector<int64_t>& target_ids, int64_t batch,
                     const ActivationTransform& activation_transform) {
  Tensor hidden = EmbedTokens(params.embedding, input_ids);
  MoeLayerCache cache;
  for (int64_t l = 0; l < config.num_layers; ++l) {
    hidden = MoeLayerForward(params.layers[static_cast<size_t>(l)], config, router, hidden,
                             batch, &cache);
    if (activation_transform) {
      activation_transform(hidden);
    }
  }
  Tensor final_inv_rms;
  Tensor normed = RmsNorm(hidden, params.final_gain, &final_inv_rms);
  Tensor logits = MatMul(normed, params.lm_head);
  return CrossEntropy(logits, target_ids).mean_loss;
}

}  // namespace msmoe
