#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/base/parallel_for.h"
#include "src/base/rng.h"
#include "src/comm/async_comm.h"
#include "src/comm/collective_group.h"
#include "src/comm/communicator.h"
#include "src/comm/hierarchical.h"
#include "src/numerics/bf16.h"

namespace msmoe {
namespace {

TEST(CollectiveGroupTest, AllGather) {
  const int n = 4;
  const int64_t count = 3;
  CollectiveGroup group(n);
  std::vector<std::vector<float>> results(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(count);
    for (int64_t i = 0; i < count; ++i) {
      send[static_cast<size_t>(i)] = static_cast<float>(rank * 10 + i);
    }
    std::vector<float> recv(static_cast<size_t>(n * count));
    group.AllGather(rank, send.data(), recv.data(), count);
    results[static_cast<size_t>(rank)] = recv;
  });
  for (int rank = 0; rank < n; ++rank) {
    for (int src = 0; src < n; ++src) {
      for (int64_t i = 0; i < count; ++i) {
        EXPECT_EQ(results[rank][static_cast<size_t>(src * count + i)],
                  static_cast<float>(src * 10 + i));
      }
    }
  }
}

TEST(CollectiveGroupTest, AllReduceSumsAcrossRanks) {
  const int n = 5;
  const int64_t count = 7;
  CollectiveGroup group(n);
  std::vector<std::vector<float>> results(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(count, static_cast<float>(rank + 1));
    std::vector<float> recv(count);
    group.AllReduce(rank, send.data(), recv.data(), count);
    results[static_cast<size_t>(rank)] = recv;
  });
  const float expected = static_cast<float>(n * (n + 1) / 2);
  for (int rank = 0; rank < n; ++rank) {
    for (int64_t i = 0; i < count; ++i) {
      EXPECT_EQ(results[rank][static_cast<size_t>(i)], expected);
    }
  }
}

TEST(CollectiveGroupTest, AllReduceBitIdenticalAcrossRanks) {
  // Deterministic reduction order: every rank gets the same bits even with
  // non-associative float input.
  const int n = 4;
  const int64_t count = 64;
  CollectiveGroup group(n);
  std::vector<std::vector<float>> results(n);
  RunOnRanks(n, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank) + 100);
    std::vector<float> send(count);
    for (auto& v : send) {
      v = static_cast<float>(rng.NextGaussian(0.0, 1e8));
    }
    std::vector<float> recv(count);
    group.AllReduce(rank, send.data(), recv.data(), count);
    results[static_cast<size_t>(rank)] = recv;
  });
  for (int rank = 1; rank < n; ++rank) {
    EXPECT_EQ(results[0], results[static_cast<size_t>(rank)]);
  }
}

TEST(CollectiveGroupTest, ReduceScatter) {
  const int n = 3;
  const int64_t count = 2;
  CollectiveGroup group(n);
  std::vector<std::vector<float>> results(n);
  RunOnRanks(n, [&](int rank) {
    // Rank r sends value (r+1) everywhere; chunk c also tagged with c.
    std::vector<float> send(static_cast<size_t>(n * count));
    for (int chunk = 0; chunk < n; ++chunk) {
      for (int64_t i = 0; i < count; ++i) {
        send[static_cast<size_t>(chunk * count + i)] =
            static_cast<float>((rank + 1) * 100 + chunk);
      }
    }
    std::vector<float> recv(count);
    group.ReduceScatter(rank, send.data(), recv.data(), count);
    results[static_cast<size_t>(rank)] = recv;
  });
  // Chunk r = sum over ranks of (rank+1)*100 + r = 600 + 3r.
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_EQ(results[rank][0], static_cast<float>(600 + 3 * rank));
  }
}

TEST(CollectiveGroupTest, ReduceScatterThenAllGatherEqualsAllReduce) {
  const int n = 4;
  const int64_t chunk = 5;
  const int64_t total = n * chunk;
  CollectiveGroup group(n);
  CollectiveGroup group2(n);
  std::vector<std::vector<float>> via_rs_ag(n);
  std::vector<std::vector<float>> via_ar(n);
  RunOnRanks(n, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank) + 7);
    std::vector<float> send(static_cast<size_t>(total));
    for (auto& v : send) {
      v = static_cast<float>(rng.NextGaussian());
    }
    std::vector<float> chunk_out(static_cast<size_t>(chunk));
    group.ReduceScatter(rank, send.data(), chunk_out.data(), chunk);
    std::vector<float> full(static_cast<size_t>(total));
    group.AllGather(rank, chunk_out.data(), full.data(), chunk);
    via_rs_ag[static_cast<size_t>(rank)] = full;

    std::vector<float> ar(static_cast<size_t>(total));
    group2.AllReduce(rank, send.data(), ar.data(), total);
    via_ar[static_cast<size_t>(rank)] = ar;
  });
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_EQ(via_rs_ag[rank], via_ar[rank]);
  }
}

TEST(CollectiveGroupTest, Broadcast) {
  const int n = 4;
  CollectiveGroup group(n);
  std::vector<std::vector<float>> results(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> data(3, rank == 2 ? 7.0f : -1.0f);
    group.Broadcast(rank, /*root=*/2, data.data(), 3);
    results[static_cast<size_t>(rank)] = data;
  });
  for (int rank = 0; rank < n; ++rank) {
    for (float v : results[rank]) {
      EXPECT_EQ(v, 7.0f);
    }
  }
}

TEST(CollectiveGroupTest, AllToAllTransposesBlocks) {
  const int n = 3;
  const int64_t count = 2;
  CollectiveGroup group(n);
  std::vector<std::vector<float>> results(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(n * count));
    for (int dst = 0; dst < n; ++dst) {
      for (int64_t i = 0; i < count; ++i) {
        send[static_cast<size_t>(dst * count + i)] =
            static_cast<float>(rank * 10 + dst);
      }
    }
    std::vector<float> recv(static_cast<size_t>(n * count));
    group.AllToAll(rank, send.data(), recv.data(), count);
    results[static_cast<size_t>(rank)] = recv;
  });
  for (int rank = 0; rank < n; ++rank) {
    for (int src = 0; src < n; ++src) {
      EXPECT_EQ(results[rank][static_cast<size_t>(src * count)],
                static_cast<float>(src * 10 + rank));
    }
  }
}

TEST(CollectiveGroupTest, AllToAllV) {
  const int n = 3;
  CollectiveGroup group(n);
  std::vector<std::vector<float>> results(n);
  std::vector<std::vector<int64_t>> recv_counts(n);
  RunOnRanks(n, [&](int rank) {
    // Rank r sends (dst + 1) elements to each dst, values = r*100 + dst.
    std::vector<int64_t> send_counts;
    std::vector<float> send;
    for (int dst = 0; dst < n; ++dst) {
      send_counts.push_back(dst + 1);
      for (int i = 0; i <= dst; ++i) {
        send.push_back(static_cast<float>(rank * 100 + dst));
      }
    }
    std::vector<float> recv(static_cast<size_t>(n * (rank + 1)));
    std::vector<int64_t> counts;
    group.AllToAllV(rank, send.data(), send_counts, recv.data(), &counts);
    results[static_cast<size_t>(rank)] = recv;
    recv_counts[static_cast<size_t>(rank)] = counts;
  });
  for (int rank = 0; rank < n; ++rank) {
    int64_t offset = 0;
    for (int src = 0; src < n; ++src) {
      EXPECT_EQ(recv_counts[rank][static_cast<size_t>(src)], rank + 1);
      for (int i = 0; i <= rank; ++i) {
        EXPECT_EQ(results[rank][static_cast<size_t>(offset + i)],
                  static_cast<float>(src * 100 + rank));
      }
      offset += rank + 1;
    }
  }
}

TEST(CollectiveGroupTest, ExchangeScalars) {
  const int n = 4;
  CollectiveGroup group(n);
  std::vector<std::vector<double>> results(n);
  RunOnRanks(n, [&](int rank) {
    results[static_cast<size_t>(rank)] = group.ExchangeScalars(rank, rank * 1.5);
  });
  for (int rank = 0; rank < n; ++rank) {
    for (int src = 0; src < n; ++src) {
      EXPECT_EQ(results[rank][static_cast<size_t>(src)], src * 1.5);
    }
  }
}

TEST(CollectiveGroupTest, WireByteAccounting) {
  const int n = 4;
  const int64_t count = 100;
  CollectiveGroup group(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(count, 1.0f);
    std::vector<float> recv(static_cast<size_t>(n * count));
    group.AllGather(rank, send.data(), recv.data(), count);
  });
  // Ring all-gather: (n-1) * count * 4 bytes.
  EXPECT_EQ(group.wire_bytes(), static_cast<uint64_t>((n - 1) * count * 4));
  group.ResetWireBytes();
  EXPECT_EQ(group.wire_bytes(), 0u);
}

TEST(CollectiveGroupTest, BroadcastWireByteAccounting) {
  const int n = 4;
  const int64_t count = 50;
  CollectiveGroup group(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> data(static_cast<size_t>(count), rank == 1 ? 2.0f : 0.0f);
    group.Broadcast(rank, /*root=*/1, data.data(), count);
    EXPECT_EQ(data[0], 2.0f);
  });
  // Root sends the payload to each of the n-1 non-roots, accounted once.
  EXPECT_EQ(group.wire_bytes(), static_cast<uint64_t>((n - 1) * count * 4));
}

TEST(CollectiveGroupTest, ExchangeScalarsWireByteAccounting) {
  const int n = 4;
  CollectiveGroup group(n);
  RunOnRanks(n, [&](int rank) { group.ExchangeScalars(rank, 1.0); });
  // An all-gather of one double per member: (n-1) * 8 bytes total.
  EXPECT_EQ(group.wire_bytes(), static_cast<uint64_t>((n - 1) * sizeof(double)));
  RunOnRanks(n, [&](int rank) { group.ExchangeScalars(rank, 2.0); });
  EXPECT_EQ(group.wire_bytes(), 2 * static_cast<uint64_t>((n - 1) * sizeof(double)));
}

TEST(CollectiveGroupTest, AllToAllVAccountsTotalOnceAndReturnsIt) {
  // The total off-rank volume is accounted exactly once (the header
  // convention) and returned identically to every member.
  const int n = 3;
  CollectiveGroup group(n);
  std::vector<uint64_t> returned(static_cast<size_t>(n), 0);
  RunOnRanks(n, [&](int rank) {
    std::vector<int64_t> send_counts(static_cast<size_t>(n));
    int64_t total = 0;
    for (int dst = 0; dst < n; ++dst) {
      send_counts[static_cast<size_t>(dst)] = rank + dst + 1;
      total += rank + dst + 1;
    }
    std::vector<float> send(static_cast<size_t>(total), 1.0f);
    std::vector<float> recv(64);
    std::vector<int64_t> recv_counts;
    returned[static_cast<size_t>(rank)] =
        group.AllToAllV(rank, send.data(), send_counts, recv.data(), &recv_counts);
  });
  uint64_t expected = 0;
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src != dst) {
        expected += static_cast<uint64_t>(src + dst + 1) * sizeof(float);
      }
    }
  }
  EXPECT_EQ(group.wire_bytes(), expected);
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_EQ(returned[static_cast<size_t>(rank)], expected) << rank;
  }
}

TEST(CollectiveGroupTest, AllToAllWireBytesLessThanAllGatherTotal) {
  // A2A moves (n-1)/n of the all-gather payload per rank: for token dispatch
  // both move the same per-rank volume here by construction; just verify the
  // accounting formulas.
  const int n = 4;
  const int64_t count = 64;
  CollectiveGroup ag_group(n);
  CollectiveGroup a2a_group(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(n * count), 1.0f);
    std::vector<float> recv(static_cast<size_t>(n * count));
    a2a_group.AllToAll(rank, send.data(), recv.data(), count);
    ag_group.AllGather(rank, send.data(), recv.data(), count);  // count per rank
  });
  EXPECT_EQ(a2a_group.wire_bytes(), static_cast<uint64_t>(n * (n - 1) * count * 4 / n));
  EXPECT_EQ(ag_group.wire_bytes(), static_cast<uint64_t>((n - 1) * count * 4));
}

TEST(HierarchicalCommTest, MatchesFlatAllReduce) {
  const int nodes = 2;
  const int per_node = 3;
  const int world = nodes * per_node;
  const int64_t count = 37;  // deliberately not divisible by per_node
  HierarchicalComm hier(nodes, per_node);
  CollectiveGroup flat(world);
  std::vector<std::vector<float>> hier_out(world);
  std::vector<std::vector<float>> flat_out(world);
  RunOnRanks(world, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank) + 55);
    std::vector<float> data(count);
    for (auto& v : data) {
      v = static_cast<float>(rng.NextGaussian());
    }
    std::vector<float> flat_result(count);
    flat.AllReduce(rank, data.data(), flat_result.data(), count);
    flat_out[static_cast<size_t>(rank)] = flat_result;

    hier.AllReduce(rank, data.data(), count);
    hier_out[static_cast<size_t>(rank)] = data;
  });
  for (int rank = 0; rank < world; ++rank) {
    ASSERT_EQ(hier_out[rank].size(), flat_out[rank].size());
    for (int64_t i = 0; i < count; ++i) {
      EXPECT_NEAR(hier_out[rank][static_cast<size_t>(i)],
                  flat_out[rank][static_cast<size_t>(i)], 1e-4)
          << "rank " << rank << " index " << i;
    }
  }
}

TEST(HierarchicalCommTest, AllRanksIdentical) {
  const int nodes = 2;
  const int per_node = 4;
  const int world = nodes * per_node;
  HierarchicalComm hier(nodes, per_node);
  std::vector<std::vector<float>> out(world);
  RunOnRanks(world, [&](int rank) {
    std::vector<float> data(16, static_cast<float>(rank));
    hier.AllReduce(rank, data.data(), 16);
    out[static_cast<size_t>(rank)] = data;
  });
  for (int rank = 1; rank < world; ++rank) {
    EXPECT_EQ(out[0], out[static_cast<size_t>(rank)]);
  }
  // Sum of ranks 0..7 = 28.
  EXPECT_EQ(out[0][0], 28.0f);
}

TEST(HierarchicalCommTest, InterNodeVolumeMatchesAppendixA1) {
  // Appendix A.1: inter-node volume for SP sync is 2 * P/n * (d-1)/d per
  // rank-chunk flow; intra adds 2 * P * (n-1)/n.
  const int nodes = 2;       // d
  const int per_node = 4;    // n
  const int64_t count = 4 * 1024;  // divisible by n so no padding effects
  HierarchicalComm hier(nodes, per_node);
  RunOnRanks(nodes * per_node, [&](int rank) {
    std::vector<float> data(static_cast<size_t>(count), 1.0f);
    hier.AllReduce(rank, data.data(), count);
  });
  const uint64_t bytes = count * 4;
  // Intra: per node, RS + AG = 2 * (n-1) * (P/n) -> accounted as
  // (n-1)*chunk per collective with chunk = P/n... summed over both nodes.
  const uint64_t chunk_bytes = bytes / per_node;
  const uint64_t expected_intra =
      static_cast<uint64_t>(nodes) * 2 * (per_node - 1) * chunk_bytes;
  // Inter: per local index, all-reduce of chunk = 2*(d-1)*chunk.
  const uint64_t expected_inter =
      static_cast<uint64_t>(per_node) * 2 * (nodes - 1) * chunk_bytes;
  EXPECT_EQ(hier.IntraWireBytes(), expected_intra);
  EXPECT_EQ(hier.InterWireBytes(), expected_inter);
  // The paper's point: inter-node volume equals TP attention's sync volume
  // (2 * P/n * (d-1)/d summed over d ranks of each inter group).
  EXPECT_LT(hier.InterWireBytes(), hier.IntraWireBytes());
}

TEST(HierarchicalCommTest, GroupIndexing) {
  HierarchicalComm hier(3, 8);
  EXPECT_EQ(hier.world_size(), 24);
  EXPECT_EQ(hier.NodeOf(0), 0);
  EXPECT_EQ(hier.NodeOf(8), 1);
  EXPECT_EQ(hier.LocalOf(8), 0);
  EXPECT_EQ(hier.LocalOf(23), 7);
  EXPECT_EQ(hier.IntraGroup(3).size(), 8);
  EXPECT_EQ(hier.InterGroup(3).size(), 3);
}

TEST(Bf16WireTest, CompressedAllToAllHalvesPayload) {
  // The §5 DP compression path: cast FP32 -> BF16 before the A2A. Emulate by
  // rounding, then check the reduced values match FP32 within BF16 epsilon.
  const int n = 4;
  const int64_t count = 32;
  CollectiveGroup group(n);
  std::vector<std::vector<float>> results(n);
  RunOnRanks(n, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank) + 1);
    std::vector<float> grads(static_cast<size_t>(n * count));
    for (auto& v : grads) {
      v = static_cast<float>(rng.NextGaussian());
    }
    // Cast to BF16 for the wire.
    std::vector<float> wire(grads.size());
    for (size_t i = 0; i < grads.size(); ++i) {
      wire[i] = Bf16Round(grads[i]);
    }
    std::vector<float> recv(static_cast<size_t>(n * count));
    group.AllToAll(rank, wire.data(), recv.data(), count);
    // Local FP32 reduction of the received shards.
    std::vector<float> reduced(static_cast<size_t>(count), 0.0f);
    for (int src = 0; src < n; ++src) {
      for (int64_t i = 0; i < count; ++i) {
        reduced[static_cast<size_t>(i)] += recv[static_cast<size_t>(src * count + i)];
      }
    }
    results[static_cast<size_t>(rank)] = reduced;
  });
  // Every value is a sum of n bf16-rounded gaussians: within n * 2^-8 * max.
  for (int rank = 0; rank < n; ++rank) {
    for (float v : results[rank]) {
      EXPECT_LT(std::fabs(v), 100.0f);  // sanity: finite, reasonable
    }
  }
}

// Rank threads come from a persistent pool: back-to-back RunOnRanks calls of
// the same world size must reuse the same OS threads (the free list is LIFO
// and nothing else is running), not spawn fresh ones per call.
TEST(RunOnRanksTest, ReusesPersistentRankThreads) {
  const int n = 4;
  auto collect_ids = [&] {
    std::mutex mu;
    std::set<std::thread::id> ids;
    RunOnRanks(n, [&](int) {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
    return ids;
  };
  const std::set<std::thread::id> first = collect_ids();
  ASSERT_EQ(first.size(), static_cast<size_t>(n));  // distinct thread per rank
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(collect_ids(), first) << "repeat " << repeat;
  }
}

TEST(RunOnRanksTest, RankFailureStillReleasesThreadsForReuse) {
  const int n = 2;
  CollectiveGroup group(n);
  const Status status = RunOnRanksStatus(
      n,
      [&](int rank) {
        if (rank == 1) {
          throw std::runtime_error("injected rank failure");
        }
        float value = 1.0f;
        float out = 0.0f;
        // Peer aborts; the cancellable barrier must return instead of hang.
        (void)group.AllReduce(rank, &value, &out, 1);
      },
      &group);
  EXPECT_FALSE(status.ok());
  // The pool must still serve subsequent calls.
  std::atomic<int> visits{0};
  RunOnRanks(n, [&](int) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), n);
}

// ---------------------------------------------------------------------------
// Nonblocking chunked collectives (async_comm.h / Communicator::Start*).

TEST(ChunkLayoutTest, SplitsOnQuantumBoundaries) {
  // 7 rows of 3 elements into 3 chunks: rows split 3/2/2.
  ChunkLayout layout(21, 3, 3);
  ASSERT_EQ(layout.num_chunks(), 3);
  EXPECT_EQ(layout.begin(0), 0);
  EXPECT_EQ(layout.size(0), 9);
  EXPECT_EQ(layout.size(1), 6);
  EXPECT_EQ(layout.size(2), 6);
  EXPECT_EQ(layout.end(2), 21);
  // More chunks than rows clamps; zero count yields one empty chunk.
  EXPECT_EQ(ChunkLayout(6, 100, 3).num_chunks(), 2);
  EXPECT_EQ(ChunkLayout(0, 4, 1).num_chunks(), 1);
  EXPECT_EQ(ChunkLayout(0, 4, 1).size(0), 0);
}

TEST(AsyncCollectiveTest, StartAllGatherMatchesSyncAcrossChunkCounts) {
  const int n = 4;
  const int64_t rows = 7, k = 3;  // ragged: 7 rows never split evenly
  const int64_t count = rows * k;
  for (const int chunks : {1, 2, 3, 5, 16}) {
    FlatCommunicator comm(n);
    std::vector<std::vector<float>> sync_out(n), async_out(n);
    RunOnRanks(n, [&](int rank) {
      std::vector<float> send(static_cast<size_t>(count));
      for (int64_t i = 0; i < count; ++i) {
        send[static_cast<size_t>(i)] = static_cast<float>(rank * 1000 + i);
      }
      std::vector<float> expect(static_cast<size_t>(n) * count);
      comm.AllGather(rank, send.data(), expect.data(), count);
      std::vector<float> got(static_cast<size_t>(n) * count, -1.0f);
      auto handle = comm.StartAllGather(rank, send.data(), got.data(), count, chunks,
                                        /*quantum=*/k);
      // Consume out of order: odd ranks wait back to front.
      for (int c = 0; c < handle->num_chunks(); ++c) {
        const int wait = rank % 2 == 0 ? c : handle->num_chunks() - 1 - c;
        ASSERT_TRUE(handle->WaitChunk(wait).ok());
      }
      EXPECT_TRUE(handle->WaitAll().ok());
      sync_out[static_cast<size_t>(rank)] = std::move(expect);
      async_out[static_cast<size_t>(rank)] = std::move(got);
    });
    for (int rank = 0; rank < n; ++rank) {
      EXPECT_EQ(sync_out[static_cast<size_t>(rank)], async_out[static_cast<size_t>(rank)])
          << "chunks=" << chunks << " rank=" << rank;
    }
  }
}

TEST(AsyncCollectiveTest, StartReduceScatterBitwiseMatchesSync) {
  const int n = 4;
  const int64_t count = 10;  // per-member output elements
  for (const int chunks : {1, 3, 10}) {
    FlatCommunicator comm(n);
    RunOnRanks(n, [&](int rank) {
      std::vector<float> send(static_cast<size_t>(n) * count);
      for (size_t i = 0; i < send.size(); ++i) {
        send[i] = 0.25f * static_cast<float>(rank + 1) * static_cast<float>(i % 13) -
                  static_cast<float>(rank);
      }
      std::vector<float> expect(static_cast<size_t>(count));
      comm.ReduceScatter(rank, send.data(), expect.data(), count);
      std::vector<float> got(static_cast<size_t>(count), -1.0f);
      auto handle = comm.StartReduceScatter(rank, send.data(), got.data(), count, chunks);
      // Signal producer chunks in REVERSE order: the comm thread still
      // consumes them in index order.
      for (int c = handle->num_chunks() - 1; c >= 0; --c) {
        handle->SignalChunkReady(c);
      }
      ASSERT_TRUE(handle->WaitAll().ok());
      // Bitwise: the group's rank-ordered double sum per element does not
      // depend on how the element range was segmented.
      for (int64_t i = 0; i < count; ++i) {
        EXPECT_EQ(expect[static_cast<size_t>(i)], got[static_cast<size_t>(i)])
            << "chunks=" << chunks << " rank=" << rank << " i=" << i;
      }
    });
  }
}

TEST(AsyncCollectiveTest, StartAllToAllVMatchesSyncWithRaggedCounts) {
  const int n = 4;
  for (const int chunks : {1, 2, 5}) {
    FlatCommunicator comm(n);
    RunOnRanks(n, [&](int rank) {
      // Ragged, rank-dependent counts including zeros.
      std::vector<int64_t> send_counts(static_cast<size_t>(n));
      int64_t total = 0;
      for (int dst = 0; dst < n; ++dst) {
        send_counts[static_cast<size_t>(dst)] = (rank + dst) % 3 == 0 ? 0 : rank + 2 * dst + 1;
        total += send_counts[static_cast<size_t>(dst)];
      }
      std::vector<int32_t> send(static_cast<size_t>(total));
      for (int64_t i = 0; i < total; ++i) {
        send[static_cast<size_t>(i)] = rank * 100000 + static_cast<int32_t>(i);
      }
      std::vector<int32_t> expect(static_cast<size_t>(n) * 64);
      std::vector<int64_t> expect_counts;
      comm.AllToAllV(rank, send.data(), send_counts, expect.data(), &expect_counts);
      std::vector<int32_t> got;
      auto handle = comm.StartAllToAllV(rank, send.data(), send_counts, &got, chunks);
      ASSERT_TRUE(handle->WaitAll().ok());
      ASSERT_EQ(handle->recv_counts(), expect_counts) << "chunks=" << chunks;
      int64_t received = 0;
      for (const int64_t c : expect_counts) {
        received += c;
      }
      ASSERT_EQ(static_cast<int64_t>(got.size()), received);
      for (int64_t i = 0; i < received; ++i) {
        EXPECT_EQ(got[static_cast<size_t>(i)], expect[static_cast<size_t>(i)])
            << "chunks=" << chunks << " rank=" << rank << " i=" << i;
      }
    });
  }
}

// Two handles in flight at once: FIFO comm threads keep the async channel's
// rendezvous paired up as long as every rank issues the same Start order.
TEST(AsyncCollectiveTest, TwoInFlightHandlesCompleteInIssueOrder) {
  const int n = 3;
  const int64_t count = 12;
  FlatCommunicator comm(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> a_send(static_cast<size_t>(count), static_cast<float>(rank));
    std::vector<float> a_recv(static_cast<size_t>(n) * count);
    std::vector<float> b_send(static_cast<size_t>(n) * count, 1.0f + static_cast<float>(rank));
    std::vector<float> b_recv(static_cast<size_t>(count));
    auto ag = comm.StartAllGather(rank, a_send.data(), a_recv.data(), count, 3);
    auto rs = comm.StartReduceScatter(rank, b_send.data(), b_recv.data(), count, 2);
    for (int c = 0; c < rs->num_chunks(); ++c) {
      rs->SignalChunkReady(c);
    }
    ASSERT_TRUE(rs->WaitAll().ok());
    ASSERT_TRUE(ag->WaitAll().ok());
    for (int src = 0; src < n; ++src) {
      EXPECT_EQ(a_recv[static_cast<size_t>(src) * count], static_cast<float>(src));
    }
    // Sum over ranks of (1 + rank) = n + n(n-1)/2.
    EXPECT_EQ(b_recv[0], static_cast<float>(n + n * (n - 1) / 2));
  });
}

// The per-chunk AccountOnce volumes of one logical op must sum to exactly
// the monolithic op's volume — chunking must not double count.
TEST(AsyncCollectiveTest, ChunkedWireBytesEqualMonolithic) {
  const int n = 4;
  const int64_t count = 36;
  FlatCommunicator mono(n), chunked(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(count), 1.0f);
    std::vector<float> recv(static_cast<size_t>(n) * count);
    mono.AllGather(rank, send.data(), recv.data(), count);
    auto handle = chunked.StartAllGather(rank, send.data(), recv.data(), count, 5);
    ASSERT_TRUE(handle->WaitAll().ok());
  });
  EXPECT_EQ(mono.wire_bytes(), chunked.wire_bytes());
  EXPECT_EQ(mono.telemetry().TotalWireBytes(), chunked.telemetry().TotalWireBytes());
}

// Hammer WaitChunk out of order from every rank while ops queue back to
// back — the TSan target for the chunk-readiness rendezvous.
TEST(AsyncCollectiveTest, WaitChunkOutOfOrderStress) {
  const int n = 4;
  const int64_t count = 24;
  const int iters = 25;
  FlatCommunicator comm(n);
  RunOnRanks(n, [&](int rank) {
    Rng rng(0x5eedu + static_cast<uint64_t>(rank));
    std::vector<float> send(static_cast<size_t>(count));
    std::vector<float> recv(static_cast<size_t>(n) * count);
    for (int iter = 0; iter < iters; ++iter) {
      for (int64_t i = 0; i < count; ++i) {
        send[static_cast<size_t>(i)] = static_cast<float>(rank * 31 + iter * 7 + i);
      }
      const int chunks = 1 + iter % 6;
      auto handle = comm.StartAllGather(rank, send.data(), recv.data(), count, chunks);
      // Random per-rank wait order over the chunk indices.
      std::vector<int> order(static_cast<size_t>(handle->num_chunks()));
      std::iota(order.begin(), order.end(), 0);
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[static_cast<size_t>(rng.NextU64() % i)]);
      }
      for (const int c : order) {
        ASSERT_TRUE(handle->WaitChunk(c).ok());
        const int64_t b = handle->layout().begin(c);
        for (int src = 0; src < n; ++src) {
          EXPECT_EQ(recv[static_cast<size_t>(src * count + b)],
                    static_cast<float>(src * 31 + iter * 7 + b));
        }
      }
      ASSERT_TRUE(handle->WaitAll().ok());
    }
  });
}

// The emulated wire clock turns analytic volume into measurable blocking
// time, and an abort cuts the sleep short instead of serving it out.
TEST(AsyncCollectiveTest, WireModelAddsAbortableBlockingTime) {
  const int n = 2;
  const int64_t count = 1000;
  FlatCommunicator comm(n);
  // 1 byte/us would sleep (n-1)*4000 us; measure one all-gather.
  comm.SetWireModel(/*bytes_per_us=*/1000.0, /*latency_us=*/100.0);
  const double wire_us =
      comm.group().WireTimeUs(static_cast<uint64_t>((n - 1) * count * 4));
  const auto t0 = std::chrono::steady_clock::now();
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(count), 1.0f);
    std::vector<float> recv(static_cast<size_t>(n) * count);
    comm.AllGather(rank, send.data(), recv.data(), count);
  });
  const double elapsed_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed_us, wire_us);
  // Abort mid-sleep: a 50 ms wire must not be served out once cancelled.
  FlatCommunicator slow(n);
  slow.SetWireModel(/*bytes_per_us=*/0.08, /*latency_us=*/0.0);  // 4k bytes -> 50 ms
  const auto t1 = std::chrono::steady_clock::now();
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(count), 1.0f);
    std::vector<float> recv(static_cast<size_t>(n) * count);
    if (rank == 0) {
      slow.Abort(Aborted("test abort"));
    }
    slow.AllGather(rank, send.data(), recv.data(), count);
  });
  const double abort_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t1)
          .count();
  EXPECT_LT(abort_us, 40000.0);
  EXPECT_FALSE(slow.GroupStatus().ok());
}

// Rank threads are exactly the "concurrent external callers" case of the
// intra-rank worker pool: each rank may fan compute out via ParallelFor
// while its peers do the same, with no deadlock and full coverage.
TEST(RunOnRanksTest, ParallelForInsideRankThreads) {
  const int n = 4;
  const int restore = ParallelWorkerCount();
  SetParallelWorkerCount(4);
  std::vector<int64_t> totals(n, 0);
  RunOnRanks(n, [&](int rank) {
    std::atomic<int64_t> local{0};
    ParallelFor(100, 4,
                [&](int64_t begin, int64_t end) { local.fetch_add(end - begin); });
    totals[static_cast<size_t>(rank)] = local.load();
  });
  SetParallelWorkerCount(restore);
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_EQ(totals[static_cast<size_t>(rank)], 100) << "rank " << rank;
  }
}

}  // namespace
}  // namespace msmoe
