# Empty compiler generated dependencies file for distributed_layer_demo.
# This may be replaced when dependencies are built.
