// Elastic degraded-mode recovery: fault classification (RecoveryPolicy),
// membership epochs (ElasticComm), world-size-crossing checkpoint
// resharding, and end-to-end shrink-to-survivors training.
//
// The load-bearing property throughout: after a PERMANENT single-rank
// failure, training continues on W-1 survivors and the post-shrink loss
// curve is BIT-IDENTICAL to a fresh W-1 run started from the resharded
// snapshot. Transient faults recover by rollback + backoff without
// shrinking. No failure mode hangs: everything surfaces as a Status under
// the collective deadline.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/comm/communicator.h"
#include "src/comm/elastic.h"
#include "src/comm/fault.h"
#include "src/core/recovery_policy.h"
#include "src/core/trainer.h"
#include "src/model/checkpoint.h"
#include "src/parallel/dp_grad_sync.h"
#include "src/sim/fault_sim.h"

namespace msmoe {
namespace {

// --- RecoveryPolicy: the verdict table ---------------------------------------

TEST(RecoveryPolicyTest, RetryableFaultIsTransientWithExponentialBackoff) {
  RecoveryPolicy policy(RecoveryPolicyConfig{});  // base 1 ms, x2, 3 retries
  const RecoveryDecision first =
      policy.OnFailure(DeadlineExceeded("peer missing"), /*suspect_rank=*/-1);
  EXPECT_EQ(first.verdict, FaultVerdict::kTransient);
  EXPECT_EQ(first.attempt, 1);
  EXPECT_DOUBLE_EQ(first.backoff_ms, 1.0);

  const RecoveryDecision second =
      policy.OnFailure(Aborted("crashed"), /*suspect_rank=*/-1);
  EXPECT_EQ(second.verdict, FaultVerdict::kTransient);
  EXPECT_DOUBLE_EQ(second.backoff_ms, 2.0);

  const RecoveryDecision third =
      policy.OnFailure(DeadlineExceeded("again"), /*suspect_rank=*/-1);
  EXPECT_EQ(third.verdict, FaultVerdict::kTransient);
  EXPECT_DOUBLE_EQ(third.backoff_ms, 4.0);
}

TEST(RecoveryPolicyTest, BackoffIsCappedAtConfiguredMax) {
  RecoveryPolicyConfig config;
  config.max_retries = 5;
  config.backoff_base_ms = 100.0;
  config.backoff_multiplier = 10.0;
  config.backoff_max_ms = 250.0;
  RecoveryPolicy policy(config);
  EXPECT_DOUBLE_EQ(policy.OnFailure(DeadlineExceeded("x"), -1).backoff_ms, 100.0);
  EXPECT_DOUBLE_EQ(policy.OnFailure(DeadlineExceeded("x"), -1).backoff_ms, 250.0);
  EXPECT_DOUBLE_EQ(policy.OnFailure(DeadlineExceeded("x"), -1).backoff_ms, 250.0);
}

TEST(RecoveryPolicyTest, StrikeLimitPromotesRecurringSuspectToPermanent) {
  RecoveryPolicy policy(RecoveryPolicyConfig{});  // strike limit 2
  const RecoveryDecision first = policy.OnFailure(Aborted("crash"), /*suspect=*/1);
  EXPECT_EQ(first.verdict, FaultVerdict::kTransient);
  EXPECT_EQ(policy.strikes(1), 1);

  // Strikes survive successful steps: a rank that fails every few hundred
  // steps is exactly the recurring-fault signature.
  policy.OnStepSuccess();
  EXPECT_EQ(policy.attempt(), 0);
  EXPECT_EQ(policy.strikes(1), 1);

  const RecoveryDecision second = policy.OnFailure(Aborted("crash"), /*suspect=*/1);
  EXPECT_EQ(second.verdict, FaultVerdict::kPermanent);
  EXPECT_EQ(second.culprit_rank, 1);
  EXPECT_NE(second.reason.find("strikes"), std::string::npos);
}

TEST(RecoveryPolicyTest, BudgetExhaustionEvictsKnownSuspect) {
  RecoveryPolicyConfig config;
  config.max_retries = 1;
  config.rank_strike_limit = 3;  // strikes alone won't trip
  RecoveryPolicy policy(config);
  EXPECT_EQ(policy.OnFailure(DeadlineExceeded("x"), /*suspect=*/2).verdict,
            FaultVerdict::kTransient);
  const RecoveryDecision out = policy.OnFailure(DeadlineExceeded("x"), /*suspect=*/4);
  EXPECT_EQ(out.verdict, FaultVerdict::kPermanent);
  EXPECT_EQ(out.culprit_rank, 4);
  EXPECT_NE(out.reason.find("budget exhausted"), std::string::npos);
}

TEST(RecoveryPolicyTest, BudgetExhaustionWithoutSuspectIsFatal) {
  RecoveryPolicyConfig config;
  config.max_retries = 1;
  RecoveryPolicy policy(config);
  EXPECT_EQ(policy.OnFailure(DeadlineExceeded("x"), -1).verdict,
            FaultVerdict::kTransient);
  EXPECT_EQ(policy.OnFailure(DeadlineExceeded("x"), -1).verdict,
            FaultVerdict::kFatal);
}

TEST(RecoveryPolicyTest, NonRetryableCodeIsFatalButDataLossIsRollbackRepairable) {
  RecoveryPolicy policy(RecoveryPolicyConfig{});
  EXPECT_EQ(policy.OnFailure(InvalidArgument("bad config"), /*suspect=*/0).verdict,
            FaultVerdict::kFatal);
  // Checksum divergence: re-running the op reproduces the corruption, but a
  // rollback discards it — classified like a retryable fault.
  EXPECT_EQ(policy.OnFailure(DataLoss("checksum mismatch"), /*suspect=*/-1).verdict,
            FaultVerdict::kTransient);
}

TEST(RecoveryPolicyTest, ValidateRejectsDegenerateConfigs) {
  RecoveryPolicyConfig bad;
  bad.max_retries = -1;
  EXPECT_FALSE(ValidateRecoveryPolicyConfig(bad).ok());
  bad = RecoveryPolicyConfig{};
  bad.backoff_multiplier = 0.5;
  EXPECT_FALSE(ValidateRecoveryPolicyConfig(bad).ok());
  bad = RecoveryPolicyConfig{};
  bad.rank_strike_limit = 0;
  EXPECT_FALSE(ValidateRecoveryPolicyConfig(bad).ok());
  EXPECT_TRUE(ValidateRecoveryPolicyConfig(RecoveryPolicyConfig{}).ok());
}

// --- ElasticComm: membership epochs ------------------------------------------

TEST(ElasticCommTest, ShrinkRemapsSurvivorsDenseAndOrderPreserving) {
  ElasticComm elastic(CommBackend::kFlat, /*world_size=*/4);
  EXPECT_EQ(elastic.size(), 4);
  EXPECT_EQ(elastic.epoch(), 0);
  Communicator* old_comm = elastic.comm();

  std::vector<Status> results(4, Status::Ok());
  std::vector<std::thread> threads;
  for (int rank : {0, 2, 3}) {
    threads.emplace_back([&elastic, &results, rank] {
      results[static_cast<size_t>(rank)] = elastic.Shrink(rank, {1});
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int rank : {0, 2, 3}) {
    EXPECT_TRUE(results[static_cast<size_t>(rank)].ok())
        << results[static_cast<size_t>(rank)].ToString();
  }
  EXPECT_EQ(elastic.epoch(), 1);
  EXPECT_EQ(elastic.size(), 3);
  EXPECT_EQ(elastic.members(), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(elastic.EpochRank(0), 0);
  EXPECT_EQ(elastic.EpochRank(1), -1);  // evicted
  EXPECT_EQ(elastic.EpochRank(3), 2);
  EXPECT_EQ(elastic.GlobalRank(1), 2);
  EXPECT_NE(elastic.comm(), old_comm);
  EXPECT_TRUE(old_comm->retired());
}

TEST(ElasticCommTest, StaleEpochFailsLoudlyInsteadOfDeadlocking) {
  ElasticComm elastic(CommBackend::kFlat, /*world_size=*/3);
  Communicator* old_comm = elastic.comm();

  std::vector<std::thread> threads;
  for (int rank : {0, 1}) {
    threads.emplace_back([&elastic, rank] {
      EXPECT_TRUE(elastic.Shrink(rank, {2}).ok());
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // The retired epoch's sticky status names the transition.
  EXPECT_EQ(old_comm->GroupStatus().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(old_comm->GroupStatus().ToString().find("stale communicator"),
            std::string::npos);
  EXPECT_EQ(old_comm->stale_status().code(), StatusCode::kFailedPrecondition);

  // Sync collectives on the stale epoch return immediately with the sticky
  // error — no barrier wait against ranks that moved on.
  std::vector<float> buf(3, 1.0f);
  old_comm->AllReduce(0, buf.data(), buf.data(), 3);
  EXPECT_FALSE(old_comm->GroupStatus().ok());

  // Async Start* on the stale epoch yields an already-failed handle.
  std::vector<float> send(4, 1.0f);
  std::vector<float> recv(8, 0.0f);
  std::unique_ptr<CommHandle> handle =
      old_comm->StartAllGather(0, send.data(), recv.data(), 4, /*num_chunks=*/2);
  ASSERT_NE(handle, nullptr);
  const Status waited = handle->WaitAll();
  EXPECT_EQ(waited.code(), StatusCode::kFailedPrecondition);
}

TEST(ElasticCommTest, MismatchedDeadSetPoisonsTheWholeRound) {
  ElasticComm elastic(CommBackend::kFlat, /*world_size=*/4);
  elastic.SetCollectiveTimeout(200.0);
  std::vector<Status> results(3, Status::Ok());
  std::vector<std::thread> threads;
  // Ranks 0 and 2 agree rank 3 died; rank 1 claims {2, 3} — replicated
  // decisions diverged, so no caller may commit a membership change. The
  // disagreeing delta also implies a different expected-arrival count, so
  // depending on arrival order a caller sees the poison (kInvalidArgument)
  // or strands in a never-completing round (kDeadlineExceeded under the
  // timeout) — both are loud failures, never a silent partial commit.
  threads.emplace_back([&] { results[0] = elastic.Shrink(0, {3}); });
  threads.emplace_back([&] { results[1] = elastic.Shrink(1, {2, 3}); });
  threads.emplace_back([&] { results[2] = elastic.Shrink(2, {3}); });
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const Status& result : results) {
    EXPECT_TRUE(result.code() == StatusCode::kInvalidArgument ||
                result.code() == StatusCode::kDeadlineExceeded)
        << result.ToString();
  }
  EXPECT_EQ(elastic.epoch(), 0);
  EXPECT_EQ(elastic.size(), 4);
}

TEST(ElasticCommTest, GrowReadmitsRepairedRank) {
  ElasticComm elastic(CommBackend::kFlat, /*world_size=*/3);
  {
    std::vector<std::thread> threads;
    for (int rank : {0, 1}) {
      threads.emplace_back([&elastic, rank] {
        EXPECT_TRUE(elastic.Shrink(rank, {2}).ok());
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  ASSERT_EQ(elastic.size(), 2);

  std::vector<std::thread> threads;
  for (int rank : {0, 1, 2}) {  // members AND the readmitted rank rendezvous
    threads.emplace_back([&elastic, rank] {
      EXPECT_TRUE(elastic.Grow(rank, {2}).ok());
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(elastic.epoch(), 2);
  EXPECT_EQ(elastic.members(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(elastic.EpochRank(2), 2);
}

TEST(ElasticCommTest, RendezvousTimesOutWhenASurvivorNeverArrives) {
  ElasticComm elastic(CommBackend::kFlat, /*world_size=*/3);
  elastic.SetCollectiveTimeout(100.0);
  // Only rank 0 shows up; rank 1 (the other survivor) never does.
  const Status result = elastic.Shrink(0, {2});
  EXPECT_EQ(result.code(), StatusCode::kDeadlineExceeded) << result.ToString();
  EXPECT_EQ(elastic.epoch(), 0);
  EXPECT_EQ(elastic.size(), 3);
}

TEST(ElasticCommTest, ShrinkValidatesTheTransition) {
  ElasticComm elastic(CommBackend::kFlat, /*world_size=*/3);
  EXPECT_EQ(elastic.Shrink(0, {}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(elastic.Shrink(0, {0}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(elastic.Shrink(0, {7}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(elastic.Shrink(0, {0, 1, 2}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(elastic.Grow(0, {1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(elastic.size(), 3);
}

// --- Commit-token collectives ------------------------------------------------
//
// The trainer's barrier-gated snapshot commits iff the gate barrier's OWN
// returned status is OK. That status must be a consistent commit token: a
// barrier that closed returns Ok on EVERY member even when a fault lands
// immediately after it closes. Branching on a later GroupStatus() read
// instead is a race — the fault can land between one member's barrier exit
// and another member's read, committing the snapshot on a strict subset of
// the group and diverging the resume step (observed in practice as a
// rollback to a stale checkpoint on some ranks and a group-wide hang).

TEST(CommitTokenTest, CompletedBarrierReturnsOkEvenWhenAFaultLandsRightAfter) {
  for (int trial = 0; trial < 50; ++trial) {
    auto comm = MakeCommunicator(CommBackend::kFlat, 3);
    std::vector<Status> token(3);
    std::vector<std::thread> threads;
    for (int rank = 0; rank < 3; ++rank) {
      threads.emplace_back([&, rank] {
        token[static_cast<size_t>(rank)] = comm->TryBarrier(rank);
        if (rank == 2) {
          // The moment rank 2 exits, the barrier has closed for everyone;
          // this abort races with the peers' own exits.
          comm->Abort(Aborted("fault right after the barrier"), /*culprit_rank=*/2);
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    for (int rank = 0; rank < 3; ++rank) {
      EXPECT_TRUE(token[static_cast<size_t>(rank)].ok())
          << "trial " << trial << " rank " << rank << ": "
          << token[static_cast<size_t>(rank)].ToString();
    }
    EXPECT_EQ(comm->GroupStatus().code(), StatusCode::kAborted);
  }
}

TEST(CommitTokenTest, CompletedAllGatherReturnsOkAndFullBufferDespiteLateFault) {
  for (int trial = 0; trial < 50; ++trial) {
    auto comm = MakeCommunicator(CommBackend::kFlat, 3);
    std::vector<Status> token(3);
    std::vector<std::vector<float>> recv(3, std::vector<float>(3, -1.0f));
    std::vector<std::thread> threads;
    for (int rank = 0; rank < 3; ++rank) {
      threads.emplace_back([&, rank] {
        const float mine = static_cast<float>(rank + 1);
        token[static_cast<size_t>(rank)] =
            comm->TryAllGather(rank, &mine, recv[static_cast<size_t>(rank)].data(), 1);
        if (rank == 0) {
          comm->Abort(Aborted("fault right after the gather"), /*culprit_rank=*/0);
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    for (int rank = 0; rank < 3; ++rank) {
      ASSERT_TRUE(token[static_cast<size_t>(rank)].ok())
          << "trial " << trial << " rank " << rank;
      EXPECT_EQ(recv[static_cast<size_t>(rank)],
                (std::vector<float>{1.0f, 2.0f, 3.0f}));
    }
    EXPECT_EQ(comm->GroupStatus().code(), StatusCode::kAborted);
  }
}

TEST(CommitTokenTest, CancelledBarrierReturnsTheSameErrorOnEveryMember) {
  auto comm = MakeCommunicator(CommBackend::kFlat, 3);
  comm->SetCollectiveTimeout(30000.0);
  std::vector<Status> token(3);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 2; ++rank) {
    threads.emplace_back([&, rank] {
      token[static_cast<size_t>(rank)] = comm->TryBarrier(rank);
    });
  }
  // Rank 2 never arrives; it aborts instead, cancelling the open barrier.
  comm->Abort(Aborted("rank 2 died before arriving"), /*culprit_rank=*/2);
  for (auto& thread : threads) {
    thread.join();
  }
  for (int rank = 0; rank < 2; ++rank) {
    EXPECT_EQ(token[static_cast<size_t>(rank)].code(), StatusCode::kAborted);
  }
}

// --- Checkpoint resharding ---------------------------------------------------

std::vector<float> PseudoRandomState(int64_t n, uint32_t seed) {
  std::vector<float> state(static_cast<size_t>(n));
  uint32_t x = seed;
  for (float& value : state) {
    x = x * 1664525u + 1013904223u;  // LCG; any nonzero pattern works
    value = static_cast<float>(x >> 8) / 16777216.0f + 0.5f;
  }
  return state;
}

TEST(ReshardTest, ShardOfFlatSlicesWithZeroPaddedTail) {
  EXPECT_EQ(PaddedShardElems(10, 4), 12);
  EXPECT_EQ(PaddedShardElems(12, 4), 12);
  EXPECT_EQ(PaddedShardElems(1, 3), 3);
  const std::vector<float> full = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(ShardOfFlat(full, 10, 4, 0), (std::vector<float>{1, 2, 3}));
  EXPECT_EQ(ShardOfFlat(full, 10, 4, 3), (std::vector<float>{10, 0, 0}));
  // world 1: the shard IS the state.
  EXPECT_EQ(ShardOfFlat(full, 10, 1, 0), full);
}

TEST(ReshardTest, GatherRejectsCorruptLayouts) {
  const std::vector<float> full = PseudoRandomState(10, 7);
  std::vector<std::vector<float>> shards;
  for (int rank = 0; rank < 4; ++rank) {
    shards.push_back(ShardOfFlat(full, 10, 4, rank));
  }
  ASSERT_TRUE(GatherFlatFromShards(shards, 10).ok());

  // Nonzero padding means the shards did NOT come from a 10-element state
  // under this layout — gathering must refuse, not silently truncate data.
  std::vector<std::vector<float>> poisoned = shards;
  poisoned[3][2] = 1.0f;
  EXPECT_FALSE(GatherFlatFromShards(poisoned, 10).ok());

  std::vector<std::vector<float>> ragged = shards;
  ragged[1].push_back(0.0f);
  EXPECT_FALSE(GatherFlatFromShards(ragged, 10).ok());
}

TEST(ReshardTest, RoundTripAcrossWorldSizesIsBitwiseLossless) {
  // Property: save at W, restore at W-1 and W+1, reshard back — bitwise
  // equal to the original, and the intermediate gather equals the direct
  // gather of the original shards.
  for (const int64_t total : {1, 7, 12, 97}) {
    for (const int from_world : {1, 2, 3, 4}) {
      const std::vector<float> full =
          PseudoRandomState(total, static_cast<uint32_t>(total * 31 + from_world));
      std::vector<std::vector<float>> shards;
      for (int rank = 0; rank < from_world; ++rank) {
        shards.push_back(ShardOfFlat(full, total, from_world, rank));
      }
      for (const int to_world : {from_world - 1, from_world + 1}) {
        if (to_world < 1) {
          continue;
        }
        Result<std::vector<std::vector<float>>> resharded =
            ReshardFlatState(shards, total, to_world);
        ASSERT_TRUE(resharded.ok()) << resharded.status().ToString();
        ASSERT_EQ(static_cast<int>(resharded.value().size()), to_world);

        Result<std::vector<float>> gathered =
            GatherFlatFromShards(resharded.value(), total);
        ASSERT_TRUE(gathered.ok());
        EXPECT_EQ(gathered.value(), full)
            << "total=" << total << " " << from_world << "->" << to_world;

        Result<std::vector<std::vector<float>>> back =
            ReshardFlatState(resharded.value(), total, from_world);
        ASSERT_TRUE(back.ok());
        EXPECT_EQ(back.value(), shards)
            << "total=" << total << " " << from_world << "->" << to_world
            << "->" << from_world;
      }
    }
  }
}

// --- End-to-end elastic training ---------------------------------------------

NumericTrainConfig ElasticBaseConfig(int dp) {
  NumericTrainConfig config;
  config.model = TinyMoeConfig(4, 2);
  config.model.num_layers = 1;
  config.model.vocab = 32;
  config.model.seq_len = 8;
  config.router.num_experts = 4;
  config.router.top_k = 2;
  config.dp_size = dp;
  config.batch_per_rank = 2;
  config.steps = 8;
  config.collective_timeout_ms = 30000.0;
  config.elastic = true;
  return config;
}

void ExpectLossRangeEqual(const TrainCurve& expected, const TrainCurve& actual,
                          size_t from, size_t to) {
  ASSERT_GE(expected.loss.size(), to);
  ASSERT_GE(actual.loss.size(), to);
  for (size_t i = from; i < to; ++i) {
    EXPECT_EQ(expected.loss[i], actual.loss[i]) << "step " << i;
  }
}

TEST(ElasticTrainerTest, TransientCrashRetriesWithBackoffWithoutShrinking) {
  NumericTrainConfig clean_config = ElasticBaseConfig(2);
  clean_config.checkpoint_every = 2;
  const TrainCurve clean = TrainLm(clean_config);
  ASSERT_TRUE(clean.recoveries.empty());
  EXPECT_EQ(clean.final_world, 2);

  // One crash, one strike: the policy classifies it transient and training
  // recovers by rollback on the SAME world.
  FaultPlan plan(3);
  plan.AddCrash(/*rank=*/1, /*at_op=*/9);
  NumericTrainConfig faulty_config = clean_config;
  faulty_config.fault_plan = &plan;
  const TrainCurve recovered = TrainLm(faulty_config);

  EXPECT_EQ(recovered.final_world, 2);
  ASSERT_EQ(recovered.recoveries.size(), 1u);
  EXPECT_EQ(recovered.recoveries[0].verdict, FaultVerdict::kTransient);
  EXPECT_EQ(recovered.recoveries[0].culprit_rank, 1);
  EXPECT_EQ(recovered.recoveries[0].world_after, 2);
  EXPECT_GT(recovered.recoveries[0].backoff_ms, 0.0);
  ExpectLossRangeEqual(clean, recovered, 0, clean.loss.size());
}

TEST(ElasticTrainerTest, PermanentCrashShrinksAndMatchesFreshSmallerWorld) {
  // The reference: a clean W-1 run. The elastic run starts at W=3, loses
  // rank 1 permanently (two strikes), rolls back to the step-0 snapshot,
  // and replays the WHOLE run on the survivors — so its final curve must be
  // bitwise the W=2 curve.
  const TrainCurve fresh_small = TrainLm(ElasticBaseConfig(2));

  // 2 ops/step, no snapshot barriers (checkpoint_every=0). A dense crash
  // window refires after the rollback (per-rank op counters never reset),
  // which is exactly the recurring-fault signature the strike limit evicts.
  FaultPlan plan(5);
  plan.AddCrash(/*rank=*/1, /*at_op=*/4);
  plan.AddCrash(/*rank=*/1, /*at_op=*/5);
  plan.AddCrash(/*rank=*/1, /*at_op=*/6);
  NumericTrainConfig faulty_config = ElasticBaseConfig(3);
  faulty_config.fault_plan = &plan;
  const TrainCurve shrunk = TrainLm(faulty_config);

  EXPECT_EQ(shrunk.final_world, 2);
  ASSERT_EQ(shrunk.recoveries.size(), 2u);
  EXPECT_EQ(shrunk.recoveries[0].verdict, FaultVerdict::kTransient);
  EXPECT_EQ(shrunk.recoveries[1].verdict, FaultVerdict::kPermanent);
  EXPECT_EQ(shrunk.recoveries[1].culprit_rank, 1);
  EXPECT_EQ(shrunk.recoveries[1].world_after, 2);
  ExpectLossRangeEqual(fresh_small, shrunk, 0, fresh_small.loss.size());
}

TEST(ElasticTrainerTest, PermanentCrashReshardsZeroOptimizerState) {
  // Same shrink, with ZeRO-1 sharded masters/moments: the snapshot is
  // gathered at W=3 boundaries and restored at W=2 boundaries, so bitwise
  // agreement with the fresh W=2 run proves the reshard path exact.
  NumericTrainConfig small_config = ElasticBaseConfig(2);
  small_config.zero_shard_optimizer = true;
  const TrainCurve fresh_small = TrainLm(small_config);

  FaultPlan plan(5);
  plan.AddCrash(/*rank=*/1, /*at_op=*/6);
  plan.AddCrash(/*rank=*/1, /*at_op=*/7);
  plan.AddCrash(/*rank=*/1, /*at_op=*/8);
  NumericTrainConfig faulty_config = ElasticBaseConfig(3);
  faulty_config.zero_shard_optimizer = true;
  faulty_config.fault_plan = &plan;
  const TrainCurve shrunk = TrainLm(faulty_config);

  EXPECT_EQ(shrunk.final_world, 2);
  ASSERT_GE(shrunk.recoveries.size(), 2u);
  EXPECT_EQ(shrunk.recoveries.back().verdict, FaultVerdict::kPermanent);
  ExpectLossRangeEqual(fresh_small, shrunk, 0, fresh_small.loss.size());
}

TEST(ElasticTrainerTest, PermanentStragglerTimesOutAndIsEvicted) {
  const TrainCurve fresh_small = TrainLm(ElasticBaseConfig(2));

  // Rank 1 stalls 1 s per op over a window of ops while peers time out
  // after 250 ms: the first deadline is a strike (transient), the refire on
  // replay is the second — permanent, classified from the barrier's
  // missing-rank attribution. Bounded wall time, no hang.
  FaultPlan plan(6);
  plan.AddSlowRank(/*rank=*/1, /*delay_us=*/1e6, /*from_op=*/4, /*num_ops=*/6);
  NumericTrainConfig faulty_config = ElasticBaseConfig(3);
  faulty_config.steps = 6;
  faulty_config.fault_plan = &plan;
  faulty_config.collective_timeout_ms = 250.0;
  const TrainCurve shrunk = TrainLm(faulty_config);

  EXPECT_EQ(shrunk.final_world, 2);
  ASSERT_GE(shrunk.recoveries.size(), 2u);
  EXPECT_EQ(shrunk.recoveries.back().verdict, FaultVerdict::kPermanent);
  EXPECT_EQ(shrunk.recoveries.back().culprit_rank, 1);
  EXPECT_NE(shrunk.recoveries[0].cause.find("DEADLINE_EXCEEDED"),
            std::string::npos);
  NumericTrainConfig small_config = ElasticBaseConfig(2);
  small_config.steps = 6;
  const TrainCurve reference = TrainLm(small_config);
  ExpectLossRangeEqual(reference, shrunk, 0, reference.loss.size());
}

TEST(ElasticTrainerTest, MidRunShrinkMatchesFreshRunFromTheSnapshotFile) {
  // The acceptance-criteria cross-check, file-based: the elastic run saves
  // its step-6 snapshot to disk, shrinks 3->2 while replaying step 6, and
  // finishes on the survivors. A FRESH W=2 run started from that same file
  // at first_step=6 must replay the post-shrink curve bit for bit.
  const std::string path = "elastic_test_midrun_checkpoint.bin";
  std::remove(path.c_str());

  // Op layout at checkpoint_every=3 (2 ops/step + snapshot barrier): the
  // step-6 snapshot barrier is op 13, so crashes at ops 14/15 land after
  // the snapshot committed and refire on the rollback replay.
  FaultPlan plan(8);
  plan.AddCrash(/*rank=*/2, /*at_op=*/14);
  plan.AddCrash(/*rank=*/2, /*at_op=*/15);
  plan.AddCrash(/*rank=*/2, /*at_op=*/16);
  NumericTrainConfig elastic_config = ElasticBaseConfig(3);
  elastic_config.steps = 9;
  elastic_config.checkpoint_every = 3;
  elastic_config.checkpoint_path = path;
  elastic_config.fault_plan = &plan;
  const TrainCurve shrunk = TrainLm(elastic_config);
  EXPECT_EQ(shrunk.final_world, 2);
  ASSERT_GE(shrunk.recoveries.size(), 2u);
  EXPECT_EQ(shrunk.recoveries.back().verdict, FaultVerdict::kPermanent);
  EXPECT_EQ(shrunk.recoveries.back().resumed_step, 6);

  NumericTrainConfig fresh_config = ElasticBaseConfig(2);
  fresh_config.steps = 9;
  fresh_config.init_checkpoint_path = path;
  fresh_config.first_step = 6;
  const TrainCurve fresh = TrainLm(fresh_config);
  EXPECT_TRUE(fresh.recoveries.empty());
  ExpectLossRangeEqual(fresh, shrunk, 6, 9);
  std::remove(path.c_str());
}

TEST(ElasticTrainerTest, ConfigValidationRejectsContradictions) {
  NumericTrainConfig config = ElasticBaseConfig(2);
  config.restart_every = 4;  // fixed-world restart pattern vs elastic world
  EXPECT_FALSE(ValidateNumericTrainConfig(config).ok());

  config = ElasticBaseConfig(2);
  config.first_step = 3;  // history without a checkpoint to stand on
  EXPECT_FALSE(ValidateNumericTrainConfig(config).ok());

  config = ElasticBaseConfig(2);
  config.init_checkpoint_path = "x.bin";
  config.zero_shard_optimizer = true;  // file checkpoints hold replicated state
  EXPECT_FALSE(ValidateNumericTrainConfig(config).ok());

  config = ElasticBaseConfig(2);
  config.min_world = 0;
  EXPECT_FALSE(ValidateNumericTrainConfig(config).ok());

  EXPECT_TRUE(ValidateNumericTrainConfig(ElasticBaseConfig(2)).ok());
}

// --- Simulated degraded-mode cost --------------------------------------------

TEST(FaultSimElasticTest, ShrinkSkipsRestartAndScalesThroughput) {
  FaultSimConfig config;
  config.ranks = 4;
  config.iterations = 10;
  config.compute_us = 100.0;
  config.comm_us = 100.0;
  config.detect_timeout_us = 1000.0;
  config.restart_us = 2000.0;  // must NOT be paid in elastic mode
  config.reshard_us = 500.0;
  config.checkpoint_every = 5;
  config.elastic = true;
  SimFaultEvent fail;
  fail.type = SimFaultType::kFailRank;
  fail.rank = 2;
  fail.at_us = 1250.0;  // mid-iteration 6; last checkpoint at iteration 5
  config.events = {fail};
  const FaultSimResult result = SimulateFaultyRun(config);

  EXPECT_EQ(result.failures, 1);
  EXPECT_EQ(result.final_ranks, 3);
  EXPECT_EQ(result.iterations_replayed, 1);
  // Stall: 50 us of wasted partial iteration + detect + reshard (no restart).
  EXPECT_DOUBLE_EQ(result.stall_us, 1550.0);
  // Post-shrink iteration: ring collectives scale by ((3-1)/3)/((4-1)/4).
  const double degraded_iteration = 100.0 + 100.0 * (2.0 / 3.0) / (3.0 / 4.0);
  EXPECT_DOUBLE_EQ(result.iteration_us, degraded_iteration);
  EXPECT_DOUBLE_EQ(result.total_us, 2750.0 + 5.0 * degraded_iteration);
  EXPECT_DOUBLE_EQ(result.throughput_factor,
                   (3.0 / 4.0) * (200.0 / degraded_iteration));
}

TEST(FaultSimElasticTest, NonElasticPathStillRestartsAtFullWorld) {
  FaultSimConfig config;
  config.ranks = 4;
  config.iterations = 10;
  config.compute_us = 100.0;
  config.comm_us = 100.0;
  config.detect_timeout_us = 1000.0;
  config.restart_us = 2000.0;
  config.checkpoint_every = 5;
  SimFaultEvent fail;
  fail.type = SimFaultType::kFailRank;
  fail.rank = 2;
  fail.at_us = 1250.0;
  config.events = {fail};
  const FaultSimResult result = SimulateFaultyRun(config);
  // Exact pins from the pre-elastic behavior: byte-identical cost model.
  EXPECT_DOUBLE_EQ(result.stall_us, 3050.0);
  EXPECT_DOUBLE_EQ(result.total_us, 5250.0);
  EXPECT_EQ(result.final_ranks, 4);
  EXPECT_DOUBLE_EQ(result.throughput_factor, 1.0);
}

}  // namespace
}  // namespace msmoe
