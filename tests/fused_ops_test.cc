#include <gtest/gtest.h>

#include <vector>

#include "src/base/parallel_for.h"
#include "src/base/rng.h"
#include "src/comm/communicator.h"
#include "src/parallel/fused_ops.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

// The fused kernels must be bitwise equal to the unfused collective-then-
// GEMM sequence for any tile size — the §4.2 functional contract.

class FusedAgGemmTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(FusedAgGemmTest, MatchesUnfusedForAnyTileSize) {
  const int n = 4;
  const int64_t rows_local = 6;
  const int64_t k = 8;
  const int64_t cols = 5;
  const int64_t tile = GetParam();

  Rng rng(1);
  std::vector<Tensor> x_locals;
  for (int rank = 0; rank < n; ++rank) {
    x_locals.push_back(Tensor::Randn({rows_local, k}, rng));
  }
  Tensor w = Tensor::Randn({k, cols}, rng);

  // Reference: gather then one GEMM.
  Tensor x_full({n * rows_local, k});
  for (int rank = 0; rank < n; ++rank) {
    std::copy(x_locals[static_cast<size_t>(rank)].data(),
              x_locals[static_cast<size_t>(rank)].data() + rows_local * k,
              x_full.data() + rank * rows_local * k);
  }
  Tensor y_ref = MatMul(x_full, w);

  FlatCommunicator group(n);
  std::vector<Tensor> y(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&group, rank};
    y[static_cast<size_t>(rank)] =
        FusedAllGatherGemm(ctx, x_locals[static_cast<size_t>(rank)], w, tile);
  });
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_EQ(y[static_cast<size_t>(rank)].RelativeL2Diff(y_ref), 0.0)
        << "rank " << rank << " tile " << tile;
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, FusedAgGemmTest,
                         ::testing::Values<int64_t>(1, 2, 3, 6, 100));

class FusedGemmRsTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(FusedGemmRsTest, MatchesUnfusedForAnyTileSize) {
  const int n = 4;
  const int64_t rows = 8;  // divisible by n
  const int64_t k_total = 12;
  const int64_t cols = 5;
  const int64_t k_shard = k_total / n;
  const int64_t tile = GetParam();

  Rng rng(2);
  Tensor x_full({rows, k_total});
  Tensor w_full({k_total, cols});
  x_full = Tensor::Randn({rows, k_total}, rng);
  w_full = Tensor::Randn({k_total, cols}, rng);
  Tensor y_ref = MatMul(x_full, w_full);

  FlatCommunicator group(n);
  std::vector<Tensor> y(n);
  RunOnRanks(n, [&](int rank) {
    // Rank's contraction-dim slices.
    Tensor x_shard({rows, k_shard});
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(x_full.data() + r * k_total + rank * k_shard,
                x_full.data() + r * k_total + (rank + 1) * k_shard,
                x_shard.data() + r * k_shard);
    }
    Tensor w_shard = w_full.SliceRows(rank * k_shard, (rank + 1) * k_shard);
    ShardContext ctx{&group, rank};
    y[static_cast<size_t>(rank)] = FusedGemmReduceScatter(ctx, x_shard, w_shard, tile);
  });
  const int64_t rows_out = rows / n;
  for (int rank = 0; rank < n; ++rank) {
    Tensor ref_chunk = y_ref.SliceRows(rank * rows_out, (rank + 1) * rows_out);
    EXPECT_LT(y[static_cast<size_t>(rank)].RelativeL2Diff(ref_chunk), 1e-6)
        << "rank " << rank << " tile " << tile;
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, FusedGemmRsTest,
                         ::testing::Values<int64_t>(1, 2, 8));

// The full pipeline grid: every (worker count x ragged tile size) cell of
// the double-buffered pipeline must reproduce the unfused reference BITWISE.
// The GEMM backend guarantees bit-identical results across worker counts and
// row-tile splits (tensor_ops.h), and the chunked collectives deliver the
// same bytes regardless of segmentation, so no cell gets a tolerance.
TEST(FusedPipelineGridTest, AgGemmBitwiseAcrossWorkersAndTiles) {
  const int n = 4;
  const int64_t rows_local = 7;  // ragged: never splits evenly into tiles
  const int64_t k = 9;
  const int64_t cols = 5;

  Rng rng(11);
  std::vector<Tensor> x_locals;
  for (int rank = 0; rank < n; ++rank) {
    x_locals.push_back(Tensor::Randn({rows_local, k}, rng));
  }
  Tensor w = Tensor::Randn({k, cols}, rng);

  Tensor x_full({n * rows_local, k});
  for (int rank = 0; rank < n; ++rank) {
    std::copy(x_locals[static_cast<size_t>(rank)].data(),
              x_locals[static_cast<size_t>(rank)].data() + rows_local * k,
              x_full.data() + rank * rows_local * k);
  }
  Tensor y_ref = MatMul(x_full, w);

  const int restore = ParallelWorkerCount();
  for (const int workers : {1, 2, 4}) {
    SetParallelWorkerCount(workers);
    for (const int64_t tile : {int64_t{1}, int64_t{2}, int64_t{3}, int64_t{5},
                               rows_local, int64_t{100}}) {
      FlatCommunicator group(n);
      std::vector<Tensor> y(n);
      RunOnRanks(n, [&](int rank) {
        ShardContext ctx{&group, rank};
        y[static_cast<size_t>(rank)] =
            FusedAllGatherGemm(ctx, x_locals[static_cast<size_t>(rank)], w, tile);
      });
      for (int rank = 0; rank < n; ++rank) {
        EXPECT_EQ(y[static_cast<size_t>(rank)].RelativeL2Diff(y_ref), 0.0)
            << "workers=" << workers << " tile=" << tile << " rank=" << rank;
      }
    }
  }
  SetParallelWorkerCount(restore);
}

// Same grid for the producer-gated GEMM+reduce-scatter pipeline. The ring
// reduction is a rank-ordered double-precision sum per element, independent
// of chunk segmentation, so every cell must be bitwise equal to the
// monolithic (tile = rows, workers = 1) fused result.
TEST(FusedPipelineGridTest, GemmRsBitwiseAcrossWorkersAndTiles) {
  const int n = 4;
  const int64_t rows = 8;  // divisible by n
  const int64_t k_total = 12;
  const int64_t cols = 5;
  const int64_t k_shard = k_total / n;

  Rng rng(12);
  Tensor x_full = Tensor::Randn({rows, k_total}, rng);
  Tensor w_full = Tensor::Randn({k_total, cols}, rng);

  auto run_grid_cell = [&](int64_t tile) {
    FlatCommunicator group(n);
    std::vector<Tensor> y(n);
    RunOnRanks(n, [&](int rank) {
      Tensor x_shard({rows, k_shard});
      for (int64_t r = 0; r < rows; ++r) {
        std::copy(x_full.data() + r * k_total + rank * k_shard,
                  x_full.data() + r * k_total + (rank + 1) * k_shard,
                  x_shard.data() + r * k_shard);
      }
      Tensor w_shard = w_full.SliceRows(rank * k_shard, (rank + 1) * k_shard);
      ShardContext ctx{&group, rank};
      y[static_cast<size_t>(rank)] = FusedGemmReduceScatter(ctx, x_shard, w_shard, tile);
    });
    return y;
  };

  const int restore = ParallelWorkerCount();
  SetParallelWorkerCount(1);
  const std::vector<Tensor> baseline = run_grid_cell(rows);
  for (const int workers : {1, 2, 4}) {
    SetParallelWorkerCount(workers);
    for (const int64_t tile : {int64_t{1}, int64_t{3}, int64_t{5}, rows}) {
      const std::vector<Tensor> y = run_grid_cell(tile);
      for (int rank = 0; rank < n; ++rank) {
        EXPECT_EQ(
            y[static_cast<size_t>(rank)].RelativeL2Diff(baseline[static_cast<size_t>(rank)]),
            0.0)
            << "workers=" << workers << " tile=" << tile << " rank=" << rank;
      }
    }
  }
  SetParallelWorkerCount(restore);
}

TEST(FusedAgScatterGroupedGemmTest, MatchesPerExpertReference) {
  const int n = 2;
  const int64_t t_local = 8;
  const int64_t h = 6;
  const int64_t cols = 4;
  const int64_t experts = 4;
  const int64_t e_local = experts / n;

  Rng rng(3);
  std::vector<Tensor> x_locals;
  std::vector<std::vector<int64_t>> routing(n);
  for (int rank = 0; rank < n; ++rank) {
    x_locals.push_back(Tensor::Randn({t_local, h}, rng));
    for (int64_t t = 0; t < t_local; ++t) {
      routing[static_cast<size_t>(rank)].push_back(
          static_cast<int64_t>(rng.NextIndex(experts)));
    }
  }
  std::vector<Tensor> weights;
  for (int64_t e = 0; e < experts; ++e) {
    weights.push_back(Tensor::Randn({h, cols}, rng));
  }

  FlatCommunicator group(n);
  std::vector<Tensor> y(n);
  std::vector<std::vector<int64_t>> row_tokens(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&group, rank};
    y[static_cast<size_t>(rank)] = FusedAllGatherScatterGroupedGemm(
        ctx, x_locals[static_cast<size_t>(rank)], routing[static_cast<size_t>(rank)],
        weights, e_local, &row_tokens[static_cast<size_t>(rank)]);
  });

  // Reference: per global token, y_row = x_token @ W[expert]; check each
  // grouped row against it and that every kept row belongs to a local expert.
  auto global_x = [&](int64_t token) {
    const int src = static_cast<int>(token / t_local);
    return x_locals[static_cast<size_t>(src)].SliceRows(token % t_local,
                                                        token % t_local + 1);
  };
  auto global_expert = [&](int64_t token) {
    const int src = static_cast<int>(token / t_local);
    return routing[static_cast<size_t>(src)][static_cast<size_t>(token % t_local)];
  };
  int64_t total_rows = 0;
  for (int rank = 0; rank < n; ++rank) {
    const auto& tokens = row_tokens[static_cast<size_t>(rank)];
    total_rows += static_cast<int64_t>(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      const int64_t e = global_expert(tokens[i]);
      EXPECT_EQ(e / e_local, rank) << "row routed to wrong owner";
      Tensor ref = MatMul(global_x(tokens[i]), weights[static_cast<size_t>(e)]);
      for (int64_t c = 0; c < cols; ++c) {
        EXPECT_NEAR(y[static_cast<size_t>(rank)].At(static_cast<int64_t>(i), c),
                    ref.At(0, c), 1e-6);
      }
    }
    // Rows are grouped by expert (non-decreasing local expert index).
    int64_t previous = -1;
    for (int64_t token : tokens) {
      const int64_t e = global_expert(token);
      EXPECT_GE(e, previous);
      previous = e;
    }
  }
  EXPECT_EQ(total_rows, n * t_local);  // every token processed exactly once
}

TEST(FusedAgScatterGroupedGemmTest, EmptyExpertHandled) {
  // All tokens to expert 0: rank 1's experts get nothing.
  const int n = 2;
  const int64_t t_local = 4;
  const int64_t h = 4;
  Rng rng(4);
  std::vector<Tensor> weights;
  for (int e = 0; e < 4; ++e) {
    weights.push_back(Tensor::Randn({h, 3}, rng));
  }
  Tensor x = Tensor::Randn({t_local, h}, rng);
  std::vector<int64_t> routing(static_cast<size_t>(t_local), 0);

  FlatCommunicator group(n);
  std::vector<int64_t> rows0, rows1;
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&group, rank};
    std::vector<int64_t>& rows = rank == 0 ? rows0 : rows1;
    Tensor y = FusedAllGatherScatterGroupedGemm(ctx, x, routing, weights, 2, &rows);
    if (rank == 1) {
      EXPECT_EQ(y.dim(0), 0);
    }
  });
  EXPECT_EQ(rows0.size(), static_cast<size_t>(n * t_local));
  EXPECT_TRUE(rows1.empty());
}

}  // namespace
}  // namespace msmoe
