#include "src/comm/async_comm.h"

#include <cstring>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "src/base/arena.h"
#include "src/base/logging.h"

namespace msmoe {

void TryElevateCommThreadPriority() {
#if defined(__linux__)
  sched_param param{};
  param.sched_priority = 1;
  // EPERM (unprivileged host) leaves the thread on the default policy; the
  // pipeline stays correct, only the overlap is at the scheduler's mercy.
  (void)pthread_setschedparam(pthread_self(), SCHED_FIFO, &param);
#endif
}

// ---------------------------------------------------------------------------
// ChunkLayout

ChunkLayout::ChunkLayout(int64_t count, int num_chunks, int64_t quantum,
                         bool pad_chunks) {
  MSMOE_CHECK_GE(count, 0);
  MSMOE_CHECK_GT(quantum, 0);
  MSMOE_CHECK_EQ(count % quantum, 0)
      << "chunk boundaries must align to the quantum (indivisible row)";
  const int64_t rows = count / quantum;
  int64_t chunks = num_chunks;
  if (chunks < 1) {
    chunks = 1;
  }
  if (!pad_chunks && (rows == 0 || chunks > rows)) {
    chunks = rows > 0 ? rows : 1;
  }
  bounds_.resize(static_cast<size_t>(chunks) + 1);
  const int64_t base = rows / chunks;
  const int64_t rem = rows % chunks;
  bounds_[0] = 0;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t chunk_rows = base + (c < rem ? 1 : 0);
    bounds_[static_cast<size_t>(c) + 1] =
        bounds_[static_cast<size_t>(c)] + chunk_rows * quantum;
  }
  MSMOE_CHECK_EQ(bounds_.back(), count);
}

// ---------------------------------------------------------------------------
// ChunkBarrier

ChunkBarrier::ChunkBarrier(int num_chunks)
    : ready_(static_cast<size_t>(num_chunks), 0),
      signalled_(static_cast<size_t>(num_chunks), 0) {
  MSMOE_CHECK_GT(num_chunks, 0);
}

void ChunkBarrier::MarkReady(int chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_[static_cast<size_t>(chunk)] = 1;
  cv_.notify_all();
}

Status ChunkBarrier::WaitReady(int chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, chunk] {
    return ready_[static_cast<size_t>(chunk)] != 0 || cancelled_;
  });
  if (ready_[static_cast<size_t>(chunk)] != 0) {
    // The chunk landed before any cancellation: its data is valid even if
    // the op failed later.
    return Status::Ok();
  }
  return status_;
}

void ChunkBarrier::Signal(int chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  signalled_[static_cast<size_t>(chunk)] = 1;
  cv_.notify_all();
}

Status ChunkBarrier::WaitSignal(int chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, chunk] {
    return signalled_[static_cast<size_t>(chunk)] != 0 || cancelled_;
  });
  if (signalled_[static_cast<size_t>(chunk)] != 0) {
    return Status::Ok();
  }
  return status_;
}

bool ChunkBarrier::AllSignalled() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const char s : signalled_) {
    if (s == 0) {
      return false;
    }
  }
  return true;
}

void ChunkBarrier::Cancel(Status status) {
  MSMOE_CHECK(!status.ok()) << "ChunkBarrier::Cancel needs a non-OK status";
  std::lock_guard<std::mutex> lock(mu_);
  if (!cancelled_) {
    cancelled_ = true;
    status_ = std::move(status);
  }
  cv_.notify_all();
}

Status ChunkBarrier::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_ ? status_ : Status::Ok();
}

// ---------------------------------------------------------------------------
// CommHandle

CommHandle::CommHandle(ChunkLayout layout, int num_chunks, CollectiveGroup* channel,
                       bool producer_gated)
    : layout_(std::move(layout)),
      num_chunks_(num_chunks),
      channel_(channel),
      producer_gated_(producer_gated),
      barrier_(num_chunks) {}

CommHandle::~CommHandle() {
  if (producer_gated_ && channel_ != nullptr && !barrier_.AllSignalled()) {
    // Mid-pipeline abort: the comm thread may be blocked waiting for input
    // that will never come, and peer comm threads may be blocked in the
    // chunk rendezvous waiting for THIS rank. Cancel our waits and poison
    // the async channel so every rank's pipeline unwinds; the channel is
    // healed by the Communicator's next RecoveryBarrier.
    const Status cancel =
        Aborted("CommHandle destroyed before all producer chunks were signalled");
    barrier_.Cancel(cancel);
    channel_->Abort(cancel);
  }
  WaitRetired();
}

Status CommHandle::WaitChunk(int chunk) {
  MSMOE_CHECK_GE(chunk, 0);
  MSMOE_CHECK_LT(chunk, num_chunks());
  return barrier_.WaitReady(chunk);
}

Status CommHandle::WaitAll() {
  Status first = Status::Ok();
  for (int c = 0; c < num_chunks(); ++c) {
    const Status status = barrier_.WaitReady(c);
    if (!status.ok() && first.ok()) {
      first = status;
    }
  }
  return first;
}

void CommHandle::SignalChunkReady(int chunk) {
  MSMOE_CHECK(producer_gated_) << "SignalChunkReady on a non-producer-gated op";
  MSMOE_CHECK_GE(chunk, 0);
  MSMOE_CHECK_LT(chunk, num_chunks());
  barrier_.Signal(chunk);
}

void CommHandle::MarkRetired() {
  std::lock_guard<std::mutex> lock(retire_mu_);
  retired_ = true;
  retire_cv_.notify_all();
}

void CommHandle::WaitRetired() {
  std::unique_lock<std::mutex> lock(retire_mu_);
  retire_cv_.wait(lock, [this] { return retired_; });
}

// ---------------------------------------------------------------------------
// Drivers — each runs as one FIFO task on the rank's comm-proxy thread.

namespace {

CommEvent ChunkEvent(const AsyncOpParams& params, CommOp op, const char* algorithm,
                     int64_t elem_count, uint64_t wire, int chunk, int chunk_count,
                     double start_us) {
  CommEvent event;
  event.op = op;
  event.algorithm = algorithm;
  event.group_size = params.group_size;
  event.rank = params.member;
  event.elem_type = params.elem_type;
  event.elem_bytes = params.elem_bytes;
  event.elem_count = elem_count;
  event.wire_bytes = wire;
  event.primary = params.member == 0;
  event.start_us = start_us;
  event.duration_us = params.telemetry->NowUs() - start_us;
  event.logical_op = params.logical_op;
  event.chunk_index = chunk;
  event.chunk_count = chunk_count;
  event.async_lane = true;
  return event;
}

uint64_t RingBytes(int n, int64_t bytes) {
  return static_cast<uint64_t>(n - 1) * static_cast<uint64_t>(bytes);
}

}  // namespace

std::unique_ptr<CommHandle> AsyncCommDriver::StartAllGather(
    const AsyncOpParams& params, const void* send, void* recv, int64_t count,
    int num_chunks, int64_t quantum) {
  ChunkLayout layout(count, num_chunks, quantum);
  const int chunks = layout.num_chunks();
  std::unique_ptr<CommHandle> handle(new CommHandle(
      std::move(layout), chunks, params.channel, /*producer_gated=*/false));
  CommHandle* h = handle.get();
  const auto* send_bytes = static_cast<const uint8_t*>(send);
  auto* recv_bytes = static_cast<uint8_t*>(recv);
  params.thread->Submit([params, h, send_bytes, recv_bytes, count] {
    const int n = params.group_size;
    const int eb = params.elem_bytes;
    const int chunk_count = h->num_chunks();
    // Comm-proxy threads are persistent, so the workspace slot survives the
    // op and later steps reuse it verbatim.
    Workspace& ws = ThreadWorkspace();
    for (int c = 0; c < chunk_count; ++c) {
      const double start = params.telemetry->NowUs();
      const int64_t begin = h->layout().begin(c);
      const int64_t elems = h->layout().size(c);
      const int64_t chunk_bytes = elems * eb;
      uint8_t* scratch = ws.Bytes("asynccomm.ag.scratch", n * chunk_bytes);
      const Status status = params.channel->TryAllGather(
          params.member, send_bytes + begin * eb, scratch, chunk_bytes);
      if (!status.ok()) {
        h->barrier_.Cancel(status);
        break;
      }
      if (c == chunk_count - 1 && params.fault.corrupt) {
        // The monolithic EndOp flips one bit anywhere in the receive
        // buffer; chunked ops restrict the flip to the final chunk's slice
        // (still unpublished, so consumers never race with the injection).
        FlipOneBit(scratch, static_cast<int64_t>(n) * chunk_bytes,
                   params.fault.corrupt_seed);
      }
      for (int src = 0; src < n; ++src) {
        std::memcpy(recv_bytes + (static_cast<int64_t>(src) * count + begin) * eb,
                    scratch + static_cast<int64_t>(src) * chunk_bytes,
                    static_cast<size_t>(chunk_bytes));
      }
      params.telemetry->Record(ChunkEvent(params, CommOp::kAllGather, "ring", elems,
                                          RingBytes(n, chunk_bytes), c, chunk_count,
                                          start));
      h->barrier_.MarkReady(c);
    }
    h->MarkRetired();
  });
  return handle;
}

std::unique_ptr<CommHandle> AsyncCommDriver::StartReduceScatter(
    const AsyncOpParams& params, const float* send, float* recv, int64_t count,
    int num_chunks, int64_t quantum) {
  ChunkLayout layout(count, num_chunks, quantum);
  const int chunks = layout.num_chunks();
  std::unique_ptr<CommHandle> handle(new CommHandle(
      std::move(layout), chunks, params.channel, /*producer_gated=*/true));
  CommHandle* h = handle.get();
  params.thread->Submit([params, h, send, recv, count] {
    const int n = params.group_size;
    const int chunk_count = h->num_chunks();
    Workspace& ws = ThreadWorkspace();
    for (int c = 0; c < chunk_count; ++c) {
      Status status = h->barrier_.WaitSignal(c);
      if (!status.ok()) {
        h->barrier_.Cancel(status);
        break;
      }
      const double start = params.telemetry->NowUs();
      const int64_t begin = h->layout().begin(c);
      const int64_t elems = h->layout().size(c);
      // Pack every destination's slice of this chunk contiguously: block d
      // of the chunked reduce-scatter is rows [begin, begin+elems) of the
      // full op's block d.
      float* scratch = ws.Floats("asynccomm.rs.scratch", n * elems);
      for (int dst = 0; dst < n; ++dst) {
        std::memcpy(scratch + static_cast<int64_t>(dst) * elems,
                    send + static_cast<int64_t>(dst) * count + begin,
                    static_cast<size_t>(elems) * sizeof(float));
      }
      status = params.channel->TryReduceScatter(params.member, scratch,
                                                recv + begin, elems);
      if (!status.ok()) {
        h->barrier_.Cancel(status);
        break;
      }
      if (c == chunk_count - 1 && params.fault.corrupt) {
        FlipOneBit(recv + begin, elems * static_cast<int64_t>(sizeof(float)),
                   params.fault.corrupt_seed);
      }
      params.telemetry->Record(
          ChunkEvent(params, CommOp::kReduceScatter, "ring", elems,
                     RingBytes(n, elems * static_cast<int64_t>(sizeof(float))), c,
                     chunk_count, start));
      h->barrier_.MarkReady(c);
    }
    h->MarkRetired();
  });
  return handle;
}

std::unique_ptr<CommHandle> AsyncCommDriver::StartAllToAllV(
    const AsyncOpParams& params, const void* send,
    const std::vector<int64_t>& send_counts,
    const std::function<void*(int64_t)>& resize_recv, int num_chunks) {
  const int n = params.group_size;
  MSMOE_CHECK_EQ(static_cast<int>(send_counts.size()), n);
  int chunks = num_chunks < 1 ? 1 : num_chunks;
  // The recv split is data-dependent (counts are exchanged on the comm
  // thread), so the handle's element layout is empty; chunk c always
  // delivers the c-th near-even slice of every source's block.
  ChunkLayout layout(0, 1, 1);
  std::unique_ptr<CommHandle> handle(new CommHandle(
      std::move(layout), chunks, params.channel, /*producer_gated=*/false));
  CommHandle* h = handle.get();
  const auto* send_bytes = static_cast<const uint8_t*>(send);
  params.thread->Submit([params, h, send_bytes, send_counts, resize_recv, chunks, n] {
    const int eb = params.elem_bytes;
    // Metadata rendezvous: publish the counts matrix through the channel's
    // shared slots exactly like the monolithic AllToAllV (no wire bytes, no
    // event — it is not payload).
    std::vector<int64_t> all_counts;
    Status status =
        params.channel->TryExchangeCounts(params.member, send_counts, &all_counts);
    if (!status.ok()) {
      h->barrier_.Cancel(status);
      h->MarkRetired();
      return;
    }
    auto count_at = [&all_counts, n](int src, int dst) {
      return all_counts[static_cast<size_t>(src) * static_cast<size_t>(n) +
                        static_cast<size_t>(dst)];
    };
    // Per-(src,dst) chunk layouts — linear in payload, so per-chunk volumes
    // sum exactly to the monolithic A2AV volume.
    std::vector<ChunkLayout> pair_layout;
    pair_layout.reserve(static_cast<size_t>(n) * static_cast<size_t>(n));
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        pair_layout.emplace_back(count_at(src, dst), chunks, 1, /*pad_chunks=*/true);
      }
    }
    auto pair_at = [&pair_layout, n](int src, int dst) -> const ChunkLayout& {
      return pair_layout[static_cast<size_t>(src) * static_cast<size_t>(n) +
                         static_cast<size_t>(dst)];
    };
    // Full-op send/recv offsets (dest-major send, source-major recv).
    std::vector<int64_t> send_prefix(static_cast<size_t>(n) + 1, 0);
    std::vector<int64_t> recv_prefix(static_cast<size_t>(n) + 1, 0);
    for (int peer = 0; peer < n; ++peer) {
      send_prefix[static_cast<size_t>(peer) + 1] =
          send_prefix[static_cast<size_t>(peer)] + count_at(params.member, peer);
      recv_prefix[static_cast<size_t>(peer) + 1] =
          recv_prefix[static_cast<size_t>(peer)] + count_at(peer, params.member);
    }
    h->recv_counts_.assign(static_cast<size_t>(n), 0);
    for (int src = 0; src < n; ++src) {
      h->recv_counts_[static_cast<size_t>(src)] = count_at(src, params.member);
    }
    auto* recv_bytes =
        static_cast<uint8_t*>(resize_recv(recv_prefix[static_cast<size_t>(n)]));
    Workspace& ws = ThreadWorkspace();
    std::vector<int64_t> chunk_send_bytes(static_cast<size_t>(n), 0);
    std::vector<int64_t> chunk_recv_counts;
    // A chunk's sub-layout within each pair block mirrors the monolithic
    // layout, so after the last chunk the receive buffer is bitwise the
    // monolithic result.
    for (int c = 0; c < chunks; ++c) {
      const double start = params.telemetry->NowUs();
      int64_t send_total = 0;
      for (int dst = 0; dst < n; ++dst) {
        chunk_send_bytes[static_cast<size_t>(dst)] = pair_at(params.member, dst).size(c) * eb;
        send_total += pair_at(params.member, dst).size(c);
      }
      uint8_t* send_scratch = ws.Bytes("asynccomm.a2av.send", send_total * eb);
      int64_t packed = 0;
      for (int dst = 0; dst < n; ++dst) {
        const ChunkLayout& pl = pair_at(params.member, dst);
        std::memcpy(send_scratch + packed * eb,
                    send_bytes + (send_prefix[static_cast<size_t>(dst)] + pl.begin(c)) * eb,
                    static_cast<size_t>(pl.size(c)) * static_cast<size_t>(eb));
        packed += pl.size(c);
      }
      int64_t recv_total = 0;
      for (int src = 0; src < n; ++src) {
        recv_total += pair_at(src, params.member).size(c);
      }
      uint8_t* recv_scratch = ws.Bytes("asynccomm.a2av.recv", recv_total * eb);
      uint64_t wire = 0;
      Status st = params.channel->TryAllToAllV(params.member, send_scratch,
                                               chunk_send_bytes, recv_scratch,
                                               &chunk_recv_counts, &wire);
      if (!st.ok()) {
        h->barrier_.Cancel(st);
        break;
      }
      if (c == chunks - 1 && params.fault.corrupt) {
        FlipOneBit(recv_scratch, recv_total * eb, params.fault.corrupt_seed);
      }
      int64_t unpacked = 0;
      for (int src = 0; src < n; ++src) {
        const ChunkLayout& pl = pair_at(src, params.member);
        std::memcpy(recv_bytes + (recv_prefix[static_cast<size_t>(src)] + pl.begin(c)) * eb,
                    recv_scratch + unpacked * eb,
                    static_cast<size_t>(pl.size(c)) * static_cast<size_t>(eb));
        unpacked += pl.size(c);
      }
      params.telemetry->Record(ChunkEvent(params, CommOp::kAllToAllV, "pairwise",
                                          recv_total, wire, c, chunks, start));
      h->barrier_.MarkReady(c);
    }
    h->MarkRetired();
  });
  return handle;
}

std::unique_ptr<CommHandle> AsyncCommDriver::MakeFailedHandle(Status status) {
  MSMOE_CHECK(!status.ok()) << "MakeFailedHandle needs a non-OK status";
  std::unique_ptr<CommHandle> handle(new CommHandle(
      ChunkLayout(0, 1, 1), /*num_chunks=*/1, /*channel=*/nullptr,
      /*producer_gated=*/false));
  handle->barrier_.Cancel(std::move(status));
  handle->MarkRetired();
  return handle;
}

}  // namespace msmoe
