// Minimal discrete-event engine: a time-ordered queue of callbacks.
//
// All simulated performance results in this repository (Tables/Figures of
// §6 reproduced on a laptop) come from graphs of operators executed on this
// engine with analytic cost models (src/sim/cost_model.h).
#ifndef MSMOE_SRC_SIM_ENGINE_H_
#define MSMOE_SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace msmoe {

class SimEngine {
 public:
  double now() const { return now_; }

  // Schedules fn at absolute time `time` (>= now). Events at equal times run
  // in scheduling order (stable).
  void Schedule(double time, std::function<void()> fn);
  void ScheduleAfter(double delay, std::function<void()> fn) {
    Schedule(now_ + delay, std::move(fn));
  }

  // Runs until the queue drains; returns the final clock.
  double Run();

 private:
  struct Event {
    double time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace msmoe

#endif  // MSMOE_SRC_SIM_ENGINE_H_
