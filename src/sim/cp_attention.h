// Context-parallel attention load analysis (§3.1 "Balanced vs imbalanced").
//
// Context parallelism partitions every activation along the sequence, so
// with causal masking rank r's attention work is proportional to the prefix
// its tokens attend to: contiguous chunks make the last rank do ~2x the
// mean work, and in large-scale training the whole step waits for the most
// loaded rank. The zigzag strategy pairs head and tail slices to rebalance,
// "although achieving perfect balance remains challenging". Ulysses-style
// SP partitions by heads instead — every rank sees the full sequence for
// 1/n of the heads, which is exactly balanced — and that is why the paper
// adopts it. This module quantifies all three.
#ifndef MSMOE_SRC_SIM_CP_ATTENTION_H_
#define MSMOE_SRC_SIM_CP_ATTENTION_H_

#include <cstdint>
#include <vector>

namespace msmoe {

enum class AttnPartition {
  kCpContiguous,  // CP, rank r owns tokens [r*s/n, (r+1)*s/n)
  kCpZigzag,      // CP, rank r owns slices r and 2n-1-r of 2n slices
  kSpByHeads,     // Ulysses SP: full sequence, 1/n of the heads
};

const char* AttnPartitionName(AttnPartition partition);

struct AttnLoadReport {
  // Causal-attention work per rank, normalized so the total is 1.
  std::vector<double> per_rank_work;
  double max_over_mean = 0.0;  // the step waits for the most loaded rank
  // Fraction of a step lost to imbalance: 1 - mean/max.
  double bubble_fraction = 0.0;
};

// seq_len must divide by n (and by 2n for zigzag).
AttnLoadReport AnalyzeAttentionLoad(int64_t seq_len, int n, AttnPartition partition);

// Ring-attention step schedule: CP exchanges KV chunks around a ring over n
// steps; every step waits for its most-loaded rank. Total FLOPs may balance
// (zigzag does), yet per-step skew still costs time — this is the §3.1
// "perfect balance remains challenging" effect, and it also "disturbs the
// training pipeline".
struct RingStepReport {
  // Per-step makespan (max over ranks), in units of one full block-pair.
  std::vector<double> step_makespan;
  // Useful work / (n * sum of step makespans): 1.0 = perfectly packed.
  double efficiency = 0.0;
};

RingStepReport AnalyzeRingSchedule(int64_t seq_len, int n, AttnPartition partition);

// Variable-length batches: production batches pack documents of different
// lengths with per-document causal masks, so a token's attention work
// depends on its position INSIDE its document. CP partitions by absolute
// position, so where document boundaries fall decides each rank's load —
// "the entire training process is often constrained by the most imbalanced
// data batch" (§3.1). Head partitioning stays exact for any batch.
// doc_lengths must sum to a multiple of n (and 2n for zigzag).
AttnLoadReport AnalyzeVariableLengthLoad(const std::vector<int64_t>& doc_lengths, int n,
                                         AttnPartition partition);

}  // namespace msmoe

#endif  // MSMOE_SRC_SIM_CP_ATTENTION_H_
