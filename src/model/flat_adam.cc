#include "src/model/flat_adam.h"

#include <cmath>

#include "src/base/logging.h"

namespace msmoe {

FlatAdam::FlatAdam(AdamConfig config, int64_t shard_elems)
    : config_(config), shard_elems_(shard_elems) {
  MSMOE_CHECK_GE(shard_elems, 0);
  m_.assign(static_cast<size_t>(shard_elems), 0.0f);
  v_.assign(static_cast<size_t>(shard_elems), 0.0f);
}

void FlatAdam::Step(const float* grad, float* master) {
  ++step_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
  double clip_scale = 1.0;
  if (config_.grad_clip_norm > 0.0) {
    double norm_sq = 0.0;
    for (int64_t i = 0; i < shard_elems_; ++i) {
      norm_sq += static_cast<double>(grad[i]) * grad[i];
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.grad_clip_norm) {
      clip_scale = config_.grad_clip_norm / norm;
    }
  }
  for (int64_t i = 0; i < shard_elems_; ++i) {
    const double g = static_cast<double>(grad[i]) * clip_scale;
    m_[static_cast<size_t>(i)] = static_cast<float>(
        config_.beta1 * m_[static_cast<size_t>(i)] + (1.0 - config_.beta1) * g);
    v_[static_cast<size_t>(i)] = static_cast<float>(
        config_.beta2 * v_[static_cast<size_t>(i)] + (1.0 - config_.beta2) * g * g);
    const double m_hat = m_[static_cast<size_t>(i)] / bias1;
    const double v_hat = v_[static_cast<size_t>(i)] / bias2;
    double update = m_hat / (std::sqrt(v_hat) + config_.eps);
    if (config_.weight_decay > 0.0) {
      update += config_.weight_decay * master[i];
    }
    master[i] = static_cast<float>(master[i] - config_.lr * update);
  }
}

std::vector<float> FlatAdam::SaveState() const {
  std::vector<float> blob;
  blob.reserve(1 + m_.size() + v_.size());
  blob.push_back(static_cast<float>(step_));
  blob.insert(blob.end(), m_.begin(), m_.end());
  blob.insert(blob.end(), v_.begin(), v_.end());
  return blob;
}

void FlatAdam::LoadState(const std::vector<float>& blob) {
  MSMOE_CHECK_EQ(blob.size(), 1 + m_.size() + v_.size());
  step_ = static_cast<int64_t>(blob[0]);
  std::copy(blob.begin() + 1, blob.begin() + 1 + static_cast<int64_t>(m_.size()), m_.begin());
  std::copy(blob.begin() + 1 + static_cast<int64_t>(m_.size()), blob.end(), v_.begin());
}

}  // namespace msmoe
