# Empty compiler generated dependencies file for msmoe_comm.
# This may be replaced when dependencies are built.
