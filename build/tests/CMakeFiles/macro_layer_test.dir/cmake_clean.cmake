file(REMOVE_RECURSE
  "CMakeFiles/macro_layer_test.dir/macro_layer_test.cc.o"
  "CMakeFiles/macro_layer_test.dir/macro_layer_test.cc.o.d"
  "macro_layer_test"
  "macro_layer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macro_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
