// Distributed execution demo: run the SP (Ulysses) attention and the EP
// expert FFN over real thread ranks, and verify bit-for-bit against the
// single-rank reference — the numerical-equivalence property that lets
// MegaScale-MoE swap parallelism strategies freely.
//
//   $ ./distributed_layer_demo
#include <cstdio>
#include <vector>

#include "src/base/rng.h"
#include "src/comm/communicator.h"
#include "src/model/config.h"
#include "src/model/router.h"
#include "src/parallel/ep_ffn.h"
#include "src/parallel/sp_attention.h"
#include "src/tensor/tensor_ops.h"

using namespace msmoe;

int main() {
  // A small-but-real config: h=64, 8 query heads / 4 kv heads, 8 experts.
  ModelConfig config = TinyMoeConfig(8, 2);
  config.hidden = 64;
  config.num_heads = 8;
  config.gqa_ratio = 2;
  config.ffn_hidden = 48;
  config.seq_len = 32;
  RouterConfig router;
  router.num_experts = config.num_experts;
  router.top_k = config.top_k;

  Rng rng(2024);
  Tensor w_qkv = Tensor::Randn({config.hidden, config.qkv_out_dim()}, rng, 0.0f, 0.1f);
  Tensor w_out = Tensor::Randn({config.hidden, config.hidden}, rng, 0.0f, 0.1f);
  Tensor w_gate = Tensor::Randn({config.hidden, config.num_experts}, rng, 0.0f, 0.3f);
  std::vector<Tensor> w1, w3, w2;
  for (int64_t e = 0; e < config.num_experts; ++e) {
    w1.push_back(Tensor::Randn({config.hidden, config.ffn_hidden}, rng, 0.0f, 0.1f));
    w3.push_back(Tensor::Randn({config.hidden, config.ffn_hidden}, rng, 0.0f, 0.1f));
    w2.push_back(Tensor::Randn({config.ffn_hidden, config.hidden}, rng, 0.0f, 0.1f));
  }

  const int n = 4;  // 4 "GPUs"
  const int64_t batch = 2;
  Tensor x = Tensor::Randn({batch * config.seq_len, config.hidden}, rng);

  FlatCommunicator attn_group(n);
  FlatCommunicator ffn_group(n);
  std::vector<Tensor> attn_out(n), ffn_out(n);
  RunOnRanks(n, [&](int rank) {
    // Each rank owns a contiguous s/n slice of every sequence.
    const int64_t s_local = config.seq_len / n;
    Tensor x_local({batch * s_local, config.hidden});
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t t = 0; t < s_local; ++t) {
        const float* row =
            x.data() + (b * config.seq_len + rank * s_local + t) * config.hidden;
        std::copy(row, row + config.hidden, x_local.data() + (b * s_local + t) * config.hidden);
      }
    }
    // SP attention: local QKV -> A2A -> full-seq attention -> A2A -> Wo.
    ShardContext attn_ctx{&attn_group, rank};
    SpAttentionCache attn_cache;
    attn_out[static_cast<size_t>(rank)] =
        SpAttentionForward(attn_ctx, config, w_qkv, w_out, x_local, batch, config.seq_len,
                           &attn_cache);

    // EP FFN: route local tokens, dispatch to expert owners, combine.
    ShardContext ffn_ctx{&ffn_group, rank};
    Tensor logits = MatMul(x_local, w_gate);
    RoutingResult routing = RouteTokens(logits, router);
    EpFfnCache ffn_cache;
    ffn_out[static_cast<size_t>(rank)] =
        EpFfnForward(ffn_ctx, config, EpDispatchMode::kAllToAll, w1, w3, w2, x_local,
                     routing, &ffn_cache);
  });

  std::printf("ran SP attention + EP FFN on %d thread ranks\n", n);
  std::printf("SP attention wire bytes: %llu\n",
              static_cast<unsigned long long>(attn_group.wire_bytes()));
  std::printf("EP FFN wire bytes:       %llu\n",
              static_cast<unsigned long long>(ffn_group.wire_bytes()));
  double checksum = 0.0;
  for (int rank = 0; rank < n; ++rank) {
    checksum += attn_out[static_cast<size_t>(rank)].SumAbs() +
                ffn_out[static_cast<size_t>(rank)].SumAbs();
  }
  std::printf("output checksum: %.4f (deterministic across runs)\n", checksum);
  std::printf("see tests/parallel_test.cc for the bit-level equivalence proofs\n");
  return 0;
}
