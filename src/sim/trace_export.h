// Chrome-trace (about://tracing, Perfetto) export of simulated timelines.
//
// Production schedule debugging lives and dies by timeline visualization;
// this writes the graph executor's per-op timings in the Chrome trace-event
// JSON format so a simulated MoE-layer schedule can be inspected exactly
// like a real profiler capture (streams appear as threads, categories as
// colors).
#ifndef MSMOE_SRC_SIM_TRACE_EXPORT_H_
#define MSMOE_SRC_SIM_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/sim/graph.h"

namespace msmoe {

// Serializes one executed graph as a Chrome trace-event JSON document.
// Streams map to thread ids ("tid"), op categories to trace categories,
// durations are in microseconds (the trace format's native unit).
std::string ToChromeTrace(const std::vector<SimOp>& ops, const GraphResult& result,
                          const std::string& process_name = "msmoe-sim");

// Writes the trace to a file; fails with a Status on IO errors.
Status WriteChromeTrace(const std::string& path, const std::vector<SimOp>& ops,
                        const GraphResult& result,
                        const std::string& process_name = "msmoe-sim");

}  // namespace msmoe

#endif  // MSMOE_SRC_SIM_TRACE_EXPORT_H_
