// Fault injection, cancellable collectives, straggler detection, checkpoint
// corruption, and the trainer's loss-transparent recovery loop.
//
// The central claims under test:
//   1. a crashed or stuck rank surfaces as a Status on EVERY peer instead of
//      a process-wide hang (cancellable barrier);
//   2. after recovery, training resumes from the last checkpoint and the
//      loss trajectory is bit-identical to a fault-free run;
//   3. corrupt checkpoints never load silently (v2 CRC + validation matrix).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/comm/collective_group.h"
#include "src/comm/communicator.h"
#include "src/comm/fault.h"
#include "src/comm/health.h"
#include "src/core/trainer.h"
#include "src/model/checkpoint.h"
#include "src/model/config.h"
#include "src/model/lm.h"
#include "src/sim/fault_sim.h"
#include "src/sim/trace_export.h"

namespace msmoe {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// --- Cancellable barrier ----------------------------------------------------

TEST(CancellableBarrierTest, TimeoutSurfacesDeadlineExceededInsteadOfHanging) {
  CollectiveGroup group(2);
  group.set_timeout_ms(50.0);
  const auto start = Clock::now();
  const Status status = group.TryBarrier();  // the peer never arrives
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ElapsedMs(start), 10000.0);
  // The error is sticky: subsequent collectives fail fast.
  float send = 1.0f;
  float recv = 0.0f;
  const auto retry = Clock::now();
  EXPECT_EQ(group.TryAllReduce(0, &send, &recv, 1).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_LT(ElapsedMs(retry), 1000.0);
}

TEST(CancellableBarrierTest, AbortReleasesBlockedWaiter) {
  CollectiveGroup group(2);  // no timeout: waits forever unless cancelled
  Status observed;
  std::thread waiter([&] { observed = group.TryBarrier(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  group.Abort(Aborted("test abort"));
  waiter.join();
  EXPECT_EQ(observed.code(), StatusCode::kAborted);
  EXPECT_TRUE(group.aborted());
  EXPECT_EQ(group.status().code(), StatusCode::kAborted);
}

TEST(CancellableBarrierTest, TimeoutReleasesEveryWaiterWithTheSameError) {
  CollectiveGroup group(3);
  group.set_timeout_ms(50.0);
  std::vector<Status> observed(2);
  std::vector<std::thread> waiters;
  for (int member = 0; member < 2; ++member) {  // member 2 never arrives
    waiters.emplace_back(
        [&group, &observed, member] { observed[member] = group.TryBarrier(); });
  }
  for (std::thread& t : waiters) {
    t.join();
  }
  for (const Status& status : observed) {
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(CancellableBarrierTest, RecoveryBarrierRestoresTheGroup) {
  CollectiveGroup group(2);
  group.Abort(Aborted("induced fault"));
  std::vector<float> results(2, 0.0f);
  RunOnRanks(2, [&](int rank) {
    float send = static_cast<float>(rank + 1);
    float recv = 0.0f;
    EXPECT_EQ(group.TryAllReduce(rank, &send, &recv, 1).code(), StatusCode::kAborted);
    group.RecoveryBarrier(rank);
    EXPECT_TRUE(group.TryAllReduce(rank, &send, &recv, 1).ok());
    results[static_cast<size_t>(rank)] = recv;
  });
  EXPECT_TRUE(group.status().ok());
  EXPECT_EQ(results[0], 3.0f);
  EXPECT_EQ(results[1], 3.0f);
}

// --- RunOnRanksStatus -------------------------------------------------------

TEST(RunOnRanksStatusTest, PropagatesFirstRankException) {
  const Status status = RunOnRanksStatus(3, [&](int rank) {
    if (rank == 1) {
      throw std::runtime_error("boom");
    }
  });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("rank 1"), std::string::npos);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(RunOnRanksStatusTest, PropagatesCheckFailureWithoutKillingTheProcess) {
  const Status status = RunOnRanksStatus(2, [&](int rank) {
    MSMOE_CHECK(rank != 0) << "injected check failure";
  });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("rank 0"), std::string::npos);
  EXPECT_NE(status.message().find("injected check failure"), std::string::npos);
}

TEST(RunOnRanksStatusTest, AbortsGroupSoSurvivorsDoNotDeadlock) {
  CollectiveGroup group(2);  // no timeout — a hang here would be forever
  Status survivor;
  const Status status = RunOnRanksStatus(
      2,
      [&](int rank) {
        if (rank == 0) {
          throw std::runtime_error("rank died before the collective");
        }
        survivor = group.TryBarrier();
      },
      &group);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("rank 0"), std::string::npos);
  EXPECT_FALSE(survivor.ok());
}

// --- FaultPlan --------------------------------------------------------------

TEST(FaultPlanTest, CrashFiresExactlyOnce) {
  FaultPlan plan(42);
  plan.AddCrash(/*rank=*/1, /*at_op=*/3);
  EXPECT_FALSE(plan.OnCollective(1, 2).crash);
  EXPECT_FALSE(plan.OnCollective(0, 3).crash);  // other rank, same index
  EXPECT_TRUE(plan.OnCollective(1, 3).crash);
  EXPECT_FALSE(plan.OnCollective(1, 3).crash);  // one-shot: replay is clean
  EXPECT_EQ(plan.crashes_fired(), 1);
}

TEST(FaultPlanTest, SlowRankWindowDelaysOnlyItsOps) {
  FaultPlan plan;
  plan.AddSlowRank(/*rank=*/0, /*delay_us=*/5.0, /*from_op=*/2, /*num_ops=*/3);
  EXPECT_EQ(plan.OnCollective(0, 1).delay_us, 0.0);
  EXPECT_EQ(plan.OnCollective(0, 2).delay_us, 5.0);
  EXPECT_EQ(plan.OnCollective(0, 4).delay_us, 5.0);
  EXPECT_EQ(plan.OnCollective(0, 5).delay_us, 0.0);
  EXPECT_EQ(plan.OnCollective(1, 3).delay_us, 0.0);  // other rank unaffected
}

TEST(FaultPlanTest, FlipOneBitIsDeterministicAndFlipsExactlyOneBit) {
  std::vector<uint8_t> original = {0x00, 0xFF, 0x55, 0xAA, 0x12, 0x34, 0x56, 0x78};
  std::vector<uint8_t> a = original;
  std::vector<uint8_t> b = original;
  FlipOneBit(a.data(), static_cast<int64_t>(a.size()), /*seed=*/99);
  FlipOneBit(b.data(), static_cast<int64_t>(b.size()), /*seed=*/99);
  EXPECT_EQ(a, b);
  int differing_bits = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    uint8_t diff = static_cast<uint8_t>(original[i] ^ a[i]);
    while (diff != 0) {
      differing_bits += diff & 1;
      diff = static_cast<uint8_t>(diff >> 1);
    }
  }
  EXPECT_EQ(differing_bits, 1);
}

// --- Communicator fault injection -------------------------------------------

TEST(CommunicatorFaultTest, CrashMidCollectiveFailsAllRanksThenRecovers) {
  std::unique_ptr<Communicator> comm = MakeCommunicator(CommBackend::kFlat, 4);
  comm->SetCollectiveTimeout(10000.0);  // backstop: never a hang
  FaultPlan plan(3);
  plan.AddCrash(/*rank=*/2, /*at_op=*/2);
  comm->set_fault_plan(&plan);

  std::vector<Status> failed(4);
  std::vector<float> recovered(4, 0.0f);
  const auto start = Clock::now();
  RunOnRanks(4, [&](int rank) {
    std::vector<float> send(8, static_cast<float>(rank));
    std::vector<float> recv(8, 0.0f);
    for (int i = 0; i < 5 && comm->GroupStatus().ok(); ++i) {
      comm->AllReduce(rank, send.data(), recv.data(), 8);
    }
    failed[static_cast<size_t>(rank)] = comm->GroupStatus();
    comm->RecoveryBarrier(rank);
    float one = 1.0f;
    float sum = 0.0f;
    comm->AllReduce(rank, &one, &sum, 1);
    recovered[static_cast<size_t>(rank)] = sum;
  });
  EXPECT_LT(ElapsedMs(start), 60000.0);
  for (const Status& status : failed) {
    EXPECT_EQ(status.code(), StatusCode::kAborted);
    EXPECT_NE(status.message().find("rank 2"), std::string::npos);
  }
  EXPECT_TRUE(comm->GroupStatus().ok());
  for (float sum : recovered) {
    EXPECT_EQ(sum, 4.0f);  // post-recovery collective is fully functional
  }
  EXPECT_EQ(plan.crashes_fired(), 1);
}

TEST(CommunicatorFaultTest, HierarchicalBackendAbortsEveryConstituentGroup) {
  std::unique_ptr<Communicator> comm =
      MakeCommunicator(CommBackend::kHierarchical, 4, /*gpus_per_node=*/2);
  comm->SetCollectiveTimeout(10000.0);
  FaultPlan plan(5);
  plan.AddCrash(/*rank=*/1, /*at_op=*/1);
  comm->set_fault_plan(&plan);

  std::vector<Status> failed(4);
  std::vector<float> recovered(4, 0.0f);
  RunOnRanks(4, [&](int rank) {
    std::vector<float> send(4, 1.0f);
    std::vector<float> recv(4, 0.0f);
    for (int i = 0; i < 3 && comm->GroupStatus().ok(); ++i) {
      comm->AllReduce(rank, send.data(), recv.data(), 4);
    }
    failed[static_cast<size_t>(rank)] = comm->GroupStatus();
    comm->RecoveryBarrier(rank);
    float one = 1.0f;
    float sum = 0.0f;
    comm->AllReduce(rank, &one, &sum, 1);
    recovered[static_cast<size_t>(rank)] = sum;
  });
  for (const Status& status : failed) {
    EXPECT_EQ(status.code(), StatusCode::kAborted);
  }
  EXPECT_TRUE(comm->GroupStatus().ok());
  for (float sum : recovered) {
    EXPECT_EQ(sum, 4.0f);
  }
}

// --- Async chunked collective faults ----------------------------------------

TEST(AsyncCommFaultTest, CrashMidPipelineSurfacesFromWaitAllOnEveryRank) {
  const int n = 4;
  const int64_t count = 24;
  FlatCommunicator comm(n);
  comm.SetCollectiveTimeout(10000.0);  // backstop: never a hang
  FaultPlan plan(7);
  plan.AddCrash(/*rank=*/2, /*at_op=*/0);
  comm.set_fault_plan(&plan);

  std::vector<Status> statuses(static_cast<size_t>(n));
  const auto start = Clock::now();
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(count), static_cast<float>(rank));
    std::vector<float> recv(static_cast<size_t>(n) * count, -1.0f);
    // Rank 2 "dies" issuing this op: every peer's comm thread is already
    // committed to the chunk rendezvous, and every rank's WaitAll must
    // report the same sticky abort instead of hanging.
    auto handle = comm.StartAllGather(rank, send.data(), recv.data(), count, 4);
    statuses[static_cast<size_t>(rank)] = handle->WaitAll();
    comm.RecoveryBarrier(rank);
    // The comm-proxy thread and async channel survive recovery: a fresh
    // chunked op on the same communicator runs to completion.
    auto clean = comm.StartAllGather(rank, send.data(), recv.data(), count, 3);
    ASSERT_TRUE(clean->WaitAll().ok());
    for (int src = 0; src < n; ++src) {
      EXPECT_EQ(recv[static_cast<size_t>(src) * count], static_cast<float>(src));
    }
  });
  EXPECT_LT(ElapsedMs(start), 60000.0);
  for (const Status& status : statuses) {
    EXPECT_EQ(status.code(), StatusCode::kAborted);
    EXPECT_NE(status.message().find("rank 2"), std::string::npos);
  }
  EXPECT_TRUE(comm.GroupStatus().ok());
  EXPECT_EQ(plan.crashes_fired(), 1);
}

TEST(AsyncCommFaultTest, DroppedProducerHandleAbortsWithoutHangingOrLeaking) {
  const int n = 4;
  const int64_t count = 16;
  FlatCommunicator comm(n);
  comm.SetCollectiveTimeout(10000.0);
  std::vector<Status> statuses(static_cast<size_t>(n));
  const auto start = Clock::now();
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(n) * count, 1.0f);
    std::vector<float> recv(static_cast<size_t>(count), 0.0f);
    {
      // Producer-gated reduce-scatter, abandoned mid-pipeline: chunk 0 is
      // signalled and flows, chunks 1+ never get their inputs. Destroying
      // the handle must cancel the op and abort the channel so every peer's
      // comm thread unwinds out of its rendezvous instead of deadlocking.
      auto rs = comm.StartReduceScatter(rank, send.data(), recv.data(), count, 4);
      rs->SignalChunkReady(0);
    }  // dtor: cancel + abort + wait for the comm thread to retire the op
    statuses[static_cast<size_t>(rank)] = comm.GroupStatus();
    comm.RecoveryBarrier(rank);
    // Post-recovery the same comm-proxy thread drives a clean chunked op.
    auto rs = comm.StartReduceScatter(rank, send.data(), recv.data(), count, 2);
    for (int c = 0; c < rs->num_chunks(); ++c) {
      rs->SignalChunkReady(c);
    }
    ASSERT_TRUE(rs->WaitAll().ok());
    EXPECT_EQ(recv[0], static_cast<float>(n));
  });
  EXPECT_LT(ElapsedMs(start), 60000.0);
  for (const Status& status : statuses) {
    EXPECT_FALSE(status.ok()) << "abandoned pipeline must poison the channel";
  }
  EXPECT_TRUE(comm.GroupStatus().ok());
}

TEST(AsyncCommFaultTest, BitFlipThroughChunkedOpCorruptsExactlyOneBit) {
  const int n = 2;
  const int64_t count = 20;
  FlatCommunicator clean(n), faulty(n);
  FaultPlan plan(13);
  plan.AddBitFlip(/*rank=*/1, /*at_op=*/0);
  faulty.set_fault_plan(&plan);

  std::vector<std::vector<float>> clean_out(static_cast<size_t>(n)),
      faulty_out(static_cast<size_t>(n));
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      send[static_cast<size_t>(i)] = static_cast<float>(rank * 100 + i);
    }
    std::vector<float> a(static_cast<size_t>(n) * count), b(static_cast<size_t>(n) * count);
    auto ch = clean.StartAllGather(rank, send.data(), a.data(), count, 3);
    ASSERT_TRUE(ch->WaitAll().ok());
    auto fh = faulty.StartAllGather(rank, send.data(), b.data(), count, 3);
    ASSERT_TRUE(fh->WaitAll().ok());
    clean_out[static_cast<size_t>(rank)] = std::move(a);
    faulty_out[static_cast<size_t>(rank)] = std::move(b);
  });

  // The injected flip hits rank 1's receive path only, and exactly one bit.
  EXPECT_EQ(clean_out[0], faulty_out[0]);
  int differing_bits = 0;
  for (size_t i = 0; i < clean_out[1].size(); ++i) {
    uint32_t x, y;
    std::memcpy(&x, &clean_out[1][i], sizeof(x));
    std::memcpy(&y, &faulty_out[1][i], sizeof(y));
    uint32_t diff = x ^ y;
    while (diff != 0) {
      differing_bits += static_cast<int>(diff & 1u);
      diff >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1);
  EXPECT_EQ(plan.bit_flips_fired(), 1);
}

// --- Straggler detection ----------------------------------------------------

std::vector<CommEvent> SyntheticEvents(int ranks, int collectives, int slow_rank,
                                       double lag_us) {
  std::vector<CommEvent> events;
  for (int i = 0; i < collectives; ++i) {
    for (int rank = 0; rank < ranks; ++rank) {
      CommEvent event;
      event.op = CommOp::kAllReduce;
      event.rank = rank;
      event.group_size = ranks;
      event.start_us = i * 1000.0 + (rank == slow_rank ? lag_us : 0.0);
      event.duration_us = 10.0;
      events.push_back(event);
    }
  }
  return events;
}

TEST(StragglerDetectorTest, FlagsOnlyTheLaggingRank) {
  const std::vector<CommEvent> events =
      SyntheticEvents(/*ranks=*/3, /*collectives=*/5, /*slow_rank=*/2, /*lag_us=*/500.0);
  StragglerConfig config;
  config.threshold_us = 100.0;
  config.min_collectives = 4;
  const StragglerReport report = DetectStragglers(events, config);
  ASSERT_EQ(report.ranks.size(), 3u);
  EXPECT_EQ(report.collectives_matched, 5);
  EXPECT_FALSE(report.ranks[0].straggler);
  EXPECT_FALSE(report.ranks[1].straggler);
  EXPECT_TRUE(report.ranks[2].straggler);
  EXPECT_NEAR(report.ranks[2].mean_entry_lag_us, 500.0, 1e-9);
  EXPECT_NEAR(report.ranks[2].max_entry_lag_us, 500.0, 1e-9);
  EXPECT_EQ(report.straggler_count(), 1);
}

TEST(StragglerDetectorTest, TooFewCollectivesNeverFlags) {
  const std::vector<CommEvent> events =
      SyntheticEvents(/*ranks=*/2, /*collectives=*/2, /*slow_rank=*/1, /*lag_us=*/900.0);
  StragglerConfig config;
  config.threshold_us = 100.0;
  config.min_collectives = 4;
  const StragglerReport report = DetectStragglers(events, config);
  EXPECT_EQ(report.straggler_count(), 0);
}

TEST(StragglerDetectorTest, DetectsInjectedSlowRankOnLiveCommunicator) {
  std::unique_ptr<Communicator> comm = MakeCommunicator(CommBackend::kFlat, 3);
  FaultPlan plan(17);
  plan.AddSlowRank(/*rank=*/2, /*delay_us=*/30000.0);
  comm->set_fault_plan(&plan);
  RunOnRanks(3, [&](int rank) {
    float send = 1.0f;
    float recv = 0.0f;
    for (int i = 0; i < 6; ++i) {
      comm->AllReduce(rank, &send, &recv, 1);
    }
  });
  StragglerConfig config;
  config.threshold_us = 10000.0;  // injected 30 ms vs sub-ms natural skew
  const StragglerReport report =
      DetectStragglers(comm->telemetry().Events(), config);
  ASSERT_EQ(report.ranks.size(), 3u);
  EXPECT_FALSE(report.ranks[0].straggler);
  EXPECT_FALSE(report.ranks[1].straggler);
  EXPECT_TRUE(report.ranks[2].straggler);
  EXPECT_GT(report.ranks[2].mean_entry_lag_us, 10000.0);
}

TEST(StragglerDetectorTest, FlagsAppearInChromeTrace) {
  const std::vector<CommEvent> events =
      SyntheticEvents(/*ranks=*/2, /*collectives=*/5, /*slow_rank=*/1, /*lag_us=*/800.0);
  StragglerConfig config;
  config.threshold_us = 100.0;
  const StragglerReport report = DetectStragglers(events, config);
  const std::string trace = CommEventsToChromeTrace(events, "fault-test", &report);
  EXPECT_NE(trace.find("rank 1 [STRAGGLER]"), std::string::npos);
  EXPECT_NE(trace.find("\"straggler\""), std::string::npos);
  EXPECT_NE(trace.find("mean_entry_lag_us"), std::string::npos);
  // The healthy rank is not renamed.
  EXPECT_NE(trace.find("\"rank 0\""), std::string::npos);
}

// --- Checkpoint v2: round trip, atomicity, corruption matrix ----------------

class CheckpointFile : public ::testing::Test {
 protected:
  void SetUp() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  static bool Exists(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file != nullptr) {
      std::fclose(file);
      return true;
    }
    return false;
  }

  static std::vector<uint8_t> ReadAll(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    MSMOE_CHECK(file != nullptr);
    std::vector<uint8_t> bytes;
    uint8_t buffer[4096];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      bytes.insert(bytes.end(), buffer, buffer + n);
    }
    std::fclose(file);
    return bytes;
  }

  static void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    MSMOE_CHECK(file != nullptr);
    MSMOE_CHECK_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
    std::fclose(file);
  }

  LmParams MakeParams() {
    ModelConfig model = TinyMoeConfig(2, 1);
    model.num_layers = 1;
    model.vocab = 16;
    model.seq_len = 8;
    Rng rng(7);
    return LmParams::Init(model, rng);
  }

  // v2 header: magic(4) | version(4) | param_count(8) | opt_count(8) | crc(4).
  static constexpr size_t kHeaderBytes = 28;
  const std::string path_ = "fault_test_checkpoint.bin";
};

TEST_F(CheckpointFile, RoundTripsAndLeavesNoTempFile) {
  LmParams params = MakeParams();
  const std::vector<float> opt = {1.5f, -2.25f, 3.0f};
  ASSERT_TRUE(SaveCheckpoint(path_, params, opt).ok());
  EXPECT_FALSE(Exists(path_ + ".tmp"));

  Result<Checkpoint> loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().params, FlattenParams(params));
  EXPECT_EQ(loaded.value().optimizer_state, opt);
  EXPECT_TRUE(RestoreParams(params, loaded.value().params).ok());
}

TEST_F(CheckpointFile, SaveOverwritesAtomicallyAndClearsStaleTemp) {
  LmParams params = MakeParams();
  ASSERT_TRUE(SaveCheckpoint(path_, params, {1.0f}).ok());
  // A stale temp from a simulated crashed writer must not break the next
  // save or leak into the loaded state.
  WriteAll(path_ + ".tmp", {0xDE, 0xAD, 0xBE, 0xEF});
  ASSERT_TRUE(SaveCheckpoint(path_, params, {2.0f}).ok());
  EXPECT_FALSE(Exists(path_ + ".tmp"));
  Result<Checkpoint> loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().optimizer_state, std::vector<float>{2.0f});
}

TEST_F(CheckpointFile, MissingFileFailsCleanly) {
  EXPECT_EQ(LoadCheckpoint("does_not_exist.bin").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointFile, CorruptionMatrixRejectsEveryDamagedVariant) {
  LmParams params = MakeParams();
  ASSERT_TRUE(SaveCheckpoint(path_, params, {4.0f, 5.0f}).ok());
  const std::vector<uint8_t> good = ReadAll(path_);
  ASSERT_GT(good.size(), kHeaderBytes);

  {  // Truncated header.
    WriteAll(path_, std::vector<uint8_t>(good.begin(), good.begin() + 10));
    const Status status = LoadCheckpoint(path_).status();
    ASSERT_FALSE(status.ok());
  }
  {  // Truncated payload.
    WriteAll(path_, std::vector<uint8_t>(good.begin(), good.end() - 5));
    const Status status = LoadCheckpoint(path_).status();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("truncated"), std::string::npos);
  }
  {  // Bad magic.
    std::vector<uint8_t> bytes = good;
    bytes[0] ^= 0xFF;
    WriteAll(path_, bytes);
    const Status status = LoadCheckpoint(path_).status();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("not a MegaScale-MoE checkpoint"),
              std::string::npos);
  }
  {  // Unsupported version.
    std::vector<uint8_t> bytes = good;
    const uint32_t version = 99;
    std::memcpy(bytes.data() + 4, &version, sizeof(version));
    WriteAll(path_, bytes);
    const Status status = LoadCheckpoint(path_).status();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("version"), std::string::npos);
  }
  {  // Flipped payload bit -> CRC mismatch.
    std::vector<uint8_t> bytes = good;
    bytes[kHeaderBytes + 3] ^= 0x01;
    WriteAll(path_, bytes);
    const Status status = LoadCheckpoint(path_).status();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("CRC"), std::string::npos);
  }
  // The undamaged original still loads.
  WriteAll(path_, good);
  EXPECT_TRUE(LoadCheckpoint(path_).ok());
}

TEST_F(CheckpointFile, RestoreParamsRejectsSizeMismatch) {
  LmParams params = MakeParams();
  std::vector<float> wrong_size = FlattenParams(params);
  wrong_size.pop_back();
  EXPECT_EQ(RestoreParams(params, wrong_size).code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointFile, Version1FilesStillLoad) {
  const std::vector<float> v1_params = {1.0f, 2.0f, 3.0f};
  const std::vector<float> v1_opt = {4.0f, 5.0f};
  // v1 layout: magic | u32 version=1 | u64 counts | payload, no CRC word.
  std::vector<uint8_t> bytes;
  const char magic[4] = {'M', 'S', 'M', 'C'};
  const uint32_t version = 1;
  const uint64_t param_count = v1_params.size();
  const uint64_t opt_count = v1_opt.size();
  auto append = [&bytes](const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes.insert(bytes.end(), p, p + n);
  };
  append(magic, sizeof(magic));
  append(&version, sizeof(version));
  append(&param_count, sizeof(param_count));
  append(&opt_count, sizeof(opt_count));
  append(v1_params.data(), v1_params.size() * sizeof(float));
  append(v1_opt.data(), v1_opt.size() * sizeof(float));
  WriteAll(path_, bytes);

  Result<Checkpoint> loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().params, v1_params);
  EXPECT_EQ(loaded.value().optimizer_state, v1_opt);
}

// --- Trainer recovery loop --------------------------------------------------

NumericTrainConfig SmallTrainConfig() {
  NumericTrainConfig config;
  config.model = TinyMoeConfig(4, 2);
  config.model.num_layers = 1;
  config.model.vocab = 32;
  config.model.seq_len = 8;
  config.router.num_experts = 4;
  config.router.top_k = 2;
  config.dp_size = 2;
  config.batch_per_rank = 2;
  config.steps = 12;
  config.checkpoint_every = 4;
  config.collective_timeout_ms = 30000.0;
  return config;
}

void ExpectBitIdenticalLoss(const TrainCurve& expected, const TrainCurve& actual) {
  ASSERT_EQ(expected.loss.size(), actual.loss.size());
  for (size_t i = 0; i < expected.loss.size(); ++i) {
    EXPECT_EQ(expected.loss[i], actual.loss[i]) << "step " << i;
  }
}

TEST(TrainerRecoveryTest, CrashRestoresFromFileCheckpointBitIdentically) {
  const std::string path = "fault_test_trainer_checkpoint.bin";
  std::remove(path.c_str());

  NumericTrainConfig clean_config = SmallTrainConfig();
  const TrainCurve clean = TrainLm(clean_config);
  ASSERT_TRUE(clean.recoveries.empty());

  // Per-rank op layout (2 ops/step + snapshot barrier at steps 4 and 8):
  // op 13 is step 6's reduce-scatter, so the crash lands between the step-4
  // and step-8 checkpoints.
  FaultPlan plan(2);
  plan.AddCrash(/*rank=*/1, /*at_op=*/13);
  NumericTrainConfig faulty_config = SmallTrainConfig();
  faulty_config.fault_plan = &plan;
  faulty_config.checkpoint_path = path;
  const TrainCurve recovered = TrainLm(faulty_config);

  ASSERT_EQ(recovered.recoveries.size(), 1u);
  // The crash fires at step 6's reduce-scatter, but the abort can surface on
  // rank 0's status check while it is still completing step 5 — failed_step
  // reports the OBSERVATION step, so either is correct (recovery converges
  // identically from the step-4 checkpoint both ways).
  EXPECT_GE(recovered.recoveries[0].failed_step, 5);
  EXPECT_LE(recovered.recoveries[0].failed_step, 6);
  EXPECT_EQ(recovered.recoveries[0].resumed_step, 4);
  EXPECT_EQ(recovered.recoveries[0].steps_lost,
            recovered.recoveries[0].failed_step - 4);
  EXPECT_NE(recovered.recoveries[0].cause.find("ABORTED"), std::string::npos);
  EXPECT_EQ(plan.crashes_fired(), 1);
  ExpectBitIdenticalLoss(clean, recovered);
  std::remove(path.c_str());
}

TEST(TrainerRecoveryTest, BitFlipCaughtByChecksumGuardAndRecovered) {
  NumericTrainConfig clean_config = SmallTrainConfig();
  clean_config.steps = 10;
  clean_config.checkpoint_every = 3;
  clean_config.guard_grad_checksum = true;
  const TrainCurve clean = TrainLm(clean_config);
  ASSERT_TRUE(clean.recoveries.empty());

  // With the guard, steps cost 3 ops (+1 snapshot barrier every 3 steps);
  // op 14 is step 4's all-gather — corrupting its receive buffer diverges
  // exactly one replica, which the cross-rank checksum must catch.
  FaultPlan plan(9);
  plan.AddBitFlip(/*rank=*/0, /*at_op=*/14);
  NumericTrainConfig faulty_config = clean_config;
  faulty_config.fault_plan = &plan;
  const TrainCurve recovered = TrainLm(faulty_config);

  ASSERT_EQ(recovered.recoveries.size(), 1u);
  EXPECT_EQ(recovered.recoveries[0].failed_step, 4);
  EXPECT_EQ(recovered.recoveries[0].resumed_step, 3);
  EXPECT_NE(recovered.recoveries[0].cause.find("checksum"), std::string::npos);
  EXPECT_EQ(plan.bit_flips_fired(), 1);
  ExpectBitIdenticalLoss(clean, recovered);
}

TEST(TrainerRecoveryTest, CollectiveTimeoutTriggersRecoveryNotAHang) {
  NumericTrainConfig clean_config = SmallTrainConfig();
  clean_config.steps = 6;
  clean_config.checkpoint_every = 2;
  const TrainCurve clean = TrainLm(clean_config);

  // Rank 1 stalls 5 s at one op while peers time out after 1 s; the stall
  // window is one op long, so the replay runs clean.
  FaultPlan plan(4);
  plan.AddSlowRank(/*rank=*/1, /*delay_us=*/5e6, /*from_op=*/4, /*num_ops=*/1);
  NumericTrainConfig faulty_config = clean_config;
  faulty_config.fault_plan = &plan;
  faulty_config.collective_timeout_ms = 1000.0;
  const auto start = Clock::now();
  const TrainCurve recovered = TrainLm(faulty_config);
  EXPECT_LT(ElapsedMs(start), 120000.0);

  ASSERT_GE(recovered.recoveries.size(), 1u);
  EXPECT_NE(recovered.recoveries[0].cause.find("DEADLINE_EXCEEDED"),
            std::string::npos);
  ExpectBitIdenticalLoss(clean, recovered);
}

TEST(TrainerRecoveryTest, HierarchicalBackendRecoversFromCrash) {
  NumericTrainConfig clean_config = SmallTrainConfig();
  clean_config.dp_size = 4;
  clean_config.comm_backend = CommBackend::kHierarchical;
  clean_config.gpus_per_node = 2;
  clean_config.steps = 8;
  clean_config.checkpoint_every = 3;
  const TrainCurve clean = TrainLm(clean_config);

  FaultPlan plan(6);
  plan.AddCrash(/*rank=*/3, /*at_op=*/9);
  NumericTrainConfig faulty_config = clean_config;
  faulty_config.fault_plan = &plan;
  const TrainCurve recovered = TrainLm(faulty_config);

  ASSERT_EQ(recovered.recoveries.size(), 1u);
  EXPECT_EQ(plan.crashes_fired(), 1);
  ExpectBitIdenticalLoss(clean, recovered);
}

TEST(TrainerRecoveryTest, ZeroShardedRunRecoversFromInMemorySnapshots) {
  NumericTrainConfig clean_config = SmallTrainConfig();
  clean_config.zero_shard_optimizer = true;
  clean_config.steps = 10;
  clean_config.checkpoint_every = 3;
  const TrainCurve clean = TrainLm(clean_config);

  FaultPlan plan(8);
  plan.AddCrash(/*rank=*/0, /*at_op=*/12);
  NumericTrainConfig faulty_config = clean_config;
  faulty_config.fault_plan = &plan;
  const TrainCurve recovered = TrainLm(faulty_config);

  ASSERT_EQ(recovered.recoveries.size(), 1u);
  ExpectBitIdenticalLoss(clean, recovered);
}

// --- Simulated fault cost ---------------------------------------------------

TEST(FaultSimTest, NoEventsMatchesFaultFreeBaseline) {
  FaultSimConfig config;
  config.ranks = 4;
  config.iterations = 10;
  config.compute_us = 100.0;
  config.comm_us = 100.0;
  const FaultSimResult result = SimulateFaultyRun(config);
  EXPECT_DOUBLE_EQ(result.total_us, 2000.0);
  EXPECT_DOUBLE_EQ(result.fault_free_us, 2000.0);
  EXPECT_DOUBLE_EQ(result.slowdown, 1.0);
  EXPECT_EQ(result.failures, 0);
  EXPECT_EQ(result.iterations_replayed, 0);
}

TEST(FaultSimTest, DegradedLinkStretchesEveryIteration) {
  FaultSimConfig config;
  config.ranks = 4;
  config.iterations = 10;
  config.compute_us = 100.0;
  config.comm_us = 100.0;
  SimFaultEvent degrade;
  degrade.type = SimFaultType::kDegradeLink;
  degrade.rank = 1;
  degrade.at_us = 0.0;
  degrade.bandwidth_factor = 0.5;
  config.events = {degrade};
  const FaultSimResult result = SimulateFaultyRun(config);
  // Synchronous job: comm moves at the slowest link, 100 -> 200 us.
  EXPECT_DOUBLE_EQ(result.iteration_us, 300.0);
  EXPECT_DOUBLE_EQ(result.total_us, 3000.0);
  EXPECT_DOUBLE_EQ(result.slowdown, 1.5);
  EXPECT_EQ(result.failures, 0);
}

TEST(FaultSimTest, RankDeathStallsRollsBackAndReplays) {
  FaultSimConfig config;
  config.ranks = 4;
  config.iterations = 10;
  config.compute_us = 100.0;
  config.comm_us = 100.0;
  config.detect_timeout_us = 1000.0;
  config.restart_us = 2000.0;
  config.checkpoint_every = 5;
  SimFaultEvent fail;
  fail.type = SimFaultType::kFailRank;
  fail.rank = 2;
  fail.at_us = 1250.0;  // mid-iteration 6; last checkpoint at iteration 5
  config.events = {fail};
  const FaultSimResult result = SimulateFaultyRun(config);
  EXPECT_EQ(result.failures, 1);
  EXPECT_EQ(result.iterations_replayed, 1);
  // Stall: 50 us of wasted partial iteration + 1000 detect + 2000 restart,
  // anchored at the iteration boundary (1200): resume at 4250.
  EXPECT_DOUBLE_EQ(result.stall_us, 3050.0);
  // Resume at 4250, iterations 5..9 replayed/completed: 4250 + 5 * 200.
  EXPECT_DOUBLE_EQ(result.total_us, 5250.0);
  EXPECT_GT(result.slowdown, 2.6);
}

TEST(FaultSimTest, LateCheckpointCadenceLosesMoreWork) {
  FaultSimConfig config;
  config.ranks = 8;
  config.iterations = 50;
  config.compute_us = 100.0;
  config.comm_us = 100.0;
  SimFaultEvent fail;
  fail.type = SimFaultType::kFailRank;
  fail.rank = 0;
  fail.at_us = 40 * 200.0 + 1.0;
  config.events = {fail};

  config.checkpoint_every = 5;
  const FaultSimResult frequent = SimulateFaultyRun(config);
  config.checkpoint_every = 25;
  const FaultSimResult sparse = SimulateFaultyRun(config);
  EXPECT_LT(frequent.iterations_replayed, sparse.iterations_replayed);
  EXPECT_LT(frequent.total_us, sparse.total_us);
}

}  // namespace
}  // namespace msmoe
