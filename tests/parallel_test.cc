#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/base/rng.h"
#include "src/comm/communicator.h"
#include "src/model/attention.h"
#include "src/model/config.h"
#include "src/model/grouped_gemm.h"
#include "src/model/router.h"
#include "src/numerics/bf16.h"
#include "src/parallel/dp_grad_sync.h"
#include "src/parallel/ep_ffn.h"
#include "src/parallel/fp8_comm.h"
#include "src/parallel/sp_attention.h"
#include "src/parallel/tp_attention.h"
#include "src/parallel/tp_ffn.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

// Test model: h=16, 4 query heads (d=4), 2 kv heads (m=2), 4 experts, k=2.
ModelConfig TestConfig() {
  ModelConfig config = TinyMoeConfig(4, 2);
  config.hidden = 16;
  config.num_heads = 4;
  config.gqa_ratio = 2;
  config.ffn_hidden = 12;
  config.seq_len = 8;
  return config;
}

// --- Single-rank reference for the attention block (QKV -> RoPE ->
// attention -> output projection), mirroring the parallel modules'
// module boundary (no RMSNorm, no residual). ---
struct RefAttnResult {
  Tensor y;
  Tensor dx;
  Tensor dw_qkv;
  Tensor dw_out;
};

RefAttnResult ReferenceAttention(const ModelConfig& config, const Tensor& w_qkv,
                                 const Tensor& w_out, const Tensor& x, const Tensor& dy,
                                 int64_t batch) {
  const int64_t tokens = x.dim(0);
  const int64_t seq_len = tokens / batch;
  const int64_t hq = config.num_heads;
  const int64_t hkv = config.kv_heads();
  const int64_t d = config.head_dim();

  Tensor qkv = MatMul(x, w_qkv);
  Tensor q({tokens, hq * d}), k({tokens, hkv * d}), v({tokens, hkv * d});
  for (int64_t t = 0; t < tokens; ++t) {
    const float* row = qkv.data() + t * config.qkv_out_dim();
    std::copy(row, row + hq * d, q.data() + t * hq * d);
    std::copy(row + hq * d, row + (hq + hkv) * d, k.data() + t * hkv * d);
    std::copy(row + (hq + hkv) * d, row + (hq + 2 * hkv) * d, v.data() + t * hkv * d);
  }
  std::vector<int64_t> positions(static_cast<size_t>(seq_len));
  for (int64_t i = 0; i < seq_len; ++i) {
    positions[static_cast<size_t>(i)] = i;
  }
  std::vector<AttentionCoreCache> caches(static_cast<size_t>(batch));
  Tensor attn_out({tokens, hq * d});
  for (int64_t b = 0; b < batch; ++b) {
    Tensor q_seq = q.SliceRows(b * seq_len, (b + 1) * seq_len).Reshaped({seq_len, hq, d});
    Tensor k_seq = k.SliceRows(b * seq_len, (b + 1) * seq_len).Reshaped({seq_len, hkv, d});
    Tensor v_seq = v.SliceRows(b * seq_len, (b + 1) * seq_len).Reshaped({seq_len, hkv, d});
    RopeInPlace(q_seq, positions, hq, d);
    RopeInPlace(k_seq, positions, hkv, d);
    std::copy(q_seq.data(), q_seq.data() + q_seq.numel(), q.data() + b * seq_len * hq * d);
    std::copy(k_seq.data(), k_seq.data() + k_seq.numel(), k.data() + b * seq_len * hkv * d);
    Tensor attn = AttentionCore(q_seq, k_seq, v_seq, config.gqa_ratio,
                                &caches[static_cast<size_t>(b)]);
    std::copy(attn.data(), attn.data() + attn.numel(),
              attn_out.data() + b * seq_len * hq * d);
  }
  RefAttnResult result;
  result.y = MatMul(attn_out, w_out);

  // Backward.
  MatMulGrads out_grads = MatMulBackward(dy, attn_out, w_out);
  result.dw_out = std::move(out_grads.db);
  Tensor dq({tokens, hq * d}), dk({tokens, hkv * d}), dv({tokens, hkv * d});
  for (int64_t b = 0; b < batch; ++b) {
    Tensor dout_seq = out_grads.da.SliceRows(b * seq_len, (b + 1) * seq_len)
                          .Reshaped({seq_len, hq, d});
    Tensor q_seq = q.SliceRows(b * seq_len, (b + 1) * seq_len).Reshaped({seq_len, hq, d});
    Tensor k_seq = k.SliceRows(b * seq_len, (b + 1) * seq_len).Reshaped({seq_len, hkv, d});
    Tensor v_seq = v.SliceRows(b * seq_len, (b + 1) * seq_len).Reshaped({seq_len, hkv, d});
    AttentionCoreGrads attn_grads = AttentionCoreBackward(
        dout_seq, q_seq, k_seq, v_seq, config.gqa_ratio, caches[static_cast<size_t>(b)]);
    RopeBackwardInPlace(attn_grads.dq, positions, hq, d);
    RopeBackwardInPlace(attn_grads.dk, positions, hkv, d);
    std::copy(attn_grads.dq.data(), attn_grads.dq.data() + attn_grads.dq.numel(),
              dq.data() + b * seq_len * hq * d);
    std::copy(attn_grads.dk.data(), attn_grads.dk.data() + attn_grads.dk.numel(),
              dk.data() + b * seq_len * hkv * d);
    std::copy(attn_grads.dv.data(), attn_grads.dv.data() + attn_grads.dv.numel(),
              dv.data() + b * seq_len * hkv * d);
  }
  Tensor dqkv({tokens, config.qkv_out_dim()});
  for (int64_t t = 0; t < tokens; ++t) {
    float* row = dqkv.data() + t * config.qkv_out_dim();
    std::copy(dq.data() + t * hq * d, dq.data() + (t + 1) * hq * d, row);
    std::copy(dk.data() + t * hkv * d, dk.data() + (t + 1) * hkv * d, row + hq * d);
    std::copy(dv.data() + t * hkv * d, dv.data() + (t + 1) * hkv * d, row + (hq + hkv) * d);
  }
  MatMulGrads qkv_grads = MatMulBackward(dqkv, x, w_qkv);
  result.dw_qkv = std::move(qkv_grads.db);
  result.dx = std::move(qkv_grads.da);
  return result;
}

// Re-partition a sequence-major [batch*s, w] tensor into the chunk each rank
// holds: rows (b, rank*s_local + t).
Tensor RankChunk(const Tensor& full, int64_t batch, int64_t seq_len, int rank, int n,
                 int64_t width) {
  const int64_t s_local = seq_len / n;
  Tensor chunk({batch * s_local, width});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < s_local; ++t) {
      const float* row = full.data() + (b * seq_len + rank * s_local + t) * width;
      std::copy(row, row + width, chunk.data() + (b * s_local + t) * width);
    }
  }
  return chunk;
}

class AttentionParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestConfig();
    Rng rng(42);
    w_qkv_ = Tensor::Randn({config_.hidden, config_.qkv_out_dim()}, rng, 0.0f, 0.2f);
    w_out_ = Tensor::Randn({config_.hidden, config_.hidden}, rng, 0.0f, 0.2f);
    x_full_ = Tensor::Randn({batch_ * config_.seq_len, config_.hidden}, rng);
    dy_full_ = Tensor::Randn({batch_ * config_.seq_len, config_.hidden}, rng);
    ref_ = ReferenceAttention(config_, w_qkv_, w_out_, x_full_, dy_full_, batch_);
  }

  ModelConfig config_;
  const int64_t batch_ = 2;
  Tensor w_qkv_, w_out_, x_full_, dy_full_;
  RefAttnResult ref_;
};

TEST_F(AttentionParallelTest, SpMatchesSingleRankForwardBackward) {
  const int n = 2;
  FlatCommunicator group(n);
  std::vector<Tensor> y(n), dx(n), dw_qkv(n), dw_out(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&group, rank};
    Tensor x_local = RankChunk(x_full_, batch_, config_.seq_len, rank, n, config_.hidden);
    Tensor dy_local = RankChunk(dy_full_, batch_, config_.seq_len, rank, n, config_.hidden);
    SpAttentionCache cache;
    y[static_cast<size_t>(rank)] = SpAttentionForward(ctx, config_, w_qkv_, w_out_, x_local,
                                                      batch_, config_.seq_len, &cache);
    SpAttentionGrads grads = SpAttentionBackward(ctx, config_, w_qkv_, w_out_, dy_local,
                                                 batch_, config_.seq_len, cache);
    dx[static_cast<size_t>(rank)] = std::move(grads.dx_local);
    dw_qkv[static_cast<size_t>(rank)] = std::move(grads.dw_qkv);
    dw_out[static_cast<size_t>(rank)] = std::move(grads.dw_out);
  });
  for (int rank = 0; rank < n; ++rank) {
    Tensor y_ref = RankChunk(ref_.y, batch_, config_.seq_len, rank, n, config_.hidden);
    Tensor dx_ref = RankChunk(ref_.dx, batch_, config_.seq_len, rank, n, config_.hidden);
    EXPECT_LT(y[static_cast<size_t>(rank)].RelativeL2Diff(y_ref), 1e-5) << rank;
    EXPECT_LT(dx[static_cast<size_t>(rank)].RelativeL2Diff(dx_ref), 1e-5) << rank;
  }
  // Replicated-weight grads are partial; their sum equals the reference.
  Tensor dw_qkv_total = dw_qkv[0];
  dw_qkv_total.AddInPlace(dw_qkv[1]);
  Tensor dw_out_total = dw_out[0];
  dw_out_total.AddInPlace(dw_out[1]);
  EXPECT_LT(dw_qkv_total.RelativeL2Diff(ref_.dw_qkv), 1e-5);
  EXPECT_LT(dw_out_total.RelativeL2Diff(ref_.dw_out), 1e-5);
}

TEST_F(AttentionParallelTest, TpMatchesSingleRankForwardBackward) {
  const int n = 2;
  FlatCommunicator group(n);
  std::vector<Tensor> y(n), dx(n), dw_qkv(n), dw_out(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&group, rank};
    Tensor x_local = RankChunk(x_full_, batch_, config_.seq_len, rank, n, config_.hidden);
    Tensor dy_local = RankChunk(dy_full_, batch_, config_.seq_len, rank, n, config_.hidden);
    TpAttentionCache cache;
    y[static_cast<size_t>(rank)] = TpAttentionForward(ctx, config_, w_qkv_, w_out_, x_local,
                                                      batch_, config_.seq_len, &cache);
    TpAttentionGrads grads = TpAttentionBackward(ctx, config_, w_qkv_, w_out_, dy_local,
                                                 batch_, config_.seq_len, cache);
    dx[static_cast<size_t>(rank)] = std::move(grads.dx_local);
    dw_qkv[static_cast<size_t>(rank)] = std::move(grads.dw_qkv_shard);
    dw_out[static_cast<size_t>(rank)] = std::move(grads.dw_out_shard);
  });
  for (int rank = 0; rank < n; ++rank) {
    Tensor y_ref = RankChunk(ref_.y, batch_, config_.seq_len, rank, n, config_.hidden);
    Tensor dx_ref = RankChunk(ref_.dx, batch_, config_.seq_len, rank, n, config_.hidden);
    EXPECT_LT(y[static_cast<size_t>(rank)].RelativeL2Diff(y_ref), 1e-5) << rank;
    EXPECT_LT(dx[static_cast<size_t>(rank)].RelativeL2Diff(dx_ref), 1e-5) << rank;
    // Shard grads equal the reference slices (complete sums, no extra sync).
    Tensor ref_qkv_shard = TpQkvShard(config_, ref_.dw_qkv, rank, n);
    Tensor ref_out_shard = TpOutShard(config_, ref_.dw_out, rank, n);
    EXPECT_LT(dw_qkv[static_cast<size_t>(rank)].RelativeL2Diff(ref_qkv_shard), 1e-5) << rank;
    EXPECT_LT(dw_out[static_cast<size_t>(rank)].RelativeL2Diff(ref_out_shard), 1e-5) << rank;
  }
}

TEST_F(AttentionParallelTest, SpCommunicatesLessThanTp) {
  // Eq 1 vs Eq 2: SP volume is (2 + 2/m)/n of TP's. With m=2, n=2 the ratio
  // is 1.5/2 = 0.75; verify the measured wire bytes respect it.
  const int n = 2;
  FlatCommunicator sp_group(n);
  FlatCommunicator tp_group(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext sp_ctx{&sp_group, rank};
    ShardContext tp_ctx{&tp_group, rank};
    Tensor x_local = RankChunk(x_full_, batch_, config_.seq_len, rank, n, config_.hidden);
    SpAttentionCache sp_cache;
    SpAttentionForward(sp_ctx, config_, w_qkv_, w_out_, x_local, batch_, config_.seq_len,
                       &sp_cache);
    TpAttentionCache tp_cache;
    TpAttentionForward(tp_ctx, config_, w_qkv_, w_out_, x_local, batch_, config_.seq_len,
                       &tp_cache);
  });
  EXPECT_LT(sp_group.wire_bytes(), tp_group.wire_bytes());
  const double measured_ratio = static_cast<double>(sp_group.wire_bytes()) /
                                static_cast<double>(tp_group.wire_bytes());
  const double m = static_cast<double>(config_.gqa_ratio);
  const double expected_ratio = (2.0 + 2.0 / m) / (2.0 * n);
  EXPECT_NEAR(measured_ratio, expected_ratio, 0.05);
}

// --- Single-rank reference for the expert FFN block (dispatch -> grouped
// GEMMs -> SwiGLU -> weighted combine). ---
struct RefFfnResult {
  Tensor y;
  Tensor dx;
  Tensor dcombine;
  std::vector<Tensor> dw1, dw3, dw2;
};

RefFfnResult ReferenceFfn(const ModelConfig& config, const std::vector<Tensor>& w1,
                          const std::vector<Tensor>& w3, const std::vector<Tensor>& w2,
                          const Tensor& x, const RoutingResult& routing, const Tensor& dy) {
  const int64_t tokens = x.dim(0);
  const int64_t h = config.hidden;
  const int64_t k = routing.top_k;
  DispatchPlan plan = BuildDispatchPlan(routing, config.num_experts);
  Tensor ffn_in = GatherRows(x, plan.row_map);
  Tensor fc1 = GroupedGemm(ffn_in, plan.expert_offsets, w1);
  Tensor fc3 = GroupedGemm(ffn_in, plan.expert_offsets, w3);
  Tensor fc2_in = SwiGlu(fc1, fc3);
  Tensor fc2_out = GroupedGemm(fc2_in, plan.expert_offsets, w2);

  RefFfnResult result;
  result.y = Tensor({tokens, h});
  for (int64_t t = 0; t < tokens; ++t) {
    for (int64_t slot = 0; slot < k; ++slot) {
      const int64_t row = plan.slot_to_row[static_cast<size_t>(t * k + slot)];
      if (row < 0) {
        continue;
      }
      const float weight = routing.combine_weight.At(t, slot);
      for (int64_t c = 0; c < h; ++c) {
        result.y.At(t, c) += weight * fc2_out.At(row, c);
      }
    }
  }

  Tensor dfc2_out({fc2_out.dim(0), h});
  result.dcombine = Tensor({tokens, k});
  for (int64_t t = 0; t < tokens; ++t) {
    for (int64_t slot = 0; slot < k; ++slot) {
      const int64_t row = plan.slot_to_row[static_cast<size_t>(t * k + slot)];
      if (row < 0) {
        continue;
      }
      const float weight = routing.combine_weight.At(t, slot);
      float dot = 0.0f;
      for (int64_t c = 0; c < h; ++c) {
        dfc2_out.At(row, c) += weight * dy.At(t, c);
        dot += dy.At(t, c) * fc2_out.At(row, c);
      }
      result.dcombine.At(t, slot) = dot;
    }
  }
  GroupedGemmGrads fc2_grads = GroupedGemmBackward(dfc2_out, fc2_in, plan.expert_offsets, w2);
  result.dw2 = std::move(fc2_grads.dweights);
  SwiGluGrads swiglu_grads = SwiGluBackward(fc2_grads.dx, fc1, fc3);
  GroupedGemmGrads fc1_grads =
      GroupedGemmBackward(swiglu_grads.dgate, ffn_in, plan.expert_offsets, w1);
  GroupedGemmGrads fc3_grads =
      GroupedGemmBackward(swiglu_grads.dlinear, ffn_in, plan.expert_offsets, w3);
  result.dw1 = std::move(fc1_grads.dweights);
  result.dw3 = std::move(fc3_grads.dweights);
  Tensor dffn_in = Add(fc1_grads.dx, fc3_grads.dx);
  result.dx = ScatterAddRows(dffn_in, plan.row_map, tokens);
  return result;
}

class FfnParallelTest : public ::testing::TestWithParam<EpDispatchMode> {
 protected:
  void SetUp() override {
    config_ = TestConfig();
    Rng rng(77);
    for (int64_t e = 0; e < config_.num_experts; ++e) {
      w1_.push_back(Tensor::Randn({config_.hidden, config_.ffn_hidden}, rng, 0.0f, 0.2f));
      w3_.push_back(Tensor::Randn({config_.hidden, config_.ffn_hidden}, rng, 0.0f, 0.2f));
      w2_.push_back(Tensor::Randn({config_.ffn_hidden, config_.hidden}, rng, 0.0f, 0.2f));
    }
    w_gate_ = Tensor::Randn({config_.hidden, config_.num_experts}, rng, 0.0f, 0.3f);
    const int64_t tokens = 16;
    x_full_ = Tensor::Randn({tokens, config_.hidden}, rng);
    dy_full_ = Tensor::Randn({tokens, config_.hidden}, rng);
    router_.num_experts = config_.num_experts;
    router_.top_k = config_.top_k;
    Tensor logits = MatMul(x_full_, w_gate_);
    routing_full_ = RouteTokens(logits, router_);
    ref_ = ReferenceFfn(config_, w1_, w3_, w2_, x_full_, routing_full_, dy_full_);
  }

  ModelConfig config_;
  RouterConfig router_;
  std::vector<Tensor> w1_, w3_, w2_;
  Tensor w_gate_, x_full_, dy_full_;
  RoutingResult routing_full_;
  RefFfnResult ref_;
};

TEST_P(FfnParallelTest, EpMatchesSingleRankForwardBackward) {
  const int n = 2;
  const EpDispatchMode mode = GetParam();
  const int64_t t_local = x_full_.dim(0) / n;
  const int64_t e_local = config_.num_experts / n;
  FlatCommunicator group(n);
  std::vector<Tensor> y(n), dx(n), dcombine(n);
  std::vector<std::vector<Tensor>> dw1(n), dw2(n), dw3(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&group, rank};
    Tensor x_local = x_full_.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor dy_local = dy_full_.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor logits = MatMul(x_local, w_gate_);
    RoutingResult routing = RouteTokens(logits, router_);
    EpFfnCache cache;
    y[static_cast<size_t>(rank)] =
        EpFfnForward(ctx, config_, mode, w1_, w3_, w2_, x_local, routing, &cache);
    EpFfnGrads grads =
        EpFfnBackward(ctx, config_, mode, w1_, w3_, w2_, dy_local, routing, cache);
    dx[static_cast<size_t>(rank)] = std::move(grads.dx_local);
    dcombine[static_cast<size_t>(rank)] = std::move(grads.dcombine_local);
    dw1[static_cast<size_t>(rank)] = std::move(grads.dw1);
    dw2[static_cast<size_t>(rank)] = std::move(grads.dw2);
    dw3[static_cast<size_t>(rank)] = std::move(grads.dw3);
  });
  for (int rank = 0; rank < n; ++rank) {
    Tensor y_ref = ref_.y.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor dx_ref = ref_.dx.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor dc_ref = ref_.dcombine.SliceRows(rank * t_local, (rank + 1) * t_local);
    EXPECT_LT(y[static_cast<size_t>(rank)].RelativeL2Diff(y_ref), 1e-5) << rank;
    EXPECT_LT(dx[static_cast<size_t>(rank)].RelativeL2Diff(dx_ref), 1e-5) << rank;
    EXPECT_LT(dcombine[static_cast<size_t>(rank)].RelativeL2Diff(dc_ref), 1e-5) << rank;
    // Expert-weight grads are complete on the owner (no sync needed).
    for (int64_t e = 0; e < e_local; ++e) {
      const size_t global = static_cast<size_t>(rank * e_local + e);
      EXPECT_LT(dw1[static_cast<size_t>(rank)][static_cast<size_t>(e)].RelativeL2Diff(
                    ref_.dw1[global]),
                1e-5);
      EXPECT_LT(dw2[static_cast<size_t>(rank)][static_cast<size_t>(e)].RelativeL2Diff(
                    ref_.dw2[global]),
                1e-5);
      EXPECT_LT(dw3[static_cast<size_t>(rank)][static_cast<size_t>(e)].RelativeL2Diff(
                    ref_.dw3[global]),
                1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothDispatchModes, FfnParallelTest,
                         ::testing::Values(EpDispatchMode::kAllToAll,
                                           EpDispatchMode::kAllGatherScatter));

// Quantize-on-pack FP8 dispatch: quantizing each row directly into the send
// staging (codes + per-token scale on one wire payload) must be BITWISE the
// same as the two-pass reference — round-tripping x through per-token FP8
// first, then running the blocking FP32 dispatch on the already-quantized
// activations. Routing stays on the ORIGINAL x in both runs (the router is
// upstream of the dispatch quantization).
TEST_F(FfnParallelTest, PipelinedFp8DispatchMatchesRoundTripReference) {
  const int n = 2;
  const int64_t t_local = x_full_.dim(0) / n;
  const int64_t h = config_.hidden;
  QuantConfig quant;
  quant.granularity = QuantGranularity::kPerToken;

  const EpPipelineConfig saved = GetEpPipelineConfig();
  EpPipelineConfig pc;
  pc.enabled = true;
  pc.num_chunks = 3;
  pc.fp8_dispatch = true;
  pc.quant = quant;
  SetEpPipelineConfig(pc);
  FlatCommunicator fp8_group(n);
  std::vector<Tensor> y_fp8(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&fp8_group, rank};
    Tensor x_local = x_full_.SliceRows(rank * t_local, (rank + 1) * t_local);
    RoutingResult routing = RouteTokens(MatMul(x_local, w_gate_), router_);
    EpFfnCache cache;
    y_fp8[static_cast<size_t>(rank)] =
        EpFfnForward(ctx, config_, EpDispatchMode::kAllToAll, w1_, w3_, w2_,
                     x_local, routing, &cache);
  });

  pc = EpPipelineConfig{};
  pc.enabled = false;
  SetEpPipelineConfig(pc);
  FlatCommunicator ref_group(n);
  std::vector<Tensor> y_ref(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&ref_group, rank};
    Tensor x_local = x_full_.SliceRows(rank * t_local, (rank + 1) * t_local);
    RoutingResult routing = RouteTokens(MatMul(x_local, w_gate_), router_);
    Tensor x_q = Tensor::FromVector(
        {t_local, h}, QuantizeRoundTrip(x_local.data(), t_local, h, quant));
    EpFfnCache cache;
    y_ref[static_cast<size_t>(rank)] =
        EpFfnForward(ctx, config_, EpDispatchMode::kAllToAll, w1_, w3_, w2_, x_q,
                     routing, &cache);
  });
  SetEpPipelineConfig(saved);

  for (int rank = 0; rank < n; ++rank) {
    const Tensor& a = y_fp8[static_cast<size_t>(rank)];
    const Tensor& b = y_ref[static_cast<size_t>(rank)];
    ASSERT_EQ(a.numel(), b.numel()) << rank;
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.numel()) * sizeof(float)),
              0)
        << rank;
  }
}

TEST_F(FfnParallelTest, TpFfnMatchesSingleRank) {
  const int n = 2;
  const int64_t t_local = x_full_.dim(0) / n;
  FlatCommunicator group(n);
  std::vector<Tensor> y(n), dx(n), dcombine(n);
  std::vector<std::vector<Tensor>> dw1(n), dw2(n);
  RunOnRanks(n, [&](int rank) {
    ShardContext ctx{&group, rank};
    Tensor x_local = x_full_.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor dy_local = dy_full_.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor logits = MatMul(x_local, w_gate_);
    RoutingResult routing = RouteTokens(logits, router_);
    TpFfnCache cache;
    y[static_cast<size_t>(rank)] =
        TpFfnForward(ctx, config_, w1_, w3_, w2_, x_local, routing, &cache);
    TpFfnGrads grads = TpFfnBackward(ctx, config_, w1_, w3_, w2_, dy_local, routing, cache);
    dx[static_cast<size_t>(rank)] = std::move(grads.dx_local);
    dcombine[static_cast<size_t>(rank)] = std::move(grads.dcombine_local);
    dw1[static_cast<size_t>(rank)] = std::move(grads.dw1_shard);
    dw2[static_cast<size_t>(rank)] = std::move(grads.dw2_shard);
  });
  for (int rank = 0; rank < n; ++rank) {
    Tensor y_ref = ref_.y.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor dx_ref = ref_.dx.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor dc_ref = ref_.dcombine.SliceRows(rank * t_local, (rank + 1) * t_local);
    EXPECT_LT(y[static_cast<size_t>(rank)].RelativeL2Diff(y_ref), 1e-5) << rank;
    EXPECT_LT(dx[static_cast<size_t>(rank)].RelativeL2Diff(dx_ref), 1e-5) << rank;
    EXPECT_LT(dcombine[static_cast<size_t>(rank)].RelativeL2Diff(dc_ref), 1e-4) << rank;
    for (int64_t e = 0; e < config_.num_experts; ++e) {
      Tensor ref_w1_shard = TpFfnColShard(ref_.dw1[static_cast<size_t>(e)], rank, n);
      Tensor ref_w2_shard = TpFfnRowShard(ref_.dw2[static_cast<size_t>(e)], rank, n);
      EXPECT_LT(dw1[static_cast<size_t>(rank)][static_cast<size_t>(e)].RelativeL2Diff(
                    ref_w1_shard),
                1e-5);
      EXPECT_LT(dw2[static_cast<size_t>(rank)][static_cast<size_t>(e)].RelativeL2Diff(
                    ref_w2_shard),
                1e-5);
    }
  }
}

TEST_F(FfnParallelTest, DroppedTokenCopiesHandledIdentically) {
  // Mark a few routed copies as dropped (capacity overflow): both dispatch
  // modes must skip them identically and keep gradients consistent.
  const int n = 2;
  const int64_t t_local = x_full_.dim(0) / n;
  FlatCommunicator a2a_group(n);
  FlatCommunicator ag_group(n);
  std::vector<Tensor> y_a2a(n), y_ag(n), dx_a2a(n), dx_ag(n);
  RunOnRanks(n, [&](int rank) {
    Tensor x_local = x_full_.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor dy_local = dy_full_.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor logits = MatMul(x_local, w_gate_);
    RoutingResult routing = RouteTokens(logits, router_);
    // Drop every third copy deterministically.
    for (size_t i = 0; i < routing.dropped.size(); i += 3) {
      if (routing.dropped[i] == 0) {
        const int64_t t = static_cast<int64_t>(i) / routing.top_k;
        const int64_t slot = static_cast<int64_t>(i) % routing.top_k;
        const int64_t e = routing.expert_index[i];
        routing.dropped[i] = 1;
        routing.combine_weight.At(t, slot) = 0.0f;
        --routing.expert_counts[static_cast<size_t>(e)];
      }
    }
    EpFfnCache c1, c2;
    ShardContext ctx1{&a2a_group, rank};
    ShardContext ctx2{&ag_group, rank};
    y_a2a[static_cast<size_t>(rank)] = EpFfnForward(
        ctx1, config_, EpDispatchMode::kAllToAll, w1_, w3_, w2_, x_local, routing, &c1);
    y_ag[static_cast<size_t>(rank)] =
        EpFfnForward(ctx2, config_, EpDispatchMode::kAllGatherScatter, w1_, w3_, w2_,
                     x_local, routing, &c2);
    EpFfnGrads g1 = EpFfnBackward(ctx1, config_, EpDispatchMode::kAllToAll, w1_, w3_, w2_,
                                  dy_local, routing, c1);
    EpFfnGrads g2 = EpFfnBackward(ctx2, config_, EpDispatchMode::kAllGatherScatter, w1_,
                                  w3_, w2_, dy_local, routing, c2);
    dx_a2a[static_cast<size_t>(rank)] = std::move(g1.dx_local);
    dx_ag[static_cast<size_t>(rank)] = std::move(g2.dx_local);
  });
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_LT(y_a2a[static_cast<size_t>(rank)].RelativeL2Diff(y_ag[static_cast<size_t>(rank)]),
              1e-5)
        << rank;
    EXPECT_LT(
        dx_a2a[static_cast<size_t>(rank)].RelativeL2Diff(dx_ag[static_cast<size_t>(rank)]),
        1e-5)
        << rank;
  }
}

TEST_F(FfnParallelTest, BothEpModesAgree) {
  const int n = 2;
  const int64_t t_local = x_full_.dim(0) / n;
  FlatCommunicator a2a_group(n);
  FlatCommunicator ag_group(n);
  std::vector<Tensor> y_a2a(n), y_ag(n);
  RunOnRanks(n, [&](int rank) {
    Tensor x_local = x_full_.SliceRows(rank * t_local, (rank + 1) * t_local);
    Tensor logits = MatMul(x_local, w_gate_);
    RoutingResult routing = RouteTokens(logits, router_);
    EpFfnCache cache1, cache2;
    ShardContext ctx1{&a2a_group, rank};
    ShardContext ctx2{&ag_group, rank};
    y_a2a[static_cast<size_t>(rank)] = EpFfnForward(
        ctx1, config_, EpDispatchMode::kAllToAll, w1_, w3_, w2_, x_local, routing, &cache1);
    y_ag[static_cast<size_t>(rank)] =
        EpFfnForward(ctx2, config_, EpDispatchMode::kAllGatherScatter, w1_, w3_, w2_,
                     x_local, routing, &cache2);
  });
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_LT(y_a2a[static_cast<size_t>(rank)].RelativeL2Diff(y_ag[static_cast<size_t>(rank)]),
              1e-5);
  }
}

TEST(GradSyncTest, Bf16AllToAllCloseToFp32) {
  const int n = 4;
  const int64_t count = 64;
  FlatCommunicator fp32_group(n);
  FlatCommunicator bf16_group(n);
  std::vector<std::vector<float>> fp32_out(n), bf16_out(n);
  RunOnRanks(n, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank) + 11);
    std::vector<float> grads(static_cast<size_t>(count));
    for (auto& g : grads) {
      g = static_cast<float>(rng.NextGaussian());
    }
    fp32_out[static_cast<size_t>(rank)] = SyncGradShard(
        fp32_group, rank, grads.data(), count, GradSyncMode::kFp32ReduceScatter);
    bf16_out[static_cast<size_t>(rank)] =
        SyncGradShard(bf16_group, rank, grads.data(), count, GradSyncMode::kBf16AllToAll);
  });
  for (int rank = 0; rank < n; ++rank) {
    for (size_t i = 0; i < fp32_out[rank].size(); ++i) {
      // One rounding per contribution: error <= n * 2^-8 * max|g|.
      EXPECT_NEAR(bf16_out[rank][i], fp32_out[rank][i], 0.1f) << rank << " " << i;
    }
  }
}

TEST(GradSyncTest, RingBf16WorseThanAllToAllBf16) {
  // Adversarial accumulation: large base value plus many small updates.
  // Sequential BF16 partial sums absorb the small terms; the §5 design
  // (single cast + FP32 local reduce) keeps them.
  const int n = 8;
  const int64_t count = 64;
  FlatCommunicator ring_group(n);
  FlatCommunicator a2a_group(n);
  FlatCommunicator exact_group(n);
  std::vector<double> ring_err(n), a2a_err(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> grads(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      // Rank 0 holds a big value; everyone else small ones.
      grads[static_cast<size_t>(i)] = rank == 0 ? 256.0f : 0.37f;
    }
    std::vector<float> exact = SyncGradShard(exact_group, rank, grads.data(), count,
                                             GradSyncMode::kFp32ReduceScatter);
    std::vector<float> ring =
        SyncGradShard(ring_group, rank, grads.data(), count, GradSyncMode::kBf16RingReduce);
    std::vector<float> a2a =
        SyncGradShard(a2a_group, rank, grads.data(), count, GradSyncMode::kBf16AllToAll);
    double ring_total = 0.0, a2a_total = 0.0;
    for (size_t i = 0; i < exact.size(); ++i) {
      ring_total += std::fabs(ring[i] - exact[i]);
      a2a_total += std::fabs(a2a[i] - exact[i]);
    }
    ring_err[static_cast<size_t>(rank)] = ring_total;
    a2a_err[static_cast<size_t>(rank)] = a2a_total;
  });
  double ring_sum = 0.0, a2a_sum = 0.0;
  for (int rank = 0; rank < n; ++rank) {
    ring_sum += ring_err[static_cast<size_t>(rank)];
    a2a_sum += a2a_err[static_cast<size_t>(rank)];
  }
  EXPECT_GT(ring_sum, a2a_sum * 2.0) << ring_sum << " vs " << a2a_sum;
}

TEST(GradSyncTest, AllReduceGradsConsistentAcrossModes) {
  const int n = 4;
  const int64_t count = 32;
  FlatCommunicator group(n);
  std::vector<std::vector<float>> out(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> grads(static_cast<size_t>(count), static_cast<float>(rank + 1));
    AllReduceGrads(group, rank, grads.data(), count, GradSyncMode::kFp32ReduceScatter);
    out[static_cast<size_t>(rank)] = grads;
  });
  for (int rank = 0; rank < n; ++rank) {
    for (float v : out[rank]) {
      EXPECT_EQ(v, 10.0f);  // 1+2+3+4
    }
  }
}

TEST(GradSyncTest, WireBytesHalved) {
  const int64_t count = 1 << 20;
  const int n = 8;
  const int64_t fp32 = GradSyncWireBytes(GradSyncMode::kFp32ReduceScatter, count, n);
  const int64_t bf16 = GradSyncWireBytes(GradSyncMode::kBf16AllToAll, count, n);
  EXPECT_EQ(bf16 * 2, fp32);  // the paper's 50% reduction
}

TEST(GradSyncTest, InPlaceBf16PackRoundTrip) {
  Rng rng(5);
  const int64_t count = 128;
  std::vector<float> buffer(static_cast<size_t>(count));
  std::vector<float> expected(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    buffer[static_cast<size_t>(i)] = static_cast<float>(rng.NextGaussian());
    expected[static_cast<size_t>(i)] = Bf16Round(buffer[static_cast<size_t>(i)]);
  }
  PackBf16InPlace(buffer.data(), count);
  UnpackBf16InPlace(buffer.data(), count);
  for (int64_t i = 0; i < count; ++i) {
    EXPECT_EQ(buffer[static_cast<size_t>(i)], expected[static_cast<size_t>(i)]) << i;
  }
}

TEST(Fp8CommTest, ReduceScatterMatchesFp32WithinQuantError) {
  const int n = 4;
  const int64_t shard_rows = 8;
  const int64_t cols = 16;
  FlatCommunicator fp8_group(n);
  FlatCommunicator fp32_group(n);
  QuantConfig config;
  config.granularity = QuantGranularity::kPerToken;
  std::vector<Tensor> fp8_out(n);
  std::vector<std::vector<float>> fp32_out(n);
  RunOnRanks(n, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank) + 31);
    Tensor data = Tensor::Randn({n * shard_rows, cols}, rng);
    fp8_out[static_cast<size_t>(rank)] =
        Fp8ReduceScatter(fp8_group, rank, data, shard_rows, config);
    std::vector<float> exact(static_cast<size_t>(shard_rows * cols));
    fp32_group.ReduceScatter(rank, data.data(), exact.data(), shard_rows * cols);
    fp32_out[static_cast<size_t>(rank)] = exact;
  });
  for (int rank = 0; rank < n; ++rank) {
    for (int64_t i = 0; i < shard_rows * cols; ++i) {
      // n contributions, each within amax/16 of exact.
      EXPECT_NEAR(fp8_out[static_cast<size_t>(rank)][i],
                  fp32_out[static_cast<size_t>(rank)][static_cast<size_t>(i)], 1.5f);
    }
  }
}

TEST(Fp8CommTest, AllGatherMatchesWithinQuantError) {
  const int n = 3;
  const int64_t rows = 4;
  const int64_t cols = 8;
  FlatCommunicator group(n);
  QuantConfig config;
  config.granularity = QuantGranularity::kPerChannelGrouped;
  config.group_size = 2;
  std::vector<Tensor> gathered(n);
  std::vector<Tensor> locals(n);
  RunOnRanks(n, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank) + 17);
    locals[static_cast<size_t>(rank)] = Tensor::Randn({rows, cols}, rng);
    gathered[static_cast<size_t>(rank)] =
        Fp8AllGather(group, rank, locals[static_cast<size_t>(rank)], config);
  });
  for (int rank = 0; rank < n; ++rank) {
    for (int src = 0; src < n; ++src) {
      for (int64_t i = 0; i < rows * cols; ++i) {
        const float original = locals[static_cast<size_t>(src)][i];
        const float received = gathered[static_cast<size_t>(rank)][src * rows * cols + i];
        EXPECT_NEAR(received, original, std::fabs(original) / 8.0f + 1e-3f);
      }
    }
  }
}

TEST(Fp8CommTest, WireBytesSmallerThanBf16) {
  QuantConfig config;
  config.granularity = QuantGranularity::kPerToken;
  const int64_t rows = 8192;
  const int64_t cols = 4096;
  const int64_t fp8 = Fp8ReduceScatterWireBytes(rows, cols, config, 8);
  const int64_t bf16 = Bf16ReduceScatterWireBytes(rows, cols, 8);
  EXPECT_LT(fp8, bf16);
  // Close to half (scales add ~0.02%).
  EXPECT_NEAR(static_cast<double>(fp8) / static_cast<double>(bf16), 0.5, 0.01);
}

}  // namespace
}  // namespace msmoe
