// Capacity planning: given a custom MoE architecture, sweep cluster sizes
// and GPU generations to find configurations that fit in memory and the
// throughput/MFU each would deliver — the workflow a training-platform team
// runs before committing GPUs to a job.
//
//   $ ./capacity_planner
#include <cstdio>

#include "src/base/table.h"
#include "src/base/units.h"
#include "src/core/parallelism_planner.h"
#include "src/core/scaleup_analysis.h"
#include "src/core/sim_trainer.h"
#include "src/hw/gpu_spec.h"
#include "src/model/config.h"

using namespace msmoe;

int main() {
  // A custom model: 96B total, fine-grained experts.
  ModelConfig model;
  model.name = "Custom-96B";
  model.num_layers = 48;
  model.hidden = 3072;
  model.num_heads = 24;
  model.gqa_ratio = 4;
  model.ffn_hidden = 9216;
  model.num_experts = 24;
  model.top_k = 2;
  model.seq_len = 8192;
  std::printf("planning for %s: %.1fB params, %.1fB activated\n\n", model.name.c_str(),
              static_cast<double>(model.TotalParams()) / 1e9,
              static_cast<double>(model.ActivatedParamsPerToken()) / 1e9);

  // Is the expert wide enough to scale past the NVLink domain (§7)?
  for (const char* gpu : {"H800", "H100", "B200"}) {
    const GpuSpec spec = GpuSpecByName(gpu).value();
    const int64_t min_width = MinEfficientFfnHidden(spec, /*internode=*/true);
    std::printf("%s: need h_ffn >= %lld for R > 1 across RDMA — %s (h_ffn = %lld)\n", gpu,
                static_cast<long long>(min_width),
                model.ffn_hidden >= min_width ? "OK" : "NOT OK",
                static_cast<long long>(model.ffn_hidden));
  }
  std::printf("\n");

  TablePrinter table({"GPU", "#GPUs", "PP", "Memory/GPU (GiB)", "Fits 80GB?",
                      "Iteration (s)", "Tokens/s", "MFU (%)"});
  for (const char* gpu : {"H800", "A100"}) {
    for (int gpus : {64, 128, 256}) {
      for (int pp : {2, 4, 8}) {
        const ClusterSpec cluster = MakeCluster(gpu, gpus).value();
        if (cluster.TotalGpus() % (cluster.gpus_per_node * pp) != 0) {
          continue;
        }
        MemoryOptions memory_options;
        memory_options.pp_stages = pp;
        memory_options.dp_size = gpus / (8 * pp);
        memory_options.batch_tokens = model.seq_len;
        memory_options.sar = true;
        const MemoryFootprint footprint = EstimateMemory(
            model, AttnStrategy::kSequenceParallel, FfnStrategy::kExpertParallel,
            memory_options);
        const double gib = footprint.TotalBytes() / kGiB;
        const bool fits = gib < 72.0;  // leave headroom below 80 GB

        TrainJobConfig job = TrainJobConfig::MegaScaleMoe(model, cluster, pp,
                                                          /*global_batch=*/256);
        const auto report = SimulateTraining(job);
        if (!report.ok()) {
          continue;
        }
        table.AddRow({gpu, TablePrinter::Fmt(static_cast<int64_t>(gpus)),
                      TablePrinter::Fmt(static_cast<int64_t>(pp)),
                      TablePrinter::Fmt(gib, 1), fits ? "yes" : "NO",
                      TablePrinter::Fmt(report.value().iteration_s, 2),
                      TablePrinter::Fmt(report.value().tokens_per_s / 1000.0, 0) + "k",
                      TablePrinter::Fmt(report.value().mfu * 100.0, 1)});
      }
    }
  }
  table.Print("Candidate deployments (SP+EP, SAR on, BF16 grad compression):");
  return 0;
}
