#include "src/sim/comm_crosscheck.h"

#include <cstdio>
#include <map>

namespace msmoe {

bool AnalyticWireBytes(const CommEvent& event, uint64_t* bytes) {
  const uint64_t n = static_cast<uint64_t>(event.group_size);
  if (n == 0) {
    return false;
  }
  const uint64_t payload = static_cast<uint64_t>(event.elem_count) *
                           static_cast<uint64_t>(event.elem_bytes);
  switch (event.op) {
    case CommOp::kAllGather:
    case CommOp::kReduceScatter:
      if (event.algorithm != "ring") {
        return false;
      }
      *bytes = (n - 1) * payload;
      return true;
    case CommOp::kAllReduce:
      // Ring AR = RS + AG. Hierarchical volume depends on the node shape,
      // which the event does not carry — skip.
      if (event.algorithm != "ring") {
        return false;
      }
      *bytes = 2 * (n - 1) * payload;
      return true;
    case CommOp::kAllToAll:
      // elem_count is the per-destination block; each rank keeps its own
      // block and sends n-1 off-rank.
      *bytes = (n - 1) * payload;
      return true;
    case CommOp::kBroadcast:
      *bytes = (n - 1) * payload;
      return true;
    case CommOp::kExchangeScalars:
      *bytes = (n - 1) * payload;
      return true;
    case CommOp::kAllToAllV:  // data-dependent: volume lives in the event
    case CommOp::kBarrier:
      return false;
  }
  return false;
}

double PredictedTimeUs(const CostModel& cost, const CommEvent& event, bool internode) {
  const int n = event.group_size;
  const int64_t payload = event.elem_count * event.elem_bytes;
  switch (event.op) {
    case CommOp::kAllGather:
    case CommOp::kReduceScatter:
      return cost.RingCollectiveTime(payload, n, internode);
    case CommOp::kAllReduce:
      return 2.0 * cost.RingCollectiveTime(payload, n, internode);
    case CommOp::kAllToAll:
      // CostModel's bytes_per_rank is the rank's full send buffer (1/n per
      // peer); the event records the per-destination block.
      return cost.AllToAllTime(payload * n, n, internode);
    case CommOp::kAllToAllV: {
      // Approximate with a balanced A2A moving the event's total volume.
      if (n <= 1) {
        return 0.0;
      }
      const int64_t per_rank =
          static_cast<int64_t>(event.wire_bytes) * n / (n - 1) / n;
      return cost.AllToAllTime(per_rank * n, n, internode);
    }
    case CommOp::kBroadcast:
      return cost.P2PTime(payload * (n - 1), internode);
    case CommOp::kExchangeScalars:
    case CommOp::kBarrier:
      return 0.0;
  }
  return 0.0;
}

ChunkCheckReport CrossCheckChunkAggregation(const std::vector<CommEvent>& events) {
  ChunkCheckReport report;
  struct Aggregate {
    CommOp op = CommOp::kBarrier;
    std::string algorithm;
    int group_size = 0;
    int elem_bytes = 0;
    int chunk_count = 0;
    int64_t elem_total = 0;
    uint64_t wire_total = 0;
    std::vector<int> seen;  // occurrences per chunk index
  };
  std::map<int64_t, Aggregate> ops;
  auto complain = [&report](const Aggregate& agg, int64_t id, const std::string& what) {
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer), "logical op %lld (%s[%s], n=%d): %s",
                  static_cast<long long>(id), CommOpName(agg.op),
                  agg.algorithm.c_str(), agg.group_size, what.c_str());
    report.mismatches.push_back(buffer);
  };
  for (const CommEvent& event : events) {
    if (!event.async_lane || !event.primary) {
      continue;
    }
    ++report.chunk_events;
    Aggregate& agg = ops[event.logical_op];
    if (agg.seen.empty()) {
      agg.op = event.op;
      agg.algorithm = event.algorithm;
      agg.group_size = event.group_size;
      agg.elem_bytes = event.elem_bytes;
      agg.chunk_count = event.chunk_count;
      agg.seen.assign(static_cast<size_t>(event.chunk_count), 0);
    } else if (event.op != agg.op || event.chunk_count != agg.chunk_count) {
      complain(agg, event.logical_op, "inconsistent op/chunk_count across chunks");
      continue;
    }
    if (event.chunk_index < 0 || event.chunk_index >= agg.chunk_count) {
      complain(agg, event.logical_op, "chunk index out of range");
      continue;
    }
    ++agg.seen[static_cast<size_t>(event.chunk_index)];
    agg.elem_total += event.elem_count;
    agg.wire_total += event.wire_bytes;
  }
  for (const auto& [id, agg] : ops) {
    ++report.logical_ops;
    for (int c = 0; c < agg.chunk_count; ++c) {
      if (agg.seen[static_cast<size_t>(c)] != 1) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "chunk %d recorded %d times", c,
                      agg.seen[static_cast<size_t>(c)]);
        complain(agg, id, buffer);
      }
    }
    // Rebuild the monolithic event and compare the chunk sum against its
    // closed-form volume; data-dependent ops (A2AV) have no closed form and
    // are completeness-checked only.
    CommEvent whole;
    whole.op = agg.op;
    whole.algorithm = agg.algorithm;
    whole.group_size = agg.group_size;
    whole.elem_bytes = agg.elem_bytes;
    whole.elem_count = agg.elem_total;
    uint64_t expected = 0;
    if (AnalyticWireBytes(whole, &expected) && expected != agg.wire_total) {
      char buffer[128];
      std::snprintf(buffer, sizeof(buffer),
                    "chunk wire bytes sum to %llu, monolithic closed form is %llu",
                    static_cast<unsigned long long>(agg.wire_total),
                    static_cast<unsigned long long>(expected));
      complain(agg, id, buffer);
    }
  }
  return report;
}

CommCheckReport CrossCheckCommEvents(const std::vector<CommEvent>& events) {
  CommCheckReport report;
  for (const CommEvent& event : events) {
    uint64_t expected = 0;
    if (!AnalyticWireBytes(event, &expected)) {
      ++report.skipped;
      continue;
    }
    ++report.checked;
    if (expected != event.wire_bytes) {
      char buffer[256];
      std::snprintf(buffer, sizeof(buffer),
                    "%s[%s] rank %d/%d %lld x %s: recorded %llu wire bytes, "
                    "analytic %llu",
                    CommOpName(event.op), event.algorithm.c_str(), event.rank,
                    event.group_size, static_cast<long long>(event.elem_count),
                    event.elem_type.c_str(),
                    static_cast<unsigned long long>(event.wire_bytes),
                    static_cast<unsigned long long>(expected));
      report.mismatches.push_back(buffer);
    }
  }
  return report;
}

}  // namespace msmoe
