// Figure 15: overlapped vs non-overlapped time of the four §4.2 fused
// communication-computation pairs — (i) QKV Projection + all-to-all,
// (ii) all-to-all + Output Projection, (iii) all-gather + scatter +
// GroupedGEMM, (iv) GroupedGEMM + gather + reduce-scatter — for the six
// evaluation models (M1-M6) on one 8-GPU H800 node. Also reports the
// resulting per-layer iteration-time reduction (§6.2: 7.1%-12.9%).
#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/core/layer_program.h"
#include "src/model/config.h"

namespace msmoe {
namespace {

void Run() {
  PrintHeader("Figure 15 — intra-operator communication-computation overlap",
              "fused tile-pipeline kernels vs back-to-back execution, "
              "one 8-GPU H800 node, micro-batch 1 x 8192 tokens");
  PrintPaperNote(
      "1.2x-4.7x reduction in combined comm+comp time per pair; 7.1%-12.9% "
      "lower iteration time overall");

  const CostModel cost(MakeCluster("H800", 8).value());

  TablePrinter table({"Model", "Pair", "Comm (us)", "Comp (us)", "Non-overlapped (us)",
                      "Overlapped (us)", "Reduction"});
  int index = 0;
  for (const ModelConfig& model : EvaluationModels()) {
    ++index;
    ExecutionOptions options = ExecutionOptions::MegaScale(model, 8);
    const auto pairs = IntraOverlapPairs(cost, model, options, 1, model.seq_len, 8);
    for (const OverlapPairReport& pair : pairs) {
      table.AddRow({"M" + std::to_string(index) + " " + model.name, pair.name,
                    TablePrinter::Fmt(pair.comm_us, 1), TablePrinter::Fmt(pair.comp_us, 1),
                    TablePrinter::Fmt(pair.unfused_us, 1),
                    TablePrinter::Fmt(pair.fused_us, 1),
                    TablePrinter::Fmt(pair.unfused_us / pair.fused_us, 2) + "x"});
    }
  }
  table.Print("Per-pair overlapped vs non-overlapped time:");

  TablePrinter layer_table({"Model", "Layer w/ intra-overlap (us)",
                            "Layer w/o intra-overlap (us)", "Iteration reduction (%)"});
  for (const ModelConfig& model : EvaluationModels()) {
    ExecutionOptions with = ExecutionOptions::MegaScale(model, 8);
    ExecutionOptions without = with;
    without.intra_op_overlap = false;
    const LayerTimes fast = SimulateLayer(cost, model, with, 1, model.seq_len, 8);
    const LayerTimes slow = SimulateLayer(cost, model, without, 1, model.seq_len, 8);
    layer_table.AddRow({model.name, TablePrinter::Fmt(fast.total_us(), 0),
                        TablePrinter::Fmt(slow.total_us(), 0),
                        TablePrinter::Fmt((1.0 - fast.total_us() / slow.total_us()) * 100.0,
                                          1)});
  }
  layer_table.Print("Per-layer effect of intra-operator overlap:");
}

}  // namespace
}  // namespace msmoe

int main() {
  msmoe::Run();
  return 0;
}
