// Distributed execution of one complete MoE layer — the §4.1 "unified macro
// module": the caller hands the layer input and receives the layer output;
// internally the module runs
//   RMSNorm -> SP (Ulysses) attention -> residual -> RMSNorm -> router ->
//   EP expert FFN (either dispatch mode) -> weighted combine -> residual
// over a model-parallel group of thread ranks, with full manual backward.
//
// Selective activation rematerialization (§4.1) is implemented for real:
// with `sar = true` the forward pass DROPS the recomputable activations
// (ln1_out, ln2_out, the dispatched ffn_in, and the SwiGLU output fc2_in)
// and the backward pass re-derives them — re-running RMSNorm, re-gathering
// ffn_in, and re-applying SwiGLU — producing bit-identical gradients while
// holding roughly half the activation bytes (CacheBytes() reports the
// actual footprint so tests can assert the saving).
//
// Weight-gradient completeness matches the underlying strategies: attention
// / norm / router grads are partial sums over local tokens (synchronize
// across the SP group), expert grads are complete on the owner rank.
#ifndef MSMOE_SRC_PARALLEL_PARALLEL_MOE_LAYER_H_
#define MSMOE_SRC_PARALLEL_PARALLEL_MOE_LAYER_H_

#include <cstdint>

#include "src/model/config.h"
#include "src/model/moe_layer.h"
#include "src/model/router.h"
#include "src/parallel/ep_ffn.h"
#include "src/parallel/sp_attention.h"
#include "src/tensor/tensor.h"

namespace msmoe {

struct ParallelMoeLayerOptions {
  EpDispatchMode dispatch = EpDispatchMode::kAllToAll;
  bool sar = false;
};

struct ParallelMoeLayerCache {
  Tensor hidden_in;      // layer input (always kept: the residual source)
  Tensor ln1_out;        // dropped under SAR
  Tensor ln1_inv_rms;    // [t_local] (cheap, always kept)
  SpAttentionCache attn;
  Tensor ln2_in;         // first residual sum (always kept)
  Tensor ln2_out;        // dropped under SAR
  Tensor ln2_inv_rms;
  RoutingResult routing;
  EpFfnCache ffn;

  // Actual bytes held by the cached activations (tensors only).
  int64_t CacheBytes() const;
};

// x_local is [batch * seq_len / n, h], sequence-sharded as in
// SpAttentionForward. params holds the FULL layer parameters (replicated
// attention/norm/router weights; all experts — only the owner's are used).
Tensor ParallelMoeLayerForward(const ShardContext& ctx, const ModelConfig& config,
                               const RouterConfig& router, const MoeLayerParams& params,
                               const Tensor& x_local, int64_t batch, int64_t seq_len,
                               const ParallelMoeLayerOptions& options,
                               ParallelMoeLayerCache* cache);

struct ParallelMoeLayerGrads {
  // Same structure as the reference layer grads. Attention/norm/router
  // entries are partial (local tokens); expert entries are complete for
  // this rank's experts and zero elsewhere.
  MoeLayerParams dparams;
  Tensor dx_local;
};

ParallelMoeLayerGrads ParallelMoeLayerBackward(
    const ShardContext& ctx, const ModelConfig& config, const RouterConfig& router,
    const MoeLayerParams& params, const Tensor& dy_local, int64_t batch, int64_t seq_len,
    const ParallelMoeLayerOptions& options, const ParallelMoeLayerCache& cache);

}  // namespace msmoe

#endif  // MSMOE_SRC_PARALLEL_PARALLEL_MOE_LAYER_H_
