#include "src/parallel/fused_ops.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/logging.h"
#include "src/base/math_util.h"
#include "src/base/parallel_for.h"
#include "src/comm/telemetry.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {

namespace {

// Chunk count for the EP dispatch pipeline, which has no caller-facing tile
// knob: enough chunks that expert GEMMs start before the gather finishes,
// few enough that per-chunk overhead stays negligible at test sizes.
constexpr int kDispatchChunks = 4;

// Declared stream of the chunk wait/signal ops. The collective itself runs
// on the rank's comm-proxy thread regardless; this stream only carries the
// rendezvous ops so a single-stream schedule serializes them against
// compute the way an unfused sequence would.
constexpr int kCommStream = 1;

std::string ChunkName(const char* base, int chunk) {
  return std::string(base) + "[" + std::to_string(chunk) + "]";
}

}  // namespace

std::unique_ptr<FusedPipeline> RecordFusedAllGatherGemm(const ShardContext& ctx,
                                                        const Tensor& x_local,
                                                        const Tensor& w,
                                                        int64_t row_tile) {
  MSMOE_CHECK_EQ(x_local.ndim(), 2);
  MSMOE_CHECK_EQ(w.ndim(), 2);
  MSMOE_CHECK_EQ(x_local.dim(1), w.dim(0));
  MSMOE_CHECK_GT(row_tile, 0);
  const int n = ctx.size();
  const int rank = ctx.rank;
  Communicator* comm = ctx.comm;
  const int64_t rows_local = x_local.dim(0);
  const int64_t k = x_local.dim(1);
  const int64_t cols = w.dim(1);

  auto pipe = std::make_unique<FusedPipeline>();
  pipe->staging.Resize(static_cast<int64_t>(n) * rows_local * k);
  pipe->y = Tensor::Uninit({static_cast<int64_t>(n) * rows_local, cols});
  const int num_chunks = static_cast<int>(CeilDiv(rows_local, row_tile));
  // Start at record time, on the rank's main thread: the per-rank Start*
  // FIFO contract is schedule-independent by construction.
  pipe->handle = comm->StartAllGather(rank, x_local.data(), pipe->staging.data(),
                                      rows_local * k, num_chunks, /*quantum=*/k);

  FusedPipeline* p = pipe.get();
  const float* w_data = w.data();
  int prev_wait = -1;
  for (int c = 0; c < pipe->handle->num_chunks(); ++c) {
    // Chunk waits are chained: chunks complete in index order on the wire,
    // so the chain makes that order an explicit graph dep and any valid
    // schedule keeps waits non-blocking beyond the wire itself.
    std::vector<int> wait_deps;
    if (prev_wait >= 0) {
      wait_deps.push_back(prev_wait);
    }
    const int wait = p->graph.AddComm(
        ChunkName("ag_wait", c), kCommStream, [p, c] { return p->handle->WaitChunk(c); },
        std::move(wait_deps));
    p->graph.AddCompute(
        ChunkName("ag_gemm", c),
        [p, comm, rank, w_data, n, rows_local, k, cols, c] {
          const int64_t row0 = p->handle->layout().begin(c) / k;
          const int64_t tile_rows = p->handle->layout().size(c) / k;
          ScopedCompSpan span(&comm->telemetry(), "fused_ag_gemm", rank);
          // Per-row GEMMs are independent, so processing sources in ring
          // order inside an arrival chunk keeps the output bitwise equal to
          // the unfused collective-then-GEMM sequence.
          for (int step = 0; step < n; ++step) {
            const int src = (rank + step) % n;
            const int64_t row = static_cast<int64_t>(src) * rows_local + row0;
            Gemm(false, false, tile_rows, cols, k, 1.0f, p->staging.data() + row * k,
                 w_data, 0.0f, p->y.data() + row * cols);
          }
          return Status::Ok();
        },
        {wait});
    prev_wait = wait;
  }
  return pipe;
}

Tensor FusedAllGatherGemm(const ShardContext& ctx, const Tensor& x_local, const Tensor& w,
                          int64_t row_tile) {
  std::unique_ptr<FusedPipeline> pipe = RecordFusedAllGatherGemm(ctx, x_local, w, row_tile);
  // On a chunk failure the graph aborts and the partially-computed output is
  // returned — the caller observes the failure via GroupStatus(), exactly
  // like the eager pipeline did.
  (void)pipe->graph.Execute(2);
  return std::move(pipe->y);
}

std::unique_ptr<FusedPipeline> RecordFusedGemmReduceScatter(const ShardContext& ctx,
                                                            const Tensor& x_local,
                                                            const Tensor& w_shard,
                                                            int64_t row_tile) {
  MSMOE_CHECK_EQ(x_local.ndim(), 2);
  MSMOE_CHECK_EQ(x_local.dim(1), w_shard.dim(0));
  MSMOE_CHECK_GT(row_tile, 0);
  const int n = ctx.size();
  const int rank = ctx.rank;
  Communicator* comm = ctx.comm;
  const int64_t rows = x_local.dim(0);
  MSMOE_CHECK_EQ(rows % n, 0);
  const int64_t k_shard = x_local.dim(1);
  const int64_t cols = w_shard.dim(1);
  const int64_t rows_out = rows / n;
  const int64_t count = rows_out * cols;

  auto pipe = std::make_unique<FusedPipeline>();
  pipe->staging.Resize(rows * cols);
  pipe->y = Tensor::Uninit({rows_out, cols});
  const int num_chunks = static_cast<int>(CeilDiv(rows_out, row_tile));
  // Producer-gated: the comm thread blocks per chunk until the signal op
  // below declares the tile's slice of the send buffer final.
  pipe->handle = comm->StartReduceScatter(rank, pipe->staging.data(), pipe->y.data(),
                                          count, num_chunks, /*quantum=*/cols);

  FusedPipeline* p = pipe.get();
  const float* x_data = x_local.data();
  const float* w_data = w_shard.data();
  std::vector<int> signals;
  for (int c = 0; c < pipe->handle->num_chunks(); ++c) {
    // Each tile's partial GEMMs write a disjoint slice of the send buffer
    // for EVERY destination, so the tile ops are mutually independent.
    const int gemm = p->graph.AddCompute(
        ChunkName("rs_gemm", c),
        [p, comm, rank, x_data, w_data, n, rows_out, k_shard, cols, count, c] {
          const int64_t begin = p->handle->layout().begin(c);
          const int64_t row0 = begin / cols;
          const int64_t tile_rows = p->handle->layout().size(c) / cols;
          ScopedCompSpan span(&comm->telemetry(), "fused_gemm_rs", rank);
          for (int dst = 0; dst < n; ++dst) {
            const int64_t src_row = static_cast<int64_t>(dst) * rows_out + row0;
            Gemm(false, false, tile_rows, cols, k_shard, 1.0f,
                 x_data + src_row * k_shard, w_data, 0.0f,
                 p->staging.data() + static_cast<int64_t>(dst) * count + begin);
          }
          return Status::Ok();
        });
    signals.push_back(p->graph.AddComm(
        ChunkName("rs_signal", c), kCommStream,
        [p, c] {
          p->handle->SignalChunkReady(c);
          return Status::Ok();
        },
        {gemm}));
  }
  // The wait-all depends on every signal: a schedule can never queue it
  // ahead of a signal on the same stream, which would deadlock the
  // producer-gated transfer it is waiting for.
  p->graph.AddComm(
      "rs_wait_all", kCommStream, [p] { return p->handle->WaitAll(); }, signals);
  return pipe;
}

Tensor FusedGemmReduceScatter(const ShardContext& ctx, const Tensor& x_local,
                              const Tensor& w_shard, int64_t row_tile) {
  std::unique_ptr<FusedPipeline> pipe =
      RecordFusedGemmReduceScatter(ctx, x_local, w_shard, row_tile);
  (void)pipe->graph.Execute(2);
  return std::move(pipe->y);
}

std::unique_ptr<FusedPipeline> RecordFusedAllGatherScatterGroupedGemm(
    const ShardContext& ctx, const Tensor& x_local,
    const std::vector<int64_t>& token_expert, const std::vector<Tensor>& expert_weights,
    int64_t experts_per_rank) {
  const int n = ctx.size();
  const int rank = ctx.rank;
  Communicator* comm = ctx.comm;
  const int64_t t_local = x_local.dim(0);
  const int64_t h = x_local.dim(1);
  MSMOE_CHECK_EQ(static_cast<int64_t>(token_expert.size()), t_local);
  const int64_t cols = expert_weights[0].dim(1);

  auto pipe = std::make_unique<FusedPipeline>();
  pipe->staging.Resize(static_cast<int64_t>(n) * t_local * h);
  // Start the (big) token payload streaming on the comm thread first; the
  // (small) routing gather and the bucket build below overlap with it —
  // both happen at record time, before any graph op runs.
  pipe->handle = comm->StartAllGather(rank, x_local.data(), pipe->staging.data(),
                                      t_local * h, kDispatchChunks, /*quantum=*/h);
  std::vector<int64_t> expert_all(static_cast<size_t>(n) * t_local);
  comm->AllGather(rank, token_expert.data(), expert_all.data(), t_local);

  // Local scatter fused with arrival: iterating sources in ring order yields
  // rows sorted by (expert, source-arrival) — the §4.2 order that minimizes
  // per-tile dependency count.
  const int64_t e_first = static_cast<int64_t>(rank) * experts_per_rank;
  // Bucket/offset state outlives recording via shared ownership in the
  // per-chunk closures.
  struct GroupedState {
    std::vector<std::vector<int64_t>> bucket;  // local expert -> global tokens
    std::vector<int64_t> out_begin;            // local expert -> first output row
  };
  auto state = std::make_shared<GroupedState>();
  state->bucket.resize(static_cast<size_t>(experts_per_rank));
  for (int step = 0; step < n; ++step) {
    const int src = (rank + step) % n;
    for (int64_t t = 0; t < t_local; ++t) {
      const int64_t global_token = static_cast<int64_t>(src) * t_local + t;
      const int64_t e = expert_all[static_cast<size_t>(global_token)] - e_first;
      if (e >= 0 && e < experts_per_rank) {
        state->bucket[static_cast<size_t>(e)].push_back(global_token);
      }
    }
  }

  pipe->row_token.clear();
  for (const auto& rows : state->bucket) {
    pipe->row_token.insert(pipe->row_token.end(), rows.begin(), rows.end());
  }
  const int64_t total_rows = static_cast<int64_t>(pipe->row_token.size());
  pipe->y = Tensor::Uninit({total_rows, cols});

  state->out_begin.assign(static_cast<size_t>(experts_per_rank) + 1, 0);
  for (int64_t e = 0; e < experts_per_rank; ++e) {
    state->out_begin[static_cast<size_t>(e) + 1] =
        state->out_begin[static_cast<size_t>(e)] +
        static_cast<int64_t>(state->bucket[static_cast<size_t>(e)].size());
  }

  // An all-gather chunk delivers token rows [begin/h, end/h) of every
  // source, so an expert's GEMM is unblocked once the chunk holding its
  // highest local-token row arrived.
  const int chunks = pipe->handle->num_chunks();
  std::vector<int> token_chunk(static_cast<size_t>(t_local), 0);
  for (int c = 0; c < chunks; ++c) {
    for (int64_t t = pipe->handle->layout().begin(c) / h;
         t < pipe->handle->layout().end(c) / h; ++t) {
      token_chunk[static_cast<size_t>(t)] = c;
    }
  }
  std::vector<int> last_chunk(static_cast<size_t>(experts_per_rank), -1);
  for (int64_t e = 0; e < experts_per_rank; ++e) {
    for (const int64_t g : state->bucket[static_cast<size_t>(e)]) {
      last_chunk[static_cast<size_t>(e)] =
          std::max(last_chunk[static_cast<size_t>(e)],
                   token_chunk[static_cast<size_t>(g % t_local)]);
    }
  }

  // One grouped-GEMM op per chunk with newly completed experts, depending
  // only on that chunk's wait; the experts fire across the intra-rank
  // worker pool with disjoint output rows.
  FusedPipeline* p = pipe.get();
  const std::vector<Tensor>* weights = &expert_weights;
  int prev_wait = -1;
  for (int c = 0; c < chunks; ++c) {
    std::vector<int> wait_deps;
    if (prev_wait >= 0) {
      wait_deps.push_back(prev_wait);
    }
    const int wait = p->graph.AddComm(
        ChunkName("dispatch_wait", c), kCommStream,
        [p, c] { return p->handle->WaitChunk(c); }, std::move(wait_deps));
    prev_wait = wait;

    std::vector<int64_t> ready;
    for (int64_t e = 0; e < experts_per_rank; ++e) {
      if (last_chunk[static_cast<size_t>(e)] == c) {
        ready.push_back(e);
      }
    }
    if (ready.empty()) {
      continue;
    }
    p->graph.AddCompute(
        ChunkName("grouped_gemm", c),
        [p, state, comm, rank, weights, ready, e_first, h, cols] {
          ScopedCompSpan span(&comm->telemetry(), "fused_grouped_gemm", rank);
          ParallelFor(static_cast<int64_t>(ready.size()), /*grain=*/1,
                      [&](int64_t i0, int64_t i1) {
                        for (int64_t i = i0; i < i1; ++i) {
                          const int64_t e = ready[static_cast<size_t>(i)];
                          const auto& rows = state->bucket[static_cast<size_t>(e)];
                          Tensor ffn_in =
                              Tensor::Uninit({static_cast<int64_t>(rows.size()), h});
                          for (size_t r = 0; r < rows.size(); ++r) {
                            std::copy(p->staging.data() + rows[r] * h,
                                      p->staging.data() + (rows[r] + 1) * h,
                                      ffn_in.data() + static_cast<int64_t>(r) * h);
                          }
                          const Tensor& w =
                              (*weights)[static_cast<size_t>(e_first + e)];
                          Gemm(false, false, static_cast<int64_t>(rows.size()), cols, h,
                               1.0f, ffn_in.data(), w.data(), 0.0f,
                               p->y.data() +
                                   state->out_begin[static_cast<size_t>(e)] * cols);
                        }
                      });
          return Status::Ok();
        },
        {wait});
  }
  return pipe;
}

Tensor FusedAllGatherScatterGroupedGemm(const ShardContext& ctx, const Tensor& x_local,
                                        const std::vector<int64_t>& token_expert,
                                        const std::vector<Tensor>& expert_weights,
                                        int64_t experts_per_rank,
                                        std::vector<int64_t>* row_token) {
  std::unique_ptr<FusedPipeline> pipe = RecordFusedAllGatherScatterGroupedGemm(
      ctx, x_local, token_expert, expert_weights, experts_per_rank);
  (void)pipe->graph.Execute(2);
  *row_token = std::move(pipe->row_token);
  return std::move(pipe->y);
}

}  // namespace msmoe
