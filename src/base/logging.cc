#include "src/base/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace msmoe {

LogSeverity MinLogSeverity() {
  static const LogSeverity severity = [] {
    const char* env = std::getenv("MSMOE_LOG_LEVEL");
    if (env == nullptr) {
      return LogSeverity::kInfo;
    }
    int value = std::atoi(env);
    if (value < 0) {
      value = 0;
    }
    if (value > 4) {
      value = 4;
    }
    return static_cast<LogSeverity>(value);
  }();
  return severity;
}

namespace {

thread_local bool throw_on_fatal = false;

}  // namespace

ScopedThrowOnFatal::ScopedThrowOnFatal() : previous_(throw_on_fatal) {
  throw_on_fatal = true;
}

ScopedThrowOnFatal::~ScopedThrowOnFatal() { throw_on_fatal = previous_; }

bool ScopedThrowOnFatal::Active() { return throw_on_fatal; }

namespace internal {
namespace {

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() noexcept(false) {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    if (ScopedThrowOnFatal::Active()) {
      throw FatalError(stream_.str());
    }
    std::abort();
  }
}

}  // namespace internal
}  // namespace msmoe
