#include "src/sim/param_sync.h"

#include <vector>

#include "src/base/logging.h"
#include "src/sim/graph.h"

namespace msmoe {

ParamSyncResult ParamSyncTime(const CostModel& cost, int64_t per_gpu_shard_bytes, int n,
                              int d, int chunks) {
  MSMOE_CHECK_GT(chunks, 0);
  ParamSyncResult result;

  // Parameter synchronization moves GB-scale messages, where ring
  // collectives reach ~90% of NVLink bandwidth (unlike the smaller
  // activation collectives the training-time cost model is calibrated for).
  constexpr double kLargeMessageNvlinkEfficiency = 0.90;
  const double intra_scale =
      cost.cluster().nvlink_efficiency / kLargeMessageNvlinkEfficiency;

  // TP: inter-node reduce-scatter + all-gather of the P/n shard over d ranks.
  result.tp_us =
      2.0 * cost.RingCollectiveTime(per_gpu_shard_bytes / d, d, /*internode=*/true);

  // SP: full replica P = n * shard per GPU.
  const int64_t replica_bytes = per_gpu_shard_bytes * n;
  // Intra-node RS + AG of the replica over n ranks (NVLink).
  result.sp_intra_us =
      2.0 * cost.RingCollectiveTime(replica_bytes / n, n, /*internode=*/false) *
      intra_scale;
  // Inter-node RS + AG of the P/n chunk over d ranks (NIC) — same as TP.
  result.sp_inter_us =
      2.0 * cost.RingCollectiveTime(per_gpu_shard_bytes / d, d, /*internode=*/true);

  // Pipelined hierarchical schedule: chunk c flows intra-RS (NVLink) ->
  // inter-RS+AG (NIC) -> intra-AG (NVLink). Stream 0 models NVLink, stream 1
  // the NIC; FIFO order matches the dependency order.
  const double intra_rs_chunk = result.sp_intra_us / 2.0 / chunks;
  const double inter_chunk = result.sp_inter_us / chunks;
  const double intra_ag_chunk = result.sp_intra_us / 2.0 / chunks;
  std::vector<SimOp> ops;
  std::vector<int> inter_idx(static_cast<size_t>(chunks));
  for (int c = 0; c < chunks; ++c) {
    ops.push_back(SimOp{"intra_rs", intra_rs_chunk, true, 0, {}, "comm"});
    ops.push_back(
        SimOp{"inter", inter_chunk, true, 1, {static_cast<int>(ops.size()) - 1}, "comm"});
    inter_idx[static_cast<size_t>(c)] = static_cast<int>(ops.size()) - 1;
  }
  for (int c = 0; c < chunks; ++c) {
    ops.push_back(
        SimOp{"intra_ag", intra_ag_chunk, true, 0, {inter_idx[static_cast<size_t>(c)]},
              "comm"});
  }
  result.sp_us = ExecuteGraph(ops, 2).makespan;
  return result;
}

}  // namespace msmoe
