#include "src/tensor/tensor.h"

#include <cmath>
#include <sstream>

namespace msmoe {
namespace {

int64_t NumelOf(const std::vector<int64_t>& shape) {
  int64_t numel = 1;
  for (int64_t d : shape) {
    MSMOE_CHECK_GE(d, 0);
    numel *= d;
  }
  return numel;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)), numel_(NumelOf(shape_)) {
  data_.assign(static_cast<size_t>(numel_), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor out(std::move(shape));
  out.Fill(value);
  return out;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float mean, float stddev) {
  Tensor out(std::move(shape));
  for (int64_t i = 0; i < out.numel_; ++i) {
    out.data_[static_cast<size_t>(i)] = static_cast<float>(rng.NextGaussian(mean, stddev));
  }
  return out;
}

Tensor Tensor::Uniform(std::vector<int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor out(std::move(shape));
  for (int64_t i = 0; i < out.numel_; ++i) {
    out.data_[static_cast<size_t>(i)] = static_cast<float>(rng.NextUniform(lo, hi));
  }
  return out;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, std::vector<float> values) {
  Tensor out;
  out.shape_ = std::move(shape);
  out.numel_ = NumelOf(out.shape_);
  MSMOE_CHECK_EQ(out.numel_, static_cast<int64_t>(values.size()));
  out.data_ = std::move(values);
  return out;
}

int64_t Tensor::dim(int i) const {
  MSMOE_CHECK_GE(i, 0);
  MSMOE_CHECK_LT(i, ndim());
  return shape_[static_cast<size_t>(i)];
}

float& Tensor::At(int64_t i, int64_t j) {
  MSMOE_CHECK_EQ(ndim(), 2);
  MSMOE_CHECK_LT(i, shape_[0]);
  MSMOE_CHECK_LT(j, shape_[1]);
  return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float Tensor::At(int64_t i, int64_t j) const { return const_cast<Tensor*>(this)->At(i, j); }

float& Tensor::At(int64_t i, int64_t j, int64_t k) {
  MSMOE_CHECK_EQ(ndim(), 3);
  MSMOE_CHECK_LT(i, shape_[0]);
  MSMOE_CHECK_LT(j, shape_[1]);
  MSMOE_CHECK_LT(k, shape_[2]);
  return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float Tensor::At(int64_t i, int64_t j, int64_t k) const {
  return const_cast<Tensor*>(this)->At(i, j, k);
}

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  MSMOE_CHECK_EQ(NumelOf(new_shape), numel_);
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.numel_ = numel_;
  out.data_ = data_;
  return out;
}

void Tensor::Fill(float value) { data_.assign(data_.size(), value); }

void Tensor::AddInPlace(const Tensor& other) {
  MSMOE_CHECK(SameShape(*this, other)) << ShapeString() << " vs " << other.ShapeString();
  for (int64_t i = 0; i < numel_; ++i) {
    data_[static_cast<size_t>(i)] += other.data_[static_cast<size_t>(i)];
  }
}

void Tensor::ScaleInPlace(float factor) {
  for (float& v : data_) {
    v *= factor;
  }
}

void Tensor::AxpyInPlace(float alpha, const Tensor& other) {
  MSMOE_CHECK(SameShape(*this, other));
  for (int64_t i = 0; i < numel_; ++i) {
    data_[static_cast<size_t>(i)] += alpha * other.data_[static_cast<size_t>(i)];
  }
}

Tensor Tensor::SliceRows(int64_t row_begin, int64_t row_end) const {
  MSMOE_CHECK_EQ(ndim(), 2);
  MSMOE_CHECK_LE(0, row_begin);
  MSMOE_CHECK_LE(row_begin, row_end);
  MSMOE_CHECK_LE(row_end, shape_[0]);
  const int64_t cols = shape_[1];
  Tensor out({row_end - row_begin, cols});
  std::copy(data_.begin() + static_cast<size_t>(row_begin * cols),
            data_.begin() + static_cast<size_t>(row_end * cols), out.data_.begin());
  return out;
}

double Tensor::SumAbs() const {
  double total = 0.0;
  for (float v : data_) {
    total += std::fabs(static_cast<double>(v));
  }
  return total;
}

double Tensor::MaxAbs() const {
  double max_abs = 0.0;
  for (float v : data_) {
    max_abs = std::fmax(max_abs, std::fabs(static_cast<double>(v)));
  }
  return max_abs;
}

double Tensor::RelativeL2Diff(const Tensor& other) const {
  MSMOE_CHECK(SameShape(*this, other));
  double diff_sq = 0.0;
  double ref_sq = 0.0;
  for (int64_t i = 0; i < numel_; ++i) {
    const double d = static_cast<double>(data_[static_cast<size_t>(i)]) -
                     static_cast<double>(other.data_[static_cast<size_t>(i)]);
    diff_sq += d * d;
    ref_sq += static_cast<double>(other.data_[static_cast<size_t>(i)]) *
              static_cast<double>(other.data_[static_cast<size_t>(i)]);
  }
  if (ref_sq == 0.0) {
    return diff_sq == 0.0 ? 0.0 : std::sqrt(diff_sq);
  }
  return std::sqrt(diff_sq / ref_sq);
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    out << (i > 0 ? ", " : "") << shape_[i];
  }
  out << "]";
  return out.str();
}

bool SameShape(const Tensor& a, const Tensor& b) { return a.shape() == b.shape(); }

}  // namespace msmoe
