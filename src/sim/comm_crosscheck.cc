#include "src/sim/comm_crosscheck.h"

#include <cstdio>

namespace msmoe {

bool AnalyticWireBytes(const CommEvent& event, uint64_t* bytes) {
  const uint64_t n = static_cast<uint64_t>(event.group_size);
  if (n == 0) {
    return false;
  }
  const uint64_t payload = static_cast<uint64_t>(event.elem_count) *
                           static_cast<uint64_t>(event.elem_bytes);
  switch (event.op) {
    case CommOp::kAllGather:
    case CommOp::kReduceScatter:
      if (event.algorithm != "ring") {
        return false;
      }
      *bytes = (n - 1) * payload;
      return true;
    case CommOp::kAllReduce:
      // Ring AR = RS + AG. Hierarchical volume depends on the node shape,
      // which the event does not carry — skip.
      if (event.algorithm != "ring") {
        return false;
      }
      *bytes = 2 * (n - 1) * payload;
      return true;
    case CommOp::kAllToAll:
      // elem_count is the per-destination block; each rank keeps its own
      // block and sends n-1 off-rank.
      *bytes = (n - 1) * payload;
      return true;
    case CommOp::kBroadcast:
      *bytes = (n - 1) * payload;
      return true;
    case CommOp::kExchangeScalars:
      *bytes = (n - 1) * payload;
      return true;
    case CommOp::kAllToAllV:  // data-dependent: volume lives in the event
    case CommOp::kBarrier:
      return false;
  }
  return false;
}

double PredictedTimeUs(const CostModel& cost, const CommEvent& event, bool internode) {
  const int n = event.group_size;
  const int64_t payload = event.elem_count * event.elem_bytes;
  switch (event.op) {
    case CommOp::kAllGather:
    case CommOp::kReduceScatter:
      return cost.RingCollectiveTime(payload, n, internode);
    case CommOp::kAllReduce:
      return 2.0 * cost.RingCollectiveTime(payload, n, internode);
    case CommOp::kAllToAll:
      // CostModel's bytes_per_rank is the rank's full send buffer (1/n per
      // peer); the event records the per-destination block.
      return cost.AllToAllTime(payload * n, n, internode);
    case CommOp::kAllToAllV: {
      // Approximate with a balanced A2A moving the event's total volume.
      if (n <= 1) {
        return 0.0;
      }
      const int64_t per_rank =
          static_cast<int64_t>(event.wire_bytes) * n / (n - 1) / n;
      return cost.AllToAllTime(per_rank * n, n, internode);
    }
    case CommOp::kBroadcast:
      return cost.P2PTime(payload * (n - 1), internode);
    case CommOp::kExchangeScalars:
    case CommOp::kBarrier:
      return 0.0;
  }
  return 0.0;
}

CommCheckReport CrossCheckCommEvents(const std::vector<CommEvent>& events) {
  CommCheckReport report;
  for (const CommEvent& event : events) {
    uint64_t expected = 0;
    if (!AnalyticWireBytes(event, &expected)) {
      ++report.skipped;
      continue;
    }
    ++report.checked;
    if (expected != event.wire_bytes) {
      char buffer[256];
      std::snprintf(buffer, sizeof(buffer),
                    "%s[%s] rank %d/%d %lld x %s: recorded %llu wire bytes, "
                    "analytic %llu",
                    CommOpName(event.op), event.algorithm.c_str(), event.rank,
                    event.group_size, static_cast<long long>(event.elem_count),
                    event.elem_type.c_str(),
                    static_cast<unsigned long long>(event.wire_bytes),
                    static_cast<unsigned long long>(expected));
      report.mismatches.push_back(buffer);
    }
  }
  return report;
}

}  // namespace msmoe
