file(REMOVE_RECURSE
  "CMakeFiles/train_tiny_moe.dir/train_tiny_moe.cpp.o"
  "CMakeFiles/train_tiny_moe.dir/train_tiny_moe.cpp.o.d"
  "train_tiny_moe"
  "train_tiny_moe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_tiny_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
