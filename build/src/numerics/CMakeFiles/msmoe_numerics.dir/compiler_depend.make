# Empty compiler generated dependencies file for msmoe_numerics.
# This may be replaced when dependencies are built.
