// Pooled tensor/staging memory for the steady-state training step.
//
// Every hot-path buffer in the repo (Tensor storage, fused-op staging,
// comm-chunk scratch, grad-sync wire copies) is acquired from a global
// size-bucketed pool instead of the system heap. Freed blocks are kept in
// per-size-class free lists and handed back LIFO, so a training step whose
// allocation pattern matches the previous step's is served entirely from
// the pool: the second and later steps perform zero heap allocations.
//
// Design points:
//   * Size classes are powers of two (min 64 bytes). A block released with
//     size N is reusable by ANY later request whose class matches — e.g. a
//     [4, 8] tensor's block serves a later [8, 4] or [32] tensor.
//   * Acquired memory is UNINITIALIZED (possibly recycled contents). Callers
//     that need zeros must clear it themselves; Tensor's value constructor
//     does, Tensor::Uninit does not. Bitwise determinism is preserved
//     because every element a computation reads is either explicitly
//     zeroed or fully written first (see DESIGN.md "memory model").
//   * Thread-safe: one mutex per size class. Blocks may be released on a
//     different thread than they were acquired on (tensors created on rank
//     threads, destroyed by the main thread); the bucket mutex provides the
//     necessary happens-before for the recycled contents.
//   * Observability: MemStats counters (mirroring KernelStats) count
//     acquires, pool hits, heap (pool-miss) allocations, bytes, live bytes
//     and the high-water mark — globally and per MemoryScope phase. The
//     "zero hot-path heap allocations" gate in bench_memory and the trainer
//     regression test is `heap_allocs` staying flat across steps.
//   * SetArenaPoolingEnabled(false) turns the arena into a plain
//     malloc/free shim (every acquire is a heap alloc, every release a
//     free). bench_memory uses it to measure the before/after delta in one
//     binary.
#ifndef MSMOE_SRC_BASE_ARENA_H_
#define MSMOE_SRC_BASE_ARENA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace msmoe {

// ---------------------------------------------------------------------------
// Raw pooled allocation.
// ---------------------------------------------------------------------------

// Returns an uninitialized 64-byte-aligned block of at least `bytes` bytes.
// bytes == 0 returns nullptr. Never returns null for bytes > 0 (aborts on
// exhaustion like operator new).
void* ArenaAcquire(int64_t bytes);

// Returns a block to the pool. `bytes` must be the size passed to the
// matching ArenaAcquire (the size class is recomputed from it). p == nullptr
// is a no-op.
void ArenaRelease(void* p, int64_t bytes);

inline float* ArenaAcquireFloats(int64_t count) {
  return static_cast<float*>(ArenaAcquire(count * static_cast<int64_t>(sizeof(float))));
}
inline void ArenaReleaseFloats(float* p, int64_t count) {
  ArenaRelease(p, count * static_cast<int64_t>(sizeof(float)));
}

// When disabled the pool is bypassed entirely: acquires call the system
// allocator and releases free immediately. Blocks already sitting in the
// free lists stay there (ArenaTrim reclaims them). Default: enabled.
void SetArenaPoolingEnabled(bool enabled);
bool ArenaPoolingEnabled();

// Frees every block currently held in the free lists back to the system.
// Outstanding (live) blocks are unaffected. Mainly for benchmarks that want
// a cold pool, and for bounding memory after a large transient workload.
void ArenaTrim();

// ---------------------------------------------------------------------------
// MemStats: allocation telemetry (mirrors KernelStats in gemm_kernel.h).
// ---------------------------------------------------------------------------

struct MemPhaseSnapshot {
  std::string name;
  uint64_t acquires = 0;
  uint64_t pool_hits = 0;
  uint64_t heap_allocs = 0;  // pool misses that hit the system allocator
  uint64_t acquired_bytes = 0;
  double hit_rate() const {
    return acquires == 0 ? 1.0 : static_cast<double>(pool_hits) / static_cast<double>(acquires);
  }
};

struct MemStatsSnapshot {
  uint64_t acquires = 0;
  uint64_t pool_hits = 0;
  uint64_t heap_allocs = 0;
  uint64_t releases = 0;
  uint64_t acquired_bytes = 0;   // sum of requested bytes
  uint64_t heap_bytes = 0;       // sum of class bytes fetched from the heap
  int64_t live_bytes = 0;        // class bytes currently outstanding
  int64_t high_water_bytes = 0;  // peak of live_bytes since last reset
  std::vector<MemPhaseSnapshot> phases;  // per-MemoryScope breakdown
  double hit_rate() const {
    return acquires == 0 ? 1.0 : static_cast<double>(pool_hits) / static_cast<double>(acquires);
  }
};

// Snapshot of the global counters. Taking two snapshots around a region and
// differencing the monotonic fields gives that region's allocation profile.
MemStatsSnapshot GetMemStats();

// Zeroes the monotonic counters (acquires/hits/heap_allocs/bytes and the
// per-phase counters). live_bytes is preserved (blocks acquired before the
// reset will still be released after it); the high-water mark restarts at
// the current live level.
void ResetMemStats();

// Differences two snapshots' monotonic fields (after - before), including
// the per-phase rows (matched by name; phases absent from `before` count
// from zero). live_bytes/high_water_bytes carry `after`'s absolute values —
// they are levels, not counters. The step profiler uses this to attribute
// a window's allocation profile without resetting the global counters.
MemStatsSnapshot MemStatsDelta(const MemStatsSnapshot& before,
                               const MemStatsSnapshot& after);

// RAII phase label for the telemetry: arena traffic on THIS thread while the
// scope is alive is attributed to `phase` (a string literal; at most 32
// distinct phases, extras fold into "other"). Scopes nest; the innermost
// wins. Phase attribution is thread-local, so concurrent ranks inside the
// same scope name share one phase row.
class MemoryScope {
 public:
  explicit MemoryScope(const char* phase);
  ~MemoryScope();

  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;

 private:
  void* previous_;
};

// ---------------------------------------------------------------------------
// PooledBuffer: move-only uninitialized float buffer on the arena.
// ---------------------------------------------------------------------------
//
// A thin RAII owner for pipeline-lifetime staging (e.g. FusedPipeline's
// gather/partial staging) that wants pool reuse without Tensor's shape and
// value semantics. Resize is grow-only on capacity and never initializes.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  explicit PooledBuffer(int64_t count) { Resize(count); }
  ~PooledBuffer();

  PooledBuffer(PooledBuffer&& other) noexcept;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  // Ensures room for `count` floats; contents are unspecified after a grow.
  // size() reports the last requested count.
  void Resize(int64_t count);

  float* data() { return data_; }
  const float* data() const { return data_; }
  int64_t size() const { return size_; }

 private:
  float* data_ = nullptr;
  int64_t size_ = 0;
  int64_t capacity_ = 0;
};

// ---------------------------------------------------------------------------
// Workspace: per-thread scratch cache keyed by tag.
// ---------------------------------------------------------------------------
//
// For call sites whose scratch lifetime is one call (grad-sync wire copies,
// FP8 code/scale staging, async-comm chunk scratch): Floats/Bytes returns a
// buffer that stays owned by the workspace and is reused verbatim on the
// next call with the same tag. Capacity is grow-only per tag, so a shape
// change reuses the slot when it fits. Rank threads and comm-proxy threads
// are persistent (LIFO pool reuse), so ThreadWorkspace() hands every step
// the same buffers. Contents are unspecified on entry — treat every buffer
// as uninitialized.
class Workspace {
 public:
  Workspace() = default;
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // `tag` must be a process-lifetime string (string literal).
  float* Floats(const char* tag, int64_t count);
  double* Doubles(const char* tag, int64_t count);
  uint8_t* Bytes(const char* tag, int64_t count);

 private:
  void* Slot(const char* tag, int64_t bytes);

  struct Entry {
    void* data = nullptr;
    int64_t capacity = 0;
  };
  std::unordered_map<std::string, Entry> slots_;
};

// The calling thread's workspace (created on first use, released to the
// pool at thread exit).
Workspace& ThreadWorkspace();

}  // namespace msmoe

#endif  // MSMOE_SRC_BASE_ARENA_H_
