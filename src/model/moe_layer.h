// Single-rank reference MoE transformer layer (Fig 2 / Fig 20).
//
// Structure per layer:
//   hidden -> RMSNorm -> QKV projection -> RoPE -> causal GQA attention
//          -> output projection -> +residual
//          -> RMSNorm -> router (top-k) -> dispatch -> FC1/FC3 grouped GEMM
//          -> SwiGLU -> FC2 grouped GEMM -> weighted combine -> +residual
//
// The gating weight multiplies the FC2 *output* (weighted combine), the
// ordering §7 adopts to keep the SwiGLU numerics FP8-friendly.
//
// This module is the numerical ground truth the distributed executions in
// src/parallel must match exactly.
#ifndef MSMOE_SRC_MODEL_MOE_LAYER_H_
#define MSMOE_SRC_MODEL_MOE_LAYER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/model/attention.h"
#include "src/model/config.h"
#include "src/model/router.h"
#include "src/tensor/tensor.h"

namespace msmoe {

struct MoeLayerParams {
  Tensor ln1_gain;           // [h]
  Tensor w_qkv;              // [h, h(1 + 2/m)]
  Tensor w_out;              // [h, h]
  Tensor ln2_gain;           // [h]
  Tensor w_gate;             // [h, E]
  std::vector<Tensor> w1;    // per expert [h, f]  (SwiGLU gate proj)
  std::vector<Tensor> w3;    // per expert [h, f]  (SwiGLU linear proj)
  std::vector<Tensor> w2;    // per expert [f, h]

  static MoeLayerParams Init(const ModelConfig& config, Rng& rng);
  static MoeLayerParams ZerosLike(const ModelConfig& config);

  // Visits every parameter tensor with a stable name (for optimizers,
  // gradient sync, and checkpointing).
  void ForEach(const std::function<void(const std::string&, Tensor&)>& fn);
  void ForEachConst(const std::function<void(const std::string&, const Tensor&)>& fn) const;

  int64_t TotalElements() const;
  void Accumulate(const MoeLayerParams& other);  // this += other
};

struct MoeLayerCache {
  Tensor hidden_in;    // layer input [T, h]
  Tensor ln1_out;      // [T, h]
  Tensor ln1_inv_rms;  // [T]
  Tensor q, k, v;      // post-RoPE, [T, Hq*d] / [T, Hkv*d] flattened
  std::vector<AttentionCoreCache> attn;  // per sequence in the batch
  Tensor attn_out;     // attention output before Wo, [T, h]
  Tensor ln2_in;       // first residual sum [T, h]
  Tensor ln2_out;      // [T, h]
  Tensor ln2_inv_rms;  // [T]
  RoutingResult routing;
  DispatchPlan plan;
  Tensor ffn_in;       // dispatched rows [R, h]
  Tensor fc1_out;      // [R, f]
  Tensor fc3_out;      // [R, f]
  Tensor fc2_in;       // SwiGLU output [R, f]
  Tensor fc2_out;      // [R, h]
};

// hidden is [T, h] with T = batch * seq_len tokens (batch sequences of equal
// length). Returns the layer output [T, h]; fills cache for backward.
Tensor MoeLayerForward(const MoeLayerParams& params, const ModelConfig& config,
                       const RouterConfig& router, const Tensor& hidden, int64_t batch,
                       MoeLayerCache* cache);

struct MoeLayerGrads {
  MoeLayerParams dparams;
  Tensor dhidden;  // gradient w.r.t. the layer input
};

// dout is the gradient w.r.t. the layer output; includes the auxiliary
// balance-loss gradient when router.aux_loss_coeff > 0.
MoeLayerGrads MoeLayerBackward(const MoeLayerParams& params, const ModelConfig& config,
                               const RouterConfig& router, const MoeLayerCache& cache,
                               const Tensor& dout, int64_t batch);

}  // namespace msmoe

#endif  // MSMOE_SRC_MODEL_MOE_LAYER_H_
