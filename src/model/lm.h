// Small MoE language model: embedding -> MoE layers -> final RMSNorm ->
// LM head -> cross entropy. Used by the convergence experiments (Figs 17,
// 18, 19) and the examples; the simulator handles the full-size models.
#ifndef MSMOE_SRC_MODEL_LM_H_
#define MSMOE_SRC_MODEL_LM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/model/config.h"
#include "src/model/moe_layer.h"
#include "src/model/router.h"
#include "src/tensor/tensor.h"

namespace msmoe {

struct LmParams {
  Tensor embedding;                 // [V, h]
  std::vector<MoeLayerParams> layers;
  Tensor final_gain;                // [h]
  Tensor lm_head;                   // [h, V]

  static LmParams Init(const ModelConfig& config, Rng& rng);
  static LmParams ZerosLike(const ModelConfig& config);

  void ForEach(const std::function<void(const std::string&, Tensor&)>& fn);
  void ForEachConst(const std::function<void(const std::string&, const Tensor&)>& fn) const;
  // Pointers in ForEach order (for optimizer registration / grad lists).
  std::vector<Tensor*> TensorList();
  std::vector<const Tensor*> TensorListConst() const;

  int64_t TotalElements() const;
  void Accumulate(const LmParams& other);
  void Scale(float factor);
};

struct LmStepStats {
  double ce_loss = 0.0;
  double aux_loss = 0.0;
  double total_loss() const { return ce_loss + aux_loss; }
};

// Optional transform applied to the hidden states between layers in the
// forward pass (straight-through in backward). Used to emulate low-precision
// activation flows, e.g. FP8 per-token quantization (§7).
using ActivationTransform = std::function<void(Tensor&)>;

// Optional hook fired during the backward pass right after layer l's
// parameter gradients were accumulated into *grads (layers fire in backward
// order: num_layers-1 down to 0). Lets a data-parallel trainer start layer
// l's gradient sync while layers l-1..0 are still running backward (§5
// inter-op overlap). Only meaningful when the caller runs a single
// micro-batch — with gradient accumulation the layer grads are not final.
using LayerGradCallback = std::function<void(int64_t layer)>;

// Full forward + backward over `batch` sequences packed as token ids
// [batch * seq_len]; targets are the next-token ids, same layout. Gradients
// of the mean loss (CE + aux) are accumulated into *grads (caller zeroes or
// chains micro-batches for gradient accumulation).
LmStepStats LmForwardBackward(const LmParams& params, const ModelConfig& config,
                              const RouterConfig& router,
                              const std::vector<int64_t>& input_ids,
                              const std::vector<int64_t>& target_ids, int64_t batch,
                              LmParams* grads,
                              const ActivationTransform& activation_transform = nullptr,
                              const LayerGradCallback& on_layer_grads = nullptr);

// Forward only; returns mean CE loss (for eval).
double LmForwardLoss(const LmParams& params, const ModelConfig& config,
                     const RouterConfig& router, const std::vector<int64_t>& input_ids,
                     const std::vector<int64_t>& target_ids, int64_t batch,
                     const ActivationTransform& activation_transform = nullptr);

}  // namespace msmoe

#endif  // MSMOE_SRC_MODEL_LM_H_
