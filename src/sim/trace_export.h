// Chrome-trace (about://tracing, Perfetto) export of timelines.
//
// Production schedule debugging lives and dies by timeline visualization.
// Two sources serialize to the same Chrome trace-event JSON format:
//   1. simulated graph-executor timelines (SimOp + GraphResult) — streams
//      appear as threads, op categories as colors;
//   2. real threaded-run collective timelines (CommEvent, recorded by the
//      instrumented Communicator layer) — ranks appear as threads, each
//      event carries its wire bytes and algorithm in args.
// Both open directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing, so a simulated schedule and a live run can be inspected
// side by side with the same tooling.
#ifndef MSMOE_SRC_SIM_TRACE_EXPORT_H_
#define MSMOE_SRC_SIM_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/base/arena.h"
#include "src/base/status.h"
#include "src/comm/health.h"
#include "src/comm/telemetry.h"
#include "src/sim/graph.h"

namespace msmoe {

// Serializes one executed graph as a Chrome trace-event JSON document.
// Streams map to thread ids ("tid"), op categories to trace categories,
// durations are in microseconds (the trace format's native unit).
std::string ToChromeTrace(const std::vector<SimOp>& ops, const GraphResult& result,
                          const std::string& process_name = "msmoe-sim");

// Writes the trace to a file; fails with a Status on IO errors.
Status WriteChromeTrace(const std::string& path, const std::vector<SimOp>& ops,
                        const GraphResult& result,
                        const std::string& process_name = "msmoe-sim");

// Serializes recorded Communicator events as the same Chrome trace-event
// JSON: two threads per rank — tid 2r ("rank N") carries the main thread's
// synchronous collectives and compute spans, tid 2r+1 ("rank N (comm)") the
// comm-proxy thread's per-chunk async collectives, so comm/compute overlap
// is directly visible as two simultaneously busy lanes. Event name = op
// name, category = algorithm, ts/dur in microseconds since the telemetry
// epoch, args carry wire_bytes / elem_type / elem_count / group_size /
// primary (async chunks additionally logical_op / chunk / chunk_count).
//
// When a StragglerReport (src/comm/health) is supplied, its per-rank health
// verdicts are embedded in the same trace: flagged ranks are renamed to
// "rank N [STRAGGLER]" and every rank gets one instant event carrying its
// mean/max collective-entry lag, so the slow rank is visible on the very
// timeline it stalled.
//
// When comp_events (CommTelemetry::CompEvents()) is supplied, each span is
// emitted on its rank's main lane under category "compute".
//
// When mem (GetMemStats()) is supplied, one instant event per MemoryScope
// phase — plus a "mem total" event — is emitted on a dedicated "memory"
// lane, each carrying that phase's acquires / pool hits / heap (pool-miss)
// allocations / bytes and pool hit rate, so allocation behavior is
// inspectable on the same timeline as the collectives it rides along.
//
// When dispatch_events (CommTelemetry::DispatchEvents()) is supplied, each
// EP dispatch round is emitted as a span on a dedicated "dispatch" lane
// carrying the per-expert load profile (rows total / max and the
// max-over-mean imbalance), so routing skew is visible next to the
// all-to-alls it causes.
//
// When anomalies (obs AnomalyDetector verdicts) are supplied, each verdict
// is emitted as an instant event on a dedicated "anomaly" lane (kind as the
// event name, z-score / baseline / detail in args) — the online detector's
// pages land on the same timeline as the raw evidence.
//
// When drops (CommTelemetry::drop_counts()) reports total() > 0, a
// trace-metadata warning row "[WARNING] telemetry dropped events" is
// emitted carrying the per-kind drop counts, so a saturated ring buffer is
// impossible to mistake for a quiet run.
std::string CommEventsToChromeTrace(const std::vector<CommEvent>& events,
                                    const std::string& process_name = "msmoe-run",
                                    const StragglerReport* health = nullptr,
                                    const std::vector<CompEvent>* comp_events = nullptr,
                                    const MemStatsSnapshot* mem = nullptr,
                                    const std::vector<DispatchEvent>* dispatch_events = nullptr,
                                    const std::vector<AnomalyEvent>* anomalies = nullptr,
                                    const TelemetryDropCounts* drops = nullptr);

Status WriteCommTrace(const std::string& path, const std::vector<CommEvent>& events,
                      const std::string& process_name = "msmoe-run",
                      const StragglerReport* health = nullptr,
                      const std::vector<CompEvent>* comp_events = nullptr,
                      const MemStatsSnapshot* mem = nullptr,
                      const std::vector<DispatchEvent>* dispatch_events = nullptr,
                      const std::vector<AnomalyEvent>* anomalies = nullptr,
                      const TelemetryDropCounts* drops = nullptr);

}  // namespace msmoe

#endif  // MSMOE_SRC_SIM_TRACE_EXPORT_H_
