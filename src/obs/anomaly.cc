#include "src/obs/anomaly.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace msmoe {

AnomalyDetector::AnomalyDetector(AnomalyConfig config) : config_(config) {
  if (config_.window < 2) config_.window = 2;
  if (config_.min_samples < 2) config_.min_samples = 2;
  if (config_.min_samples > config_.window) config_.min_samples = config_.window;
}

void AnomalyDetector::set_world(int ranks) { world_ = std::max(1, ranks); }

void AnomalyDetector::Window::Push(double v) {
  if (samples.empty()) return;  // sized lazily by the detector
  samples[next] = v;
  next = (next + 1) % samples.size();
  if (count < samples.size()) ++count;
}

bool AnomalyDetector::Window::Ready(int min_samples) const {
  return count >= static_cast<size_t>(min_samples);
}

double AnomalyDetector::Window::Mean() const {
  // The ring is dense in [0, count); order is irrelevant for moments.
  double sum = 0.0;
  for (size_t i = 0; i < count; ++i) sum += samples[i];
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double AnomalyDetector::Window::Stddev(double mean) const {
  if (count < 2) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const double d = samples[i] - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(count - 1));
}

bool AnomalyDetector::Judge(Window* window, double value, AnomalyEvent::Kind kind,
                            const StepSample& sample,
                            std::vector<AnomalyEvent>* out) {
  if (window->samples.empty()) {
    window->samples.assign(static_cast<size_t>(config_.window), 0.0);
    window->next = 0;
    window->count = 0;
  }
  bool fired = false;
  if (window->Ready(config_.min_samples)) {
    const double mean = window->Mean();
    const double sd = window->Stddev(mean);
    const double delta = value - mean;
    // Floor the deviation scale so a near-constant baseline (sd -> 0)
    // cannot turn scheduler jitter into an infinite z-score.
    const double scale = std::max(sd, std::max(0.05 * mean, 1e-3));
    const double z = delta / scale;
    if (z >= config_.z_threshold && value >= config_.min_ratio * mean &&
        delta >= config_.min_delta_ms) {
      AnomalyEvent event;
      event.kind = kind;
      event.rank = sample.rank;
      event.step = sample.step;
      event.ts_us = sample.ts_us;
      event.value_ms = value;
      event.baseline_ms = mean;
      event.zscore = z;
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%.3fms vs baseline %.3fms (z=%.1f)",
                    value, mean, z);
      event.detail = buf;
      out->push_back(event);
      fired = true;
    }
  }
  // Anomalous samples stay out of the baseline so sustained regressions
  // keep firing rather than becoming the new normal.
  if (!fired) window->Push(value);
  return fired;
}

std::vector<AnomalyEvent> AnomalyDetector::Observe(const StepSample& sample) {
  std::vector<AnomalyEvent> fired;
  RankState& state = ranks_[sample.rank];
  bool suspicious = false;
  suspicious |= Judge(&state.step_ms, sample.step_ms,
                      AnomalyEvent::Kind::kStepTimeRegression, sample, &fired);
  suspicious |= Judge(&state.exposed_ms, sample.exposed_comm_ms,
                      AnomalyEvent::Kind::kExposedCommSpike, sample, &fired);

  if (world_ > 1) {
    PendingStep& pending = pending_[sample.step];
    pending.samples.push_back(sample);
    pending.suspicious |= suspicious;
    if (static_cast<int>(pending.samples.size()) >= world_) {
      if (pending.suspicious) {
        // The spiking rank is usually the victim (its barrier wait grew);
        // the culprit is whoever everyone waited for — the rank with the
        // outlying compute time this step.
        double mean = 0.0;
        const StepSample* worst = &pending.samples.front();
        for (const StepSample& s : pending.samples) {
          mean += s.compute_ms;
          if (s.compute_ms > worst->compute_ms) worst = &s;
        }
        mean /= static_cast<double>(pending.samples.size());
        if (mean > 0.0 && worst->compute_ms >= config_.straggler_ratio * mean) {
          AnomalyEvent event;
          event.kind = AnomalyEvent::Kind::kStragglerSuspect;
          event.rank = worst->rank;
          event.step = sample.step;
          event.ts_us = sample.ts_us;
          event.value_ms = worst->compute_ms;
          event.baseline_ms = mean;
          event.zscore =
              mean > 0.0 ? worst->compute_ms / mean : 0.0;
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "rank %d compute %.3fms vs step mean %.3fms (%.2fx)",
                        worst->rank, worst->compute_ms, mean,
                        worst->compute_ms / mean);
          event.detail = buf;
          fired.push_back(event);
          straggler_suspect_ = worst->rank;
        }
      }
      pending_.erase(sample.step);
      // Drop stale partial steps (e.g. from before an elastic shrink) so
      // the pending map cannot grow without bound.
      while (!pending_.empty() && pending_.begin()->first < sample.step) {
        pending_.erase(pending_.begin());
      }
    }
  }

  events_.insert(events_.end(), fired.begin(), fired.end());
  return fired;
}

void AnomalyDetector::Reset() {
  ranks_.clear();
  pending_.clear();
  events_.clear();
  straggler_suspect_ = -1;
}

}  // namespace msmoe
