// Distributed MoE language model over a model-parallel group: the complete
// numeric MegaScale-MoE stack.
//
// With sequence sharding, everything outside the MoE layer is token-local:
// rank r embeds its sequence slice, runs the §4.1 macro layers (SP attention
// + EP FFN + SAR) with their internal collectives, applies the final
// RMSNorm and LM head to its local tokens, and computes the local cross
// entropy. The global mean loss is the average of the rank losses (equal
// shards), so each rank scales its CE gradient by 1/n.
//
// Gradient completeness after one call:
//   - embedding, norms, attention, router, LM head: PARTIAL (local tokens;
//     sum across the MP group = the single-rank gradient — synchronized
//     hierarchically with DP in training, Appendix A.1),
//   - expert weights: COMPLETE on the owner rank, zero elsewhere.
#ifndef MSMOE_SRC_PARALLEL_DISTRIBUTED_LM_H_
#define MSMOE_SRC_PARALLEL_DISTRIBUTED_LM_H_

#include <cstdint>
#include <vector>

#include "src/model/config.h"
#include "src/model/lm.h"
#include "src/model/router.h"
#include "src/parallel/parallel_moe_layer.h"

namespace msmoe {

struct DistributedLmStats {
  double ce_loss = 0.0;   // mean CE over this rank's tokens
  double aux_loss = 0.0;  // balance loss over this rank's tokens
};

// input/target ids hold this rank's slice: [batch * seq_len / n] tokens laid
// out (b, t_local) where global position = rank * s_local + t_local.
// params holds the FULL model (replicated; experts used by owner only).
// Gradients of the GLOBAL mean loss are accumulated into *grads.
DistributedLmStats DistributedLmForwardBackward(
    const ShardContext& ctx, const ModelConfig& config, const RouterConfig& router,
    const ParallelMoeLayerOptions& options, const LmParams& params,
    const std::vector<int64_t>& input_ids_local, const std::vector<int64_t>& target_ids_local,
    int64_t batch, int64_t seq_len, LmParams* grads);

// Helper: rank r's slice of full [batch * seq_len] token ids.
std::vector<int64_t> ShardTokenIds(const std::vector<int64_t>& full_ids, int64_t batch,
                                   int64_t seq_len, int rank, int n);

}  // namespace msmoe

#endif  // MSMOE_SRC_PARALLEL_DISTRIBUTED_LM_H_
