// Cross-check of recorded Communicator telemetry against the analytic
// communication model — the §3 volume formulas as a runtime assertion.
//
// The CostModel predicts collective times from analytic wire volumes; the
// instrumented Communicator records what a live threaded run actually
// accounted. This utility closes the loop: for every recorded CommEvent it
// recomputes the expected volume for the same (op, algorithm, element
// count, group) and reports any event whose recorded wire bytes disagree.
// Ops with data-dependent volume (all-to-all-v) or multi-level algorithms
// are skipped — their volume is not a closed-form function of the event
// fields alone.
#ifndef MSMOE_SRC_SIM_COMM_CROSSCHECK_H_
#define MSMOE_SRC_SIM_COMM_CROSSCHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/comm/telemetry.h"
#include "src/sim/cost_model.h"

namespace msmoe {

// Closed-form wire volume for one event per the §3 formulas (ring AG/RS =
// (n-1)*b, ring AR = 2(n-1)*b, pairwise A2A = (n-1)*block, direct broadcast
// = (n-1)*b). Returns false when no closed form exists for the event's
// (op, algorithm) — all-to-all-v, hierarchical all-reduce, barriers.
bool AnalyticWireBytes(const CommEvent& event, uint64_t* bytes);

// Predicted wall-clock (us) for the event under the analytic cost model.
// Events without a time model (barrier, exchange-scalars) predict 0.
double PredictedTimeUs(const CostModel& cost, const CommEvent& event, bool internode);

struct CommCheckReport {
  int64_t checked = 0;  // events with a closed-form prediction
  int64_t skipped = 0;  // events without one (see AnalyticWireBytes)
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
};

// Verifies every event's recorded wire bytes against AnalyticWireBytes.
CommCheckReport CrossCheckCommEvents(const std::vector<CommEvent>& events);

struct ChunkCheckReport {
  int64_t logical_ops = 0;    // distinct chunked collectives aggregated
  int64_t chunk_events = 0;   // per-chunk primary events consumed
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
};

// Verifies that the per-chunk events of each chunked (async-lane) logical
// collective aggregate to exactly the monolithic op's accounting — the
// AccountOnce no-double-counting invariant:
//   * every logical op's chunks 0..chunk_count-1 are present exactly once
//     (no missing or duplicated chunk events);
//   * for ops with a closed-form volume (ring AG/RS), the SUM of per-chunk
//     wire bytes equals AnalyticWireBytes of the aggregate element count —
//     chunking must not inflate or lose a single wire byte;
//   * for data-dependent ops (all-to-all-v) completeness alone is checked.
// Only primary (rank 0) events are aggregated, mirroring AccountOnce.
ChunkCheckReport CrossCheckChunkAggregation(const std::vector<CommEvent>& events);

}  // namespace msmoe

#endif  // MSMOE_SRC_SIM_COMM_CROSSCHECK_H_
