// Table 3: strong-scaling training performance of the 352B MoE model on
// NVIDIA H800 GPUs — Megatron-LM vs MegaScale-MoE at a fixed global batch
// of 720 sequences, PP = 15, intra-node parallelism 8.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/core/sim_trainer.h"
#include "src/model/config.h"

namespace msmoe {
namespace {

void Run() {
  PrintHeader("Table 3 — strong scaling, Internal-352B on H800",
              "global batch 720, seq 8192, PP=15, TP=8 (Megatron) vs SP=EP=8 "
              "(MegaScale-MoE); simulated cluster (see DESIGN.md)");
  PrintPaperNote(
      "Megatron-LM 39.94s/151.1k tok/s at 240 GPUs down to 7.90s/746.6k at "
      "1440; MegaScale-MoE 21.61s/272.9k to 4.19s/1407.7k (1.81x-1.88x)");

  const ModelConfig model = ModelConfigByName("Internal-352B").value();
  TablePrinter table({"System", "#GPUs", "Iteration Time (s)", "Throughput (tokens/s)",
                      "Training Time for 1T Tokens (days)", "MFU (%)", "Speedup"});
  const int gpu_counts[] = {240, 480, 720, 960, 1440};

  for (int gpus : gpu_counts) {
    const ClusterSpec cluster = MakeCluster("H800", gpus).value();
    const IterationReport report =
        SimulateTraining(TrainJobConfig::Megatron(model, cluster, 15, 720)).value();
    table.AddRow({"Megatron-LM", TablePrinter::Fmt(static_cast<int64_t>(gpus)),
                  TablePrinter::Fmt(report.iteration_s, 2),
                  TablePrinter::Fmt(report.tokens_per_s / 1000.0, 1) + "k",
                  TablePrinter::Fmt(report.days_for_1t_tokens, 2),
                  TablePrinter::Fmt(report.mfu * 100.0, 2), "1.00x"});
  }
  for (int gpus : gpu_counts) {
    const ClusterSpec cluster = MakeCluster("H800", gpus).value();
    const IterationReport baseline =
        SimulateTraining(TrainJobConfig::Megatron(model, cluster, 15, 720)).value();
    const IterationReport report =
        SimulateTraining(TrainJobConfig::MegaScaleMoe(model, cluster, 15, 720)).value();
    table.AddRow({"MegaScale-MoE", TablePrinter::Fmt(static_cast<int64_t>(gpus)),
                  TablePrinter::Fmt(report.iteration_s, 2),
                  TablePrinter::Fmt(report.tokens_per_s / 1000.0, 1) + "k",
                  TablePrinter::Fmt(report.days_for_1t_tokens, 2),
                  TablePrinter::Fmt(report.mfu * 100.0, 2),
                  TablePrinter::Fmt(baseline.iteration_s / report.iteration_s, 2) + "x"});
  }
  table.Print("Strong scaling, 352B MoE, fixed global batch 720:");
}

}  // namespace
}  // namespace msmoe

int main() {
  msmoe::Run();
  return 0;
}
