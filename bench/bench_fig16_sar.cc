// Figure 16: ablation of selective activation rematerialization (SAR) —
// memory-usage breakdown and training MFU with and without SAR for
// Mixtral-8x7B and Mixtral-8x2B (the paper ran 128 H800 GPUs; the memory
// model follows Appendix A.2 and the speed comparison the layer programs).
#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/base/units.h"
#include "src/core/layer_program.h"
#include "src/core/parallelism_planner.h"
#include "src/model/config.h"

namespace msmoe {
namespace {

void Run() {
  PrintHeader("Figure 16 — selective activation rematerialization (SAR)",
              "memory breakdown (Appendix A.2 accounting) and per-layer speed "
              "with/without SAR, SP=EP=8 on H800");
  PrintPaperNote(
      "SAR cuts activation memory 45.5% / 57.2% (8x7B / 8x2B), total memory "
      "21.3% / 35%, with <0.5% performance difference");

  const CostModel cost(MakeCluster("H800", 128).value());
  TablePrinter table({"Model", "Variant", "Params+Grads+Opt (GiB)", "Activations (GiB)",
                      "Total (GiB)", "Activation savings (%)", "Total savings (%)",
                      "Layer time (us)", "Slowdown (%)"});
  for (const char* name : {"Mixtral-8x7B", "Mixtral-8x2B"}) {
    const ModelConfig model = ModelConfigByName(name).value();
    MemoryOptions options;
    options.mp_size = 8;
    options.dp_size = 16;  // 128 GPUs / 8
    options.batch_tokens = model.seq_len;
    options.sar = false;
    const MemoryFootprint no_sar = EstimateMemory(model, AttnStrategy::kSequenceParallel,
                                                  FfnStrategy::kExpertParallel, options);
    options.sar = true;
    const MemoryFootprint with_sar = EstimateMemory(model, AttnStrategy::kSequenceParallel,
                                                    FfnStrategy::kExpertParallel, options);

    ExecutionOptions exec = ExecutionOptions::MegaScale(model, 8);
    const LayerTimes sar_times = SimulateLayer(cost, model, exec, 1, model.seq_len, 8);
    exec.sar = false;
    const LayerTimes no_sar_times = SimulateLayer(cost, model, exec, 1, model.seq_len, 8);

    const double act_saving =
        (1.0 - with_sar.activation_bytes / no_sar.activation_bytes) * 100.0;
    const double total_saving =
        (1.0 - with_sar.TotalBytes() / no_sar.TotalBytes()) * 100.0;
    const double slowdown =
        (sar_times.total_us() / no_sar_times.total_us() - 1.0) * 100.0;

    table.AddRow({name, "No SAR", TablePrinter::Fmt(no_sar.StateBytes() / kGiB, 1),
                  TablePrinter::Fmt(no_sar.activation_bytes / kGiB, 1),
                  TablePrinter::Fmt(no_sar.TotalBytes() / kGiB, 1), "-", "-",
                  TablePrinter::Fmt(no_sar_times.total_us(), 0), "-"});
    table.AddRow({name, "MegaScale-MoE (SAR)",
                  TablePrinter::Fmt(with_sar.StateBytes() / kGiB, 1),
                  TablePrinter::Fmt(with_sar.activation_bytes / kGiB, 1),
                  TablePrinter::Fmt(with_sar.TotalBytes() / kGiB, 1),
                  TablePrinter::Fmt(act_saving, 1), TablePrinter::Fmt(total_saving, 1),
                  TablePrinter::Fmt(sar_times.total_us(), 0),
                  TablePrinter::Fmt(slowdown, 2)});
  }
  table.Print("SAR ablation (memory per GPU, one pipeline stage of layers):");
}

}  // namespace
}  // namespace msmoe

int main() {
  msmoe::Run();
  return 0;
}
