// §7 "Scale up": the compute/communication ratio R of the SwiGLU MoE FFN
// under SP+EP scaling (Eqs 5-9) — R depends only on the expert intermediate
// width and the hardware bandwidth/peak ratio, so MoE models can scale in
// parameter count indefinitely as long as h_ffn stays large enough.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/base/units.h"
#include "src/core/layer_program.h"
#include "src/core/scaleup_analysis.h"
#include "src/hw/gpu_spec.h"
#include "src/model/config.h"

namespace msmoe {
namespace {

void Run() {
  PrintHeader("§7 scale-up analysis — R = comp/comm for the MoE FFN (Eqs 5-9)",
              "R > 1 means expert computation hides dispatch+combine "
              "communication entirely");
  PrintPaperNote(
      "R is independent of expert count, top-k, hidden size, parallel size "
      "and batch; only h_ffn and bandwidth/peak matter");

  // Invariance demonstration on H800 effective rates.
  const ClusterSpec cluster = MakeCluster("H800", 8).value();
  const double bw = cluster.NvlinkBusBw();
  const double peak = cluster.GemmRate();
  TablePrinter invariance({"b", "s", "h", "top-k", "n", "R (exact)", "R (Eq 9)"});
  struct Point {
    int64_t b, s, h, k;
    int n;
  };
  for (const Point& p : {Point{1, 8192, 4096, 2, 8}, Point{4, 4096, 6144, 3, 8},
                         Point{2, 8192, 2048, 6, 8}, Point{1, 8192, 4096, 2, 16},
                         Point{1, 8192, 4096, 2, 64}}) {
    const ScaleupRatio r = ComputeScaleupRatio(p.b, p.s, p.h, 14336, p.k, p.n, bw, peak);
    invariance.AddRow({TablePrinter::Fmt(p.b), TablePrinter::Fmt(p.s),
                       TablePrinter::Fmt(p.h), TablePrinter::Fmt(p.k),
                       TablePrinter::Fmt(static_cast<int64_t>(p.n)),
                       TablePrinter::Fmt(r.exact_ratio, 2),
                       TablePrinter::Fmt(r.approx_ratio, 2)});
  }
  invariance.Print("R for h_ffn = 14336 across algorithm parameters (invariant):");

  // R per evaluation model and GPU, intra-node and inter-node.
  TablePrinter per_model({"Model", "h_ffn", "R on H800 (NVLink)", "R on H800 (RDMA)",
                          "R on A100 (NVLink)", "R on H20 (NVLink)"});
  for (const ModelConfig& model : EvaluationModels()) {
    auto ratio = [&](const char* gpu, bool internode) {
      const ClusterSpec c = MakeCluster(gpu, 16).value();
      return ScaleupRatioApprox(model.ffn_hidden,
                                internode ? c.NicBusBw() : c.NvlinkBusBw(), c.GemmRate());
    };
    per_model.AddRow({model.name, TablePrinter::Fmt(model.ffn_hidden),
                      TablePrinter::Fmt(ratio("H800", false), 2),
                      TablePrinter::Fmt(ratio("H800", true), 2),
                      TablePrinter::Fmt(ratio("A100", false), 2),
                      TablePrinter::Fmt(ratio("H20", false), 2)});
  }
  per_model.Print("R per model and fabric (R > 1 sustains efficiency):");

  // Simulated confirmation: run the EP FFN's layer program with the expert
  // group inside the node vs across RDMA. Models with R > 1 stay close to
  // their intra-node time (communication hides under expert GEMMs); models
  // with R < 1 degrade sharply.
  TablePrinter sim_table({"Model", "Layer intra-node (us)", "Layer cross-node (us)",
                          "Slowdown", "R across RDMA"});
  const CostModel layer_cost(MakeCluster("H800", 16).value());
  for (const char* name : {"Mixtral-8x7B", "Phi-3.5-MoE", "DeepSeekMoE"}) {
    const ModelConfig model = ModelConfigByName(name).value();
    ExecutionOptions intra = ExecutionOptions::MegaScale(model, 8);
    ExecutionOptions cross = intra;
    cross.ep_cross_node = true;
    const LayerTimes a = SimulateLayer(layer_cost, model, intra, 1, model.seq_len, 8);
    const LayerTimes b = SimulateLayer(layer_cost, model, cross, 1, model.seq_len, 8);
    const ClusterSpec c16 = MakeCluster("H800", 16).value();
    sim_table.AddRow({name, TablePrinter::Fmt(a.total_us(), 0),
                      TablePrinter::Fmt(b.total_us(), 0),
                      TablePrinter::Fmt(b.total_us() / a.total_us(), 2) + "x",
                      TablePrinter::Fmt(ScaleupRatioApprox(model.ffn_hidden, c16.NicBusBw(),
                                                           c16.GemmRate()),
                                        2)});
  }
  sim_table.Print("Simulated EP across the NVLink domain boundary:");

  TablePrinter widths({"GPU", "Min h_ffn, NVLink domain", "Min h_ffn, across RDMA"});
  for (const char* gpu : {"H800", "A100", "H20", "H100", "B200"}) {
    const GpuSpec spec = GpuSpecByName(gpu).value();
    widths.AddRow({gpu, TablePrinter::Fmt(MinEfficientFfnHidden(spec, false)),
                   TablePrinter::Fmt(MinEfficientFfnHidden(spec, true))});
  }
  widths.Print("Smallest expert width with R > 1 (datasheet rates):");
  std::printf(
      "note how production expert widths (14336-18304) clear the RDMA "
      "threshold on Hopper — the §7 argument for scaling beyond the NVLink "
      "domain.\n");
}

}  // namespace
}  // namespace msmoe

int main() {
  msmoe::Run();
  return 0;
}
