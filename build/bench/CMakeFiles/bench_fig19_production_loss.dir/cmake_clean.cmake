file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_production_loss.dir/bench_fig19_production_loss.cc.o"
  "CMakeFiles/bench_fig19_production_loss.dir/bench_fig19_production_loss.cc.o.d"
  "bench_fig19_production_loss"
  "bench_fig19_production_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_production_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
