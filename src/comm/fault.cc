#include "src/comm/fault.h"

#include "src/base/logging.h"
#include "src/base/rng.h"

namespace msmoe {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSlowRank:
      return "slow_rank";
    case FaultKind::kCrashAtOp:
      return "crash_at_op";
    case FaultKind::kBitFlip:
      return "bit_flip";
  }
  return "unknown";
}

void FaultPlan::AddSlowRank(int rank, double delay_us, int64_t from_op,
                            int64_t num_ops) {
  MSMOE_CHECK_GE(rank, 0);
  MSMOE_CHECK_GT(delay_us, 0.0);
  std::lock_guard<std::mutex> lock(mu_);
  specs_.push_back({FaultKind::kSlowRank, rank, from_op, delay_us, num_ops});
  fired_.push_back(false);
}

void FaultPlan::AddCrash(int rank, int64_t at_op) {
  MSMOE_CHECK_GE(rank, 0);
  std::lock_guard<std::mutex> lock(mu_);
  specs_.push_back({FaultKind::kCrashAtOp, rank, at_op, 0.0, 1});
  fired_.push_back(false);
}

void FaultPlan::AddBitFlip(int rank, int64_t at_op) {
  MSMOE_CHECK_GE(rank, 0);
  std::lock_guard<std::mutex> lock(mu_);
  specs_.push_back({FaultKind::kBitFlip, rank, at_op, 0.0, 1});
  fired_.push_back(false);
}

FaultAction FaultPlan::OnCollective(int rank, int64_t op_index) {
  FaultAction action;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& spec = specs_[i];
    if (spec.rank != rank) {
      continue;
    }
    switch (spec.kind) {
      case FaultKind::kSlowRank:
        if (op_index >= spec.at_op &&
            (spec.num_ops < 0 || op_index < spec.at_op + spec.num_ops)) {
          action.delay_us += spec.delay_us;
          ++delays_fired_;
        }
        break;
      case FaultKind::kCrashAtOp:
        if (!fired_[i] && op_index == spec.at_op) {
          fired_[i] = true;
          ++crashes_fired_;
          action.crash = true;
        }
        break;
      case FaultKind::kBitFlip:
        if (!fired_[i] && op_index == spec.at_op) {
          fired_[i] = true;
          ++bit_flips_fired_;
          action.corrupt = true;
          // Stable per-(rank, op) bit choice regardless of spec order.
          action.corrupt_seed = seed_ ^ (static_cast<uint64_t>(rank) * 0x9E3779B97F4A7C15ULL +
                                         static_cast<uint64_t>(op_index));
        }
        break;
    }
  }
  return action;
}

int64_t FaultPlan::crashes_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashes_fired_;
}

int64_t FaultPlan::bit_flips_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bit_flips_fired_;
}

int64_t FaultPlan::delays_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delays_fired_;
}

void FlipOneBit(void* buffer, int64_t bytes, uint64_t seed) {
  if (bytes <= 0) {
    return;
  }
  Rng rng(seed);
  const uint64_t byte = rng.NextIndex(static_cast<uint64_t>(bytes));
  const uint64_t bit = rng.NextIndex(8);
  static_cast<uint8_t*>(buffer)[byte] ^= static_cast<uint8_t>(1u << bit);
}

}  // namespace msmoe
