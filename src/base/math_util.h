// Small integer/float helpers shared across modules.
#ifndef MSMOE_SRC_BASE_MATH_UTIL_H_
#define MSMOE_SRC_BASE_MATH_UTIL_H_

#include <cmath>
#include <cstdint>

namespace msmoe {

constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

constexpr int64_t AlignUp(int64_t value, int64_t alignment) {
  return CeilDiv(value, alignment) * alignment;
}

// Relative difference |a-b| / max(|a|, |b|, eps); symmetric, safe near zero.
inline double RelativeDiff(double a, double b, double eps = 1e-12) {
  const double denom = std::fmax(std::fmax(std::fabs(a), std::fabs(b)), eps);
  return std::fabs(a - b) / denom;
}

// True when a and b agree to within atol + rtol * |b| (numpy allclose rule).
inline bool AlmostEqual(double a, double b, double rtol = 1e-5, double atol = 1e-8) {
  return std::fabs(a - b) <= atol + rtol * std::fabs(b);
}

}  // namespace msmoe

#endif  // MSMOE_SRC_BASE_MATH_UTIL_H_
