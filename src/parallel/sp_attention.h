// Sequence-parallel (DeepSpeed-Ulysses-style) attention, §3.1.
//
// Each of the n ranks holds s/n contiguous tokens of every sequence and a
// full replica of the attention weights. Forward:
//   local QKV projection -> RoPE (global positions) -> all-to-all that
//   re-partitions from sequence-sharded to head-sharded -> full-sequence
//   attention on Hq/n local heads -> all-to-all back -> local output
//   projection.
// Communication per token is h(1+2/m)/n + h/n activations (Eq 2), vs TP's
// full 2bsh(n-1)/n (Eq 1).
//
// Weight gradients returned are the *partial* sums over local tokens; the
// caller synchronizes them across the SP group (hierarchically with DP in
// real training, see src/comm/hierarchical.h).
#ifndef MSMOE_SRC_PARALLEL_SP_ATTENTION_H_
#define MSMOE_SRC_PARALLEL_SP_ATTENTION_H_

#include <cstdint>
#include <vector>

#include "src/comm/communicator.h"
#include "src/model/attention.h"
#include "src/model/config.h"
#include "src/tensor/tensor.h"

namespace msmoe {

struct SpAttentionCache {
  // Head-sharded, full-sequence, post-RoPE tensors: [b*s, Hq/n*d] etc.
  Tensor q_heads, k_heads, v_heads;
  std::vector<AttentionCoreCache> attn;  // per sequence
  Tensor attn_heads;    // attention output, head-sharded [b*s, Hq/n*d]
  Tensor attn_local;    // after the second A2A, [b*s/n, h]
  Tensor ln_in_local;   // module input (needed for dW_qkv)
};

// x_local: [batch * s_local, h] where rows [b*s_local, (b+1)*s_local) are
// tokens [rank*s_local, (rank+1)*s_local) of sequence b. seq_len is the
// GLOBAL sequence length. Requires Hq % n == 0 and Hkv % n == 0.
// Returns the attention block output (after Wo), same shape as x_local.
Tensor SpAttentionForward(const ShardContext& ctx, const ModelConfig& config,
                          const Tensor& w_qkv, const Tensor& w_out, const Tensor& x_local,
                          int64_t batch, int64_t seq_len, SpAttentionCache* cache);

struct SpAttentionGrads {
  Tensor dx_local;
  Tensor dw_qkv;  // partial (local tokens); sync across SP group to total
  Tensor dw_out;
};

SpAttentionGrads SpAttentionBackward(const ShardContext& ctx, const ModelConfig& config,
                                     const Tensor& w_qkv, const Tensor& w_out,
                                     const Tensor& dy_local, int64_t batch, int64_t seq_len,
                                     const SpAttentionCache& cache);

}  // namespace msmoe

#endif  // MSMOE_SRC_PARALLEL_SP_ATTENTION_H_
