# Empty compiler generated dependencies file for msmoe_hw.
# This may be replaced when dependencies are built.
