#include "src/model/config.h"

namespace msmoe {

int64_t ModelConfig::AttentionParams() const {
  return hidden * qkv_out_dim() + hidden * hidden + 2 * hidden;
}

int64_t ModelConfig::RouterParams() const { return hidden * num_experts; }

int64_t ModelConfig::ExpertParams() const { return num_experts * 3 * hidden * ffn_hidden; }

int64_t ModelConfig::LayerParams() const {
  return AttentionParams() + RouterParams() + ExpertParams();
}

int64_t ModelConfig::TotalParams() const {
  return num_layers * LayerParams() + 2 * vocab * hidden;  // embedding + LM head
}

int64_t ModelConfig::ActivatedParamsPerToken() const {
  return num_layers * (AttentionParams() + RouterParams() + top_k * 3 * hidden * ffn_hidden) +
         2 * vocab * hidden;
}

int64_t ModelConfig::AttentionGemmFlopsPerToken() const {
  return 2 * hidden * qkv_out_dim() + 2 * hidden * hidden;
}

int64_t ModelConfig::AttentionCoreFlopsPerToken() const {
  // Causal attention touches s/2 keys on average: 2 GEMMs (QK^T and PV) of
  // 2*h*(s/2) FLOPs per token.
  return 2 * 2 * hidden * (seq_len / 2);
}

int64_t ModelConfig::ExpertFlopsPerToken() const {
  return top_k * 3 * 2 * hidden * ffn_hidden;
}

int64_t ModelConfig::LayerFlopsPerToken() const {
  return AttentionGemmFlopsPerToken() + AttentionCoreFlopsPerToken() +
         2 * hidden * num_experts + ExpertFlopsPerToken();
}

int64_t ModelConfig::ModelFlopsPerToken() const {
  // Backward is ~2x forward for GEMM work.
  return 3 * (num_layers * LayerFlopsPerToken() + 2 * hidden * vocab);
}

double ModelConfig::ActivationBytesFull(int64_t batch_tokens, int64_t mp_size) const {
  const double n = static_cast<double>(mp_size);
  const double k = static_cast<double>(top_k);
  const double f = static_cast<double>(ffn_hidden) / static_cast<double>(hidden);
  const double m = static_cast<double>(gqa_ratio);
  const double elements = (2.0 * n + 2.0 * k + 3.0 * k * f + 12.0 + 5.0 / m) *
                          static_cast<double>(batch_tokens) * static_cast<double>(hidden) / n;
  return elements * 2.0;  // BF16
}

double ModelConfig::ActivationBytesWithSar(int64_t batch_tokens, int64_t mp_size) const {
  const double n = static_cast<double>(mp_size);
  const double k = static_cast<double>(top_k);
  const double f = static_cast<double>(ffn_hidden) / static_cast<double>(hidden);
  const double m = static_cast<double>(gqa_ratio);
  const double elements = (2.0 * k * f + 4.0 + 2.0 / m) * static_cast<double>(batch_tokens) *
                          static_cast<double>(hidden) / n;
  return elements * 2.0;
}

namespace {

// Table 2: #layers, h, #heads, m, h_ffn, #experts, top-k. Plus the Fig 16 /
// Fig 17 / Fig 18 auxiliary models with representative shapes.
std::vector<ModelConfig> BuildModels() {
  auto make = [](std::string name, int64_t layers, int64_t h, int64_t heads, int64_t m,
                 int64_t ffn, int64_t experts, int64_t k) {
    ModelConfig config;
    config.name = std::move(name);
    config.num_layers = layers;
    config.hidden = h;
    config.num_heads = heads;
    config.gqa_ratio = m;
    config.ffn_hidden = ffn;
    config.num_experts = experts;
    config.top_k = k;
    return config;
  };
  return {
      make("Internal-352B", 60, 4096, 32, 4, 14336, 32, 3),
      make("Mixtral-8x7B", 32, 4096, 32, 4, 14336, 8, 2),
      make("Mixtral-8x22B", 56, 6144, 48, 6, 16384, 8, 2),
      make("Hunyuan-Large", 64, 6400, 80, 10, 18304, 16, 1),
      make("Phi-3.5-MoE", 32, 4096, 32, 4, 6400, 16, 2),
      make("DeepSeekMoE", 28, 2048, 16, 1, 1408, 64, 6),
      // Fig 16's second model.
      make("Mixtral-8x2B", 24, 2048, 16, 4, 7168, 8, 2),
      // Convergence-experiment stand-ins (Figs 17/18).
      make("Internal-7B", 24, 2048, 16, 4, 5632, 16, 2),
      make("Internal-35B", 32, 3072, 24, 4, 8192, 16, 2),
  };
}

}  // namespace

Result<ModelConfig> ModelConfigByName(const std::string& name) {
  static const std::vector<ModelConfig> models = BuildModels();
  for (const ModelConfig& model : models) {
    if (model.name == name) {
      return model;
    }
  }
  return InvalidArgument("unknown model: " + name);
}

const std::vector<ModelConfig>& EvaluationModels() {
  static const std::vector<ModelConfig> models = [] {
    std::vector<ModelConfig> all = BuildModels();
    all.resize(6);  // the six Table 2 rows, in order (M1-M6 of Fig 15)
    return all;
  }();
  return models;
}

ModelConfig TinyMoeConfig(int64_t num_experts, int64_t top_k) {
  ModelConfig config;
  config.name = "tiny";
  config.num_layers = 2;
  config.hidden = 32;
  config.num_heads = 4;
  config.gqa_ratio = 2;
  config.ffn_hidden = 48;
  config.num_experts = num_experts;
  config.top_k = top_k;
  config.vocab = 64;
  config.seq_len = 16;
  return config;
}

}  // namespace msmoe
