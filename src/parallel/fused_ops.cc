#include "src/parallel/fused_ops.h"

#include <algorithm>
#include <vector>

#include "src/base/logging.h"
#include "src/base/math_util.h"
#include "src/base/parallel_for.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {

Tensor FusedAllGatherGemm(const ShardContext& ctx, const Tensor& x_local, const Tensor& w,
                          int64_t row_tile) {
  MSMOE_CHECK_EQ(x_local.ndim(), 2);
  MSMOE_CHECK_EQ(w.ndim(), 2);
  MSMOE_CHECK_EQ(x_local.dim(1), w.dim(0));
  MSMOE_CHECK_GT(row_tile, 0);
  const int n = ctx.size();
  const int64_t rows_local = x_local.dim(0);
  const int64_t k = x_local.dim(1);
  const int64_t cols = w.dim(1);

  // "Arrival buffer": the all-gather delivers source-rank chunks; the ring
  // order seen by rank r is r, r+1, ..., r-1 (own chunk is already local).
  std::vector<float> gathered(static_cast<size_t>(n) * rows_local * k);
  ctx.comm->AllGather(ctx.rank, x_local.data(), gathered.data(), rows_local * k);

  Tensor y({static_cast<int64_t>(n) * rows_local, cols});
  for (int step = 0; step < n; ++step) {
    const int src = (ctx.rank + step) % n;  // arrival order
    const float* chunk = gathered.data() + static_cast<int64_t>(src) * rows_local * k;
    // Tile the chunk's GEMM: each tile is "signaled" independently.
    for (int64_t tile_begin = 0; tile_begin < rows_local; tile_begin += row_tile) {
      const int64_t tile_rows = std::min(row_tile, rows_local - tile_begin);
      Gemm(false, false, tile_rows, cols, k, 1.0f, chunk + tile_begin * k, w.data(), 0.0f,
           y.data() + (static_cast<int64_t>(src) * rows_local + tile_begin) * cols);
    }
  }
  return y;
}

Tensor FusedGemmReduceScatter(const ShardContext& ctx, const Tensor& x_local,
                              const Tensor& w_shard, int64_t row_tile) {
  MSMOE_CHECK_EQ(x_local.ndim(), 2);
  MSMOE_CHECK_EQ(x_local.dim(1), w_shard.dim(0));
  MSMOE_CHECK_GT(row_tile, 0);
  const int n = ctx.size();
  const int64_t rows = x_local.dim(0);
  MSMOE_CHECK_EQ(rows % n, 0);
  const int64_t k_shard = x_local.dim(1);
  const int64_t cols = w_shard.dim(1);
  const int64_t rows_out = rows / n;

  Tensor y_local({rows_out, cols});
  // Tile along the output-row dimension. Each tile's partial GEMM completes,
  // then its reduce-scatter is issued — tile communications interleave with
  // the next tile's computation on a GPU; here the dataflow equivalence is
  // the contract. Tiles must align with the reduce-scatter chunking, so the
  // tile unit is rows_out rows split further by row_tile.
  std::vector<float> partial(static_cast<size_t>(rows) * cols);
  std::vector<float> tile_out(static_cast<size_t>(row_tile) * cols);
  for (int64_t tile_begin = 0; tile_begin < rows_out; tile_begin += row_tile) {
    const int64_t tile_rows = std::min(row_tile, rows_out - tile_begin);
    // Compute this tile's partial for EVERY destination chunk (the GEMM
    // covers all rows whose reduce-scatter lands in this tile position).
    for (int dst = 0; dst < n; ++dst) {
      const int64_t row0 = static_cast<int64_t>(dst) * rows_out + tile_begin;
      Gemm(false, false, tile_rows, cols, k_shard, 1.0f, x_local.data() + row0 * k_shard,
           w_shard.data(), 0.0f, partial.data() + row0 * cols);
    }
    // Issue the tile's reduce-scatter: each member contributes its partial
    // rows for every destination; member dst receives the summed tile.
    std::vector<float> send(static_cast<size_t>(n) * tile_rows * cols);
    for (int dst = 0; dst < n; ++dst) {
      const int64_t row0 = static_cast<int64_t>(dst) * rows_out + tile_begin;
      std::copy(partial.data() + row0 * cols, partial.data() + (row0 + tile_rows) * cols,
                send.data() + static_cast<int64_t>(dst) * tile_rows * cols);
    }
    tile_out.resize(static_cast<size_t>(tile_rows) * cols);
    ctx.comm->ReduceScatter(ctx.rank, send.data(), tile_out.data(), tile_rows * cols);
    std::copy(tile_out.begin(), tile_out.begin() + tile_rows * cols,
              y_local.data() + tile_begin * cols);
  }
  return y_local;
}

Tensor FusedAllGatherScatterGroupedGemm(const ShardContext& ctx, const Tensor& x_local,
                                        const std::vector<int64_t>& token_expert,
                                        const std::vector<Tensor>& expert_weights,
                                        int64_t experts_per_rank,
                                        std::vector<int64_t>* row_token) {
  const int n = ctx.size();
  const int64_t t_local = x_local.dim(0);
  const int64_t h = x_local.dim(1);
  MSMOE_CHECK_EQ(static_cast<int64_t>(token_expert.size()), t_local);
  const int64_t cols = expert_weights[0].dim(1);

  // Exchange tokens and routing chunk by chunk (arrival order = ring from
  // own rank, matching FusedAllGatherGemm).
  std::vector<float> x_all(static_cast<size_t>(n) * t_local * h);
  ctx.comm->AllGather(ctx.rank, x_local.data(), x_all.data(), t_local * h);
  std::vector<int64_t> expert_all(static_cast<size_t>(n) * t_local);
  ctx.comm->AllGather(ctx.rank, token_expert.data(), expert_all.data(), t_local);

  // Local scatter fused with arrival: as each source chunk lands, append its
  // rows routed to local experts into per-expert buckets. Iterating sources
  // in ring order yields rows sorted by (expert, source-arrival) — the §4.2
  // order that minimizes per-tile dependency count.
  const int64_t e_first = static_cast<int64_t>(ctx.rank) * experts_per_rank;
  std::vector<std::vector<int64_t>> bucket(static_cast<size_t>(experts_per_rank));
  for (int step = 0; step < n; ++step) {
    const int src = (ctx.rank + step) % n;
    for (int64_t t = 0; t < t_local; ++t) {
      const int64_t global_token = static_cast<int64_t>(src) * t_local + t;
      const int64_t e = expert_all[static_cast<size_t>(global_token)] - e_first;
      if (e >= 0 && e < experts_per_rank) {
        bucket[static_cast<size_t>(e)].push_back(global_token);
      }
    }
  }

  row_token->clear();
  for (const auto& rows : bucket) {
    row_token->insert(row_token->end(), rows.begin(), rows.end());
  }
  const int64_t total_rows = static_cast<int64_t>(row_token->size());
  Tensor y({total_rows, cols});

  // GroupedGEMM: each expert's GEMM runs once its rows are complete (after
  // the last chunk that contributes to it — here, bucket-by-bucket). The
  // output row offsets are fixed up front, so expert groups can split across
  // the intra-rank worker pool with disjoint output rows.
  std::vector<int64_t> out_begin(static_cast<size_t>(experts_per_rank) + 1, 0);
  for (int64_t e = 0; e < experts_per_rank; ++e) {
    out_begin[static_cast<size_t>(e) + 1] =
        out_begin[static_cast<size_t>(e)] +
        static_cast<int64_t>(bucket[static_cast<size_t>(e)].size());
  }
  ParallelFor(experts_per_rank, /*grain=*/1, [&](int64_t e0, int64_t e1) {
    for (int64_t e = e0; e < e1; ++e) {
      const auto& rows = bucket[static_cast<size_t>(e)];
      if (rows.empty()) {
        continue;
      }
      Tensor ffn_in({static_cast<int64_t>(rows.size()), h});
      for (size_t i = 0; i < rows.size(); ++i) {
        std::copy(x_all.data() + rows[i] * h, x_all.data() + (rows[i] + 1) * h,
                  ffn_in.data() + static_cast<int64_t>(i) * h);
      }
      const Tensor& w = expert_weights[static_cast<size_t>(e_first + e)];
      Gemm(false, false, static_cast<int64_t>(rows.size()), cols, h, 1.0f, ffn_in.data(),
           w.data(), 0.0f, y.data() + out_begin[static_cast<size_t>(e)] * cols);
    }
  });
  return y;
}

}  // namespace msmoe
