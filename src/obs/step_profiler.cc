#include "src/obs/step_profiler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/comm/health.h"
#include "src/sim/trace_export.h"
#include "src/tensor/gemm_kernel.h"

namespace msmoe {
namespace {

// Calibrates a single-thread peak FLOP/s for the MFU denominator: best rate
// over a few blocked-GEMM bursts at a cache-friendly shape. Deliberately
// short (a few ms) — MFU needs a stable yardstick, not a perfect roofline.
double CalibratePeakFlops() {
  constexpr int64_t kDim = 192;
  const int64_t elems = kDim * kDim;
  std::vector<float> a(static_cast<size_t>(elems), 1.0f);
  std::vector<float> b(static_cast<size_t>(elems), 1.0f);
  std::vector<float> c(static_cast<size_t>(elems), 0.0f);
  const double flops = 2.0 * static_cast<double>(kDim) * kDim * kDim;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    GemmBlocked(false, false, kDim, kDim, kDim, 1.0f, a.data(), b.data(), 0.0f,
                c.data());
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (seconds > 0.0) best = std::max(best, flops / seconds);
  }
  return best > 0.0 ? best : 1e9;
}

void AppendField(std::string* out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.17g,", key, value);
  *out += buf;
}

void AppendField(std::string* out, const char* key, int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld,", key,
                static_cast<long long>(value));
  *out += buf;
}

// Pulls `"key":<number>` out of a JSON object line. Flat numeric schema, so
// a scan is all the parsing metrics.jsonl needs.
bool FindNumber(const std::string& line, const char* key, double* value) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  return std::sscanf(line.c_str() + pos + needle.size(), "%lf", value) == 1;
}

}  // namespace

std::string StepReportToJson(const StepReport& r) {
  std::string out = "{";
  AppendField(&out, "step", r.step);
  AppendField(&out, "rank", static_cast<int64_t>(r.rank));
  AppendField(&out, "ts_us", r.ts_us);
  AppendField(&out, "step_ms", r.step_ms);
  AppendField(&out, "compute_ms", r.compute_ms);
  AppendField(&out, "comm_ms", r.comm_ms);
  AppendField(&out, "exposed_comm_ms", r.exposed_comm_ms);
  AppendField(&out, "bubble_ms", r.bubble_ms);
  AppendField(&out, "gemm_gflop", r.gemm_gflop);
  AppendField(&out, "achieved_gflops", r.achieved_gflops);
  AppendField(&out, "mfu", r.mfu);
  AppendField(&out, "wire_bytes", static_cast<int64_t>(r.wire_bytes));
  AppendField(&out, "collectives", r.collectives);
  AppendField(&out, "expert_imbalance", r.expert_imbalance);
  AppendField(&out, "dispatch_rows", r.dispatch_rows);
  AppendField(&out, "pool_hit_rate", r.pool_hit_rate);
  AppendField(&out, "heap_allocs", static_cast<int64_t>(r.heap_allocs));
  AppendField(&out, "retries", r.retries);
  AppendField(&out, "evictions", r.evictions);
  AppendField(&out, "loss", r.loss);
  out.back() = '}';  // replace trailing comma
  return out;
}

bool ParseStepReportJson(const std::string& line, StepReport* report) {
  double v = 0.0;
  if (!FindNumber(line, "step", &v)) return false;
  report->step = static_cast<int64_t>(v);
  if (!FindNumber(line, "rank", &v)) return false;
  report->rank = static_cast<int>(v);
  struct Field {
    const char* key;
    double* dst;
  };
  double wire = 0.0, collectives = 0.0, rows = 0.0, heap = 0.0, retries = 0.0,
         evictions = 0.0;
  const Field fields[] = {
      {"ts_us", &report->ts_us},
      {"step_ms", &report->step_ms},
      {"compute_ms", &report->compute_ms},
      {"comm_ms", &report->comm_ms},
      {"exposed_comm_ms", &report->exposed_comm_ms},
      {"bubble_ms", &report->bubble_ms},
      {"gemm_gflop", &report->gemm_gflop},
      {"achieved_gflops", &report->achieved_gflops},
      {"mfu", &report->mfu},
      {"wire_bytes", &wire},
      {"collectives", &collectives},
      {"expert_imbalance", &report->expert_imbalance},
      {"dispatch_rows", &rows},
      {"pool_hit_rate", &report->pool_hit_rate},
      {"heap_allocs", &heap},
      {"retries", &retries},
      {"evictions", &evictions},
      {"loss", &report->loss},
  };
  for (const Field& field : fields) {
    if (!FindNumber(line, field.key, field.dst)) return false;
  }
  report->wire_bytes = static_cast<uint64_t>(wire);
  report->collectives = static_cast<int64_t>(collectives);
  report->dispatch_rows = static_cast<int64_t>(rows);
  report->heap_allocs = static_cast<uint64_t>(heap);
  report->retries = static_cast<int64_t>(retries);
  report->evictions = static_cast<int64_t>(evictions);
  return true;
}

StepProfiler::StepProfiler(StepProfilerConfig config)
    : config_(std::move(config)), detector_(config_.anomaly) {
  detector_.set_world(config_.world);
  if (config_.enabled) {
    peak_flops_per_sec_ = config_.peak_flops_per_sec > 0.0
                              ? config_.peak_flops_per_sec
                              : CalibratePeakFlops();
    MetricsRegistry& r = MetricsRegistry::Global();
    ids_.steps = r.Counter("obs.steps", "Profiled rank-steps");
    ids_.step_ms = r.Histogram(
        "obs.step_ms", "Per-rank step wall time (ms)",
        {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0});
    ids_.exposed_ms = r.Histogram(
        "obs.exposed_comm_ms", "Per-rank exposed (non-overlapped) comm (ms)",
        {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0});
    ids_.anomalies = r.Counter("obs.anomalies", "Anomaly detector verdicts");
    ids_.retries = r.Counter("obs.retries", "Recovery retries observed");
    ids_.evictions = r.Counter("obs.evictions", "Elastic rank evictions");
    ids_.mfu = r.Gauge("obs.last_mfu", "Most recent per-rank MFU");
  }
}

int StepProfiler::world() const {
  std::lock_guard<std::mutex> lock(mu_);
  return detector_.world();
}

void StepProfiler::set_world(int ranks) {
  std::lock_guard<std::mutex> lock(mu_);
  detector_.set_world(ranks);
}

void StepProfiler::NoteRetry() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++retries_;
  }
  MetricsRegistry::Global().Add(ids_.retries, 1.0);
}

void StepProfiler::NoteEviction() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++evictions_;
  }
  MetricsRegistry::Global().Add(ids_.evictions, 1.0);
}

int StepProfiler::StragglerSuspect() const {
  std::lock_guard<std::mutex> lock(mu_);
  return detector_.straggler_suspect();
}

std::vector<StepReport> StepProfiler::reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

std::vector<AnomalyEvent> StepProfiler::anomalies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return detector_.events();
}

void StepProfiler::Submit(StepReport report) {
  std::vector<AnomalyEvent> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.retries = retries_;
    report.evictions = evictions_;
    reports_.push_back(report);
    StepSample sample;
    sample.rank = report.rank;
    sample.step = report.step;
    sample.ts_us = report.ts_us;
    sample.step_ms = report.step_ms;
    sample.compute_ms = report.compute_ms;
    sample.exposed_comm_ms = report.exposed_comm_ms;
    fired = detector_.Observe(sample);
  }
  MetricsRegistry& r = MetricsRegistry::Global();
  r.Add(ids_.steps, 1.0);
  r.Add(ids_.step_ms, report.step_ms);
  r.Add(ids_.exposed_ms, report.exposed_comm_ms);
  r.Set(ids_.mfu, report.mfu);
  if (!fired.empty()) r.Add(ids_.anomalies, static_cast<double>(fired.size()));
}

Status StepProfiler::Finish(const CommTelemetry* telemetry) {
  std::vector<StepReport> reports;
  std::vector<AnomalyEvent> anomaly_events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    reports = reports_;
    anomaly_events = detector_.events();
  }
  if (!config_.jsonl_path.empty()) {
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
        std::fopen(config_.jsonl_path.c_str(), "wb"), &std::fclose);
    if (file == nullptr) {
      return Internal("cannot open metrics jsonl: " + config_.jsonl_path);
    }
    for (const StepReport& report : reports) {
      const std::string line = StepReportToJson(report) + "\n";
      if (std::fwrite(line.data(), 1, line.size(), file.get()) != line.size()) {
        return Internal("metrics jsonl write failed: " + config_.jsonl_path);
      }
    }
  }
  if (!config_.trace_path.empty() && telemetry != nullptr) {
    const std::vector<CommEvent> events = telemetry->Events();
    const std::vector<CompEvent> comp = telemetry->CompEvents();
    const std::vector<DispatchEvent> dispatch = telemetry->DispatchEvents();
    const MemStatsSnapshot mem = GetMemStats();
    const TelemetryDropCounts drops = telemetry->drop_counts();
    const StragglerReport health = DetectStragglers(events);
    MSMOE_RETURN_IF_ERROR(WriteCommTrace(config_.trace_path, events, "msmoe-run",
                                         &health, &comp, &mem, &dispatch,
                                         &anomaly_events, &drops));
  }
  if (!config_.prom_path.empty()) {
    const std::string text = MetricsRegistry::Global().PrometheusText();
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
        std::fopen(config_.prom_path.c_str(), "wb"), &std::fclose);
    if (file == nullptr) {
      return Internal("cannot open prom snapshot: " + config_.prom_path);
    }
    if (std::fwrite(text.data(), 1, text.size(), file.get()) != text.size()) {
      return Internal("prom snapshot write failed: " + config_.prom_path);
    }
  }
  return Status::Ok();
}

ScopedStep::ScopedStep(StepProfiler* profiler, int rank, int64_t step,
                       CommTelemetry* telemetry)
    : profiler_(profiler != nullptr && profiler->enabled() ? profiler : nullptr),
      telemetry_(telemetry),
      rank_(rank),
      step_(step) {
  if (profiler_ == nullptr) return;
  begin_us_ = telemetry_ != nullptr ? telemetry_->NowUs() : 0.0;
  kernel_begin_ = GetKernelStats();
  mem_begin_ = GetMemStats();
  prev_sink_ = SetCurrentThreadExecStats(&exec_stats_);
}

ScopedStep::~ScopedStep() {
  if (profiler_ == nullptr) return;
  SetCurrentThreadExecStats(prev_sink_);
  const double end_us = telemetry_ != nullptr ? telemetry_->NowUs() : 0.0;
  const KernelStatsSnapshot kernel_end = GetKernelStats();
  const MemStatsSnapshot mem_end = GetMemStats();

  StepReport report;
  report.step = step_;
  report.rank = rank_;
  report.loss = loss_;
  report.ts_us = end_us;
  report.step_ms = (end_us - begin_us_) / 1000.0;
  report.bubble_ms = exec_stats_.bubble_us / 1000.0;

  if (telemetry_ != nullptr) {
    // The rank's own collective spans inside the step window. Sync-lane
    // events block the rank thread => exposed comm; async-lane events ran
    // on the comm proxy => hidden (counted in comm_ms only).
    for (const CommEvent& event : telemetry_->Events()) {
      if (event.rank != rank_) continue;
      if (event.start_us < begin_us_ || event.start_us >= end_us) continue;
      report.comm_ms += event.duration_us / 1000.0;
      if (!event.async_lane) report.exposed_comm_ms += event.duration_us / 1000.0;
      report.wire_bytes += event.wire_bytes;
      ++report.collectives;
    }
    for (const DispatchEvent& event : telemetry_->DispatchEvents()) {
      if (event.rank != rank_) continue;
      if (event.start_us < begin_us_ || event.start_us >= end_us) continue;
      report.dispatch_rows += event.rows_total;
      report.expert_imbalance = std::max(report.expert_imbalance, event.imbalance);
    }
  }
  report.compute_ms = std::max(0.0, report.step_ms - report.exposed_comm_ms);

  // Global-counter deltas: concurrent ranks' traffic lands in everyone's
  // window, so split the GEMM work evenly across the live world — an
  // attribution estimate, deliberately excluded from the bitwise-stable
  // field set (see header).
  const int world = std::max(1, profiler_->world());
  const double gflop_delta =
      (kernel_end.gemm_flops - kernel_begin_.gemm_flops) +
      (kernel_end.grouped_gemm_flops - kernel_begin_.grouped_gemm_flops);
  report.gemm_gflop = gflop_delta / 1e9 / static_cast<double>(world);
  if (report.step_ms > 0.0) {
    report.achieved_gflops = report.gemm_gflop / (report.step_ms / 1000.0);
  }
  if (profiler_->peak_flops_per_sec() > 0.0) {
    report.mfu = report.achieved_gflops * 1e9 / profiler_->peak_flops_per_sec();
  }
  const uint64_t acquires = mem_end.acquires - mem_begin_.acquires;
  const uint64_t hits = mem_end.pool_hits - mem_begin_.pool_hits;
  report.heap_allocs = mem_end.heap_allocs - mem_begin_.heap_allocs;
  report.pool_hit_rate =
      acquires == 0 ? 1.0
                    : static_cast<double>(hits) / static_cast<double>(acquires);

  // A synthetic span on the rank's main trace lane bracketing the step, so
  // the merged trace reads step-by-step without counting collective rows.
  if (telemetry_ != nullptr) {
    CompEvent span;
    char name[32];
    std::snprintf(name, sizeof(name), "step %lld", static_cast<long long>(step_));
    span.name = name;
    span.rank = rank_;
    span.start_us = begin_us_;
    span.duration_us = end_us - begin_us_;
    telemetry_->RecordComp(std::move(span));
  }

  profiler_->Submit(std::move(report));
}

}  // namespace msmoe
