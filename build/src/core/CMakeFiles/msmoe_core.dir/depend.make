# Empty dependencies file for msmoe_core.
# This may be replaced when dependencies are built.
