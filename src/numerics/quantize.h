// FP8 quantization schemes used by the communication-compression paths (§5
// and §7 "FP8 training").
//
// A quantized tensor stores 8-bit codes plus FP32 scales. The granularity of
// the scales is the design knob the paper tunes:
//   - kPerTensor:  one scale for the whole tensor (baseline; too coarse for
//                  SwiGLU activations, §7).
//   - kPerToken:   one scale per row (1 x h), used for forward activation
//                  communication.
//   - kPerChannel: one scale per column, used for backward gradient
//                  communication.
//   - kPerChannelGrouped: per-channel scales recomputed for every group of
//                  `group_size` rows along the token dimension (e.g. 128),
//                  the paper's refinement for backward propagation.
//
// Scales are amax-based: scale = amax / max_finite, codes = round(x / scale).
#ifndef MSMOE_SRC_NUMERICS_QUANTIZE_H_
#define MSMOE_SRC_NUMERICS_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/numerics/fp8.h"

namespace msmoe {

enum class QuantGranularity {
  kPerTensor,
  kPerToken,
  kPerChannel,
  kPerChannelGrouped,
};

const char* QuantGranularityName(QuantGranularity granularity);

struct QuantConfig {
  Fp8Format format = Fp8Format::kE4M3;
  QuantGranularity granularity = QuantGranularity::kPerTensor;
  // Rows per scale group for kPerChannelGrouped; ignored otherwise.
  int64_t group_size = 128;
};

// An FP8-quantized row-major [rows x cols] matrix.
struct QuantizedMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  QuantConfig config;
  std::vector<uint8_t> codes;   // rows * cols
  std::vector<float> scales;    // layout depends on granularity

  // Bytes on the wire (codes + scales); what a compressed collective moves.
  int64_t WireBytes() const {
    return static_cast<int64_t>(codes.size()) +
           static_cast<int64_t>(scales.size()) * static_cast<int64_t>(sizeof(float));
  }
};

// Number of scales a [rows x cols] matrix carries under `config` (the
// layout of QuantizedMatrix::scales and the scales_out buffers below).
int64_t QuantScalesCount(int64_t rows, int64_t cols, const QuantConfig& config);

// Quantizes `data` (row-major rows x cols). Zero tensors get scale 1.
QuantizedMatrix Quantize(const float* data, int64_t rows, int64_t cols,
                         const QuantConfig& config);

// Allocation-free variant for hot comm paths: writes rows * cols codes and
// QuantScalesCount scales into caller-owned buffers. Bitwise identical to
// Quantize.
void QuantizeInto(const float* data, int64_t rows, int64_t cols, const QuantConfig& config,
                  uint8_t* codes_out, float* scales_out);

// Dequantizes into `out` (must hold rows * cols floats).
void Dequantize(const QuantizedMatrix& quantized, float* out);

// Allocation-free variant over raw code/scale buffers (same layouts).
void DequantizeInto(const uint8_t* codes, const float* scales, int64_t rows, int64_t cols,
                    const QuantConfig& config, float* out);

// Round-trip convenience: returns the dequantized values.
std::vector<float> QuantizeRoundTrip(const float* data, int64_t rows, int64_t cols,
                                     const QuantConfig& config);

// Max absolute elementwise error of quantizing `data` under `config`.
double QuantizationMaxError(const float* data, int64_t rows, int64_t cols,
                            const QuantConfig& config);

}  // namespace msmoe

#endif  // MSMOE_SRC_NUMERICS_QUANTIZE_H_
