// Microbenchmarks of the real (CPU) kernels underpinning the numeric
// substrate: GEMM (naive reference vs the blocked/SIMD production kernel,
// single- and multi-worker), grouped GEMM, attention core, router,
// quantization, and thread-rank collectives. These measure actual wall time
// (unlike the figure benches, which report simulated cluster time) using the
// warmup + median-of-N helper so numbers are stable run-to-run.
//
// Besides the human-readable table, writes BENCH_kernels.json (one record
// per kernel case, naive vs blocked GFLOP/s) — the wall-clock baseline for
// future perf PRs — and dumps the KernelStats counters.
//
// With --check, runs only the 512x512x512 GEMM comparison and exits
// non-zero if the blocked kernel is slower than the naive reference — the
// Release-mode perf smoke stage of tools/check.sh.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/parallel_for.h"
#include "src/base/rng.h"
#include "src/comm/collective_group.h"
#include "src/comm/communicator.h"
#include "src/model/attention.h"
#include "src/model/grouped_gemm.h"
#include "src/model/router.h"
#include "src/numerics/quantize.h"
#include "src/tensor/gemm_kernel.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

constexpr int kWarmup = 1;
constexpr int kReps = 5;

struct GemmCase {
  std::string op;
  int64_t m, n, k;
  double naive_gflops = 0.0;
  double blocked_1w_gflops = 0.0;
  double blocked_4w_gflops = 0.0;
  TimingStats blocked_1w_stats;  // spread behind the headline blocked(1w) number
};

double Gflops(int64_t m, int64_t n, int64_t k, double seconds) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k) / seconds * 1e-9;
}

GemmCase RunGemmCase(const std::string& op, bool trans_a, bool trans_b, int64_t m,
                     int64_t n, int64_t k) {
  Rng rng(1);
  const int64_t a_elems = m * k;
  const int64_t b_elems = k * n;
  Tensor a = Tensor::Randn({a_elems}, rng);
  Tensor b = Tensor::Randn({b_elems}, rng);
  Tensor c({m * n});

  GemmCase result{op, m, n, k, 0.0, 0.0, 0.0, {}};
  result.naive_gflops = Gflops(m, n, k, MedianSecondsOfN(kWarmup, kReps, [&] {
    GemmNaive(trans_a, trans_b, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  }));
  const int restore_workers = ParallelWorkerCount();
  SetParallelWorkerCount(1);
  result.blocked_1w_stats = TimedStatsOfN(kWarmup, kReps, [&] {
    GemmBlocked(trans_a, trans_b, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  });
  result.blocked_1w_gflops = Gflops(m, n, k, result.blocked_1w_stats.median_s);
  SetParallelWorkerCount(4);
  result.blocked_4w_gflops = Gflops(m, n, k, MedianSecondsOfN(kWarmup, kReps, [&] {
    GemmBlocked(trans_a, trans_b, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  }));
  SetParallelWorkerCount(restore_workers);
  std::printf("%-28s %5lld %5lld %5lld %10.2f %12.2f %12.2f %7.2fx %7.2fx\n",
              op.c_str(), static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(k), result.naive_gflops, result.blocked_1w_gflops,
              result.blocked_4w_gflops, result.blocked_1w_gflops / result.naive_gflops,
              result.blocked_4w_gflops / result.naive_gflops);
  return result;
}

struct TimedCase {
  std::string op;
  double median_us = 0.0;
  TimingStats stats;  // p10/p90 spread + rep count behind median_us
};

TimedCase RunGroupedGemmCase(std::vector<GemmCase>* gemm_rows) {
  // MoE-shaped grouped GEMM: 8 experts over 1024 dispatched rows.
  const int64_t experts = 8;
  const int64_t rows = 1024;
  const int64_t h = 256;
  const int64_t f = 512;
  Rng rng(2);
  Tensor x = Tensor::Randn({rows, h}, rng);
  std::vector<Tensor> weights;
  std::vector<int64_t> offsets = {0};
  for (int64_t e = 0; e < experts; ++e) {
    weights.push_back(Tensor::Randn({h, f}, rng));
    offsets.push_back(rows * (e + 1) / experts);
  }
  Tensor y_naive({rows, f});
  const double naive_s = MedianSecondsOfN(kWarmup, kReps, [&] {
    for (int64_t e = 0; e < experts; ++e) {
      const int64_t begin = offsets[static_cast<size_t>(e)];
      const int64_t r = offsets[static_cast<size_t>(e) + 1] - begin;
      GemmNaive(false, false, r, f, h, 1.0f, x.data() + begin * h,
                weights[static_cast<size_t>(e)].data(), 0.0f,
                y_naive.data() + begin * f);
    }
  });
  const TimingStats blocked_stats = TimedStatsOfN(kWarmup, kReps, [&] {
    Tensor y = GroupedGemm(x, offsets, weights);
  });
  const double blocked_s = blocked_stats.median_s;
  GemmCase row{"grouped_gemm_e8", rows, f, h, 0.0, 0.0, 0.0, blocked_stats};
  row.naive_gflops = Gflops(rows, f, h, naive_s);
  row.blocked_1w_gflops = Gflops(rows, f, h, blocked_s);
  row.blocked_4w_gflops = row.blocked_1w_gflops;
  std::printf("%-28s %5lld %5lld %5lld %10.2f %12.2f %12s %7.2fx\n", "grouped_gemm_e8",
              static_cast<long long>(rows), static_cast<long long>(f),
              static_cast<long long>(h), row.naive_gflops, row.blocked_1w_gflops, "-",
              row.blocked_1w_gflops / row.naive_gflops);
  gemm_rows->push_back(row);
  return TimedCase{"grouped_gemm_e8", blocked_s * 1e6, blocked_stats};
}

TimedCase RunAttentionCase() {
  const int64_t seq = 128;
  Rng rng(3);
  Tensor q = Tensor::Randn({seq, 4, 16}, rng);
  Tensor k = Tensor::Randn({seq, 2, 16}, rng);
  Tensor v = Tensor::Randn({seq, 2, 16}, rng);
  const TimingStats stats = TimedStatsOfN(kWarmup, kReps, [&] {
    AttentionCoreCache cache;
    Tensor out = AttentionCore(q, k, v, 2, &cache);
  });
  return TimedCase{"attention_core_s128", stats.median_s * 1e6, stats};
}

TimedCase RunRouterCase() {
  Rng rng(4);
  Tensor logits = Tensor::Randn({256, 64}, rng);
  RouterConfig config;
  config.num_experts = 64;
  config.top_k = 2;
  config.aux_loss_coeff = 0.01;
  const TimingStats stats = TimedStatsOfN(kWarmup, kReps, [&] {
    RoutingResult routing = RouteTokens(logits, config);
  });
  return TimedCase{"route_tokens_e64", stats.median_s * 1e6, stats};
}

TimedCase RunQuantizeCase() {
  Rng rng(5);
  const int64_t rows = 128;
  const int64_t cols = 256;
  std::vector<float> data(static_cast<size_t>(rows * cols));
  for (auto& value : data) {
    value = static_cast<float>(rng.NextGaussian());
  }
  QuantConfig config;
  config.granularity = QuantGranularity::kPerToken;
  const TimingStats stats = TimedStatsOfN(kWarmup, kReps, [&] {
    QuantizedMatrix quantized = Quantize(data.data(), rows, cols, config);
  });
  return TimedCase{"quantize_fp8_per_token", stats.median_s * 1e6, stats};
}

TimedCase RunAllToAllCase() {
  const int n = 4;
  const int64_t count = 16384;
  const TimingStats stats = TimedStatsOfN(kWarmup, kReps, [&] {
    FlatCommunicator group(n);
    RunOnRanks(n, [&](int rank) {
      std::vector<float> send(static_cast<size_t>(n) * count, 1.0f);
      std::vector<float> recv(static_cast<size_t>(n) * count);
      group.AllToAll(rank, send.data(), recv.data(), count);
    });
  });
  return TimedCase{"all_to_all_4r_16k", stats.median_s * 1e6, stats};
}

int CheckMode() {
  const GemmCase big = RunGemmCase("gemm_nn", false, false, 512, 512, 512);
  if (big.blocked_1w_gflops < big.naive_gflops) {
    std::printf("\nPERF SMOKE FAILED: blocked kernel (%.2f GFLOP/s) slower than naive "
                "(%.2f GFLOP/s) on 512x512x512\n",
                big.blocked_1w_gflops, big.naive_gflops);
    return 1;
  }
  std::printf("\nperf smoke ok: blocked %.2f GFLOP/s >= naive %.2f GFLOP/s (%.2fx)\n",
              big.blocked_1w_gflops, big.naive_gflops,
              big.blocked_1w_gflops / big.naive_gflops);
  return 0;
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      return CheckMode();
    }
  }
  PrintHeader("BENCH kernels",
              "CPU compute-backend microbenchmarks: naive reference vs blocked/SIMD "
              "GEMM kernel (GFLOP/s, median of " +
                  std::to_string(kReps) + " after " + std::to_string(kWarmup) +
                  " warmup)");
  std::printf("avx2/fma microkernel: %s, default workers: %d\n\n",
              GemmKernelUsesAvx2() ? "yes" : "no (portable path)",
              ParallelWorkerCount());
  std::printf("%-28s %5s %5s %5s %10s %12s %12s %7s %7s\n", "op", "m", "n", "k",
              "naive", "blocked(1w)", "blocked(4w)", "sp(1w)", "sp(4w)");

  ResetKernelStats();
  std::vector<GemmCase> gemm_rows;
  gemm_rows.push_back(RunGemmCase("gemm_nn", false, false, 128, 128, 128));
  gemm_rows.push_back(RunGemmCase("gemm_nn", false, false, 256, 256, 256));
  gemm_rows.push_back(RunGemmCase("gemm_nn", false, false, 512, 512, 512));
  gemm_rows.push_back(RunGemmCase("gemm_nt", false, true, 256, 256, 256));
  gemm_rows.push_back(RunGemmCase("gemm_tn", true, false, 256, 256, 256));
  gemm_rows.push_back(RunGemmCase("gemm_tt", true, true, 256, 256, 256));
  gemm_rows.push_back(RunGemmCase("gemm_nn_odd", false, false, 65, 193, 77));

  std::vector<TimedCase> timed_rows;
  timed_rows.push_back(RunGroupedGemmCase(&gemm_rows));
  timed_rows.push_back(RunAttentionCase());
  timed_rows.push_back(RunRouterCase());
  timed_rows.push_back(RunQuantizeCase());
  timed_rows.push_back(RunAllToAllCase());
  std::printf("\n%-28s %12s\n", "op", "median_us");
  for (size_t i = 1; i < timed_rows.size(); ++i) {
    std::printf("%-28s %12.1f\n", timed_rows[i].op.c_str(), timed_rows[i].median_us);
  }

  const KernelStatsSnapshot stats = GetKernelStats();
  std::printf("\nKernelStats (this process): gemm calls=%llu flops=%.3e time=%.1f ms | "
              "grouped calls=%llu flops=%.3e time=%.1f ms\n",
              static_cast<unsigned long long>(stats.gemm_calls), stats.gemm_flops,
              stats.gemm_micros / 1e3,
              static_cast<unsigned long long>(stats.grouped_gemm_calls),
              stats.grouped_gemm_flops, stats.grouped_gemm_micros / 1e3);

  const char* json_path = "BENCH_kernels.json";
  if (std::FILE* json = std::fopen(json_path, "wb")) {
    std::fprintf(json,
                 "{\"bench\": \"kernels\", \"avx2\": %s, \"warmup\": %d, \"reps\": %d, "
                 "\"gemm\": [",
                 GemmKernelUsesAvx2() ? "true" : "false", kWarmup, kReps);
    for (size_t i = 0; i < gemm_rows.size(); ++i) {
      const GemmCase& row = gemm_rows[i];
      std::string spread;
      AppendTimingSpreadJson(&spread, "blocked_1w", row.blocked_1w_stats);
      std::fprintf(json,
                   "%s\n  {\"op\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
                   "\"naive_gflops\": %.3f, \"blocked_1w_gflops\": %.3f, "
                   "\"blocked_4w_gflops\": %.3f, \"speedup_1w\": %.3f, "
                   "\"speedup_4w\": %.3f, %s}",
                   i == 0 ? "" : ",", row.op.c_str(), static_cast<long long>(row.m),
                   static_cast<long long>(row.n), static_cast<long long>(row.k),
                   row.naive_gflops, row.blocked_1w_gflops, row.blocked_4w_gflops,
                   row.blocked_1w_gflops / row.naive_gflops,
                   row.blocked_4w_gflops / row.naive_gflops, spread.c_str());
    }
    std::fprintf(json, "\n], \"timed_us\": [");
    for (size_t i = 0; i < timed_rows.size(); ++i) {
      std::string spread;
      AppendTimingSpreadJson(&spread, "wall", timed_rows[i].stats);
      std::fprintf(json, "%s\n  {\"op\": \"%s\", \"median_us\": %.1f, %s}",
                   i == 0 ? "" : ",", timed_rows[i].op.c_str(),
                   timed_rows[i].median_us, spread.c_str());
    }
    std::fprintf(json,
                 "\n], \"kernel_stats\": {\"gemm_calls\": %llu, \"gemm_flops\": %.3e, "
                 "\"gemm_micros\": %.1f, \"grouped_gemm_calls\": %llu, "
                 "\"grouped_gemm_flops\": %.3e, \"grouped_gemm_micros\": %.1f}}\n",
                 static_cast<unsigned long long>(stats.gemm_calls), stats.gemm_flops,
                 stats.gemm_micros,
                 static_cast<unsigned long long>(stats.grouped_gemm_calls),
                 stats.grouped_gemm_flops, stats.grouped_gemm_micros);
    std::fclose(json);
    std::printf("machine-readable output: %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace msmoe

int main(int argc, char** argv) { return msmoe::Main(argc, argv); }
