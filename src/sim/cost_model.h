// Analytic operator cost models over a ClusterSpec.
//
// Compute operators use a roofline: time = max(FLOPs / effective_rate,
// bytes_touched / HBM_bw) — which is what makes MoE's memory-bound routing /
// scatter / gather ops stay expensive on faster GPUs (the MFU-vs-compute
// observation of Fig 12). Collectives use the standard ring formulas;
// all-to-all carries an efficiency penalty relative to all-gather /
// reduce-scatter because every rank talks to every other rather than to its
// ring neighbors (§3.2, Fig 7) and it occupies SMs rather than copy engines.
#ifndef MSMOE_SRC_SIM_COST_MODEL_H_
#define MSMOE_SRC_SIM_COST_MODEL_H_

#include <cstdint>

#include "src/hw/gpu_spec.h"

namespace msmoe {

class CostModel {
 public:
  explicit CostModel(ClusterSpec cluster) : cluster_(cluster) {}

  const ClusterSpec& cluster() const { return cluster_; }

  // Fraction of all-gather/reduce-scatter bus efficiency that all-to-all
  // achieves. Tuned so the Fig 7 crossover (AG beats A2A beyond top-k ~ 6 on
  // an 8-GPU node) is reproduced: crossover at k = n * kA2AEfficiency.
  static constexpr double kA2AEfficiency = 0.75;

  // Per-element bytes of activations/weights on the wire and in HBM (BF16).
  static constexpr int64_t kElemBytes = 2;

  // --- Compute (all times in us) ---
  double GemmTime(int64_t m, int64_t n, int64_t k) const;
  // Grouped GEMM over `groups` experts with `rows` total rows; per-group
  // GEMMs are [rows/groups, out] x [in, out] at grouped-GEMM efficiency.
  double GroupedGemmTime(int64_t rows, int64_t in_dim, int64_t out_dim,
                         int64_t groups) const;
  // Causal flash attention: batch sequences of length s, `heads` query
  // heads of dim d (GQA does not change FLOPs).
  double FlashAttentionTime(int64_t batch, int64_t seq, int64_t heads, int64_t d) const;
  // Memory-bound op that reads+writes `bytes` total.
  double MemBoundTime(int64_t bytes) const;

  // --- Collectives ---
  // Ring all-gather / reduce-scatter where each rank ends (or starts) with
  // `bytes_per_rank` and the full payload is n * bytes_per_rank.
  double RingCollectiveTime(int64_t bytes_per_rank, int n, bool internode) const;
  // All-to-all where each rank sends bytes_per_rank total (1/n to each peer).
  double AllToAllTime(int64_t bytes_per_rank, int n, bool internode) const;
  // Point-to-point transfer (pipeline-parallel boundary).
  double P2PTime(int64_t bytes, bool internode) const;

  double BusBw(bool internode) const;

 private:
  ClusterSpec cluster_;
};

}  // namespace msmoe

#endif  // MSMOE_SRC_SIM_COST_MODEL_H_
