// Figure 15: overlapped vs non-overlapped time of the four §4.2 fused
// communication-computation pairs — (i) QKV Projection + all-to-all,
// (ii) all-to-all + Output Projection, (iii) all-gather + scatter +
// GroupedGEMM, (iv) GroupedGEMM + gather + reduce-scatter — for the six
// evaluation models (M1-M6) on one 8-GPU H800 node. Also reports the
// resulting per-layer iteration-time reduction (§6.2: 7.1%-12.9%).
//
// Besides the simulated tables, a MEASURED section times the real fused
// all-gather + GEMM pipeline (src/parallel/fused_ops) against the unfused
// collective-then-GEMM sequence on the thread-rank substrate, across
// several row-tile sizes and worker counts. The Communicator's emulated
// wire clock is calibrated so comm ≈ comp (the regime Fig 15 targets);
// the fused pipeline's GEMM for chunk r then genuinely overlaps the
// emulated transfer of chunk r+1, and the observed speedup is compared
// against the overlap_sim tile-pipeline prediction. Results go to
// BENCH_fig15.json.
//
// With --check, runs only the measured sweep and exits non-zero unless
// (a) every fused result is bitwise equal to its unfused reference,
// (b) fused ≤ 1.05x unfused at the best tile size, and (c) fused beats
// unfused by ≥ 1.2x at 4 ranks / ≥ 2 workers — the Release-mode overlap
// smoke stage of tools/check.sh.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/math_util.h"
#include "src/base/parallel_for.h"
#include "src/base/rng.h"
#include "src/base/table.h"
#include "src/comm/communicator.h"
#include "src/core/layer_program.h"
#include "src/model/config.h"
#include "src/parallel/fused_ops.h"
#include "src/sim/overlap_sim.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

// Measured-mode problem shape: 4 thread-ranks, each contributing a
// [kRowsLocal, kK] shard to the all-gather feeding a [kK, kCols] GEMM.
// Sized so one compute phase is tens of ms: the per-chunk pipeline overhead
// (comm-thread dispatch, chunk rendezvous, cv signaling — a few ms/chunk on
// a saturated single-core host even with the comm thread at copy-engine
// priority) must stay well under the overlapped wire time, or the
// measurement reflects scheduler overhead rather than overlap.
constexpr int kRanks = 4;
constexpr int64_t kRowsLocal = 384;
constexpr int64_t kK = 384;
constexpr int64_t kCols = 512;
constexpr int kWarmup = 1;
constexpr int kReps = 3;
constexpr double kWireLatencyUs = 20.0;

struct MeasuredPoint {
  int workers = 0;
  int64_t row_tile = 0;
  int64_t num_chunks = 0;
  double unfused_ms = 0.0;
  double fused_ms = 0.0;
  double speedup = 0.0;
  bool bitwise_equal = false;
  TimingStats unfused_stats;  // p10/p90 spread + rep count behind unfused_ms
  TimingStats fused_stats;    // ... and behind fused_ms
};

struct MeasuredReport {
  double comp_ms = 0.0;  // unfused step wall time with the wire model off
  TimingStats comp_stats;  // spread behind comp_ms
  double wire_ms = 0.0;  // modeled all-gather wire occupancy after calibration
  double predicted_speedup = 0.0;  // overlap_sim at the best point's tiling
  std::vector<MeasuredPoint> points;
  bool all_bitwise = true;

  const MeasuredPoint* Best(int min_workers) const {
    const MeasuredPoint* best = nullptr;
    for (const MeasuredPoint& point : points) {
      if (point.workers < min_workers) {
        continue;
      }
      if (best == nullptr || point.speedup > best->speedup) {
        best = &point;
      }
    }
    return best;
  }
};

MeasuredReport RunMeasured() {
  Rng rng(7);
  std::vector<Tensor> x_locals;
  for (int rank = 0; rank < kRanks; ++rank) {
    x_locals.push_back(Tensor::Randn({kRowsLocal, kK}, rng));
  }
  const Tensor w = Tensor::Randn({kK, kCols}, rng);

  FlatCommunicator comm(kRanks);
  std::vector<Tensor> y_unfused(kRanks);
  std::vector<Tensor> y_fused(kRanks);
  std::vector<std::vector<float>> gathered(
      kRanks, std::vector<float>(static_cast<size_t>(kRanks * kRowsLocal * kK)));

  // The unfused reference: monolithic all-gather, then one GEMM over the
  // full gathered input.
  auto run_unfused = [&] {
    RunOnRanks(kRanks, [&](int rank) {
      float* recv = gathered[static_cast<size_t>(rank)].data();
      comm.AllGather(rank, x_locals[static_cast<size_t>(rank)].data(), recv,
                     kRowsLocal * kK);
      Tensor y({kRanks * kRowsLocal, kCols});
      Gemm(false, false, kRanks * kRowsLocal, kCols, kK, 1.0f, recv, w.data(), 0.0f,
           y.data());
      y_unfused[static_cast<size_t>(rank)] = std::move(y);
    });
  };

  MeasuredReport report;

  // Calibrate the emulated wire so the all-gather costs about one compute
  // phase (comm ≈ comp, the regime where overlap pays): measure the step
  // with the wire model off, then size bytes/us so the ring volume takes
  // that long on the wire.
  report.comp_stats = TimedStatsOfN(kWarmup, kReps, run_unfused);
  const double comp_s = report.comp_stats.median_s;
  report.comp_ms = comp_s * 1e3;
  const uint64_t ring_bytes = static_cast<uint64_t>(kRanks - 1) *
                              static_cast<uint64_t>(kRowsLocal * kK) * sizeof(float);
  const double target_us = std::max(comp_s * 1e6 - kWireLatencyUs, 1.0);
  const double bytes_per_us = static_cast<double>(ring_bytes) / target_us;
  comm.SetWireModel(bytes_per_us, kWireLatencyUs);
  report.wire_ms = (kWireLatencyUs + static_cast<double>(ring_bytes) / bytes_per_us) / 1e3;

  const int default_workers = ParallelWorkerCount();
  const int64_t out_elems = kRanks * kRowsLocal * kCols;
  for (int workers : {1, 2}) {
    SetParallelWorkerCount(workers);
    for (int64_t tile : {int64_t{48}, int64_t{96}, int64_t{192}, kRowsLocal}) {
      MeasuredPoint point;
      point.workers = workers;
      point.row_tile = tile;
      point.num_chunks = CeilDiv(kRowsLocal, tile);
      point.unfused_stats = TimedStatsOfN(kWarmup, kReps, run_unfused);
      point.unfused_ms = point.unfused_stats.median_s * 1e3;
      point.fused_stats = TimedStatsOfN(kWarmup, kReps, [&] {
        RunOnRanks(kRanks, [&](int rank) {
          ShardContext ctx{&comm, rank};
          y_fused[static_cast<size_t>(rank)] = FusedAllGatherGemm(
              ctx, x_locals[static_cast<size_t>(rank)], w, tile);
        });
      });
      point.fused_ms = point.fused_stats.median_s * 1e3;
      point.speedup = point.unfused_ms / point.fused_ms;
      point.bitwise_equal = true;
      for (int rank = 0; rank < kRanks; ++rank) {
        point.bitwise_equal =
            point.bitwise_equal &&
            std::memcmp(y_fused[static_cast<size_t>(rank)].data(),
                        y_unfused[static_cast<size_t>(rank)].data(),
                        static_cast<size_t>(out_elems) * sizeof(float)) == 0;
      }
      report.all_bitwise = report.all_bitwise && point.bitwise_equal;
      report.points.push_back(point);
    }
  }
  SetParallelWorkerCount(default_workers);

  if (const MeasuredPoint* best = report.Best(0)) {
    TilePipelineConfig config;
    config.comm_us = report.wire_ms * 1e3;
    config.comp_us = report.comp_ms * 1e3;
    config.num_tiles = static_cast<int>(best->num_chunks);
    config.comm_sm_fraction = 0.0;  // AG rides the copy engines / comm thread
    report.predicted_speedup = SimulateTilePipeline(config).speedup;
  }
  return report;
}

void WriteMeasuredJson(const MeasuredReport& report) {
  const char* json_path = "BENCH_fig15.json";
  std::FILE* json = std::fopen(json_path, "wb");
  if (json == nullptr) {
    return;
  }
  const MeasuredPoint* best = report.Best(0);
  std::string comp_spread;
  AppendTimingSpreadJson(&comp_spread, "comp", report.comp_stats);
  std::fprintf(json,
               "{\"bench\": \"fig15_intra_overlap\", \"ranks\": %d, "
               "\"rows_local\": %lld, \"k\": %lld, \"cols\": %lld, "
               "\"warmup\": %d, \"reps\": %d, \"comp_ms\": %.3f, %s, "
               "\"wire_ms\": %.3f, \"predicted_speedup\": %.3f, "
               "\"best_speedup\": %.3f, \"overlap_efficiency\": %.3f, "
               "\"all_bitwise\": %s, \"points\": [",
               kRanks, static_cast<long long>(kRowsLocal), static_cast<long long>(kK),
               static_cast<long long>(kCols), kWarmup, kReps, report.comp_ms,
               comp_spread.c_str(), report.wire_ms, report.predicted_speedup,
               best != nullptr ? best->speedup : 0.0,
               report.predicted_speedup > 0.0 && best != nullptr
                   ? best->speedup / report.predicted_speedup
                   : 0.0,
               report.all_bitwise ? "true" : "false");
  for (size_t i = 0; i < report.points.size(); ++i) {
    const MeasuredPoint& point = report.points[i];
    std::string spread;
    AppendTimingSpreadJson(&spread, "unfused", point.unfused_stats);
    spread += ", ";
    AppendTimingSpreadJson(&spread, "fused", point.fused_stats);
    std::fprintf(json,
                 "%s\n  {\"workers\": %d, \"row_tile\": %lld, \"chunks\": %lld, "
                 "\"unfused_ms\": %.3f, \"fused_ms\": %.3f, \"speedup\": %.3f, "
                 "%s, \"bitwise\": %s}",
                 i == 0 ? "" : ",", point.workers,
                 static_cast<long long>(point.row_tile),
                 static_cast<long long>(point.num_chunks), point.unfused_ms,
                 point.fused_ms, point.speedup, spread.c_str(),
                 point.bitwise_equal ? "true" : "false");
  }
  std::fprintf(json, "\n]}\n");
  std::fclose(json);
  std::printf("machine-readable output: %s\n", json_path);
}

void PrintMeasured(const MeasuredReport& report) {
  std::printf("\nMeasured fused vs unfused all-gather + GEMM (%d thread-ranks, "
              "%lld x %lld x %lld per rank, emulated wire calibrated to comm ~= comp: "
              "comp %.1f ms, wire %.1f ms):\n",
              kRanks, static_cast<long long>(kRowsLocal), static_cast<long long>(kK),
              static_cast<long long>(kCols), report.comp_ms, report.wire_ms);
  TablePrinter table({"Workers", "Row tile", "Chunks", "Unfused (ms)", "Fused (ms)",
                      "Speedup", "Bitwise"});
  for (const MeasuredPoint& point : report.points) {
    table.AddRow({std::to_string(point.workers), std::to_string(point.row_tile),
                  std::to_string(point.num_chunks), TablePrinter::Fmt(point.unfused_ms, 2),
                  TablePrinter::Fmt(point.fused_ms, 2),
                  TablePrinter::Fmt(point.speedup, 2) + "x",
                  point.bitwise_equal ? "yes" : "NO"});
  }
  table.Print("Measured pipeline (src/parallel/fused_ops over chunked async collectives):");
  const MeasuredPoint* best = report.Best(0);
  if (best != nullptr && report.predicted_speedup > 0.0) {
    std::printf("best measured speedup %.2fx (tile %lld, %d workers); overlap_sim "
                "predicts %.2fx -> overlap efficiency %.0f%%\n",
                best->speedup, static_cast<long long>(best->row_tile), best->workers,
                report.predicted_speedup,
                100.0 * best->speedup / report.predicted_speedup);
  }
}

int CheckMode() {
  const MeasuredReport report = RunMeasured();
  PrintMeasured(report);
  WriteMeasuredJson(report);
  if (!report.all_bitwise) {
    std::printf("\nPERF SMOKE FAILED: fused pipeline output not bitwise equal to the "
                "unfused reference\n");
    return 1;
  }
  const MeasuredPoint* best = report.Best(0);
  if (best == nullptr || best->fused_ms > 1.05 * best->unfused_ms) {
    std::printf("\nPERF SMOKE FAILED: fused (%.2f ms) exceeds 1.05x unfused (%.2f ms) "
                "at the best tile size\n",
                best != nullptr ? best->fused_ms : 0.0,
                best != nullptr ? best->unfused_ms : 0.0);
    return 1;
  }
  const MeasuredPoint* best_mt = report.Best(2);
  if (best_mt == nullptr || best_mt->speedup < 1.2) {
    std::printf("\nPERF SMOKE FAILED: fused all-gather+GEMM speedup %.2fx < 1.2x at "
                "%d ranks / >=2 workers\n",
                best_mt != nullptr ? best_mt->speedup : 0.0, kRanks);
    return 1;
  }
  std::printf("\noverlap smoke ok: fused %.2fx over unfused at %d ranks / %d workers "
              "(tile %lld), bitwise identical\n",
              best_mt->speedup, kRanks, best_mt->workers,
              static_cast<long long>(best_mt->row_tile));
  return 0;
}

void Run() {
  PrintHeader("Figure 15 — intra-operator communication-computation overlap",
              "fused tile-pipeline kernels vs back-to-back execution, "
              "one 8-GPU H800 node, micro-batch 1 x 8192 tokens");
  PrintPaperNote(
      "1.2x-4.7x reduction in combined comm+comp time per pair; 7.1%-12.9% "
      "lower iteration time overall");

  const CostModel cost(MakeCluster("H800", 8).value());

  TablePrinter table({"Model", "Pair", "Comm (us)", "Comp (us)", "Non-overlapped (us)",
                      "Overlapped (us)", "Reduction"});
  int index = 0;
  for (const ModelConfig& model : EvaluationModels()) {
    ++index;
    ExecutionOptions options = ExecutionOptions::MegaScale(model, 8);
    const auto pairs = IntraOverlapPairs(cost, model, options, 1, model.seq_len, 8);
    for (const OverlapPairReport& pair : pairs) {
      table.AddRow({"M" + std::to_string(index) + " " + model.name, pair.name,
                    TablePrinter::Fmt(pair.comm_us, 1), TablePrinter::Fmt(pair.comp_us, 1),
                    TablePrinter::Fmt(pair.unfused_us, 1),
                    TablePrinter::Fmt(pair.fused_us, 1),
                    TablePrinter::Fmt(pair.unfused_us / pair.fused_us, 2) + "x"});
    }
  }
  table.Print("Per-pair overlapped vs non-overlapped time:");

  TablePrinter layer_table({"Model", "Layer w/ intra-overlap (us)",
                            "Layer w/o intra-overlap (us)", "Iteration reduction (%)"});
  for (const ModelConfig& model : EvaluationModels()) {
    ExecutionOptions with = ExecutionOptions::MegaScale(model, 8);
    ExecutionOptions without = with;
    without.intra_op_overlap = false;
    const LayerTimes fast = SimulateLayer(cost, model, with, 1, model.seq_len, 8);
    const LayerTimes slow = SimulateLayer(cost, model, without, 1, model.seq_len, 8);
    layer_table.AddRow({model.name, TablePrinter::Fmt(fast.total_us(), 0),
                        TablePrinter::Fmt(slow.total_us(), 0),
                        TablePrinter::Fmt((1.0 - fast.total_us() / slow.total_us()) * 100.0,
                                          1)});
  }
  layer_table.Print("Per-layer effect of intra-operator overlap:");

  const MeasuredReport measured = RunMeasured();
  PrintMeasured(measured);
  WriteMeasuredJson(measured);
}

}  // namespace
}  // namespace msmoe

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      return msmoe::CheckMode();
    }
  }
  msmoe::Run();
  return 0;
}
