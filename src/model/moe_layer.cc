#include "src/model/moe_layer.h"

#include <cmath>

#include "src/base/logging.h"
#include "src/model/grouped_gemm.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

// Initialization stddev following GPT-style 0.02 scaled init.
constexpr float kInitStd = 0.02f;

std::vector<int64_t> SequencePositions(int64_t seq_len) {
  std::vector<int64_t> positions(static_cast<size_t>(seq_len));
  for (int64_t i = 0; i < seq_len; ++i) {
    positions[static_cast<size_t>(i)] = i;
  }
  return positions;
}

}  // namespace

MoeLayerParams MoeLayerParams::Init(const ModelConfig& config, Rng& rng) {
  MoeLayerParams params;
  params.ln1_gain = Tensor::Full({config.hidden}, 1.0f);
  params.w_qkv = Tensor::Randn({config.hidden, config.qkv_out_dim()}, rng, 0.0f, kInitStd);
  params.w_out = Tensor::Randn({config.hidden, config.hidden}, rng, 0.0f, kInitStd);
  params.ln2_gain = Tensor::Full({config.hidden}, 1.0f);
  params.w_gate = Tensor::Randn({config.hidden, config.num_experts}, rng, 0.0f, kInitStd);
  for (int64_t e = 0; e < config.num_experts; ++e) {
    params.w1.push_back(Tensor::Randn({config.hidden, config.ffn_hidden}, rng, 0.0f, kInitStd));
    params.w3.push_back(Tensor::Randn({config.hidden, config.ffn_hidden}, rng, 0.0f, kInitStd));
    params.w2.push_back(Tensor::Randn({config.ffn_hidden, config.hidden}, rng, 0.0f, kInitStd));
  }
  return params;
}

MoeLayerParams MoeLayerParams::ZerosLike(const ModelConfig& config) {
  MoeLayerParams params;
  params.ln1_gain = Tensor::Zeros({config.hidden});
  params.w_qkv = Tensor::Zeros({config.hidden, config.qkv_out_dim()});
  params.w_out = Tensor::Zeros({config.hidden, config.hidden});
  params.ln2_gain = Tensor::Zeros({config.hidden});
  params.w_gate = Tensor::Zeros({config.hidden, config.num_experts});
  for (int64_t e = 0; e < config.num_experts; ++e) {
    params.w1.push_back(Tensor::Zeros({config.hidden, config.ffn_hidden}));
    params.w3.push_back(Tensor::Zeros({config.hidden, config.ffn_hidden}));
    params.w2.push_back(Tensor::Zeros({config.ffn_hidden, config.hidden}));
  }
  return params;
}

void MoeLayerParams::ForEach(const std::function<void(const std::string&, Tensor&)>& fn) {
  fn("ln1_gain", ln1_gain);
  fn("w_qkv", w_qkv);
  fn("w_out", w_out);
  fn("ln2_gain", ln2_gain);
  fn("w_gate", w_gate);
  for (size_t e = 0; e < w1.size(); ++e) {
    fn("w1." + std::to_string(e), w1[e]);
    fn("w3." + std::to_string(e), w3[e]);
    fn("w2." + std::to_string(e), w2[e]);
  }
}

void MoeLayerParams::ForEachConst(
    const std::function<void(const std::string&, const Tensor&)>& fn) const {
  const_cast<MoeLayerParams*>(this)->ForEach(
      [&fn](const std::string& name, Tensor& tensor) { fn(name, tensor); });
}

int64_t MoeLayerParams::TotalElements() const {
  int64_t total = 0;
  ForEachConst([&total](const std::string&, const Tensor& tensor) { total += tensor.numel(); });
  return total;
}

void MoeLayerParams::Accumulate(const MoeLayerParams& other) {
  ln1_gain.AddInPlace(other.ln1_gain);
  w_qkv.AddInPlace(other.w_qkv);
  w_out.AddInPlace(other.w_out);
  ln2_gain.AddInPlace(other.ln2_gain);
  w_gate.AddInPlace(other.w_gate);
  for (size_t e = 0; e < w1.size(); ++e) {
    w1[e].AddInPlace(other.w1[e]);
    w3[e].AddInPlace(other.w3[e]);
    w2[e].AddInPlace(other.w2[e]);
  }
}

Tensor MoeLayerForward(const MoeLayerParams& params, const ModelConfig& config,
                       const RouterConfig& router, const Tensor& hidden, int64_t batch,
                       MoeLayerCache* cache) {
  MSMOE_CHECK_EQ(hidden.ndim(), 2);
  MSMOE_CHECK_EQ(hidden.dim(1), config.hidden);
  const int64_t tokens = hidden.dim(0);
  MSMOE_CHECK_EQ(tokens % batch, 0);
  const int64_t seq_len = tokens / batch;
  const int64_t hq = config.num_heads;
  const int64_t hkv = config.kv_heads();
  const int64_t d = config.head_dim();

  cache->hidden_in = hidden;
  cache->ln1_out = RmsNorm(hidden, params.ln1_gain, &cache->ln1_inv_rms);

  // Fused QKV projection, then split and RoPE.
  Tensor qkv = MatMul(cache->ln1_out, params.w_qkv);
  cache->q = Tensor::Uninit({tokens, hq * d});
  cache->k = Tensor::Uninit({tokens, hkv * d});
  cache->v = Tensor::Uninit({tokens, hkv * d});
  for (int64_t t = 0; t < tokens; ++t) {
    const float* row = qkv.data() + t * config.qkv_out_dim();
    std::copy(row, row + hq * d, cache->q.data() + t * hq * d);
    std::copy(row + hq * d, row + (hq + hkv) * d, cache->k.data() + t * hkv * d);
    std::copy(row + (hq + hkv) * d, row + (hq + 2 * hkv) * d, cache->v.data() + t * hkv * d);
  }
  const std::vector<int64_t> positions = SequencePositions(seq_len);
  cache->attn.assign(static_cast<size_t>(batch), AttentionCoreCache{});
  cache->attn_out = Tensor::Uninit({tokens, config.hidden});
  for (int64_t b = 0; b < batch; ++b) {
    Tensor q_seq = cache->q.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hq, d});
    Tensor k_seq = cache->k.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hkv, d});
    Tensor v_seq = cache->v.SliceRows(b * seq_len, (b + 1) * seq_len)
                       .Reshaped({seq_len, hkv, d});
    RopeInPlace(q_seq, positions, hq, d);
    RopeInPlace(k_seq, positions, hkv, d);
    // Write the post-RoPE values back so backward can use them directly.
    std::copy(q_seq.data(), q_seq.data() + q_seq.numel(),
              cache->q.data() + b * seq_len * hq * d);
    std::copy(k_seq.data(), k_seq.data() + k_seq.numel(),
              cache->k.data() + b * seq_len * hkv * d);
    Tensor attn = AttentionCore(q_seq, k_seq, v_seq, config.gqa_ratio,
                                &cache->attn[static_cast<size_t>(b)]);
    std::copy(attn.data(), attn.data() + attn.numel(),
              cache->attn_out.data() + b * seq_len * config.hidden);
  }

  Tensor attn_proj = MatMul(cache->attn_out, params.w_out);
  cache->ln2_in = Add(hidden, attn_proj);
  cache->ln2_out = RmsNorm(cache->ln2_in, params.ln2_gain, &cache->ln2_inv_rms);

  // Router + dispatch.
  Tensor gate_logits = MatMul(cache->ln2_out, params.w_gate);
  cache->routing = RouteTokens(gate_logits, router);
  cache->plan = BuildDispatchPlan(cache->routing, config.num_experts);
  cache->ffn_in = GatherRows(cache->ln2_out, cache->plan.row_map);

  // Expert FFN: FC1/FC3 -> SwiGLU -> FC2.
  cache->fc1_out = GroupedGemm(cache->ffn_in, cache->plan.expert_offsets, params.w1);
  cache->fc3_out = GroupedGemm(cache->ffn_in, cache->plan.expert_offsets, params.w3);
  cache->fc2_in = SwiGlu(cache->fc1_out, cache->fc3_out);
  cache->fc2_out = GroupedGemm(cache->fc2_in, cache->plan.expert_offsets, params.w2);

  // Weighted combine (gating applied after FC2) + residual.
  Tensor out = cache->ln2_in;
  const int64_t k_slots = router.top_k;
  for (int64_t t = 0; t < tokens; ++t) {
    float* out_row = out.data() + t * config.hidden;
    for (int64_t slot = 0; slot < k_slots; ++slot) {
      const int64_t row = cache->plan.slot_to_row[static_cast<size_t>(t * k_slots + slot)];
      if (row < 0) {
        continue;
      }
      const float weight = cache->routing.combine_weight.At(t, slot);
      const float* expert_row = cache->fc2_out.data() + row * config.hidden;
      for (int64_t c = 0; c < config.hidden; ++c) {
        out_row[c] += weight * expert_row[c];
      }
    }
  }
  return out;
}

MoeLayerGrads MoeLayerBackward(const MoeLayerParams& params, const ModelConfig& config,
                               const RouterConfig& router, const MoeLayerCache& cache,
                               const Tensor& dout, int64_t batch) {
  const int64_t tokens = dout.dim(0);
  const int64_t seq_len = tokens / batch;
  const int64_t hq = config.num_heads;
  const int64_t hkv = config.kv_heads();
  const int64_t d = config.head_dim();
  const int64_t k_slots = router.top_k;

  MoeLayerGrads grads;
  grads.dparams = MoeLayerParams::ZerosLike(config);

  // --- Combine backward: dout -> dfc2_out and dcombine_weight. ---
  // Both stay zero-initialized: dropped slots leave dcombine entries (and,
  // with capacity dropping, dfc2_out rows) untouched.
  Tensor dfc2_out({cache.fc2_out.dim(0), config.hidden});
  Tensor dcombine({tokens, k_slots});
  for (int64_t t = 0; t < tokens; ++t) {
    const float* dout_row = dout.data() + t * config.hidden;
    for (int64_t slot = 0; slot < k_slots; ++slot) {
      const int64_t row = cache.plan.slot_to_row[static_cast<size_t>(t * k_slots + slot)];
      if (row < 0) {
        continue;
      }
      const float weight = cache.routing.combine_weight.At(t, slot);
      float* dfc2_row = dfc2_out.data() + row * config.hidden;
      const float* fc2_row = cache.fc2_out.data() + row * config.hidden;
      float dot = 0.0f;
      for (int64_t c = 0; c < config.hidden; ++c) {
        dfc2_row[c] += weight * dout_row[c];
        dot += dout_row[c] * fc2_row[c];
      }
      dcombine.At(t, slot) = dot;
    }
  }

  // --- Expert FFN backward. ---
  GroupedGemmGrads fc2_grads =
      GroupedGemmBackward(dfc2_out, cache.fc2_in, cache.plan.expert_offsets, params.w2);
  grads.dparams.w2 = std::move(fc2_grads.dweights);
  SwiGluGrads swiglu_grads = SwiGluBackward(fc2_grads.dx, cache.fc1_out, cache.fc3_out);
  GroupedGemmGrads fc1_grads = GroupedGemmBackward(swiglu_grads.dgate, cache.ffn_in,
                                                   cache.plan.expert_offsets, params.w1);
  GroupedGemmGrads fc3_grads = GroupedGemmBackward(swiglu_grads.dlinear, cache.ffn_in,
                                                   cache.plan.expert_offsets, params.w3);
  grads.dparams.w1 = std::move(fc1_grads.dweights);
  grads.dparams.w3 = std::move(fc3_grads.dweights);
  Tensor dffn_in = Add(fc1_grads.dx, fc3_grads.dx);

  // --- Un-dispatch: scatter token-copy grads back to ln2_out rows. ---
  Tensor dln2_out = ScatterAddRows(dffn_in, cache.plan.row_map, tokens);

  // --- Router backward. ---
  Tensor dgate_logits = RouterBackward(cache.routing, dcombine, router);
  MatMulGrads gate_grads = MatMulBackward(dgate_logits, cache.ln2_out, params.w_gate);
  grads.dparams.w_gate = std::move(gate_grads.db);
  dln2_out.AddInPlace(gate_grads.da);

  // --- Second RMSNorm backward; dout also flows straight to ln2_in via the
  // residual connection. ---
  RmsNormGrads ln2_grads =
      RmsNormBackward(dln2_out, cache.ln2_in, params.ln2_gain, cache.ln2_inv_rms);
  grads.dparams.ln2_gain = std::move(ln2_grads.dgain);
  Tensor dln2_in = Add(ln2_grads.dx, dout);

  // --- Output projection backward. ---
  MatMulGrads out_proj_grads = MatMulBackward(dln2_in, cache.attn_out, params.w_out);
  grads.dparams.w_out = std::move(out_proj_grads.db);
  Tensor dattn_out = std::move(out_proj_grads.da);

  // --- Attention core + RoPE backward, per sequence. ---
  Tensor dq = Tensor::Uninit({tokens, hq * d});
  Tensor dk = Tensor::Uninit({tokens, hkv * d});
  Tensor dv = Tensor::Uninit({tokens, hkv * d});
  const std::vector<int64_t> positions = SequencePositions(seq_len);
  for (int64_t b = 0; b < batch; ++b) {
    Tensor dout_seq = dattn_out.SliceRows(b * seq_len, (b + 1) * seq_len)
                          .Reshaped({seq_len, hq, d});
    Tensor q_seq =
        cache.q.SliceRows(b * seq_len, (b + 1) * seq_len).Reshaped({seq_len, hq, d});
    Tensor k_seq =
        cache.k.SliceRows(b * seq_len, (b + 1) * seq_len).Reshaped({seq_len, hkv, d});
    Tensor v_seq =
        cache.v.SliceRows(b * seq_len, (b + 1) * seq_len).Reshaped({seq_len, hkv, d});
    AttentionCoreGrads attn_grads = AttentionCoreBackward(
        dout_seq, q_seq, k_seq, v_seq, config.gqa_ratio, cache.attn[static_cast<size_t>(b)]);
    RopeBackwardInPlace(attn_grads.dq, positions, hq, d);
    RopeBackwardInPlace(attn_grads.dk, positions, hkv, d);
    std::copy(attn_grads.dq.data(), attn_grads.dq.data() + attn_grads.dq.numel(),
              dq.data() + b * seq_len * hq * d);
    std::copy(attn_grads.dk.data(), attn_grads.dk.data() + attn_grads.dk.numel(),
              dk.data() + b * seq_len * hkv * d);
    std::copy(attn_grads.dv.data(), attn_grads.dv.data() + attn_grads.dv.numel(),
              dv.data() + b * seq_len * hkv * d);
  }

  // --- Reassemble dqkv and run QKV projection backward. ---
  Tensor dqkv = Tensor::Uninit({tokens, config.qkv_out_dim()});
  for (int64_t t = 0; t < tokens; ++t) {
    float* row = dqkv.data() + t * config.qkv_out_dim();
    std::copy(dq.data() + t * hq * d, dq.data() + (t + 1) * hq * d, row);
    std::copy(dk.data() + t * hkv * d, dk.data() + (t + 1) * hkv * d, row + hq * d);
    std::copy(dv.data() + t * hkv * d, dv.data() + (t + 1) * hkv * d, row + (hq + hkv) * d);
  }
  MatMulGrads qkv_grads = MatMulBackward(dqkv, cache.ln1_out, params.w_qkv);
  grads.dparams.w_qkv = std::move(qkv_grads.db);

  // --- First RMSNorm backward + residual. ---
  RmsNormGrads ln1_grads =
      RmsNormBackward(qkv_grads.da, cache.hidden_in, params.ln1_gain, cache.ln1_inv_rms);
  grads.dparams.ln1_gain = std::move(ln1_grads.dgain);
  grads.dhidden = Add(ln1_grads.dx, dln2_in);
  return grads;
}

}  // namespace msmoe
