// StepProfiler: per-rank, per-step rollup of every instrumentation stream.
//
// The trainer brackets each training step on each rank thread with a
// ScopedStep. On destruction the scope differences the global stat blocks
// (KernelStats, MemStats), filters the run's CommTelemetry down to this
// rank's spans inside the step window, folds in the exec-graph executor's
// per-step feed (ExecStepStats, installed thread-locally for the scope's
// lifetime), and assembles one StepReport:
//
//   step_ms           wall time of the step on this rank
//   exposed_comm_ms   synchronous-lane collective time (the rank thread was
//                     blocked in a collective — comm the overlap machinery
//                     failed to hide)
//   comm_ms           all collective time attributed to the rank, including
//                     the async comm-proxy lane (overlap-hidden comm)
//   compute_ms        step_ms - exposed_comm_ms
//   bubble_ms         exec-graph makespan minus compute-stream busy time
//                     (pipeline bubble inside overlapped sections)
//   gemm_gflop        GEMM work this step (global KernelStats delta split
//                     evenly across live ranks — approximate, see below)
//   achieved_gflops   gemm_gflop / step seconds
//   mfu               achieved_gflops vs calibrated single-thread peak
//   wire_bytes        full-collective analytic volume of the collectives
//                     this rank entered during the step
//   collectives       how many collective events the rank recorded
//   expert_imbalance  worst rows_max/mean over the step's dispatch rounds
//   dispatch_rows     rows routed to this rank's experts this step
//   pool_hit_rate     arena pool-hit rate over the step window (global)
//   heap_allocs       arena pool misses over the step window (global)
//   retries/evictions cumulative recovery totals at the time of the report
//   loss              set by the trainer via ScopedStep::set_loss
//
// Determinism: fields derived from the rank's own event streams (loss,
// wire_bytes, collectives, dispatch_rows, expert_imbalance) are bitwise
// stable across MSMOE_NUM_THREADS worker counts; fields differenced from
// process-global counters (gemm_gflop, pool_hit_rate, heap_allocs) see
// concurrent ranks' traffic inside the window and are attribution
// *estimates* — obs_test pins the former set only.
//
// Every report feeds the MetricsRegistry and the online AnomalyDetector;
// Finish() writes the run artifacts: metrics.jsonl (one JSON object per
// rank-step), a merged multi-lane Chrome trace (compute / comm / dispatch /
// memory / anomaly lanes in one file), and a Prometheus text snapshot.
#ifndef MSMOE_SRC_OBS_STEP_PROFILER_H_
#define MSMOE_SRC_OBS_STEP_PROFILER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/arena.h"
#include "src/base/status.h"
#include "src/comm/telemetry.h"
#include "src/obs/anomaly.h"
#include "src/obs/metrics.h"
#include "src/tensor/gemm_kernel.h"

namespace msmoe {

struct StepProfilerConfig {
  // Output paths; empty disables that artifact. Finish() writes them.
  std::string jsonl_path;  // per-rank-per-step JSONL ("metrics.jsonl")
  std::string trace_path;  // merged multi-lane Chrome trace
  std::string prom_path;   // Prometheus text snapshot
  // Single-thread peak FLOP/s for the MFU denominator. 0 => calibrate once
  // at construction with a short blocked-GEMM burst.
  double peak_flops_per_sec = 0.0;
  AnomalyConfig anomaly;
  int world = 1;  // ranks expected per step (updatable via set_world)
  bool enabled = true;
};

struct StepReport {
  int64_t step = 0;
  int rank = 0;
  double ts_us = 0.0;  // telemetry-epoch end-of-step time
  double step_ms = 0.0;
  double compute_ms = 0.0;
  double comm_ms = 0.0;
  double exposed_comm_ms = 0.0;
  double bubble_ms = 0.0;
  double gemm_gflop = 0.0;
  double achieved_gflops = 0.0;
  double mfu = 0.0;
  uint64_t wire_bytes = 0;
  int64_t collectives = 0;
  double expert_imbalance = 1.0;
  int64_t dispatch_rows = 0;
  double pool_hit_rate = 1.0;
  uint64_t heap_allocs = 0;
  int64_t retries = 0;
  int64_t evictions = 0;
  double loss = 0.0;
};

// Serializes a report as one JSON object (the metrics.jsonl line format).
std::string StepReportToJson(const StepReport& report);
// Parses a metrics.jsonl line back into a report (round-trip testing and
// offline tooling). Returns false on malformed input.
bool ParseStepReportJson(const std::string& line, StepReport* report);

class StepProfiler {
 public:
  explicit StepProfiler(StepProfilerConfig config);

  bool enabled() const { return config_.enabled; }
  int world() const;
  // The trainer updates this after an elastic shrink so MFU attribution and
  // the detector's cross-rank pass track the surviving world size.
  void set_world(int ranks);

  // Recovery bookkeeping (trainer calls these as events happen).
  void NoteRetry();
  void NoteEviction();

  // Rank most recently named straggler by the detector's cross-rank pass
  // (epoch-local rank), or -1. The trainer forwards this into
  // Communicator::HintSuspect so the RecoveryPolicy eviction path can act
  // on profiler evidence when a fault carries no attribution of its own.
  int StragglerSuspect() const;

  std::vector<StepReport> reports() const;
  std::vector<AnomalyEvent> anomalies() const;

  // Writes the configured artifacts. `telemetry` supplies the event streams
  // for the merged trace (pass the final epoch's telemetry; nullptr skips
  // the trace). Idempotent per call — later calls rewrite with more data.
  Status Finish(const CommTelemetry* telemetry);

  double peak_flops_per_sec() const { return peak_flops_per_sec_; }

 private:
  friend class ScopedStep;
  void Submit(StepReport report);

  StepProfilerConfig config_;
  double peak_flops_per_sec_ = 0.0;
  mutable std::mutex mu_;
  std::vector<StepReport> reports_;
  AnomalyDetector detector_;
  int64_t retries_ = 0;
  int64_t evictions_ = 0;

  struct Ids {
    MetricId steps;
    MetricId step_ms;
    MetricId exposed_ms;
    MetricId anomalies;
    MetricId retries;
    MetricId evictions;
    MetricId mfu;
  };
  Ids ids_;
};

// RAII step bracket, one per rank thread per step. Inert when profiler is
// null or disabled (no snapshots, no sink installation, zero overhead
// beyond the null checks).
class ScopedStep {
 public:
  ScopedStep(StepProfiler* profiler, int rank, int64_t step,
             CommTelemetry* telemetry);
  ~ScopedStep();

  ScopedStep(const ScopedStep&) = delete;
  ScopedStep& operator=(const ScopedStep&) = delete;

  void set_loss(double loss) { loss_ = loss; }
  bool active() const { return profiler_ != nullptr; }

 private:
  StepProfiler* profiler_ = nullptr;  // null when inert
  CommTelemetry* telemetry_ = nullptr;
  int rank_ = 0;
  int64_t step_ = 0;
  double loss_ = 0.0;
  double begin_us_ = 0.0;
  KernelStatsSnapshot kernel_begin_;
  MemStatsSnapshot mem_begin_;
  ExecStepStats exec_stats_;
  ExecStepStats* prev_sink_ = nullptr;
};

}  // namespace msmoe

#endif  // MSMOE_SRC_OBS_STEP_PROFILER_H_
