#include "src/parallel/distributed_lm.h"

#include <string>
#include <utility>

#include "src/base/logging.h"
#include "src/core/exec_graph.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {

std::vector<int64_t> ShardTokenIds(const std::vector<int64_t>& full_ids, int64_t batch,
                                   int64_t seq_len, int rank, int n) {
  MSMOE_CHECK_EQ(static_cast<int64_t>(full_ids.size()), batch * seq_len);
  MSMOE_CHECK_EQ(seq_len % n, 0);
  const int64_t s_local = seq_len / n;
  std::vector<int64_t> local(static_cast<size_t>(batch * s_local));
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < s_local; ++t) {
      local[static_cast<size_t>(b * s_local + t)] =
          full_ids[static_cast<size_t>(b * seq_len + rank * s_local + t)];
    }
  }
  return local;
}

// The whole step is recorded as a macro-op chain on the runtime executor:
// embed -> layer fwd x L -> head fwd/bwd -> layer bwd x L -> embed bwd, all
// on stream 0 with sequential deps. A chain has a single valid schedule, so
// numerics are the eager sequence exactly; the gain is a uniform fault path
// (an aborted layer skips the remainder of the step) and per-layer events
// in measured timelines. Layer-internal overlap graphs (fused pipelines,
// grad-sync in the trainer) nest beneath these macro ops.
DistributedLmStats DistributedLmForwardBackward(
    const ShardContext& ctx, const ModelConfig& config, const RouterConfig& router,
    const ParallelMoeLayerOptions& options, const LmParams& params,
    const std::vector<int64_t>& input_ids_local,
    const std::vector<int64_t>& target_ids_local, int64_t batch, int64_t seq_len,
    LmParams* grads) {
  const int n = ctx.size();
  const int64_t s_local = seq_len / n;
  const int64_t t_local = batch * s_local;
  MSMOE_CHECK_EQ(static_cast<int64_t>(input_ids_local.size()), t_local);
  MSMOE_CHECK_EQ(static_cast<int64_t>(target_ids_local.size()), t_local);
  const int64_t h = config.hidden;

  Tensor hidden;
  std::vector<ParallelMoeLayerCache> caches(static_cast<size_t>(config.num_layers));
  DistributedLmStats stats;
  Tensor dhidden;

  ExecGraph graph;
  int prev = graph.AddCompute(
      "embed",
      [&] {
        // Embedding lookup (token-local).
        hidden = Tensor({t_local, h});
        for (int64_t t = 0; t < t_local; ++t) {
          const int64_t id = input_ids_local[static_cast<size_t>(t)];
          MSMOE_CHECK_GE(id, 0);
          MSMOE_CHECK_LT(id, config.vocab);
          std::copy(params.embedding.data() + id * h,
                    params.embedding.data() + (id + 1) * h, hidden.data() + t * h);
        }
        return Status::Ok();
      },
      {}, "memory");

  // Macro MoE layers (collectives inside).
  for (int64_t l = 0; l < config.num_layers; ++l) {
    prev = graph.AddCompute(
        "layer_fwd[" + std::to_string(l) + "]",
        [&, l] {
          hidden = ParallelMoeLayerForward(ctx, config, router,
                                           params.layers[static_cast<size_t>(l)], hidden,
                                           batch, seq_len, options,
                                           &caches[static_cast<size_t>(l)]);
          stats.aux_loss += caches[static_cast<size_t>(l)].routing.aux_loss;
          return Status::Ok();
        },
        {prev}, "attention");
  }

  prev = graph.AddCompute(
      "lm_head",
      [&] {
        // Final norm + LM head + CE (token-local).
        Tensor final_inv_rms;
        Tensor normed = RmsNorm(hidden, params.final_gain, &final_inv_rms);
        Tensor logits = MatMul(normed, params.lm_head);
        CrossEntropyResult ce = CrossEntropy(logits, target_ids_local);
        stats.ce_loss = ce.mean_loss;
        // Gradient of the GLOBAL mean loss: each rank holds 1/n of the tokens.
        ce.dlogits.ScaleInPlace(1.0f / static_cast<float>(n));

        MatMulGrads head_grads = MatMulBackward(ce.dlogits, normed, params.lm_head);
        grads->lm_head.AddInPlace(head_grads.db);
        RmsNormGrads final_grads =
            RmsNormBackward(head_grads.da, hidden, params.final_gain, final_inv_rms);
        grads->final_gain.AddInPlace(final_grads.dgain);
        dhidden = std::move(final_grads.dx);
        return Status::Ok();
      },
      {prev});

  for (int64_t l = config.num_layers - 1; l >= 0; --l) {
    prev = graph.AddCompute(
        "layer_bwd[" + std::to_string(l) + "]",
        [&, l] {
          ParallelMoeLayerGrads layer_grads = ParallelMoeLayerBackward(
              ctx, config, router, params.layers[static_cast<size_t>(l)], dhidden, batch,
              seq_len, options, caches[static_cast<size_t>(l)]);
          grads->layers[static_cast<size_t>(l)].Accumulate(layer_grads.dparams);
          dhidden = std::move(layer_grads.dx_local);
          return Status::Ok();
        },
        {prev}, "attention");
  }

  graph.AddCompute(
      "embed_bwd",
      [&] {
        // Embedding backward (token-local scatter-add).
        for (int64_t t = 0; t < t_local; ++t) {
          const int64_t id = input_ids_local[static_cast<size_t>(t)];
          float* dst = grads->embedding.data() + id * h;
          const float* src = dhidden.data() + t * h;
          for (int64_t c = 0; c < h; ++c) {
            dst[c] += src[c];
          }
        }
        return Status::Ok();
      },
      {prev}, "memory");

  ExecResult result = graph.Execute(1);
  MSMOE_CHECK(result.status.ok()) << result.status.ToString();
  return stats;
}

}  // namespace msmoe
