#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/comm/communicator.h"
#include "src/model/config.h"
#include "src/model/moe_layer.h"
#include "src/parallel/parallel_moe_layer.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

ModelConfig TestConfig() {
  ModelConfig config = TinyMoeConfig(4, 2);
  config.hidden = 16;
  config.num_heads = 4;
  config.gqa_ratio = 2;
  config.ffn_hidden = 12;
  config.seq_len = 8;
  return config;
}

// Rank r's sequence-sharded chunk of a [batch * s, w] tensor.
Tensor RankChunk(const Tensor& full, int64_t batch, int64_t seq_len, int rank, int n) {
  const int64_t width = full.dim(1);
  const int64_t s_local = seq_len / n;
  Tensor chunk({batch * s_local, width});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < s_local; ++t) {
      const float* row = full.data() + (b * seq_len + rank * s_local + t) * width;
      std::copy(row, row + width, chunk.data() + (b * s_local + t) * width);
    }
  }
  return chunk;
}

struct MacroRun {
  std::vector<Tensor> y;
  std::vector<Tensor> dx;
  std::vector<MoeLayerParams> dparams;
  std::vector<int64_t> cache_bytes;
};

class MacroLayerTest : public ::testing::TestWithParam<EpDispatchMode> {
 protected:
  void SetUp() override {
    config_ = TestConfig();
    router_.num_experts = config_.num_experts;
    router_.top_k = config_.top_k;
    Rng rng(321);
    params_ = MoeLayerParams::Init(config_, rng);
    x_full_ = Tensor::Randn({batch_ * config_.seq_len, config_.hidden}, rng);
    dy_full_ = Tensor::Randn({batch_ * config_.seq_len, config_.hidden}, rng);

    MoeLayerCache reference_cache;
    y_ref_ = MoeLayerForward(params_, config_, router_, x_full_, batch_, &reference_cache);
    ref_grads_ =
        MoeLayerBackward(params_, config_, router_, reference_cache, dy_full_, batch_);
  }

  MacroRun RunParallel(EpDispatchMode dispatch, bool sar) {
    const int n = 2;
    FlatCommunicator group(n);
    MacroRun run;
    run.y.resize(n);
    run.dx.resize(n);
    run.dparams.reserve(n);
    for (int i = 0; i < n; ++i) {
      run.dparams.push_back(MoeLayerParams::ZerosLike(config_));
    }
    run.cache_bytes.resize(n);
    RunOnRanks(n, [&](int rank) {
      ShardContext ctx{&group, rank};
      ParallelMoeLayerOptions options;
      options.dispatch = dispatch;
      options.sar = sar;
      Tensor x_local = RankChunk(x_full_, batch_, config_.seq_len, rank, n);
      Tensor dy_local = RankChunk(dy_full_, batch_, config_.seq_len, rank, n);
      ParallelMoeLayerCache cache;
      run.y[static_cast<size_t>(rank)] =
          ParallelMoeLayerForward(ctx, config_, router_, params_, x_local, batch_,
                                  config_.seq_len, options, &cache);
      run.cache_bytes[static_cast<size_t>(rank)] = cache.CacheBytes();
      ParallelMoeLayerGrads grads =
          ParallelMoeLayerBackward(ctx, config_, router_, params_, dy_local, batch_,
                                   config_.seq_len, options, cache);
      run.dx[static_cast<size_t>(rank)] = std::move(grads.dx_local);
      run.dparams[static_cast<size_t>(rank)] = std::move(grads.dparams);
    });
    return run;
  }

  void ExpectMatchesReference(const MacroRun& run) {
    const int n = 2;
    for (int rank = 0; rank < n; ++rank) {
      Tensor y_ref = RankChunk(y_ref_, batch_, config_.seq_len, rank, n);
      Tensor dx_ref = RankChunk(ref_grads_.dhidden, batch_, config_.seq_len, rank, n);
      EXPECT_LT(run.y[static_cast<size_t>(rank)].RelativeL2Diff(y_ref), 1e-5) << rank;
      EXPECT_LT(run.dx[static_cast<size_t>(rank)].RelativeL2Diff(dx_ref), 1e-5) << rank;
    }
    // Replicated-parameter grads: sum of partials == reference.
    MoeLayerParams total = run.dparams[0];
    total.Accumulate(run.dparams[1]);
    EXPECT_LT(total.ln1_gain.RelativeL2Diff(ref_grads_.dparams.ln1_gain), 1e-5);
    EXPECT_LT(total.ln2_gain.RelativeL2Diff(ref_grads_.dparams.ln2_gain), 1e-5);
    EXPECT_LT(total.w_qkv.RelativeL2Diff(ref_grads_.dparams.w_qkv), 1e-5);
    EXPECT_LT(total.w_out.RelativeL2Diff(ref_grads_.dparams.w_out), 1e-5);
    EXPECT_LT(total.w_gate.RelativeL2Diff(ref_grads_.dparams.w_gate), 1e-4);
    // Expert grads: complete on the owner, zero elsewhere — the sum matches.
    for (int64_t e = 0; e < config_.num_experts; ++e) {
      EXPECT_LT(total.w1[static_cast<size_t>(e)].RelativeL2Diff(
                    ref_grads_.dparams.w1[static_cast<size_t>(e)]),
                1e-5)
          << e;
      EXPECT_LT(total.w2[static_cast<size_t>(e)].RelativeL2Diff(
                    ref_grads_.dparams.w2[static_cast<size_t>(e)]),
                1e-5)
          << e;
      EXPECT_LT(total.w3[static_cast<size_t>(e)].RelativeL2Diff(
                    ref_grads_.dparams.w3[static_cast<size_t>(e)]),
                1e-5)
          << e;
    }
  }

  ModelConfig config_;
  RouterConfig router_;
  const int64_t batch_ = 2;
  MoeLayerParams params_{};
  Tensor x_full_, dy_full_, y_ref_;
  MoeLayerGrads ref_grads_;
};

TEST_P(MacroLayerTest, MatchesSingleRankReference) {
  ExpectMatchesReference(RunParallel(GetParam(), /*sar=*/false));
}

TEST_P(MacroLayerTest, SarProducesIdenticalGradients) {
  const MacroRun full = RunParallel(GetParam(), /*sar=*/false);
  const MacroRun sar = RunParallel(GetParam(), /*sar=*/true);
  ExpectMatchesReference(sar);
  // Bit-identical to the non-SAR run: rematerialization recomputes the exact
  // same values.
  for (int rank = 0; rank < 2; ++rank) {
    EXPECT_EQ(sar.y[static_cast<size_t>(rank)].RelativeL2Diff(
                  full.y[static_cast<size_t>(rank)]),
              0.0);
    EXPECT_EQ(sar.dx[static_cast<size_t>(rank)].RelativeL2Diff(
                  full.dx[static_cast<size_t>(rank)]),
              0.0);
  }
}

TEST_P(MacroLayerTest, SarHoldsFewerActivationBytes) {
  const MacroRun full = RunParallel(GetParam(), /*sar=*/false);
  const MacroRun sar = RunParallel(GetParam(), /*sar=*/true);
  for (int rank = 0; rank < 2; ++rank) {
    // The dropped activations (two norms + ffn_in + fc2_in [+ x_all]) are a
    // substantial share of the cache.
    EXPECT_LT(sar.cache_bytes[static_cast<size_t>(rank)],
              full.cache_bytes[static_cast<size_t>(rank)] * 0.80)
        << "rank " << rank << " " << sar.cache_bytes[static_cast<size_t>(rank)] << " vs "
        << full.cache_bytes[static_cast<size_t>(rank)];
  }
}

INSTANTIATE_TEST_SUITE_P(BothDispatchModes, MacroLayerTest,
                         ::testing::Values(EpDispatchMode::kAllToAll,
                                           EpDispatchMode::kAllGatherScatter));

}  // namespace
}  // namespace msmoe
