// Status / Result<T>: expected-error reporting without exceptions.
//
// Library code returns Status (or Result<T>) for conditions a caller can
// reasonably encounter (bad config, shape mismatch from user input, ...).
// Invariant violations use MSMOE_CHECK instead.
#ifndef MSMOE_SRC_BASE_STATUS_H_
#define MSMOE_SRC_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/base/logging.h"

namespace msmoe {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
  kAborted,
  kDataLoss,
};

// Human-readable name for a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Formats as "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
inline Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status Aborted(std::string message) {
  return Status(StatusCode::kAborted, std::move(message));
}
inline Status DataLoss(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

// True for fault codes a retry can plausibly clear: a collective deadline
// (kDeadlineExceeded — a rank was late, slow links heal) or a cancelled
// group (kAborted — a crashed rank gets respawned and the step replayed).
// Everything else is NOT retryable as-is: kDataLoss means the payload
// diverged (rollback can repair it, but re-running the same op cannot),
// and config/logic errors (kInvalidArgument, kInternal, ...) will fail
// identically on every attempt. Both the trainer recovery loop and the
// elastic RecoveryPolicy route their verdicts through this predicate.
inline bool IsRetryableFault(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kAborted;
}

// Value-or-error carrier. value() CHECK-fails on error, so call sites either
// propagate status() or assert success.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    MSMOE_CHECK(!std::get<Status>(storage_).ok()) << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status ok_status;
    if (ok()) {
      return ok_status;
    }
    return std::get<Status>(storage_);
  }

  const T& value() const& {
    MSMOE_CHECK(ok()) << status().ToString();
    return std::get<T>(storage_);
  }
  T& value() & {
    MSMOE_CHECK(ok()) << status().ToString();
    return std::get<T>(storage_);
  }
  T&& value() && {
    MSMOE_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(storage_));
  }

 private:
  std::variant<T, Status> storage_;
};

#define MSMOE_RETURN_IF_ERROR(expr)        \
  do {                                     \
    ::msmoe::Status _status = (expr);      \
    if (!_status.ok()) {                   \
      return _status;                      \
    }                                      \
  } while (false)

}  // namespace msmoe

#endif  // MSMOE_SRC_BASE_STATUS_H_
