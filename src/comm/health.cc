#include "src/comm/health.h"

#include <algorithm>
#include <limits>

namespace msmoe {

StragglerReport DetectStragglers(const std::vector<CommEvent>& events,
                                 const StragglerConfig& config) {
  StragglerReport report;
  report.threshold_us = config.threshold_us;

  int max_rank = -1;
  for (const CommEvent& event : events) {
    max_rank = std::max(max_rank, event.rank);
  }
  if (max_rank < 0) {
    return report;
  }
  const int num_ranks = max_rank + 1;

  // Per-rank event-start streams in issue order. Each rank thread records
  // its events sequentially, but the shared registry interleaves ranks, so
  // sort each stream by start time.
  std::vector<std::vector<double>> starts(static_cast<size_t>(num_ranks));
  for (const CommEvent& event : events) {
    starts[static_cast<size_t>(event.rank)].push_back(event.start_us);
  }
  size_t matched = 0;
  for (auto& stream : starts) {
    std::sort(stream.begin(), stream.end());
    matched = std::max(matched, stream.size());
  }

  report.collectives_matched = static_cast<int64_t>(matched);
  report.ranks.resize(static_cast<size_t>(num_ranks));
  for (int rank = 0; rank < num_ranks; ++rank) {
    report.ranks[static_cast<size_t>(rank)].rank = rank;
  }
  if (matched == 0) {
    return report;
  }

  // Match the i-th collective over the ranks that actually recorded an i-th
  // event. A crashed rank's stream simply ends early; truncating every
  // stream to the shortest one would discard the healthy ranks' late
  // collectives — exactly the events that carry the fault signature.
  for (size_t i = 0; i < matched; ++i) {
    double earliest = std::numeric_limits<double>::infinity();
    int present = 0;
    for (int rank = 0; rank < num_ranks; ++rank) {
      const auto& stream = starts[static_cast<size_t>(rank)];
      if (stream.size() > i) {
        earliest = std::min(earliest, stream[i]);
        ++present;
      }
    }
    if (present < 2) {
      // A lone participant has no peer to lag behind; skip the instance.
      continue;
    }
    for (int rank = 0; rank < num_ranks; ++rank) {
      const auto& stream = starts[static_cast<size_t>(rank)];
      if (stream.size() <= i) {
        continue;
      }
      RankHealth& health = report.ranks[static_cast<size_t>(rank)];
      const double lag = stream[i] - earliest;
      ++health.collectives;
      health.mean_entry_lag_us += lag;
      health.max_entry_lag_us = std::max(health.max_entry_lag_us, lag);
    }
  }
  for (RankHealth& health : report.ranks) {
    if (health.collectives > 0) {
      health.mean_entry_lag_us /= static_cast<double>(health.collectives);
    }
    health.straggler = health.collectives >= config.min_collectives &&
                       health.mean_entry_lag_us > config.threshold_us;
  }
  return report;
}

int WorstStragglerRank(const StragglerReport& report) {
  int suspect = -1;
  double worst_lag = 0.0;
  for (const RankHealth& health : report.ranks) {
    if (health.straggler && health.mean_entry_lag_us > worst_lag) {
      worst_lag = health.mean_entry_lag_us;
      suspect = health.rank;
    }
  }
  return suspect;
}

}  // namespace msmoe
