#include "src/parallel/dp_grad_sync.h"

#include <cstring>

#include "src/base/arena.h"
#include "src/base/logging.h"
#include "src/numerics/bf16.h"

namespace msmoe {

const char* GradSyncModeName(GradSyncMode mode) {
  switch (mode) {
    case GradSyncMode::kFp32ReduceScatter:
      return "fp32-reduce-scatter";
    case GradSyncMode::kBf16AllToAll:
      return "bf16-all-to-all";
    case GradSyncMode::kBf16RingReduce:
      return "bf16-ring-reduce";
  }
  return "unknown";
}

std::vector<float> SyncGradShard(Communicator& comm, int rank, const float* grads,
                                 int64_t count, GradSyncMode mode) {
  const int n = comm.size();
  MSMOE_CHECK_EQ(count % n, 0);
  std::vector<float> out(static_cast<size_t>(count / n));
  SyncGradShardInto(comm, rank, grads, count, mode, out.data());
  return out;
}

void SyncGradShardInto(Communicator& comm, int rank, const float* grads, int64_t count,
                       GradSyncMode mode, float* shard_out) {
  const int n = comm.size();
  MSMOE_CHECK_EQ(count % n, 0);
  const int64_t shard = count / n;
  float* out = shard_out;

  switch (mode) {
    case GradSyncMode::kFp32ReduceScatter: {
      comm.ReduceScatter(rank, grads, out, shard);
      break;
    }
    case GradSyncMode::kBf16AllToAll: {
      // One-time cast to BF16, then each rank collects its shard from every
      // peer and reduces LOCALLY in FP32 (Fig 10's design). The wire/recv
      // staging lives in the rank thread's workspace (reused every step).
      Workspace& ws = ThreadWorkspace();
      float* wire = ws.Floats("gradsync.wire", count);
      for (int64_t i = 0; i < count; ++i) {
        wire[i] = Bf16Round(grads[i]);
      }
      float* recv = ws.Floats("gradsync.recv", count);
      comm.AllToAll(rank, wire, recv, shard);
      for (int64_t i = 0; i < shard; ++i) {
        double sum = 0.0;  // FP32/FP64 accumulation of BF16 values
        for (int src = 0; src < n; ++src) {
          sum += static_cast<double>(recv[src * shard + i]);
        }
        out[i] = static_cast<float>(sum);
      }
      break;
    }
    case GradSyncMode::kBf16RingReduce: {
      // Ring reduce-scatter with BF16 partial sums: in a real ring, the
      // chunk that ends on rank r passes through the other n-1 ranks, each
      // hop adding one contribution and re-rounding the partial to BF16 for
      // the wire. The exchange below gathers every rank's BF16 contribution
      // for this rank's chunk, then replays exactly that sequential
      // rounded accumulation (ring order starting at rank+1).
      Workspace& ws = ThreadWorkspace();
      float* wire = ws.Floats("gradsync.wire", count);
      for (int64_t i = 0; i < count; ++i) {
        wire[i] = Bf16Round(grads[i]);
      }
      float* recv = ws.Floats("gradsync.recv", count);
      comm.AllToAll(rank, wire, recv, shard);
      for (int64_t i = 0; i < shard; ++i) {
        float partial = recv[((rank + 1) % n) * shard + i];
        for (int step = 2; step <= n; ++step) {
          const int src = (rank + step) % n;
          partial = Bf16Round(partial + recv[src * shard + i]);
        }
        out[i] = partial;
      }
      break;
    }
  }
}

std::unique_ptr<CommHandle> StartGradShardSync(Communicator& comm, int rank,
                                               const float* grads, int64_t count,
                                               float* shard_out, int num_chunks,
                                               bool signal_now) {
  const int n = comm.size();
  MSMOE_CHECK_EQ(count % n, 0);
  const int64_t shard = count / n;
  std::unique_ptr<CommHandle> handle =
      comm.StartReduceScatter(rank, grads, shard_out, shard, num_chunks);
  if (signal_now) {
    // The segment is already final: release every producer chunk up front;
    // chunking still lets the transfer stream while the caller computes.
    SignalGradSegmentReady(*handle);
  }
  return handle;
}

void SignalGradSegmentReady(CommHandle& handle) {
  for (int c = 0; c < handle.num_chunks(); ++c) {
    handle.SignalChunkReady(c);
  }
}

void AllReduceGrads(Communicator& comm, int rank, float* grads, int64_t count,
                    GradSyncMode mode) {
  const int n = comm.size();
  MSMOE_CHECK_EQ(count % n, 0);
  float* shard = ThreadWorkspace().Floats("gradsync.shard", count / n);
  SyncGradShardInto(comm, rank, grads, count, mode, shard);
  comm.AllGather(rank, shard, grads, count / n);
}

int64_t GradSyncWireBytes(GradSyncMode mode, int64_t count, int n) {
  const int64_t shard = count / n;
  switch (mode) {
    case GradSyncMode::kFp32ReduceScatter:
      return (n - 1) * shard * 4;  // ring RS of FP32
    case GradSyncMode::kBf16AllToAll:
      return (n - 1) * shard * 2;  // same pattern, 2-byte payload
    case GradSyncMode::kBf16RingReduce:
      return (n - 1) * shard * 2;
  }
  return 0;
}

void PackBf16InPlace(float* buffer, int64_t count) {
  // Two BF16 codes per float slot; codes land in the first half of the
  // buffer so the second half is free as a receive buffer.
  uint16_t* codes = reinterpret_cast<uint16_t*>(buffer);
  for (int64_t i = 0; i < count; ++i) {
    // Reading buffer[i] before writing codes[i] is safe: codes[i] occupies
    // the first half of float slot i/2 <= i.
    const uint16_t code = BF16(buffer[i]).bits();
    codes[i] = code;
  }
}

void UnpackBf16InPlace(float* buffer, int64_t count) {
  const uint16_t* codes = reinterpret_cast<const uint16_t*>(buffer);
  // Expand back-to-front so codes are not overwritten before being read.
  for (int64_t i = count - 1; i >= 0; --i) {
    const float value = BF16::FromBits(codes[i]).ToFloat();
    buffer[i] = value;
  }
}

}  // namespace msmoe
