#include <gtest/gtest.h>

#include <cmath>

#include "src/core/layer_program.h"
#include "src/core/parallelism_planner.h"
#include "src/core/scaleup_analysis.h"
#include "src/core/sim_trainer.h"
#include "src/core/trainer.h"
#include "src/base/units.h"

namespace msmoe {
namespace {

TEST(PlannerTest, Eq1TpAttentionVolume) {
  // 2bsh(n-1)/n elements * 2 bytes.
  EXPECT_DOUBLE_EQ(TpAttentionCommBytes(1, 8192, 4096, 8),
                   2.0 * 2.0 * 8192.0 * 4096.0 * 7.0 / 8.0);
}

TEST(PlannerTest, Eq2SpReducesByGqaFactor) {
  // SP = TP * (2 + 2/m) / (2n).
  const double tp = TpAttentionCommBytes(1, 8192, 4096, 8);
  const double sp = SpAttentionCommBytes(1, 8192, 4096, 8, 4);
  EXPECT_NEAR(sp / tp, (2.0 + 0.5) / 16.0, 1e-12);
  // The paper's headline: on an 8-GPU NVLink domain SP needs about a quarter
  // of TP's attention communication (m=4 -> ratio 0.156; and the A2As also
  // ride the faster path). At minimum it is under one third.
  EXPECT_LT(sp, tp / 3.0);
}

TEST(PlannerTest, Eq3EpVolumeScalesWithTopK) {
  const double k2 = EpFfnCommBytes(1, 8192, 4096, 8, 2, EpDispatchMode::kAllToAll);
  const double k4 = EpFfnCommBytes(1, 8192, 4096, 8, 4, EpDispatchMode::kAllToAll);
  EXPECT_NEAR(k4 / k2, 2.0, 1e-12);
  // Eq 3 == Eq 4 when k == n.
  const double k8 = EpFfnCommBytes(1, 8192, 4096, 8, 8, EpDispatchMode::kAllToAll);
  EXPECT_NEAR(k8, TpFfnCommBytes(1, 8192, 4096, 8), 1e-6);
}

TEST(PlannerTest, AgDispatchVolumeEqualsTp) {
  EXPECT_DOUBLE_EQ(EpFfnCommBytes(1, 8192, 4096, 8, 7, EpDispatchMode::kAllGatherScatter),
                   TpFfnCommBytes(1, 8192, 4096, 8));
}

TEST(PlannerTest, DispatchCrossoverAtSixForEightGpus) {
  // Fig 7: "when top-k > 6, the all-gather-based EP implementation is more
  // efficient".
  for (int64_t k = 1; k <= 5; ++k) {
    EXPECT_EQ(ChooseEpDispatch(k, 8), EpDispatchMode::kAllToAll) << k;
  }
  for (int64_t k = 6; k <= 8; ++k) {
    EXPECT_EQ(ChooseEpDispatch(k, 8), EpDispatchMode::kAllGatherScatter) << k;
  }
}

TEST(PlannerTest, PlanPicksSpEpAndNeverExceedsBaseline) {
  for (const ModelConfig& model : EvaluationModels()) {
    ClusterSpec cluster = MakeCluster("H800", 8).value();
    ParallelismPlan plan = PlanParallelism(model, cluster, 1, 8192);
    EXPECT_EQ(plan.attn, AttnStrategy::kSequenceParallel);
    EXPECT_EQ(plan.ffn, FfnStrategy::kExpertParallel);
    EXPECT_LE(plan.attn_comm_bytes, plan.baseline_attn_comm_bytes) << model.name;
    EXPECT_LE(plan.ffn_comm_bytes, plan.baseline_ffn_comm_bytes) << model.name;
    EXPECT_FALSE(plan.ToString().empty());
  }
}

TEST(PlannerTest, SpMemoryOverheadSmall) {
  // §6.2: SP stores 1.2%-5.4% more total memory; 1.7%-8.1% more parameter /
  // gradient / optimizer state. Allow a slightly wider band for our
  // accounting, but the overhead must stay single-digit percent.
  for (const ModelConfig& model : EvaluationModels()) {
    MemoryOptions options;
    options.batch_tokens = 8192;
    MemoryFootprint sp = EstimateMemory(model, AttnStrategy::kSequenceParallel,
                                        FfnStrategy::kExpertParallel, options);
    MemoryFootprint tp = EstimateMemory(model, AttnStrategy::kTensorParallel,
                                        FfnStrategy::kExpertParallel, options);
    const double state_overhead = sp.StateBytes() / tp.StateBytes() - 1.0;
    const double total_overhead = sp.TotalBytes() / tp.TotalBytes() - 1.0;
    EXPECT_GT(state_overhead, 0.0) << model.name;
    EXPECT_LT(state_overhead, 0.10) << model.name;
    EXPECT_GT(total_overhead, 0.0) << model.name;
    EXPECT_LT(total_overhead, 0.08) << model.name;
  }
}

TEST(PlannerTest, SarHalvesActivationMemory) {
  MemoryOptions options;
  options.sar = false;
  const ModelConfig model = ModelConfigByName("Mixtral-8x7B").value();
  MemoryFootprint full = EstimateMemory(model, AttnStrategy::kSequenceParallel,
                                        FfnStrategy::kExpertParallel, options);
  options.sar = true;
  MemoryFootprint sar = EstimateMemory(model, AttnStrategy::kSequenceParallel,
                                       FfnStrategy::kExpertParallel, options);
  const double saving = 1.0 - sar.activation_bytes / full.activation_bytes;
  EXPECT_GT(saving, 0.40);  // Fig 16: 45.5% / 57.2%
  EXPECT_LT(saving, 0.70);
}

CostModel H800Cost8() { return CostModel(MakeCluster("H800", 8).value()); }

TEST(LayerProgramTest, SpEpBeatsTpTpOnEveryModel) {
  // Fig 13: SP+EP outperforms TP+TP by 14.9%-32.9% with other optimizations
  // disabled.
  CostModel cost = H800Cost8();
  for (const ModelConfig& model : EvaluationModels()) {
    ExecutionOptions sp_ep;
    sp_ep.attn = AttnStrategy::kSequenceParallel;
    sp_ep.ffn = FfnStrategy::kExpertParallel;
    sp_ep.ep_dispatch = ChooseEpDispatch(model.top_k, 8);
    sp_ep.inter_op_overlap = false;
    sp_ep.intra_op_overlap = false;
    sp_ep.sar = false;
    ExecutionOptions tp_tp = sp_ep;
    tp_tp.attn = AttnStrategy::kTensorParallel;
    tp_tp.ffn = FfnStrategy::kTensorParallel;
    const LayerTimes fast = SimulateLayer(cost, model, sp_ep, 4, model.seq_len, 8);
    const LayerTimes slow = SimulateLayer(cost, model, tp_tp, 4, model.seq_len, 8);
    const double gain = slow.total_us() / fast.total_us() - 1.0;
    EXPECT_GT(gain, 0.08) << model.name;
    EXPECT_LT(gain, 0.80) << model.name;
  }
}

TEST(LayerProgramTest, OverlapEliminatesMostExposedComm) {
  CostModel cost = H800Cost8();
  const ModelConfig model = ModelConfigByName("Mixtral-8x7B").value();
  ExecutionOptions full = ExecutionOptions::MegaScale(model, 8);
  ExecutionOptions no_overlap = full;
  no_overlap.inter_op_overlap = false;
  no_overlap.intra_op_overlap = false;
  const LayerTimes overlapped = SimulateLayer(cost, model, full, 1, model.seq_len, 8);
  const LayerTimes exposed = SimulateLayer(cost, model, no_overlap, 1, model.seq_len, 8);
  EXPECT_LT(overlapped.exposed_comm_us(), exposed.exposed_comm_us() * 0.25);
  EXPECT_LT(overlapped.total_us(), exposed.total_us());
}

TEST(LayerProgramTest, IntraOpOverlapReducesIterationBy7To13Percent) {
  // §6.2: intra-operator overlap alone reduces iteration time by 7.1%-12.9%.
  CostModel cost = H800Cost8();
  int in_band = 0;
  for (const ModelConfig& model : EvaluationModels()) {
    ExecutionOptions with = ExecutionOptions::MegaScale(model, 8);
    ExecutionOptions without = with;
    without.intra_op_overlap = false;
    const LayerTimes fast = SimulateLayer(cost, model, with, 1, model.seq_len, 8);
    const LayerTimes slow = SimulateLayer(cost, model, without, 1, model.seq_len, 8);
    const double reduction = 1.0 - fast.total_us() / slow.total_us();
    // Our per-layer reductions (2.9%-16.7% across the six models) bracket
    // the paper's 7.1%-12.9% iteration-level band.
    EXPECT_GT(reduction, 0.02) << model.name;
    EXPECT_LT(reduction, 0.18) << model.name;
    if (reduction >= 0.07) {
      ++in_band;
    }
  }
  EXPECT_GE(in_band, 1);  // at least one model reaches the paper's band
}

TEST(LayerProgramTest, SarFreeUnderHolisticSchedulingOnly) {
  CostModel cost = H800Cost8();
  const ModelConfig model = ModelConfigByName("Mixtral-8x7B").value();
  ExecutionOptions sar_on = ExecutionOptions::MegaScale(model, 8);
  ExecutionOptions sar_off = sar_on;
  sar_off.sar = false;
  // With the holistic schedule, SAR costs < 2% (Fig 16: within 0.5%).
  const LayerTimes with_sar = SimulateLayer(cost, model, sar_on, 1, model.seq_len, 8);
  const LayerTimes without_sar = SimulateLayer(cost, model, sar_off, 1, model.seq_len, 8);
  EXPECT_LT(with_sar.total_us() / without_sar.total_us(), 1.02);

  // Without multi-stream scheduling the rematerialization is on the critical
  // path and costs real time.
  ExecutionOptions serial_sar = sar_on;
  serial_sar.inter_op_overlap = false;
  ExecutionOptions serial_no_sar = serial_sar;
  serial_no_sar.sar = false;
  const LayerTimes serial_with = SimulateLayer(cost, model, serial_sar, 1, model.seq_len, 8);
  const LayerTimes serial_without =
      SimulateLayer(cost, model, serial_no_sar, 1, model.seq_len, 8);
  EXPECT_GT(serial_with.total_us() / serial_without.total_us(), 1.02);
}

TEST(LayerProgramTest, IntraOverlapPairsReportAllFour) {
  CostModel cost = H800Cost8();
  const ModelConfig model = ModelConfigByName("Mixtral-8x7B").value();
  ExecutionOptions options = ExecutionOptions::MegaScale(model, 8);
  auto pairs = IntraOverlapPairs(cost, model, options, 1, model.seq_len, 8);
  ASSERT_EQ(pairs.size(), 4u);
  for (const OverlapPairReport& pair : pairs) {
    EXPECT_LT(pair.fused_us, pair.unfused_us) << pair.name;
    EXPECT_GT(pair.fused_us, 0.0) << pair.name;
  }
}

TEST(SimTrainerTest, Table3SpeedupInPaperBand) {
  const ModelConfig model = ModelConfigByName("Internal-352B").value();
  for (int gpus : {240, 1440}) {
    ClusterSpec cluster = MakeCluster("H800", gpus).value();
    const IterationReport megatron =
        SimulateTraining(TrainJobConfig::Megatron(model, cluster, 15, 720)).value();
    const IterationReport megascale =
        SimulateTraining(TrainJobConfig::MegaScaleMoe(model, cluster, 15, 720)).value();
    const double speedup = megatron.iteration_s / megascale.iteration_s;
    EXPECT_GT(speedup, 1.6) << gpus;   // paper: 1.65x - 1.88x
    EXPECT_LT(speedup, 2.05) << gpus;
    EXPECT_FALSE(megascale.ToString().empty());
  }
}

TEST(SimTrainerTest, MfuDeclinesWithStrongScaling) {
  const ModelConfig model = ModelConfigByName("Internal-352B").value();
  const IterationReport small = SimulateTraining(TrainJobConfig::MegaScaleMoe(
                                    model, MakeCluster("H800", 240).value(), 15, 720))
                                    .value();
  const IterationReport large = SimulateTraining(TrainJobConfig::MegaScaleMoe(
                                    model, MakeCluster("H800", 1440).value(), 15, 720))
                                    .value();
  EXPECT_GT(small.mfu, large.mfu);
  // Paper: 32.48% -> 27.89%; ours should land in a similar band.
  EXPECT_GT(small.mfu, 0.24);
  EXPECT_LT(small.mfu, 0.36);
  EXPECT_GT(large.mfu, 0.20);
  EXPECT_LT(large.mfu, 0.32);
}

TEST(SimTrainerTest, WeakScalingNearLinearForMegaScale) {
  // Fig 11: throughput-per-GPU drops <~3% for MegaScale, more for Megatron.
  const ModelConfig model = ModelConfigByName("Internal-352B").value();
  auto per_gpu = [&](int gpus, int64_t batch, bool megascale) {
    ClusterSpec cluster = MakeCluster("H800", gpus).value();
    TrainJobConfig config =
        megascale ? TrainJobConfig::MegaScaleMoe(model, cluster, 15, batch)
                  : TrainJobConfig::Megatron(model, cluster, 15, batch);
    return SimulateTraining(config).value().tokens_per_s / gpus;
  };
  const double ours_small = per_gpu(480, 360, true);
  const double ours_large = per_gpu(1440, 1080, true);
  EXPECT_GT(ours_large / ours_small, 0.95);
  const double theirs_small = per_gpu(480, 360, false);
  const double theirs_large = per_gpu(1440, 1080, false);
  EXPECT_LT(theirs_large / theirs_small, ours_large / ours_small);
}

TEST(SimTrainerTest, MfuOrderingAcrossGpus) {
  // Fig 12: MFU decreases as compute capability increases (H20 > A100 > H800)
  // and MegaScale always beats Megatron.
  const ModelConfig model = ModelConfigByName("Mixtral-8x7B").value();
  double mfu[3][2];
  const char* gpus[] = {"H20", "A100", "H800"};
  for (int i = 0; i < 3; ++i) {
    ClusterSpec cluster = MakeCluster(gpus[i], 32).value();
    mfu[i][0] =
        SimulateTraining(TrainJobConfig::Megatron(model, cluster, 1, 32)).value().mfu;
    mfu[i][1] =
        SimulateTraining(TrainJobConfig::MegaScaleMoe(model, cluster, 1, 32)).value().mfu;
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(mfu[i][1], mfu[i][0]) << gpus[i];
  }
  EXPECT_GT(mfu[0][1], mfu[1][1]);  // H20 > A100
  EXPECT_GT(mfu[1][1], mfu[2][1]);  // A100 > H800
}

TEST(SimTrainerTest, LargerMicroBatchSameWorkFewerMicros) {
  const ModelConfig model = ModelConfigByName("Internal-352B").value();
  ClusterSpec cluster = MakeCluster("H800", 480).value();
  TrainJobConfig config = TrainJobConfig::MegaScaleMoe(model, cluster, 15, 720);
  const IterationReport one = SimulateTraining(config).value();
  config.micro_batch = 2;
  const IterationReport two = SimulateTraining(config).value();
  EXPECT_EQ(two.num_microbatches * 2, one.num_microbatches);
  // Same total work, larger micro-batches amortize per-micro overheads a
  // bit but the bubble grows: times stay within 25%.
  EXPECT_NEAR(two.iteration_s, one.iteration_s, one.iteration_s * 0.25);
}

TEST(SimTrainerTest, InvalidFactorizationRejected) {
  const ModelConfig model = ModelConfigByName("Internal-352B").value();
  ClusterSpec cluster = MakeCluster("H800", 240).value();
  // 240 GPUs = 8 * 30; pp=7 does not divide.
  EXPECT_FALSE(SimulateTraining(TrainJobConfig::Megatron(model, cluster, 7, 720)).ok());
}

TEST(ScaleupTest, RatioIndependentOfKjAndN) {
  // Eq 8-9: R depends only on h_ffn and the hardware ratio.
  const double bw = GBps(400.0 * 0.7);
  const double peak = Tflops(989.0 * 0.45);
  const ScaleupRatio a = ComputeScaleupRatio(1, 8192, 4096, 14336, 2, 8, bw, peak);
  const ScaleupRatio b = ComputeScaleupRatio(4, 4096, 6144, 14336, 6, 8, bw, peak);
  EXPECT_NEAR(a.exact_ratio, b.exact_ratio, a.exact_ratio * 1e-9);
  // n enters only via n/(n-1).
  const ScaleupRatio c = ComputeScaleupRatio(1, 8192, 4096, 14336, 2, 16, bw, peak);
  EXPECT_NEAR(c.exact_ratio / a.exact_ratio, (16.0 / 15.0) / (8.0 / 7.0), 1e-9);
}

TEST(ScaleupTest, ApproxMatchesExactInLimit) {
  const double bw = GBps(280.0);
  const double peak = Tflops(445.0);
  const ScaleupRatio r = ComputeScaleupRatio(1, 8192, 4096, 14336, 2, 1024, bw, peak);
  EXPECT_NEAR(r.exact_ratio, r.approx_ratio, r.approx_ratio * 2e-3);
}

TEST(ScaleupTest, RatioGrowsWithFfnWidth) {
  const double bw = GBps(280.0);
  const double peak = Tflops(445.0);
  EXPECT_GT(ScaleupRatioApprox(14336, bw, peak), ScaleupRatioApprox(1408, bw, peak));
}

TEST(ScaleupTest, CrossNodeEpViableOnlyWithWideExperts) {
  // §7: with R > 1 the expert GEMMs hide the RDMA dispatch; with R < 1 the
  // layer becomes communication-bound across nodes.
  const CostModel cost(MakeCluster("H800", 16).value());
  auto slowdown = [&](const char* name) {
    const ModelConfig model = ModelConfigByName(name).value();
    ExecutionOptions intra = ExecutionOptions::MegaScale(model, 8);
    ExecutionOptions cross = intra;
    cross.ep_cross_node = true;
    const double a = SimulateLayer(cost, model, intra, 1, model.seq_len, 8).total_us();
    const double b = SimulateLayer(cost, model, cross, 1, model.seq_len, 8).total_us();
    return b / a;
  };
  EXPECT_LT(slowdown("Mixtral-8x7B"), 1.15);  // R ~ 1.9: nearly free
  EXPECT_GT(slowdown("DeepSeekMoE"), 1.5);    // R ~ 0.2: comm-bound
}

TEST(ScaleupTest, MinEfficientWidthOrdersWithBandwidth) {
  const GpuSpec h800 = GpuSpecByName("H800").value();
  // Crossing the NVLink domain to RDMA raises the required expert width.
  EXPECT_GT(MinEfficientFfnHidden(h800, /*internode=*/true),
            MinEfficientFfnHidden(h800, /*internode=*/false));
  // Intra-node, all Table 2 models' h_ffn are comfortably efficient.
  const int64_t min_width = MinEfficientFfnHidden(h800, false);
  EXPECT_LT(min_width, 14336);
}

RouterConfig TinyRouter() {
  RouterConfig router;
  router.num_experts = 4;
  router.top_k = 2;
  router.aux_loss_coeff = 0.01;
  return router;
}

NumericTrainConfig SmallTrainConfig() {
  NumericTrainConfig config;
  config.model = TinyMoeConfig(4, 2);
  config.model.num_layers = 1;
  config.model.vocab = 32;
  config.model.seq_len = 8;
  config.router = TinyRouter();
  config.dp_size = 2;
  config.batch_per_rank = 1;
  config.steps = 12;
  config.adam.lr = 3e-3;
  return config;
}

TEST(TrainerTest, BatchGenerationDeterministicAndDistinct) {
  const ModelConfig model = TinyMoeConfig();
  std::vector<int64_t> in1, tg1, in2, tg2;
  MakeTrainingBatch(model, 7, 3, 0, 2, &in1, &tg1);
  MakeTrainingBatch(model, 7, 3, 0, 2, &in2, &tg2);
  EXPECT_EQ(in1, in2);
  EXPECT_EQ(tg1, tg2);
  MakeTrainingBatch(model, 7, 4, 0, 2, &in2, &tg2);
  EXPECT_NE(in1, in2);
  MakeTrainingBatch(model, 7, 3, 1, 2, &in2, &tg2);
  EXPECT_NE(in1, in2);
  // Targets follow the previous-token-copy rule.
  EXPECT_EQ(tg1[0], 0);
  EXPECT_EQ(tg1[1], in1[0]);
}

TEST(TrainerTest, Fp32LossDecreases) {
  NumericTrainConfig config = SmallTrainConfig();
  config.precision = TrainPrecision::kFp32;
  TrainCurve curve = TrainLm(config);
  ASSERT_EQ(curve.loss.size(), 12u);
  EXPECT_LT(curve.loss.back(), curve.loss.front());
}

TEST(TrainerTest, Fig17CompressedSyncMatchesFp32) {
  NumericTrainConfig fp32 = SmallTrainConfig();
  fp32.grad_sync = GradSyncMode::kFp32ReduceScatter;
  NumericTrainConfig bf16 = SmallTrainConfig();
  bf16.grad_sync = GradSyncMode::kBf16AllToAll;
  TrainCurve a = TrainLm(fp32);
  TrainCurve b = TrainLm(bf16);
  for (size_t i = 0; i < a.loss.size(); ++i) {
    EXPECT_NEAR(a.loss[i], b.loss[i], std::max(0.02, a.loss[i] * 0.02)) << i;
  }
}

TEST(TrainerTest, Fig18Fp8TracksBf16) {
  NumericTrainConfig bf16 = SmallTrainConfig();
  bf16.precision = TrainPrecision::kBf16;
  NumericTrainConfig fp8 = SmallTrainConfig();
  fp8.precision = TrainPrecision::kFp8;
  TrainCurve a = TrainLm(bf16);
  TrainCurve b = TrainLm(fp8);
  EXPECT_LT(b.loss.back(), b.loss.front());  // FP8 still converges
  for (size_t i = 0; i < a.loss.size(); ++i) {
    EXPECT_NEAR(a.loss[i], b.loss[i], std::max(0.25, a.loss[i] * 0.10)) << i;
  }
}

TEST(TrainerTest, Fig19RestartsPreserveTrajectory) {
  NumericTrainConfig smooth = SmallTrainConfig();
  NumericTrainConfig restarted = SmallTrainConfig();
  restarted.restart_every = 4;
  TrainCurve a = TrainLm(smooth);
  TrainCurve b = TrainLm(restarted);
  ASSERT_FALSE(b.restart_steps.empty());
  // Checkpoint/restore is exact: the curves are identical.
  for (size_t i = 0; i < a.loss.size(); ++i) {
    EXPECT_NEAR(a.loss[i], b.loss[i], 1e-9) << i;
  }
}

TEST(TrainerTest, WarmupActsAsCheckpointContinue) {
  NumericTrainConfig config = SmallTrainConfig();
  config.warmup_steps = 6;
  config.steps = 6;
  TrainCurve continued = TrainLm(config);
  NumericTrainConfig scratch = SmallTrainConfig();
  scratch.steps = 6;
  TrainCurve fresh = TrainLm(scratch);
  // Continued training starts from a lower loss than scratch.
  EXPECT_LT(continued.loss.front(), fresh.loss.front());
}

TEST(TrainerTest, PrecisionRoundingIdempotent) {
  Rng rng(3);
  ModelConfig model = TinyMoeConfig(2, 1);
  model.num_layers = 1;
  LmParams params = LmParams::Init(model, rng);
  LmParams once = params;
  RoundParams(once, TrainPrecision::kBf16);
  LmParams twice = once;
  RoundParams(twice, TrainPrecision::kBf16);
  std::vector<const Tensor*> a = once.TensorListConst();
  std::vector<const Tensor*> b = twice.TensorListConst();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->RelativeL2Diff(*b[i]), 0.0);
  }
}

}  // namespace
}  // namespace msmoe
