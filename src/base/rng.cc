#include "src/base/rng.h"

#include <cmath>

#include "src/base/logging.h"

namespace msmoe {

uint64_t Rng::NextU64() {
  // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush; one add + three
  // xor-shift-multiplies, fully deterministic across platforms.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::NextUniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) { return lo + (hi - lo) * NextUniform(); }

uint64_t Rng::NextIndex(uint64_t n) {
  MSMOE_CHECK_GT(n, 0u);
  // Rejection-free modulo bias is negligible for n << 2^64 (our use cases),
  // but use Lemire's multiply-shift reduction anyway for uniformity.
  unsigned __int128 product = static_cast<unsigned __int128>(NextU64()) * n;
  return static_cast<uint64_t>(product >> 64);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextUniform();
  double u2 = NextUniform();
  // Avoid log(0).
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextGaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

Rng Rng::Fork(uint64_t salt) const {
  Rng probe(state_ ^ (0xA5A5A5A5A5A5A5A5ULL + salt * 0x9E3779B97F4A7C15ULL));
  return Rng(probe.NextU64());
}

}  // namespace msmoe
