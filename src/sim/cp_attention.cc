#include "src/sim/cp_attention.h"

#include <algorithm>

#include "src/base/logging.h"

namespace msmoe {
namespace {

// Causal work of one token at absolute position t: it attends to t+1 keys.
double TokenWork(int64_t position) { return static_cast<double>(position + 1); }

double RangeWork(int64_t begin, int64_t end) {
  // sum_{t=begin}^{end-1} (t+1) = end(end+1)/2 - begin(begin+1)/2.
  auto triangle = [](int64_t x) {
    return static_cast<double>(x) * (static_cast<double>(x) + 1.0) / 2.0;
  };
  return triangle(end) - triangle(begin);
}

}  // namespace

const char* AttnPartitionName(AttnPartition partition) {
  switch (partition) {
    case AttnPartition::kCpContiguous:
      return "CP contiguous";
    case AttnPartition::kCpZigzag:
      return "CP zigzag";
    case AttnPartition::kSpByHeads:
      return "SP by heads (Ulysses)";
  }
  return "unknown";
}

AttnLoadReport AnalyzeAttentionLoad(int64_t seq_len, int n, AttnPartition partition) {
  MSMOE_CHECK_GT(n, 0);
  MSMOE_CHECK_EQ(seq_len % n, 0);
  AttnLoadReport report;
  report.per_rank_work.assign(static_cast<size_t>(n), 0.0);
  const double total = RangeWork(0, seq_len);

  switch (partition) {
    case AttnPartition::kCpContiguous: {
      const int64_t chunk = seq_len / n;
      for (int r = 0; r < n; ++r) {
        report.per_rank_work[static_cast<size_t>(r)] =
            RangeWork(static_cast<int64_t>(r) * chunk, (static_cast<int64_t>(r) + 1) * chunk) /
            total;
      }
      break;
    }
    case AttnPartition::kCpZigzag: {
      MSMOE_CHECK_EQ(seq_len % (2 * n), 0);
      const int64_t slice = seq_len / (2 * n);
      for (int r = 0; r < n; ++r) {
        const int64_t head_slice = r;
        const int64_t tail_slice = 2 * n - 1 - r;
        report.per_rank_work[static_cast<size_t>(r)] =
            (RangeWork(head_slice * slice, (head_slice + 1) * slice) +
             RangeWork(tail_slice * slice, (tail_slice + 1) * slice)) /
            total;
      }
      break;
    }
    case AttnPartition::kSpByHeads: {
      // Every rank runs the full causal pattern for 1/n of the heads.
      for (int r = 0; r < n; ++r) {
        report.per_rank_work[static_cast<size_t>(r)] = 1.0 / n;
      }
      break;
    }
  }

  const double max_work =
      *std::max_element(report.per_rank_work.begin(), report.per_rank_work.end());
  const double mean = 1.0 / n;
  report.max_over_mean = max_work / mean;
  report.bubble_fraction = 1.0 - mean / max_work;
  return report;
}

RingStepReport AnalyzeRingSchedule(int64_t seq_len, int n, AttnPartition partition) {
  MSMOE_CHECK_GT(n, 0);
  RingStepReport report;

  if (partition == AttnPartition::kSpByHeads) {
    // Ulysses exchanges heads once up front; attention runs in one fully
    // packed step on every rank.
    report.step_makespan = {1.0};
    report.efficiency = 1.0;
    return report;
  }

  // Slice ownership: contiguous -> n slices of s/n, rank r owns slice r;
  // zigzag -> 2n slices of s/(2n), rank r owns slices {r, 2n-1-r}.
  const int slices_per_rank = partition == AttnPartition::kCpZigzag ? 2 : 1;
  const int total_slices = n * slices_per_rank;
  MSMOE_CHECK_EQ(seq_len % total_slices, 0);
  auto slices_of = [&](int rank) {
    std::vector<int> slices;
    if (partition == AttnPartition::kCpZigzag) {
      slices = {rank, 2 * n - 1 - rank};
    } else {
      slices = {rank};
    }
    return slices;
  };
  // Work of query-slice q against key-slice k, in units of a full
  // slice-pair block: 1 below the diagonal, 1/2 on it, 0 above.
  auto block_work = [](int q, int k) {
    if (k < q) {
      return 1.0;
    }
    if (k == q) {
      return 0.5;
    }
    return 0.0;
  };

  double useful = 0.0;
  for (int step = 0; step < n; ++step) {
    double makespan = 0.0;
    for (int rank = 0; rank < n; ++rank) {
      const int kv_owner = (rank - step + n) % n;
      double work = 0.0;
      for (int q : slices_of(rank)) {
        for (int k : slices_of(kv_owner)) {
          work += block_work(q, k);
        }
      }
      useful += work;
      makespan = std::max(makespan, work);
    }
    report.step_makespan.push_back(makespan);
  }
  double total_makespan = 0.0;
  for (double m : report.step_makespan) {
    total_makespan += m;
  }
  report.efficiency = useful / (static_cast<double>(n) * total_makespan);
  return report;
}

AttnLoadReport AnalyzeVariableLengthLoad(const std::vector<int64_t>& doc_lengths, int n,
                                         AttnPartition partition) {
  int64_t seq_len = 0;
  for (int64_t length : doc_lengths) {
    MSMOE_CHECK_GT(length, 0);
    seq_len += length;
  }
  MSMOE_CHECK_EQ(seq_len % n, 0);

  // Per-token work under per-document causal masking.
  std::vector<double> token_work(static_cast<size_t>(seq_len));
  int64_t cursor = 0;
  double total = 0.0;
  for (int64_t length : doc_lengths) {
    for (int64_t i = 0; i < length; ++i) {
      token_work[static_cast<size_t>(cursor + i)] = TokenWork(i);
      total += TokenWork(i);
    }
    cursor += length;
  }

  AttnLoadReport report;
  report.per_rank_work.assign(static_cast<size_t>(n), 0.0);
  switch (partition) {
    case AttnPartition::kCpContiguous: {
      const int64_t chunk = seq_len / n;
      for (int64_t t = 0; t < seq_len; ++t) {
        report.per_rank_work[static_cast<size_t>(t / chunk)] +=
            token_work[static_cast<size_t>(t)] / total;
      }
      break;
    }
    case AttnPartition::kCpZigzag: {
      MSMOE_CHECK_EQ(seq_len % (2 * n), 0);
      const int64_t slice = seq_len / (2 * n);
      for (int64_t t = 0; t < seq_len; ++t) {
        const int64_t slice_index = t / slice;
        const int64_t rank = slice_index < n ? slice_index : 2 * n - 1 - slice_index;
        report.per_rank_work[static_cast<size_t>(rank)] +=
            token_work[static_cast<size_t>(t)] / total;
      }
      break;
    }
    case AttnPartition::kSpByHeads: {
      for (int r = 0; r < n; ++r) {
        report.per_rank_work[static_cast<size_t>(r)] = 1.0 / n;
      }
      break;
    }
  }
  const double max_work =
      *std::max_element(report.per_rank_work.begin(), report.per_rank_work.end());
  const double mean = 1.0 / n;
  report.max_over_mean = max_work / mean;
  report.bubble_fraction = 1.0 - mean / max_work;
  return report;
}

}  // namespace msmoe
