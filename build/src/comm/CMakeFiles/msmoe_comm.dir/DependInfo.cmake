
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/collective_group.cc" "src/comm/CMakeFiles/msmoe_comm.dir/collective_group.cc.o" "gcc" "src/comm/CMakeFiles/msmoe_comm.dir/collective_group.cc.o.d"
  "/root/repo/src/comm/hierarchical.cc" "src/comm/CMakeFiles/msmoe_comm.dir/hierarchical.cc.o" "gcc" "src/comm/CMakeFiles/msmoe_comm.dir/hierarchical.cc.o.d"
  "/root/repo/src/comm/ring_algorithms.cc" "src/comm/CMakeFiles/msmoe_comm.dir/ring_algorithms.cc.o" "gcc" "src/comm/CMakeFiles/msmoe_comm.dir/ring_algorithms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/msmoe_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
