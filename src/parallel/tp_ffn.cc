#include "src/parallel/tp_ffn.h"

#include "src/base/logging.h"
#include "src/model/grouped_gemm.h"
#include "src/tensor/tensor_ops.h"

namespace msmoe {
namespace {

std::vector<Tensor> ColShards(const std::vector<Tensor>& all, int rank, int size) {
  std::vector<Tensor> shards;
  shards.reserve(all.size());
  for (const Tensor& w : all) {
    shards.push_back(TpFfnColShard(w, rank, size));
  }
  return shards;
}

std::vector<Tensor> RowShards(const std::vector<Tensor>& all, int rank, int size) {
  std::vector<Tensor> shards;
  shards.reserve(all.size());
  for (const Tensor& w : all) {
    shards.push_back(TpFfnRowShard(w, rank, size));
  }
  return shards;
}

}  // namespace

Tensor TpFfnColShard(const Tensor& w, int rank, int size) {
  const int64_t rows = w.dim(0);
  const int64_t cols = w.dim(1);
  MSMOE_CHECK_EQ(cols % size, 0);
  const int64_t shard_cols = cols / size;
  Tensor out({rows, shard_cols});
  for (int64_t r = 0; r < rows; ++r) {
    std::copy(w.data() + r * cols + rank * shard_cols,
              w.data() + r * cols + (rank + 1) * shard_cols, out.data() + r * shard_cols);
  }
  return out;
}

Tensor TpFfnRowShard(const Tensor& w, int rank, int size) {
  const int64_t rows = w.dim(0);
  MSMOE_CHECK_EQ(rows % size, 0);
  const int64_t shard_rows = rows / size;
  return w.SliceRows(rank * shard_rows, (rank + 1) * shard_rows);
}

Tensor TpFfnForward(const ShardContext& ctx, const ModelConfig& config,
                    const std::vector<Tensor>& w1, const std::vector<Tensor>& w3,
                    const std::vector<Tensor>& w2, const Tensor& x_local,
                    const RoutingResult& routing_local, TpFfnCache* cache) {
  const int n = ctx.size();
  const int64_t experts = config.num_experts;
  const int64_t h = config.hidden;
  const int64_t t_local = x_local.dim(0);
  const int64_t t_total = t_local * n;
  const int64_t k = routing_local.top_k;

  // Gather all tokens and routing metadata (every rank runs every expert).
  cache->x_all = Tensor({t_total, h});
  ctx.comm->AllGather(ctx.rank, x_local.data(), cache->x_all.data(), t_local * h);
  std::vector<int64_t> idx_local(static_cast<size_t>(t_local * k));
  std::vector<float> weight_local(static_cast<size_t>(t_local * k));
  for (int64_t i = 0; i < t_local * k; ++i) {
    idx_local[static_cast<size_t>(i)] = routing_local.dropped[static_cast<size_t>(i)] != 0
                                            ? -1
                                            : routing_local.expert_index[static_cast<size_t>(i)];
    weight_local[static_cast<size_t>(i)] =
        routing_local.combine_weight[static_cast<size_t>(i)];
  }
  std::vector<int64_t> idx_all(static_cast<size_t>(t_total * k));
  std::vector<float> weight_all(static_cast<size_t>(t_total * k));
  ctx.comm->AllGather(ctx.rank, idx_local.data(), idx_all.data(), t_local * k);
  ctx.comm->AllGather(ctx.rank, weight_local.data(), weight_all.data(), t_local * k);

  // Global dispatch over all experts.
  cache->copy_token.clear();
  cache->copy_slot.clear();
  cache->copy_weight.clear();
  cache->offsets.assign(static_cast<size_t>(experts + 1), 0);
  for (int64_t e = 0; e < experts; ++e) {
    for (int64_t t = 0; t < t_total; ++t) {
      for (int64_t slot = 0; slot < k; ++slot) {
        if (idx_all[static_cast<size_t>(t * k + slot)] == e) {
          cache->copy_token.push_back(t);
          cache->copy_slot.push_back(slot);
          cache->copy_weight.push_back(weight_all[static_cast<size_t>(t * k + slot)]);
        }
      }
    }
    cache->offsets[static_cast<size_t>(e + 1)] = static_cast<int64_t>(cache->copy_token.size());
  }
  cache->ffn_in = GatherRows(cache->x_all, cache->copy_token);

  // Sharded expert GEMMs (width f/n — the GEMM-efficiency penalty).
  const std::vector<Tensor> w1_shard = ColShards(w1, ctx.rank, n);
  const std::vector<Tensor> w3_shard = ColShards(w3, ctx.rank, n);
  const std::vector<Tensor> w2_shard = RowShards(w2, ctx.rank, n);
  cache->fc1_out = GroupedGemm(cache->ffn_in, cache->offsets, w1_shard);
  cache->fc3_out = GroupedGemm(cache->ffn_in, cache->offsets, w3_shard);
  cache->fc2_in = SwiGlu(cache->fc1_out, cache->fc3_out);
  cache->fc2_out = GroupedGemm(cache->fc2_in, cache->offsets, w2_shard);

  // Weighted assembly of partial outputs + reduce-scatter.
  Tensor full_out({t_total, h});
  const int64_t rows = static_cast<int64_t>(cache->copy_token.size());
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t t = cache->copy_token[static_cast<size_t>(i)];
    const float weight = cache->copy_weight[static_cast<size_t>(i)];
    const float* row = cache->fc2_out.data() + i * h;
    float* out = full_out.data() + t * h;
    for (int64_t c = 0; c < h; ++c) {
      out[c] += weight * row[c];
    }
  }
  Tensor y_local({t_local, h});
  ctx.comm->ReduceScatter(ctx.rank, full_out.data(), y_local.data(), t_local * h);
  return y_local;
}

TpFfnGrads TpFfnBackward(const ShardContext& ctx, const ModelConfig& config,
                         const std::vector<Tensor>& w1, const std::vector<Tensor>& w3,
                         const std::vector<Tensor>& w2, const Tensor& dy_local,
                         const RoutingResult& routing_local, const TpFfnCache& cache) {
  const int n = ctx.size();
  const int64_t h = config.hidden;
  const int64_t t_local = dy_local.dim(0);
  const int64_t t_total = t_local * n;
  const int64_t k = routing_local.top_k;
  const int64_t rows = static_cast<int64_t>(cache.copy_token.size());

  TpFfnGrads grads;

  // Backward of reduce-scatter: all-gather.
  Tensor dy_all({t_total, h});
  ctx.comm->AllGather(ctx.rank, dy_local.data(), dy_all.data(), t_local * h);

  Tensor dfc2_out({rows, h});
  Tensor dcombine_all({t_total, k});
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t t = cache.copy_token[static_cast<size_t>(i)];
    const int64_t slot = cache.copy_slot[static_cast<size_t>(i)];
    const float weight = cache.copy_weight[static_cast<size_t>(i)];
    const float* dy_row = dy_all.data() + t * h;
    const float* fc2_row = cache.fc2_out.data() + i * h;
    float* dfc2_row = dfc2_out.data() + i * h;
    float dot = 0.0f;
    for (int64_t c = 0; c < h; ++c) {
      dfc2_row[c] = weight * dy_row[c];
      dot += dy_row[c] * fc2_row[c];
    }
    // fc2_out here is PARTIAL (this rank's f-shard contribution); summing
    // the per-rank dots via the reduce-scatter below yields the true
    // combine-weight gradient.
    dcombine_all.At(t, slot) += dot;
  }

  const std::vector<Tensor> w1_shard = ColShards(w1, ctx.rank, n);
  const std::vector<Tensor> w3_shard = ColShards(w3, ctx.rank, n);
  const std::vector<Tensor> w2_shard = RowShards(w2, ctx.rank, n);
  GroupedGemmGrads fc2_grads =
      GroupedGemmBackward(dfc2_out, cache.fc2_in, cache.offsets, w2_shard);
  grads.dw2_shard = std::move(fc2_grads.dweights);
  SwiGluGrads swiglu_grads = SwiGluBackward(fc2_grads.dx, cache.fc1_out, cache.fc3_out);
  GroupedGemmGrads fc1_grads =
      GroupedGemmBackward(swiglu_grads.dgate, cache.ffn_in, cache.offsets, w1_shard);
  GroupedGemmGrads fc3_grads =
      GroupedGemmBackward(swiglu_grads.dlinear, cache.ffn_in, cache.offsets, w3_shard);
  grads.dw1_shard = std::move(fc1_grads.dweights);
  grads.dw3_shard = std::move(fc3_grads.dweights);
  Tensor dffn_in = Add(fc1_grads.dx, fc3_grads.dx);  // partial over f-shards

  Tensor dx_all = ScatterAddRows(dffn_in, cache.copy_token, t_total);
  grads.dx_local = Tensor({t_local, h});
  ctx.comm->ReduceScatter(ctx.rank, dx_all.data(), grads.dx_local.data(), t_local * h);

  grads.dcombine_local = Tensor({t_local, k});
  ctx.comm->ReduceScatter(ctx.rank, dcombine_all.data(), grads.dcombine_local.data(),
                           t_local * k);
  return grads;
}

}  // namespace msmoe
