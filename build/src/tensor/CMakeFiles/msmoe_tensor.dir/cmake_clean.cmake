file(REMOVE_RECURSE
  "CMakeFiles/msmoe_tensor.dir/tensor.cc.o"
  "CMakeFiles/msmoe_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/msmoe_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/msmoe_tensor.dir/tensor_ops.cc.o.d"
  "libmsmoe_tensor.a"
  "libmsmoe_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msmoe_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
