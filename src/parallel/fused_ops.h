// Functional (CPU) versions of the §4.2 fused communication-computation
// kernels.
//
// On GPUs these fuse tile-level communication signals into GEMM kernels; on
// the thread-rank substrate the same dataflow is expressed by interleaving
// per-chunk communication with per-tile computation. What these implement —
// and what the tests verify — is the *functional* contract of the fused
// kernels: processing tiles in arrival order, with any tile split, produces
// bitwise the same result as the unfused collective-then-GEMM sequence. The
// timing benefit is modeled separately by src/sim/overlap_sim.
#ifndef MSMOE_SRC_PARALLEL_FUSED_OPS_H_
#define MSMOE_SRC_PARALLEL_FUSED_OPS_H_

#include <cstdint>

#include "src/parallel/sp_attention.h"
#include "src/tensor/tensor.h"

namespace msmoe {

// all-gather + GEMM (the TP-attention entry kernel, Fig 9 pattern):
//   Y = AllGather(x_local) @ w
// x_local is [rows_local, k]; w is [k, cols]; Y is [n * rows_local, cols].
// The GEMM over source-rank chunk r starts as soon as chunk r "arrives";
// row_tile controls the tile granularity within each chunk.
Tensor FusedAllGatherGemm(const ShardContext& ctx, const Tensor& x_local, const Tensor& w,
                          int64_t row_tile);

// GEMM + reduce-scatter (the TP-attention exit kernel):
//   Y_local = ReduceScatter(x_local @ w_shard)
// Row-parallel linear: x_local is [rows, k_shard] (this rank's slice of the
// contraction dim), w_shard is [k_shard, cols]; every rank's partial output
// is summed and row-chunk r lands on rank r: Y_local is [rows / n, cols].
// The communication of each row tile is issued as soon as its partial GEMM
// finishes.
Tensor FusedGemmReduceScatter(const ShardContext& ctx, const Tensor& x_local,
                              const Tensor& w_shard, int64_t row_tile);

// all-gather + local scatter + grouped GEMM (the EP dispatch kernel):
// gathers every rank's tokens chunk by chunk, selects the rows routed to
// this rank's experts as each chunk arrives (tokens sorted by expert, then
// source rank — the §4.2 ordering), and runs the expert GEMM per expert as
// soon as the expert's rows are complete.
//
// token_expert[t] is the expert of local token t (single-expert routing for
// this kernel's contract; the full top-k path lives in EpFfnForward).
// Returns the grouped rows' GEMM output [R_local, cols] and fills
// *row_token with the global token index of each grouped row.
Tensor FusedAllGatherScatterGroupedGemm(const ShardContext& ctx, const Tensor& x_local,
                                        const std::vector<int64_t>& token_expert,
                                        const std::vector<Tensor>& expert_weights,
                                        int64_t experts_per_rank,
                                        std::vector<int64_t>* row_token);

}  // namespace msmoe

#endif  // MSMOE_SRC_PARALLEL_FUSED_OPS_H_
