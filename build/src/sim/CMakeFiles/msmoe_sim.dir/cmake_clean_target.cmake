file(REMOVE_RECURSE
  "libmsmoe_sim.a"
)
