// Figure 11: weak-scaling training performance of the 352B MoE model —
// global batch grows proportionally with the GPU count (360 @ 480 GPUs up
// to 1080 @ 1440), so per-GPU work is constant and any throughput loss is
// communication overhead.
#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/core/sim_trainer.h"
#include "src/model/config.h"

namespace msmoe {
namespace {

void Run() {
  PrintHeader("Figure 11 — weak scaling, Internal-352B on H800",
              "global batch scales 360->1080 with 480->1440 GPUs");
  PrintPaperNote(
      "MegaScale-MoE sustains 1.74x-1.79x over Megatron-LM with near-linear "
      "scaling; Megatron-LM loses 2.74% throughput as scale grows");

  const ModelConfig model = ModelConfigByName("Internal-352B").value();
  struct Point {
    int gpus;
    int64_t batch;
  };
  const Point points[] = {{480, 360}, {720, 540}, {960, 720}, {1440, 1080}};

  TablePrinter table({"#GPUs", "Global Batch", "Megatron (tokens/s)",
                      "MegaScale (tokens/s)", "Speedup", "Megatron tok/s/GPU",
                      "MegaScale tok/s/GPU"});
  double first_megatron_per_gpu = 0.0;
  double first_megascale_per_gpu = 0.0;
  double last_megatron_per_gpu = 0.0;
  double last_megascale_per_gpu = 0.0;
  for (const Point& point : points) {
    const ClusterSpec cluster = MakeCluster("H800", point.gpus).value();
    const IterationReport megatron =
        SimulateTraining(TrainJobConfig::Megatron(model, cluster, 15, point.batch)).value();
    const IterationReport megascale =
        SimulateTraining(TrainJobConfig::MegaScaleMoe(model, cluster, 15, point.batch))
            .value();
    const double megatron_per_gpu = megatron.tokens_per_s / point.gpus;
    const double megascale_per_gpu = megascale.tokens_per_s / point.gpus;
    if (first_megatron_per_gpu == 0.0) {
      first_megatron_per_gpu = megatron_per_gpu;
      first_megascale_per_gpu = megascale_per_gpu;
    }
    last_megatron_per_gpu = megatron_per_gpu;
    last_megascale_per_gpu = megascale_per_gpu;
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(point.gpus)),
                  TablePrinter::Fmt(point.batch),
                  TablePrinter::Fmt(megatron.tokens_per_s / 1000.0, 1) + "k",
                  TablePrinter::Fmt(megascale.tokens_per_s / 1000.0, 1) + "k",
                  TablePrinter::Fmt(megascale.tokens_per_s / megatron.tokens_per_s, 2) + "x",
                  TablePrinter::Fmt(megatron_per_gpu, 1),
                  TablePrinter::Fmt(megascale_per_gpu, 1)});
  }
  table.Print("Weak scaling, 352B MoE:");
  std::printf("per-GPU throughput retention 480 -> 1440 GPUs: Megatron %.2f%%, "
              "MegaScale %.2f%% (paper: Megatron drops 2.74%%, MegaScale "
              "near-linear)\n",
              100.0 * last_megatron_per_gpu / first_megatron_per_gpu,
              100.0 * last_megascale_per_gpu / first_megascale_per_gpu);
}

}  // namespace
}  // namespace msmoe

int main() {
  msmoe::Run();
  return 0;
}
