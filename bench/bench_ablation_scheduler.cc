// Ablation (§7 "Holistic vs. automatic"): compare three schedules of the
// same MoE-layer graphs — the naive single-stream order (Megatron-style),
// the hand-tuned holistic schedule the paper ships, and an automatic
// local-search schedule — plus the event-driven interleaved-1F1B pipeline
// simulation against the closed-form bubble model.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/core/auto_scheduler.h"
#include "src/core/layer_program.h"
#include "src/model/config.h"
#include "src/sim/pipeline_event_sim.h"
#include "src/sim/pipeline_sim.h"

namespace msmoe {
namespace {

void ScheduleComparison() {
  const CostModel cost(MakeCluster("H800", 8).value());
  TablePrinter table({"Model", "Graph", "Naive 1-stream (us)", "Holistic (us)",
                      "Auto-searched (us)", "Auto vs holistic"});
  for (const char* name : {"Mixtral-8x7B", "DeepSeekMoE"}) {
    const ModelConfig model = ModelConfigByName(name).value();
    ExecutionOptions holistic = ExecutionOptions::MegaScale(model, 8);
    holistic.intra_op_overlap = false;  // search the inter-op space only
    const LayerGraphs graphs = BuildLayerGraphs(cost, model, holistic, 1, model.seq_len, 8);

    for (const auto& [label, ops] :
         {std::pair<const char*, const std::vector<SimOp>*>{"forward", &graphs.forward},
          {"backward", &graphs.backward}}) {
      // Naive: everything serialized on one stream.
      std::vector<SimOp> naive = *ops;
      for (SimOp& op : naive) {
        op.stream = 0;
      }
      const double naive_us = ExecuteGraph(naive, 1).makespan;

      ScheduleSearchOptions search;
      search.iterations = 1500;
      search.restarts = 3;
      const ScheduleSearchResult result = SearchSchedule(*ops, search);
      table.AddRow({name, label, TablePrinter::Fmt(naive_us, 0),
                    TablePrinter::Fmt(result.declared_makespan_us, 0),
                    TablePrinter::Fmt(result.best_makespan_us, 0),
                    TablePrinter::Fmt(
                        (1.0 - result.best_makespan_us / result.declared_makespan_us) *
                            100.0,
                        2) + "%"});
    }
  }
  table.Print("Schedule quality (the hand schedule should be near-optimal; "
              "the search closes whatever gap remains):");
}

void PipelineValidation() {
  TablePrinter table({"p", "v", "M", "Analytic iter (us)", "Event-driven (us)",
                      "Analytic bubble", "Event bubble", "Peak in-flight"});
  for (int p : {4, 8}) {
    for (int v : {1, 2, 4}) {
      for (int m : {8, 32}) {
        PipelineConfig analytic;
        analytic.pp_stages = p;
        analytic.virtual_stages = v;
        analytic.num_microbatches = m;
        analytic.fwd_us = 100.0;
        analytic.bwd_us = 200.0;
        const PipelineResult a = SimulatePipeline(analytic);

        PipelineEventConfig event;
        event.pp_stages = p;
        event.virtual_stages = v;
        event.num_microbatches = m;
        event.fwd_chunk_us = 100.0 / v;
        event.bwd_chunk_us = 200.0 / v;
        const PipelineEventResult e = SimulatePipelineEvents(event);

        table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(p)),
                      TablePrinter::Fmt(static_cast<int64_t>(v)),
                      TablePrinter::Fmt(static_cast<int64_t>(m)),
                      TablePrinter::Fmt(a.iteration_us, 0),
                      TablePrinter::Fmt(e.makespan_us, 0),
                      TablePrinter::Fmt(a.bubble_fraction, 3),
                      TablePrinter::Fmt(e.bubble_fraction, 3),
                      TablePrinter::Fmt(static_cast<int64_t>(e.peak_in_flight))});
      }
    }
  }
  table.Print("Closed-form pipeline model vs event-driven 1F1B execution:");
  std::printf(
      "1F1B bounds in-flight micro-batches (activation memory) and "
      "interleaving shrinks the bubble. The greedy event-driven scheduler "
      "stays a few percent above the hand-crafted interleaved schedule's "
      "closed form - the same holistic-beats-automatic gap as above.\n");
}

void Run() {
  PrintHeader("Ablation — holistic vs automatic scheduling + pipeline validation",
              "schedule search over the real layer graphs; event-driven 1F1B");
  ScheduleComparison();
  PipelineValidation();
}

}  // namespace
}  // namespace msmoe

int main() {
  msmoe::Run();
  return 0;
}
