// Causal grouped-query attention core (the "FlashAttention" operator of the
// paper's operator decomposition), with explicit backward.
//
// Layout: q is [s, Hq, d], k/v are [s, Hkv, d] with Hq = gqa_ratio * Hkv
// (Table 1's m). Query head hq attends through kv head hq / gqa_ratio.
// Scores use the 1/sqrt(d) scaling and a causal mask.
#ifndef MSMOE_SRC_MODEL_ATTENTION_H_
#define MSMOE_SRC_MODEL_ATTENTION_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace msmoe {

struct AttentionCoreCache {
  // Softmax probabilities, [Hq, s, s] (row t masked beyond t). Retained for
  // the backward pass; the real system recomputes these inside the flash
  // kernel, here the CPU substrate stores them.
  Tensor probs;
};

// Returns the attention output [s, Hq, d].
Tensor AttentionCore(const Tensor& q, const Tensor& k, const Tensor& v, int64_t gqa_ratio,
                     AttentionCoreCache* cache);

struct AttentionCoreGrads {
  Tensor dq;  // [s, Hq, d]
  Tensor dk;  // [s, Hkv, d]
  Tensor dv;  // [s, Hkv, d]
};

AttentionCoreGrads AttentionCoreBackward(const Tensor& dout, const Tensor& q, const Tensor& k,
                                         const Tensor& v, int64_t gqa_ratio,
                                         const AttentionCoreCache& cache);

}  // namespace msmoe

#endif  // MSMOE_SRC_MODEL_ATTENTION_H_
