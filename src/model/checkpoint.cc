#include "src/model/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "src/base/crc32.h"

namespace msmoe {
namespace {

constexpr char kMagic[4] = {'M', 'S', 'M', 'C'};
// v1: header + payload. v2 adds a payload CRC-32 word after the counts.
constexpr uint32_t kVersionNoCrc = 1;
constexpr uint32_t kVersion = 2;

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) {
      std::fclose(file);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

uint32_t PayloadCrc(const std::vector<float>& params,
                    const std::vector<float>& optimizer_state) {
  uint32_t crc = Crc32(params.data(), params.size() * sizeof(float));
  return Crc32(optimizer_state.data(), optimizer_state.size() * sizeof(float), crc);
}

Status WriteCheckpointFile(const std::string& path, const std::vector<float>& flat,
                           const std::vector<float>& optimizer_state) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Internal("cannot open checkpoint for writing: " + path);
  }
  const uint64_t param_count = flat.size();
  const uint64_t opt_count = optimizer_state.size();
  const uint32_t crc = PayloadCrc(flat, optimizer_state);
  if (std::fwrite(kMagic, 1, sizeof(kMagic), file.get()) != sizeof(kMagic) ||
      std::fwrite(&kVersion, sizeof(kVersion), 1, file.get()) != 1 ||
      std::fwrite(&param_count, sizeof(param_count), 1, file.get()) != 1 ||
      std::fwrite(&opt_count, sizeof(opt_count), 1, file.get()) != 1 ||
      std::fwrite(&crc, sizeof(crc), 1, file.get()) != 1) {
    return Internal("checkpoint header write failed: " + path);
  }
  if (param_count > 0 &&
      std::fwrite(flat.data(), sizeof(float), flat.size(), file.get()) != flat.size()) {
    return Internal("checkpoint parameter write failed: " + path);
  }
  if (opt_count > 0 && std::fwrite(optimizer_state.data(), sizeof(float),
                                   optimizer_state.size(),
                                   file.get()) != optimizer_state.size()) {
    return Internal("checkpoint optimizer write failed: " + path);
  }
  if (std::fflush(file.get()) != 0) {
    return Internal("checkpoint flush failed: " + path);
  }
  return Status::Ok();
}

}  // namespace

std::vector<float> FlattenParams(const LmParams& params) {
  std::vector<float> blob;
  params.ForEachConst([&blob](const std::string&, const Tensor& tensor) {
    blob.insert(blob.end(), tensor.data(), tensor.data() + tensor.numel());
  });
  return blob;
}

Status SaveCheckpoint(const std::string& path, const LmParams& params,
                      const std::vector<float>& optimizer_state) {
  // Crash safety: a kill mid-write must never clobber the previous
  // checkpoint, so write the whole file beside it and rename into place
  // (atomic within a filesystem on POSIX).
  const std::string temp = path + ".tmp";
  const std::vector<float> flat = FlattenParams(params);
  Status status = WriteCheckpointFile(temp, flat, optimizer_state);
  if (!status.ok()) {
    std::remove(temp.c_str());
    return status;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Internal("checkpoint rename failed: " + temp + " -> " + path);
  }
  return Status::Ok();
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return FailedPrecondition("checkpoint not found: " + path);
  }
  char magic[4];
  uint32_t version = 0;
  uint64_t param_count = 0;
  uint64_t opt_count = 0;
  uint32_t stored_crc = 0;
  if (std::fread(magic, 1, sizeof(magic), file.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgument("not a MegaScale-MoE checkpoint: " + path);
  }
  if (std::fread(&version, sizeof(version), 1, file.get()) != 1 ||
      (version != kVersion && version != kVersionNoCrc)) {
    return InvalidArgument("unsupported checkpoint version " + std::to_string(version) +
                           " in " + path);
  }
  if (std::fread(&param_count, sizeof(param_count), 1, file.get()) != 1 ||
      std::fread(&opt_count, sizeof(opt_count), 1, file.get()) != 1) {
    return InvalidArgument("truncated checkpoint header: " + path);
  }
  if (version >= kVersion &&
      std::fread(&stored_crc, sizeof(stored_crc), 1, file.get()) != 1) {
    return InvalidArgument("truncated checkpoint header: " + path);
  }
  Checkpoint checkpoint;
  checkpoint.params.resize(param_count);
  checkpoint.optimizer_state.resize(opt_count);
  if (param_count > 0 && std::fread(checkpoint.params.data(), sizeof(float), param_count,
                                    file.get()) != param_count) {
    return InvalidArgument("truncated checkpoint parameters: " + path);
  }
  if (opt_count > 0 && std::fread(checkpoint.optimizer_state.data(), sizeof(float),
                                  opt_count, file.get()) != opt_count) {
    return InvalidArgument("truncated checkpoint optimizer state: " + path);
  }
  if (version >= kVersion) {
    const uint32_t actual_crc =
        PayloadCrc(checkpoint.params, checkpoint.optimizer_state);
    if (actual_crc != stored_crc) {
      return InvalidArgument("checkpoint payload CRC mismatch in " + path +
                             " (stored " + std::to_string(stored_crc) + ", computed " +
                             std::to_string(actual_crc) + ")");
    }
  }
  return checkpoint;
}

int64_t PaddedShardElems(int64_t total_elems, int world) {
  MSMOE_CHECK_GT(world, 0);
  MSMOE_CHECK_GE(total_elems, 0);
  return (total_elems + world - 1) / world * world;
}

std::vector<float> ShardOfFlat(const std::vector<float>& full, int64_t total_elems,
                               int world, int rank) {
  MSMOE_CHECK_EQ(static_cast<int64_t>(full.size()), total_elems);
  MSMOE_CHECK_GE(rank, 0);
  MSMOE_CHECK_LT(rank, world);
  const int64_t shard = PaddedShardElems(total_elems, world) / world;
  std::vector<float> out(static_cast<size_t>(shard), 0.0f);
  const int64_t begin = rank * shard;
  const int64_t end = std::min(begin + shard, total_elems);
  for (int64_t i = begin; i < end; ++i) {
    out[static_cast<size_t>(i - begin)] = full[static_cast<size_t>(i)];
  }
  return out;
}

Result<std::vector<float>> GatherFlatFromShards(
    const std::vector<std::vector<float>>& shards, int64_t total_elems) {
  if (shards.empty()) {
    return InvalidArgument("GatherFlatFromShards: no shards");
  }
  const int world = static_cast<int>(shards.size());
  const int64_t expect = PaddedShardElems(total_elems, world) / world;
  std::vector<float> full;
  full.reserve(static_cast<size_t>(expect) * shards.size());
  for (int rank = 0; rank < world; ++rank) {
    const std::vector<float>& shard = shards[static_cast<size_t>(rank)];
    if (static_cast<int64_t>(shard.size()) != expect) {
      return InvalidArgument("GatherFlatFromShards: shard " + std::to_string(rank) +
                             " has " + std::to_string(shard.size()) +
                             " elements, layout expects " + std::to_string(expect));
    }
    full.insert(full.end(), shard.begin(), shard.end());
  }
  // The padding must be zero; anything else means the shards came from a
  // different layout (wrong total) and trimming would silently drop state.
  for (size_t i = static_cast<size_t>(total_elems); i < full.size(); ++i) {
    if (full[i] != 0.0f) {
      return InvalidArgument(
          "GatherFlatFromShards: nonzero padding at flat index " + std::to_string(i) +
          "; shards do not match total_elems=" + std::to_string(total_elems));
    }
  }
  full.resize(static_cast<size_t>(total_elems));
  return full;
}

Result<std::vector<std::vector<float>>> ReshardFlatState(
    const std::vector<std::vector<float>>& shards, int64_t total_elems,
    int to_world) {
  if (to_world <= 0) {
    return InvalidArgument("ReshardFlatState: to_world must be > 0");
  }
  Result<std::vector<float>> full = GatherFlatFromShards(shards, total_elems);
  if (!full.ok()) {
    return full.status();
  }
  std::vector<std::vector<float>> out;
  out.reserve(static_cast<size_t>(to_world));
  for (int rank = 0; rank < to_world; ++rank) {
    out.push_back(ShardOfFlat(full.value(), total_elems, to_world, rank));
  }
  return out;
}

Status RestoreParams(LmParams& params, const std::vector<float>& blob) {
  int64_t total = 0;
  params.ForEachConst(
      [&total](const std::string&, const Tensor& tensor) { total += tensor.numel(); });
  if (total != static_cast<int64_t>(blob.size())) {
    return InvalidArgument("checkpoint has " + std::to_string(blob.size()) +
                           " parameters but the model expects " + std::to_string(total));
  }
  size_t cursor = 0;
  params.ForEach([&](const std::string&, Tensor& tensor) {
    for (int64_t i = 0; i < tensor.numel(); ++i) {
      tensor[i] = blob[cursor++];
    }
  });
  return Status::Ok();
}

}  // namespace msmoe
