#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/comm/collective_group.h"
#include "src/comm/ring_algorithms.h"
#include "src/sim/trace_export.h"

namespace msmoe {
namespace {

// --- Ring algorithms (§3.2: "ring-based communication pattern with only
// neighboring workers") ---

TEST(NeighborExchangeTest, MovesOneHop) {
  const int n = 4;
  const int64_t count = 3;
  CollectiveGroup group(n);
  std::vector<std::vector<float>> received(n);
  RunOnRanks(n, [&](int rank) {
    std::vector<float> send(count, static_cast<float>(rank));
    std::vector<float> recv(count, -1.0f);
    NeighborExchange(group, rank, send.data(), recv.data(), count);
    received[static_cast<size_t>(rank)] = recv;
  });
  for (int rank = 0; rank < n; ++rank) {
    for (float v : received[static_cast<size_t>(rank)]) {
      EXPECT_EQ(v, static_cast<float>((rank - 1 + n) % n)) << rank;
    }
  }
}

class RingAlgorithmTest : public ::testing::TestWithParam<int> {};

TEST_P(RingAlgorithmTest, AllGatherMatchesDirect) {
  const int n = GetParam();
  const int64_t count = 5;
  CollectiveGroup ring_group(n);
  CollectiveGroup direct_group(n);
  // One byte per rank: rank threads write concurrently, and vector<bool>'s
  // packed bit references would race on the shared word.
  std::vector<char> ok(static_cast<size_t>(n), 0);
  RunOnRanks(n, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank) + 3);
    std::vector<float> send(static_cast<size_t>(count));
    for (auto& v : send) {
      v = static_cast<float>(rng.NextGaussian());
    }
    std::vector<float> via_ring(static_cast<size_t>(n * count));
    RingAllGather(ring_group, rank, send.data(), via_ring.data(), count);
    std::vector<float> direct(static_cast<size_t>(n * count));
    direct_group.AllGather(rank, send.data(), direct.data(), count);
    ok[static_cast<size_t>(rank)] = via_ring == direct;
  });
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_TRUE(ok[static_cast<size_t>(rank)]) << rank;
  }
}

TEST_P(RingAlgorithmTest, ReduceScatterMatchesDirect) {
  const int n = GetParam();
  const int64_t count = 4;
  CollectiveGroup ring_group(n);
  CollectiveGroup direct_group(n);
  std::vector<double> max_err(static_cast<size_t>(n), 0.0);
  RunOnRanks(n, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank) + 9);
    std::vector<float> send(static_cast<size_t>(n * count));
    for (auto& v : send) {
      v = static_cast<float>(rng.NextGaussian());
    }
    std::vector<float> via_ring(static_cast<size_t>(count));
    RingReduceScatter(ring_group, rank, send.data(), via_ring.data(), count);
    std::vector<float> direct(static_cast<size_t>(count));
    direct_group.ReduceScatter(rank, send.data(), direct.data(), count);
    double err = 0.0;
    for (int64_t i = 0; i < count; ++i) {
      err = std::max(err, static_cast<double>(std::fabs(
                              via_ring[static_cast<size_t>(i)] -
                              direct[static_cast<size_t>(i)])));
    }
    max_err[static_cast<size_t>(rank)] = err;
  });
  for (int rank = 0; rank < n; ++rank) {
    // Ring accumulation order differs from the direct sum: tiny float skew.
    EXPECT_LT(max_err[static_cast<size_t>(rank)], 1e-5) << rank;
  }
}

TEST_P(RingAlgorithmTest, AllReduceMatchesDirect) {
  const int n = GetParam();
  const int64_t chunk = 3;
  const int64_t total = n * chunk;
  CollectiveGroup ring_group(n);
  CollectiveGroup direct_group(n);
  std::vector<double> max_err(static_cast<size_t>(n), 0.0);
  RunOnRanks(n, [&](int rank) {
    Rng rng(static_cast<uint64_t>(rank) + 21);
    std::vector<float> data(static_cast<size_t>(total));
    for (auto& v : data) {
      v = static_cast<float>(rng.NextGaussian());
    }
    std::vector<float> direct(static_cast<size_t>(total));
    direct_group.AllReduce(rank, data.data(), direct.data(), total);
    RingAllReduce(ring_group, rank, data.data(), chunk);
    double err = 0.0;
    for (int64_t i = 0; i < total; ++i) {
      err = std::max(err, static_cast<double>(std::fabs(
                              data[static_cast<size_t>(i)] -
                              direct[static_cast<size_t>(i)])));
    }
    max_err[static_cast<size_t>(rank)] = err;
  });
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_LT(max_err[static_cast<size_t>(rank)], 1e-5) << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, RingAlgorithmTest, ::testing::Values(1, 2, 3, 5, 8));

// --- Chrome trace export ---

TEST(TraceExportTest, ContainsAllOps) {
  std::vector<SimOp> ops = {
      {"qkv_gemm", 10.0, false, 0, {}, "gemm"},
      {"a2a", 5.0, true, 1, {}, "comm"},
      {"flash", 20.0, false, 0, {0, 1}, "flash"},
  };
  GraphResult result = ExecuteGraph(ops, 2);
  const std::string json = ToChromeTrace(ops, result, "unit-test");
  EXPECT_NE(json.find("\"qkv_gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"a2a\""), std::string::npos);
  EXPECT_NE(json.find("\"flash\""), std::string::npos);
  EXPECT_NE(json.find("\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);  // comm stream
  EXPECT_NE(json.find("\"comm\":true"), std::string::npos);
  // Valid-ish JSON: brackets balance.
  int depth = 0;
  for (char c : json) {
    if (c == '{') {
      ++depth;
    }
    if (c == '}') {
      --depth;
    }
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceExportTest, EscapesSpecialCharacters) {
  std::vector<SimOp> ops = {{"na\"me\\with\nweird", 1.0, false, 0, {}, "x"}};
  GraphResult result = ExecuteGraph(ops, 1);
  const std::string json = ToChromeTrace(ops, result);
  EXPECT_EQ(json.find("\"na\"me"), std::string::npos);  // raw quote must not appear
  EXPECT_NE(json.find("na\\\"me"), std::string::npos);
}

TEST(TraceExportTest, WritesFile) {
  const std::string path = std::string(::testing::TempDir()) + "/msmoe_trace_test.json";
  std::vector<SimOp> ops = {{"op", 2.0, false, 0, {}, "x"}};
  GraphResult result = ExecuteGraph(ops, 1);
  ASSERT_TRUE(WriteChromeTrace(path, ops, result).ok());
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  EXPECT_GT(std::ftell(file), 50);
  std::fclose(file);
  std::remove(path.c_str());
}

// --- Random-DAG properties of the graph executor ---

TEST(GraphPropertyTest, MakespanBoundedByCriticalPathAndSum) {
  Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    const int count = 2 + static_cast<int>(rng.NextIndex(18));
    std::vector<SimOp> ops;
    std::vector<double> longest_to(static_cast<size_t>(count), 0.0);
    double total = 0.0;
    for (int i = 0; i < count; ++i) {
      SimOp op;
      op.name = "op" + std::to_string(i);
      op.duration = 1.0 + rng.NextUniform() * 9.0;
      op.is_comm = rng.NextUniform() < 0.3;
      op.stream = op.is_comm ? 1 : 0;
      op.category = op.is_comm ? "comm" : "gemm";
      // Random subset of earlier ops as deps.
      for (int j = 0; j < i; ++j) {
        if (rng.NextUniform() < 0.25) {
          op.deps.push_back(j);
        }
      }
      double start_lb = 0.0;
      for (int dep : op.deps) {
        start_lb = std::max(start_lb, longest_to[static_cast<size_t>(dep)]);
      }
      longest_to[static_cast<size_t>(i)] = start_lb + op.duration;
      total += op.duration;
      ops.push_back(std::move(op));
    }
    double critical_path = 0.0;
    for (double v : longest_to) {
      critical_path = std::max(critical_path, v);
    }
    const GraphResult result = ExecuteGraph(ops, 2);
    EXPECT_GE(result.makespan, critical_path - 1e-9) << trial;
    EXPECT_LE(result.makespan, total + 1e-9) << trial;
    EXPECT_LE(result.exposed_comm, result.comm_busy + 1e-9) << trial;
    // Every op ran within the makespan with its declared duration.
    for (size_t i = 0; i < ops.size(); ++i) {
      EXPECT_NEAR(result.timings[i].end - result.timings[i].start, ops[i].duration, 1e-9);
      EXPECT_LE(result.timings[i].end, result.makespan + 1e-9);
    }
  }
}

TEST(GraphPropertyTest, DependenciesAlwaysRespected) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const int count = 3 + static_cast<int>(rng.NextIndex(12));
    std::vector<SimOp> ops;
    for (int i = 0; i < count; ++i) {
      SimOp op;
      op.name = "op" + std::to_string(i);
      op.duration = 1.0 + rng.NextUniform() * 4.0;
      op.stream = static_cast<int>(rng.NextIndex(3));
      for (int j = 0; j < i; ++j) {
        if (rng.NextUniform() < 0.3) {
          op.deps.push_back(j);
        }
      }
      ops.push_back(std::move(op));
    }
    const GraphResult result = ExecuteGraph(ops, 3);
    for (size_t i = 0; i < ops.size(); ++i) {
      for (int dep : ops[i].deps) {
        EXPECT_GE(result.timings[i].start,
                  result.timings[static_cast<size_t>(dep)].end - 1e-9)
            << trial << " op " << i << " dep " << dep;
      }
    }
  }
}

}  // namespace
}  // namespace msmoe
